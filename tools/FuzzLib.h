//===- tools/FuzzLib.h - Config-matrix differential fuzzer ------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The schedule fuzzer behind tools/dcfuzz.cpp and tests/schedule_fuzz_test:
/// generate a tiny program, drive it through an adversarial schedule (PCT,
/// bounded-exhaustive, or uniform random), record the trace, and run the
/// same (program, schedule) pair through the full checker config matrix —
///
///   single-run: {ShardedIdg, SerializedIdg} ×
///               {RingLog, ArenaLog, LegacyLog} ×
///               {FanoutOctet, SerialRoundtrips}
///   multi-run:  {ShardedIdg, SerializedIdg} ×
///               {RingLog, ArenaLog, LegacyLog}
///               + sharded/ring/SerialRoundtrips
///   + batched-Tarjan extras + Velodrome + the vector-clock engine
///
/// — asserting that all twenty-four agree with each other and with the
/// ground-truth serializability oracle (src/support/Oracle.h). The
/// vector-clock engine is held to verdict equality plus oracle-subset
/// blame (its closing-edge blame is legitimately coarser than the graph
/// engines' cycle scan — DESIGN.md §14). On divergence, the
/// (program, schedule) witness is delta-debugged down: drop workers, calls,
/// accesses, and locks while a bounded re-search keeps finding a divergent
/// schedule for the reduced program. The minimal witness is written as a
/// single file — '#'-comment header with the divergence and schedule,
/// followed by the textual IR — that dcfuzz --replay re-executes
/// deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef DC_TOOLS_FUZZLIB_H
#define DC_TOOLS_FUZZLIB_H

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ir/Ir.h"
#include "support/FaultPlan.h"
#include "support/Oracle.h"

namespace dc {
namespace fuzz {

/// Generator-level program description. The fuzzer mutates and minimizes
/// this (not ir::Program directly): reductions stay structurally valid by
/// construction — fork/join bookkeeping, method references, and lock
/// pairing are re-emitted by build().
struct SpecAccess {
  bool IsWrite = false;
  uint8_t Obj = 0;   ///< Shared-pool object index.
  uint8_t Field = 0; ///< Field index.
  uint8_t WorkAfter = 0;
};

struct SpecMethod {
  bool Atomic = true;
  bool Locked = false; ///< Wrap the body in the global lock.
  std::vector<SpecAccess> Body;
};

struct SpecThread {
  std::vector<uint32_t> Calls; ///< Method indices, invoked in order.
};

struct ProgSpec {
  uint64_t Seed = 1;
  uint32_t Objects = 2;
  uint32_t Fields = 1;
  std::vector<SpecMethod> Methods;
  std::vector<SpecThread> Workers;

  ir::Program build() const;
  /// Static count of shared data accesses the program performs (each body
  /// access runs once per call).
  uint64_t staticAccesses() const;
};

/// Tiny random program: 2-3 workers, 1-3 calls each, methods of 1-3
/// accesses over ≤ 4 shared objects, some under a global lock — always
/// ≤ ~40 shared data accesses so the oracle's trace stays small.
ProgSpec randomSpec(uint64_t Seed);

/// What one (program, schedule) comparison produced.
struct PairResult {
  /// Oracle called the recorded trace non-serializable.
  bool OracleViolation = false;
  /// Set when some config disagreed with another or with the oracle.
  std::optional<std::string> Divergence;
};

/// Runs the recorded pair through the config matrix (stopping at the first
/// mismatch) and compares against the oracle. \p InjectIcdBug forwards the
/// test-only unsound-filter fault to every DoubleChecker config.
PairResult checkPair(const ir::Program &Source,
                     const oracle::RecordedTrace &Trace, bool InjectIcdBug);

/// One fault-injection configuration the sweep exercises: a deterministic
/// FaultPlan plus the checker knobs that make its trigger reachable (a
/// worker stall needs the parallel pool; queue saturation needs a tiny
/// queue). Zero-valued knobs keep the checker defaults.
struct FaultCase {
  /// Log publication transport the case runs under: the same fault can
  /// trigger on different sides of the ring (the drain thread's chunk
  /// refill vs. the mutator's), so the sweep pins it explicitly.
  enum class Transport : uint8_t { Ring, Arena, Legacy };
  /// Checker engine the fault plan is injected into. DoubleChecker cases
  /// sweep the full plan; VectorClock cases exercise the one fault that
  /// engine owns (a delayed collector) under an aggressive collect cadence.
  enum class Engine : uint8_t { DoubleChecker, Vc };

  FaultPlan Plan;
  bool ParallelPcd = false;
  uint32_t PcdQueueDepth = 0;
  uint32_t MaxSccTxs = 0;
  uint32_t PcdTimeoutMs = 0;
  /// Run the case under the batched Tarjan escape hatch instead of the
  /// default incremental detector, so faults are swept through both cycle
  /// detection paths.
  bool BatchedScc = false;
  /// Incremental detector's affected-region cap (0 = default): tiny values
  /// force the oversized-region sound-degradation valve.
  uint32_t IcdMaxRegion = 0;
  /// Force every ICD cross edge through the detector lock instead of the
  /// lock-free consistent-edge fast path (the pre-seqlock behaviour).
  bool IcdLockedFastPath = false;
  /// Force each ICD fast-path attempt to fail seqlock validation this many
  /// times (0 = off): a deterministic retry storm that exercises the retry
  /// accounting and — past the retry cap — the Mu fallback.
  uint32_t IcdSeqRetryStorm = 0;
  /// Streaming service mode: retirement-window cadence for the case (0 =
  /// batch). The window-stall fault needs a window boundary to wedge, and
  /// any fault plan may be layered over windowing to prove the flush path
  /// degrades as soundly as batch mode.
  uint32_t WindowTxs = 0;
  Transport LogTransport = Transport::Ring;
  Engine Eng = Engine::DoubleChecker;

  bool any() const {
    return Plan.any() || ParallelPcd || PcdQueueDepth != 0 ||
           MaxSccTxs != 0 || PcdTimeoutMs != 0 || BatchedScc ||
           IcdMaxRegion != 0 || IcdLockedFastPath || IcdSeqRetryStorm != 0 ||
           WindowTxs != 0 || LogTransport != Transport::Ring ||
           Eng != Engine::DoubleChecker;
  }
  /// Human-readable label, also used in witness headers.
  std::string name() const;
};

/// The built-in fault-sweep axis: one case per overload failure mode the
/// FaultPlan models (allocation failure, worker stall/death, queue
/// saturation, collector delay, oversized-SCC cap) plus a combination.
std::vector<FaultCase> faultSweepCases();

/// Replays the recorded pair through single-run DoubleChecker under \p
/// Case and checks the degradation soundness invariant: the run terminates
/// structurally (no hang, no abort, schedule covered) and the reported
/// violation set — precise blamed methods ∪ potential methods from
/// degraded SCCs — is a superset of the oracle's true violating methods.
/// Returns the violation description, or nullopt if the invariant holds.
std::optional<std::string> checkFaultCase(const ir::Program &Source,
                                          const oracle::RecordedTrace &Trace,
                                          const FaultCase &Case);

/// Replays the recorded pair through both windowed engines (single-run
/// DoubleChecker and the vector-clock engine) in streaming mode with the
/// given retirement-window cadence, wired into a StreamingSession, and
/// checks batch-vs-streaming verdict equality: same blamed methods, same
/// potential methods, same has-records bit, at least one window actually
/// flushed, and the streamed violation/window event counts matching the
/// run's recorded ones. Returns the violation description, or nullopt if
/// the invariant holds.
std::optional<std::string>
checkWindowedPair(const ir::Program &Source,
                  const oracle::RecordedTrace &Trace, uint32_t WindowTxs);

/// A divergence, packaged for minimization and replay.
struct Divergence {
  std::string Description;
  ProgSpec Spec;
  std::vector<uint32_t> Schedule;
  uint64_t DataAccesses = 0;
  /// Set when the divergence is a fault-sweep soundness violation (the
  /// witness then replays checkFaultCase instead of the config matrix).
  FaultCase Fault;
};

/// Delta-debugs \p Seed: applies program reductions, re-searching divergent
/// schedules (bounded exhaustive, then PCT, then random) after each, until
/// no reduction reproduces. Returns the smallest divergence found.
Divergence minimizeWitness(const Divergence &Seed, bool InjectIcdBug);

/// Witness file: '#' header (description, seed, schedule, inject flag) +
/// textual IR. Parses back via ir::parseProgram, which skips '#' lines.
bool writeWitness(const std::string &Path, const Divergence &D,
                  bool InjectIcdBug);

struct Witness {
  ir::Program P;
  std::vector<uint32_t> Schedule;
  bool InjectIcdBug = false;
  /// Parsed from the '# fault-plan:' header block; when armed, replay runs
  /// checkFaultCase under this configuration.
  FaultCase Fault;
  /// Parsed from '# window-txs:'; when set (and no fault is armed), replay
  /// additionally runs checkWindowedPair at this cadence, proving the
  /// witness's verdict survives streaming-mode retirement windows.
  uint32_t WindowTxs = 0;
};
/// Returns false (with \p Error set) on I/O or parse failure.
bool readWitness(const std::string &Path, Witness &W, std::string &Error);

/// Re-executes a witness deterministically through the matrix. Returns the
/// divergence description, or nullopt if every config agrees (witness no
/// longer reproduces).
std::optional<std::string> replayWitness(const Witness &W);

/// Campaign driver.
struct FuzzOptions {
  uint64_t Seed = 1;
  uint64_t MaxPairs = 1000;
  double BudgetSeconds = 0; ///< 0 = no wall-clock budget.
  enum class Strategy { Random, Pct, Exhaustive, Mixed };
  Strategy Strat = Strategy::Mixed;
  uint32_t PctChangePoints = 3;
  uint32_t PreemptionBound = 2;
  uint32_t SchedulesPerProgram = 6;
  uint32_t ExhaustiveRunsPerProgram = 24;
  bool InjectIcdBug = false;
  bool Minimize = true;
  /// Sweep the deterministic fault plans (faultSweepCases) over every pair
  /// whose config matrix agrees, checking degradation soundness.
  bool FaultSweep = false;
  /// Progress lines on stderr every this many pairs (0 = quiet).
  uint64_t ProgressEvery = 0;
};

struct FuzzReport {
  uint64_t Programs = 0;
  uint64_t Pairs = 0;
  uint64_t RandomPairs = 0;
  uint64_t PctPairs = 0;
  uint64_t ExhaustivePairs = 0;
  /// Pairs whose trace the oracle called non-serializable (schedule-quality
  /// signal: an adversarial strategy should score higher than random).
  uint64_t OracleViolations = 0;
  /// Individual fault-case runs performed by the fault sweep.
  uint64_t FaultPlansRun = 0;
  double Seconds = 0;
  /// First divergence hit (minimized when FuzzOptions::Minimize).
  std::optional<Divergence> Div;
};

FuzzReport runFuzz(const FuzzOptions &O);

} // namespace fuzz
} // namespace dc

#endif // DC_TOOLS_FUZZLIB_H
