//===- tools/dcfuzz.cpp - Config-matrix differential fuzzer CLI -----------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver for the schedule fuzzer (tools/FuzzLib.h).
///
///   dcfuzz --seed 1 --pairs 10000 --strategy mixed        # campaign
///   dcfuzz --replay witness.dcw                           # re-run a witness
///
/// Exit codes: 0 = clean (or witness no longer reproduces), 1 = divergence
/// found (or witness reproduces), 2 = usage/IO error.
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tools/FuzzLib.h"

using namespace dc;

namespace {

void usage(FILE *Out) {
  std::fprintf(
      Out,
      "usage: dcfuzz [options]\n"
      "       dcfuzz --replay <witness-file>\n"
      "\n"
      "Campaign options:\n"
      "  --seed <n>                 base RNG seed (default 1)\n"
      "  --pairs <n>                max (program, schedule) pairs "
      "(default 1000)\n"
      "  --budget-seconds <s>       wall-clock budget, 0 = none (default 0)\n"
      "  --strategy <s>             random | pct | exhaustive | mixed "
      "(default mixed)\n"
      "  --schedules-per-program <n>  seeded schedules per program "
      "(default 6)\n"
      "  --exhaustive-runs <n>      DFS runs per program (default 24)\n"
      "  --pct-depth <n>            PCT priority change points (default 3)\n"
      "  --preemption-bound <n>     exhaustive preemption bound (default 2)\n"
      "  --inject-icd-bug           enable the test-only unsound ICD filter\n"
      "  --fault-sweep              sweep deterministic fault plans over\n"
      "                             every agreeing pair (degradation "
      "soundness)\n"
      "  --minimize / --no-minimize delta-debug divergences (default on)\n"
      "  --witness-out <file>       where to write a minimized witness\n"
      "  --json-out <file>          write the campaign report as JSON\n"
      "  --progress <n>             progress line every n pairs (default "
      "1000)\n");
}

bool parseU64(const char *S, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End)
    return false;
  Out = V;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  fuzz::FuzzOptions O;
  O.ProgressEvery = 1000;
  std::string WitnessOut;
  std::string JsonOut;
  std::string ReplayPath;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "dcfuzz: %s needs a value\n", A.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    uint64_t V = 0;
    if (A == "--help" || A == "-h") {
      usage(stdout);
      return 0;
    } else if (A == "--replay") {
      ReplayPath = Next();
    } else if (A == "--seed") {
      if (!parseU64(Next(), O.Seed))
        return usage(stderr), 2;
    } else if (A == "--pairs") {
      if (!parseU64(Next(), O.MaxPairs))
        return usage(stderr), 2;
    } else if (A == "--budget-seconds") {
      O.BudgetSeconds = std::atof(Next());
    } else if (A == "--strategy") {
      std::string S = Next();
      if (S == "random")
        O.Strat = fuzz::FuzzOptions::Strategy::Random;
      else if (S == "pct")
        O.Strat = fuzz::FuzzOptions::Strategy::Pct;
      else if (S == "exhaustive")
        O.Strat = fuzz::FuzzOptions::Strategy::Exhaustive;
      else if (S == "mixed")
        O.Strat = fuzz::FuzzOptions::Strategy::Mixed;
      else {
        std::fprintf(stderr, "dcfuzz: unknown strategy '%s'\n", S.c_str());
        return 2;
      }
    } else if (A == "--schedules-per-program") {
      if (!parseU64(Next(), V))
        return usage(stderr), 2;
      O.SchedulesPerProgram = static_cast<uint32_t>(V);
    } else if (A == "--exhaustive-runs") {
      if (!parseU64(Next(), V))
        return usage(stderr), 2;
      O.ExhaustiveRunsPerProgram = static_cast<uint32_t>(V);
    } else if (A == "--pct-depth") {
      if (!parseU64(Next(), V))
        return usage(stderr), 2;
      O.PctChangePoints = static_cast<uint32_t>(V);
    } else if (A == "--preemption-bound") {
      if (!parseU64(Next(), V))
        return usage(stderr), 2;
      O.PreemptionBound = static_cast<uint32_t>(V);
    } else if (A == "--inject-icd-bug") {
      O.InjectIcdBug = true;
    } else if (A == "--fault-sweep") {
      O.FaultSweep = true;
    } else if (A == "--minimize") {
      O.Minimize = true;
    } else if (A == "--no-minimize") {
      O.Minimize = false;
    } else if (A == "--witness-out") {
      WitnessOut = Next();
    } else if (A == "--json-out") {
      JsonOut = Next();
    } else if (A == "--progress") {
      if (!parseU64(Next(), O.ProgressEvery))
        return usage(stderr), 2;
    } else {
      std::fprintf(stderr, "dcfuzz: unknown option '%s'\n", A.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (!ReplayPath.empty()) {
    fuzz::Witness W;
    std::string Error;
    if (!fuzz::readWitness(ReplayPath, W, Error)) {
      std::fprintf(stderr, "dcfuzz: %s\n", Error.c_str());
      return 2;
    }
    std::optional<std::string> Div = fuzz::replayWitness(W);
    if (Div) {
      std::printf("witness reproduces:\n%s\n", Div->c_str());
      return 1;
    }
    std::printf("witness does not reproduce: all configs agree\n");
    return 0;
  }

  fuzz::FuzzReport R = fuzz::runFuzz(O);
  if (!JsonOut.empty()) {
    std::FILE *F = std::fopen(JsonOut.c_str(), "w");
    if (F == nullptr) {
      std::fprintf(stderr, "dcfuzz: cannot write %s\n", JsonOut.c_str());
    } else {
      const char *StratName =
          O.Strat == fuzz::FuzzOptions::Strategy::Random       ? "random"
          : O.Strat == fuzz::FuzzOptions::Strategy::Pct        ? "pct"
          : O.Strat == fuzz::FuzzOptions::Strategy::Exhaustive ? "exhaustive"
                                                               : "mixed";
      std::fprintf(
          F,
          "{\n"
          "  \"tool\": \"dcfuzz\",\n"
          "  \"seed\": %llu,\n"
          "  \"strategy\": \"%s\",\n"
          "  \"inject_icd_bug\": %s,\n"
          "  \"fault_sweep\": %s,\n"
          "  \"programs\": %llu,\n"
          "  \"pairs\": %llu,\n"
          "  \"random_pairs\": %llu,\n"
          "  \"pct_pairs\": %llu,\n"
          "  \"exhaustive_pairs\": %llu,\n"
          "  \"oracle_violations\": %llu,\n"
          "  \"fault_plans_run\": %llu,\n"
          "  \"divergences\": %d,\n"
          "  \"wall_s\": %.3f\n"
          "}\n",
          static_cast<unsigned long long>(O.Seed), StratName,
          O.InjectIcdBug ? "true" : "false",
          O.FaultSweep ? "true" : "false",
          static_cast<unsigned long long>(R.Programs),
          static_cast<unsigned long long>(R.Pairs),
          static_cast<unsigned long long>(R.RandomPairs),
          static_cast<unsigned long long>(R.PctPairs),
          static_cast<unsigned long long>(R.ExhaustivePairs),
          static_cast<unsigned long long>(R.OracleViolations),
          static_cast<unsigned long long>(R.FaultPlansRun), R.Div ? 1 : 0,
          R.Seconds);
      std::fclose(F);
    }
  }
  std::printf("dcfuzz: %llu pairs over %llu programs in %.1fs "
              "(random %llu, pct %llu, exhaustive %llu); "
              "%llu oracle violations; %llu fault plans\n",
              static_cast<unsigned long long>(R.Pairs),
              static_cast<unsigned long long>(R.Programs), R.Seconds,
              static_cast<unsigned long long>(R.RandomPairs),
              static_cast<unsigned long long>(R.PctPairs),
              static_cast<unsigned long long>(R.ExhaustivePairs),
              static_cast<unsigned long long>(R.OracleViolations),
              static_cast<unsigned long long>(R.FaultPlansRun));
  if (!R.Div) {
    std::printf("no divergences\n");
    return 0;
  }

  std::printf("DIVERGENCE (spec seed %llu, %llu data accesses):\n%s\n",
              static_cast<unsigned long long>(R.Div->Spec.Seed),
              static_cast<unsigned long long>(R.Div->DataAccesses),
              R.Div->Description.c_str());
  if (!WitnessOut.empty()) {
    if (fuzz::writeWitness(WitnessOut, *R.Div, O.InjectIcdBug))
      std::printf("witness written to %s (replay with: dcfuzz --replay %s)\n",
                  WitnessOut.c_str(), WitnessOut.c_str());
    else
      std::fprintf(stderr, "dcfuzz: cannot write %s\n", WitnessOut.c_str());
  }
  return 1;
}
