#!/usr/bin/env bash
# CI gate: Release build + full test suite, then a ThreadSanitizer build
# running the concurrent stress tests (sharded IDG hot path, PCD worker
# pool, background collector, fault-injection teardown paths) and an
# UndefinedBehaviorSanitizer build of the fault-injection tests. Run from
# the repository root:
#
#   tools/ci.sh [jobs]
#
# Build trees land in build-ci/, build-ci-tsan/, and build-ci-ubsan/ so a
# developer's existing build/ directory is left alone.
set -euo pipefail

JOBS="${1:-$(nproc)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

echo "== Release build + full ctest =="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure -j 1

echo "== Logging hot-path bench (smoke) =="
# A tiny-scale run to catch regressions that only show up under the bench
# harness (ring commit/drain plumbing, chunk recycling, the arena and
# legacy escape hatches). The sweep spawns real OS threads up to 256 —
# far past any CI host's cores — so even the smoke run exercises the ring
# transport's oversubscribed 64/128/256-thread rows (producers descheduled
# mid-commit, mutator self-drains on full rings). The JSON goes to a
# throwaway path so the checked-in BENCH_logging.json keeps the numbers
# recorded on a quiet machine at full scale.
DC_BENCH_SCALE=0.02 DC_BENCH_TRIALS=1 \
  build-ci/bench/logging_throughput build-ci/bench_logging_smoke.json
DC_BENCH_SCALE=0.02 DC_BENCH_TRIALS=1 \
  build-ci/bench/schedule_coverage build-ci/bench_schedule_smoke.json
# Coordination ping-pong: real OS threads through both Octet protocols
# (pipelined fan-out and the SerialRoundtrips escape hatch) — catches
# wakeup/parking regressions that only bite with preemptive scheduling.
DC_BENCH_SCALE=0.02 DC_BENCH_TRIALS=1 \
  build-ci/bench/octet_coordination build-ci/bench_octet_smoke.json

echo "== Incremental cycle detection (bounded) =="
# Incremental-vs-batched microbench at smoke scale: catches detector hot
# path regressions (cross-edge latency, order maintenance) and asserts
# nothing crashed across both modes and both workload shapes.
DC_BENCH_SCALE=0.02 DC_BENCH_TRIALS=1 \
  build-ci/bench/cycle_detection build-ci/bench_icd_smoke.json

echo "== ICD lock-free fast path (default-mode stats gate) =="
# A consistent-only workload (sor at this scale produces no reorders) must
# complete every cross edge on the seqlock fast path without ever touching
# the detector lock: icd.lock_waits stays 0 and icd.fastpath_lockfree
# covers the full cross-edge count. A regression that silently reroutes
# consistent edges through Mu shows up here, not just in the bench tables.
ICD_STATS=$(build-ci/tools/dcheck --workload sor --scale 0.4 --det --seed 1 \
  --stats)
LOCK_WAITS=$(echo "$ICD_STATS" | awk '$1 == "icd.lock_waits" {print $2}')
LF_EDGES=$(echo "$ICD_STATS" | awk '$1 == "icd.fastpath_lockfree" {print $2}')
CROSS_EDGES=$(echo "$ICD_STATS" | awk '$1 == "icd.idg_cross_edges" {print $2}')
if [ "$LOCK_WAITS" != "0" ]; then
  echo "error: consistent-only workload took the ICD lock ($LOCK_WAITS waits)"
  exit 1
fi
if [ -z "$LF_EDGES" ] || [ "$LF_EDGES" = "0" ] || \
   [ "$LF_EDGES" != "$CROSS_EDGES" ]; then
  echo "error: ICD fast path covered $LF_EDGES of $CROSS_EDGES cross edges"
  exit 1
fi

echo "== Vector-clock engine smoke (engine axis) =="
# The third backend end-to-end: a clean workload, the paper's outlier with
# a known violation (expected exit 1), and the generated-from-enum mode
# listing. The fuzz stages below then sweep the engine through the full
# differential matrix (the vc config rides in every checkPair) and the
# vc fault case in every fault sweep.
build-ci/tools/dcheck --workload philo --scale 0.05 --engine vc --det --seed 3
set +e
build-ci/tools/dcheck --workload xalan6 --scale 0.2 --engine vc --det --seed 1 \
  >/dev/null
RC=$?
set -e
if [ "$RC" -ne 1 ]; then
  echo "error: vc engine missed the xalan6 violation (exit $RC)"; exit 1
fi
build-ci/tools/dcheck --list-modes >/dev/null

echo "== Differential schedule fuzz (bounded) =="
# Fixed seed set, wall-clock bounded: PCT + bounded-exhaustive schedules on
# tiny generated programs, every pair swept through the full config matrix
# against the ground-truth oracle. The matrix includes the Octet protocol
# axis (pipelined fan-out vs. SerialRoundtrips), the log-transport axis
# (ring vs. arena vs. legacy), and the engine axis (DoubleChecker configs +
# Velodrome + the vector-clock engine), so every pair also
# differential-tests the coordination path, the ring publication protocol,
# and all three checking algorithms. DC_FUZZ_BUDGET_SECONDS=600
# (or more) is the nightly setting; the default keeps the gate fast.
FUZZ_BUDGET="${DC_FUZZ_BUDGET_SECONDS:-30}"
build-ci/tools/dcfuzz --seed 1 --budget-seconds "$FUZZ_BUDGET" \
  --pairs 1000000 --strategy mixed --progress 5000
# The gate must also prove the harness *can* catch an unsound checker:
# the injected ICD-filter bug has to be found, minimized, and replayed
# (both commands are expected to exit 1 = divergence).
set +e
build-ci/tools/dcfuzz --seed 1 --inject-icd-bug --pairs 20000 \
  --witness-out build-ci/injected_witness.dcw >/dev/null
RC=$?
set -e
if [ "$RC" -ne 1 ]; then
  echo "error: injected ICD bug was NOT detected (exit $RC)"; exit 1
fi
set +e
build-ci/tools/dcfuzz --replay build-ci/injected_witness.dcw >/dev/null
RC=$?
set -e
if [ "$RC" -ne 1 ]; then
  echo "error: injected-bug witness did not replay (exit $RC)"; exit 1
fi

echo "== Fault-injection sweep (bounded) =="
# Every agreeing (program, schedule) pair re-runs under the deterministic
# fault matrix (alloc failure, worker stall/death, queue saturation,
# collector delay, oversized-SCC cap): degradation must stay sound —
# nothing the fault-free run blames may be lost, and every run terminates
# with a structured RunResult. DC_FAULT_BUDGET_SECONDS=300 (or more) is
# the nightly setting; the default keeps the gate fast.
FAULT_BUDGET="${DC_FAULT_BUDGET_SECONDS:-20}"
build-ci/tools/dcfuzz --seed 3 --budget-seconds "$FAULT_BUDGET" \
  --pairs 1000000 --fault-sweep --progress 2000

echo "== Streaming service-mode soak (bounded) =="
# Service mode end to end (DESIGN.md §15): churn generated programs
# through both windowed engines at an aggressive retirement cadence with
# the rotating fault matrix layered over window boundaries, asserting
# bounded RSS, zero missed seeded violations, batch-vs-streaming verdict
# equality, and structured (never hanging) fault surfacing. The committed
# SOAK.json records a full-length run; DC_SOAK_BUDGET_SECONDS=300 (or
# more) is the nightly setting, the default keeps the gate fast. The
# min-windows floor scales with the budget (the contract's 100-epoch floor
# is calibrated to >= 60-second runs; the smoke slice still flushes
# hundreds).
SOAK_BUDGET="${DC_SOAK_BUDGET_SECONDS:-15}"
build-ci/tools/dcsoak --seconds "$SOAK_BUDGET" --seed 11 \
  --json-out build-ci/soak_smoke.json --progress 500

echo "== ThreadSanitizer build + concurrency stress tests =="
cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDC_SANITIZE=thread >/dev/null
cmake --build build-ci-tsan -j "$JOBS" --target idg_stress_test \
  octet_stress_test octet_coord_test log_elision_test log_srcpos_test \
  ring_log_test fault_injection_test icd_test vc_test property_test \
  streaming_test dcfuzz dcsoak

echo "== Differential schedule fuzz under TSan (smoke) =="
# Much slower per pair under TSan; a short fixed-seed slice is enough to
# catch data races in the scheduler/gate/oracle plumbing itself. The
# fault-sweep slice covers the degradation/watchdog/teardown machinery
# (shed flags, queue backpressure, join-or-detach destruction).
build-ci-tsan/tools/dcfuzz --seed 7 --pairs 40 --strategy mixed
build-ci-tsan/tools/dcfuzz --seed 7 --pairs 10 --fault-sweep
# The seqlock fast path's memory-ordering argument (DESIGN.md §12) is
# exactly the kind of claim TSan falsifies: hammer concurrent consistent
# edges from real OS threads against a chaos thread forcing reorders, with
# the reorder hook widening the writer sections. Runs here explicitly (in
# addition to the Icd slice of the ctest run below) so a fast-path race is
# attributed to this stage by name.
build-ci-tsan/tests/icd_test \
  --gtest_filter='IcdStressTest.LockFreeFastPathSurvivesForcedReorders'
# A TSan slice of the service-mode soak: window flushes synchronize the
# mutator, the PCD pool, the ring drainer, and the collector — exactly the
# cross-thread seams TSan exists for. Iteration-bounded (TSan's slowdown
# makes wall-clock budgets unpredictable), with the fault rotation on and
# the min-windows floor scaled to the short slice.
build-ci-tsan/tools/dcsoak --iterations 60 --seconds 0 --seed 13 \
  --min-windows 20
# TSan slows execution ~5-15x; restrict to the tests whose whole point is
# cross-thread synchronization rather than re-running the full suite. The
# logging tests are in that set: LogSrcPos races a lock-free LogLen
# sampler against an appender, and LogElision stresses both log paths.
# FaultInjection exercises the watchdog, worker stall/death, and the
# destruction-under-saturated-queue teardown. Icd covers the detector's
# lock-free hot path (atomic order keys, program-order chain pointers)
# plus the stripe-locality stress test. The Ring suites drive the per-CPU
# ring transport's wait-free commit / concurrent-drain protocol with real
# producer threads racing the drainer (wraparound, migration mid-commit,
# full-ring self-drain) — the prime TSan target this file has. The Vc
# suites drive the vector-clock engine's hooks from free-running OS
# threads (per-field spin locks racing the engine lock and the mark-sweep
# collector), and the three-way EngineAgreement property replays one
# recorded schedule through all engines under TSan.
ctest --test-dir build-ci-tsan --output-on-failure \
  -R "Idg|Octet|ElisionFilter|LogDifferential|SrcPosSampling|FaultInjection|Icd|Ring|Vc|EngineAgreement|Streaming"

echo "== AddressSanitizer build + abort-mid-coordination regression =="
# The seed's serial protocol could return from an aborted roundtrip while a
# stack-allocated request was still linked in the responder's mailbox; the
# responder's eventual drain then wrote into a dead frame. The pipelined
# protocol pools request blocks and cancels them on abort —
# OctetCoordAbortTest drives both protocols through that window under ASan.
cmake -B build-ci-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDC_SANITIZE=address >/dev/null
cmake --build build-ci-asan -j "$JOBS" --target octet_coord_test \
  octet_stress_test
ctest --test-dir build-ci-asan --output-on-failure -R "Octet"

echo "== UndefinedBehaviorSanitizer build + fault-injection tests =="
# UBSan (fail-fast: -fno-sanitize-recover=all) over the paths the fault
# plans push through rare branches — degraded SCCs, timed-out enqueues,
# shed/re-arm transitions.
cmake -B build-ci-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDC_SANITIZE=undefined >/dev/null
cmake --build build-ci-ubsan -j "$JOBS" --target fault_injection_test \
  pcd_test dcfuzz
ctest --test-dir build-ci-ubsan --output-on-failure \
  -R "FaultInjection|Pcd"
build-ci-ubsan/tools/dcfuzz --seed 5 --pairs 20 --fault-sweep

echo "== CI gate passed =="
