#!/usr/bin/env bash
# CI gate: Release build + full test suite, then a ThreadSanitizer build
# running the concurrent stress tests (sharded IDG hot path, PCD worker
# pool, background collector). Run from the repository root:
#
#   tools/ci.sh [jobs]
#
# Build trees land in build-ci/ and build-ci-tsan/ so a developer's
# existing build/ directory is left alone.
set -euo pipefail

JOBS="${1:-$(nproc)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

echo "== Release build + full ctest =="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure -j 1

echo "== Logging hot-path bench (smoke) =="
# A tiny-scale run to catch regressions that only show up under the bench
# harness (chunk recycling, the legacy escape hatch). The JSON goes to a
# throwaway path so the checked-in BENCH_logging.json keeps the numbers
# recorded on a quiet machine at full scale.
DC_BENCH_SCALE=0.02 DC_BENCH_TRIALS=1 \
  build-ci/bench/logging_throughput build-ci/bench_logging_smoke.json

echo "== ThreadSanitizer build + concurrency stress tests =="
cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDC_SANITIZE=thread >/dev/null
cmake --build build-ci-tsan -j "$JOBS" --target idg_stress_test \
  octet_stress_test log_elision_test log_srcpos_test
# TSan slows execution ~5-15x; restrict to the tests whose whole point is
# cross-thread synchronization rather than re-running the full suite. The
# logging tests are in that set: LogSrcPos races a lock-free LogLen
# sampler against an appender, and LogElision stresses both log paths.
ctest --test-dir build-ci-tsan --output-on-failure \
  -R "Idg|Octet|ElisionFilter|LogDifferential|SrcPosSampling"

echo "== CI gate passed =="
