#!/usr/bin/env bash
# CI gate: Release build + full test suite, then a ThreadSanitizer build
# running the concurrent stress tests (sharded IDG hot path, PCD worker
# pool, background collector). Run from the repository root:
#
#   tools/ci.sh [jobs]
#
# Build trees land in build-ci/ and build-ci-tsan/ so a developer's
# existing build/ directory is left alone.
set -euo pipefail

JOBS="${1:-$(nproc)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

echo "== Release build + full ctest =="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure -j 1

echo "== ThreadSanitizer build + concurrency stress tests =="
cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDC_SANITIZE=thread >/dev/null
cmake --build build-ci-tsan -j "$JOBS" --target idg_stress_test \
  octet_stress_test
# TSan slows execution ~5-15x; restrict to the tests whose whole point is
# cross-thread synchronization rather than re-running the full suite.
ctest --test-dir build-ci-tsan --output-on-failure -R "Idg|Octet"

echo "== CI gate passed =="
