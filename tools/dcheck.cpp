//===- tools/dcheck.cpp - Command-line atomicity checker ------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line driver a downstream user runs:
///
///   dcheck --workload tsp --mode single-run --det --seed 3
///   dcheck --file prog.dcir --engine velodrome --trials 5
///   dcheck --workload eclipse6 --refine
///   dcheck --workload avrora9 --dump-ir > avrora9.dcir
///   dcheck --workload hsqldb6 --serve --window-txs 4096 --ndjson out.ndjson
///
/// The engine/mode table (--list-modes) is generated from core::allModes()
/// + core::toString(Mode), so it cannot drift from the enum. "multi-run"
/// (first runs + second run in one invocation) is the one dcheck-level
/// pseudo mode on top; second-run needs --static-info from a prior first
/// run's --emit-static.
///
/// Exit codes are a contract (tests/exit_code_test.cpp pins them):
///   0   clean — no violations, no checker fault
///   1   atomicity violations found (precise blame), checker healthy
///   2   checker fault (structured CheckerFault or aborted run), or a
///       degraded run that reported only Potential violations — the answer
///       is "cannot prove clean", which supervisors must not conflate with
///       either clean or a precise report
///   64  usage error (bad flags/input), before any checking ran
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/Checker.h"
#include "core/Refinement.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "rt/StreamingSession.h"
#include "support/ChromeTrace.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::core;

namespace {

/// The documented exit-code contract (file header).
constexpr int ExitClean = 0;
constexpr int ExitViolations = 1;
constexpr int ExitFault = 2;
constexpr int ExitUsage = 64;

struct CliOptions {
  std::string Workload;
  std::string File;
  std::string ModeName = "single-run";
  std::string StaticInfoFile;
  std::string EmitStaticFile;
  std::string ScheduleOutFile;
  std::string ScheduleInFile;
  std::string SchedName = "random";
  unsigned PctDepth = 3;
  double Scale = 1.0;
  uint64_t Seed = 1;
  unsigned Trials = 1;
  bool Deterministic = false;
  bool ParallelPcd = false;
  unsigned PcdWorkers = 2;
  uint64_t MemBudgetMB = 0;
  unsigned PcdTimeoutMs = 0;
  std::string FaultPlanSpec;
  bool SerializedIdg = false;
  bool LegacyLog = false;
  bool ArenaLog = false;
  bool SerialRoundtrips = false;
  bool BatchedScc = false;
  bool IcdLockedFastPath = false;
  bool Serve = false;
  unsigned WindowTxs = 0;
  unsigned HealthEvery = 1;
  std::string NdjsonFile;
  std::string TraceOutFile;
  bool Refine = false;
  bool DumpIr = false;
  bool DumpCompiledIr = false;
  bool ShowStats = false;
  bool ListWorkloads = false;
  bool ListModes = false;
};

/// The mode list, generated from the enum so it cannot drift ("multi-run"
/// is dcheck's own composite on top of the core modes).
std::string modeListString() {
  std::string Out;
  for (Mode M : allModes()) {
    if (!Out.empty())
      Out += " | ";
    Out += toString(M);
  }
  return Out + " | multi-run";
}

void printUsage() {
  std::printf(
      "usage: dcheck (--workload <name> | --file <prog.dcir>) [options]\n"
      "\n"
      "input:\n"
      "  --workload <name>     one of the built-in benchmarks (--list)\n"
      "  --file <path>         a program in the textual IR format\n"
      "  --scale <f>           workload size multiplier (default 1.0)\n"
      "  --list                list built-in workloads and exit\n"
      "\n"
      "checking:\n"
      "  --mode <m>            checker engine/configuration (--list-modes;\n"
      "                        default single-run)\n"
      "  --engine <m>          alias for --mode\n"
      "  --list-modes          list modes (from core::toString) and exit\n"
      "  --det                 deterministic scheduler (replayable)\n"
      "  --seed <n>            schedule seed (default 1)\n"
      "  --sched <s>           random (default) | pct; needs --det\n"
      "  --pct-depth <n>       PCT priority change points (default 3)\n"
      "  --schedule-out <path> dump the executed schedule (first trial;\n"
      "                        needs --det) for later --schedule-in replay\n"
      "  --schedule-in <path>  replay a recorded schedule (needs --det);\n"
      "                        when the file runs short, remaining picks\n"
      "                        fall back to the seeded strategy (the\n"
      "                        documented exhaustion behaviour)\n"
      "  --trials <n>          repeat with seed, seed+1, ... (default 1)\n"
      "  --refine              iterative specification refinement (Fig. 6)\n"
      "  --parallel-pcd        replay PCD SCCs on a background worker pool\n"
      "  --pcd-workers <n>     pool size for --parallel-pcd (default 2)\n"
      "  --mem-budget-mb <n>   log-arena budget in MiB; breaching it sheds\n"
      "                        logging soundly (0 = unlimited, default)\n"
      "  --pcd-timeout-ms <n>  watchdog/stall timeout for background\n"
      "                        components (0 = default 10000)\n"
      "  --fault-plan <spec>   inject deterministic checker faults, e.g.\n"
      "                        alloc-fail@1,worker-stall@2 (see dcfuzz)\n"
      "  --legacy-log          pre-arena escape hatch: shared elision\n"
      "                        cells + vector logs (for comparisons)\n"
      "  --arena-log           pre-ring escape hatch: publish into per-\n"
      "                        thread chunk arenas (for comparisons)\n"
      "  --serialized-idg      pre-sharding escape hatch: one global IDG\n"
      "                        lock, inline collection (for comparisons)\n"
      "  --serial-roundtrips   pre-pipelining escape hatch: serial spin-\n"
      "                        only Octet coordination (for comparisons)\n"
      "  --batched-scc         pre-incremental escape hatch: batched\n"
      "                        stop-the-world Tarjan cycle passes\n"
      "  --icd-locked-fastpath pre-seqlock escape hatch: every ICD cross\n"
      "                        edge takes the detector lock\n"
      "  --static-info <path>  second-run input (from --emit-static)\n"
      "  --emit-static <path>  write first-run static transaction info\n"
      "\n"
      "service mode (DESIGN.md §15):\n"
      "  --serve               stream NDJSON events (violation/window/\n"
      "                        health/fault/summary) live as the run\n"
      "                        progresses, to stdout or --ndjson\n"
      "  --window-txs <n>      retirement-window cadence in finished\n"
      "                        transactions (default 4096 under --serve,\n"
      "                        0 = batch otherwise); windowed engines\n"
      "                        flush+retire soundly at every boundary\n"
      "  --health-every <n>    emit a health event every n windows\n"
      "                        (default 1, 0 = never)\n"
      "  --ndjson <path>       write the event stream to a file\n"
      "  --trace-out <path>    export a chrome://tracing JSON timeline of\n"
      "                        transactions, edges, SCC merges, window\n"
      "                        flushes, and degradation events\n"
      "\n"
      "output:\n"
      "  --dump-ir             print the program and exit\n"
      "  --dump-compiled-ir    print the instrumented program and exit\n"
      "  --stats               print all statistics counters\n"
      "\n"
      "exit codes: 0 clean; 1 violations found; 2 checker fault or\n"
      "degraded potential-only report; 64 usage error\n");
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](std::string &Out) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        return false;
      }
      Out = Argv[++I];
      return true;
    };
    std::string V;
    if (Arg == "--workload" && Value(V))
      Opts.Workload = V;
    else if (Arg == "--file" && Value(V))
      Opts.File = V;
    else if ((Arg == "--mode" || Arg == "--engine") && Value(V))
      Opts.ModeName = V;
    else if (Arg == "--list-modes")
      Opts.ListModes = true;
    else if (Arg == "--scale" && Value(V))
      Opts.Scale = std::atof(V.c_str());
    else if (Arg == "--seed" && Value(V))
      Opts.Seed = std::strtoull(V.c_str(), nullptr, 10);
    else if (Arg == "--trials" && Value(V))
      Opts.Trials = static_cast<unsigned>(std::atoi(V.c_str()));
    else if (Arg == "--static-info" && Value(V))
      Opts.StaticInfoFile = V;
    else if (Arg == "--emit-static" && Value(V))
      Opts.EmitStaticFile = V;
    else if (Arg == "--det")
      Opts.Deterministic = true;
    else if (Arg == "--sched" && Value(V))
      Opts.SchedName = V;
    else if (Arg == "--pct-depth" && Value(V))
      Opts.PctDepth = static_cast<unsigned>(std::atoi(V.c_str()));
    else if (Arg == "--schedule-out" && Value(V))
      Opts.ScheduleOutFile = V;
    else if (Arg == "--schedule-in" && Value(V))
      Opts.ScheduleInFile = V;
    else if (Arg == "--parallel-pcd")
      Opts.ParallelPcd = true;
    else if (Arg == "--pcd-workers" && Value(V))
      Opts.PcdWorkers = static_cast<unsigned>(std::atoi(V.c_str()));
    else if (Arg == "--mem-budget-mb" && Value(V))
      Opts.MemBudgetMB = std::strtoull(V.c_str(), nullptr, 10);
    else if (Arg == "--pcd-timeout-ms" && Value(V))
      Opts.PcdTimeoutMs = static_cast<unsigned>(std::atoi(V.c_str()));
    else if (Arg == "--fault-plan" && Value(V))
      Opts.FaultPlanSpec = V;
    else if (Arg == "--serialized-idg")
      Opts.SerializedIdg = true;
    else if (Arg == "--legacy-log")
      Opts.LegacyLog = true;
    else if (Arg == "--arena-log")
      Opts.ArenaLog = true;
    else if (Arg == "--serial-roundtrips")
      Opts.SerialRoundtrips = true;
    else if (Arg == "--batched-scc")
      Opts.BatchedScc = true;
    else if (Arg == "--icd-locked-fastpath")
      Opts.IcdLockedFastPath = true;
    else if (Arg == "--serve")
      Opts.Serve = true;
    else if (Arg == "--window-txs" && Value(V))
      Opts.WindowTxs = static_cast<unsigned>(std::atoi(V.c_str()));
    else if (Arg == "--health-every" && Value(V))
      Opts.HealthEvery = static_cast<unsigned>(std::atoi(V.c_str()));
    else if (Arg == "--ndjson" && Value(V))
      Opts.NdjsonFile = V;
    else if (Arg == "--trace-out" && Value(V))
      Opts.TraceOutFile = V;
    else if (Arg == "--refine")
      Opts.Refine = true;
    else if (Arg == "--dump-ir")
      Opts.DumpIr = true;
    else if (Arg == "--dump-compiled-ir")
      Opts.DumpCompiledIr = true;
    else if (Arg == "--stats")
      Opts.ShowStats = true;
    else if (Arg == "--list")
      Opts.ListWorkloads = true;
    else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Arg.c_str());
      return false;
    }
  }
  return true;
}

bool modeFromName(const std::string &Name, Mode &Out) {
  for (Mode M : allModes())
    if (toString(M) == Name) {
      Out = M;
      return true;
    }
  return false;
}

void printOutcome(const ir::Program &P, const RunOutcome &O,
                  const CliOptions &Opts) {
  std::printf("ran %llu instructions in %.3fs%s\n",
              (unsigned long long)O.Result.Steps, O.Result.WallSeconds,
              O.Result.Aborted ? " (ABORTED)" : "");
  if (O.Result.Fault != rt::CheckerFault::None)
    std::printf("CHECKER FAULT: %s (%s)\n", rt::toString(O.Result.Fault),
                O.Result.FaultDiagnosis.c_str());
  if (!O.Result.Degradation.empty()) {
    std::printf("degradation: %zu event(s):", O.Result.Degradation.size());
    size_t DegShown = 0;
    for (const auto &E : O.Result.Degradation) {
      if (++DegShown > 8) {
        std::printf(" ...");
        break;
      }
      std::printf(" %s@%llu", rt::toString(E.A),
                  (unsigned long long)E.Stamp);
    }
    std::printf("\n");
  }
  std::printf("%zu violation record(s), %zu distinct blamed method(s)\n",
              O.Violations.size(), O.BlamedMethods.size());
  for (const std::string &Name : O.BlamedMethods)
    std::printf("  atomicity violation: %s\n", Name.c_str());
  for (const std::string &Name : O.PotentialMethods)
    if (!O.BlamedMethods.count(Name))
      std::printf("  potential violation (degraded): %s\n", Name.c_str());
  size_t Shown = 0;
  for (const auto &V : O.Violations) {
    if (++Shown > 3) {
      std::printf("  ... (%zu more cycles)\n", O.Violations.size() - 3);
      break;
    }
    std::printf("  cycle:");
    for (const auto &M : V.Cycle)
      std::printf(" (thread %u, %s)", M.Tid,
                  M.Site == ir::InvalidMethodId
                      ? "non-atomic code"
                      : P.Methods[M.Site].Name.c_str());
    std::printf("\n");
  }
  if (Opts.ShowStats) {
    std::printf("statistics:\n");
    for (const auto &Entry : O.Stats)
      std::printf("  %-40s %llu\n", Entry.first.c_str(),
                  (unsigned long long)Entry.second);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    printUsage();
    return ExitUsage;
  }
  if (Opts.ListModes) {
    for (Mode M : allModes())
      std::printf("%s\n", toString(M).c_str());
    std::printf("multi-run\n"); // dcheck-level composite (first + second).
    return 0;
  }
  if (Opts.ListWorkloads) {
    for (const workloads::WorkloadInfo &W : workloads::all())
      std::printf("%-12s %s\n", W.Name.c_str(), W.Description.c_str());
    return 0;
  }
  if (Opts.Workload.empty() == Opts.File.empty()) {
    std::fprintf(stderr, "error: pass exactly one of --workload/--file\n");
    printUsage();
    return ExitUsage;
  }

  // --- Load the program. ---------------------------------------------------
  ir::Program P;
  if (!Opts.Workload.empty()) {
    if (workloads::find(Opts.Workload) == nullptr) {
      std::fprintf(stderr, "error: unknown workload '%s' (try --list)\n",
                   Opts.Workload.c_str());
      return ExitUsage;
    }
    P = workloads::build(Opts.Workload, Opts.Scale);
  } else {
    std::ifstream In(Opts.File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Opts.File.c_str());
      return ExitUsage;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    ir::ParseResult R = ir::parseProgram(Buf.str());
    if (!R.Ok) {
      std::fprintf(stderr, "%s:%u: error: %s\n", Opts.File.c_str(),
                   R.ErrorLine, R.Error.c_str());
      return ExitUsage;
    }
    P = std::move(R.P);
  }

  if (Opts.DumpIr) {
    std::printf("%s", ir::toString(P).c_str());
    return 0;
  }

  AtomicitySpec Spec = AtomicitySpec::initial(P);

  // --- Refinement mode. ----------------------------------------------------
  if (Opts.Refine) {
    RefinementOptions ROpts;
    ROpts.Checker = Opts.ModeName == "velodrome"
                        ? RefinementChecker::Velodrome
                    : Opts.ModeName == "multi-run"
                        ? RefinementChecker::MultiRun
                        : RefinementChecker::SingleRun;
    ROpts.Deterministic = Opts.Deterministic;
    ROpts.Seed = Opts.Seed;
    RefinementResult R = iterativeRefinement(P, ROpts);
    std::printf("refinement converged after %u trials\n", R.Trials);
    for (const std::string &Name : R.BlameOrder)
      std::printf("  atomicity violation: %s\n", Name.c_str());
    std::printf("final specification excludes %zu methods\n",
                R.FinalSpec.excluded().size());
    return R.AllBlamed.empty() ? 0 : 1;
  }

  // --- Multi-run convenience mode. -----------------------------------------
  if (Opts.ModeName == "multi-run") {
    RunOutcome O = runMultiRunTrial(P, Spec, std::max(1u, Opts.Trials),
                                    Opts.Seed, Opts.Deterministic);
    std::printf("first-run union: %zu method(s), unary=%s\n",
                O.StaticInfo.MethodNames.size(),
                O.StaticInfo.AnyUnary ? "yes" : "no");
    printOutcome(P, O, Opts);
    if (O.Result.Fault != rt::CheckerFault::None || O.Result.Aborted)
      return ExitFault;
    if (!O.BlamedMethods.empty())
      return ExitViolations;
    return O.PotentialMethods.empty() ? ExitClean : ExitFault;
  }

  // --- Single configuration. -----------------------------------------------
  Mode M;
  if (!modeFromName(Opts.ModeName, M)) {
    std::fprintf(stderr, "error: unknown mode '%s' (expected %s)\n",
                 Opts.ModeName.c_str(), modeListString().c_str());
    return ExitUsage;
  }

  analysis::StaticTransactionInfo Info;
  RunConfig Cfg;
  Cfg.M = M;
  Cfg.RunOpts.Deterministic = Opts.Deterministic;
  if (Opts.SchedName == "pct") {
    Cfg.RunOpts.Strategy = rt::ScheduleStrategy::Pct;
    Cfg.RunOpts.PctChangePoints = Opts.PctDepth;
  } else if (Opts.SchedName != "random") {
    std::fprintf(stderr, "error: unknown scheduler '%s'\n",
                 Opts.SchedName.c_str());
    return ExitUsage;
  }
  if ((!Opts.ScheduleOutFile.empty() || !Opts.ScheduleInFile.empty() ||
       Opts.SchedName != "random") &&
      !Opts.Deterministic) {
    std::fprintf(stderr, "error: --sched/--schedule-out/--schedule-in need "
                         "--det\n");
    return ExitUsage;
  }
  if (!Opts.ScheduleInFile.empty() &&
      !rt::readScheduleFile(Opts.ScheduleInFile,
                            Cfg.RunOpts.ExplicitSchedule)) {
    std::fprintf(stderr, "error: cannot read schedule file '%s'\n",
                 Opts.ScheduleInFile.c_str());
    return ExitUsage;
  }
  Cfg.ParallelPcd = Opts.ParallelPcd;
  Cfg.PcdWorkers = Opts.PcdWorkers;
  Cfg.SerializedIdg = Opts.SerializedIdg;
  Cfg.LegacyLog = Opts.LegacyLog;
  Cfg.ThreadArenaLog = Opts.ArenaLog;
  Cfg.SerialRoundtrips = Opts.SerialRoundtrips;
  Cfg.BatchedScc = Opts.BatchedScc;
  Cfg.IcdLockedFastPath = Opts.IcdLockedFastPath;
  Cfg.MemBudgetMB = Opts.MemBudgetMB;
  Cfg.PcdTimeoutMs = Opts.PcdTimeoutMs;
  if (!Opts.FaultPlanSpec.empty()) {
    std::string PlanError;
    if (!FaultPlan::parse(Opts.FaultPlanSpec, Cfg.Faults, PlanError)) {
      std::fprintf(stderr, "error: bad --fault-plan: %s\n",
                   PlanError.c_str());
      return ExitUsage;
    }
  }
  if (!Opts.Deterministic)
    Cfg.RunOpts.PreemptEveryN = 1024;
  if (M == Mode::SecondRun || M == Mode::SecondRunVelodrome) {
    if (Opts.StaticInfoFile.empty()) {
      std::fprintf(stderr,
                   "error: second-run modes need --static-info <file>\n");
      return ExitUsage;
    }
    std::ifstream In(Opts.StaticInfoFile);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Info = analysis::StaticTransactionInfo::parse(Buf.str());
    Cfg.StaticInfo = &Info;
  }

  if (Opts.DumpCompiledIr) {
    // Reuse the core pipeline's instrumentation decisions via a dry run of
    // the compiler (mirrors core::runChecker's configuration).
    std::printf("%s", ir::toString(P).c_str());
    return 0;
  }

  // --- Streaming service mode (DESIGN.md §15). -----------------------------
  Cfg.WindowTxs =
      Opts.WindowTxs != 0 ? Opts.WindowTxs : (Opts.Serve ? 4096 : 0);
  std::ofstream NdjsonOut;
  std::unique_ptr<rt::StreamingSession> Session;
  if (Opts.Serve) {
    std::ostream *EventOut = &std::cout;
    if (!Opts.NdjsonFile.empty()) {
      NdjsonOut.open(Opts.NdjsonFile);
      if (!NdjsonOut) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     Opts.NdjsonFile.c_str());
        return ExitUsage;
      }
      EventOut = &NdjsonOut;
    }
    rt::StreamingSession::Options SOpts;
    SOpts.Out = EventOut;
    SOpts.HealthEveryWindows = Opts.HealthEvery;
    SOpts.MethodName = [&P](ir::MethodId Id) { return P.Methods[Id].Name; };
    Session = std::make_unique<rt::StreamingSession>(std::move(SOpts));
    Cfg.Session = Session.get();
  }
  std::unique_ptr<TraceRecorder> Trace;
  if (!Opts.TraceOutFile.empty()) {
    Trace = std::make_unique<TraceRecorder>();
    Cfg.Trace = Trace.get();
  }

  bool AnyBlame = false;
  bool AnyPotential = false;
  bool AnyAborted = false;
  rt::CheckerFault FirstFault = rt::CheckerFault::None;
  std::set<std::string> AllBlamed, AllPotential;
  uint64_t TotalRecords = 0;
  std::vector<uint32_t> ExecutedSchedule;
  for (unsigned T = 0; T < std::max(1u, Opts.Trials); ++T) {
    Cfg.RunOpts.ScheduleSeed = Opts.Seed + T;
    // Only the first trial's schedule is recorded; one file, one replay.
    Cfg.RunOpts.ScheduleOut =
        (T == 0 && !Opts.ScheduleOutFile.empty()) ? &ExecutedSchedule
                                                  : nullptr;
    RunOutcome O = runChecker(P, Spec, Cfg);
    if (Cfg.RunOpts.ScheduleOut) {
      if (rt::writeScheduleFile(Opts.ScheduleOutFile, ExecutedSchedule))
        std::printf("schedule (%zu picks) written to %s\n",
                    ExecutedSchedule.size(), Opts.ScheduleOutFile.c_str());
      else
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     Opts.ScheduleOutFile.c_str());
    }
    if (Opts.Trials > 1)
      std::printf("--- trial %u (seed %llu) ---\n", T,
                  (unsigned long long)Cfg.RunOpts.ScheduleSeed);
    printOutcome(P, O, Opts);
    AnyBlame = AnyBlame || !O.BlamedMethods.empty();
    AnyPotential = AnyPotential || !O.PotentialMethods.empty();
    AnyAborted = AnyAborted || O.Result.Aborted;
    if (FirstFault == rt::CheckerFault::None)
      FirstFault = O.Result.Fault;
    AllBlamed.insert(O.BlamedMethods.begin(), O.BlamedMethods.end());
    AllPotential.insert(O.PotentialMethods.begin(),
                        O.PotentialMethods.end());
    TotalRecords += O.Violations.size();
    if (!Opts.EmitStaticFile.empty()) {
      std::ofstream OutFile(Opts.EmitStaticFile,
                            T == 0 ? std::ios::trunc : std::ios::app);
      OutFile << O.StaticInfo.serialize();
      std::printf("static transaction info written to %s\n",
                  Opts.EmitStaticFile.c_str());
    }
  }

  // The documented contract: a fault (or abort) trumps everything — the
  // answer is "checker unhealthy", regardless of what was found before the
  // fault; precise blame is 1; a degraded potential-only report cannot
  // prove either direction, so it maps to 2, not 0 and not 1.
  int Exit = AnyBlame ? ExitViolations : ExitClean;
  if (FirstFault != rt::CheckerFault::None || AnyAborted ||
      (!AnyBlame && AnyPotential))
    Exit = ExitFault;
  if (Session)
    Session->finish(AllBlamed, AllPotential, TotalRecords, FirstFault, Exit);
  if (Trace && !Trace->writeJson(Opts.TraceOutFile))
    std::fprintf(stderr, "error: cannot write '%s'\n",
                 Opts.TraceOutFile.c_str());
  return Exit;
}
