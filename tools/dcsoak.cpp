//===- tools/dcsoak.cpp - Streaming service-mode soak harness -------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-haul prover for streaming service mode (DESIGN.md §15): churn
/// generated programs through the windowed engines for a wall-clock or
/// iteration budget, layering deterministic FaultPlan injections over the
/// retirement windows, and assert the service-mode contract end to end:
///
///   * bounded memory — RSS sampled every iteration; the second half of the
///     soak must not grow past the first half (plus slack), i.e. windowed
///     retirement actually retires;
///   * zero missed seeded violations — every trace the ground-truth oracle
///     proves non-serializable is reported by the streamed run (precisely
///     or as a sound Potential), across every window boundary;
///   * batch-vs-streaming verdict equality — same blamed set, same
///     potential set, same has-records bit as the unwindowed run on the
///     same recorded schedule, for both windowed engines;
///   * engine agreement — DoubleChecker and the vector-clock engine agree
///     with the oracle (and hence each other) on every streamed verdict;
///   * zero unstructured hangs — fault iterations replay the full fault
///     sweep (worker stalls/deaths, allocation failure, queue saturation,
///     wedged window flushes) layered over windowing; every stall must
///     surface as a structured CheckerFault, never an abort or a hang.
///
/// A machine-readable result lands in --json-out (committed as SOAK.json
/// by tools/ci.sh); --ndjson tails the live event stream of every healthy
/// iteration. Exit 0 = contract held for the whole budget, 1 = a check
/// failed (diagnosis on stderr), 64 = usage error.
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/Checker.h"
#include "rt/StreamingSession.h"
#include "support/Oracle.h"
#include "tools/FuzzLib.h"

using namespace dc;

namespace {

struct SoakOptions {
  double Seconds = 60;      ///< Wall-clock budget (0 = iterations only).
  uint64_t Iterations = 0;  ///< Iteration budget (0 = time only).
  uint64_t Seed = 1;
  uint32_t WindowTxs = 3;   ///< Small: force many retirement epochs.
  uint64_t MinWindows = 100; ///< Contract: at least this many epochs total.
  uint32_t FaultEvery = 3;  ///< Every Nth iteration replays a fault case.
  uint64_t ProgressEvery = 0;
  std::string JsonOut;
  std::string NdjsonOut;
};

/// VmRSS in KiB from /proc/self/status (0 if unavailable — the RSS bound
/// is then skipped rather than failed, e.g. on non-Linux).
uint64_t rssKb() {
  std::ifstream In("/proc/self/status");
  std::string Line;
  while (std::getline(In, Line))
    if (Line.rfind("VmRSS:", 0) == 0)
      return std::strtoull(Line.c_str() + 6, nullptr, 10);
  return 0;
}

std::string describeSet(const std::set<std::string> &S) {
  std::string Out = "{";
  for (const std::string &M : S)
    Out += M + ",";
  if (Out.size() > 1)
    Out.back() = '}';
  else
    Out += '}';
  return Out;
}

bool isSubset(const std::set<std::string> &A, const std::set<std::string> &B) {
  for (const std::string &X : A)
    if (!B.count(X))
      return false;
  return true;
}

struct Totals {
  uint64_t Iterations = 0;
  uint64_t Windows = 0;
  uint64_t SeededViolations = 0; ///< Oracle-proven non-serializable traces.
  uint64_t CaughtViolations = 0; ///< ... reported by the streamed run.
  uint64_t StreamedRecords = 0;
  uint64_t FaultRuns = 0;
  uint64_t RssPeakKb = 0;
  uint64_t RssFirstHalfPeakKb = 0;
  uint64_t RssSecondHalfPeakKb = 0;
  double Seconds = 0;
};

void writeJson(const std::string &Path, const Totals &T, bool Pass,
               const std::string &Failure, const SoakOptions &O) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "dcsoak: cannot write '%s'\n", Path.c_str());
    return;
  }
  Out << "{\n"
      << "  \"verdict\": \"" << (Pass ? "pass" : "fail") << "\",\n";
  if (!Pass)
    Out << "  \"failure\": \"" << Failure << "\",\n";
  Out << "  \"seconds\": " << T.Seconds << ",\n"
      << "  \"iterations\": " << T.Iterations << ",\n"
      << "  \"window_txs\": " << O.WindowTxs << ",\n"
      << "  \"retirement_windows\": " << T.Windows << ",\n"
      << "  \"seeded_violations\": " << T.SeededViolations << ",\n"
      << "  \"caught_violations\": " << T.CaughtViolations << ",\n"
      << "  \"streamed_records\": " << T.StreamedRecords << ",\n"
      << "  \"fault_runs\": " << T.FaultRuns << ",\n"
      << "  \"rss_peak_kb\": " << T.RssPeakKb << ",\n"
      << "  \"rss_first_half_peak_kb\": " << T.RssFirstHalfPeakKb << ",\n"
      << "  \"rss_second_half_peak_kb\": " << T.RssSecondHalfPeakKb << "\n"
      << "}\n";
}

void printUsage() {
  std::printf(
      "usage: dcsoak [options]\n"
      "  --seconds <s>     wall-clock budget (default 60; 0 = unlimited)\n"
      "  --iterations <n>  iteration budget (default 0 = time only)\n"
      "  --seed <n>        base program/schedule seed (default 1)\n"
      "  --window-txs <n>  retirement-window cadence (default 3 — small,\n"
      "                    so every run crosses many window boundaries)\n"
      "  --min-windows <n> fail if fewer epochs flushed overall (default\n"
      "                    100)\n"
      "  --fault-every <n> replay a rotating fault-sweep case (layered\n"
      "                    over windowing) every nth iteration (default 3,\n"
      "                    0 = never)\n"
      "  --json-out <path> machine-readable result (SOAK.json)\n"
      "  --ndjson <path>   append every healthy iteration's event stream\n"
      "  --progress <n>    progress line on stderr every n iterations\n");
}

} // namespace

int main(int Argc, char **Argv) {
  SoakOptions O;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    const char *V;
    if (Arg == "--seconds" && (V = Value()))
      O.Seconds = std::atof(V);
    else if (Arg == "--iterations" && (V = Value()))
      O.Iterations = std::strtoull(V, nullptr, 10);
    else if (Arg == "--seed" && (V = Value()))
      O.Seed = std::strtoull(V, nullptr, 10);
    else if (Arg == "--window-txs" && (V = Value()))
      O.WindowTxs = static_cast<uint32_t>(std::atoi(V));
    else if (Arg == "--min-windows" && (V = Value()))
      O.MinWindows = std::strtoull(V, nullptr, 10);
    else if (Arg == "--fault-every" && (V = Value()))
      O.FaultEvery = static_cast<uint32_t>(std::atoi(V));
    else if (Arg == "--json-out" && (V = Value()))
      O.JsonOut = V;
    else if (Arg == "--ndjson" && (V = Value()))
      O.NdjsonOut = V;
    else if (Arg == "--progress" && (V = Value()))
      O.ProgressEvery = std::strtoull(V, nullptr, 10);
    else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "dcsoak: bad argument '%s'\n", Arg.c_str());
      printUsage();
      return 64;
    }
  }
  if (O.WindowTxs == 0 || (O.Seconds <= 0 && O.Iterations == 0)) {
    std::fprintf(stderr, "dcsoak: need --window-txs > 0 and a budget\n");
    return 64;
  }

  std::ofstream Ndjson;
  if (!O.NdjsonOut.empty()) {
    Ndjson.open(O.NdjsonOut);
    if (!Ndjson) {
      std::fprintf(stderr, "dcsoak: cannot write '%s'\n", O.NdjsonOut.c_str());
      return 64;
    }
  }

  const std::vector<fuzz::FaultCase> FaultCases = fuzz::faultSweepCases();
  using Clock = std::chrono::steady_clock;
  const auto Start = Clock::now();
  auto Elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  };

  Totals T;
  std::vector<uint64_t> RssSeries;
  std::string Failure;
  auto Fail = [&](const std::string &Msg) {
    Failure = Msg;
    std::fprintf(stderr, "dcsoak: FAIL at iteration %llu: %s\n",
                 static_cast<unsigned long long>(T.Iterations), Msg.c_str());
  };

  for (uint64_t It = 0; Failure.empty(); ++It) {
    if (O.Iterations != 0 && It >= O.Iterations)
      break;
    if (O.Seconds > 0 && Elapsed() >= O.Seconds && It > 0)
      break;
    T.Iterations = It + 1;

    // One churn unit: a fresh tiny program on an adversarial schedule,
    // with the ground truth decided by the serializability oracle.
    fuzz::ProgSpec Spec = fuzz::randomSpec(O.Seed + It);
    ir::Program P = Spec.build();
    core::AtomicitySpec AS = core::AtomicitySpec::initial(P);
    rt::RunOptions RO;
    RO.Deterministic = true;
    RO.MaxSteps = 1ull << 20;
    if (It % 2 == 0) { // Alternate PCT and uniform random schedules.
      RO.Strategy = rt::ScheduleStrategy::Pct;
      RO.PctChangePoints = 3;
      RO.PctExpectedSteps = 128;
    }
    RO.ScheduleSeed = (O.Seed + It) * 0x9E3779B9u + 1;
    oracle::RecordedTrace Trace = oracle::recordTrace(P, AS, RO);
    if (Trace.Result.Aborted)
      continue;
    oracle::OracleVerdict V = oracle::decideSerializability(P, Trace);
    if (!V.Serializable)
      ++T.SeededViolations;

    const bool FaultIteration =
        O.FaultEvery != 0 && (It + 1) % O.FaultEvery == 0;
    if (FaultIteration) {
      // Layer the next fault-sweep case over streaming windows and hold it
      // to the degradation-soundness contract: structured termination, no
      // lost coverage, precise tier stays precise. A wedged component in a
      // window must surface as a CheckerFault — checkFaultCase fails on
      // any abort, and the watchdog bounds every wait, so an unstructured
      // hang cannot pass silently.
      fuzz::FaultCase Case = FaultCases[(It / O.FaultEvery) %
                                        FaultCases.size()];
      if (Case.WindowTxs == 0)
        Case.WindowTxs = O.WindowTxs;
      ++T.FaultRuns;
      if (auto D = fuzz::checkFaultCase(P, Trace, Case)) {
        Fail(*D);
        break;
      }
      if (!V.Serializable)
        ++T.CaughtViolations; // checkFaultCase proved coverage (part 1).
    } else {
      // Healthy iteration: stream both windowed engines through a live
      // StreamingSession and compare against their batch runs and the
      // oracle. checkWindowedPair owns batch-vs-streaming equality and
      // the streamed-counter cross-checks; the engine-agreement and
      // missed-violation checks ride on its verdict-equality guarantees.
      if (auto D = fuzz::checkWindowedPair(P, Trace, O.WindowTxs)) {
        Fail(*D);
        break;
      }
      // Re-run the streamed DoubleChecker config once more for the soak's
      // own counters (windows flushed, records streamed, NDJSON tail) —
      // deterministic replay makes this bit-identical to the checked run.
      std::ostream *Sink = Ndjson.is_open() ? &Ndjson : nullptr;
      rt::StreamingSession::Options SOpts;
      SOpts.Out = Sink;
      SOpts.MethodName = [&P](ir::MethodId Id) {
        return P.Methods[Id].Name;
      };
      rt::StreamingSession Session(std::move(SOpts));
      core::RunConfig Cfg;
      Cfg.M = core::Mode::SingleRun;
      Cfg.RunOpts.Deterministic = true;
      Cfg.RunOpts.ExplicitSchedule = Trace.Schedule;
      Cfg.RunOpts.OnScheduleExhausted = rt::ScheduleExhaustPolicy::HardError;
      Cfg.RunOpts.MaxSteps = 1ull << 22;
      Cfg.WindowTxs = O.WindowTxs;
      Cfg.Session = &Session;
      core::RunOutcome Run = core::runChecker(P, AS, Cfg);
      if (Run.Result.Aborted ||
          Run.Result.Fault != rt::CheckerFault::None) {
        Fail("healthy streamed run reported fault " +
             std::string(rt::toString(Run.Result.Fault)));
        break;
      }
      T.Windows += Run.stat("governor.windows_flushed");
      T.StreamedRecords += Session.violationsStreamed();
      std::set<std::string> Reported = Run.BlamedMethods;
      Reported.insert(Run.PotentialMethods.begin(),
                      Run.PotentialMethods.end());
      if (!V.Serializable) {
        if (Reported.empty()) {
          Fail("streamed run missed a seeded violation (oracle cycles " +
               describeSet(V.CycleMethods) + ")");
          break;
        }
        ++T.CaughtViolations;
      }
      if (!isSubset(Run.BlamedMethods, V.CycleMethods)) {
        Fail("streamed blame " + describeSet(Run.BlamedMethods) +
             " outside oracle cycles " + describeSet(V.CycleMethods));
        break;
      }
    }

    const uint64_t Rss = rssKb();
    if (Rss != 0) {
      RssSeries.push_back(Rss);
      if (Rss > T.RssPeakKb)
        T.RssPeakKb = Rss;
    }
    if (O.ProgressEvery != 0 && (It + 1) % O.ProgressEvery == 0)
      std::fprintf(stderr,
                   "dcsoak: %llu iterations, %llu windows, %llu/%llu "
                   "violations caught, %llu fault runs, rss %llu KiB, "
                   "%.1fs\n",
                   static_cast<unsigned long long>(T.Iterations),
                   static_cast<unsigned long long>(T.Windows),
                   static_cast<unsigned long long>(T.CaughtViolations),
                   static_cast<unsigned long long>(T.SeededViolations),
                   static_cast<unsigned long long>(T.FaultRuns),
                   static_cast<unsigned long long>(Rss), Elapsed());
  }
  T.Seconds = Elapsed();

  // Post-hoc contract checks (only when the loop itself stayed clean).
  if (Failure.empty() && T.Windows < O.MinWindows)
    Fail("only " + std::to_string(T.Windows) +
         " retirement windows flushed (< " + std::to_string(O.MinWindows) +
         "): the soak did not exercise windowing");
  if (Failure.empty() && T.CaughtViolations != T.SeededViolations)
    Fail("caught " + std::to_string(T.CaughtViolations) + " of " +
         std::to_string(T.SeededViolations) + " seeded violations");
  if (Failure.empty() && RssSeries.size() >= 8) {
    // Bounded memory: the peak over the soak's second half must not exceed
    // the first half's peak by more than slack. Per-iteration state dies
    // with the run, so unbounded growth here means retirement (or the
    // allocator behind it) is leaking across iterations.
    const size_t Half = RssSeries.size() / 2;
    for (size_t I = 0; I < RssSeries.size(); ++I) {
      uint64_t &Peak =
          I < Half ? T.RssFirstHalfPeakKb : T.RssSecondHalfPeakKb;
      if (RssSeries[I] > Peak)
        Peak = RssSeries[I];
    }
    const uint64_t SlackKb = 64 * 1024;
    if (T.RssSecondHalfPeakKb > T.RssFirstHalfPeakKb + SlackKb)
      Fail("RSS grew from " + std::to_string(T.RssFirstHalfPeakKb) +
           " KiB (first-half peak) to " +
           std::to_string(T.RssSecondHalfPeakKb) +
           " KiB (second-half peak): retirement is not bounding memory");
  }

  const bool Pass = Failure.empty();
  if (!O.JsonOut.empty())
    writeJson(O.JsonOut, T, Pass, Failure, O);
  std::printf("dcsoak: %s — %llu iterations, %llu retirement windows, "
              "%llu/%llu seeded violations caught, %llu fault runs, "
              "rss peak %llu KiB, %.1fs\n",
              Pass ? "PASS" : "FAIL",
              static_cast<unsigned long long>(T.Iterations),
              static_cast<unsigned long long>(T.Windows),
              static_cast<unsigned long long>(T.CaughtViolations),
              static_cast<unsigned long long>(T.SeededViolations),
              static_cast<unsigned long long>(T.FaultRuns),
              static_cast<unsigned long long>(T.RssPeakKb), T.Seconds);
  return Pass ? 0 : 1;
}
