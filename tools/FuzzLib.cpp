//===- tools/FuzzLib.cpp --------------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tools/FuzzLib.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/Checker.h"
#include "ir/Builder.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "rt/Scheduler.h"
#include "rt/StreamingSession.h"
#include "support/Rng.h"

using namespace dc;
using namespace dc::fuzz;

//===----------------------------------------------------------------------===//
// Program generator
//===----------------------------------------------------------------------===//

ir::Program ProgSpec::build() const {
  ir::ProgramBuilder B("fuzz" + std::to_string(Seed), Seed);
  const uint32_t NumObjs = std::max(1u, Objects);
  const uint32_t NumFields = std::max(1u, Fields);
  ir::PoolId Shared = B.addPool("shared", NumObjs, NumFields);
  ir::PoolId Lock = B.addPool("lock", 1, 1);

  std::vector<ir::MethodId> Ids;
  for (size_t M = 0; M < Methods.size(); ++M) {
    auto &BB = B.beginMethod("m" + std::to_string(M), Methods[M].Atomic);
    if (Methods[M].Locked)
      BB.acquire(Lock, ir::idxConst(0));
    for (const SpecAccess &A : Methods[M].Body) {
      if (A.IsWrite)
        BB.write(Shared, ir::idxConst(A.Obj % NumObjs),
                 static_cast<uint32_t>(A.Field % NumFields));
      else
        BB.read(Shared, ir::idxConst(A.Obj % NumObjs),
                static_cast<uint32_t>(A.Field % NumFields));
      if (A.WorkAfter)
        BB.work(A.WorkAfter);
    }
    if (Methods[M].Locked)
      BB.release(Lock, ir::idxConst(0));
    Ids.push_back(BB.endMethod());
  }

  std::vector<ir::MethodId> WorkerIds;
  for (size_t W = 0; W < Workers.size(); ++W) {
    auto &BB = B.beginMethod("w" + std::to_string(W), false);
    if (!Ids.empty())
      for (uint32_t C : Workers[W].Calls)
        BB.call(Ids[C % Ids.size()]);
    WorkerIds.push_back(BB.endMethod());
  }

  auto &Main = B.beginMethod("main", false);
  for (uint32_t W = 1; W <= Workers.size(); ++W)
    Main.forkThread(ir::idxConst(W));
  for (uint32_t W = 1; W <= Workers.size(); ++W)
    Main.joinThread(ir::idxConst(W));
  ir::MethodId MainId = Main.endMethod();
  B.addThread(MainId);
  for (ir::MethodId W : WorkerIds)
    B.addThread(W);
  return B.build();
}

uint64_t ProgSpec::staticAccesses() const {
  uint64_t N = 0;
  for (const SpecThread &W : Workers)
    for (uint32_t C : W.Calls)
      if (!Methods.empty())
        N += Methods[C % Methods.size()].Body.size();
  return N;
}

ProgSpec fuzz::randomSpec(uint64_t Seed) {
  SplitMix64 Rng(Seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
  ProgSpec S;
  S.Seed = Seed;
  S.Objects = 1 + static_cast<uint32_t>(Rng.nextBelow(2));
  S.Fields = 1 + static_cast<uint32_t>(Rng.nextBelow(2));
  const uint32_t NumMethods = 2 + static_cast<uint32_t>(Rng.nextBelow(3));
  for (uint32_t M = 0; M < NumMethods; ++M) {
    SpecMethod SM;
    SM.Atomic = Rng.nextBelow(10) < 8;
    SM.Locked = Rng.nextBelow(10) < 3;
    const uint32_t Accesses = 1 + static_cast<uint32_t>(Rng.nextBelow(3));
    for (uint32_t A = 0; A < Accesses; ++A) {
      SpecAccess SA;
      SA.IsWrite = Rng.nextBelow(2) == 0;
      SA.Obj = static_cast<uint8_t>(Rng.nextBelow(S.Objects));
      SA.Field = static_cast<uint8_t>(Rng.nextBelow(S.Fields));
      SA.WorkAfter = static_cast<uint8_t>(Rng.nextBelow(3));
      SM.Body.push_back(SA);
    }
    S.Methods.push_back(std::move(SM));
  }
  const uint32_t NumWorkers = 2 + static_cast<uint32_t>(Rng.nextBelow(2));
  for (uint32_t W = 0; W < NumWorkers; ++W) {
    SpecThread ST;
    const uint32_t Calls = 1 + static_cast<uint32_t>(Rng.nextBelow(3));
    for (uint32_t C = 0; C < Calls; ++C)
      ST.Calls.push_back(static_cast<uint32_t>(Rng.nextBelow(NumMethods)));
    S.Workers.push_back(std::move(ST));
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Config-matrix sweep
//===----------------------------------------------------------------------===//

namespace {

struct ConfigOutcome {
  std::string Name;
  std::set<std::string> Blamed;
  bool Records = false;
};

rt::RunOptions replayOpts(const std::vector<uint32_t> &Schedule) {
  rt::RunOptions RO;
  RO.Deterministic = true;
  RO.ExplicitSchedule = Schedule;
  // The recorded schedule must cover the whole replayed execution; since
  // every config compiles to the same instruction stream, anything else is
  // itself a divergence worth reporting.
  RO.OnScheduleExhausted = rt::ScheduleExhaustPolicy::HardError;
  RO.MaxSteps = 1ull << 22;
  return RO;
}

std::string describeSet(const std::set<std::string> &S) {
  if (S.empty())
    return "{}";
  std::string Out = "{";
  for (const std::string &M : S)
    Out += M + ",";
  Out.back() = '}';
  return Out;
}

std::string describeOutcome(const ConfigOutcome &C) {
  return C.Name + ": blamed=" + describeSet(C.Blamed) +
         (C.Records ? " records=yes" : " records=no");
}

bool isSubset(const std::set<std::string> &A, const std::set<std::string> &B) {
  for (const std::string &X : A)
    if (!B.count(X))
      return false;
  return true;
}

} // namespace

PairResult fuzz::checkPair(const ir::Program &Source,
                           const oracle::RecordedTrace &Trace,
                           bool InjectIcdBug) {
  PairResult R;
  oracle::OracleVerdict V = oracle::decideSerializability(Source, Trace);
  R.OracleViolation = !V.Serializable;
  core::AtomicitySpec Spec = core::AtomicitySpec::initial(Source);

  std::vector<ConfigOutcome> Outcomes;
  auto Fail = [&](const std::string &Msg) {
    std::string D = Msg + "\n  oracle: " +
                    (V.Serializable ? "serializable" : "NOT serializable") +
                    " cycle-methods=" + describeSet(V.CycleMethods);
    for (const ConfigOutcome &C : Outcomes)
      D += "\n  " + describeOutcome(C);
    R.Divergence = D;
  };

  // Checks one config's outcome against the oracle and the first config;
  // returns false (with R.Divergence set) on the first mismatch so callers
  // can stop sweeping early.
  auto Admit = [&](const std::string &Name,
                   const core::RunOutcome &O) -> bool {
    if (O.Result.ScheduleDiverged) {
      Fail(Name + ": recorded schedule did not replay (gate divergence)");
      return false;
    }
    if (O.Result.Aborted) {
      Fail(Name + ": replay aborted");
      return false;
    }
    ConfigOutcome C{Name, O.BlamedMethods, !O.Violations.empty()};
    Outcomes.push_back(C);
    if (C.Records != !V.Serializable) {
      Fail(Name + (C.Records ? ": reports a violation on a serializable trace"
                             : ": misses a violation the oracle proves"));
      return false;
    }
    if (!isSubset(C.Blamed, V.CycleMethods)) {
      Fail(Name + ": blames methods outside the oracle's dependence cycles");
      return false;
    }
    if (Outcomes.size() > 1 && (C.Blamed != Outcomes[0].Blamed ||
                                C.Records != Outcomes[0].Records)) {
      Fail(Name + ": disagrees with " + Outcomes[0].Name);
      return false;
    }
    return true;
  };

  // Transport axis values: 0 = ring (default), 1 = arena, 2 = legacy.
  auto BaseCfg = [&](core::Mode M, bool SerIdg, int Transport,
                     bool SerialOctet) {
    core::RunConfig Cfg;
    Cfg.M = M;
    Cfg.RunOpts = replayOpts(Trace.Schedule);
    Cfg.SerializedIdg = SerIdg;
    Cfg.ThreadArenaLog = Transport == 1;
    Cfg.LegacyLog = Transport == 2;
    Cfg.SerialRoundtrips = SerialOctet;
    Cfg.TestOnlyUnsoundIcdFilter = InjectIcdBug;
    return Cfg;
  };
  auto KnobName = [](bool SerIdg, int Transport, bool SerialOctet) {
    return std::string(SerIdg ? "serialized-idg" : "sharded-idg") + "/" +
           (Transport == 0 ? "ring-log"
                           : Transport == 1 ? "arena-log" : "legacy-log") +
           "/" + (SerialOctet ? "serial-octet" : "fanout-octet");
  };

  // Single-run DoubleChecker across the 2×3×2 knob grid (IDG sharding ×
  // log transport × Octet coordination protocol, DESIGN.md §11–§13) — the
  // per-CPU ring transport, the per-thread arena escape hatch, and the
  // legacy path must blame identically on one schedule.
  for (bool SerIdg : {false, true})
    for (int Transport : {0, 1, 2})
      for (bool SerialOctet : {false, true}) {
        core::RunOutcome O = core::runChecker(
            Source, Spec,
            BaseCfg(core::Mode::SingleRun, SerIdg, Transport, SerialOctet));
        if (!Admit("single/" + KnobName(SerIdg, Transport, SerialOctet), O))
          return R;
      }

  // Cycle-detection axis, collapsed to extra configs (orthogonal to the
  // other knobs). The 2×2×2 grid above runs the default *incremental*
  // order-maintenance detector (DESIGN.md §12); these replay the same
  // schedule through the batched stop-the-world Tarjan passes — the
  // differential partner that claims the same components at the same claim
  // points, so violations must be identical.
  {
    core::RunConfig Cfg = BaseCfg(core::Mode::SingleRun, false, 0, false);
    Cfg.BatchedScc = true;
    core::RunOutcome O = core::runChecker(Source, Spec, Cfg);
    if (!Admit("single/batched-scc", O))
      return R;
  }
  // Batched-mode root scheduling: eager roots pend every cross-touched
  // transaction and walk every chain node, instead of the out-cross root
  // filter with chain compression. Detected components — and therefore
  // violations — must be identical.
  {
    core::RunConfig Cfg = BaseCfg(core::Mode::SingleRun, false, 0, false);
    Cfg.BatchedScc = true;
    Cfg.EagerSccRoots = true;
    core::RunOutcome O = core::runChecker(Source, Spec, Cfg);
    if (!Admit("single/batched-scc-eager-roots", O))
      return R;
  }
  // Incremental detector with a region cap of 1: every inconsistent edge
  // trips the oversized valve, so *all* cycles must surface as potential
  // violations — never vanish. Checked against the oracle only (the valve
  // intentionally trades blame precision for bounded reorder cost, so the
  // blamed set legitimately differs from the precise configs).
  {
    core::RunConfig Cfg = BaseCfg(core::Mode::SingleRun, false, 0, false);
    Cfg.IcdMaxRegion = 1;
    core::RunOutcome O = core::runChecker(Source, Spec, Cfg);
    if (O.Result.ScheduleDiverged || O.Result.Aborted) {
      Fail("single/icd-region-cap-1: recorded schedule did not replay");
      return R;
    }
    std::set<std::string> Reported = O.BlamedMethods;
    Reported.insert(O.PotentialMethods.begin(), O.PotentialMethods.end());
    if (!V.Serializable && Reported.empty()) {
      Fail("single/icd-region-cap-1: reports nothing on a trace the oracle "
           "proves non-serializable");
      return R;
    }
    // The degraded report must stay inside the oracle's cycles ∪ the
    // methods the valve pessimistically flags; precise blame (if any) must
    // stay a subset of the reference config's.
    if (!isSubset(O.BlamedMethods, V.CycleMethods)) {
      Fail("single/icd-region-cap-1: blames methods outside the oracle's "
           "dependence cycles");
      return R;
    }
  }
  // Incremental detector with the lock-free consistent-edge fast path
  // disabled: every cross edge takes the detector lock (the pre-seqlock
  // behaviour). The fast path must be a pure performance change — blamed
  // and potential sets stay bit-equal to the default config's.
  {
    core::RunConfig Cfg = BaseCfg(core::Mode::SingleRun, false, 0, false);
    Cfg.IcdLockedFastPath = true;
    core::RunOutcome O = core::runChecker(Source, Spec, Cfg);
    if (!Admit("single/icd-locked-fastpath", O))
      return R;
  }

  // Velodrome baseline (its own instrumentation; no DC knobs, no injected
  // bug — it is one of the two references the bug must diverge from).
  {
    core::RunConfig Cfg;
    Cfg.M = core::Mode::Velodrome;
    Cfg.RunOpts = replayOpts(Trace.Schedule);
    core::RunOutcome O = core::runChecker(Source, Spec, Cfg);
    if (!Admit("velodrome", O))
      return R;
  }

  // Vector-clock engine (DESIGN.md §14): the third independent backend. Its
  // verdict must match the oracle (and hence every other config) exactly.
  // Blame is checked for oracle-subset only: the engine sees just the
  // closing edge of each cycle, so its blamed set legitimately differs from
  // the graph engines' whole-cycle blame scan.
  {
    core::RunConfig Cfg;
    Cfg.M = core::Mode::VectorClock;
    Cfg.RunOpts = replayOpts(Trace.Schedule);
    core::RunOutcome O = core::runChecker(Source, Spec, Cfg);
    if (O.Result.ScheduleDiverged) {
      Fail("vc: recorded schedule did not replay (gate divergence)");
      return R;
    }
    if (O.Result.Aborted) {
      Fail("vc: replay aborted");
      return R;
    }
    ConfigOutcome C{"vc", O.BlamedMethods, !O.Violations.empty()};
    Outcomes.push_back(C);
    if (C.Records != !V.Serializable) {
      Fail("vc" + std::string(C.Records
                                  ? ": reports a violation on a serializable "
                                    "trace"
                                  : ": misses a violation the oracle proves"));
      return R;
    }
    if (!isSubset(C.Blamed, V.CycleMethods)) {
      Fail("vc: blames methods outside the oracle's dependence cycles");
      return R;
    }
    // The predecessor-walk members are a stronger claim than the blamed
    // set: every regular transaction the walk emits into a record's cycle
    // is asserted to lie on an actual dependence cycle — exactly what the
    // provenance argument in VectorClockChecker.h promises.
    for (const analysis::ViolationRecord &VR : O.Violations)
      for (const analysis::CycleMember &M : VR.Cycle)
        if (M.Site != ir::InvalidMethodId &&
            !V.CycleMethods.count(Source.Methods[M.Site].Name)) {
          Fail("vc: predecessor-walk cycle member '" +
               Source.Methods[M.Site].Name +
               "' outside the oracle's dependence cycles");
          return R;
        }
  }

  // Multi-run DoubleChecker: first run (ICD only, same schedule) feeding
  // the second run's selective instrumentation, replayed on the same
  // schedule again.
  // The Octet axis collapses to one extra multi-run config (sharded/arena/
  // serial-octet): multi-run doubles the executions per config, and the
  // coordination protocol is orthogonal to the first-run/second-run split
  // the other knobs interact with.
  for (bool SerIdg : {false, true})
    for (int Transport : {0, 1, 2})
      for (bool SerialOctet : {false, true}) {
        if (SerialOctet && (SerIdg || Transport != 0))
          continue;
        core::RunOutcome First = core::runChecker(
            Source, Spec,
            BaseCfg(core::Mode::FirstRun, SerIdg, Transport, SerialOctet));
        if (First.Result.ScheduleDiverged || First.Result.Aborted) {
          Fail("multi(first)/" + KnobName(SerIdg, Transport, SerialOctet) +
               ": recorded schedule did not replay");
          return R;
        }
        core::RunConfig Cfg =
            BaseCfg(core::Mode::SecondRun, SerIdg, Transport, SerialOctet);
        Cfg.StaticInfo = &First.StaticInfo;
        core::RunOutcome Second = core::runChecker(Source, Spec, Cfg);
        if (!Admit("multi/" + KnobName(SerIdg, Transport, SerialOctet),
                   Second))
          return R;
      }

  return R;
}

//===----------------------------------------------------------------------===//
// Fault-plan sweep (degradation soundness, DESIGN.md §10)
//===----------------------------------------------------------------------===//

std::string FaultCase::name() const {
  std::string N = "fault[" + Plan.spec();
  if (ParallelPcd)
    N += " parallel-pcd";
  if (PcdQueueDepth != 0)
    N += " queue-depth=" + std::to_string(PcdQueueDepth);
  if (MaxSccTxs != 0)
    N += " max-scc-txs=" + std::to_string(MaxSccTxs);
  if (PcdTimeoutMs != 0)
    N += " timeout-ms=" + std::to_string(PcdTimeoutMs);
  if (BatchedScc)
    N += " batched-scc";
  if (IcdMaxRegion != 0)
    N += " icd-max-region=" + std::to_string(IcdMaxRegion);
  if (IcdLockedFastPath)
    N += " icd-locked-fastpath";
  if (IcdSeqRetryStorm != 0)
    N += " icd-retry-storm=" + std::to_string(IcdSeqRetryStorm);
  if (WindowTxs != 0)
    N += " window-txs=" + std::to_string(WindowTxs);
  if (LogTransport == Transport::Arena)
    N += " arena-log";
  else if (LogTransport == Transport::Legacy)
    N += " legacy-log";
  if (Eng == Engine::Vc)
    N += " engine=vc";
  return N + "]";
}

std::vector<FaultCase> fuzz::faultSweepCases() {
  std::vector<FaultCase> Cases;
  // Allocation failure at the first and a later refill: the thread sheds
  // logging and its SCCs degrade to potential violations.
  {
    FaultCase C;
    C.Plan.AllocFailAt = 1;
    Cases.push_back(C);
  }
  {
    FaultCase C;
    C.Plan.AllocFailAt = 3;
    Cases.push_back(C);
  }
  // Permanent worker stall: the SCC degrades immediately and the watchdog
  // converts the busy-and-silent worker into PcdWorkerStall. A short
  // timeout keeps the sweep fast.
  {
    FaultCase C;
    C.Plan.WorkerStallAt = 1;
    C.ParallelPcd = true;
    C.PcdTimeoutMs = 100;
    Cases.push_back(C);
  }
  // Worker death mid-replay: caught, degraded, worker survives.
  {
    FaultCase C;
    C.Plan.WorkerDieAt = 1;
    C.ParallelPcd = true;
    Cases.push_back(C);
  }
  // Queue saturation: workers refuse to dequeue until the hold releases,
  // so with depth 1 the second enqueue exercises timed backpressure.
  {
    FaultCase C;
    C.Plan.QueueHoldUntil = 2;
    C.ParallelPcd = true;
    C.PcdQueueDepth = 1;
    C.PcdTimeoutMs = 100;
    Cases.push_back(C);
  }
  // Delayed collector passes (below the timeout: exercises the path
  // without tripping CollectorStall).
  {
    FaultCase C;
    C.Plan.CollectorDelayMs = 5;
    Cases.push_back(C);
  }
  // Oversized-SCC cap: every real SCC (≥ 2 members) exceeds the cap and
  // must surface as potential violations, never vanish.
  {
    FaultCase C;
    C.MaxSccTxs = 1;
    Cases.push_back(C);
  }
  // Allocation failure under the arena transport: the refusal fires on
  // the *mutator's* per-thread cache instead of the ring drainer's — the
  // shed decision travels the other side of the ring and must degrade
  // identically soundly.
  {
    FaultCase C;
    C.Plan.AllocFailAt = 1;
    C.LogTransport = FaultCase::Transport::Arena;
    Cases.push_back(C);
  }
  // Combination: shedding and a dying worker in the same run.
  {
    FaultCase C;
    C.Plan.AllocFailAt = 1;
    C.Plan.WorkerDieAt = 1;
    C.ParallelPcd = true;
    Cases.push_back(C);
  }
  // Shedding under the batched Tarjan escape hatch: the degradation ladder
  // must stay sound in both cycle-detection paths.
  {
    FaultCase C;
    C.Plan.AllocFailAt = 1;
    C.BatchedScc = true;
    Cases.push_back(C);
  }
  // Delayed collector against the *incremental* detector: the collector's
  // removeNodes unlink races against live order maintenance, and claimed
  // components must survive the sweep unchanged.
  {
    FaultCase C;
    C.Plan.CollectorDelayMs = 5;
    C.IcdMaxRegion = 2;
    Cases.push_back(C);
  }
  // Incremental region cap of 1: every inconsistent edge trips the
  // oversized valve, so cycles surface as potential violations.
  {
    FaultCase C;
    C.IcdMaxRegion = 1;
    Cases.push_back(C);
  }
  // Shedding with the consistent-edge fast path forced onto the detector
  // lock: degradation must be identical on the locked and lock-free edge
  // insertion paths.
  {
    FaultCase C;
    C.Plan.AllocFailAt = 1;
    C.IcdLockedFastPath = true;
    Cases.push_back(C);
  }
  // Seqlock retry storm: every fast-path attempt fails validation three
  // times before succeeding, exercising the snapshot-retry loop and its
  // accounting without changing any verdict.
  {
    FaultCase C;
    C.IcdSeqRetryStorm = 3;
    Cases.push_back(C);
  }
  // Retry storm past the cap: validation never succeeds within the retry
  // budget, so every consistent edge falls back to the exclusive slow
  // path — the fallback must preserve verdicts bit-for-bit.
  {
    FaultCase C;
    C.IcdSeqRetryStorm = 100;
    Cases.push_back(C);
  }
  // Wedged retirement-window flush in streaming mode: the flush goes
  // busy-silent on its watchdog slot mid-window; the watchdog must surface
  // a structured WindowFlushStall — never a hang, an abort, or a lost
  // verdict — and the flush completes once the fault is recorded. A tiny
  // cadence makes even minimal fuzz programs cross a boundary; the short
  // timeout keeps the sweep fast.
  {
    FaultCase C;
    C.Plan.WindowStallAt = 1;
    C.WindowTxs = 3;
    C.PcdTimeoutMs = 100;
    Cases.push_back(C);
  }
  // Shed logging layered over streaming windows: the degradation ladder
  // must stay sound when flush-forced collection and PCD drains interleave
  // with degraded SCCs.
  {
    FaultCase C;
    C.Plan.AllocFailAt = 1;
    C.WindowTxs = 3;
    Cases.push_back(C);
  }
  // Delayed collector inside the vector-clock engine, under an aggressive
  // collect cadence (every 4 finished transactions): mark-sweep over live
  // subscription lists must not change the verdict or blame.
  {
    FaultCase C;
    C.Plan.CollectorDelayMs = 5;
    C.Eng = FaultCase::Engine::Vc;
    Cases.push_back(C);
  }
  return Cases;
}

std::optional<std::string>
fuzz::checkFaultCase(const ir::Program &Source,
                     const oracle::RecordedTrace &Trace,
                     const FaultCase &Case) {
  oracle::OracleVerdict V = oracle::decideSerializability(Source, Trace);
  core::AtomicitySpec Spec = core::AtomicitySpec::initial(Source);

  // Fault-free baseline on the same schedule: the reference for what the
  // checker reports when nothing degrades. Blame assignment names one
  // method per cycle (not every method the oracle's cycles touch), so the
  // soundness bar for a degraded run is "reports at least what the
  // healthy checker reports", not "reports every oracle cycle method".
  core::RunConfig Base;
  Base.M = Case.Eng == FaultCase::Engine::Vc ? core::Mode::VectorClock
                                             : core::Mode::SingleRun;
  Base.RunOpts = replayOpts(Trace.Schedule);
  core::RunOutcome BO = core::runChecker(Source, Spec, Base);
  if (BO.Result.ScheduleDiverged || BO.Result.Aborted)
    return std::nullopt; // Baseline itself unusable; checkPair owns that.

  core::RunConfig Cfg = Base;
  Cfg.Faults = Case.Plan;
  Cfg.WindowTxs = Case.WindowTxs;
  if (Case.Eng == FaultCase::Engine::Vc) {
    // Make the collector actually run on tiny fuzz programs so the delay
    // (and the mark-sweep it delays) is exercised, not just configured.
    Cfg.VcCollectEveryTx = 4;
  } else {
    Cfg.ParallelPcd = Case.ParallelPcd;
    Cfg.PcdQueueDepth = Case.PcdQueueDepth;
    Cfg.MaxSccTxs = Case.MaxSccTxs;
    Cfg.PcdTimeoutMs = Case.PcdTimeoutMs;
    Cfg.BatchedScc = Case.BatchedScc;
    Cfg.IcdMaxRegion = Case.IcdMaxRegion;
    Cfg.IcdLockedFastPath = Case.IcdLockedFastPath;
    Cfg.IcdSeqRetryStorm = Case.IcdSeqRetryStorm;
    Cfg.ThreadArenaLog = Case.LogTransport == FaultCase::Transport::Arena;
    Cfg.LegacyLog = Case.LogTransport == FaultCase::Transport::Legacy;
  }
  core::RunOutcome O = core::runChecker(Source, Spec, Cfg);
  const std::string Name = Case.name();

  // Structured termination: the gate must still replay the schedule and
  // the run must end normally — faults may degrade results, never the
  // execution itself.
  if (O.Result.ScheduleDiverged)
    return Name + ": recorded schedule did not replay under injected faults";
  if (O.Result.Aborted)
    return Name + ": run aborted instead of degrading (fault=" +
           std::string(rt::toString(O.Result.Fault)) + " " +
           O.Result.FaultDiagnosis + ")";

  std::set<std::string> Reported = O.BlamedMethods;
  Reported.insert(O.PotentialMethods.begin(), O.PotentialMethods.end());

  // Soundness under degradation, part 1: a truly non-serializable trace
  // must still surface *something* — a precise record or a potential one.
  if (!V.Serializable && Reported.empty() && O.Violations.empty())
    return Name + ": reports nothing on a trace the oracle proves "
                  "non-serializable";

  // Part 2: degradation may convert precise blame into potential reports
  // but must never lose coverage — everything the healthy run blamed must
  // still be reported, precisely or potentially.
  for (const std::string &M : BO.BlamedMethods)
    if (!Reported.count(M))
      return Name + ": lost '" + M +
             "' that the fault-free run blames (blamed=" +
             describeSet(O.BlamedMethods) +
             " potential=" + describeSet(O.PotentialMethods) + ")";

  // Part 3: the *precise* tier stays precise under faults — blamed
  // methods come only from fully replayed, complete-log SCCs.
  if (!isSubset(O.BlamedMethods, V.CycleMethods))
    return Name + ": blames methods outside the oracle's dependence cycles";

  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Streaming-window replay (batch-vs-streaming verdict equality)
//===----------------------------------------------------------------------===//

std::optional<std::string>
fuzz::checkWindowedPair(const ir::Program &Source,
                        const oracle::RecordedTrace &Trace,
                        uint32_t WindowTxs) {
  core::AtomicitySpec Spec = core::AtomicitySpec::initial(Source);
  for (core::Mode M : {core::Mode::SingleRun, core::Mode::VectorClock}) {
    const std::string Name = "windowed/" + core::toString(M);

    core::RunConfig Batch;
    Batch.M = M;
    Batch.RunOpts = replayOpts(Trace.Schedule);
    core::RunOutcome B = core::runChecker(Source, Spec, Batch);
    if (B.Result.ScheduleDiverged || B.Result.Aborted)
      return Name + ": batch replay failed";

    // The streaming run pipes every confirmed record and window boundary
    // through a real StreamingSession, so the NDJSON path is exercised —
    // and its event counters cross-checked — on every windowed witness.
    std::ostringstream Stream;
    rt::StreamingSession::Options SOpts;
    SOpts.Out = &Stream;
    SOpts.MethodName = [&Source](ir::MethodId Id) {
      return Source.Methods[Id].Name;
    };
    rt::StreamingSession Session(std::move(SOpts));

    core::RunConfig Win = Batch;
    Win.WindowTxs = WindowTxs;
    Win.Session = &Session;
    core::RunOutcome O = core::runChecker(Source, Spec, Win);
    if (O.Result.ScheduleDiverged)
      return Name + ": recorded schedule did not replay under windowing";
    if (O.Result.Aborted)
      return Name + ": windowed replay aborted";

    // The retirement windows must not change *any* verdict: a healthy
    // flush waits for in-flight PCD work instead of degrading, so both
    // tiers match batch mode exactly.
    if (O.BlamedMethods != B.BlamedMethods)
      return Name + ": windowed blame differs from batch (windowed=" +
             describeSet(O.BlamedMethods) +
             " batch=" + describeSet(B.BlamedMethods) + ")";
    if (O.PotentialMethods != B.PotentialMethods)
      return Name + ": windowed potential set differs from batch (windowed=" +
             describeSet(O.PotentialMethods) +
             " batch=" + describeSet(B.PotentialMethods) + ")";
    if (O.Violations.empty() != B.Violations.empty())
      return Name + ": windowed has-records bit differs from batch";

    const char *WindowStat = M == core::Mode::VectorClock
                                 ? "vc.windows_flushed"
                                 : "governor.windows_flushed";
    if (O.stat(WindowStat) == 0)
      return Name +
             ": no retirement window flushed (window machinery inactive)";
    if (Session.violationsStreamed() != O.Violations.size())
      return Name + ": streamed " +
             std::to_string(Session.violationsStreamed()) +
             " violations but the run recorded " +
             std::to_string(O.Violations.size());
    if (Session.windowsStreamed() != O.stat(WindowStat))
      return Name + ": streamed " + std::to_string(Session.windowsStreamed()) +
             " window events but " + std::to_string(O.stat(WindowStat)) +
             " windows flushed";
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Divergence search + witness minimization
//===----------------------------------------------------------------------===//

namespace {

struct SearchBudget {
  uint32_t ExhaustiveRuns = 150;
  uint32_t PctSeeds = 16;
  uint32_t RandomSeeds = 16;
  uint32_t PreemptionBound = 2;
  uint32_t PctChangePoints = 3;
};

/// Looks for *any* divergent schedule of \p Spec: bounded-exhaustive DFS
/// first (systematic, finds shallow interleaving bugs fast on tiny
/// programs), then PCT, then uniform random.
std::optional<Divergence> searchDivergence(const ProgSpec &Spec, bool Inject,
                                           const SearchBudget &B) {
  ir::Program P = Spec.build();
  core::AtomicitySpec AS = core::AtomicitySpec::initial(P);

  auto TryTrace = [&](const oracle::RecordedTrace &T)
      -> std::optional<Divergence> {
    if (T.Result.Aborted)
      return std::nullopt;
    PairResult PR = checkPair(P, T, Inject);
    if (!PR.Divergence)
      return std::nullopt;
    Divergence D;
    D.Description = *PR.Divergence;
    D.Spec = Spec;
    D.Schedule = T.Schedule;
    D.DataAccesses = T.dataAccesses();
    return D;
  };

  rt::ExhaustiveExplorer::Options ExOpts;
  ExOpts.PreemptionBound = B.PreemptionBound;
  ExOpts.MaxRuns = B.ExhaustiveRuns;
  rt::ExhaustiveExplorer Ex(ExOpts);
  while (Ex.beginRun()) {
    rt::RunOptions RO;
    RO.Deterministic = true;
    RO.CustomScheduler = &Ex;
    RO.MaxSteps = 1ull << 20;
    oracle::RecordedTrace T = oracle::recordTrace(P, AS, RO);
    Ex.endRun();
    if (auto D = TryTrace(T))
      return D;
  }
  for (uint32_t S = 0; S < B.PctSeeds; ++S) {
    rt::RunOptions RO;
    RO.Deterministic = true;
    RO.Strategy = rt::ScheduleStrategy::Pct;
    RO.PctChangePoints = B.PctChangePoints;
    // Tiny programs run for ~40-200 admissions; sample change points over a
    // matching horizon or PCT degenerates to plain priority order.
    RO.PctExpectedSteps = 128;
    RO.ScheduleSeed = Spec.Seed * 977u + S;
    RO.MaxSteps = 1ull << 20;
    if (auto D = TryTrace(oracle::recordTrace(P, AS, RO)))
      return D;
  }
  for (uint32_t S = 0; S < B.RandomSeeds; ++S) {
    rt::RunOptions RO;
    RO.Deterministic = true;
    RO.ScheduleSeed = Spec.Seed * 1987u + S;
    RO.MaxSteps = 1ull << 20;
    if (auto D = TryTrace(oracle::recordTrace(P, AS, RO)))
      return D;
  }
  return std::nullopt;
}

} // namespace

Divergence fuzz::minimizeWitness(const Divergence &Seed, bool InjectIcdBug) {
  Divergence Best = Seed;
  ProgSpec Cur = Seed.Spec;
  SearchBudget B;

  auto Try = [&](ProgSpec Cand) {
    if (Cand.Workers.size() < 2)
      return false; // A divergence needs two conflicting threads.
    std::optional<Divergence> D = searchDivergence(Cand, InjectIcdBug, B);
    if (!D)
      return false;
    Cur = std::move(Cand);
    Best = std::move(*D);
    return true;
  };

  // Greedy single-element reductions to fixpoint: each successful step
  // restarts the scan, classic delta debugging over the generator spec
  // (reducing the spec, not the IR, keeps fork/join numbering and method
  // references valid by construction).
  bool Improved = true;
  while (Improved) {
    Improved = false;
    for (size_t W = 0; W < Cur.Workers.size() && !Improved; ++W) {
      ProgSpec C = Cur;
      C.Workers.erase(C.Workers.begin() + W);
      Improved = Try(std::move(C));
    }
    for (size_t W = 0; W < Cur.Workers.size() && !Improved; ++W)
      for (size_t I = 0; I < Cur.Workers[W].Calls.size() && !Improved; ++I) {
        ProgSpec C = Cur;
        C.Workers[W].Calls.erase(C.Workers[W].Calls.begin() + I);
        Improved = Try(std::move(C));
      }
    for (size_t M = 0; M < Cur.Methods.size() && !Improved; ++M)
      for (size_t A = 0; A < Cur.Methods[M].Body.size() && !Improved; ++A) {
        ProgSpec C = Cur;
        C.Methods[M].Body.erase(C.Methods[M].Body.begin() + A);
        Improved = Try(std::move(C));
      }
    for (size_t M = 0; M < Cur.Methods.size() && !Improved; ++M) {
      if (!Cur.Methods[M].Locked)
        continue;
      ProgSpec C = Cur;
      C.Methods[M].Locked = false;
      Improved = Try(std::move(C));
    }
  }
  return Best;
}

//===----------------------------------------------------------------------===//
// Witness files
//===----------------------------------------------------------------------===//

bool fuzz::writeWitness(const std::string &Path, const Divergence &D,
                        bool InjectIcdBug) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << "# dcfuzz witness v1\n";
  std::istringstream Desc(D.Description);
  std::string Line;
  while (std::getline(Desc, Line))
    Out << "# " << Line << "\n";
  Out << "# spec-seed: " << D.Spec.Seed << "\n";
  Out << "# data-accesses: " << D.DataAccesses << "\n";
  Out << "# inject-icd-bug: " << (InjectIcdBug ? 1 : 0) << "\n";
  if (D.Fault.any()) {
    Out << "# fault-plan: " << D.Fault.Plan.spec() << "\n";
    if (D.Fault.ParallelPcd)
      Out << "# fault-parallel-pcd: 1\n";
    if (D.Fault.PcdQueueDepth != 0)
      Out << "# fault-queue-depth: " << D.Fault.PcdQueueDepth << "\n";
    if (D.Fault.MaxSccTxs != 0)
      Out << "# fault-max-scc-txs: " << D.Fault.MaxSccTxs << "\n";
    if (D.Fault.PcdTimeoutMs != 0)
      Out << "# fault-timeout-ms: " << D.Fault.PcdTimeoutMs << "\n";
    if (D.Fault.BatchedScc)
      Out << "# fault-batched-scc: 1\n";
    if (D.Fault.IcdMaxRegion != 0)
      Out << "# fault-icd-max-region: " << D.Fault.IcdMaxRegion << "\n";
    if (D.Fault.IcdLockedFastPath)
      Out << "# fault-icd-lockfree: locked\n";
    if (D.Fault.IcdSeqRetryStorm != 0)
      Out << "# fault-icd-lockfree: storm=" << D.Fault.IcdSeqRetryStorm
          << "\n";
    if (D.Fault.WindowTxs != 0)
      Out << "# fault-window-txs: " << D.Fault.WindowTxs << "\n";
    if (D.Fault.LogTransport == FaultCase::Transport::Arena)
      Out << "# fault-transport: arena\n";
    else if (D.Fault.LogTransport == FaultCase::Transport::Legacy)
      Out << "# fault-transport: legacy\n";
    if (D.Fault.Eng == FaultCase::Engine::Vc)
      Out << "# fault-engine: vc\n";
  }
  Out << "# schedule:";
  for (uint32_t T : D.Schedule)
    Out << ' ' << T;
  Out << "\n";
  Out << ir::toString(D.Spec.build());
  return static_cast<bool>(Out);
}

bool fuzz::readWitness(const std::string &Path, Witness &W,
                       std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open " + Path;
    return false;
  }
  std::ostringstream All;
  All << In.rdbuf();
  std::string Text = All.str();

  W.Schedule.clear();
  W.InjectIcdBug = false;
  W.Fault = FaultCase();
  W.WindowTxs = 0;
  std::istringstream IS(Text);
  std::string Line;
  while (std::getline(IS, Line)) {
    size_t First = Line.find_first_not_of(" \t\r");
    if (First == std::string::npos || Line[First] != '#')
      continue;
    std::istringstream LS(Line.substr(First + 1));
    std::string Tag;
    LS >> Tag;
    if (Tag == "schedule:") {
      uint64_t T;
      while (LS >> T)
        W.Schedule.push_back(static_cast<uint32_t>(T));
    } else if (Tag == "inject-icd-bug:") {
      int V = 0;
      LS >> V;
      W.InjectIcdBug = V != 0;
    } else if (Tag == "fault-plan:") {
      std::string Spec;
      LS >> Spec;
      std::string PlanError;
      if (!FaultPlan::parse(Spec, W.Fault.Plan, PlanError)) {
        Error = "bad '# fault-plan:' line: " + PlanError;
        return false;
      }
    } else if (Tag == "fault-parallel-pcd:") {
      int V = 0;
      LS >> V;
      W.Fault.ParallelPcd = V != 0;
    } else if (Tag == "fault-queue-depth:") {
      LS >> W.Fault.PcdQueueDepth;
    } else if (Tag == "fault-max-scc-txs:") {
      LS >> W.Fault.MaxSccTxs;
    } else if (Tag == "fault-timeout-ms:") {
      LS >> W.Fault.PcdTimeoutMs;
    } else if (Tag == "fault-batched-scc:") {
      int V = 0;
      LS >> V;
      W.Fault.BatchedScc = V != 0;
    } else if (Tag == "fault-icd-max-region:") {
      LS >> W.Fault.IcdMaxRegion;
    } else if (Tag == "fault-icd-lockfree:") {
      std::string V;
      LS >> V;
      if (V == "locked") {
        W.Fault.IcdLockedFastPath = true;
      } else if (V.rfind("storm=", 0) == 0) {
        W.Fault.IcdSeqRetryStorm =
            static_cast<uint32_t>(std::strtoul(V.c_str() + 6, nullptr, 10));
        if (W.Fault.IcdSeqRetryStorm == 0) {
          Error = "bad '# fault-icd-lockfree:' storm count: " + V;
          return false;
        }
      } else {
        Error = "bad '# fault-icd-lockfree:' value: " + V;
        return false;
      }
    } else if (Tag == "fault-window-txs:") {
      LS >> W.Fault.WindowTxs;
    } else if (Tag == "window-txs:") {
      LS >> W.WindowTxs;
    } else if (Tag == "fault-transport:") {
      std::string T;
      LS >> T;
      if (T == "arena")
        W.Fault.LogTransport = FaultCase::Transport::Arena;
      else if (T == "legacy")
        W.Fault.LogTransport = FaultCase::Transport::Legacy;
      else if (T != "ring") {
        Error = "bad '# fault-transport:' value: " + T;
        return false;
      }
    } else if (Tag == "fault-engine:") {
      std::string E;
      LS >> E;
      if (E == "vc")
        W.Fault.Eng = FaultCase::Engine::Vc;
      else if (E != "doublechecker") {
        Error = "bad '# fault-engine:' value: " + E;
        return false;
      }
    }
  }

  ir::ParseResult PR = ir::parseProgram(Text);
  if (!PR.Ok) {
    Error = "parse error at line " + std::to_string(PR.ErrorLine) + ": " +
            PR.Error;
    return false;
  }
  if (W.Schedule.empty()) {
    Error = "witness has no '# schedule:' line";
    return false;
  }
  W.P = std::move(PR.P);
  return true;
}

std::optional<std::string> fuzz::replayWitness(const Witness &W) {
  core::AtomicitySpec AS = core::AtomicitySpec::initial(W.P);
  rt::RunOptions RO = replayOpts(W.Schedule);
  oracle::RecordedTrace T = oracle::recordTrace(W.P, AS, RO);
  if (T.Result.ScheduleDiverged)
    return std::string(
        "witness schedule does not cover this program's execution");
  if (T.Result.Aborted)
    return std::string("witness replay aborted");
  if (W.Fault.any())
    return checkFaultCase(W.P, T, W.Fault);
  if (auto D = checkPair(W.P, T, W.InjectIcdBug).Divergence)
    return D;
  if (W.WindowTxs != 0)
    return checkWindowedPair(W.P, T, W.WindowTxs);
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Campaign driver
//===----------------------------------------------------------------------===//

FuzzReport fuzz::runFuzz(const FuzzOptions &O) {
  using Clock = std::chrono::steady_clock;
  const auto Start = Clock::now();
  FuzzReport Report;

  auto Elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  };
  auto OutOfBudget = [&] {
    if (Report.Pairs >= O.MaxPairs)
      return true;
    return O.BudgetSeconds > 0 && Elapsed() >= O.BudgetSeconds;
  };
  auto Progress = [&] {
    if (O.ProgressEvery && Report.Pairs && Report.Pairs % O.ProgressEvery == 0)
      std::fprintf(stderr,
                   "dcfuzz: %llu pairs (%llu programs, %llu oracle "
                   "violations) in %.1fs\n",
                   static_cast<unsigned long long>(Report.Pairs),
                   static_cast<unsigned long long>(Report.Programs),
                   static_cast<unsigned long long>(Report.OracleViolations),
                   Elapsed());
  };

  for (uint64_t PI = 0; !OutOfBudget() && !Report.Div; ++PI) {
    ProgSpec Spec = randomSpec(O.Seed + PI);
    ir::Program P = Spec.build();
    core::AtomicitySpec AS = core::AtomicitySpec::initial(P);
    ++Report.Programs;

    auto TryTrace = [&](const oracle::RecordedTrace &T, uint64_t &Counter) {
      if (T.Result.Aborted)
        return;
      PairResult PR = checkPair(P, T, O.InjectIcdBug);
      ++Report.Pairs;
      ++Counter;
      Report.OracleViolations += PR.OracleViolation;
      if (PR.Divergence) {
        Divergence D;
        D.Description = *PR.Divergence;
        D.Spec = Spec;
        D.Schedule = T.Schedule;
        D.DataAccesses = T.dataAccesses();
        Report.Div = std::move(D);
      } else if (O.FaultSweep) {
        // The matrix agrees on this pair: sweep the fault plans over it,
        // checking that degradation stays sound under every injection.
        for (const FaultCase &Case : faultSweepCases()) {
          ++Report.FaultPlansRun;
          std::optional<std::string> FD = checkFaultCase(P, T, Case);
          if (!FD)
            continue;
          Divergence D;
          D.Description = *FD;
          D.Spec = Spec;
          D.Schedule = T.Schedule;
          D.DataAccesses = T.dataAccesses();
          D.Fault = Case;
          Report.Div = std::move(D);
          break;
        }
      }
      Progress();
    };

    const bool WantSeeded = O.Strat != FuzzOptions::Strategy::Exhaustive;
    const bool WantExhaustive = O.Strat == FuzzOptions::Strategy::Exhaustive ||
                                O.Strat == FuzzOptions::Strategy::Mixed;

    if (WantSeeded)
      for (uint32_t S = 0;
           S < O.SchedulesPerProgram && !OutOfBudget() && !Report.Div; ++S) {
        bool UsePct = O.Strat == FuzzOptions::Strategy::Pct ||
                      (O.Strat == FuzzOptions::Strategy::Mixed && S % 2 == 0);
        rt::RunOptions RO;
        RO.Deterministic = true;
        RO.ScheduleSeed = (O.Seed + PI) * 0x9E3779B9u + S * 2654435761u + 1;
        RO.MaxSteps = 1ull << 20;
        if (UsePct) {
          RO.Strategy = rt::ScheduleStrategy::Pct;
          RO.PctChangePoints = O.PctChangePoints;
          RO.PctExpectedSteps = 128; // Matches the tiny generated programs.
        }
        TryTrace(oracle::recordTrace(P, AS, RO),
                 UsePct ? Report.PctPairs : Report.RandomPairs);
      }

    if (WantExhaustive && !OutOfBudget() && !Report.Div) {
      rt::ExhaustiveExplorer::Options ExOpts;
      ExOpts.PreemptionBound = O.PreemptionBound;
      ExOpts.MaxRuns = O.ExhaustiveRunsPerProgram;
      rt::ExhaustiveExplorer Ex(ExOpts);
      while (Ex.beginRun()) {
        rt::RunOptions RO;
        RO.Deterministic = true;
        RO.CustomScheduler = &Ex;
        RO.MaxSteps = 1ull << 20;
        oracle::RecordedTrace T = oracle::recordTrace(P, AS, RO);
        Ex.endRun();
        TryTrace(T, Report.ExhaustivePairs);
        if (OutOfBudget() || Report.Div)
          break;
      }
    }
  }

  // Fault-sweep divergences are not minimized: the minimizer re-searches
  // through the config matrix, which would lose the fault case. The
  // witness carries the full fault configuration instead.
  if (Report.Div && O.Minimize && !Report.Div->Fault.any())
    Report.Div = minimizeWitness(*Report.Div, O.InjectIcdBug);
  Report.Seconds = Elapsed();
  return Report;
}
