//===- bench/ablation_refinement_perf.cpp - §5.4 refinement stages --------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §5.4, first experiment: single-run mode's slowdown at the *strictest*
/// specification (start of iterative refinement), *halfway* through
/// refinement, and at the *final* specification. The paper reports 3.4x /
/// 3.6x / 3.6x — i.e., performance during refinement is about the same as
/// after it. We run the three stages on the workloads with the most
/// refinement work.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

using namespace dc;
using namespace dc::bench;
using namespace dc::core;

int main() {
  const double Scale = benchScale();
  const unsigned Trials = benchTrials();
  std::printf("Refinement-stage performance (single-run mode, scale %.2f)"
              "\n\n",
              Scale);

  TextTable Table;
  Table.setHeader({"benchmark", "strictest", "halfway", "final"});
  std::vector<double> G0, G1, G2;

  for (const std::string Name :
       {"eclipse6", "lusearch9", "xalan9", "montecarlo", "avrora9"}) {
    ir::Program P = workloads::build(Name, Scale);

    // Reconstruct the refinement trajectory: blame order from a small
    // deterministic refinement, then three specification snapshots.
    ir::Program Small = workloads::build(Name, 0.08);
    RefinementOptions ROpts;
    ROpts.Checker = RefinementChecker::SingleRun;
    ROpts.QuietTrials = 2;
    ROpts.Deterministic = true;
    RefinementResult R = iterativeRefinement(Small, ROpts);

    AtomicitySpec Strictest = AtomicitySpec::initial(P);
    AtomicitySpec Halfway = Strictest;
    for (size_t I = 0; I < R.BlameOrder.size() / 2; ++I)
      Halfway.exclude(R.BlameOrder[I]);
    AtomicitySpec Final = Strictest;
    for (const std::string &M : R.BlameOrder)
      Final.exclude(M);

    auto Slowdown = [&](const AtomicitySpec &Spec) {
      RunConfig Base;
      Base.M = Mode::Unmodified;
      Base.RunOpts = perfRunOptions(1);
      double B = runTimed(P, Spec, Base, Trials).MedianSeconds;
      RunConfig Cfg;
      Cfg.M = Mode::SingleRun;
      Cfg.RunOpts = perfRunOptions(2);
      return runTimed(P, Spec, Cfg, Trials).MedianSeconds / B;
    };

    double S0 = Slowdown(Strictest);
    double S1 = Slowdown(Halfway);
    double S2 = Slowdown(Final);
    G0.push_back(S0);
    G1.push_back(S1);
    G2.push_back(S2);
    Table.addRow({Name, formatDouble(S0, 2), formatDouble(S1, 2),
                  formatDouble(S2, 2)});
  }
  Table.addRow({"geomean", formatDouble(geomean(G0), 2),
                formatDouble(geomean(G1), 2), formatDouble(geomean(G2), 2)});
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: 3.4x strictest, 3.6x halfway, 3.6x final — the three "
              "stages should be close.\n");
  return 0;
}
