//===- bench/logging_throughput.cpp - Logging transport comparison --------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three log publication transports under real OS threads (DESIGN.md
/// §8/§13), measured at the component level:
///
///  * legacy — what LegacyLog preserves: globally shared per-field elision
///    cells (whose cache-line ping-pong the calibrated LogRemoteMissPenalty
///    simulates, DESIGN.md §2) and a reallocating std::vector of 32-byte
///    entries per transaction.
///  * arena — the ThreadArenaLog escape hatch: a thread-local elision
///    filter, 16-byte packed slots in recycled arena chunks, one chunk
///    cache per thread (footprint O(threads)).
///  * ring — the default: the same filter and slots, but published through
///    the bounded per-CPU ring transport (footprint O(cores)), with a
///    background drainer materializing records into per-transaction logs
///    and mutators self-draining on a full ring.
///
/// Each logged access performs exactly the work DoubleCheckerRuntime::
/// logAccess does on that path — duplicate check, append or ring commit,
/// LogLen publication, and for the legacy path the contended-cell
/// remote-miss simulation — with none of the surrounding checker plumbing
/// that is identical on all paths. Unlike the pre-ring revision of this
/// bench (which round-robined logical threads from one OS thread), every
/// row spawns real threads: the transport claims wait-freedom from *other
/// threads'* progress, and only preemptive scheduling — including producers
/// descheduled mid-commit, the gap case the drain side must skip past —
/// can test that.
///
/// Strong scaling: every row performs the same total append count split
/// across its threads, so a row's appends/s is comparable to any other
/// row's. The sweep runs to 256 threads — far past the host's cores — and
/// the number to watch is ring throughput retention: the issue's bar is
/// the 256-thread row staying within 2x of the 8-thread row's appends/s
/// (no collapse), while the legacy path's shared cells and the per-append
/// penalty degrade with every additional conflicting thread.
///
/// A ring of live transactions per thread models the deferred collector:
/// logs stay live until the window wraps, so appends stream through the
/// cache hierarchy with a realistic footprint, and retired logs recycle
/// inside the timed region. The window models CollectEveryTx (a *global*
/// budget of 8192 finished transactions), so each thread's share shrinks
/// as threads grow — exactly how the real collector bounds the live graph.
///
/// Usage: logging_throughput [output.json]   (default BENCH_logging.json;
/// tools/ci.sh smoke-runs it at a tiny DC_BENCH_SCALE with a throwaway
/// output path so the checked-in numbers are not clobbered).
///
//===----------------------------------------------------------------------===//

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/DoubleChecker.h"
#include "analysis/LogArena.h"
#include "analysis/Transaction.h"
#include "bench/BenchUtils.h"

using namespace dc;
using namespace dc::bench;
using namespace dc::analysis;

namespace {

/// Shared field universe, sized like a real heap. The legacy
/// ElisionCells/CellContended arrays are allocated per *field address*, so
/// their footprint scales with the heap and misses cache on scattered
/// access, while the per-thread filter is 8 KiB and the ring transport's
/// whole footprint is O(cores) regardless of either. All threads touch the
/// same fields.
constexpr uint32_t NumAddrs = 1u << 18;
constexpr uint32_t AccessesPerTx = 32; // Distinct addrs per tx: no elision.
/// Global live-transaction budget, split across threads (CollectEveryTx's
/// default): each thread keeps totalWindow/Threads transactions live
/// before the oldest is reclaimed.
constexpr uint32_t TotalLiveWindow = 8192;
constexpr uint32_t MinLiveWindow = 16;

enum class Transport { Legacy, Arena, Ring };

/// Legacy elision cell, exactly as the LegacyLog path packs it:
/// (tid, wasWrite, ts) of the last *logged* access to the field.
uint64_t packCell(uint32_t Tid, bool IsWrite, uint64_t Ts) {
  return (Ts << 33) | (static_cast<uint64_t>(Tid) << 1) |
         static_cast<uint64_t>(IsWrite);
}
uint32_t cellTid(uint64_t Cell) {
  return static_cast<uint32_t>((Cell >> 1) & 0xffffffffu);
}
uint64_t cellTs(uint64_t Cell) { return Cell >> 33; }
bool cellWasWrite(uint64_t Cell) { return (Cell & 1) != 0; }

/// The legacy path's remote-miss simulation (DoubleCheckerRuntime::
/// spinPenalty): a serial LCG dependence chain per simulated miss.
std::atomic<uint64_t> PenaltySink{0};
void spinPenalty(uint32_t Iters, uint64_t Seed) {
  uint64_t Acc = Seed;
  for (uint32_t I = 0; I < Iters; ++I)
    Acc = Acc * 6364136223846793005ULL + 1442695040888963407ULL;
  PenaltySink.fetch_add(Acc, std::memory_order_relaxed);
}

struct Point {
  double Seconds = 0;
  uint64_t Records = 0;
  uint64_t Bytes = 0;
  uint64_t ChunkAllocs = 0;
  uint64_t ChunkRecycles = 0;
  // Ring transport profile (zero on the other transports).
  uint64_t RingCommits = 0;
  uint64_t RingFullEvents = 0;
  uint64_t RingSelfDrains = 0;
  uint64_t RingMigrations = 0;
  uint64_t RingDrainPasses = 0;
  uint64_t RingRecordsDrained = 0;
  uint64_t RingSheds = 0;
  uint64_t RingCount = 0;
  uint64_t RingFootprintBytes = 0;
};

/// One OS thread's private state. Cache-line aligned and heap-allocated
/// per worker so the states themselves cannot false-share — the bench
/// measures the transports' sharing, not the harness's.
struct alignas(64) WorkerState {
  std::vector<std::unique_ptr<Transaction>> Window;
  uint32_t WindowPos = 0;
  uint64_t Epoch = 1;
  uint32_t AddrBase = 0;
  ElisionFilter Filter;
  LogChunkCache Cache; ///< Arena transport only; ring has no per-thread cache.
  /// Mirrors PerThread::BytesLogged, which the legacy path bumps per
  /// append (the packed paths derive bytes at flush instead).
  uint64_t BytesLogged = 0;
  // Mirrors PerThread's ring commit state (DoubleCheckerRuntime::
  // ringPublish): a periodically refreshed CPU hint plus local counters.
  uint32_t RingIdx = 0;
  uint32_t HintCountdown = 0;
  bool HintValid = false;
  uint64_t Commits = 0;
  uint64_t FullEvents = 0;
  uint64_t SelfDrains = 0;
  uint64_t Migrations = 0;
};

/// The mutator half of the ring protocol, exactly as ringPublish runs it:
/// hinted commit, one neighbour hop on contention, then bounded
/// drain-or-yield rounds on a full ring. The real checker sheds the
/// transaction after two refused rounds; the bench loops instead — its
/// whole point is to measure the cost of *never* losing a record, and a
/// shed would quietly deflate the append count it reports.
void publishRing(RingLog &Ring, WorkerState &St, Transaction *Tx,
                 uint32_t Pos, const LogSlot &S) {
  if (St.HintCountdown == 0) {
    const uint32_t Idx = Ring.ringFor(RingLog::currentCpu());
    if (St.HintValid && Idx != St.RingIdx)
      ++St.Migrations;
    St.RingIdx = Idx;
    St.HintValid = true;
    St.HintCountdown = 64;
  }
  --St.HintCountdown;
  RingCommit RC = Ring.commit(St.RingIdx, Tx, Pos, &S, 1);
  if (RC == RingCommit::Contended) {
    St.HintCountdown = 0;
    RC = Ring.commit(Ring.ringFor(St.RingIdx + 1), Tx, Pos, &S, 1);
  }
  if (RC == RingCommit::Ok) {
    ++St.Commits;
    return;
  }
  ++St.FullEvents;
  for (;;) {
    uint32_t Drained = 0;
    if (Ring.tryDrainAll(Drained))
      ++St.SelfDrains;
    else
      std::this_thread::yield(); // Another consumer is already at it.
    RC = Ring.commit(St.RingIdx, Tx, Pos, &S, 1);
    if (RC == RingCommit::Ok) {
      ++St.Commits;
      return;
    }
  }
}

/// Per-thread bench body: TxPerThread transactions of AccessesPerTx
/// appends each, against whichever transport \p Mode selects.
void workerLoop(Transport Mode, uint32_t Tid, uint64_t TxPerThread,
                WorkerState &St, LogChunkPool &Pool, RingLog *Ring,
                std::atomic<uint64_t> *Cells, std::atomic<uint8_t> *Contended,
                uint32_t Penalty, std::atomic<uint64_t> &TxSeq) {
  const uint32_t Window = static_cast<uint32_t>(St.Window.size());
  Transaction *Cur = nullptr;
  for (uint64_t Tx = 0; Tx < TxPerThread; ++Tx) {
    // Retire the oldest window entry — the collector's share of the
    // logging cost, inside the timed region. Ring mode must first wait
    // for the drain side to materialize every committed record (the
    // DrainedSlots >= LogLen completeness condition awaitLogComplete
    // enforces before replay), helping drain rather than just spinning.
    std::unique_ptr<Transaction> &Slot = St.Window[St.WindowPos];
    if (Slot != nullptr) {
      if (Mode == Transport::Ring) {
        while (Slot->DrainedSlots.load(std::memory_order_acquire) <
               Slot->LogLen.load(std::memory_order_acquire)) {
          uint32_t Drained = 0;
          if (!Ring->tryDrainAll(Drained))
            std::this_thread::yield();
        }
      }
      if (Mode != Transport::Legacy)
        Slot->Log.releaseTo(Pool);
    }
    Slot = std::make_unique<Transaction>(
        TxSeq.fetch_add(1, std::memory_order_relaxed) + 1, Tid, Tx,
        ir::MethodId(0), /*Regular=*/true);
    Cur = Slot.get();
    St.WindowPos = (St.WindowPos + 1) % Window;
    ++St.Epoch;

    for (uint32_t J = 0; J < AccessesPerTx; ++J) {
      // Odd stride over the power-of-two universe: a permutation, so
      // addresses stay distinct within a transaction (no elision), and
      // accesses scatter across the field space the way real heap
      // traffic does instead of scanning cells line-by-line.
      const uint32_t Addr = (St.AddrBase + J * 521) & (NumAddrs - 1);
      const uint32_t Obj = Addr / 4;
      const bool IsWrite = (J & 1) != 0;
      switch (Mode) {
      case Transport::Arena: {
        // Mirrors logAccess's arena branch: filter probe, packed append,
        // LogLen publication.
        if (St.Filter.testAndSet(ElisionFilter::key(Obj, Addr), St.Epoch,
                                 IsWrite))
          break;
        Cur->LogLen.store(Cur->Log.appendAccess(Obj, Addr, IsWrite,
                                                &St.Cache),
                          std::memory_order_release);
        break;
      }
      case Transport::Ring: {
        // Mirrors logAccess's default branch: same filter, but the record
        // travels through the ring; LogLen publishes only after the cell
        // is published, so a sampled SrcPos always refers to a committed
        // record.
        if (St.Filter.testAndSet(ElisionFilter::key(Obj, Addr), St.Epoch,
                                 IsWrite))
          break;
        const uint32_t Pos = Cur->LogLen.load(std::memory_order_relaxed);
        LogSlot S;
        S.A = Obj;
        S.B = Addr;
        S.Meta = IsWrite ? SlotTagWrite : SlotTagRead;
        publishRing(*Ring, St, Cur, Pos, S);
        Cur->LogLen.store(Pos + 1, std::memory_order_release);
        break;
      }
      case Transport::Legacy: {
        // Mirrors logAccess's LegacyLog branch. Under real threads the
        // cells are genuinely shared-written on top of the calibrated
        // penalty, so this path now pays both the simulated remote miss
        // and the real one.
        const uint64_t Cell = Cells[Addr].load(std::memory_order_relaxed);
        if (cellTid(Cell) == Tid && cellTs(Cell) == St.Epoch &&
            (cellWasWrite(Cell) || !IsWrite))
          break;
        LogEntry E;
        E.K = IsWrite ? LogEntry::Kind::Write : LogEntry::Kind::Read;
        E.Obj = Obj;
        E.Addr = Addr;
        Cur->appendLogLegacy(E);
        St.BytesLogged += sizeof(LogEntry);
        if (Penalty != 0) {
          if (Cell != 0 && cellTid(Cell) != Tid)
            Contended[Addr].store(1, std::memory_order_relaxed);
          if (Contended[Addr].load(std::memory_order_relaxed))
            spinPenalty(Penalty, Addr);
        }
        Cells[Addr].store(packCell(Tid, IsWrite, St.Epoch),
                          std::memory_order_relaxed);
        break;
      }
      }
    }
    // Hop the base by a large odd constant (a full-period walk of the
    // power-of-two universe): successive transactions touch fields far
    // apart, the way real transactions touch objects scattered across the
    // heap.
    St.AddrBase = (St.AddrBase + 104729u) & (NumAddrs - 1);
  }
}

Point runOnce(uint32_t Threads, uint64_t TxPerThread, uint32_t Window,
              Transport Mode) {
  const uint32_t Penalty = DoubleCheckerOptions().LogRemoteMissPenalty;
  LogChunkPool Pool;
  // Legacy-only shared state.
  std::unique_ptr<std::atomic<uint64_t>[]> Cells;
  std::unique_ptr<std::atomic<uint8_t>[]> Contended;
  if (Mode == Transport::Legacy) {
    Cells = std::make_unique<std::atomic<uint64_t>[]>(NumAddrs);
    Contended = std::make_unique<std::atomic<uint8_t>[]>(NumAddrs);
    for (uint32_t A = 0; A < NumAddrs; ++A) {
      Cells[A].store(0, std::memory_order_relaxed);
      Contended[A].store(0, std::memory_order_relaxed);
    }
  }
  // Ring-only: the transport plus its background drainer, sized exactly
  // as beginRun sizes them (hardware rings, default cell budget).
  std::unique_ptr<RingLog> Ring;
  std::thread Drainer;
  std::atomic<bool> DrainerStop{false};
  if (Mode == Transport::Ring) {
    Ring = std::make_unique<RingLog>(
        std::max(1u, std::thread::hardware_concurrency()), 0);
    Ring->attachPool(&Pool);
  }

  std::vector<std::unique_ptr<WorkerState>> States;
  for (uint32_t T = 0; T < Threads; ++T) {
    States.push_back(std::make_unique<WorkerState>());
    States[T]->Window.resize(Window);
    if (Mode == Transport::Arena)
      States[T]->Cache.attach(&Pool);
  }

  // Every non-elided access appends on all paths (addresses are distinct
  // within a transaction and epochs advance between them), so the record
  // count is exact without a per-access counter in the timed loop.
  const uint64_t Records =
      TxPerThread * static_cast<uint64_t>(Threads) * AccessesPerTx;
  std::atomic<uint64_t> TxSeq{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Workers;
  Workers.reserve(Threads);
  for (uint32_t T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      workerLoop(Mode, T, TxPerThread, *States[T], Pool, Ring.get(),
                 Cells.get(), Contended.get(), Penalty, TxSeq);
    });
  if (Mode == Transport::Ring)
    Drainer = std::thread([&] {
      // The runtime's ringDrainLoop cadence: drain back-to-back while
      // records flow, back off exponentially (capped) while idle.
      uint32_t SleepUs = 50;
      while (!DrainerStop.load(std::memory_order_acquire)) {
        if (Ring->drainAll() != 0) {
          SleepUs = 50;
          continue;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(SleepUs));
        SleepUs = std::min(SleepUs * 2, 2000u);
      }
      Ring->drainAll();
    });

  auto Begin = std::chrono::steady_clock::now();
  Go.store(true, std::memory_order_release);
  for (std::thread &W : Workers)
    W.join();
  if (Mode == Transport::Ring) {
    DrainerStop.store(true, std::memory_order_release);
    Drainer.join(); // Final drain: every record materialized.
  }
  // Reclaiming the final window is the collector's steady-state work and
  // stays inside the timing.
  uint64_t Bytes = 0;
  for (uint32_t T = 0; T < Threads; ++T) {
    Bytes += States[T]->BytesLogged;
    for (auto &Slot : States[T]->Window)
      if (Slot != nullptr && Mode != Transport::Legacy)
        Slot->Log.releaseTo(Pool);
  }
  Point Pt;
  for (uint32_t T = 0; T < Threads; ++T) {
    Pt.RingCommits += States[T]->Commits;
    Pt.RingFullEvents += States[T]->FullEvents;
    Pt.RingSelfDrains += States[T]->SelfDrains;
    Pt.RingMigrations += States[T]->Migrations;
  }
  States.clear();
  auto End = std::chrono::steady_clock::now();

  Pt.Seconds = std::chrono::duration<double>(End - Begin).count();
  Pt.Records = Records;
  // Packed-path bytes are derived, exactly as endRun's flush derives them.
  Pt.Bytes = Mode == Transport::Legacy ? Bytes : Records * sizeof(LogSlot);
  Pt.ChunkAllocs = Pool.chunkAllocs();
  Pt.ChunkRecycles = Pool.chunkRecycles();
  if (Mode == Transport::Ring) {
    Pt.RingDrainPasses = Ring->drainPasses();
    Pt.RingRecordsDrained = Ring->recordsDrained();
    Pt.RingSheds = Ring->shedRefusals();
    Pt.RingCount = Ring->numRings();
    Pt.RingFootprintBytes = Ring->footprintBytes();
  }
  return Pt;
}

Point sweep(uint32_t Threads, uint64_t TxPerThread, uint32_t Window,
            Transport Mode, unsigned Trials) {
  std::vector<Point> Runs;
  for (unsigned R = 0; R < Trials; ++R)
    Runs.push_back(runOnce(Threads, TxPerThread, Window, Mode));
  std::sort(Runs.begin(), Runs.end(), [](const Point &A, const Point &B) {
    return A.Seconds < B.Seconds;
  });
  return Runs[Runs.size() / 2];
}

} // namespace

int main(int argc, char **argv) {
  const char *OutPath = argc > 1 ? argv[1] : "BENCH_logging.json";
  const double Scale = benchScale();
  const unsigned Trials = benchTrials();
  // Strong scaling: every row performs the same total transaction count,
  // split across its threads, so rows compare directly and the 256-thread
  // row costs what the 1-thread row costs plus the contention under test.
  const uint64_t TotalTx =
      std::max<uint64_t>(2 * TotalLiveWindow,
                         static_cast<uint64_t>(400000 * Scale));
  std::printf("log transports under real OS threads: legacy (shared cells + "
              "vector logs) vs arena (per-thread chunk caches) vs ring "
              "(per-CPU ring transport, the default)\n"
              "scale %.2f, %llu total tx per row x %u accesses/tx, %u live "
              "txs total, %u hardware threads\n\n",
              Scale, static_cast<unsigned long long>(TotalTx), AccessesPerTx,
              TotalLiveWindow, std::thread::hardware_concurrency());

  TextTable Table;
  Table.setHeader({"threads", "legacy app/s", "arena app/s", "ring app/s",
                   "ring ns/app", "ring full", "self drains", "ring/arena"});
  JsonRows Json;

  double Ring8Rate = 0, Ring256Rate = 0;
  for (uint32_t Threads : {1u, 2u, 4u, 8u, 64u, 128u, 256u}) {
    const uint32_t Window =
        std::max(MinLiveWindow, TotalLiveWindow / Threads);
    const uint64_t TxPerThread =
        std::max<uint64_t>(2 * Window, TotalTx / Threads);
    Point Leg = sweep(Threads, TxPerThread, Window, Transport::Legacy,
                      Trials);
    Point Arena = sweep(Threads, TxPerThread, Window, Transport::Arena,
                        Trials);
    Point Ring = sweep(Threads, TxPerThread, Window, Transport::Ring,
                       Trials);
    const double LegRate = static_cast<double>(Leg.Records) / Leg.Seconds;
    const double ArenaRate =
        static_cast<double>(Arena.Records) / Arena.Seconds;
    const double RingRate = static_cast<double>(Ring.Records) / Ring.Seconds;
    if (Threads == 8)
      Ring8Rate = RingRate;
    if (Threads == 256)
      Ring256Rate = RingRate;
    Table.addRow({std::to_string(Threads),
                  formatWithCommas(static_cast<uint64_t>(LegRate)),
                  formatWithCommas(static_cast<uint64_t>(ArenaRate)),
                  formatWithCommas(static_cast<uint64_t>(RingRate)),
                  formatDouble(1e9 / RingRate, 1),
                  formatWithCommas(Ring.RingFullEvents),
                  formatWithCommas(Ring.RingSelfDrains),
                  formatDouble(RingRate / ArenaRate, 2) + "x"});
    Json.beginRow();
    Json.add("threads", static_cast<uint64_t>(Threads));
    Json.add("tx_per_thread", TxPerThread);
    Json.add("accesses_per_tx", static_cast<uint64_t>(AccessesPerTx));
    Json.add("live_window", static_cast<uint64_t>(Window));
    Json.add("records", Ring.Records);
    Json.add("legacy_wall_s", Leg.Seconds);
    Json.add("arena_wall_s", Arena.Seconds);
    Json.add("ring_wall_s", Ring.Seconds);
    Json.add("legacy_appends_per_s", LegRate);
    Json.add("arena_appends_per_s", ArenaRate);
    Json.add("ring_appends_per_s", RingRate);
    Json.add("legacy_ns_per_append", 1e9 / LegRate);
    Json.add("arena_ns_per_append", 1e9 / ArenaRate);
    Json.add("ring_ns_per_append", 1e9 / RingRate);
    Json.add("legacy_bytes_logged", Leg.Bytes);
    Json.add("arena_bytes_logged", Arena.Bytes);
    Json.add("arena_chunk_allocs", Arena.ChunkAllocs);
    Json.add("arena_chunk_recycles", Arena.ChunkRecycles);
    Json.add("ring_commits", Ring.RingCommits);
    Json.add("ring_full_events", Ring.RingFullEvents);
    Json.add("ring_self_drains", Ring.RingSelfDrains);
    Json.add("ring_migrations", Ring.RingMigrations);
    Json.add("ring_drain_passes", Ring.RingDrainPasses);
    Json.add("ring_records_drained", Ring.RingRecordsDrained);
    Json.add("ring_shed_refusals", Ring.RingSheds);
    Json.add("ring_count", Ring.RingCount);
    Json.add("ring_capacity_records",
             Ring.RingCount ? Ring.RingFootprintBytes / 64 / Ring.RingCount
                            : 0);
    Json.add("ring_footprint_bytes", Ring.RingFootprintBytes);
    Json.add("ring_vs_arena", RingRate / ArenaRate);
  }

  std::printf("\n%s\n", Table.render().c_str());
  std::printf("(per-append work mirrors DoubleCheckerRuntime::logAccess on "
              "each transport; identical total work per row; ring/arena = "
              "ring appends/s over arena appends/s)\n");
  if (Ring8Rate > 0 && Ring256Rate > 0)
    std::printf("ring 256-thread retention: %.0f%% of the 8-thread "
                "appends/s (no-collapse target >= 50%%)\n",
                100.0 * Ring256Rate / Ring8Rate);
  if (Json.write(OutPath, "logging_throughput"))
    std::printf("wrote %s\n", OutPath);
  return 0;
}
