//===- bench/logging_throughput.cpp - Logging hot-path comparison ---------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Old-vs-new per-access logging path (DESIGN.md §8), measured at the
/// component level. The "old" path is what LegacyLog preserves: globally
/// shared per-field elision cells (whose cache-line ping-pong the
/// calibrated LogRemoteMissPenalty simulates, DESIGN.md §2) and a
/// reallocating std::vector of 32-byte entries per transaction. The "new"
/// path is the default: a thread-local elision filter, 16-byte packed
/// slots in recycled arena chunks, and no shared-visible write beyond the
/// LogLen publication.
///
/// The harness drives the storage + elision layer directly — each logged
/// access performs exactly the work DoubleCheckerRuntime::logAccess does
/// on that path (duplicate check, append, LogLen publication, and for the
/// legacy path the contended-cell remote-miss simulation), with none of
/// the surrounding checker plumbing that is identical on both paths. A
/// ring of live transactions per thread models the deferred collector:
/// logs stay live until the window wraps, so appends stream through the
/// cache hierarchy with a realistic footprint, and retired logs recycle
/// (chunks to the pool / vectors freed) inside the timed region.
///
/// Two sweeps share the harness:
///  * threads=1 — single-thread append rate. Every access appends (each
///    transaction's addresses are distinct, so neither path elides):
///    vector growth and per-transaction malloc/free churn vs. recycled
///    chunk appends at half the entry size.
///  * threads>1 — false-sharing sweep. T logical threads round-robin from
///    one OS thread (the scaling_threads pattern), all logging the same
///    shared fields. The legacy path's shared cells mark every field
///    contended and pay the remote-miss penalty per append; the new
///    path's filter is private, so its cost stays flat in T.
///
/// Usage: logging_throughput [output.json]   (default BENCH_logging.json;
/// tools/ci.sh smoke-runs it at a tiny DC_BENCH_SCALE with a throwaway
/// output path so the checked-in numbers are not clobbered).
///
//===----------------------------------------------------------------------===//

#include <atomic>
#include <chrono>
#include <memory>

#include "analysis/DoubleChecker.h"
#include "analysis/Transaction.h"
#include "bench/BenchUtils.h"

using namespace dc;
using namespace dc::bench;
using namespace dc::analysis;

namespace {

/// Shared field universe, sized like a real heap. The product's legacy
/// ElisionCells/CellContended arrays are allocated per *field address*, so
/// their footprint — 9 bytes per field, ~2.3 MiB at this still-modest
/// 256K fields, tens of MiB for DaCapo-sized heaps — scales with the heap
/// and misses cache on scattered access, while the new path's per-thread
/// filter is 8 KiB regardless of heap size. All threads touch the same
/// fields.
constexpr uint32_t NumAddrs = 1u << 18;
constexpr uint32_t AccessesPerTx = 32; // Distinct addrs per tx: no elision.
/// Live transactions per thread before the oldest is reclaimed — models
/// the deferred collector, which is what keeps the log footprint larger
/// than cache and makes entry size matter. CollectEveryTx (default 8192)
/// counts finished transactions across *all* threads, so each thread's
/// live share is the period divided by the thread count; 2048 is the
/// 4-thread share, a representative middle of the sweep.
constexpr uint32_t LiveWindow = 2048;

/// Legacy elision cell, exactly as the LegacyLog path packs it:
/// (tid, wasWrite, ts) of the last *logged* access to the field.
uint64_t packCell(uint32_t Tid, bool IsWrite, uint64_t Ts) {
  return (Ts << 33) | (static_cast<uint64_t>(Tid) << 1) |
         static_cast<uint64_t>(IsWrite);
}
uint32_t cellTid(uint64_t Cell) {
  return static_cast<uint32_t>((Cell >> 1) & 0xffffffffu);
}
uint64_t cellTs(uint64_t Cell) { return Cell >> 33; }
bool cellWasWrite(uint64_t Cell) { return (Cell & 1) != 0; }

/// The legacy path's remote-miss simulation (DoubleCheckerRuntime::
/// spinPenalty): a serial LCG dependence chain per simulated miss.
std::atomic<uint64_t> PenaltySink{0};
void spinPenalty(uint32_t Iters, uint64_t Seed) {
  uint64_t Acc = Seed;
  for (uint32_t I = 0; I < Iters; ++I)
    Acc = Acc * 6364136223846793005ULL + 1442695040888963407ULL;
  PenaltySink.fetch_add(Acc, std::memory_order_relaxed);
}

struct Point {
  double Seconds = 0;
  uint64_t Records = 0;
  uint64_t Bytes = 0;
  uint64_t ChunkAllocs = 0;
  uint64_t ChunkRecycles = 0;
};

/// Per logical thread: its transaction ring plus the new path's private
/// filter/cache or nothing extra for the legacy path (whose elision state
/// is the shared cell arrays).
struct ThreadState {
  std::unique_ptr<Transaction> Ring[LiveWindow];
  uint32_t RingPos = 0;
  uint64_t Epoch = 1;
  uint32_t AddrBase = 0;
  ElisionFilter Filter;
  LogChunkCache Cache;
  Transaction *Cur = nullptr;
  /// Mirrors PerThread::BytesLogged, which the legacy path bumps per
  /// append (the arena path derives bytes at flush instead).
  uint64_t BytesLogged = 0;
};

Point runOnce(uint32_t Threads, uint64_t TxPerThread, bool Legacy) {
  const uint32_t Penalty = DoubleCheckerOptions().LogRemoteMissPenalty;
  LogChunkPool Pool;
  auto Cells = std::make_unique<std::atomic<uint64_t>[]>(NumAddrs);
  auto Contended = std::make_unique<std::atomic<uint8_t>[]>(NumAddrs);
  for (uint32_t A = 0; A < NumAddrs; ++A) {
    Cells[A].store(0, std::memory_order_relaxed);
    Contended[A].store(0, std::memory_order_relaxed);
  }
  std::vector<std::unique_ptr<ThreadState>> States;
  ThreadState *Sp[16] = {};
  assert(Threads <= 16 && "flat state view is fixed-size");
  for (uint32_t T = 0; T < Threads; ++T) {
    States.push_back(std::make_unique<ThreadState>());
    Sp[T] = States[T].get();
    if (!Legacy)
      States[T]->Cache.attach(&Pool);
  }

  // Every access appends on both paths (addresses are distinct within a
  // transaction and epochs advance between them), so the record count is
  // exact without a per-access counter in the timed loop.
  const uint64_t Records =
      TxPerThread * static_cast<uint64_t>(Threads) * AccessesPerTx;
  uint64_t TxSeq = 0;
  auto Begin = std::chrono::steady_clock::now();
  for (uint64_t Tx = 0; Tx < TxPerThread; ++Tx) {
    // Start one transaction per logical thread: retire the oldest ring
    // entry (recycle its chunks / free its vector — the collector's share
    // of the logging cost) and advance the elision epoch.
    for (uint32_t T = 0; T < Threads; ++T) {
      ThreadState &St = *Sp[T];
      std::unique_ptr<Transaction> &Slot = St.Ring[St.RingPos];
      if (Slot != nullptr && !Legacy)
        Slot->Log.releaseTo(Pool);
      Slot = std::make_unique<Transaction>(++TxSeq, T, Tx, ir::MethodId(0),
                                           /*Regular=*/true);
      St.Cur = Slot.get();
      St.RingPos = (St.RingPos + 1) % LiveWindow;
      ++St.Epoch;
    }
    // Round-robin the appends one access at a time — the finest
    // interleaving, so the legacy cells change writer between any two
    // consecutive accesses of a field (the false-sharing worst case the
    // per-thread filter sidesteps entirely).
    for (uint32_t J = 0; J < AccessesPerTx; ++J) {
      for (uint32_t T = 0; T < Threads; ++T) {
        ThreadState &St = *Sp[T];
        // Odd stride over the power-of-two universe: a permutation, so
        // addresses stay distinct within a transaction (no elision), and
        // accesses scatter across the field space the way real heap
        // traffic does instead of scanning cells line-by-line.
        const uint32_t Addr = (St.AddrBase + J * 521) & (NumAddrs - 1);
        const uint32_t Obj = Addr / 4;
        const bool IsWrite = (J & 1) != 0;
        if (!Legacy) {
          // Mirrors logAccess's default branch exactly: filter probe,
          // packed append, LogLen publication.
          if (St.Filter.testAndSet(ElisionFilter::key(Obj, Addr), St.Epoch,
                                   IsWrite))
            continue;
          St.Cur->LogLen.store(
              St.Cur->Log.appendAccess(Obj, Addr, IsWrite, &St.Cache),
              std::memory_order_release);
          continue;
        }
        // Mirrors logAccess's LegacyLog branch.
        const uint64_t Cell = Cells[Addr].load(std::memory_order_relaxed);
        if (cellTid(Cell) == T && cellTs(Cell) == St.Epoch &&
            (cellWasWrite(Cell) || !IsWrite))
          continue;
        LogEntry E;
        E.K = IsWrite ? LogEntry::Kind::Write : LogEntry::Kind::Read;
        E.Obj = Obj;
        E.Addr = Addr;
        St.Cur->appendLogLegacy(E);
        St.BytesLogged += sizeof(LogEntry);
        if (Penalty != 0) {
          if (Cell != 0 && cellTid(Cell) != T)
            Contended[Addr].store(1, std::memory_order_relaxed);
          if (Contended[Addr].load(std::memory_order_relaxed))
            spinPenalty(Penalty, Addr);
        }
        Cells[Addr].store(packCell(T, IsWrite, St.Epoch),
                          std::memory_order_relaxed);
      }
    }
    // Hop the base by a large odd constant (a full-period walk of the
    // power-of-two universe): successive transactions touch fields far
    // apart, the way real transactions touch objects scattered across the
    // heap, so the legacy path's per-field cell lines are cold rather
    // than conveniently re-warmed by the previous transaction.
    for (uint32_t T = 0; T < Threads; ++T)
      Sp[T]->AddrBase = (Sp[T]->AddrBase + 104729u) & (NumAddrs - 1);
  }
  // Reclaiming the final window is the collector's steady-state work and
  // stays inside the timing.
  uint64_t Bytes = 0;
  for (uint32_t T = 0; T < Threads; ++T) {
    Bytes += States[T]->BytesLogged;
    for (auto &Slot : States[T]->Ring)
      if (Slot != nullptr && !Legacy)
        Slot->Log.releaseTo(Pool);
  }
  States.clear();
  auto End = std::chrono::steady_clock::now();

  Point Pt;
  Pt.Seconds = std::chrono::duration<double>(End - Begin).count();
  Pt.Records = Records;
  // Arena bytes are derived, exactly as endRun's flush derives them.
  Pt.Bytes = Legacy ? Bytes : Records * sizeof(LogSlot);
  Pt.ChunkAllocs = Pool.chunkAllocs();
  Pt.ChunkRecycles = Pool.chunkRecycles();
  return Pt;
}

Point sweep(uint32_t Threads, uint64_t TxPerThread, bool Legacy,
            unsigned Trials) {
  std::vector<Point> Runs;
  for (unsigned R = 0; R < Trials; ++R)
    Runs.push_back(runOnce(Threads, TxPerThread, Legacy));
  std::sort(Runs.begin(), Runs.end(), [](const Point &A, const Point &B) {
    return A.Seconds < B.Seconds;
  });
  return Runs[Runs.size() / 2];
}

} // namespace

int main(int argc, char **argv) {
  const char *OutPath = argc > 1 ? argv[1] : "BENCH_logging.json";
  const double Scale = benchScale();
  const unsigned Trials = benchTrials();
  const uint64_t TxPerThread =
      std::max<uint64_t>(2 * LiveWindow,
                         static_cast<uint64_t>(200000 * Scale));
  std::printf("logging hot path: legacy (shared cells + vector logs) vs "
              "arena (thread-local filter + chunked slots)\n"
              "scale %.2f, %llu tx/thread x %u accesses/tx, %u live txs "
              "per thread\n\n",
              Scale, static_cast<unsigned long long>(TxPerThread),
              AccessesPerTx, LiveWindow);

  TextTable Table;
  Table.setHeader({"threads", "legacy app/s", "arena app/s", "legacy ns/app",
                   "arena ns/app", "chunk reuse", "speedup"});
  JsonRows Json;

  for (uint32_t Threads : {1u, 2u, 4u, 8u}) {
    Point Old = sweep(Threads, TxPerThread, /*Legacy=*/true, Trials);
    Point New = sweep(Threads, TxPerThread, /*Legacy=*/false, Trials);
    const double OldRate = static_cast<double>(Old.Records) / Old.Seconds;
    const double NewRate = static_cast<double>(New.Records) / New.Seconds;
    const double Speedup = OldRate > 0 ? NewRate / OldRate : 0;
    const double Reuse =
        New.ChunkAllocs + New.ChunkRecycles
            ? static_cast<double>(New.ChunkRecycles) /
                  static_cast<double>(New.ChunkAllocs + New.ChunkRecycles)
            : 0;
    Table.addRow({std::to_string(Threads),
                  formatWithCommas(static_cast<uint64_t>(OldRate)),
                  formatWithCommas(static_cast<uint64_t>(NewRate)),
                  formatDouble(1e9 / OldRate, 1), formatDouble(1e9 / NewRate, 1),
                  formatDouble(100 * Reuse, 0) + "%",
                  formatDouble(Speedup, 2) + "x"});
    Json.beginRow();
    Json.add("threads", static_cast<uint64_t>(Threads));
    Json.add("tx_per_thread", TxPerThread);
    Json.add("accesses_per_tx", static_cast<uint64_t>(AccessesPerTx));
    Json.add("live_window", static_cast<uint64_t>(LiveWindow));
    Json.add("legacy_wall_s", Old.Seconds);
    Json.add("arena_wall_s", New.Seconds);
    Json.add("records", New.Records);
    Json.add("legacy_appends_per_s", OldRate);
    Json.add("arena_appends_per_s", NewRate);
    Json.add("legacy_ns_per_append", 1e9 / OldRate);
    Json.add("arena_ns_per_append", 1e9 / NewRate);
    Json.add("legacy_bytes_logged", Old.Bytes);
    Json.add("arena_bytes_logged", New.Bytes);
    Json.add("arena_chunk_allocs", New.ChunkAllocs);
    Json.add("arena_chunk_recycles", New.ChunkRecycles);
    Json.add("speedup", Speedup);
    if (Threads == 1)
      std::printf("single-thread append speedup: %.2fx (target >= 2x)\n",
                  Speedup);
    if (Threads == 8)
      std::printf("8-thread false-sharing speedup: %.2fx (target >= 3x)\n",
                  Speedup);
  }

  std::printf("\n%s\n", Table.render().c_str());
  std::printf("(per-append work mirrors DoubleCheckerRuntime::logAccess on "
              "each path; speedup = arena appends/s over legacy appends/s "
              "on identical access streams)\n");
  if (Json.write(OutPath, "logging_throughput"))
    std::printf("wrote %s\n", OutPath);
  return 0;
}
