//===- bench/micro_components.cpp - Component cost microbenchmarks --------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks justifying the design's cost story:
/// Octet's fast paths are a load+compare (cheap, no writes); Velodrome's
/// per-access critical section costs an order of magnitude more, and its
/// cross-thread metadata ping-pong (simulated coherence miss) more still;
/// log appends sit in between, with duplicate elision nearly free; PCD
/// replay costs are linear in SCC log sizes.
///
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "analysis/DoubleChecker.h"
#include "analysis/Pcd.h"
#include "ir/Builder.h"
#include "rt/Runtime.h"
#include "support/Rng.h"
#include "support/SpinLock.h"
#include "velodrome/Velodrome.h"

using namespace dc;

namespace {

/// A minimal program whose heap provides objects for barrier benchmarks.
/// The atomic "txn" method exists so log benchmarks can drive transaction
/// boundaries (which advance the elision epoch).
ir::Program tinyProgram() {
  ir::ProgramBuilder B("micro");
  ir::PoolId Pool = B.addPool("objs", 64, 4);
  (void)Pool;
  B.beginMethod("txn", true).work(1).endMethod();
  ir::MethodId Main = B.beginMethod("main", false).work(1).endMethod();
  B.addThread(Main);
  B.addThread(Main);
  return B.build();
}

/// Shared fixture: a runtime (never run), a checker attached to it, and a
/// fake thread context for direct hook calls.
struct CheckerFixture {
  ir::Program P = tinyProgram();
  StatisticRegistry Stats;
  analysis::ViolationLog Violations;

  rt::ThreadContext makeTc(rt::Runtime &RT, rt::CheckerRuntime *Checker,
                           uint32_t Tid) {
    rt::ThreadContext TC;
    TC.Tid = Tid;
    TC.RT = &RT;
    TC.Checker = Checker;
    return TC;
  }
};

void BM_OctetReadFastPath(benchmark::State &State) {
  CheckerFixture F;
  rt::Runtime RT(F.P, nullptr);
  octet::OctetManager Octet(RT.heap(), 2, nullptr, F.Stats);
  Octet.threadStarted(0);
  rt::ThreadContext TC = F.makeTc(RT, nullptr, 0);
  Octet.readBarrier(TC, 0); // Claim the object (RdEx_0).
  for (auto _ : State)
    Octet.readBarrier(TC, 0);
}
BENCHMARK(BM_OctetReadFastPath);

void BM_OctetWriteFastPath(benchmark::State &State) {
  CheckerFixture F;
  rt::Runtime RT(F.P, nullptr);
  octet::OctetManager Octet(RT.heap(), 2, nullptr, F.Stats);
  Octet.threadStarted(0);
  rt::ThreadContext TC = F.makeTc(RT, nullptr, 0);
  Octet.writeBarrier(TC, 0); // Claim the object (WrEx_0).
  for (auto _ : State)
    Octet.writeBarrier(TC, 0);
}
BENCHMARK(BM_OctetWriteFastPath);

void BM_OctetRdShFastPath(benchmark::State &State) {
  CheckerFixture F;
  rt::Runtime RT(F.P, nullptr);
  octet::OctetManager Octet(RT.heap(), 2, nullptr, F.Stats);
  Octet.threadStarted(0);
  Octet.threadStarted(1);
  rt::ThreadContext T0 = F.makeTc(RT, nullptr, 0);
  rt::ThreadContext T1 = F.makeTc(RT, nullptr, 1);
  Octet.readBarrier(T0, 0); // RdEx_0.
  Octet.readBarrier(T1, 0); // Upgrade to RdSh.
  Octet.readBarrier(T0, 0); // Fence once; now up to date.
  for (auto _ : State)
    Octet.readBarrier(T0, 0);
}
BENCHMARK(BM_OctetRdShFastPath);

/// Log-append cost, parameterised over the storage path: range(0) == 0 is
/// the default arena path (thread-local filter + chunked slots), 1 is the
/// LegacyLog escape hatch (shared elision cells + per-transaction vector),
/// so the two appends are separately attributable.
void BM_IcdLogAppend(benchmark::State &State) {
  CheckerFixture F;
  analysis::DoubleCheckerOptions Opts;
  Opts.RunPcd = false;
  Opts.LegacyLog = State.range(0) != 0;
  analysis::DoubleCheckerRuntime DC(F.P, Opts, F.Violations, F.Stats);
  rt::Runtime RT(F.P, &DC);
  DC.beginRun(RT);
  rt::ThreadContext TC = F.makeTc(RT, &DC, 0);
  DC.threadStarted(TC);
  const ir::Method &Txn = F.P.Methods[F.P.findMethod("txn")];
  rt::AccessInfo Info;
  Info.IsWrite = true;
  Info.Flags = ir::IF_OctetBarrier | ir::IF_LogAccess;
  uint32_t I = 0;
  DC.txBegin(TC, Txn);
  for (auto _ : State) {
    // 64 distinct fields per transaction, new transaction (= new elision
    // epoch) every 64 accesses: every access appends, and the ~1.5% of
    // iterations spent on transaction turnover amortizes away.
    if (I % 64 == 0 && I != 0) {
      DC.txEnd(TC, Txn);
      DC.txBegin(TC, Txn);
    }
    Info.Obj = (I & 63) / 4;
    Info.Addr = RT.heap().fieldAddr(Info.Obj, I & 3);
    ++I;
    DC.instrumentedAccess(TC, Info, [] {});
  }
  DC.txEnd(TC, Txn);
}
BENCHMARK(BM_IcdLogAppend)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("legacy");

void BM_IcdLogElided(benchmark::State &State) {
  CheckerFixture F;
  analysis::DoubleCheckerOptions Opts;
  Opts.RunPcd = false;
  Opts.LegacyLog = State.range(0) != 0;
  analysis::DoubleCheckerRuntime DC(F.P, Opts, F.Violations, F.Stats);
  rt::Runtime RT(F.P, &DC);
  DC.beginRun(RT);
  rt::ThreadContext TC = F.makeTc(RT, &DC, 0);
  DC.threadStarted(TC);
  rt::AccessInfo Info;
  Info.Obj = 0;
  Info.Addr = RT.heap().fieldAddr(0, 0);
  Info.IsWrite = true;
  Info.Flags = ir::IF_OctetBarrier | ir::IF_LogAccess;
  DC.instrumentedAccess(TC, Info, [] {}); // First access appends.
  for (auto _ : State)
    DC.instrumentedAccess(TC, Info, [] {}); // Duplicates elide.
}
BENCHMARK(BM_IcdLogElided)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("legacy");

/// Raw storage cost with the checker plumbing subtracted: one packed-slot
/// arena append (recycled chunks via a pool-less cache) vs. one 32-byte
/// vector push_back, fresh transaction every 256 records to expose the
/// legacy path's per-transaction malloc/grow/free churn.
void BM_ArenaRawAppend(benchmark::State &State) {
  const bool Legacy = State.range(0) != 0;
  analysis::LogChunkPool Pool;
  analysis::LogChunkCache Cache;
  Cache.attach(&Pool);
  auto Tx = std::make_unique<analysis::Transaction>(1, 0, 0, ir::MethodId(0),
                                                    true);
  analysis::LogEntry E;
  E.K = analysis::LogEntry::Kind::Write;
  uint32_t I = 0;
  for (auto _ : State) {
    E.Obj = I & 63;
    E.Addr = I;
    if (Legacy)
      Tx->appendLogLegacy(E);
    else
      Tx->appendLog(E, &Cache);
    if (++I % 256 == 0) {
      Tx->Log.releaseTo(Pool);
      Tx = std::make_unique<analysis::Transaction>(1, 0, 0, ir::MethodId(0),
                                                   true);
    }
  }
}
BENCHMARK(BM_ArenaRawAppend)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("legacy");

/// The thread-local duplicate filter by itself: a hit (elidable repeat) and
/// a miss that inserts (range(0) == 1 rotates keys so every probe misses).
void BM_ElisionFilterProbe(benchmark::State &State) {
  const bool Rotate = State.range(0) != 0;
  analysis::ElisionFilter Filter;
  uint64_t Key = 0;
  for (auto _ : State) {
    if (Rotate)
      Key = (Key + 1) & 0xffff;
    benchmark::DoNotOptimize(
        Filter.testAndSet(analysis::ElisionFilter::key(
                              static_cast<uint32_t>(Key), 7),
                          /*Epoch=*/1, /*IsWrite=*/true));
  }
}
BENCHMARK(BM_ElisionFilterProbe)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("rotate");

void BM_VelodromeAccessLocal(benchmark::State &State) {
  CheckerFixture F;
  velodrome::VelodromeRuntime Velo(F.P, velodrome::VelodromeOptions(),
                                   F.Violations, F.Stats);
  rt::Runtime RT(F.P, &Velo);
  Velo.beginRun(RT);
  rt::ThreadContext TC = F.makeTc(RT, &Velo, 0);
  Velo.threadStarted(TC);
  rt::AccessInfo Info;
  Info.Obj = 0;
  Info.Addr = RT.heap().fieldAddr(0, 0);
  Info.IsWrite = false;
  Info.Flags = ir::IF_VelodromeBarrier;
  for (auto _ : State)
    Velo.instrumentedAccess(TC, Info, [] {});
}
BENCHMARK(BM_VelodromeAccessLocal);

void BM_VelodromeAccessPingPong(benchmark::State &State) {
  CheckerFixture F;
  velodrome::VelodromeRuntime Velo(F.P, velodrome::VelodromeOptions(),
                                   F.Violations, F.Stats);
  rt::Runtime RT(F.P, &Velo);
  Velo.beginRun(RT);
  rt::ThreadContext T0 = F.makeTc(RT, &Velo, 0);
  rt::ThreadContext T1 = F.makeTc(RT, &Velo, 1);
  Velo.threadStarted(T0);
  Velo.threadStarted(T1);
  rt::AccessInfo Info;
  Info.Obj = 0;
  Info.Addr = RT.heap().fieldAddr(0, 0);
  Info.IsWrite = false;
  Info.Flags = ir::IF_VelodromeBarrier;
  bool Flip = false;
  for (auto _ : State) {
    // Alternating threads: the contended path with the simulated
    // coherence miss (two accesses per iteration).
    Velo.instrumentedAccess(Flip ? T0 : T1, Info, [] {});
    Flip = !Flip;
  }
}
BENCHMARK(BM_VelodromeAccessPingPong);

void BM_PcdReplay(benchmark::State &State) {
  // Synthetic SCC: K transactions on two threads, alternating edges.
  const uint32_t K = static_cast<uint32_t>(State.range(0));
  std::vector<std::unique_ptr<analysis::Transaction>> Owned;
  std::vector<analysis::Transaction *> Members;
  for (uint32_t I = 0; I < K; ++I) {
    auto Tx = std::make_unique<analysis::Transaction>(
        I + 1, I % 2, I / 2, ir::MethodId(0), /*Regular=*/true);
    for (uint32_t E = 0; E < 16; ++E) {
      analysis::LogEntry Entry;
      Entry.K = (E % 4 == 3) ? analysis::LogEntry::Kind::Write
                             : analysis::LogEntry::Kind::Read;
      Entry.Obj = E % 3;
      Entry.Addr = 100 + E % 7;
      Tx->appendLog(Entry);
    }
    Tx->Finished.store(true);
    Members.push_back(Tx.get());
    Owned.push_back(std::move(Tx));
  }
  StatisticRegistry Stats;
  analysis::ViolationLog Sink;
  analysis::PreciseCycleDetector Pcd(Sink, Stats);
  for (auto _ : State)
    Pcd.processScc(Members);
  State.SetItemsProcessed(State.iterations() * K * 16);
}
BENCHMARK(BM_PcdReplay)->Arg(8)->Arg(64);

void BM_SpinLockUncontended(benchmark::State &State) {
  SpinLock Lock;
  for (auto _ : State) {
    Lock.lock();
    Lock.unlock();
  }
}
BENCHMARK(BM_SpinLockUncontended);

void BM_SplitMix64(benchmark::State &State) {
  SplitMix64 Rng(42);
  uint64_t Sink = 0;
  for (auto _ : State)
    Sink ^= Rng.next();
  benchmark::DoNotOptimize(Sink);
}
BENCHMARK(BM_SplitMix64);

void BM_InterpreterThroughput(benchmark::State &State) {
  using namespace ir;
  ProgramBuilder B("loop");
  PoolId Pool = B.addPool("data", 4, 8);
  MethodId Main = B.beginMethod("main", false)
                      .beginLoop(idxConst(50000))
                      .read(Pool, idxConst(0), idxLoop(0, 1, 0, 8))
                      .write(Pool, idxConst(1), idxLoop(0, 1, 0, 8))
                      .work(1)
                      .endLoop()
                      .endMethod();
  B.addThread(Main);
  Program P = B.build();
  uint64_t Steps = 0;
  for (auto _ : State) {
    rt::Runtime RT(P, nullptr);
    Steps += RT.run().Steps;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Steps));
}
BENCHMARK(BM_InterpreterThroughput);

} // namespace

BENCHMARK_MAIN();
