//===- bench/table3_characteristics.cpp - Table 3 reproduction ------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 3: run-time characteristics of DoubleChecker in
/// single-run mode and in the second run of multi-run mode — regular
/// transactions, instrumented accesses in regular and non-transactional
/// (unary) contexts, IDG cross-thread edges, and ICD SCCs. As in the
/// paper, the second run instruments only first-run-implicated methods and
/// instruments non-transactional accesses iff a unary transaction was in a
/// first-run cycle; benchmarks whose first run reports no SCCs show all
/// zeros in the second-run columns.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

using namespace dc;
using namespace dc::bench;
using namespace dc::core;

int main() {
  const double Scale = benchScale();
  std::printf("Table 3: run-time characteristics, single-run vs second run "
              "(scale %.2f)\n\n",
              Scale);

  TextTable Table;
  Table.setHeader({"benchmark", "1:regTx", "1:accReg", "1:accUn", "1:edges",
                   "1:SCCs", "2:regTx", "2:accReg", "2:accUn", "2:edges",
                   "2:SCCs"});

  for (const workloads::WorkloadInfo &W : workloads::all()) {
    ir::Program P = W.Build(Scale);
    AtomicitySpec Spec = finalSpecFor(W.Name);

    RunConfig SingleCfg;
    SingleCfg.M = Mode::SingleRun;
    SingleCfg.RunOpts = perfRunOptions(0x7ab1e3);
    RunOutcome Single = runChecker(P, Spec, SingleCfg);

    // First runs feeding the second run's static information.
    analysis::StaticTransactionInfo Union;
    for (uint64_t Trial = 0; Trial < 2; ++Trial) {
      RunConfig FirstCfg;
      FirstCfg.M = Mode::FirstRun;
      FirstCfg.RunOpts = perfRunOptions(0xf117 + Trial);
      Union.merge(runChecker(P, Spec, FirstCfg).StaticInfo);
    }
    RunConfig SecondCfg;
    SecondCfg.M = Mode::SecondRun;
    SecondCfg.RunOpts = perfRunOptions(0x5ec);
    SecondCfg.StaticInfo = &Union;
    RunOutcome Second = runChecker(P, Spec, SecondCfg);

    auto Cell = [&](const RunOutcome &O, const char *Name) {
      return formatWithCommas(O.stat(Name));
    };
    Table.addRow({W.Name,
                  Cell(Single, "icd.regular_transactions"),
                  Cell(Single, "icd.instrumented_accesses_regular"),
                  Cell(Single, "icd.instrumented_accesses_unary"),
                  Cell(Single, "icd.idg_cross_edges"),
                  Cell(Single, "icd.sccs"),
                  Cell(Second, "icd.regular_transactions"),
                  Cell(Second, "icd.instrumented_accesses_regular"),
                  Cell(Second, "icd.instrumented_accesses_unary"),
                  Cell(Second, "icd.idg_cross_edges"),
                  Cell(Second, "icd.sccs")});
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("shape check: unary accesses dominate for avrora9/tsp; "
              "few edges relative to accesses everywhere; second-run\n"
              "columns shrink (to zero when the first run saw no SCCs), "
              "mirroring the paper's Table 3.\n");
  return 0;
}
