//===- bench/ablation_second_run.cpp - §5.3 second-run variants -----------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §5.3's second-run design points: (a) the default second run, which
/// instruments non-transactional accesses only when the first run saw a
/// unary transaction in a cycle; (b) always instrumenting them (paper:
/// overhead rises from 140% to 169%, justifying the conditional); and
/// (c) using Velodrome as the second run's checker on the selected methods
/// (paper: 2.9x vs 2.4x — ICD remains a useful dynamic filter even in the
/// second run).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

using namespace dc;
using namespace dc::bench;
using namespace dc::core;

int main() {
  const double Scale = benchScale();
  const unsigned Trials = benchTrials();
  std::printf("Second-run variants (scale %.2f)\n\n", Scale);

  TextTable Table;
  Table.setHeader({"benchmark", "second-run", "always-unary",
                   "velodrome-2nd"});
  std::vector<double> GA, GB, GC;

  for (const workloads::WorkloadInfo &W : workloads::all()) {
    if (!W.ComputeBound)
      continue;
    ir::Program P = W.Build(Scale);
    AtomicitySpec Spec = finalSpecFor(W.Name);

    RunConfig Base;
    Base.M = Mode::Unmodified;
    Base.RunOpts = perfRunOptions(1);
    double B = runTimed(P, Spec, Base, Trials).MedianSeconds;

    analysis::StaticTransactionInfo Union;
    for (uint64_t Trial = 0; Trial < 2; ++Trial) {
      RunConfig FirstCfg;
      FirstCfg.M = Mode::FirstRun;
      FirstCfg.RunOpts = perfRunOptions(0xf117 + Trial);
      Union.merge(runChecker(P, Spec, FirstCfg).StaticInfo);
    }

    auto Slow = [&](Mode M, bool ForceUnary) {
      RunConfig Cfg;
      Cfg.M = M;
      Cfg.RunOpts = perfRunOptions(2);
      Cfg.StaticInfo = &Union;
      Cfg.ForceInstrumentUnary = ForceUnary;
      return runTimed(P, Spec, Cfg, Trials).MedianSeconds / B;
    };
    double A = Slow(Mode::SecondRun, false);
    double Always = Slow(Mode::SecondRun, true);
    double VeloSecond = Slow(Mode::SecondRunVelodrome, false);
    GA.push_back(A);
    GB.push_back(Always);
    GC.push_back(VeloSecond);
    Table.addRow({W.Name, formatDouble(A, 2), formatDouble(Always, 2),
                  formatDouble(VeloSecond, 2)});
  }
  Table.addRow({"geomean", formatDouble(geomean(GA), 2),
                formatDouble(geomean(GB), 2), formatDouble(geomean(GC), 2)});
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: second run 2.4x; always-instrument-unary 2.69x; "
              "Velodrome as the second run 2.9x.\n");
  return 0;
}
