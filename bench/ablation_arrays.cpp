//===- bench/ablation_arrays.cpp - §5.4 array instrumentation -------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §5.4, second experiment: the main configurations skip array-element
/// accesses (as the Velodrome paper did). This harness measures the extra
/// overhead of instrumenting them, with array metadata conflated per array
/// and cycle detection disabled for both checkers (conflated metadata
/// makes reports meaningless) — exactly the paper's setup. Paper:
/// single-run 3.1x -> 3.7x, Velodrome 6.3x -> 7.3x.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

using namespace dc;
using namespace dc::bench;
using namespace dc::core;

int main() {
  const double Scale = benchScale();
  const unsigned Trials = benchTrials();
  std::printf("Array-instrumentation overhead (cycle detection disabled, "
              "scale %.2f)\n\n",
              Scale);

  TextTable Table;
  Table.setHeader({"benchmark", "single", "single+arrays", "velo",
                   "velo+arrays"});
  std::vector<double> GS, GSA, GV, GVA;

  // The workloads that declare array pools.
  for (const std::string Name : {"luindex9", "sor", "tsp"}) {
    ir::Program P = workloads::build(Name, Scale);
    AtomicitySpec Spec = finalSpecFor(Name);

    auto Slowdown = [&](Mode M, bool Arrays) {
      RunConfig Base;
      Base.M = Mode::Unmodified;
      Base.RunOpts = perfRunOptions(1);
      double B = runTimed(P, Spec, Base, Trials).MedianSeconds;
      RunConfig Cfg;
      Cfg.M = M;
      Cfg.RunOpts = perfRunOptions(2);
      Cfg.InstrumentArrays = Arrays;
      Cfg.DetectCycles = false;
      return runTimed(P, Spec, Cfg, Trials).MedianSeconds / B;
    };

    double S = Slowdown(Mode::SingleRun, false);
    double SA = Slowdown(Mode::SingleRun, true);
    double V = Slowdown(Mode::Velodrome, false);
    double VA = Slowdown(Mode::Velodrome, true);
    GS.push_back(S);
    GSA.push_back(SA);
    GV.push_back(V);
    GVA.push_back(VA);
    Table.addRow({Name, formatDouble(S, 2), formatDouble(SA, 2),
                  formatDouble(V, 2), formatDouble(VA, 2)});
  }
  Table.addRow({"geomean", formatDouble(geomean(GS), 2),
                formatDouble(geomean(GSA), 2), formatDouble(geomean(GV), 2),
                formatDouble(geomean(GVA), 2)});
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: single-run 3.1x -> 3.7x with arrays; Velodrome "
              "6.3x -> 7.3x. Shape: both rise, ordering unchanged.\n");
  return 0;
}
