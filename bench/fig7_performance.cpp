//===- bench/fig7_performance.cpp - Figure 7 reproduction -----------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 7: run-time of Velodrome, DoubleChecker's single-run
/// mode, and the first and second runs of multi-run mode, normalized to
/// unmodified execution, per compute-bound workload plus the geometric
/// mean. The paper's sub-bars show GC time; our analogue is the checkers'
/// transaction-collector time, reported as a percentage of the run.
///
/// Expected shape (paper: Velodrome 6.1x, single-run 3.6x, first run 1.9x,
/// second run 2.4x): Velodrome's geomean above single-run's, first run the
/// cheapest checker, second run between first and single-run, and xalan6
/// the adversarial outlier where Velodrome wins (§5.3).
///
/// The vc column is the vector-clock engine (DESIGN.md §14) — the raw-speed
/// contender with no dependence graph, no SCC passes, and no replay. The
/// bench asserts that structurally: a vc run must report zero icd.* and
/// pcd.* work.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

using namespace dc;
using namespace dc::bench;
using namespace dc::core;

int main() {
  const double Scale = benchScale();
  const unsigned Trials = benchTrials();
  std::printf("Figure 7: normalized execution time "
              "(scale %.2f, median of %u trials)\n\n",
              Scale, Trials);

  TextTable Table;
  Table.setHeader({"benchmark", "velodrome", "single-run", "first-run",
                   "second-run", "vc", "single gc%", "velo gc%", "vc gc%"});

  bool VcGraphFree = true;
  std::vector<double> GeoVelo, GeoSingle, GeoFirst, GeoSecond, GeoVc;
  for (const workloads::WorkloadInfo &W : workloads::all()) {
    if (!W.ComputeBound)
      continue; // The paper excludes elevator, hedc, philo from Fig. 7.
    ir::Program P = W.Build(Scale);
    AtomicitySpec Spec = finalSpecFor(W.Name);

    auto Timed = [&](Mode M, const analysis::StaticTransactionInfo *Info =
                                 nullptr) {
      RunConfig Cfg;
      Cfg.M = M;
      Cfg.RunOpts = perfRunOptions(0x516 + static_cast<uint64_t>(M));
      Cfg.StaticInfo = Info;
      return runTimed(P, Spec, Cfg, Trials);
    };

    TimedResult Base = Timed(Mode::Unmodified);
    TimedResult Velo = Timed(Mode::Velodrome);
    TimedResult Single = Timed(Mode::SingleRun);
    TimedResult First = Timed(Mode::FirstRun);

    // Second run input: union of the first runs' static information
    // (the paper unions 10 first-run trials; we reuse the timed ones).
    analysis::StaticTransactionInfo Union = First.Outcome.StaticInfo;
    TimedResult Second = Timed(Mode::SecondRun, &Union);
    TimedResult Vc = Timed(Mode::VectorClock);

    // The vc column's claim to fame: zero graph/SCC/replay machinery ran.
    for (const auto &Entry : Vc.Outcome.Stats)
      if ((Entry.first.rfind("icd.", 0) == 0 ||
           Entry.first.rfind("pcd.", 0) == 0) &&
          Entry.second != 0)
        VcGraphFree = false;

    auto Norm = [&](const TimedResult &R) {
      return R.MedianSeconds / Base.MedianSeconds;
    };
    auto GcPct = [&](const TimedResult &R, const char *Counter) {
      double Ns = static_cast<double>(R.Outcome.stat(Counter));
      return 100.0 * (Ns / 1e9) / R.MedianSeconds;
    };

    GeoVelo.push_back(Norm(Velo));
    GeoSingle.push_back(Norm(Single));
    GeoFirst.push_back(Norm(First));
    GeoSecond.push_back(Norm(Second));
    GeoVc.push_back(Norm(Vc));
    Table.addRow({W.Name, formatDouble(Norm(Velo), 2),
                  formatDouble(Norm(Single), 2),
                  formatDouble(Norm(First), 2),
                  formatDouble(Norm(Second), 2), formatDouble(Norm(Vc), 2),
                  formatDouble(GcPct(Single, "icd.collector_ns"), 1),
                  formatDouble(GcPct(Velo, "velodrome.collector_ns"), 1),
                  formatDouble(GcPct(Vc, "vc.collector_ns"), 1)});
  }
  Table.addRow({"geomean", formatDouble(geomean(GeoVelo), 2),
                formatDouble(geomean(GeoSingle), 2),
                formatDouble(geomean(GeoFirst), 2),
                formatDouble(geomean(GeoSecond), 2),
                formatDouble(geomean(GeoVc), 2), "-", "-", "-"});
  std::printf("%s\n", Table.render().c_str());
  std::printf("vc runs with zero icd.*/pcd.* work: %s\n",
              VcGraphFree ? "yes" : "NO (unexpected)");
  std::printf("paper (geomean): velodrome 6.1x, single-run 3.6x, "
              "first run 1.9x, second run 2.4x\n");
  return VcGraphFree ? 0 : 1;
}
