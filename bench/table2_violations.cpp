//===- bench/table2_violations.cpp - Table 2 reproduction -----------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 2: static atomicity violations (distinct blamed
/// methods accumulated by iterative refinement to convergence) reported by
/// Velodrome, DoubleChecker single-run mode, and multi-run mode, per
/// workload. "Unique" counts methods a checker blamed that single-run mode
/// did not — nonzero entries come from schedule nondeterminism, exactly as
/// in the paper. Refinement uses deterministic schedules with per-trial
/// seeds (on this one-core host free-running threads serialize and races
/// rarely manifest; see DESIGN.md §2).
///
/// Expected shape: the three columns agree closely; multi-run detects most
/// but not all of single-run's violations (83% overall in the paper).
///
//===----------------------------------------------------------------------===//

#include <set>

#include "bench/BenchUtils.h"

using namespace dc;
using namespace dc::bench;
using namespace dc::core;

int main() {
  const double Scale = 0.12; // Seeded races need enough iterations.
  std::printf("Table 2: static atomicity violations via iterative "
              "refinement (scale %.2f)\n\n",
              Scale);

  TextTable Table;
  Table.setHeader({"benchmark", "velodrome", "(unique)", "single-run",
                   "multi-run", "(unique)"});

  size_t TotVelo = 0, TotSingle = 0, TotMulti = 0;
  size_t TotVeloU = 0, TotMultiU = 0;
  for (const workloads::WorkloadInfo &W : workloads::all()) {
    ir::Program P = W.Build(Scale);

    auto Refine = [&](RefinementChecker C) {
      RefinementOptions Opts;
      Opts.Checker = C;
      Opts.QuietTrials = 2;
      Opts.FirstRunsPerTrial = 2;
      Opts.Deterministic = true;
      Opts.Seed = 0x7ab1e2 + std::hash<std::string>{}(W.Name);
      return iterativeRefinement(P, Opts);
    };

    RefinementResult Velo = Refine(RefinementChecker::Velodrome);
    RefinementResult Single = Refine(RefinementChecker::SingleRun);
    RefinementResult Multi = Refine(RefinementChecker::MultiRun);

    auto UniqueVs = [&](const std::set<std::string> &A,
                        const std::set<std::string> &B) {
      size_t N = 0;
      for (const std::string &Name : A)
        N += B.count(Name) == 0;
      return N;
    };
    size_t VeloU = UniqueVs(Velo.AllBlamed, Single.AllBlamed);
    size_t MultiU = UniqueVs(Multi.AllBlamed, Single.AllBlamed);

    TotVelo += Velo.AllBlamed.size();
    TotSingle += Single.AllBlamed.size();
    TotMulti += Multi.AllBlamed.size();
    TotVeloU += VeloU;
    TotMultiU += MultiU;
    Table.addRow({W.Name, std::to_string(Velo.AllBlamed.size()),
                  "(" + std::to_string(VeloU) + ")",
                  std::to_string(Single.AllBlamed.size()),
                  std::to_string(Multi.AllBlamed.size()),
                  "(" + std::to_string(MultiU) + ")"});
  }
  Table.addRow({"Total", std::to_string(TotVelo),
                "(" + std::to_string(TotVeloU) + ")",
                std::to_string(TotSingle), std::to_string(TotMulti),
                "(" + std::to_string(TotMultiU) + ")"});
  std::printf("%s\n", Table.render().c_str());
  if (TotSingle != 0)
    std::printf("multi-run detected %.0f%% of single-run's violations "
                "(paper: 83%%)\n",
                100.0 * static_cast<double>(TotMulti) /
                    static_cast<double>(TotSingle));
  return 0;
}
