//===- bench/ablation_parallel_pcd.cpp - Future-work extension ------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's suggested fix for the xalan6 pathology: "ICD detects SCCs
/// serially, and PCD detects cycles serially; making them parallel could
/// alleviate this bottleneck" (§5.3). This harness compares single-run
/// mode with PCD inline (under the IDG lock) against the parallel-PCD
/// extension (a background replay worker) on the SCC-heaviest workloads.
/// Expected shape: parallel PCD recovers most of the PCD-dominated gap on
/// xalan6 and changes little where PCD was already cheap. (On this 1-core
/// host the worker competes for the same core, so the recovery comes from
/// unblocking the IDG lock, not from true parallel speedup.)
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

using namespace dc;
using namespace dc::bench;
using namespace dc::core;

int main() {
  const double Scale = benchScale();
  const unsigned Trials = benchTrials();
  std::printf("Parallel-PCD extension (scale %.2f)\n\n", Scale);

  TextTable Table;
  Table.setHeader({"benchmark", "single-run", "single+parallel-pcd",
                   "velodrome"});
  std::vector<double> GS, GP, GV;

  for (const std::string Name :
       {"xalan6", "eclipse6", "xalan9", "montecarlo", "lusearch9"}) {
    ir::Program P = workloads::build(Name, Scale);
    AtomicitySpec Spec = finalSpecFor(Name);

    RunConfig Base;
    Base.M = Mode::Unmodified;
    Base.RunOpts = perfRunOptions(1);
    double B = runTimed(P, Spec, Base, Trials).MedianSeconds;

    auto Slow = [&](Mode M, bool Parallel) {
      RunConfig Cfg;
      Cfg.M = M;
      Cfg.RunOpts = perfRunOptions(2);
      Cfg.ParallelPcd = Parallel;
      return runTimed(P, Spec, Cfg, Trials).MedianSeconds / B;
    };
    double S = Slow(Mode::SingleRun, false);
    double SP = Slow(Mode::SingleRun, true);
    double V = Slow(Mode::Velodrome, false);
    GS.push_back(S);
    GP.push_back(SP);
    GV.push_back(V);
    Table.addRow({Name, formatDouble(S, 2), formatDouble(SP, 2),
                  formatDouble(V, 2)});
  }
  Table.addRow({"geomean", formatDouble(geomean(GS), 2),
                formatDouble(geomean(GP), 2), formatDouble(geomean(GV), 2)});
  std::printf("%s\n", Table.render().c_str());
  std::printf("(extension, no paper baseline: the paper proposes this as "
              "future work)\n");
  return 0;
}
