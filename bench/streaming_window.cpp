//===- bench/streaming_window.cpp - Service-mode window overhead ----------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what streaming service mode (DESIGN.md §15) costs on top of
/// batch checking: the same workload run with retirement windows at
/// several cadences, normalized to the batch (window-txs = 0) run of the
/// same engine. Each boundary flushes the ICD work queue, drains the log
/// transport, forces in-flight PCD replays to completion, and runs a
/// retirement collection — so overhead scales with boundary frequency.
/// The interesting number for deployments is the cadence where overhead
/// flattens: that is how often a service can afford health snapshots and
/// bounded-lag retirement.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

using namespace dc;
using namespace dc::bench;
using namespace dc::core;

int main() {
  const double Scale = benchScale();
  const unsigned Trials = benchTrials();
  std::printf("Streaming-window overhead vs batch (scale %.2f)\n\n", Scale);

  const uint32_t Cadences[] = {16, 64, 256};
  TextTable Table;
  Table.setHeader({"benchmark", "engine", "batch-s", "win16", "win64",
                   "win256", "windows@16"});
  JsonRows Report;

  for (const std::string Name : {"tsp", "sor", "moldyn"}) {
    ir::Program P = workloads::build(Name, Scale);
    AtomicitySpec Spec = finalSpecFor(Name);
    for (Mode M : {Mode::SingleRun, Mode::VectorClock}) {
      RunConfig Cfg;
      Cfg.M = M;
      Cfg.RunOpts = perfRunOptions(3);
      TimedResult Batch = runTimed(P, Spec, Cfg, Trials);

      std::vector<double> Rel;
      uint64_t WindowsAtFinest = 0;
      for (uint32_t W : Cadences) {
        RunConfig WCfg = Cfg;
        WCfg.WindowTxs = W;
        TimedResult T = runTimed(P, Spec, WCfg, Trials);
        Rel.push_back(T.MedianSeconds / Batch.MedianSeconds);
        if (W == Cadences[0]) {
          const char *Stat = M == Mode::VectorClock
                                 ? "vc.windows_flushed"
                                 : "governor.windows_flushed";
          WindowsAtFinest = T.Outcome.stat(Stat);
        }
      }
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.3f", Batch.MedianSeconds);
      auto Fmt = [](double X) {
        char B[32];
        std::snprintf(B, sizeof(B), "%.2fx", X);
        return std::string(B);
      };
      Table.addRow({Name, toString(M), Buf, Fmt(Rel[0]), Fmt(Rel[1]),
                    Fmt(Rel[2]), std::to_string(WindowsAtFinest)});
      Report.beginRow();
      Report.add("benchmark", Name);
      Report.add("engine", toString(M));
      Report.add("batch_seconds", Batch.MedianSeconds);
      Report.add("rel_win16", Rel[0]);
      Report.add("rel_win64", Rel[1]);
      Report.add("rel_win256", Rel[2]);
      Report.add("windows_at_16", WindowsAtFinest);
    }
  }

  std::printf("%s\n", Table.render().c_str());
  Report.write("BENCH_streaming_window.json", "streaming_window");
  return 0;
}
