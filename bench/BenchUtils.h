//===- bench/BenchUtils.h - Shared harness helpers --------------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common machinery for the table/figure harnesses: timed runs with median-
/// of-N trials, geometric means, scale/trial environment knobs
/// (DC_BENCH_SCALE, DC_BENCH_TRIALS — handy for quick smoke runs), and the
/// per-workload final-specification cache (the paper's performance numbers
/// use specifications refined until no violations are reported, §5.1).
///
//===----------------------------------------------------------------------===//

#ifndef DC_BENCH_BENCHUTILS_H
#define DC_BENCH_BENCHUTILS_H

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/Checker.h"
#include "core/Refinement.h"
#include "support/StringUtils.h"
#include "workloads/Workloads.h"

namespace dc {
namespace bench {

/// Workload scale for performance harnesses (DC_BENCH_SCALE overrides).
inline double benchScale() {
  if (const char *Env = std::getenv("DC_BENCH_SCALE"))
    return std::atof(Env);
  return 1.0;
}

/// Trials per configuration (median reported; DC_BENCH_TRIALS overrides).
/// The paper used 25 trials; 3 keeps the whole suite's wall time sane.
inline unsigned benchTrials() {
  if (const char *Env = std::getenv("DC_BENCH_TRIALS"))
    return std::max(1, std::atoi(Env));
  return 3;
}

/// Free-running run options used by all performance harnesses: yielding
/// the (single-core) host every 1024 instructions stands in for truly
/// parallel execution so cross-thread transitions actually occur.
inline rt::RunOptions perfRunOptions(uint64_t Seed) {
  rt::RunOptions Opts;
  Opts.Deterministic = false;
  Opts.ScheduleSeed = Seed;
  Opts.PreemptEveryN = 1024;
  return Opts;
}

/// One timed configuration: median wall seconds over trials, plus the
/// outcome of the median trial (for statistics).
struct TimedResult {
  double MedianSeconds = 0;
  core::RunOutcome Outcome; ///< Outcome of the median-time trial.
};

inline TimedResult runTimed(const ir::Program &P,
                            const core::AtomicitySpec &Spec,
                            core::RunConfig Cfg, unsigned Trials) {
  std::vector<std::pair<double, core::RunOutcome>> Runs;
  Runs.reserve(Trials);
  for (unsigned T = 0; T < Trials; ++T) {
    Cfg.RunOpts.ScheduleSeed += T;
    core::RunOutcome O = core::runChecker(P, Spec, Cfg);
    Runs.emplace_back(O.Result.WallSeconds, std::move(O));
  }
  std::sort(Runs.begin(), Runs.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  TimedResult R;
  R.MedianSeconds = Runs[Runs.size() / 2].first;
  R.Outcome = std::move(Runs[Runs.size() / 2].second);
  return R;
}

inline double geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double LogSum = 0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

/// Minimal writer for BENCH_*.json artifacts: a top-level object with the
/// harness name and one "rows" array of flat objects. Enough structure for
/// machine-readable results without a JSON dependency.
class JsonRows {
public:
  void beginRow() { Rows.emplace_back(); }
  void add(const std::string &Key, uint64_t V) {
    Rows.back().emplace_back(Key, std::to_string(V));
  }
  void add(const std::string &Key, double V) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.6g", V);
    Rows.back().emplace_back(Key, Buf);
  }
  void add(const std::string &Key, const std::string &V) {
    Rows.back().emplace_back(Key, "\"" + V + "\"");
  }

  /// Writes {"bench": <name>, "rows": [...]} to \p Path; returns success.
  bool write(const std::string &Path, const std::string &Name) const {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (F == nullptr)
      return false;
    std::fprintf(F, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", Name.c_str());
    for (size_t R = 0; R < Rows.size(); ++R) {
      std::fprintf(F, "    {");
      for (size_t I = 0; I < Rows[R].size(); ++I)
        std::fprintf(F, "%s\"%s\": %s", I ? ", " : "", Rows[R][I].first.c_str(),
                     Rows[R][I].second.c_str());
      std::fprintf(F, "}%s\n", R + 1 < Rows.size() ? "," : "");
    }
    std::fprintf(F, "  ]\n}\n");
    std::fclose(F);
    return true;
  }

private:
  std::vector<std::vector<std::pair<std::string, std::string>>> Rows;
};

/// Derives the refined ("final") specification for \p Name the way §5.1
/// does: iterative refinement with the sound single-run checker, at a small
/// deterministic scale (method names transfer to any scale).
inline core::AtomicitySpec finalSpecFor(const std::string &Name) {
  ir::Program Small = workloads::build(Name, 0.08);
  core::RefinementOptions Opts;
  Opts.Checker = core::RefinementChecker::SingleRun;
  Opts.QuietTrials = 2;
  Opts.Deterministic = true;
  Opts.Seed = 0xf17a1 + std::hash<std::string>{}(Name);
  return core::iterativeRefinement(Small, Opts).FinalSpec;
}

} // namespace bench
} // namespace dc

#endif // DC_BENCH_BENCHUTILS_H
