//===- bench/scaling_threads.cpp - Sharded-IDG scaling sweep --------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Old-vs-new IDG hot path as thread count grows. The "old" configuration
/// is the SerializedIdg escape hatch (one global IDG lock, inline PCD and
/// collection — the pre-sharding behaviour); the "new" one is the default
/// sharded hot path with the multi-worker PCD pool and the background
/// collector.
///
/// The harness drives DoubleCheckerRuntime's hooks directly from one OS
/// thread, round-robining T logical threads one access at a time — the
/// finest possible interleaving, with none of the interpreter scheduler's
/// context-switch overhead, so the measurement isolates the checker hot
/// path itself. All logical threads are parked in the Octet blocked state,
/// so cross-thread conflicts resolve synchronously through the implicit
/// protocol. The workload is the paper's common shape: fifteen of every
/// sixteen transactions touch only thread-private fields (where the
/// sharded path never leaves its own stripe, while the global lock changes
/// holder at every transaction boundary and pays the calibrated
/// remote-miss penalty, DESIGN.md §2/§7); the sixteenth writes a random
/// shared object, forcing Octet conflicts and cross edges.
///
/// Expect the 1-thread row below 1.0x on a single-core host: the new
/// path's background collector and PCD workers cost real context switches
/// here, while on a multicore they would run on otherwise-idle cores. The
/// rows that matter are 2+ threads, where the old path's per-transaction
/// global-lock handoffs dominate. The vc columns run the same round-robin
/// workload through the vector-clock engine (DESIGN.md §14) — no Octet
/// protocol, no dependence graph, one engine lock — as the raw-speed
/// reference the sharded path is chasing. Also expect multi-thread rows below the
/// 1-thread row on such a host: the 1-thread row has no cross-thread
/// conflicts at all — no Octet coordination, no cross edges, no Tarjan
/// passes, no PCD replay — and with every checker thread multiplexed onto
/// one core that conflict analysis is pure added latency rather than
/// parallel work. The multi-thread rows should be compared against each
/// other and against their own history, not against the conflict-free
/// 1-thread row.
///
//===----------------------------------------------------------------------===//

#include <chrono>

#include "analysis/DoubleChecker.h"
#include "bench/BenchUtils.h"
#include "ir/Builder.h"
#include "support/Rng.h"
#include "vc/VectorClockChecker.h"

using namespace dc;
using namespace dc::bench;

namespace {

constexpr uint32_t SharedObjects = 16;
constexpr uint32_t AccessesPerTx = 3;
constexpr uint32_t SharedTxPeriod = 16; // 1 in 16 transactions is shared.

ir::Program benchProgram(uint32_t Threads) {
  ir::ProgramBuilder B("scaling");
  B.addPool("objs", SharedObjects + Threads, 2);
  B.beginMethod("txn", true).work(1).endMethod();
  ir::MethodId Main = B.beginMethod("main", false).work(1).endMethod();
  for (uint32_t T = 0; T < Threads; ++T)
    B.addThread(Main);
  return B.build();
}

struct SweepPoint {
  double Seconds = 0;
  double TxPerSec = 0;
  double EdgesPerSec = 0;
  uint64_t CrossEdges = 0;
  uint64_t Handoffs = 0;
  uint64_t Sccs = 0;
  // Incremental cycle detection (DESIGN.md §12): the default sharded path
  // maintains the topological order online, so scc_passes stays 0 and the
  // reorder count profiles how often a cross edge actually arrived
  // order-inconsistent.
  uint64_t IcdReorders = 0;
  uint64_t SccPasses = 0;
  // Contention on the detector's internal lock: how often a cross-edge
  // writer / retire actually blocked, and for how long in total. This is
  // the one serialization point the sharded design left in the cross-edge
  // path, so it is the first suspect when edges/s stops scaling.
  uint64_t IcdLockWaits = 0;
  uint64_t IcdLockWaitNs = 0;
  // Octet coordination profile (DESIGN.md §11). This harness keeps every
  // logical thread in the blocked state, so all conflicts resolve through
  // the implicit protocol: explicit roundtrips, spins, and parks should
  // stay zero — nonzero values here mean the workload changed shape.
  uint64_t Conflicting = 0;
  uint64_t ExplicitRoundtrips = 0;
  uint64_t ImplicitRoundtrips = 0;
  uint64_t WaitSpins = 0;
  uint64_t Parks = 0;
};

SweepPoint runOnce(const ir::Program &P, uint32_t Threads,
                   uint64_t TxPerThread, bool Serialized, bool LegacyLog) {
  StatisticRegistry Stats;
  analysis::ViolationLog Violations;
  analysis::DoubleCheckerOptions Opts;
  Opts.SerializedIdg = Serialized;
  Opts.LegacyLog = LegacyLog;
  Opts.ParallelPcd = !Serialized;
  Opts.PcdWorkers = 2;
  Opts.CollectEveryTx = 1024; // Keep the live graph (and Tarjan) small.
  // Bound the live graph (governor backpressure at tx boundaries). The
  // round-robin mutator never blocks, so on a host with fewer cores than
  // checker threads the background collector only runs when the OS
  // preempts the mutator — whether a row lands in the "collector keeps
  // up" or the "live graph snowballs" regime was scheduler lottery, and
  // dominated the row-to-row comparison. With the budget, every row and
  // configuration runs in the same bounded-live-graph regime.
  Opts.MaxLiveTxs = 8192;
  auto DC = std::make_unique<analysis::DoubleCheckerRuntime>(P, Opts,
                                                             Violations, Stats);
  rt::Runtime RT(P, DC.get());
  DC->beginRun(RT);

  const ir::Method &Txn = P.Methods[P.findMethod("txn")];
  std::vector<rt::ThreadContext> Tc(Threads);
  std::vector<SplitMix64> Rng;
  for (uint32_t T = 0; T < Threads; ++T) {
    Tc[T].Tid = T;
    Tc[T].RT = &RT;
    Tc[T].Checker = DC.get();
    DC->threadStarted(Tc[T]);
    DC->aboutToBlock(Tc[T]); // Implicit protocol: conflicts are synchronous.
    Rng.emplace_back(T * 9176 + 5);
  }

  const uint64_t StepsPerThread = TxPerThread * AccessesPerTx;
  auto Begin = std::chrono::steady_clock::now();
  for (uint64_t Step = 0; Step < StepsPerThread; ++Step) {
    for (uint32_t T = 0; T < Threads; ++T) {
      if (Step % AccessesPerTx == 0) {
        if (Step != 0)
          DC->txEnd(Tc[T], Txn);
        DC->txBegin(Tc[T], Txn);
      }
      const bool SharedTx =
          (Step / AccessesPerTx) % SharedTxPeriod == SharedTxPeriod - 1;
      rt::AccessInfo Info;
      // Shared transactions write one random shared object (write-only
      // sharing: ping-pongs WrEx ownership without RdSh upgrade storms);
      // everything else stays on the thread's own object.
      Info.Obj = SharedTx && Step % AccessesPerTx == 1
                     ? static_cast<rt::ObjectId>(
                           Rng[T].nextBelow(SharedObjects))
                     : static_cast<rt::ObjectId>(SharedObjects + T);
      Info.Addr = RT.heap().fieldAddr(Info.Obj, Rng[T].nextBelow(2));
      Info.IsWrite = SharedTx || Step % 2 == 1;
      Info.Flags = ir::IF_OctetBarrier | ir::IF_LogAccess;
      DC->instrumentedAccess(Tc[T], Info, [] {});
    }
  }
  for (uint32_t T = 0; T < Threads; ++T) {
    DC->txEnd(Tc[T], Txn);
    DC->unblocked(Tc[T]);
    DC->threadExiting(Tc[T]);
  }
  DC->endRun(RT); // Drains the PCD pool and the collector: deferred work
                  // stays inside the timed region for a fair comparison.
  auto End = std::chrono::steady_clock::now();

  SweepPoint Pt;
  Pt.Seconds = std::chrono::duration<double>(End - Begin).count();
  Pt.TxPerSec = static_cast<double>(Threads) * TxPerThread / Pt.Seconds;
  Pt.CrossEdges = Stats.value("icd.idg_cross_edges");
  Pt.EdgesPerSec = static_cast<double>(Pt.CrossEdges) / Pt.Seconds;
  Pt.Handoffs = Stats.value("icd.idg_lock_handoffs");
  Pt.Sccs = Stats.value("icd.sccs");
  Pt.IcdReorders = Stats.value("icd.reorders");
  Pt.SccPasses = Stats.value("icd.scc_passes");
  Pt.IcdLockWaits = Stats.value("icd.lock_waits");
  Pt.IcdLockWaitNs = Stats.value("icd.lock_wait_ns");
  Pt.Conflicting = Stats.value("octet.conflicting");
  Pt.ExplicitRoundtrips = Stats.value("octet.explicit_roundtrips");
  Pt.ImplicitRoundtrips = Stats.value("octet.implicit_roundtrips");
  Pt.WaitSpins = Stats.value("octet.wait_spins");
  Pt.Parks = Stats.value("octet.parks");
  return Pt;
}

/// Same round-robin driver against the vector-clock engine. No
/// aboutToBlock: the engine has no Octet protocol, so the blocked-state
/// parking is meaningless to it. Accesses carry IF_VelodromeBarrier — the
/// filter the vc (and Velodrome) instrumentation path selects on.
SweepPoint runOnceVc(const ir::Program &P, uint32_t Threads,
                     uint64_t TxPerThread) {
  StatisticRegistry Stats;
  analysis::ViolationLog Violations;
  vc::VectorClockOptions Opts;
  Opts.CollectEveryTx = 1024; // Match the DoubleChecker rows' cadence.
  auto VC = std::make_unique<vc::VectorClockRuntime>(P, Opts, Violations,
                                                     Stats);
  rt::Runtime RT(P, VC.get());
  VC->beginRun(RT);

  const ir::Method &Txn = P.Methods[P.findMethod("txn")];
  std::vector<rt::ThreadContext> Tc(Threads);
  std::vector<SplitMix64> Rng;
  for (uint32_t T = 0; T < Threads; ++T) {
    Tc[T].Tid = T;
    Tc[T].RT = &RT;
    Tc[T].Checker = VC.get();
    VC->threadStarted(Tc[T]);
    Rng.emplace_back(T * 9176 + 5);
  }

  const uint64_t StepsPerThread = TxPerThread * AccessesPerTx;
  auto Begin = std::chrono::steady_clock::now();
  for (uint64_t Step = 0; Step < StepsPerThread; ++Step) {
    for (uint32_t T = 0; T < Threads; ++T) {
      if (Step % AccessesPerTx == 0) {
        if (Step != 0)
          VC->txEnd(Tc[T], Txn);
        VC->txBegin(Tc[T], Txn);
      }
      const bool SharedTx =
          (Step / AccessesPerTx) % SharedTxPeriod == SharedTxPeriod - 1;
      rt::AccessInfo Info;
      Info.Obj = SharedTx && Step % AccessesPerTx == 1
                     ? static_cast<rt::ObjectId>(
                           Rng[T].nextBelow(SharedObjects))
                     : static_cast<rt::ObjectId>(SharedObjects + T);
      Info.Addr = RT.heap().fieldAddr(Info.Obj, Rng[T].nextBelow(2));
      Info.IsWrite = SharedTx || Step % 2 == 1;
      Info.Flags = ir::IF_VelodromeBarrier;
      VC->instrumentedAccess(Tc[T], Info, [] {});
    }
  }
  for (uint32_t T = 0; T < Threads; ++T) {
    VC->txEnd(Tc[T], Txn);
    VC->threadExiting(Tc[T]);
  }
  VC->endRun(RT);
  auto End = std::chrono::steady_clock::now();

  SweepPoint Pt;
  Pt.Seconds = std::chrono::duration<double>(End - Begin).count();
  Pt.TxPerSec = static_cast<double>(Threads) * TxPerThread / Pt.Seconds;
  Pt.CrossEdges = Stats.value("vc.cross_edges");
  Pt.EdgesPerSec = static_cast<double>(Pt.CrossEdges) / Pt.Seconds;
  return Pt;
}

SweepPoint median(std::vector<SweepPoint> Runs) {
  std::sort(Runs.begin(), Runs.end(),
            [](const SweepPoint &A, const SweepPoint &B) {
              return A.Seconds < B.Seconds;
            });
  return Runs[Runs.size() / 2];
}

} // namespace

int main(int argc, char **argv) {
  const char *OutPath = argc > 1 ? argv[1] : "BENCH_scaling.json";
  const double Scale = benchScale();
  const unsigned Trials = benchTrials();
  // Strong scaling: every row performs the same *total* transaction count,
  // split across its threads. With per-thread work fixed instead (the old
  // shape), the 1-thread row finished in ~25 ms — short enough that its
  // throughput was mostly scheduler lottery on this single-core host, and
  // row-to-row comparisons (is 4T above 1T?) flipped sign between runs.
  const uint64_t TotalTx =
      std::max<uint64_t>(8 * 512, static_cast<uint64_t>(200000 * Scale));
  std::printf("IDG scaling sweep: global lock (SerializedIdg) vs sharded "
              "hot path (scale %.2f, %llu total tx per row)\n\n",
              Scale, static_cast<unsigned long long>(TotalTx));

  TextTable Table;
  Table.setHeader({"threads", "old wall s", "legacy-log s", "new wall s",
                   "vc wall s", "old tx/s", "new tx/s", "vc tx/s",
                   "new edges/s", "conflicts", "icd reorders",
                   "icd lock waits", "scc passes", "speedup"});
  JsonRows Json;

  const std::vector<uint32_t> Rows = {1u, 2u, 4u, 8u};
  // Four configurations per row: the pre-sharding global lock, today's
  // sharded path with the legacy logging escape hatch (shared elision
  // cells + vector logs + LogRemoteMissPenalty), the full default
  // (sharded IDG + arena logging), and the vector-clock engine. The
  // legacy-log column attributes how much of the old-vs-new gap the
  // logging rework alone accounts for; the vc column is the graph-free
  // reference point.
  //
  // Trials are interleaved across every (row, configuration) combination
  // rather than run combination-by-combination: on a shared host, load
  // arrives in bursts, and back-to-back trials of one row sample only one
  // burst. Interleaving gives every row the same exposure to the host's
  // noise, which is what makes the row-vs-row comparison (is 4T above
  // 1T?) stable between recordings.
  struct Combo {
    uint32_t Threads;
    uint64_t TxPerThread;
    bool Serialized;
    bool LegacyLog;
    bool Vc;
    ir::Program P;
    std::vector<SweepPoint> Runs;
  };
  std::vector<Combo> Combos;
  for (uint32_t Threads : Rows) {
    const uint64_t TxPerThread =
        std::max<uint64_t>(SharedTxPeriod, TotalTx / Threads) /
        SharedTxPeriod * SharedTxPeriod;
    for (auto [Serialized, LegacyLog, Vc] :
         {std::tuple{true, true, false}, {false, true, false},
          {false, false, false}, {false, false, true}})
      Combos.push_back(Combo{Threads, TxPerThread, Serialized, LegacyLog, Vc,
                             benchProgram(Threads), {}});
  }
  for (unsigned R = 0; R < Trials; ++R)
    for (Combo &C : Combos)
      C.Runs.push_back(C.Vc ? runOnceVc(C.P, C.Threads, C.TxPerThread)
                            : runOnce(C.P, C.Threads, C.TxPerThread,
                                      C.Serialized, C.LegacyLog));

  for (size_t Row = 0; Row < Rows.size(); ++Row) {
    const uint32_t Threads = Rows[Row];
    const uint64_t TxPerThread = Combos[Row * 4].TxPerThread;
    SweepPoint Old = median(Combos[Row * 4].Runs);
    SweepPoint Leg = median(Combos[Row * 4 + 1].Runs);
    SweepPoint New = median(Combos[Row * 4 + 2].Runs);
    SweepPoint Vc = median(Combos[Row * 4 + 3].Runs);
    double Speedup = Old.Seconds / New.Seconds;
    Table.addRow({std::to_string(Threads), formatDouble(Old.Seconds, 3),
                  formatDouble(Leg.Seconds, 3), formatDouble(New.Seconds, 3),
                  formatDouble(Vc.Seconds, 3),
                  formatWithCommas(static_cast<uint64_t>(Old.TxPerSec)),
                  formatWithCommas(static_cast<uint64_t>(New.TxPerSec)),
                  formatWithCommas(static_cast<uint64_t>(Vc.TxPerSec)),
                  formatWithCommas(static_cast<uint64_t>(New.EdgesPerSec)),
                  formatWithCommas(New.Conflicting),
                  formatWithCommas(New.IcdReorders),
                  formatWithCommas(New.IcdLockWaits),
                  formatWithCommas(New.SccPasses),
                  formatDouble(Speedup, 2) + "x"});
    Json.beginRow();
    Json.add("threads", static_cast<uint64_t>(Threads));
    Json.add("tx_per_thread", TxPerThread);
    Json.add("serialized_wall_s", Old.Seconds);
    Json.add("sharded_legacylog_wall_s", Leg.Seconds);
    Json.add("sharded_wall_s", New.Seconds);
    Json.add("vc_wall_s", Vc.Seconds);
    Json.add("serialized_tx_per_s", Old.TxPerSec);
    Json.add("sharded_legacylog_tx_per_s", Leg.TxPerSec);
    Json.add("sharded_tx_per_s", New.TxPerSec);
    Json.add("vc_tx_per_s", Vc.TxPerSec);
    Json.add("vc_cross_edges", Vc.CrossEdges);
    Json.add("serialized_edges_per_s", Old.EdgesPerSec);
    Json.add("sharded_edges_per_s", New.EdgesPerSec);
    Json.add("serialized_lock_handoffs", Old.Handoffs);
    Json.add("sharded_lock_handoffs", New.Handoffs);
    Json.add("serialized_sccs", Old.Sccs);
    Json.add("sharded_sccs", New.Sccs);
    Json.add("serialized_icd_reorders", Old.IcdReorders);
    Json.add("sharded_icd_reorders", New.IcdReorders);
    Json.add("serialized_scc_passes", Old.SccPasses);
    Json.add("sharded_scc_passes", New.SccPasses);
    Json.add("serialized_icd_lock_waits", Old.IcdLockWaits);
    Json.add("sharded_icd_lock_waits", New.IcdLockWaits);
    Json.add("serialized_icd_lock_wait_ns", Old.IcdLockWaitNs);
    Json.add("sharded_icd_lock_wait_ns", New.IcdLockWaitNs);
    Json.add("serialized_octet_conflicting", Old.Conflicting);
    Json.add("sharded_octet_conflicting", New.Conflicting);
    Json.add("serialized_explicit_roundtrips", Old.ExplicitRoundtrips);
    Json.add("sharded_explicit_roundtrips", New.ExplicitRoundtrips);
    Json.add("serialized_implicit_roundtrips", Old.ImplicitRoundtrips);
    Json.add("sharded_implicit_roundtrips", New.ImplicitRoundtrips);
    Json.add("serialized_wait_spins", Old.WaitSpins);
    Json.add("sharded_wait_spins", New.WaitSpins);
    Json.add("serialized_parks", Old.Parks);
    Json.add("sharded_parks", New.Parks);
    Json.add("speedup", Speedup);
  }

  std::printf("%s\n", Table.render().c_str());
  std::printf("(speedup = serialized wall / sharded wall; legacy-log = "
              "sharded IDG with the LegacyLog escape hatch; vc = the "
              "graph-free vector-clock engine; identical total work per "
              "row)\n");
  if (Json.write(OutPath, "scaling_threads"))
    std::printf("wrote %s\n", OutPath);
  return 0;
}
