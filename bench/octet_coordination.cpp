//===- bench/octet_coordination.cpp - Octet roundtrip microbench ----------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serial vs. pipelined Octet coordination (DESIGN.md §11), measured on the
/// protocol's worst case: RdSh->WrEx, which needs a roundtrip with *every*
/// other thread. T real OS threads run a read/write ping-pong on one
/// object: the responders each read it (driving it through RdEx into RdSh),
/// then the requester writes it, paying one coordination with T-1 executing
/// responders. The seed protocol completes those roundtrips one at a time —
/// on this single-core host each one costs a full scheduler rotation before
/// the responder polls — while the pipelined protocol posts all T-1
/// requests up front and waits for them together, so the whole batch
/// resolves in roughly one rotation.
///
/// Reported per (threads, protocol): the requester-observed write latency
/// (median-of-trials mean over iterations), full-cycle throughput, and the
/// new octet.* coordination counters (roundtrips by path, spins, parks,
/// fan-out batch size). T=1 has no responders and serves as the
/// barrier-overhead floor; T=2 degenerates to a single RdEx->WrEx
/// roundtrip; the fan-out advantage is expected at T=4 and T=8.
///
//===----------------------------------------------------------------------===//

#include <atomic>
#include <chrono>
#include <thread>

#include "bench/BenchUtils.h"
#include "ir/Builder.h"
#include "octet/OctetManager.h"
#include "rt/Runtime.h"

using namespace dc;
using namespace dc::bench;

namespace {

ir::Program benchProgram(uint32_t Threads) {
  ir::ProgramBuilder B("octetbench");
  B.addPool("objs", 4, 1);
  ir::MethodId Main = B.beginMethod("main", false).work(1).endMethod();
  for (uint32_t T = 0; T < Threads; ++T)
    B.addThread(Main);
  return B.build();
}

struct Point {
  double Seconds = 0;      ///< Whole ping-pong loop.
  double WriteLatencyUs = 0; ///< Mean requester-observed write latency.
  double CyclesPerSec = 0;
  uint64_t ExplicitRoundtrips = 0;
  uint64_t ImplicitRoundtrips = 0;
  uint64_t WaitSpins = 0;
  uint64_t Parks = 0;
  double AvgBatch = 0; ///< Responders per fan-out batch (0 under serial).
};

Point runOnce(const ir::Program &P, uint32_t Threads, uint64_t Iters,
              bool Serial) {
  rt::Runtime RT(P, nullptr);
  StatisticRegistry Stats;
  octet::OctetManager Manager(RT.heap(), Threads, nullptr, Stats, nullptr,
                              Serial);

  std::atomic<uint64_t> Gen{0};      // Requester bumps; responders read once.
  std::atomic<uint64_t> ReadAcks{0}; // Total responder reads completed.
  std::atomic<bool> Stop{false};
  constexpr rt::ObjectId Obj = 0;

  std::vector<std::thread> Responders;
  for (uint32_t T = 1; T < Threads; ++T) {
    Responders.emplace_back([&, T] {
      rt::ThreadContext TC;
      TC.Tid = T;
      TC.RT = &RT;
      Manager.threadStarted(T);
      uint64_t Seen = 0;
      while (!Stop.load(std::memory_order_acquire)) {
        Manager.pollSafePoint(T);
        if (Seen < Gen.load(std::memory_order_acquire)) {
          Manager.readBarrier(TC, Obj);
          ++Seen;
          ReadAcks.fetch_add(1, std::memory_order_acq_rel);
        }
        std::this_thread::yield();
      }
      Manager.threadExited(T);
    });
  }

  rt::ThreadContext TC;
  TC.Tid = 0;
  TC.RT = &RT;
  Manager.threadStarted(0);

  std::chrono::steady_clock::duration InWrite{0};
  auto Begin = std::chrono::steady_clock::now();
  for (uint64_t I = 0; I < Iters; ++I) {
    // Read phase: every responder reads the object once (WrEx(0) -> RdEx ->
    // RdSh); the requester answers their roundtrips from its wait loop.
    Gen.fetch_add(1, std::memory_order_acq_rel);
    const uint64_t Want = (I + 1) * (Threads - 1);
    while (ReadAcks.load(std::memory_order_acquire) < Want) {
      Manager.pollSafePoint(0);
      std::this_thread::yield();
    }
    // Write phase: the timed coordination — RdSh->WrEx against every other
    // thread (RdEx->WrEx when there is a single responder).
    auto W0 = std::chrono::steady_clock::now();
    Manager.writeBarrier(TC, Obj);
    InWrite += std::chrono::steady_clock::now() - W0;
  }
  auto End = std::chrono::steady_clock::now();

  Stop.store(true, std::memory_order_release);
  Manager.threadExited(0);
  for (std::thread &R : Responders)
    R.join();
  Manager.flushStatistics();

  Point Pt;
  Pt.Seconds = std::chrono::duration<double>(End - Begin).count();
  Pt.WriteLatencyUs =
      std::chrono::duration<double, std::micro>(InWrite).count() /
      static_cast<double>(Iters);
  Pt.CyclesPerSec = static_cast<double>(Iters) / Pt.Seconds;
  Pt.ExplicitRoundtrips = Stats.value("octet.explicit_roundtrips");
  Pt.ImplicitRoundtrips = Stats.value("octet.implicit_roundtrips");
  Pt.WaitSpins = Stats.value("octet.wait_spins");
  Pt.Parks = Stats.value("octet.parks");
  uint64_t Batches = Stats.value("octet.fanout_batches");
  Pt.AvgBatch = Batches == 0 ? 0
                             : static_cast<double>(
                                   Stats.value("octet.fanout_responders")) /
                                   static_cast<double>(Batches);
  return Pt;
}

Point sweep(uint32_t Threads, uint64_t Iters, bool Serial, unsigned Trials) {
  ir::Program P = benchProgram(Threads);
  std::vector<Point> Runs;
  for (unsigned R = 0; R < Trials; ++R)
    Runs.push_back(runOnce(P, Threads, Iters, Serial));
  std::sort(Runs.begin(), Runs.end(), [](const Point &A, const Point &B) {
    return A.WriteLatencyUs < B.WriteLatencyUs;
  });
  return Runs[Runs.size() / 2];
}

} // namespace

int main(int argc, char **argv) {
  const char *OutPath = argc > 1 ? argv[1] : "BENCH_octet.json";
  const double Scale = benchScale();
  const unsigned Trials = benchTrials();
  const uint64_t Iters =
      std::max<uint64_t>(32, static_cast<uint64_t>(800 * Scale));
  std::printf("Octet coordination ping-pong: serial roundtrips vs pipelined "
              "fan-out (scale %.2f, %llu cycles)\n\n",
              Scale, static_cast<unsigned long long>(Iters));

  TextTable Table;
  Table.setHeader({"threads", "serial write us", "fanout write us", "speedup",
                   "serial cyc/s", "fanout cyc/s", "fanout parks",
                   "avg batch"});
  JsonRows Json;

  for (uint32_t Threads : {1u, 2u, 4u, 8u}) {
    Point Ser = sweep(Threads, Iters, /*Serial=*/true, Trials);
    Point Fan = sweep(Threads, Iters, /*Serial=*/false, Trials);
    double Speedup =
        Fan.WriteLatencyUs > 0 ? Ser.WriteLatencyUs / Fan.WriteLatencyUs : 1.0;
    Table.addRow({std::to_string(Threads), formatDouble(Ser.WriteLatencyUs, 1),
                  formatDouble(Fan.WriteLatencyUs, 1),
                  formatDouble(Speedup, 2) + "x",
                  formatWithCommas(static_cast<uint64_t>(Ser.CyclesPerSec)),
                  formatWithCommas(static_cast<uint64_t>(Fan.CyclesPerSec)),
                  formatWithCommas(Fan.Parks), formatDouble(Fan.AvgBatch, 2)});
    Json.beginRow();
    Json.add("threads", static_cast<uint64_t>(Threads));
    Json.add("cycles", Iters);
    Json.add("serial_write_us", Ser.WriteLatencyUs);
    Json.add("fanout_write_us", Fan.WriteLatencyUs);
    Json.add("write_latency_speedup", Speedup);
    Json.add("serial_cycles_per_s", Ser.CyclesPerSec);
    Json.add("fanout_cycles_per_s", Fan.CyclesPerSec);
    Json.add("serial_explicit_roundtrips", Ser.ExplicitRoundtrips);
    Json.add("fanout_explicit_roundtrips", Fan.ExplicitRoundtrips);
    Json.add("serial_implicit_roundtrips", Ser.ImplicitRoundtrips);
    Json.add("fanout_implicit_roundtrips", Fan.ImplicitRoundtrips);
    Json.add("serial_wait_spins", Ser.WaitSpins);
    Json.add("fanout_wait_spins", Fan.WaitSpins);
    Json.add("serial_parks", Ser.Parks);
    Json.add("fanout_parks", Fan.Parks);
    Json.add("fanout_avg_batch", Fan.AvgBatch);
  }

  std::printf("%s\n", Table.render().c_str());
  std::printf("(write us = requester-observed RdSh->WrEx coordination "
              "latency, mean over cycles, median of %u trials; speedup = "
              "serial / fanout)\n",
              Trials);
  if (Json.write(OutPath, "octet_coordination"))
    std::printf("wrote %s\n", OutPath);
  return 0;
}
