//===- bench/schedule_coverage.cpp - Scheduling-strategy coverage ---------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Schedule-coverage counter for the three scheduling strategies behind
/// RunOptions (random walk, PCT, bounded-exhaustive DFS): drive the same
/// corpus of generated fuzzer programs with an equal per-program run
/// budget under each strategy and count what the runs buy —
///
///  * distinct schedules (gate admission sequences) actually executed,
///  * runs whose recorded trace the ground-truth oracle proves
///    non-serializable (the events the fuzzer and the checkers hunt),
///  * distinct violating schedules.
///
/// The checked-in artifact shows the trade-offs: the exhaustive explorer
/// never repeats a schedule; the uniform walk preempts at every
/// instruction and so trips dense depth-2 races most often on these tiny
/// programs; PCT repeats priority orders (few distinct schedules) but is
/// the only strategy whose hit probability is *guaranteed*, which is what
/// the RdSh regression test leans on. Results go to a table on stdout and
/// a BENCH_schedule_coverage.json artifact.
///
/// Usage: schedule_coverage [output.json]  (default
/// BENCH_schedule_coverage.json; tools/ci.sh smoke-runs it at a tiny
/// DC_BENCH_SCALE with a throwaway output path).
///
//===----------------------------------------------------------------------===//

#include <chrono>
#include <set>
#include <string>
#include <vector>

#include "bench/BenchUtils.h"
#include "support/StringUtils.h"
#include "tools/FuzzLib.h"

using namespace dc;
using namespace dc::bench;

namespace {

struct Coverage {
  uint64_t Runs = 0;
  uint64_t ViolatingRuns = 0;
  std::set<std::vector<uint32_t>> Distinct;
  std::set<std::vector<uint32_t>> DistinctViolating;
  double Seconds = 0;
};

void account(Coverage &C, const ir::Program &P,
             const oracle::RecordedTrace &T) {
  ++C.Runs;
  C.Distinct.insert(T.Schedule);
  if (!oracle::decideSerializability(P, T).Serializable) {
    ++C.ViolatingRuns;
    C.DistinctViolating.insert(T.Schedule);
  }
}

rt::RunOptions baseOpts(uint64_t Seed) {
  rt::RunOptions RO;
  RO.Deterministic = true;
  RO.ScheduleSeed = Seed;
  RO.MaxSteps = 1ull << 20;
  return RO;
}

} // namespace

int main(int argc, char **argv) {
  const char *OutPath = argc > 1 ? argv[1] : "BENCH_schedule_coverage.json";
  const double Scale = benchScale();
  const uint64_t Programs = 6;
  const uint64_t RunsPerProgram =
      std::max<uint64_t>(12, static_cast<uint64_t>(96 * Scale));

  std::printf("schedule coverage: random vs pct vs exhaustive\n"
              "scale %.2f, %llu generated programs x %llu runs each\n\n",
              Scale, static_cast<unsigned long long>(Programs),
              static_cast<unsigned long long>(RunsPerProgram));

  Coverage Cov[3]; // random, pct, exhaustive
  const char *Names[3] = {"random", "pct", "exhaustive"};

  using Clock = std::chrono::steady_clock;
  for (uint64_t PI = 0; PI < Programs; ++PI) {
    fuzz::ProgSpec Spec = fuzz::randomSpec(1000 + PI);
    ir::Program P = Spec.build();
    core::AtomicitySpec AS = core::AtomicitySpec::initial(P);

    for (int S = 0; S < 2; ++S) { // Seeded strategies.
      auto T0 = Clock::now();
      for (uint64_t R = 0; R < RunsPerProgram; ++R) {
        rt::RunOptions RO = baseOpts(PI * 7919 + R);
        if (S == 1) {
          RO.Strategy = rt::ScheduleStrategy::Pct;
          RO.PctChangePoints = 3;
          RO.PctExpectedSteps = 128;
        }
        account(Cov[S], P, oracle::recordTrace(P, AS, RO));
      }
      Cov[S].Seconds += std::chrono::duration<double>(Clock::now() - T0).count();
    }

    {
      rt::ExhaustiveExplorer::Options ExOpts;
      ExOpts.PreemptionBound = 2;
      ExOpts.MaxRuns = RunsPerProgram;
      rt::ExhaustiveExplorer Ex(ExOpts);
      auto T0 = Clock::now();
      while (Ex.beginRun()) {
        rt::RunOptions RO = baseOpts(0);
        RO.CustomScheduler = &Ex;
        oracle::RecordedTrace T = oracle::recordTrace(P, AS, RO);
        Ex.endRun();
        account(Cov[2], P, T);
      }
      Cov[2].Seconds += std::chrono::duration<double>(Clock::now() - T0).count();
    }
  }

  TextTable Table;
  Table.setHeader({"strategy", "runs", "distinct", "violating",
                   "distinct viol", "viol/run", "runs/s"});
  JsonRows Json;
  for (int S = 0; S < 3; ++S) {
    const Coverage &C = Cov[S];
    const double ViolRate =
        C.Runs ? static_cast<double>(C.ViolatingRuns) / C.Runs : 0;
    Table.addRow({Names[S], std::to_string(C.Runs),
                  std::to_string(C.Distinct.size()),
                  std::to_string(C.ViolatingRuns),
                  std::to_string(C.DistinctViolating.size()),
                  formatDouble(ViolRate, 3),
                  formatWithCommas(static_cast<uint64_t>(
                      C.Seconds > 0 ? C.Runs / C.Seconds : 0))});
    Json.beginRow();
    Json.add("strategy", std::string(Names[S]));
    Json.add("programs", Programs);
    Json.add("runs", C.Runs);
    Json.add("distinct_schedules", static_cast<uint64_t>(C.Distinct.size()));
    Json.add("violating_runs", C.ViolatingRuns);
    Json.add("distinct_violating",
             static_cast<uint64_t>(C.DistinctViolating.size()));
    Json.add("violations_per_run", ViolRate);
    Json.add("wall_s", C.Seconds);
  }
  std::printf("%s\n", Table.render().c_str());
  if (!Json.write(OutPath, "schedule_coverage"))
    std::fprintf(stderr, "cannot write %s\n", OutPath);
  else
    std::printf("\nresults written to %s\n", OutPath);
  return 0;
}
