//===- bench/ablation_pcd_only.cpp - §5.4 PCD-only straw man --------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §5.4, third experiment: is ICD worth having as a first-pass filter? The
/// PCD-only variant feeds *every* transaction to the precise analysis. The
/// paper reports the slowdown growing from 3.1x to 16.6x (and out-of-
/// memory crashes on four benchmarks — our variant likewise disables the
/// transaction collector, so memory grows with the run; we report the
/// retained transaction count instead of crashing).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

using namespace dc;
using namespace dc::bench;
using namespace dc::core;

int main() {
  // PCD-only is deliberately expensive; run a reduced scale by default.
  double Scale = 0.4 * benchScale();
  const unsigned Trials = benchTrials();
  std::printf("PCD-only straw man vs single-run mode (scale %.2f)\n\n",
              Scale);

  TextTable Table;
  Table.setHeader({"benchmark", "single-run", "pcd-only", "pcd-only txs"});
  std::vector<double> GS, GP;

  for (const std::string Name :
       {"hsqldb6", "lusearch6", "montecarlo", "avrora9", "moldyn"}) {
    ir::Program P = workloads::build(Name, Scale);
    AtomicitySpec Spec = finalSpecFor(Name);

    RunConfig Base;
    Base.M = Mode::Unmodified;
    Base.RunOpts = perfRunOptions(1);
    double B = runTimed(P, Spec, Base, Trials).MedianSeconds;

    RunConfig SingleCfg;
    SingleCfg.M = Mode::SingleRun;
    SingleCfg.RunOpts = perfRunOptions(2);
    double S = runTimed(P, Spec, SingleCfg, Trials).MedianSeconds / B;

    RunConfig PcdCfg;
    PcdCfg.M = Mode::PcdOnly;
    PcdCfg.RunOpts = perfRunOptions(3);
    TimedResult Pcd = runTimed(P, Spec, PcdCfg, Trials);
    double PX = Pcd.MedianSeconds / B;

    GS.push_back(S);
    GP.push_back(PX);
    Table.addRow({Name, formatDouble(S, 2), formatDouble(PX, 2),
                  formatWithCommas(Pcd.Outcome.stat("pcdonly.txs_processed"))});
  }
  Table.addRow({"geomean", formatDouble(geomean(GS), 2),
                formatDouble(geomean(GP), 2), "-"});
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: 3.1x -> 16.6x without the ICD filter (and OOM on four "
              "benchmarks). Shape: PCD-only far above single-run.\n");
  return 0;
}
