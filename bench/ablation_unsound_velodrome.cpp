//===- bench/ablation_unsound_velodrome.cpp - §5.3 unsound variant --------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §5.3: the Velodrome variant that skips synchronization when a racy
/// pre-check says the metadata would not change. The paper measures 4.1x
/// (vs. 6.1x sound) and notes it can miss dependences — and that
/// DoubleChecker still outperforms it. We report both slowdowns and the
/// skip counts.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

using namespace dc;
using namespace dc::bench;
using namespace dc::core;

int main() {
  const double Scale = benchScale();
  const unsigned Trials = benchTrials();
  std::printf("Unsound Velodrome metadata fast path (scale %.2f)\n\n",
              Scale);

  TextTable Table;
  Table.setHeader({"benchmark", "velodrome", "unsound", "single-run",
                   "skips%"});
  std::vector<double> GV, GU, GS;

  for (const workloads::WorkloadInfo &W : workloads::all()) {
    if (!W.ComputeBound)
      continue;
    ir::Program P = W.Build(Scale);
    AtomicitySpec Spec = finalSpecFor(W.Name);

    RunConfig Base;
    Base.M = Mode::Unmodified;
    Base.RunOpts = perfRunOptions(1);
    double B = runTimed(P, Spec, Base, Trials).MedianSeconds;

    auto Slow = [&](Mode M) {
      RunConfig Cfg;
      Cfg.M = M;
      Cfg.RunOpts = perfRunOptions(2);
      return runTimed(P, Spec, Cfg, Trials);
    };
    TimedResult Velo = Slow(Mode::Velodrome);
    TimedResult Unsound = Slow(Mode::VelodromeUnsound);
    TimedResult Single = Slow(Mode::SingleRun);

    double V = Velo.MedianSeconds / B;
    double U = Unsound.MedianSeconds / B;
    double S = Single.MedianSeconds / B;
    double SkipPct =
        100.0 *
        static_cast<double>(Unsound.Outcome.stat(
            "velodrome.unsound_fast_skips")) /
        std::max<uint64_t>(1, Unsound.Outcome.stat("velodrome.accesses"));
    GV.push_back(V);
    GU.push_back(U);
    GS.push_back(S);
    Table.addRow({W.Name, formatDouble(V, 2), formatDouble(U, 2),
                  formatDouble(S, 2), formatDouble(SkipPct, 1)});
  }
  Table.addRow({"geomean", formatDouble(geomean(GV), 2),
                formatDouble(geomean(GU), 2), formatDouble(geomean(GS), 2),
                "-"});
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: sound 6.1x, unsound 4.1x, single-run 3.6x — the "
              "unsound variant lands between them.\n");
  return 0;
}
