//===- bench/cycle_detection.cpp - Incremental vs batched ICD sweep -------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tentpole microbench for incremental online cycle detection
/// (DESIGN.md §12): cross-edge insertion latency and end-to-end
/// transaction throughput, default incremental order maintenance vs. the
/// batched stop-the-world Tarjan escape hatch, at 1/4/8 threads, on a
/// cycle-free and a cycle-heavy edge stream.
///
/// Same harness as bench/scaling_threads: the hooks are driven directly
/// from one OS thread, round-robining T logical threads one access at a
/// time, all parked in the Octet blocked state so conflicts resolve
/// synchronously. Two shapes:
///
///  - *cycle-free*: a staged pipeline. Every fourth transaction performs
///    one shared operation, alternating by generation parity — even
///    generations each thread T writes its stage object T, odd
///    generations each thread T>0 reads its left neighbour's object T-1.
///    Within a generation every cross edge points the same way along the
///    thread index (writes reclaim from readers: down; reads: up), and
///    across generations only program order connects — so the IDG stays
///    acyclic by construction, and the whole run is pure order
///    maintenance. This is the paper's dominant regime (cycles are rare),
///    and the acceptance shape: the incremental detector pays O(1) per
///    consistent edge where batched mode keeps freezing every stripe for
///    Tarjan passes that find nothing.
///  - *cycle-heavy*: every fourth transaction read-modify-writes one of
///    two hot objects, ping-ponging ownership in both directions between
///    overlapping transactions — a dense stream of inconsistent edges,
///    region reorders, and real cycles. The adversarial regime: batched
///    mode amortizes many cycles into one pass, incremental pays a
///    bounded two-way search per back edge.
///
/// Latency is split at the two places the modes differ: the shared-slot
/// access (where the incremental detector runs its fast path or reorder
/// inline under the edge writer's stripes) and the transaction boundary
/// (where batched mode retires roots and, every SccBatch, freezes the
/// graph for a pass). Everything else — Octet, logging, PCD — is
/// identical between the two columns.
///
//===----------------------------------------------------------------------===//

#include <chrono>
#include <thread>

#include "analysis/DoubleChecker.h"
#include "analysis/IncrementalCycles.h"
#include "bench/BenchUtils.h"
#include "ir/Builder.h"
#include "support/Rng.h"

using namespace dc;
using namespace dc::bench;

namespace {

constexpr uint32_t AccessesPerTx = 3;
constexpr uint32_t SharedTxPeriod = 4; // 1 in 4 transactions is shared.
constexpr uint32_t HotObjects = 2;     // Cycle-heavy contention points.

enum class Shape { CycleFree, CycleHeavy };

ir::Program benchProgram(uint32_t Threads) {
  ir::ProgramBuilder B("cycle_detection");
  // Stage objects (one per thread) + hot objects + private objects.
  B.addPool("objs", Threads + HotObjects + Threads, 2);
  B.beginMethod("txn", true).work(1).endMethod();
  ir::MethodId Main = B.beginMethod("main", false).work(1).endMethod();
  for (uint32_t T = 0; T < Threads; ++T)
    B.addThread(Main);
  return B.build();
}

struct SweepPoint {
  double Seconds = 0;
  double TxPerSec = 0;
  double SharedNsAvg = 0; ///< Mean wall ns per shared-slot access.
  double TxEndNsAvg = 0;  ///< Mean wall ns per txEnd.
  uint64_t CrossEdges = 0;
  uint64_t IncEdges = 0;
  uint64_t Reorders = 0;
  uint64_t Sccs = 0;
  uint64_t SccPasses = 0;
  uint64_t CyclesIncremental = 0;
};

SweepPoint runOnce(const ir::Program &P, uint32_t Threads,
                   uint64_t TxPerThread, Shape S, bool Batched) {
  StatisticRegistry Stats;
  analysis::ViolationLog Violations;
  analysis::DoubleCheckerOptions Opts;
  Opts.BatchedScc = Batched;
  Opts.ParallelPcd = true;
  Opts.PcdWorkers = 2;
  Opts.CollectEveryTx = 1024;
  Opts.MaxLiveTxs = 8192; // Same bounded-live-graph regime for every row.
  // The calibrated remote-miss penalties stay at their defaults (as in
  // bench/scaling_threads): this round-robin harness multiplexes the
  // logical threads onto one OS thread, so the cost a full-graph freeze
  // inflicts — every stripe's next per-thread acquisition is a coherence
  // miss — only shows up through the model.
  auto DC = std::make_unique<analysis::DoubleCheckerRuntime>(P, Opts,
                                                             Violations, Stats);
  rt::Runtime RT(P, DC.get());
  DC->beginRun(RT);

  const ir::Method &Txn = P.Methods[P.findMethod("txn")];
  std::vector<rt::ThreadContext> Tc(Threads);
  std::vector<SplitMix64> Rng;
  for (uint32_t T = 0; T < Threads; ++T) {
    Tc[T].Tid = T;
    Tc[T].RT = &RT;
    Tc[T].Checker = DC.get();
    DC->threadStarted(Tc[T]);
    DC->aboutToBlock(Tc[T]); // Implicit protocol: conflicts are synchronous.
    Rng.emplace_back(T * 9176 + 5);
  }

  using Clock = std::chrono::steady_clock;
  uint64_t SharedNs = 0, SharedOps = 0, TxEndNs = 0, TxEnds = 0;
  const uint64_t StepsPerThread = TxPerThread * AccessesPerTx;
  auto Begin = Clock::now();
  for (uint64_t Step = 0; Step < StepsPerThread; ++Step) {
    const uint64_t Tx = Step / AccessesPerTx;
    const bool SharedTx = Tx % SharedTxPeriod == SharedTxPeriod - 1;
    const uint64_t Generation = Tx / SharedTxPeriod;
    for (uint32_t T = 0; T < Threads; ++T) {
      if (Step % AccessesPerTx == 0) {
        if (Step != 0) {
          auto T0 = Clock::now();
          DC->txEnd(Tc[T], Txn);
          TxEndNs += static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - T0)
                  .count());
          ++TxEnds;
        }
        DC->txBegin(Tc[T], Txn);
      }
      rt::AccessInfo Info;
      bool TimedShared = false;
      if (SharedTx && Step % AccessesPerTx == 1) {
        if (S == Shape::CycleFree) {
          // Staged pipeline: even generations write stage T, odd
          // generations read stage T-1. Thread 0 skips read generations
          // (no wraparound — the ring would close a cycle).
          const bool WriteGen = Generation % 2 == 0;
          if (!WriteGen && T == 0) {
            Info.Obj = static_cast<rt::ObjectId>(Threads + HotObjects + T);
            Info.IsWrite = true;
          } else {
            Info.Obj = static_cast<rt::ObjectId>(WriteGen ? T : T - 1);
            Info.IsWrite = WriteGen;
            TimedShared = true;
          }
        } else {
          // Ping-pong read-modify-write halves on two hot objects.
          Info.Obj =
              static_cast<rt::ObjectId>(Threads + Rng[T].nextBelow(HotObjects));
          Info.IsWrite = Generation % 2 == 1;
          TimedShared = true;
        }
      } else {
        Info.Obj = static_cast<rt::ObjectId>(Threads + HotObjects + T);
        Info.IsWrite = Step % 2 == 1;
      }
      Info.Addr = RT.heap().fieldAddr(Info.Obj, Rng[T].nextBelow(2));
      Info.Flags = ir::IF_OctetBarrier | ir::IF_LogAccess;
      if (TimedShared && Threads > 1) {
        auto T0 = Clock::now();
        DC->instrumentedAccess(Tc[T], Info, [] {});
        SharedNs += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 T0)
                .count());
        ++SharedOps;
      } else {
        DC->instrumentedAccess(Tc[T], Info, [] {});
      }
    }
  }
  for (uint32_t T = 0; T < Threads; ++T) {
    DC->txEnd(Tc[T], Txn);
    DC->unblocked(Tc[T]);
    DC->threadExiting(Tc[T]);
  }
  DC->endRun(RT); // Drain deferred detection inside the timed region.
  auto End = Clock::now();

  SweepPoint Pt;
  Pt.Seconds = std::chrono::duration<double>(End - Begin).count();
  Pt.TxPerSec = static_cast<double>(Threads) * TxPerThread / Pt.Seconds;
  Pt.SharedNsAvg =
      SharedOps ? static_cast<double>(SharedNs) / SharedOps : 0;
  Pt.TxEndNsAvg = TxEnds ? static_cast<double>(TxEndNs) / TxEnds : 0;
  Pt.CrossEdges = Stats.value("icd.idg_cross_edges");
  Pt.IncEdges = Stats.value("icd.inc_edges");
  Pt.Reorders = Stats.value("icd.reorders");
  Pt.Sccs = Stats.value("icd.sccs");
  Pt.SccPasses = Stats.value("icd.scc_passes");
  Pt.CyclesIncremental = Stats.value("icd.cycles_incremental");
  return Pt;
}

SweepPoint median(std::vector<SweepPoint> Runs) {
  std::sort(Runs.begin(), Runs.end(),
            [](const SweepPoint &A, const SweepPoint &B) {
              return A.Seconds < B.Seconds;
            });
  return Runs[Runs.size() / 2];
}

const char *shapeName(Shape S) {
  return S == Shape::CycleFree ? "cycle-free" : "cycle-heavy";
}

//===----------------------------------------------------------------------===//
// Contention isolation: real OS threads on the raw detector
//===----------------------------------------------------------------------===//
//
// The sweep above multiplexes logical threads onto one OS thread, so it
// can never show detector-lock *contention* — only per-edge work. This
// section hammers IncrementalCycleDetector::addEdge directly from real
// concurrent threads with an all-consistent cross-edge stream (every node
// pre-created in key order, every edge pointing up the order): zero
// reorders, so every lock wait is pure fast-path serialization. The
// lock-free default is compared against the --icd-locked-fastpath partner
// (the pre-seqlock behaviour, every edge under Mu), and each row records
// icd.lock_waits / icd.seqlock_retries / icd.fastpath_lockfree — the
// structural claim is lock_waits == 0 for the lock-free column.

struct ContentionPoint {
  double Seconds = 0;
  double EdgesPerSec = 0;
  uint64_t LockWaits = 0;
  uint64_t LockWaitNs = 0;
  uint64_t SeqRetries = 0;
  uint64_t FastpathLockfree = 0;
};

ContentionPoint runContention(uint32_t Threads, uint64_t TotalEdges,
                              bool Locked) {
  using analysis::IncrementalCycleDetector;
  using analysis::Transaction;
  IncrementalCycleDetector::Options O;
  O.LockedFastPath = Locked;
  IncrementalCycleDetector D(O);

  constexpr uint32_t Universe = 4096;
  std::vector<std::unique_ptr<Transaction>> Owned;
  Owned.reserve(Universe);
  std::vector<Transaction *> Nodes;
  Nodes.reserve(Universe);
  for (uint32_t I = 0; I < Universe; ++I) {
    Owned.push_back(std::make_unique<Transaction>(I + 1, I % Threads, I + 1,
                                                  0, /*Regular=*/true));
    D.addNode(Owned.back().get());
    Nodes.push_back(Owned.back().get());
  }

  const uint64_t EdgesPerThread = std::max<uint64_t>(1, TotalEdges / Threads);
  std::atomic<uint32_t> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Workers;
  using Clock = std::chrono::steady_clock;
  for (uint32_t T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      SplitMix64 Rng(T * 6271 + 13);
      Ready.fetch_add(1);
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      for (uint64_t E = 0; E < EdgesPerThread; ++E) {
        const uint32_t I = Rng.nextBelow(Universe - 1);
        const uint32_t J = I + 1 + Rng.nextBelow(Universe - I - 1);
        IncrementalCycleDetector::ClaimList Claims;
        D.addEdge(Nodes[I], Nodes[J], Claims); // Always key-consistent.
      }
    });
  }
  while (Ready.load() < Threads)
    std::this_thread::yield();
  const auto Begin = Clock::now();
  Go.store(true, std::memory_order_release);
  for (std::thread &W : Workers)
    W.join();
  const auto End = Clock::now();

  StatisticRegistry Stats;
  D.flushStats(Stats);
  ContentionPoint Pt;
  Pt.Seconds = std::chrono::duration<double>(End - Begin).count();
  Pt.EdgesPerSec =
      static_cast<double>(EdgesPerThread) * Threads / Pt.Seconds;
  Pt.LockWaits = Stats.value("icd.lock_waits");
  Pt.LockWaitNs = Stats.value("icd.lock_wait_ns");
  Pt.SeqRetries = Stats.value("icd.seqlock_retries");
  Pt.FastpathLockfree = Stats.value("icd.fastpath_lockfree");
  return Pt;
}

ContentionPoint medianContention(std::vector<ContentionPoint> Runs) {
  std::sort(Runs.begin(), Runs.end(),
            [](const ContentionPoint &A, const ContentionPoint &B) {
              return A.Seconds < B.Seconds;
            });
  return Runs[Runs.size() / 2];
}

} // namespace

int main(int argc, char **argv) {
  const char *OutPath = argc > 1 ? argv[1] : "BENCH_icd.json";
  const double Scale = benchScale();
  const unsigned Trials = benchTrials();
  // Strong scaling (same rationale as bench/scaling_threads): each row
  // performs the same total transaction count split across its threads.
  const uint64_t TotalTx =
      std::max<uint64_t>(8 * 256, static_cast<uint64_t>(120000 * Scale));
  std::printf("Cycle detection sweep: incremental order maintenance vs "
              "batched Tarjan (scale %.2f, %llu total tx per row)\n\n",
              Scale, static_cast<unsigned long long>(TotalTx));

  TextTable Table;
  Table.setHeader({"threads", "shape", "inc tx/s", "bat tx/s", "inc edge ns",
                   "bat edge ns", "inc txend ns", "bat txend ns", "passes",
                   "cycles", "speedup"});
  JsonRows Json;

  struct Combo {
    uint32_t Threads;
    uint64_t TxPerThread;
    Shape S;
    bool Batched;
    ir::Program P;
    std::vector<SweepPoint> Runs;
  };
  std::vector<Combo> Combos;
  const std::vector<uint32_t> Rows = {1u, 4u, 8u};
  for (uint32_t Threads : Rows) {
    const uint64_t TxPerThread =
        std::max<uint64_t>(2 * SharedTxPeriod, TotalTx / Threads) /
        SharedTxPeriod * SharedTxPeriod;
    for (Shape S : {Shape::CycleFree, Shape::CycleHeavy})
      for (bool Batched : {false, true})
        Combos.push_back(
            Combo{Threads, TxPerThread, S, Batched, benchProgram(Threads), {}});
  }
  // Interleave trials across combos so every row sees the same host noise
  // (the comparison is inc-vs-bat within a row, not row-vs-row).
  for (unsigned R = 0; R < Trials; ++R)
    for (Combo &C : Combos)
      C.Runs.push_back(runOnce(C.P, C.Threads, C.TxPerThread, C.S, C.Batched));

  for (size_t I = 0; I + 1 < Combos.size(); I += 2) {
    Combo &IncC = Combos[I], &BatC = Combos[I + 1];
    SweepPoint Inc = median(IncC.Runs);
    SweepPoint Bat = median(BatC.Runs);
    const double Speedup = Bat.Seconds / Inc.Seconds;
    Table.addRow({std::to_string(IncC.Threads), shapeName(IncC.S),
                  formatWithCommas(static_cast<uint64_t>(Inc.TxPerSec)),
                  formatWithCommas(static_cast<uint64_t>(Bat.TxPerSec)),
                  formatDouble(Inc.SharedNsAvg, 0),
                  formatDouble(Bat.SharedNsAvg, 0),
                  formatDouble(Inc.TxEndNsAvg, 0),
                  formatDouble(Bat.TxEndNsAvg, 0),
                  formatWithCommas(Bat.SccPasses),
                  formatWithCommas(Inc.CyclesIncremental),
                  formatDouble(Speedup, 2) + "x"});
    Json.beginRow();
    Json.add("threads", static_cast<uint64_t>(IncC.Threads));
    Json.add("shape", std::string(shapeName(IncC.S)));
    Json.add("tx_per_thread", IncC.TxPerThread);
    Json.add("incremental_wall_s", Inc.Seconds);
    Json.add("batched_wall_s", Bat.Seconds);
    Json.add("incremental_tx_per_s", Inc.TxPerSec);
    Json.add("batched_tx_per_s", Bat.TxPerSec);
    Json.add("incremental_shared_access_ns", Inc.SharedNsAvg);
    Json.add("batched_shared_access_ns", Bat.SharedNsAvg);
    Json.add("incremental_txend_ns", Inc.TxEndNsAvg);
    Json.add("batched_txend_ns", Bat.TxEndNsAvg);
    Json.add("incremental_cross_edges", Inc.CrossEdges);
    Json.add("batched_cross_edges", Bat.CrossEdges);
    Json.add("incremental_inc_edges", Inc.IncEdges);
    Json.add("incremental_reorders", Inc.Reorders);
    Json.add("incremental_sccs", Inc.Sccs);
    Json.add("batched_sccs", Bat.Sccs);
    Json.add("incremental_scc_passes", Inc.SccPasses);
    Json.add("batched_scc_passes", Bat.SccPasses);
    Json.add("incremental_cycles", Inc.CyclesIncremental);
    Json.add("speedup", Speedup);
  }

  std::printf("%s\n", Table.render().c_str());
  std::printf("(speedup = batched wall / incremental wall; edge ns = mean "
              "shared-slot access, txend ns = mean transaction boundary — "
              "batched pays its stop-the-world passes there)\n");

  // Contention isolation: real OS threads, all-consistent edges, lock-free
  // default vs the locked-fast-path partner (see the section comment).
  const uint64_t ContentionEdges =
      std::max<uint64_t>(20000, static_cast<uint64_t>(240000 * Scale));
  std::printf("Fast-path contention isolation (real OS threads, "
              "all-consistent cross edges, %llu edges per row)\n\n",
              static_cast<unsigned long long>(ContentionEdges));
  TextTable CTable;
  CTable.setHeader({"threads", "lf edges/s", "locked edges/s", "lf waits",
                    "locked waits", "lf retries", "lf lockfree", "speedup"});
  struct ContCombo {
    uint32_t Threads;
    bool Locked;
    std::vector<ContentionPoint> Runs;
  };
  std::vector<ContCombo> CCombos;
  for (uint32_t Threads : {4u, 8u, 16u})
    for (bool Locked : {false, true})
      CCombos.push_back(ContCombo{Threads, Locked, {}});
  for (unsigned R = 0; R < Trials; ++R)
    for (ContCombo &C : CCombos)
      C.Runs.push_back(runContention(C.Threads, ContentionEdges, C.Locked));
  for (size_t I = 0; I + 1 < CCombos.size(); I += 2) {
    ContentionPoint Lf = medianContention(CCombos[I].Runs);
    ContentionPoint Lk = medianContention(CCombos[I + 1].Runs);
    const double Speedup = Lk.Seconds / Lf.Seconds;
    CTable.addRow({std::to_string(CCombos[I].Threads),
                   formatWithCommas(static_cast<uint64_t>(Lf.EdgesPerSec)),
                   formatWithCommas(static_cast<uint64_t>(Lk.EdgesPerSec)),
                   formatWithCommas(Lf.LockWaits),
                   formatWithCommas(Lk.LockWaits),
                   formatWithCommas(Lf.SeqRetries),
                   formatWithCommas(Lf.FastpathLockfree),
                   formatDouble(Speedup, 2) + "x"});
    Json.beginRow();
    Json.add("threads", static_cast<uint64_t>(CCombos[I].Threads));
    Json.add("shape", std::string("contention"));
    Json.add("edges", ContentionEdges);
    Json.add("lockfree_wall_s", Lf.Seconds);
    Json.add("locked_wall_s", Lk.Seconds);
    Json.add("lockfree_edges_per_s", Lf.EdgesPerSec);
    Json.add("locked_edges_per_s", Lk.EdgesPerSec);
    Json.add("lockfree_lock_waits", Lf.LockWaits);
    Json.add("locked_lock_waits", Lk.LockWaits);
    Json.add("lockfree_lock_wait_ns", Lf.LockWaitNs);
    Json.add("locked_lock_wait_ns", Lk.LockWaitNs);
    Json.add("lockfree_seqlock_retries", Lf.SeqRetries);
    Json.add("lockfree_fastpath_lockfree", Lf.FastpathLockfree);
    Json.add("locked_fastpath_lockfree", Lk.FastpathLockfree);
    Json.add("speedup", Speedup);
  }
  std::printf("%s\n", CTable.render().c_str());
  std::printf("(lf = lock-free default, locked = --icd-locked-fastpath "
              "partner; waits are contended detector-lock acquisitions — "
              "structurally 0 for the lock-free column on this "
              "reorder-free stream)\n");

  if (Json.write(OutPath, "cycle_detection"))
    std::printf("wrote %s\n", OutPath);
  return 0;
}
