//===- bench/cycle_detection.cpp - Incremental vs batched ICD sweep -------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tentpole microbench for incremental online cycle detection
/// (DESIGN.md §12): cross-edge insertion latency and end-to-end
/// transaction throughput, default incremental order maintenance vs. the
/// batched stop-the-world Tarjan escape hatch, at 1/4/8 threads, on a
/// cycle-free and a cycle-heavy edge stream.
///
/// Same harness as bench/scaling_threads: the hooks are driven directly
/// from one OS thread, round-robining T logical threads one access at a
/// time, all parked in the Octet blocked state so conflicts resolve
/// synchronously. Two shapes:
///
///  - *cycle-free*: a staged pipeline. Every fourth transaction performs
///    one shared operation, alternating by generation parity — even
///    generations each thread T writes its stage object T, odd
///    generations each thread T>0 reads its left neighbour's object T-1.
///    Within a generation every cross edge points the same way along the
///    thread index (writes reclaim from readers: down; reads: up), and
///    across generations only program order connects — so the IDG stays
///    acyclic by construction, and the whole run is pure order
///    maintenance. This is the paper's dominant regime (cycles are rare),
///    and the acceptance shape: the incremental detector pays O(1) per
///    consistent edge where batched mode keeps freezing every stripe for
///    Tarjan passes that find nothing.
///  - *cycle-heavy*: every fourth transaction read-modify-writes one of
///    two hot objects, ping-ponging ownership in both directions between
///    overlapping transactions — a dense stream of inconsistent edges,
///    region reorders, and real cycles. The adversarial regime: batched
///    mode amortizes many cycles into one pass, incremental pays a
///    bounded two-way search per back edge.
///
/// Latency is split at the two places the modes differ: the shared-slot
/// access (where the incremental detector runs its fast path or reorder
/// inline under the edge writer's stripes) and the transaction boundary
/// (where batched mode retires roots and, every SccBatch, freezes the
/// graph for a pass). Everything else — Octet, logging, PCD — is
/// identical between the two columns.
///
//===----------------------------------------------------------------------===//

#include <chrono>

#include "analysis/DoubleChecker.h"
#include "bench/BenchUtils.h"
#include "ir/Builder.h"
#include "support/Rng.h"

using namespace dc;
using namespace dc::bench;

namespace {

constexpr uint32_t AccessesPerTx = 3;
constexpr uint32_t SharedTxPeriod = 4; // 1 in 4 transactions is shared.
constexpr uint32_t HotObjects = 2;     // Cycle-heavy contention points.

enum class Shape { CycleFree, CycleHeavy };

ir::Program benchProgram(uint32_t Threads) {
  ir::ProgramBuilder B("cycle_detection");
  // Stage objects (one per thread) + hot objects + private objects.
  B.addPool("objs", Threads + HotObjects + Threads, 2);
  B.beginMethod("txn", true).work(1).endMethod();
  ir::MethodId Main = B.beginMethod("main", false).work(1).endMethod();
  for (uint32_t T = 0; T < Threads; ++T)
    B.addThread(Main);
  return B.build();
}

struct SweepPoint {
  double Seconds = 0;
  double TxPerSec = 0;
  double SharedNsAvg = 0; ///< Mean wall ns per shared-slot access.
  double TxEndNsAvg = 0;  ///< Mean wall ns per txEnd.
  uint64_t CrossEdges = 0;
  uint64_t IncEdges = 0;
  uint64_t Reorders = 0;
  uint64_t Sccs = 0;
  uint64_t SccPasses = 0;
  uint64_t CyclesIncremental = 0;
};

SweepPoint runOnce(const ir::Program &P, uint32_t Threads,
                   uint64_t TxPerThread, Shape S, bool Batched) {
  StatisticRegistry Stats;
  analysis::ViolationLog Violations;
  analysis::DoubleCheckerOptions Opts;
  Opts.BatchedScc = Batched;
  Opts.ParallelPcd = true;
  Opts.PcdWorkers = 2;
  Opts.CollectEveryTx = 1024;
  Opts.MaxLiveTxs = 8192; // Same bounded-live-graph regime for every row.
  // The calibrated remote-miss penalties stay at their defaults (as in
  // bench/scaling_threads): this round-robin harness multiplexes the
  // logical threads onto one OS thread, so the cost a full-graph freeze
  // inflicts — every stripe's next per-thread acquisition is a coherence
  // miss — only shows up through the model.
  auto DC = std::make_unique<analysis::DoubleCheckerRuntime>(P, Opts,
                                                             Violations, Stats);
  rt::Runtime RT(P, DC.get());
  DC->beginRun(RT);

  const ir::Method &Txn = P.Methods[P.findMethod("txn")];
  std::vector<rt::ThreadContext> Tc(Threads);
  std::vector<SplitMix64> Rng;
  for (uint32_t T = 0; T < Threads; ++T) {
    Tc[T].Tid = T;
    Tc[T].RT = &RT;
    Tc[T].Checker = DC.get();
    DC->threadStarted(Tc[T]);
    DC->aboutToBlock(Tc[T]); // Implicit protocol: conflicts are synchronous.
    Rng.emplace_back(T * 9176 + 5);
  }

  using Clock = std::chrono::steady_clock;
  uint64_t SharedNs = 0, SharedOps = 0, TxEndNs = 0, TxEnds = 0;
  const uint64_t StepsPerThread = TxPerThread * AccessesPerTx;
  auto Begin = Clock::now();
  for (uint64_t Step = 0; Step < StepsPerThread; ++Step) {
    const uint64_t Tx = Step / AccessesPerTx;
    const bool SharedTx = Tx % SharedTxPeriod == SharedTxPeriod - 1;
    const uint64_t Generation = Tx / SharedTxPeriod;
    for (uint32_t T = 0; T < Threads; ++T) {
      if (Step % AccessesPerTx == 0) {
        if (Step != 0) {
          auto T0 = Clock::now();
          DC->txEnd(Tc[T], Txn);
          TxEndNs += static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - T0)
                  .count());
          ++TxEnds;
        }
        DC->txBegin(Tc[T], Txn);
      }
      rt::AccessInfo Info;
      bool TimedShared = false;
      if (SharedTx && Step % AccessesPerTx == 1) {
        if (S == Shape::CycleFree) {
          // Staged pipeline: even generations write stage T, odd
          // generations read stage T-1. Thread 0 skips read generations
          // (no wraparound — the ring would close a cycle).
          const bool WriteGen = Generation % 2 == 0;
          if (!WriteGen && T == 0) {
            Info.Obj = static_cast<rt::ObjectId>(Threads + HotObjects + T);
            Info.IsWrite = true;
          } else {
            Info.Obj = static_cast<rt::ObjectId>(WriteGen ? T : T - 1);
            Info.IsWrite = WriteGen;
            TimedShared = true;
          }
        } else {
          // Ping-pong read-modify-write halves on two hot objects.
          Info.Obj =
              static_cast<rt::ObjectId>(Threads + Rng[T].nextBelow(HotObjects));
          Info.IsWrite = Generation % 2 == 1;
          TimedShared = true;
        }
      } else {
        Info.Obj = static_cast<rt::ObjectId>(Threads + HotObjects + T);
        Info.IsWrite = Step % 2 == 1;
      }
      Info.Addr = RT.heap().fieldAddr(Info.Obj, Rng[T].nextBelow(2));
      Info.Flags = ir::IF_OctetBarrier | ir::IF_LogAccess;
      if (TimedShared && Threads > 1) {
        auto T0 = Clock::now();
        DC->instrumentedAccess(Tc[T], Info, [] {});
        SharedNs += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 T0)
                .count());
        ++SharedOps;
      } else {
        DC->instrumentedAccess(Tc[T], Info, [] {});
      }
    }
  }
  for (uint32_t T = 0; T < Threads; ++T) {
    DC->txEnd(Tc[T], Txn);
    DC->unblocked(Tc[T]);
    DC->threadExiting(Tc[T]);
  }
  DC->endRun(RT); // Drain deferred detection inside the timed region.
  auto End = Clock::now();

  SweepPoint Pt;
  Pt.Seconds = std::chrono::duration<double>(End - Begin).count();
  Pt.TxPerSec = static_cast<double>(Threads) * TxPerThread / Pt.Seconds;
  Pt.SharedNsAvg =
      SharedOps ? static_cast<double>(SharedNs) / SharedOps : 0;
  Pt.TxEndNsAvg = TxEnds ? static_cast<double>(TxEndNs) / TxEnds : 0;
  Pt.CrossEdges = Stats.value("icd.idg_cross_edges");
  Pt.IncEdges = Stats.value("icd.inc_edges");
  Pt.Reorders = Stats.value("icd.reorders");
  Pt.Sccs = Stats.value("icd.sccs");
  Pt.SccPasses = Stats.value("icd.scc_passes");
  Pt.CyclesIncremental = Stats.value("icd.cycles_incremental");
  return Pt;
}

SweepPoint median(std::vector<SweepPoint> Runs) {
  std::sort(Runs.begin(), Runs.end(),
            [](const SweepPoint &A, const SweepPoint &B) {
              return A.Seconds < B.Seconds;
            });
  return Runs[Runs.size() / 2];
}

const char *shapeName(Shape S) {
  return S == Shape::CycleFree ? "cycle-free" : "cycle-heavy";
}

} // namespace

int main(int argc, char **argv) {
  const char *OutPath = argc > 1 ? argv[1] : "BENCH_icd.json";
  const double Scale = benchScale();
  const unsigned Trials = benchTrials();
  // Strong scaling (same rationale as bench/scaling_threads): each row
  // performs the same total transaction count split across its threads.
  const uint64_t TotalTx =
      std::max<uint64_t>(8 * 256, static_cast<uint64_t>(120000 * Scale));
  std::printf("Cycle detection sweep: incremental order maintenance vs "
              "batched Tarjan (scale %.2f, %llu total tx per row)\n\n",
              Scale, static_cast<unsigned long long>(TotalTx));

  TextTable Table;
  Table.setHeader({"threads", "shape", "inc tx/s", "bat tx/s", "inc edge ns",
                   "bat edge ns", "inc txend ns", "bat txend ns", "passes",
                   "cycles", "speedup"});
  JsonRows Json;

  struct Combo {
    uint32_t Threads;
    uint64_t TxPerThread;
    Shape S;
    bool Batched;
    ir::Program P;
    std::vector<SweepPoint> Runs;
  };
  std::vector<Combo> Combos;
  const std::vector<uint32_t> Rows = {1u, 4u, 8u};
  for (uint32_t Threads : Rows) {
    const uint64_t TxPerThread =
        std::max<uint64_t>(2 * SharedTxPeriod, TotalTx / Threads) /
        SharedTxPeriod * SharedTxPeriod;
    for (Shape S : {Shape::CycleFree, Shape::CycleHeavy})
      for (bool Batched : {false, true})
        Combos.push_back(
            Combo{Threads, TxPerThread, S, Batched, benchProgram(Threads), {}});
  }
  // Interleave trials across combos so every row sees the same host noise
  // (the comparison is inc-vs-bat within a row, not row-vs-row).
  for (unsigned R = 0; R < Trials; ++R)
    for (Combo &C : Combos)
      C.Runs.push_back(runOnce(C.P, C.Threads, C.TxPerThread, C.S, C.Batched));

  for (size_t I = 0; I + 1 < Combos.size(); I += 2) {
    Combo &IncC = Combos[I], &BatC = Combos[I + 1];
    SweepPoint Inc = median(IncC.Runs);
    SweepPoint Bat = median(BatC.Runs);
    const double Speedup = Bat.Seconds / Inc.Seconds;
    Table.addRow({std::to_string(IncC.Threads), shapeName(IncC.S),
                  formatWithCommas(static_cast<uint64_t>(Inc.TxPerSec)),
                  formatWithCommas(static_cast<uint64_t>(Bat.TxPerSec)),
                  formatDouble(Inc.SharedNsAvg, 0),
                  formatDouble(Bat.SharedNsAvg, 0),
                  formatDouble(Inc.TxEndNsAvg, 0),
                  formatDouble(Bat.TxEndNsAvg, 0),
                  formatWithCommas(Bat.SccPasses),
                  formatWithCommas(Inc.CyclesIncremental),
                  formatDouble(Speedup, 2) + "x"});
    Json.beginRow();
    Json.add("threads", static_cast<uint64_t>(IncC.Threads));
    Json.add("shape", std::string(shapeName(IncC.S)));
    Json.add("tx_per_thread", IncC.TxPerThread);
    Json.add("incremental_wall_s", Inc.Seconds);
    Json.add("batched_wall_s", Bat.Seconds);
    Json.add("incremental_tx_per_s", Inc.TxPerSec);
    Json.add("batched_tx_per_s", Bat.TxPerSec);
    Json.add("incremental_shared_access_ns", Inc.SharedNsAvg);
    Json.add("batched_shared_access_ns", Bat.SharedNsAvg);
    Json.add("incremental_txend_ns", Inc.TxEndNsAvg);
    Json.add("batched_txend_ns", Bat.TxEndNsAvg);
    Json.add("incremental_cross_edges", Inc.CrossEdges);
    Json.add("batched_cross_edges", Bat.CrossEdges);
    Json.add("incremental_inc_edges", Inc.IncEdges);
    Json.add("incremental_reorders", Inc.Reorders);
    Json.add("incremental_sccs", Inc.Sccs);
    Json.add("batched_sccs", Bat.Sccs);
    Json.add("incremental_scc_passes", Inc.SccPasses);
    Json.add("batched_scc_passes", Bat.SccPasses);
    Json.add("incremental_cycles", Inc.CyclesIncremental);
    Json.add("speedup", Speedup);
  }

  std::printf("%s\n", Table.render().c_str());
  std::printf("(speedup = batched wall / incremental wall; edge ns = mean "
              "shared-slot access, txend ns = mean transaction boundary — "
              "batched pays its stop-the-world passes there)\n");
  if (Json.write(OutPath, "cycle_detection"))
    std::printf("wrote %s\n", OutPath);
  return 0;
}
