//===- tests/workloads_test.cpp - Workload suite sanity -------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/Checker.h"
#include "ir/Verifier.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::core;

namespace {

constexpr double TestScale = 0.02;

class WorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadTest, BuildsAndVerifies) {
  ir::Program P = workloads::build(GetParam(), TestScale);
  EXPECT_EQ(ir::verify(P), "");
  EXPECT_FALSE(P.ThreadEntries.empty());
}

TEST_P(WorkloadTest, RunsUninstrumented) {
  ir::Program P = workloads::build(GetParam(), TestScale);
  RunConfig Cfg;
  Cfg.M = Mode::Unmodified;
  RunOutcome O = runChecker(P, AtomicitySpec::initial(P), Cfg);
  EXPECT_FALSE(O.Result.Aborted);
  EXPECT_GT(O.Result.Steps, 0u);
}

TEST_P(WorkloadTest, RunsSingleRunDeterministic) {
  ir::Program P = workloads::build(GetParam(), TestScale);
  RunConfig Cfg;
  Cfg.M = Mode::SingleRun;
  Cfg.RunOpts.Deterministic = true;
  Cfg.RunOpts.ScheduleSeed = 99;
  RunOutcome O = runChecker(P, AtomicitySpec::initial(P), Cfg);
  EXPECT_FALSE(O.Result.Aborted);
}

TEST_P(WorkloadTest, RunsVelodromeDeterministic) {
  ir::Program P = workloads::build(GetParam(), TestScale);
  RunConfig Cfg;
  Cfg.M = Mode::Velodrome;
  Cfg.RunOpts.Deterministic = true;
  Cfg.RunOpts.ScheduleSeed = 7;
  RunOutcome O = runChecker(P, AtomicitySpec::initial(P), Cfg);
  EXPECT_FALSE(O.Result.Aborted);
}

std::vector<std::string> workloadNames() {
  std::vector<std::string> Names;
  for (const workloads::WorkloadInfo &W : workloads::all())
    Names.push_back(W.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadTest,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &Info) { return Info.param; });

/// Workloads seeded with atomicity bugs must report them under some
/// deterministic schedule; clean workloads must never report a violation
/// that blames a method.
TEST(WorkloadViolations, SeededBugsAreFound) {
  const std::vector<std::string> Buggy = {
      "eclipse6", "hsqldb6",  "xalan6",   "avrora9", "lusearch9",
      "sunflow9", "xalan9",   "elevator", "hedc",    "tsp",
      "montecarlo"};
  for (const std::string &Name : Buggy) {
    // Seeded races fire rarely by design; give them enough iterations.
    ir::Program P = workloads::build(Name, 0.12);
    AtomicitySpec Spec = AtomicitySpec::initial(P);
    bool Found = false;
    for (uint64_t Seed = 0; Seed < 8 && !Found; ++Seed) {
      RunConfig Cfg;
      Cfg.M = Mode::SingleRun;
      Cfg.RunOpts.Deterministic = true;
      Cfg.RunOpts.ScheduleSeed = Seed;
      RunOutcome O = runChecker(P, Spec, Cfg);
      Found = !O.BlamedMethods.empty();
    }
    EXPECT_TRUE(Found) << Name << " should report a seeded violation";
  }
}

TEST(WorkloadViolations, CleanWorkloadsStayClean) {
  const std::vector<std::string> Clean = {"jython9", "luindex9", "pmd9",
                                          "philo", "sor", "moldyn",
                                          "raytracer"};
  for (const std::string &Name : Clean) {
    ir::Program P = workloads::build(Name, TestScale);
    AtomicitySpec Spec = AtomicitySpec::initial(P);
    for (uint64_t Seed = 0; Seed < 4; ++Seed) {
      RunConfig Cfg;
      Cfg.M = Mode::SingleRun;
      Cfg.RunOpts.Deterministic = true;
      Cfg.RunOpts.ScheduleSeed = Seed;
      RunOutcome O = runChecker(P, Spec, Cfg);
      EXPECT_TRUE(O.BlamedMethods.empty())
          << Name << " reported " << *O.BlamedMethods.begin();
    }
  }
}

} // namespace
