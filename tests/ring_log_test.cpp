//===- tests/ring_log_test.cpp - Per-CPU ring transport tests -------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the per-CPU ring log transport (DESIGN.md §13): the bounded
/// MPMC ring itself (wraparound, full/contended verdicts), the RingLog
/// drain side (position-exact materialization, migration mid-transaction,
/// completeness accounting), an OS-thread MPSC stress meant to run under
/// TSan, and the checker-level differential guarantee the transport rides
/// on — ring and arena publication must produce bit-equal blamed and
/// potential sets on identical replayed schedules, including under full-
/// ring backpressure.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "analysis/LogArena.h"
#include "analysis/Transaction.h"
#include "core/Checker.h"
#include "support/PerCpuRings.h"
#include "tests/TestPrograms.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::analysis;
using namespace dc::core;

namespace {

//===----------------------------------------------------------------------===//
// PerCpuRings (the bounded MPMC primitive)
//===----------------------------------------------------------------------===//

TEST(PerCpuRingsTest, SizesRoundToPowersOfTwoAndHintsMask) {
  PerCpuRings<int> R(3, 5);
  EXPECT_EQ(R.numRings(), 4u) << "ring count rounds up to a power of two";
  EXPECT_EQ(R.capacity(), 8u) << "cell count rounds up to a power of two";
  for (uint32_t Cpu = 0; Cpu < 64; ++Cpu)
    EXPECT_LT(R.ringFor(Cpu), R.numRings());
  EXPECT_EQ(R.ringFor(5), R.ringFor(5 + R.numRings()))
      << "hint mapping is a mask, so any hint value is safe";
}

TEST(PerCpuRingsTest, WrapsAroundManyTimesPreservingFifo) {
  PerCpuRings<uint32_t> R(1, 4);
  uint32_t Next = 0, Expect = 0;
  for (uint32_t Round = 0; Round < 64; ++Round) {
    // Fill to capacity, then drain everything; seq stamps must keep the
    // cells reusable across 64 generations.
    while (R.tryCommit(0, [&](uint32_t &V) { V = Next; }) == RingCommit::Ok)
      ++Next;
    R.drain(0, [&](uint32_t &V) { EXPECT_EQ(V, Expect++); });
  }
  EXPECT_EQ(Expect, Next);
  EXPECT_EQ(Next, 64u * R.capacity());
  EXPECT_TRUE(R.empty(0));
}

TEST(PerCpuRingsTest, FullRingRefusesUntilDrained) {
  PerCpuRings<uint32_t> R(1, 4);
  for (uint32_t I = 0; I < R.capacity(); ++I)
    ASSERT_EQ(R.tryCommit(0, [&](uint32_t &V) { V = I; }), RingCommit::Ok);
  EXPECT_EQ(R.tryCommit(0, [](uint32_t &) {}), RingCommit::Full);
  uint32_t Seen = 0;
  R.drain(0, [&](uint32_t &) { ++Seen; });
  EXPECT_EQ(Seen, R.capacity());
  EXPECT_EQ(R.tryCommit(0, [](uint32_t &V) { V = 99; }), RingCommit::Ok);
}

//===----------------------------------------------------------------------===//
// RingLog drain side
//===----------------------------------------------------------------------===//

LogSlot accessSlot(uint32_t Obj, uint32_t Addr, bool IsWrite) {
  LogSlot S;
  S.A = Obj;
  S.B = Addr;
  S.Meta = IsWrite ? SlotTagWrite : SlotTagRead;
  return S;
}

/// Publishes one access slot at the transaction's current position,
/// spinning over full rings the way the runtime's ringPublish does (a unit
/// test has no governor to shed to, and these rings are never wedged).
void publish(RingLog &Ring, Transaction &Tx, uint32_t RingIdx, LogSlot S) {
  const uint32_t Pos = Tx.LogLen.load(std::memory_order_relaxed);
  for (;;) {
    RingCommit C = Ring.commit(RingIdx, &Tx, Pos, &S, 1);
    if (C == RingCommit::Ok)
      break;
    if (C == RingCommit::Full) {
      uint32_t Drained = 0;
      if (!Ring.tryDrainAll(Drained))
        std::this_thread::yield();
    }
    RingIdx = Ring.ringFor(RingIdx + 1);
  }
  Tx.LogLen.store(Pos + 1, std::memory_order_release);
}

TEST(RingLogTest, MaterializesPositionExactAcrossWraparound) {
  RingLog Ring(1, 4 * 64); // One 4-cell ring: every 4th record wraps.
  Transaction Tx(1, 0, 0, ir::MethodId(0), true);
  const uint32_t N = LogChunk::SlotsPerChunk * 2 + 7;
  for (uint32_t I = 0; I < N; ++I)
    publish(Ring, Tx, 0, accessSlot(I, I * 3 + 1, I % 2 == 0));
  Ring.drainAll();
  EXPECT_EQ(Tx.DrainedSlots.load(), N);
  EXPECT_EQ(Tx.LogLen.load(), N);
  uint32_t I = 0;
  for (LogCursor C(Tx); !C.atEnd(); C.advance(), ++I) {
    const LogEntry E = C.current();
    EXPECT_EQ(E.K, I % 2 == 0 ? LogEntry::Kind::Write : LogEntry::Kind::Read);
    EXPECT_EQ(E.Obj, I);
    EXPECT_EQ(E.Addr, I * 3 + 1);
  }
  EXPECT_EQ(I, N);
  EXPECT_FALSE(Tx.LogShed.load());
}

TEST(RingLogTest, MigrationMidTransactionKeepsTheLogInOrder) {
  // A thread migrating between CPUs commits consecutive records of the
  // same transaction into different rings. Positions are assigned by the
  // mutator, so drain order across rings must not matter.
  RingLog Ring(4, 0);
  ASSERT_EQ(Ring.numRings(), 4u);
  Transaction Tx(1, 0, 0, ir::MethodId(0), true);
  const uint32_t N = 101;
  for (uint32_t I = 0; I < N; ++I)
    publish(Ring, Tx, Ring.ringFor(I), accessSlot(I, I + 1000, false));
  Ring.drainAll();
  EXPECT_EQ(Tx.DrainedSlots.load(), N);
  uint32_t I = 0;
  for (LogCursor C(Tx); !C.atEnd(); C.advance(), ++I)
    EXPECT_EQ(C.current().Addr, I + 1000)
        << "record committed to ring " << Ring.ringFor(I)
        << " landed at the wrong position";
  EXPECT_EQ(I, N);
}

TEST(RingLogTest, PeekVisitsPublishedRecordsWithoutConsuming) {
  RingLog Ring(2, 0);
  Transaction Tx(1, 0, 0, ir::MethodId(0), true);
  for (uint32_t I = 0; I < 5; ++I)
    publish(Ring, Tx, I % 2, accessSlot(I, I, false));
  uint32_t Seen = 0;
  Ring.peekPublished([&](Transaction *T) {
    EXPECT_EQ(T, &Tx);
    ++Seen;
  });
  EXPECT_EQ(Seen, 5u) << "peek sees every in-flight record";
  EXPECT_EQ(Tx.DrainedSlots.load(), 0u) << "peek consumes nothing";
  Ring.drainAll();
  EXPECT_EQ(Tx.DrainedSlots.load(), 5u);
}

TEST(RingLogStressTest, MpscOsThreadsAgainstConcurrentDrainer) {
  // The TSan target: real OS threads hammering the rings (hint = thread
  // index, re-hashed every few records to force cross-ring traffic) while
  // a drainer materializes concurrently. Every record must land at its
  // exact position and the completeness accounting must close.
  const uint32_t NumThreads = 8;
  const uint32_t PerThread = 4000;
  RingLog Ring(4, 8 * 64); // Tiny rings: constant wraparound + Full hits.
  std::vector<std::unique_ptr<Transaction>> Txs;
  for (uint32_t T = 0; T < NumThreads; ++T)
    Txs.push_back(std::make_unique<Transaction>(T + 1, T, 0,
                                                ir::MethodId(0), true));

  std::atomic<bool> Stop{false};
  std::thread Drainer([&] {
    while (!Stop.load(std::memory_order_acquire))
      Ring.drainAll();
    Ring.drainAll();
  });

  std::vector<std::thread> Workers;
  for (uint32_t T = 0; T < NumThreads; ++T)
    Workers.emplace_back([&, T] {
      Transaction &Tx = *Txs[T];
      for (uint32_t I = 0; I < PerThread; ++I)
        publish(Ring, Tx, Ring.ringFor(T + I / 64), // "Migrate" regularly.
                accessSlot(T, I, (T + I) % 3 == 0));
    });
  for (std::thread &W : Workers)
    W.join();
  Stop.store(true, std::memory_order_release);
  Drainer.join();

  for (uint32_t T = 0; T < NumThreads; ++T) {
    Transaction &Tx = *Txs[T];
    EXPECT_EQ(Tx.LogLen.load(), PerThread);
    EXPECT_EQ(Tx.DrainedSlots.load(), PerThread);
    uint32_t I = 0;
    for (LogCursor C(Tx); !C.atEnd(); C.advance(), ++I) {
      const LogEntry E = C.current();
      ASSERT_EQ(E.Obj, T) << "thread " << T << " position " << I;
      ASSERT_EQ(E.Addr, I) << "thread " << T << " position " << I;
    }
    EXPECT_EQ(I, PerThread);
  }
  EXPECT_EQ(Ring.recordsDrained(), uint64_t(NumThreads) * PerThread);
  EXPECT_EQ(Ring.shedRefusals(), 0u);
}

//===----------------------------------------------------------------------===//
// Checker-level differential: ring vs arena
//===----------------------------------------------------------------------===//

std::string serializeViolations(const std::vector<ViolationRecord> &Records) {
  std::vector<std::string> Lines;
  for (const ViolationRecord &R : Records) {
    std::ostringstream S;
    S << "blamed=" << R.Blamed << " cycle=";
    for (const CycleMember &M : R.Cycle)
      S << "(" << M.Tid << "," << M.Site << "," << M.TxId << ")";
    Lines.push_back(S.str());
  }
  std::sort(Lines.begin(), Lines.end());
  std::string Out;
  for (const std::string &L : Lines)
    Out += L + "\n";
  return Out;
}

RunConfig detCfg(uint64_t Seed, bool Arena) {
  RunConfig Cfg;
  Cfg.M = Mode::SingleRun;
  Cfg.RunOpts.Deterministic = true;
  Cfg.RunOpts.ScheduleSeed = Seed;
  Cfg.ThreadArenaLog = Arena;
  return Cfg;
}

/// Ring and arena transports on the same deterministic schedule: blamed
/// and potential method sets bit-equal, identical PCD replay outcomes,
/// and — the acceptance bar — the default incremental detector in charge
/// (icd.scc_passes == 0: no batched Tarjan pass absorbed a difference).
void expectRingMatchesArena(const ir::Program &P, const RunConfig &Ring,
                            const RunConfig &Arena, const char *Label) {
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  RunOutcome RO = runChecker(P, Spec, Ring);
  RunOutcome AO = runChecker(P, Spec, Arena);
  ASSERT_FALSE(RO.Result.Aborted) << Label;
  ASSERT_FALSE(AO.Result.Aborted) << Label;
  EXPECT_EQ(serializeViolations(RO.Violations),
            serializeViolations(AO.Violations))
      << Label;
  EXPECT_EQ(RO.BlamedMethods, AO.BlamedMethods) << Label;
  EXPECT_EQ(RO.PotentialMethods, AO.PotentialMethods) << Label;
  EXPECT_EQ(RO.stat("icd.scc_passes"), 0u) << Label;
  EXPECT_EQ(AO.stat("icd.scc_passes"), 0u) << Label;
  EXPECT_EQ(RO.stat("pcd.sccs_processed"), AO.stat("pcd.sccs_processed"))
      << Label;
  EXPECT_EQ(RO.stat("pcd.cycles"), AO.stat("pcd.cycles")) << Label;
  EXPECT_EQ(RO.stat("pcd.replay_stuck"), 0u) << Label;
  EXPECT_EQ(AO.stat("pcd.replay_stuck"), 0u) << Label;
  // The two runs really took the two different transports.
  EXPECT_GT(RO.stat("logging.ring_commits"), 0u) << Label;
  EXPECT_EQ(AO.stat("logging.ring_commits"), 0u) << Label;
}

TEST(RingEquivalenceTest, RacyBankBlamesIdenticallyAcrossSeeds) {
  ir::Program P = testprogs::racyBank(3, 300, 2);
  bool AnyViolation = false;
  for (uint64_t Seed = 0; Seed < 6; ++Seed) {
    expectRingMatchesArena(P, detCfg(Seed, false), detCfg(Seed, true),
                           ("racy-bank seed " + std::to_string(Seed)).c_str());
    AtomicitySpec Spec = AtomicitySpec::initial(P);
    AnyViolation |=
        !runChecker(P, Spec, detCfg(Seed, false)).Violations.empty();
  }
  EXPECT_TRUE(AnyViolation) << "differential never saw a violation";
}

TEST(RingEquivalenceTest, WorkloadsBlameIdentically) {
  for (const char *Name : {"elevator", "hedc"}) {
    ir::Program P = workloads::build(Name, 0.5);
    expectRingMatchesArena(P, detCfg(1, false), detCfg(1, true), Name);
  }
}

TEST(RingEquivalenceTest, PropertySchedulesBlameIdentically) {
  // Adversarial PCT schedules promote rarely-seen interleavings; the
  // transports must agree on those too, not just the uniform-random ones.
  ir::Program P = testprogs::racyBank(3, 200, 2);
  for (uint64_t Seed = 0; Seed < 4; ++Seed) {
    RunConfig Ring = detCfg(Seed, false);
    RunConfig Arena = detCfg(Seed, true);
    Ring.RunOpts.Strategy = rt::ScheduleStrategy::Pct;
    Arena.RunOpts.Strategy = rt::ScheduleStrategy::Pct;
    Ring.RunOpts.PctChangePoints = Arena.RunOpts.PctChangePoints = 3;
    expectRingMatchesArena(P, Ring, Arena,
                           ("pct seed " + std::to_string(Seed)).c_str());
  }
}

TEST(RingEquivalenceTest, FullRingBackpressureStaysEquivalent) {
  // A single one-cell ring: every second commit finds the ring full, so
  // the publish ladder (self-drain, neighbor probe) runs constantly. The
  // report must stay bit-equal with arena mode — backpressure may slow
  // the run, never change it.
  ir::Program P = testprogs::racyBank(2, 200, 2);
  RunConfig Ring = detCfg(3, false);
  Ring.RingCount = 1;
  Ring.RingBytes = 64; // One 64-byte cell.
  expectRingMatchesArena(P, Ring, detCfg(3, true), "tiny-ring");
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  RunOutcome O = runChecker(P, Spec, Ring);
  EXPECT_GT(O.stat("logging.ring_full_events"), 0u)
      << "a one-cell ring must actually exercise the backpressure path";
  EXPECT_GT(O.stat("logging.ring_self_drains"), 0u);
  EXPECT_EQ(O.stat("logging.ring_count"), 1u);
}

TEST(RingEquivalenceTest, RingRunReportsTransportCounters) {
  ir::Program P = testprogs::racyBank(2, 300, 2);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  RunOutcome O = runChecker(P, Spec, detCfg(2, false));
  EXPECT_GT(O.stat("logging.ring_commits"), 0u);
  EXPECT_GT(O.stat("logging.ring_drains"), 0u);
  EXPECT_GT(O.stat("logging.ring_records_drained"), 0u);
  EXPECT_GT(O.stat("logging.ring_footprint_bytes"), 0u);
  EXPECT_EQ(O.stat("logging.ring_drain_stalls"), 0u);
  EXPECT_EQ(O.stat("logging.ring_shed_refusals"), 0u);
  // O(cores) footprint: bounded by ring-count × ring bytes, regardless of
  // how many records flowed through.
  EXPECT_LE(O.stat("logging.ring_footprint_bytes"),
            O.stat("logging.ring_count") * uint64_t(64 * 1024) + 4096);
}

} // namespace
