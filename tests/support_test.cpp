//===- tests/support_test.cpp - dc_support unit tests ---------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "support/FunctionRef.h"
#include "support/Rng.h"
#include "support/SpinLock.h"
#include "support/Statistic.h"
#include "support/StringUtils.h"

using namespace dc;

namespace {

TEST(SpinLockTest, LockUnlockTryLock) {
  SpinLock Lock;
  EXPECT_TRUE(Lock.tryLock());
  EXPECT_FALSE(Lock.tryLock());
  Lock.unlock();
  EXPECT_TRUE(Lock.tryLock());
  Lock.unlock();
}

TEST(SpinLockTest, GuardsConcurrentIncrements) {
  SpinLock Lock;
  uint64_t Counter = 0;
  constexpr int Threads = 4, PerThread = 20000;
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&] {
      for (int I = 0; I < PerThread; ++I) {
        SpinLockGuard Guard(Lock);
        ++Counter;
      }
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(Counter, uint64_t(Threads) * PerThread);
}

TEST(RngTest, DeterministicForSeed) {
  SplitMix64 A(7), B(7), C(8);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(A.next(), C.next());
}

TEST(RngTest, NextBelowStaysInRange) {
  SplitMix64 Rng(99);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(Rng.nextBelow(17), 17u);
}

TEST(RngTest, NextInRangeInclusive) {
  SplitMix64 Rng(3);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = Rng.nextInRange(5, 8);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 8u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 4u) << "all values in [5,8] should appear";
}

TEST(RngTest, ForkProducesIndependentStream) {
  SplitMix64 A(1);
  SplitMix64 B = A.fork();
  EXPECT_NE(A.next(), B.next());
}

TEST(StatisticTest, CountersAccumulate) {
  StatisticRegistry Reg;
  Reg.get("a").add();
  Reg.get("a").add(4);
  EXPECT_EQ(Reg.value("a"), 5u);
  EXPECT_EQ(Reg.value("missing"), 0u);
}

TEST(StatisticTest, UpdateMaxKeepsHighWater) {
  StatisticRegistry Reg;
  Reg.get("m").updateMax(10);
  Reg.get("m").updateMax(3);
  EXPECT_EQ(Reg.value("m"), 10u);
  Reg.get("m").updateMax(12);
  EXPECT_EQ(Reg.value("m"), 12u);
}

TEST(StatisticTest, AllSortedByName) {
  StatisticRegistry Reg;
  Reg.get("b").add();
  Reg.get("a").add();
  auto All = Reg.all();
  ASSERT_EQ(All.size(), 2u);
  EXPECT_EQ(All[0]->name(), "a");
  EXPECT_EQ(All[1]->name(), "b");
}

TEST(StatisticTest, ConcurrentAddsDoNotLose) {
  StatisticRegistry Reg;
  Statistic &S = Reg.get("hot");
  std::vector<std::thread> Workers;
  for (int T = 0; T < 4; ++T)
    Workers.emplace_back([&] {
      for (int I = 0; I < 10000; ++I)
        S.add();
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(S.get(), 40000u);
}

TEST(StringUtilsTest, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcd", 2), "abcd");
}

TEST(StringUtilsTest, FormatDouble) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(2.0, 1), "2.0");
}

TEST(StringUtilsTest, FormatWithCommas) {
  EXPECT_EQ(formatWithCommas(0), "0");
  EXPECT_EQ(formatWithCommas(999), "999");
  EXPECT_EQ(formatWithCommas(1000), "1,000");
  EXPECT_EQ(formatWithCommas(61200), "61,200");
  EXPECT_EQ(formatWithCommas(24996), "24,996");
  EXPECT_EQ(formatWithCommas(1234567890), "1,234,567,890");
}

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtilsTest, TextTableAligns) {
  TextTable T;
  T.setHeader({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "23"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("longer"), std::string::npos);
  EXPECT_NE(Out.find("-----"), std::string::npos);
}

TEST(FunctionRefTest, CallsLambda) {
  int Hits = 0;
  // function_ref is non-owning: the callable must be a named object that
  // outlives it (binding a temporary lambda would dangle).
  auto Increment = [&] { ++Hits; };
  function_ref<void()> F = Increment;
  F();
  F();
  EXPECT_EQ(Hits, 2);
}

TEST(FunctionRefTest, ReturnsValueAndTakesArgs) {
  auto AddFn = [](int A, int B) { return A + B; };
  function_ref<int(int, int)> Add = AddFn;
  EXPECT_EQ(Add(2, 3), 5);
}

TEST(FunctionRefTest, BoolConversion) {
  function_ref<void()> Empty;
  EXPECT_FALSE(static_cast<bool>(Empty));
  function_ref<void()> Full = [] {};
  EXPECT_TRUE(static_cast<bool>(Full));
}

TEST(StatisticSnapshotTest, QuiescentSnapshotIsStableAndComplete) {
  StatisticRegistry Reg;
  Reg.get("a").add(3);
  Reg.get("b").add(7);
  StatisticRegistry::Snapshot S = Reg.snapshot();
  EXPECT_TRUE(S.Stable);
  EXPECT_EQ(S.Attempts, 1u);
  EXPECT_EQ(S.Values.at("a"), 3u);
  EXPECT_EQ(S.Values.at("b"), 7u);
}

TEST(StatisticSnapshotTest, ConcurrentChurnNeverTearsAStableSnapshot) {
  // The health endpoint's contract: a snapshot claiming Stable is one
  // consistent cut — both counters read at the same instant, so "even"
  // can differ from 2×"half" only by the writer's single in-flight step.
  // A torn read (one counter stale by many writer iterations, the other
  // fresh) shows arbitrary skew and fails the bound below.
  StatisticRegistry Reg;
  Statistic &Even = Reg.get("even");
  Statistic &Half = Reg.get("half");
  std::atomic<bool> Stop{false};
  std::thread Writer([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      Even.add(2);
      Half.add(1);
    }
  });
  uint64_t StableSeen = 0;
  for (int I = 0; I < 2000; ++I) {
    StatisticRegistry::Snapshot S = Reg.snapshot(/*MaxAttempts=*/8);
    ASSERT_EQ(S.Values.size(), 2u);
    if (!S.Stable)
      continue; // Best-effort read under churn — no consistency promise.
    ++StableSeen;
    const uint64_t E = S.Values.at("even"), H = S.Values.at("half");
    EXPECT_TRUE(E == 2 * H || E == 2 * H + 2)
        << "snapshot marked Stable but the cut is torn: even=" << E
        << " half=" << H;
  }
  Stop.store(true);
  Writer.join();
  // Under a single writer incrementing two counters, the double-read
  // converges often; zero stable snapshots would mean the retry loop is
  // broken (e.g. always reporting instability).
  EXPECT_GT(StableSeen, 0u);
}

TEST(YieldBackoffTest, PauseDoesNotHang) {
  YieldBackoff B;
  for (int I = 0; I < 100; ++I)
    B.pause();
  B.reset();
  B.pause();
  SUCCEED();
}

} // namespace
