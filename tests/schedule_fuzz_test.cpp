//===- tests/schedule_fuzz_test.cpp - Scheduler + oracle + fuzzer tests ---===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the schedule-exploration harness end to end: the ground-truth
// oracle against hand-built programs, PCT determinism and diversity,
// bounded-exhaustive termination and coverage, explicit-schedule exhaustion
// policies, the config-matrix differential fuzzer (clean sweep and
// injected-bug catch + minimize + witness replay), and the three-thread
// RdSh-upgrade regression under PCT.
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/Checker.h"
#include "ir/Builder.h"
#include "rt/Scheduler.h"
#include "tests/oracle.h"
#include "tools/FuzzLib.h"

using namespace dc;

namespace {

/// Two workers call `update` (read x, work, write x): the classic lost
/// update. Interleavings both expose and avoid the cycle; \p Locked wraps
/// the body in a lock, making every interleaving serializable.
ir::Program lostUpdate(bool Locked) {
  ir::ProgramBuilder B(Locked ? "lu_locked" : "lu");
  ir::PoolId Shared = B.addPool("shared", 1, 1);
  ir::PoolId Lock = B.addPool("lock", 1, 1);
  auto &M = B.beginMethod("update", /*Atomic=*/true);
  if (Locked)
    M.acquire(Lock, ir::idxConst(0));
  M.read(Shared, ir::idxConst(0), 0u).work(2).write(Shared, ir::idxConst(0),
                                                    0u);
  if (Locked)
    M.release(Lock, ir::idxConst(0));
  ir::MethodId Update = M.endMethod();
  ir::MethodId W0 =
      B.beginMethod("w0", false).call(Update).endMethod();
  ir::MethodId W1 =
      B.beginMethod("w1", false).call(Update).endMethod();
  ir::MethodId Main = B.beginMethod("main", false)
                          .forkThread(ir::idxConst(1))
                          .forkThread(ir::idxConst(2))
                          .joinThread(ir::idxConst(1))
                          .joinThread(ir::idxConst(2))
                          .endMethod();
  B.addThread(Main);
  B.addThread(W0);
  B.addThread(W1);
  return B.build();
}

rt::RunOptions detOpts(uint64_t Seed) {
  rt::RunOptions RO;
  RO.Deterministic = true;
  RO.ScheduleSeed = Seed;
  RO.MaxSteps = 1ull << 20;
  return RO;
}

} // namespace

//===----------------------------------------------------------------------===//
// Oracle vs the checkers on hand-built programs
//===----------------------------------------------------------------------===//

TEST(OracleTest, RacyLostUpdateBothVerdictsAndNoDivergence) {
  ir::Program P = lostUpdate(/*Locked=*/false);
  core::AtomicitySpec Spec = core::AtomicitySpec::initial(P);
  bool SawViolation = false, SawSerializable = false;
  rt::ExhaustiveExplorer Ex;
  while (Ex.beginRun()) {
    rt::RunOptions RO = detOpts(0);
    rt::ExhaustiveExplorer *Sched = &Ex;
    RO.CustomScheduler = Sched;
    oracle::RecordedTrace T = oracle::recordTrace(P, Spec, RO);
    Ex.endRun();
    ASSERT_FALSE(T.Result.Aborted);
    fuzz::PairResult R = fuzz::checkPair(P, T, /*InjectIcdBug=*/false);
    EXPECT_FALSE(R.Divergence) << *R.Divergence;
    (R.OracleViolation ? SawViolation : SawSerializable) = true;
  }
  EXPECT_TRUE(Ex.exhausted());
  // Preemption bound 2 is enough to both hit and miss the lost update.
  EXPECT_TRUE(SawViolation);
  EXPECT_TRUE(SawSerializable);
}

TEST(OracleTest, LockedProgramAlwaysSerializable) {
  ir::Program P = lostUpdate(/*Locked=*/true);
  core::AtomicitySpec Spec = core::AtomicitySpec::initial(P);
  rt::ExhaustiveExplorer Ex;
  uint64_t Runs = 0;
  while (Ex.beginRun()) {
    rt::RunOptions RO = detOpts(0);
    RO.CustomScheduler = &Ex;
    oracle::RecordedTrace T = oracle::recordTrace(P, Spec, RO);
    Ex.endRun();
    ASSERT_FALSE(T.Result.Aborted);
    fuzz::PairResult R = fuzz::checkPair(P, T, /*InjectIcdBug=*/false);
    EXPECT_FALSE(R.Divergence) << *R.Divergence;
    EXPECT_FALSE(R.OracleViolation);
    ++Runs;
  }
  EXPECT_TRUE(Ex.exhausted());
  EXPECT_GE(Runs, 2u);
}

//===----------------------------------------------------------------------===//
// PCT: deterministic per seed, diverse across seeds
//===----------------------------------------------------------------------===//

TEST(PctTest, SameSeedSameSchedule) {
  ir::Program P = lostUpdate(false);
  core::AtomicitySpec Spec = core::AtomicitySpec::initial(P);
  rt::RunOptions RO = detOpts(7);
  RO.Strategy = rt::ScheduleStrategy::Pct;
  RO.PctChangePoints = 3;
  RO.PctExpectedSteps = 64;
  oracle::RecordedTrace A = oracle::recordTrace(P, Spec, RO);
  oracle::RecordedTrace B = oracle::recordTrace(P, Spec, RO);
  ASSERT_FALSE(A.Result.Aborted);
  EXPECT_EQ(A.Schedule, B.Schedule);
}

TEST(PctTest, SeedsProduceDiverseSchedules) {
  ir::Program P = lostUpdate(false);
  core::AtomicitySpec Spec = core::AtomicitySpec::initial(P);
  std::set<std::vector<uint32_t>> Distinct;
  for (uint64_t S = 0; S < 8; ++S) {
    rt::RunOptions RO = detOpts(S);
    RO.Strategy = rt::ScheduleStrategy::Pct;
    RO.PctChangePoints = 3;
    RO.PctExpectedSteps = 64;
    Distinct.insert(oracle::recordTrace(P, Spec, RO).Schedule);
  }
  EXPECT_GE(Distinct.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Bounded-exhaustive explorer: terminates, covers, unique schedules
//===----------------------------------------------------------------------===//

TEST(ExhaustiveTest, TerminatesWithUniqueSchedules) {
  ir::Program P = lostUpdate(false);
  core::AtomicitySpec Spec = core::AtomicitySpec::initial(P);
  rt::ExhaustiveExplorer::Options Opts;
  Opts.PreemptionBound = 2;
  Opts.MaxRuns = 10000;
  rt::ExhaustiveExplorer Ex(Opts);
  std::set<std::vector<uint32_t>> Distinct;
  while (Ex.beginRun()) {
    rt::RunOptions RO = detOpts(0);
    RO.CustomScheduler = &Ex;
    oracle::recordTrace(P, Spec, RO);
    Ex.endRun();
    EXPECT_FALSE(Ex.diverged());
    Distinct.insert(Ex.lastSchedule());
  }
  EXPECT_TRUE(Ex.exhausted());
  EXPECT_LT(Ex.runsCompleted(), Opts.MaxRuns) << "hit the safety valve";
  // Every DFS run forces a fresh alternative: schedules never repeat.
  EXPECT_EQ(Distinct.size(), Ex.runsCompleted());
  EXPECT_GE(Distinct.size(), 3u);
}

//===----------------------------------------------------------------------===//
// Explicit-schedule exhaustion: documented fallback vs hard error
//===----------------------------------------------------------------------===//

TEST(ScheduleExhaustionTest, FallbackCompletesTheRun) {
  ir::Program P = lostUpdate(false);
  core::AtomicitySpec Spec = core::AtomicitySpec::initial(P);
  oracle::RecordedTrace Full = oracle::recordTrace(P, Spec, detOpts(5));
  ASSERT_FALSE(Full.Result.Aborted);
  ASSERT_GT(Full.Schedule.size(), 4u);

  std::vector<uint32_t> Prefix(Full.Schedule.begin(),
                               Full.Schedule.begin() +
                                   Full.Schedule.size() / 2);
  core::RunConfig Cfg;
  Cfg.M = core::Mode::SingleRun;
  Cfg.RunOpts = detOpts(99);
  Cfg.RunOpts.ExplicitSchedule = Prefix;
  ASSERT_EQ(Cfg.RunOpts.OnScheduleExhausted,
            rt::ScheduleExhaustPolicy::Fallback)
      << "fallback must stay the default for existing replay users";
  core::RunOutcome O = core::runChecker(P, Spec, Cfg);
  EXPECT_FALSE(O.Result.Aborted);
  EXPECT_FALSE(O.Result.ScheduleDiverged);
}

TEST(ScheduleExhaustionTest, HardErrorFlagsShortSchedule) {
  ir::Program P = lostUpdate(false);
  core::AtomicitySpec Spec = core::AtomicitySpec::initial(P);
  oracle::RecordedTrace Full = oracle::recordTrace(P, Spec, detOpts(5));
  std::vector<uint32_t> Prefix(Full.Schedule.begin(),
                               Full.Schedule.begin() +
                                   Full.Schedule.size() / 2);
  core::RunConfig Cfg;
  Cfg.M = core::Mode::SingleRun;
  Cfg.RunOpts = detOpts(99);
  Cfg.RunOpts.ExplicitSchedule = Prefix;
  Cfg.RunOpts.OnScheduleExhausted = rt::ScheduleExhaustPolicy::HardError;
  core::RunOutcome O = core::runChecker(P, Spec, Cfg);
  EXPECT_TRUE(O.Result.ScheduleDiverged);
}

TEST(ScheduleExhaustionTest, HardErrorAcceptsCompleteSchedule) {
  ir::Program P = lostUpdate(false);
  core::AtomicitySpec Spec = core::AtomicitySpec::initial(P);
  oracle::RecordedTrace Full = oracle::recordTrace(P, Spec, detOpts(5));
  core::RunConfig Cfg;
  Cfg.M = core::Mode::SingleRun;
  Cfg.RunOpts = detOpts(0);
  Cfg.RunOpts.ExplicitSchedule = Full.Schedule;
  Cfg.RunOpts.OnScheduleExhausted = rt::ScheduleExhaustPolicy::HardError;
  core::RunOutcome O = core::runChecker(P, Spec, Cfg);
  EXPECT_FALSE(O.Result.ScheduleDiverged);
  EXPECT_FALSE(O.Result.Aborted);
}

TEST(ScheduleExhaustionTest, ScheduleFileRoundTrip) {
  std::vector<uint32_t> S = {0, 1, 1, 2, 0, 33, 2, 1};
  std::string Path = ::testing::TempDir() + "roundtrip.sched";
  ASSERT_TRUE(rt::writeScheduleFile(Path, S));
  std::vector<uint32_t> Back;
  ASSERT_TRUE(rt::readScheduleFile(Path, Back));
  EXPECT_EQ(S, Back);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// The differential fuzzer
//===----------------------------------------------------------------------===//

TEST(FuzzTest, CleanSweepOnFixedSeeds) {
  fuzz::FuzzOptions O;
  O.Seed = 1;
  O.MaxPairs = 200;
  O.Strat = fuzz::FuzzOptions::Strategy::Mixed;
  fuzz::FuzzReport R = fuzz::runFuzz(O);
  ASSERT_FALSE(R.Div) << R.Div->Description;
  EXPECT_GE(R.Pairs, 200u);
  EXPECT_GT(R.ExhaustivePairs, 0u);
  EXPECT_GT(R.PctPairs, 0u);
  EXPECT_GT(R.RandomPairs, 0u);
  // Schedule quality: the sweep must actually reach non-serializable
  // interleavings, not just confirm the no-op case.
  EXPECT_GT(R.OracleViolations, 0u);
}

TEST(FuzzTest, InjectedIcdBugIsCaughtMinimizedAndReplayable) {
  fuzz::FuzzOptions O;
  O.Seed = 1;
  O.MaxPairs = 5000;
  O.InjectIcdBug = true;
  O.Minimize = true;
  fuzz::FuzzReport R = fuzz::runFuzz(O);
  ASSERT_TRUE(R.Div) << "unsound ICD filter survived " << R.Pairs
                     << " pairs";
  // Acceptance bar: the delta-debugged witness is tiny.
  EXPECT_LE(R.Div->DataAccesses, 6u);
  EXPECT_GE(R.Div->Spec.Workers.size(), 2u);

  std::string Path = ::testing::TempDir() + "witness.dcw";
  ASSERT_TRUE(fuzz::writeWitness(Path, *R.Div, /*InjectIcdBug=*/true));
  fuzz::Witness W;
  std::string Error;
  ASSERT_TRUE(fuzz::readWitness(Path, W, Error)) << Error;
  EXPECT_TRUE(W.InjectIcdBug);
  EXPECT_EQ(W.Schedule, R.Div->Schedule);

  // The witness reproduces with the bug...
  std::optional<std::string> Div = fuzz::replayWitness(W);
  EXPECT_TRUE(Div.has_value());
  // ...and vanishes without it: the divergence really is the injected
  // filter, not an environment artifact.
  W.InjectIcdBug = false;
  EXPECT_FALSE(fuzz::replayWitness(W).has_value());
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Regression: three-thread cycle across a RdSh upgrade under PCT
//===----------------------------------------------------------------------===//

TEST(RdShRegressionTest, CycleAcrossReadSharedUpgradeUnderPct) {
  // Three workers: two pure readers push x's Octet state to RdSh, a
  // reader-writer closes a cycle with the double-read method when its
  // write lands between the two reads. The write must conflict against a
  // read-SHARED state, exercising the stripe-0 RdSh path.
  ir::ProgramBuilder B("rdsh3");
  ir::PoolId Shared = B.addPool("shared", 1, 1);
  ir::MethodId Mrr = B.beginMethod("m_rr", true)
                         .read(Shared, ir::idxConst(0), 0u)
                         .work(3)
                         .read(Shared, ir::idxConst(0), 0u)
                         .endMethod();
  ir::MethodId Mr = B.beginMethod("m_r", true)
                        .read(Shared, ir::idxConst(0), 0u)
                        .endMethod();
  ir::MethodId Mrw = B.beginMethod("m_rw", true)
                         .read(Shared, ir::idxConst(0), 0u)
                         .write(Shared, ir::idxConst(0), 0u)
                         .endMethod();
  ir::MethodId W0 = B.beginMethod("w0", false).call(Mrr).endMethod();
  ir::MethodId W1 = B.beginMethod("w1", false).call(Mr).endMethod();
  ir::MethodId W2 = B.beginMethod("w2", false).call(Mrw).endMethod();
  ir::MethodId Main = B.beginMethod("main", false)
                          .forkThread(ir::idxConst(1))
                          .forkThread(ir::idxConst(2))
                          .forkThread(ir::idxConst(3))
                          .joinThread(ir::idxConst(1))
                          .joinThread(ir::idxConst(2))
                          .joinThread(ir::idxConst(3))
                          .endMethod();
  B.addThread(Main);
  B.addThread(W0);
  B.addThread(W1);
  B.addThread(W2);
  ir::Program P = B.build();
  core::AtomicitySpec Spec = core::AtomicitySpec::initial(P);

  bool Found = false;
  for (uint64_t Seed = 0; Seed < 300 && !Found; ++Seed) {
    rt::RunOptions RO = detOpts(Seed);
    RO.Strategy = rt::ScheduleStrategy::Pct;
    RO.PctChangePoints = 3;
    // Sample change points over the actual run length (~90 admissions).
    RO.PctExpectedSteps = 96;
    oracle::RecordedTrace T = oracle::recordTrace(P, Spec, RO);
    if (T.Result.Aborted)
      continue;
    oracle::OracleVerdict V = oracle::decideSerializability(P, T);
    if (V.Serializable)
      continue;

    // Replay the violating schedule through the sharded and serialized
    // IDG paths; they must agree, blame m_rr/m_rw, and the run must have
    // performed at least one WrEx/RdEx -> RdSh upgrade.
    core::RunConfig Cfg;
    Cfg.M = core::Mode::SingleRun;
    Cfg.RunOpts = detOpts(0);
    Cfg.RunOpts.ExplicitSchedule = T.Schedule;
    Cfg.RunOpts.OnScheduleExhausted = rt::ScheduleExhaustPolicy::HardError;
    core::RunOutcome Sharded = core::runChecker(P, Spec, Cfg);
    ASSERT_FALSE(Sharded.Result.ScheduleDiverged);
    if (Sharded.stat("octet.upgrade_rdsh") == 0)
      continue; // Cycle without the RdSh state; keep searching.
    EXPECT_FALSE(Sharded.BlamedMethods.empty());

    Cfg.SerializedIdg = true;
    core::RunOutcome Serialized = core::runChecker(P, Spec, Cfg);
    ASSERT_FALSE(Serialized.Result.ScheduleDiverged);
    EXPECT_EQ(Sharded.BlamedMethods, Serialized.BlamedMethods);
    EXPECT_GE(Serialized.stat("octet.upgrade_rdsh"), 1u);

    fuzz::PairResult PR = fuzz::checkPair(P, T, false);
    EXPECT_FALSE(PR.Divergence) << *PR.Divergence;
    Found = true;
  }
  EXPECT_TRUE(Found)
      << "no PCT seed produced a cycle spanning a RdSh upgrade";
}
