//===- tests/core_test.cpp - Core façade and refinement tests -------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/Checker.h"
#include "core/Refinement.h"
#include "tests/TestPrograms.h"

using namespace dc;
using namespace dc::core;

namespace {

TEST(AtomicitySpecTest, InitialExcludesEntriesAndInterruptingMethods) {
  using namespace ir;
  ProgramBuilder B("spec");
  PoolId Pool = B.addPool("p", 1, 1);
  MethodId Quiet = B.beginMethod("quiet", true)
                       .read(Pool, idxConst(0), 0u)
                       .endMethod();
  MethodId Waity = B.beginMethod("waity", true)
                       .acquire(Pool, idxConst(0))
                       .wait(Pool, idxConst(0))
                       .release(Pool, idxConst(0))
                       .endMethod();
  MethodId Notifier = B.beginMethod("notifier", true)
                          .acquire(Pool, idxConst(0))
                          .beginLoop(idxConst(2))
                          .notifyOne(Pool, idxConst(0))
                          .endLoop()
                          .release(Pool, idxConst(0))
                          .endMethod();
  (void)Quiet;
  (void)Waity;
  (void)Notifier;
  MethodId Worker = B.beginMethod("run", false).work(1).endMethod();
  MethodId Main = B.beginMethod("main", false)
                      .forkThread(idxConst(1))
                      .joinThread(idxConst(1))
                      .endMethod();
  B.addThread(Main);
  B.addThread(Worker);
  Program P = B.build();

  AtomicitySpec Spec = AtomicitySpec::initial(P);
  EXPECT_FALSE(Spec.isAtomic("main")) << "thread entry + fork/join";
  EXPECT_FALSE(Spec.isAtomic("run")) << "thread entry";
  EXPECT_FALSE(Spec.isAtomic("waity")) << "contains wait";
  EXPECT_FALSE(Spec.isAtomic("notifier")) << "contains notify (in a loop)";
  EXPECT_TRUE(Spec.isAtomic("quiet"));
  EXPECT_TRUE(Spec.atomicMethods(P).count("quiet"));
}

TEST(AtomicitySpecTest, ExcludeIsIdempotent) {
  AtomicitySpec Spec;
  EXPECT_TRUE(Spec.exclude("m"));
  EXPECT_FALSE(Spec.exclude("m"));
  EXPECT_FALSE(Spec.isAtomic("m"));
}

TEST(ModeTest, AllModesHaveNames) {
  for (Mode M : {Mode::Unmodified, Mode::Velodrome, Mode::VelodromeUnsound,
                 Mode::SingleRun, Mode::FirstRun, Mode::SecondRun,
                 Mode::SecondRunVelodrome, Mode::PcdOnly})
    EXPECT_NE(toString(M), "?");
}

TEST(RunCheckerTest, EveryModeRunsRacyBank) {
  ir::Program P = testprogs::racyBank(2, 100, 2);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  analysis::StaticTransactionInfo Info;
  Info.MethodNames.insert("deposit");
  Info.AnyUnary = true;
  for (Mode M : {Mode::Unmodified, Mode::Velodrome, Mode::VelodromeUnsound,
                 Mode::SingleRun, Mode::FirstRun, Mode::SecondRun,
                 Mode::SecondRunVelodrome, Mode::PcdOnly}) {
    RunConfig Cfg;
    Cfg.M = M;
    Cfg.RunOpts.Deterministic = true;
    Cfg.RunOpts.ScheduleSeed = 4;
    Cfg.StaticInfo = &Info;
    RunOutcome O = runChecker(P, Spec, Cfg);
    EXPECT_FALSE(O.Result.Aborted) << toString(M);
    EXPECT_GT(O.Result.Steps, 0u) << toString(M);
  }
}

TEST(RunCheckerTest, FirstRunProducesStaticInfoNotViolations) {
  ir::Program P = testprogs::racyBank(3, 400, 2);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  bool SawSites = false;
  for (uint64_t Seed = 0; Seed < 8 && !SawSites; ++Seed) {
    RunConfig Cfg;
    Cfg.M = Mode::FirstRun;
    Cfg.RunOpts.Deterministic = true;
    Cfg.RunOpts.ScheduleSeed = Seed;
    RunOutcome O = runChecker(P, Spec, Cfg);
    EXPECT_TRUE(O.Violations.empty()) << "first run never reports";
    SawSites = O.StaticInfo.MethodNames.count("deposit") != 0;
  }
  EXPECT_TRUE(SawSites);
}

TEST(RunCheckerTest, SecondRunHonorsEmptyStaticInfo) {
  ir::Program P = testprogs::racyBank(2, 200, 2);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  analysis::StaticTransactionInfo Empty;
  RunConfig Cfg;
  Cfg.M = Mode::SecondRun;
  Cfg.RunOpts.Deterministic = true;
  Cfg.StaticInfo = &Empty;
  RunOutcome O = runChecker(P, Spec, Cfg);
  EXPECT_EQ(O.stat("icd.regular_transactions"), 0u);
  EXPECT_EQ(O.stat("icd.instrumented_accesses_regular"), 0u);
  EXPECT_EQ(O.stat("icd.instrumented_accesses_unary"), 0u);
  EXPECT_TRUE(O.Violations.empty());
}

TEST(RunCheckerTest, StatsSurfaceOctetCounters) {
  ir::Program P = testprogs::racyBank(2, 200, 2);
  RunConfig Cfg;
  Cfg.M = Mode::SingleRun;
  Cfg.RunOpts.Deterministic = true;
  RunOutcome O = runChecker(P, AtomicitySpec::initial(P), Cfg);
  EXPECT_GT(O.stat("octet.fast_read") + O.stat("octet.fast_write"), 0u);
  EXPECT_GT(O.stat("icd.log_entries"), 0u);
}

TEST(RunCheckerTest, ParallelPcdFindsTheSameViolations) {
  ir::Program P = testprogs::racyBank(3, 400, 2);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  for (uint64_t Seed = 0; Seed < 4; ++Seed) {
    RunConfig Inline;
    Inline.M = Mode::SingleRun;
    Inline.RunOpts.Deterministic = true;
    Inline.RunOpts.ScheduleSeed = Seed;
    RunConfig Parallel = Inline;
    Parallel.ParallelPcd = true;
    RunOutcome A = runChecker(P, Spec, Inline);
    RunOutcome B = runChecker(P, Spec, Parallel);
    EXPECT_EQ(A.BlamedMethods, B.BlamedMethods) << "seed " << Seed;
    EXPECT_EQ(A.stat("pcd.sccs_processed"), B.stat("pcd.sccs_processed"));
  }
}

TEST(RefinementTest, RemovesExactlyTheBuggyMethod) {
  ir::Program P = testprogs::racyBank(3, 400, 2);
  RefinementOptions Opts;
  Opts.Checker = RefinementChecker::SingleRun;
  Opts.QuietTrials = 3;
  Opts.Deterministic = true;
  RefinementResult R = iterativeRefinement(P, Opts);
  EXPECT_EQ(R.AllBlamed, std::set<std::string>{"deposit"});
  EXPECT_FALSE(R.FinalSpec.isAtomic("deposit"));
  EXPECT_GE(R.Trials, Opts.QuietTrials);
}

TEST(RefinementTest, CleanProgramConvergesWithNoBlame) {
  ir::Program P = testprogs::lockedBank(2, 150, 4);
  RefinementOptions Opts;
  Opts.Checker = RefinementChecker::SingleRun;
  Opts.QuietTrials = 2;
  Opts.Deterministic = true;
  RefinementResult R = iterativeRefinement(P, Opts);
  EXPECT_TRUE(R.AllBlamed.empty());
  EXPECT_EQ(R.Trials, Opts.QuietTrials);
}

TEST(RefinementTest, MultiRunRefinementFindsBug) {
  ir::Program P = testprogs::racyBank(3, 400, 2);
  RefinementOptions Opts;
  Opts.Checker = RefinementChecker::MultiRun;
  Opts.QuietTrials = 3;
  Opts.FirstRunsPerTrial = 3;
  Opts.Deterministic = true;
  RefinementResult R = iterativeRefinement(P, Opts);
  EXPECT_TRUE(R.AllBlamed.count("deposit"));
}

TEST(RefinementTest, RefinedSpecificationIsQuiet) {
  ir::Program P = testprogs::racyBank(2, 300, 2);
  RefinementOptions Opts;
  Opts.Checker = RefinementChecker::SingleRun;
  Opts.QuietTrials = 2;
  Opts.Deterministic = true;
  RefinementResult R = iterativeRefinement(P, Opts);
  for (uint64_t Seed = 100; Seed < 103; ++Seed) {
    RunConfig Cfg;
    Cfg.M = Mode::SingleRun;
    Cfg.RunOpts.Deterministic = true;
    Cfg.RunOpts.ScheduleSeed = Seed;
    RunOutcome O = runChecker(P, R.FinalSpec, Cfg);
    EXPECT_TRUE(O.BlamedMethods.empty());
  }
}

} // namespace
