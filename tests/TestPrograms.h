//===- tests/TestPrograms.h - Shared program builders for tests -*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small programs reused across test suites.
///
//===----------------------------------------------------------------------===//

#ifndef DC_TESTS_TESTPROGRAMS_H
#define DC_TESTS_TESTPROGRAMS_H

#include "ir/Builder.h"

namespace dc {
namespace testprogs {

/// A classic atomicity bug: `deposit` is atomic but its read-modify-write
/// is unsynchronized, so concurrent deposits to the same account interleave
/// and form write-read/read-write cycles. \p Workers worker threads each
/// perform \p DepositsPerWorker deposits to \p Accounts accounts.
inline ir::Program racyBank(uint32_t Workers = 2,
                            uint32_t DepositsPerWorker = 200,
                            uint32_t Accounts = 4, uint64_t Seed = 42) {
  using namespace ir;
  ProgramBuilder B("racy-bank", Seed);
  PoolId Acct = B.addPool("accounts", Accounts, 1);

  MethodId Deposit = B.beginMethod("deposit", /*Atomic=*/true)
                         .read(Acct, idxParam(), 0u)
                         .work(20)
                         .write(Acct, idxParam(), 0u)
                         .endMethod();

  MethodId Worker = B.beginMethod("worker", /*Atomic=*/false)
                        .beginLoop(idxConst(DepositsPerWorker))
                        .call(Deposit, idxRandom(Accounts))
                        .endLoop()
                        .endMethod();

  auto &Main = B.beginMethod("main", /*Atomic=*/false);
  for (uint32_t W = 1; W <= Workers; ++W)
    Main.forkThread(idxConst(W));
  for (uint32_t W = 1; W <= Workers; ++W)
    Main.joinThread(idxConst(W));
  MethodId MainId = Main.endMethod();

  B.addThread(MainId);
  for (uint32_t W = 1; W <= Workers; ++W)
    B.addThread(Worker);
  return B.build();
}

/// Same structure but each worker owns a private account (indexed by thread
/// id), so every execution is serializable: no checker may report anything.
inline ir::Program disjointBank(uint32_t Workers = 2,
                                uint32_t DepositsPerWorker = 200,
                                uint64_t Seed = 7) {
  using namespace ir;
  ProgramBuilder B("disjoint-bank", Seed);
  PoolId Acct = B.addPool("accounts", Workers + 1, 1);

  MethodId Deposit = B.beginMethod("deposit", /*Atomic=*/true)
                         .read(Acct, idxThread(), 0u)
                         .work(10)
                         .write(Acct, idxThread(), 0u)
                         .endMethod();

  MethodId Worker = B.beginMethod("worker", /*Atomic=*/false)
                        .beginLoop(idxConst(DepositsPerWorker))
                        .call(Deposit, idxConst(0))
                        .endLoop()
                        .endMethod();

  auto &Main = B.beginMethod("main", /*Atomic=*/false);
  for (uint32_t W = 1; W <= Workers; ++W)
    Main.forkThread(idxConst(W));
  for (uint32_t W = 1; W <= Workers; ++W)
    Main.joinThread(idxConst(W));
  MethodId MainId = Main.endMethod();

  B.addThread(MainId);
  for (uint32_t W = 1; W <= Workers; ++W)
    B.addThread(Worker);
  return B.build();
}

/// A correctly-locked variant: deposits hold the account's monitor, so the
/// atomic method really is serializable.
inline ir::Program lockedBank(uint32_t Workers = 2,
                              uint32_t DepositsPerWorker = 200,
                              uint32_t Accounts = 4, uint64_t Seed = 11) {
  using namespace ir;
  ProgramBuilder B("locked-bank", Seed);
  PoolId Acct = B.addPool("accounts", Accounts, 1);

  MethodId Deposit = B.beginMethod("deposit", /*Atomic=*/true)
                         .acquire(Acct, idxParam())
                         .read(Acct, idxParam(), 0u)
                         .work(10)
                         .write(Acct, idxParam(), 0u)
                         .release(Acct, idxParam())
                         .endMethod();

  MethodId Worker = B.beginMethod("worker", /*Atomic=*/false)
                        .beginLoop(idxConst(DepositsPerWorker))
                        .call(Deposit, idxRandom(Accounts))
                        .endLoop()
                        .endMethod();

  auto &Main = B.beginMethod("main", /*Atomic=*/false);
  for (uint32_t W = 1; W <= Workers; ++W)
    Main.forkThread(idxConst(W));
  for (uint32_t W = 1; W <= Workers; ++W)
    Main.joinThread(idxConst(W));
  MethodId MainId = Main.endMethod();

  B.addThread(MainId);
  for (uint32_t W = 1; W <= Workers; ++W)
    B.addThread(Worker);
  return B.build();
}

} // namespace testprogs
} // namespace dc

#endif // DC_TESTS_TESTPROGRAMS_H
