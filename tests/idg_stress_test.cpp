//===- tests/idg_stress_test.cpp - Concurrent IDG mutation stress ---------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the sharded IDG hot path with real concurrent threads: many
/// threads begin/end transactions, hammer shared objects (cross-thread
/// edges via both Octet protocols), trigger background collection, and
/// feed the multi-worker PCD pool — all simultaneously. Checks liveness,
/// pipeline accounting (every detected SCC is queued and replayed), and —
/// deterministically — that the sharded path reports exactly the same
/// violations as the SerializedIdg escape hatch.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "analysis/DoubleChecker.h"
#include "core/Checker.h"
#include "ir/Builder.h"
#include "rt/Runtime.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::analysis;

namespace {

ir::Program hammerProgram(uint32_t Threads, uint32_t Objects) {
  ir::ProgramBuilder B("idg_stress");
  B.addPool("objs", Objects, 2);
  B.beginMethod("m0", true).work(1).endMethod();
  B.beginMethod("m1", true).work(1).endMethod();
  ir::MethodId Main = B.beginMethod("main", false).work(1).endMethod();
  for (uint32_t T = 0; T < Threads; ++T)
    B.addThread(Main);
  return B.build();
}

/// Many real threads: transactions + shared-object conflicts + collection
/// + the parallel-PCD pool, all concurrent. The interesting assertions are
/// "finishes at all" (no deadlock among stripes / collector / pool) and
/// the queue accounting; violation content is schedule-dependent here.
TEST(IdgStressTest, ConcurrentTransactionsEdgesCollectionAndPcdPool) {
  constexpr uint32_t Threads = 4;
  constexpr uint32_t SharedObjects = 8;
  constexpr uint64_t OpsPerThread = 8000;

  ir::Program P = hammerProgram(Threads, SharedObjects + Threads);
  StatisticRegistry Stats;
  ViolationLog Violations;
  DoubleCheckerOptions Opts;
  Opts.ParallelPcd = true;
  Opts.PcdWorkers = 3;
  Opts.CollectEveryTx = 64;       // Hammer the background collector.
  Opts.LogRemoteMissPenalty = 0;  // Pure-concurrency stress; no simulation
  Opts.IdgRemoteMissPenalty = 0;  // spins.
  auto DC = std::make_unique<DoubleCheckerRuntime>(P, Opts, Violations,
                                                   Stats);
  rt::Runtime RT(P, DC.get());
  DC->beginRun(RT);

  const ir::Method &M0 = P.Methods[P.findMethod("m0")];
  const ir::Method &M1 = P.Methods[P.findMethod("m1")];

  std::atomic<uint32_t> Ready{0};
  std::vector<std::thread> Workers;
  for (uint32_t T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      rt::ThreadContext TC;
      TC.Tid = T;
      TC.RT = &RT;
      TC.Checker = DC.get();
      DC->threadStarted(TC);
      Ready.fetch_add(1);
      while (Ready.load() < Threads)
        std::this_thread::yield();
      SplitMix64 Rng(T * 9176 + 5);
      bool InTx = false;
      for (uint64_t Op = 0; Op < OpsPerThread; ++Op) {
        if (Op % 16 == 0) {
          if (InTx)
            DC->txEnd(TC, T % 2 ? M1 : M0);
          DC->txBegin(TC, T % 2 ? M1 : M0);
          InTx = true;
        }
        // 30% shared traffic drives cross-thread edges; the rest stays on
        // a thread-private object (the paper's common case).
        rt::ObjectId Obj =
            Rng.chancePercent(30)
                ? static_cast<rt::ObjectId>(Rng.nextBelow(SharedObjects))
                : static_cast<rt::ObjectId>(SharedObjects + T);
        rt::AccessInfo Info;
        Info.Obj = Obj;
        Info.Addr = RT.heap().fieldAddr(Obj, Rng.nextBelow(2));
        Info.IsWrite = Rng.chancePercent(40);
        Info.Flags = ir::IF_OctetBarrier | ir::IF_LogAccess;
        DC->instrumentedAccess(TC, Info, [] {});
        DC->safePoint(TC);
        if (Rng.chancePercent(1)) {
          // Blocking episodes exercise the implicit protocol (edges added
          // by the requester on a held responder's behalf).
          DC->aboutToBlock(TC);
          std::this_thread::yield();
          DC->unblocked(TC);
        }
      }
      if (InTx)
        DC->txEnd(TC, T % 2 ? M1 : M0);
      DC->threadExiting(TC);
    });
  }
  for (std::thread &W : Workers)
    W.join();
  DC->endRun(RT);

  // The workload must actually have exercised the concurrent machinery.
  EXPECT_GT(Stats.value("icd.idg_cross_edges"), 0u);
  EXPECT_GT(Stats.value("icd.regular_transactions"), Threads * 100u);
  EXPECT_GT(Stats.value("icd.collector_runs"), 0u);
  EXPECT_GT(Stats.value("icd.txs_swept"), 0u);

  // Pool accounting: every detected SCC was enqueued exactly once, and
  // endRun's drain means every queued SCC was replayed (or counted as
  // skipped for size — impossible at this scale, but keep the identity).
  EXPECT_EQ(Stats.value("pcd.sccs_queued"), Stats.value("icd.sccs"));
  EXPECT_EQ(Stats.value("pcd.sccs_processed") + Stats.value("pcd.sccs_skipped"),
            Stats.value("pcd.sccs_queued"));
  if (Stats.value("pcd.sccs_queued") > 0) {
    EXPECT_GT(Stats.value("pcd.max_queue_depth"), 0u);
  }
}

/// Sharded vs. SerializedIdg on deterministic schedules: the admitted
/// schedule is identical, so the IDG, the SCCs, and the precise violations
/// must be identical — with PCD inline or on the worker pool.
TEST(IdgStressTest, ShardedMatchesSerializedPathDeterministically) {
  struct Case {
    const char *Workload;
    double Scale;
    uint64_t Seed;
  };
  const Case Cases[] = {{"xalan6", 0.2, 1}, {"hsqldb6", 0.2, 7}};

  for (const Case &C : Cases) {
    ir::Program P = workloads::build(C.Workload, C.Scale);
    core::AtomicitySpec Spec = core::AtomicitySpec::initial(P);

    auto Run = [&](bool Serialized, bool ParallelPcd) {
      core::RunConfig Cfg;
      Cfg.M = core::Mode::SingleRun;
      Cfg.RunOpts.Deterministic = true;
      Cfg.RunOpts.ScheduleSeed = C.Seed;
      Cfg.SerializedIdg = Serialized;
      Cfg.ParallelPcd = ParallelPcd;
      Cfg.PcdWorkers = 3;
      return core::runChecker(P, Spec, Cfg);
    };

    core::RunOutcome Serial = Run(true, false);
    core::RunOutcome Sharded = Run(false, false);
    core::RunOutcome ShardedPool = Run(false, true);

    EXPECT_EQ(Serial.stat("icd.idg_cross_edges"),
              Sharded.stat("icd.idg_cross_edges"))
        << C.Workload;
    EXPECT_EQ(Serial.stat("icd.sccs"), Sharded.stat("icd.sccs"))
        << C.Workload;
    EXPECT_EQ(Serial.Violations.size(), Sharded.Violations.size())
        << C.Workload;
    EXPECT_EQ(Serial.BlamedMethods, Sharded.BlamedMethods) << C.Workload;
    EXPECT_EQ(Serial.Violations.size(), ShardedPool.Violations.size())
        << C.Workload << " (pool)";
    EXPECT_EQ(Serial.BlamedMethods, ShardedPool.BlamedMethods)
        << C.Workload << " (pool)";
  }
}

/// The SerializedIdg escape hatch still runs the whole pipeline (sanity
/// for the bench's baseline side).
TEST(IdgStressTest, SerializedEscapeHatchStillDetects) {
  ir::Program P = workloads::build("xalan6", 0.2);
  core::RunConfig Cfg;
  Cfg.M = core::Mode::SingleRun;
  Cfg.RunOpts.Deterministic = true;
  Cfg.RunOpts.ScheduleSeed = 1;
  Cfg.SerializedIdg = true;
  core::RunOutcome O =
      core::runChecker(P, core::AtomicitySpec::initial(P), Cfg);
  EXPECT_GT(O.stat("icd.sccs"), 0u);
  EXPECT_FALSE(O.BlamedMethods.empty());
  EXPECT_EQ(O.stat("icd.idg_shards"), 1u);
}

} // namespace
