//===- tests/log_elision_test.cpp - Logging-path differential tests -------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the logging hot path's pieces (ElisionFilter, ChunkedLog,
/// LogCursor, chunk recycling) plus the differential guarantee the arena
/// rewrite rides on: the same deterministic schedule, run with elision
/// on/off and with arena vs. legacy vector logs, must report byte-identical
/// violation sets and identical PCD replay outcomes — in single-run and in
/// multi-run mode.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/LogArena.h"
#include "analysis/Transaction.h"
#include "core/Checker.h"
#include "tests/TestPrograms.h"

using namespace dc;
using namespace dc::analysis;
using namespace dc::core;

namespace {

/// racyBank with each access doubled: deposit reads the balance twice and
/// writes it twice, so every transaction offers same-epoch duplicates
/// (read-after-read, write-after-write) for elision to remove — racyBank's
/// plain read-then-write never does (write-after-read must log).
ir::Program doubledRacyBank(uint32_t Workers, uint32_t DepositsPerWorker,
                            uint32_t Accounts) {
  using namespace ir;
  ProgramBuilder B("doubled-racy-bank", 42);
  PoolId Acct = B.addPool("accounts", Accounts, 1);
  MethodId Deposit = B.beginMethod("deposit", /*Atomic=*/true)
                         .read(Acct, idxParam(), 0u)
                         .read(Acct, idxParam(), 0u)
                         .work(20)
                         .write(Acct, idxParam(), 0u)
                         .write(Acct, idxParam(), 0u)
                         .endMethod();
  MethodId Worker = B.beginMethod("worker", /*Atomic=*/false)
                        .beginLoop(idxConst(DepositsPerWorker))
                        .call(Deposit, idxRandom(Accounts))
                        .endLoop()
                        .endMethod();
  auto &Main = B.beginMethod("main", /*Atomic=*/false);
  for (uint32_t W = 1; W <= Workers; ++W)
    Main.forkThread(idxConst(W));
  for (uint32_t W = 1; W <= Workers; ++W)
    Main.joinThread(idxConst(W));
  MethodId MainId = Main.endMethod();
  B.addThread(MainId);
  for (uint32_t W = 1; W <= Workers; ++W)
    B.addThread(Worker);
  return B.build();
}

//===----------------------------------------------------------------------===//
// ElisionFilter
//===----------------------------------------------------------------------===//

TEST(ElisionFilterTest, ReadAfterAnyAndWriteAfterWriteElide) {
  ElisionFilter F;
  const uint64_t K = ElisionFilter::key(3, 17);
  EXPECT_FALSE(F.testAndSet(K, 1, /*IsWrite=*/false)) << "first access logs";
  EXPECT_TRUE(F.testAndSet(K, 1, false)) << "read after read elides";
  EXPECT_FALSE(F.testAndSet(K, 1, true)) << "write after read logs";
  EXPECT_TRUE(F.testAndSet(K, 1, true)) << "write after write elides";
  EXPECT_TRUE(F.testAndSet(K, 1, false)) << "read after write elides";
}

TEST(ElisionFilterTest, EpochBumpInvalidatesWithoutClearing) {
  ElisionFilter F;
  const uint64_t K = ElisionFilter::key(1, 2);
  EXPECT_FALSE(F.testAndSet(K, 1, true));
  EXPECT_TRUE(F.testAndSet(K, 1, true));
  // A transaction boundary / incoming edge bumps the epoch; the stale
  // stamp must not elide the next access.
  EXPECT_FALSE(F.testAndSet(K, 2, true));
  EXPECT_TRUE(F.testAndSet(K, 2, true));
  // An older epoch never resurrects (epochs only move forward in the
  // runtime, but the filter must not care either way).
  EXPECT_FALSE(F.testAndSet(K, 3, false));
}

TEST(ElisionFilterTest, DistinctKeysDoNotAlias) {
  ElisionFilter F;
  EXPECT_FALSE(F.testAndSet(ElisionFilter::key(1, 5), 1, false));
  EXPECT_FALSE(F.testAndSet(ElisionFilter::key(2, 5), 1, false))
      << "same field of another object is a different key";
  EXPECT_FALSE(F.testAndSet(ElisionFilter::key(1, 6), 1, false));
  EXPECT_TRUE(F.testAndSet(ElisionFilter::key(1, 5), 1, false));
}

TEST(ElisionFilterTest, CollisionsOnlyLoseElisionNeverFabricateIt) {
  ElisionFilter F;
  // Hammer far more keys than slots in one epoch; whatever eviction does,
  // a key never elides before being recorded in the current epoch.
  for (uint32_t I = 0; I < 4 * ElisionFilter::NumSlots; ++I)
    EXPECT_FALSE(F.testAndSet(ElisionFilter::key(I, I * 7 + 1), 1, true))
        << "first access of a key must log";
}

//===----------------------------------------------------------------------===//
// ChunkedLog + LogCursor
//===----------------------------------------------------------------------===//

TEST(ChunkedLogTest, AppendsAcrossChunksAndDecodesBack) {
  Transaction Tx(1, 0, 0, ir::MethodId(0), true);
  const uint32_t N = LogChunk::SlotsPerChunk * 3 + 5;
  for (uint32_t I = 0; I < N; ++I) {
    LogEntry E;
    E.K = I % 3 == 0 ? LogEntry::Kind::Write : LogEntry::Kind::Read;
    E.Obj = I;
    E.Addr = I * 2 + 1;
    Tx.appendLog(E);
  }
  EXPECT_EQ(Tx.Log.size(), N);
  EXPECT_EQ(Tx.LogLen.load(), N);
  uint32_t I = 0;
  for (LogCursor C(Tx); !C.atEnd(); C.advance(), ++I) {
    const LogEntry E = C.current();
    EXPECT_EQ(E.K, I % 3 == 0 ? LogEntry::Kind::Write : LogEntry::Kind::Read);
    EXPECT_EQ(E.Obj, I);
    EXPECT_EQ(E.Addr, I * 2 + 1);
  }
  EXPECT_EQ(I, N);
}

TEST(ChunkedLogTest, EdgeInRecordStraddlesChunkBoundary) {
  Transaction Tx(1, 0, 0, ir::MethodId(0), true);
  // Fill to one slot short of the chunk boundary, then append a 2-slot
  // EdgeIn so its continuation lands in the next chunk.
  for (uint32_t I = 0; I < LogChunk::SlotsPerChunk - 1; ++I) {
    LogEntry E;
    E.Obj = I;
    E.Addr = I;
    Tx.appendLog(E);
  }
  LogEntry Marker;
  Marker.K = LogEntry::Kind::EdgeIn;
  Marker.Obj = 7;                  // Source tid.
  Marker.Addr = 1234;              // Sampled source position.
  Marker.SrcSeq = 0x123456789AULL; // Survives the Meta>>2 packing.
  Marker.Time = 0xFEDCBA9876543210ULL;
  Tx.appendLog(Marker);
  LogEntry After;
  After.K = LogEntry::Kind::Write;
  After.Obj = 99;
  After.Addr = 98;
  Tx.appendLog(After);
  EXPECT_EQ(Tx.Log.size(), LogChunk::SlotsPerChunk + 2);

  LogCursor C(Tx);
  for (uint32_t I = 0; I < LogChunk::SlotsPerChunk - 1; ++I)
    C.advance();
  ASSERT_FALSE(C.atEnd());
  LogEntry E = C.current();
  EXPECT_EQ(E.K, LogEntry::Kind::EdgeIn);
  EXPECT_EQ(E.Obj, 7u);
  EXPECT_EQ(E.Addr, 1234u);
  EXPECT_EQ(E.SrcSeq, 0x123456789AULL);
  EXPECT_EQ(E.Time, 0xFEDCBA9876543210ULL);
  C.advance(); // Consumes both slots.
  ASSERT_FALSE(C.atEnd());
  E = C.current();
  EXPECT_EQ(E.K, LogEntry::Kind::Write);
  EXPECT_EQ(E.Obj, 99u);
  C.advance();
  EXPECT_TRUE(C.atEnd());
}

TEST(ChunkedLogTest, LegacyVectorLogDecodesThroughTheSameCursor) {
  Transaction Tx(1, 0, 0, ir::MethodId(0), true);
  for (uint32_t I = 0; I < 10; ++I) {
    LogEntry E;
    E.K = LogEntry::Kind::Read;
    E.Obj = I;
    E.Addr = I + 100;
    Tx.appendLogLegacy(E);
  }
  EXPECT_EQ(Tx.LogLen.load(), 10u);
  uint32_t I = 0;
  for (LogCursor C(Tx); !C.atEnd(); C.advance(), ++I) {
    EXPECT_EQ(C.pos(), I) << "legacy positions are entry indices";
    EXPECT_EQ(C.current().Addr, I + 100);
  }
  EXPECT_EQ(I, 10u);
}

TEST(ChunkPoolTest, RecycledChunksAreServedBeforeAllocating) {
  LogChunkPool Pool;
  LogChunkCache Cache;
  Cache.attach(&Pool);
  // Consume two full cache refills so the cache is empty when the second
  // transaction starts; its refill must then come from the recycled chunks.
  const uint32_t SlotsPerTx =
      LogChunk::SlotsPerChunk * 2 * LogChunkCache::RefillBatch;
  {
    Transaction Tx(1, 0, 0, ir::MethodId(0), true);
    for (uint32_t I = 0; I < SlotsPerTx; ++I) {
      LogEntry E;
      E.Obj = I;
      Tx.appendLog(E, &Cache);
    }
    Tx.Log.releaseTo(Pool); // What the collector does before delete.
  }
  const uint64_t AllocsBefore = Pool.chunkAllocs();
  Transaction Tx2(2, 0, 1, ir::MethodId(0), true);
  for (uint32_t I = 0; I < SlotsPerTx; ++I) {
    LogEntry E;
    E.Obj = I;
    Tx2.appendLog(E, &Cache);
  }
  EXPECT_GT(Pool.chunkRecycles(), 0u);
  EXPECT_EQ(Pool.chunkAllocs(), AllocsBefore)
      << "the second transaction must reuse the first one's chunks";
  uint32_t I = 0;
  for (LogCursor C(Tx2); !C.atEnd(); C.advance(), ++I)
    EXPECT_EQ(C.current().Obj, I) << "recycled chunks hold the new data";
}

//===----------------------------------------------------------------------===//
// Differential: arena vs legacy, elision on/off
//===----------------------------------------------------------------------===//

/// Canonical byte representation of a violation set (order-independent).
std::string serializeViolations(const std::vector<ViolationRecord> &Records) {
  std::vector<std::string> Lines;
  for (const ViolationRecord &R : Records) {
    std::ostringstream S;
    S << "blamed=" << R.Blamed << " cycle=";
    for (const CycleMember &M : R.Cycle)
      S << "(" << M.Tid << "," << M.Site << "," << M.TxId << ")";
    Lines.push_back(S.str());
  }
  std::sort(Lines.begin(), Lines.end());
  std::string Out;
  for (const std::string &L : Lines)
    Out += L + "\n";
  return Out;
}

struct PathConfig {
  bool LegacyLog;
  bool Elide;
  const char *Name;
};

constexpr PathConfig Paths[] = {
    {false, true, "arena+elide"},
    {false, false, "arena"},
    {true, true, "legacy+elide"},
    {true, false, "legacy"},
};

RunOutcome runPath(const ir::Program &P, const AtomicitySpec &Spec, Mode M,
                   const PathConfig &Path, uint64_t Seed,
                   const StaticTransactionInfo *Info = nullptr) {
  RunConfig Cfg;
  Cfg.M = M;
  Cfg.RunOpts.Deterministic = true;
  Cfg.RunOpts.ScheduleSeed = Seed;
  Cfg.LegacyLog = Path.LegacyLog;
  Cfg.ElideDuplicates = Path.Elide;
  Cfg.StaticInfo = Info;
  return runChecker(P, Spec, Cfg);
}

TEST(LogDifferentialTest, SingleRunViolationsAreByteIdenticalAcrossPaths) {
  ir::Program P = doubledRacyBank(3, 400, 2);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  bool AnyViolation = false;
  for (uint64_t Seed = 0; Seed < 6; ++Seed) {
    RunOutcome Ref =
        runPath(P, Spec, Mode::SingleRun, Paths[0], Seed);
    const std::string RefBytes = serializeViolations(Ref.Violations);
    AnyViolation |= !Ref.Violations.empty();
    EXPECT_EQ(Ref.stat("pcd.replay_stuck"), 0u);
    for (const PathConfig &Path :
         {Paths[1], Paths[2], Paths[3]}) {
      RunOutcome O = runPath(P, Spec, Mode::SingleRun, Path, Seed);
      EXPECT_EQ(serializeViolations(O.Violations), RefBytes)
          << Path.Name << " seed " << Seed;
      // Identical replay outcomes, not just identical reports: the same
      // SCCs reach PCD, every replay terminates, and the same cycles fall
      // out of the reconstructed PDG.
      EXPECT_EQ(O.stat("pcd.sccs_processed"), Ref.stat("pcd.sccs_processed"))
          << Path.Name << " seed " << Seed;
      EXPECT_EQ(O.stat("pcd.cycles"), Ref.stat("pcd.cycles"))
          << Path.Name << " seed " << Seed;
      EXPECT_EQ(O.stat("pcd.replay_stuck"), 0u)
          << Path.Name << " seed " << Seed;
    }
  }
  EXPECT_TRUE(AnyViolation) << "differential test never saw a violation";
}

TEST(LogDifferentialTest, MultiRunViolationsAreByteIdenticalAcrossPaths) {
  ir::Program P = doubledRacyBank(3, 400, 2);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  // First run (no logging) is path-independent; reuse its static info for
  // every second-run path.
  RunOutcome First = runPath(P, Spec, Mode::FirstRun, Paths[0], 3);
  ASSERT_TRUE(First.StaticInfo.MethodNames.count("deposit"));
  bool AnyViolation = false;
  for (uint64_t Seed = 0; Seed < 4; ++Seed) {
    RunOutcome Ref = runPath(P, Spec, Mode::SecondRun, Paths[0], Seed,
                             &First.StaticInfo);
    const std::string RefBytes = serializeViolations(Ref.Violations);
    AnyViolation |= !Ref.Violations.empty();
    for (const PathConfig &Path : {Paths[1], Paths[2], Paths[3]}) {
      RunOutcome O = runPath(P, Spec, Mode::SecondRun, Path, Seed,
                             &First.StaticInfo);
      EXPECT_EQ(serializeViolations(O.Violations), RefBytes)
          << Path.Name << " seed " << Seed;
      EXPECT_EQ(O.stat("pcd.cycles"), Ref.stat("pcd.cycles"))
          << Path.Name << " seed " << Seed;
      EXPECT_EQ(O.stat("pcd.replay_stuck"), 0u)
          << Path.Name << " seed " << Seed;
    }
  }
  EXPECT_TRUE(AnyViolation) << "differential test never saw a violation";
}

TEST(LogDifferentialTest, ElisionActuallyElidesOnBothPaths) {
  // Guard against the differential passing because elision silently became
  // a no-op: on the doubled workload both paths must elide something when
  // enabled and nothing when disabled.
  ir::Program P = doubledRacyBank(2, 200, 2);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  for (bool Legacy : {false, true}) {
    PathConfig On{Legacy, true, "on"};
    PathConfig Off{Legacy, false, "off"};
    RunOutcome WithElide = runPath(P, Spec, Mode::SingleRun, On, 1);
    RunOutcome NoElide = runPath(P, Spec, Mode::SingleRun, Off, 1);
    EXPECT_EQ(NoElide.stat("icd.log_entries_elided"), 0u);
    EXPECT_GT(NoElide.stat("icd.log_entries"),
              WithElide.stat("icd.log_entries"))
        << (Legacy ? "legacy" : "arena");
  }
}

TEST(LogDifferentialTest, ArenaPathReportsLoggingCounters) {
  ir::Program P = testprogs::racyBank(2, 300, 2);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  RunOutcome O = runPath(P, Spec, Mode::SingleRun, Paths[0], 2);
  EXPECT_GT(O.stat("logging.bytes_logged"), 0u);
  EXPECT_GT(O.stat("logging.chunk_allocs"), 0u);
  EXPECT_GT(O.stat("icd.log_entries"), 0u);
  // Legacy runs must not report arena counters.
  RunOutcome L = runPath(P, Spec, Mode::SingleRun, Paths[2], 2);
  EXPECT_EQ(L.stat("logging.chunk_allocs"), 0u);
  EXPECT_GT(L.stat("logging.bytes_logged"), 0u);
}

} // namespace
