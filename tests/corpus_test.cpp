//===- tests/corpus_test.cpp - Witness-corpus regression replay -----------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays every committed witness under tests/corpus/ through the full
/// engine matrix (all DoubleChecker configs, Velodrome, the vector-clock
/// engine) and the ground-truth oracle on every CTest run. The corpus holds
/// (program, schedule) shapes with history — pairs that once exposed a
/// divergence (e.g. the injected unsound ICD filter) or that pin down an
/// agreed verdict — so any engine change that breaks agreement on them
/// fails here with the exact witness file to replay by hand:
///
///   dcfuzz --replay tests/corpus/<name>.witness
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "tools/FuzzLib.h"

using namespace dc;

namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(DC_CORPUS_DIR))
    if (Entry.is_regular_file() &&
        Entry.path().extension() == ".witness")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

TEST(WitnessCorpus, HasCommittedWitnesses) {
  EXPECT_GE(corpusFiles().size(), 3u)
      << "the committed corpus under " << DC_CORPUS_DIR << " went missing";
}

TEST(WitnessCorpus, EveryWitnessReplaysClean) {
  for (const std::string &Path : corpusFiles()) {
    SCOPED_TRACE(Path);
    fuzz::Witness W;
    std::string Error;
    ASSERT_TRUE(fuzz::readWitness(Path, W, Error)) << Error;
    std::optional<std::string> Divergence = fuzz::replayWitness(W);
    EXPECT_FALSE(Divergence.has_value())
        << "corpus witness diverged: " << *Divergence;
  }
}

} // namespace
