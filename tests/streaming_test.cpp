//===- tests/streaming_test.cpp - Streaming service-mode tests ------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Service-mode contract tests (DESIGN.md §15): retirement windows preserve
/// batch verdicts, the StreamingSession emits a well-formed NDJSON event
/// stream whose counters match the run, health snapshots carry a consistent
/// point-in-time view, and a wedged window flush surfaces as the structured
/// WindowFlushStall fault — degrading, never aborting or hanging.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/Checker.h"
#include "rt/StreamingSession.h"
#include "support/ChromeTrace.h"
#include "tests/TestPrograms.h"

using namespace dc;
using namespace dc::core;

namespace {

RunConfig windowedCfg(Mode M, uint32_t WindowTxs, uint64_t Seed = 7) {
  RunConfig Cfg;
  Cfg.M = M;
  Cfg.RunOpts.Deterministic = true;
  Cfg.RunOpts.ScheduleSeed = Seed;
  Cfg.WindowTxs = WindowTxs;
  return Cfg;
}

std::vector<std::string> lines(const std::string &S) {
  std::vector<std::string> Out;
  std::istringstream In(S);
  for (std::string L; std::getline(In, L);)
    if (!L.empty())
      Out.push_back(L);
  return Out;
}

TEST(StreamingWindows, RacyBankVerdictSurvivesTinyWindows) {
  ir::Program P = testprogs::racyBank(2, 40);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  for (Mode M : {Mode::SingleRun, Mode::VectorClock}) {
    RunOutcome Batch = runChecker(P, Spec, windowedCfg(M, 0));
    RunOutcome Windowed = runChecker(P, Spec, windowedCfg(M, 2));
    ASSERT_FALSE(Windowed.Result.Aborted);
    EXPECT_EQ(Windowed.Result.Fault, rt::CheckerFault::None);
    EXPECT_EQ(Windowed.BlamedMethods, Batch.BlamedMethods) << toString(M);
    EXPECT_EQ(Windowed.PotentialMethods, Batch.PotentialMethods)
        << toString(M);
    const char *Stat = M == Mode::VectorClock ? "vc.windows_flushed"
                                              : "governor.windows_flushed";
    EXPECT_GT(Windowed.stat(Stat), 10u)
        << toString(M) << ": 80+ transactions at window cadence 2";
  }
}

TEST(StreamingWindows, SerializableProgramStaysCleanUnderWindows) {
  ir::Program P = testprogs::disjointBank(2, 40);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  for (Mode M : {Mode::SingleRun, Mode::VectorClock}) {
    RunOutcome O = runChecker(P, Spec, windowedCfg(M, 2));
    ASSERT_FALSE(O.Result.Aborted);
    EXPECT_TRUE(O.Violations.empty()) << toString(M);
    EXPECT_TRUE(O.PotentialMethods.empty())
        << toString(M) << ": windows must retire soundly, not degrade "
        << "quiesced transactions";
  }
}

TEST(StreamingSessionTest, NdjsonStreamIsWellFormedAndCountsMatch) {
  ir::Program P = testprogs::racyBank(2, 40);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  std::ostringstream Ndjson;
  rt::StreamingSession::Options SOpts;
  SOpts.Out = &Ndjson;
  SOpts.MethodName = [&P](ir::MethodId Id) { return P.Methods[Id].Name; };
  rt::StreamingSession Session(std::move(SOpts));
  RunConfig Cfg = windowedCfg(Mode::SingleRun, 4);
  Cfg.Session = &Session;
  RunOutcome O = runChecker(P, Spec, Cfg);
  Session.finish(O.BlamedMethods, O.PotentialMethods,
                 O.Violations.size(), O.Result.Fault,
                 O.BlamedMethods.empty() ? 0 : 1);

  EXPECT_EQ(Session.violationsStreamed(), O.Violations.size())
      << "every confirmed record must be streamed, in report order";
  EXPECT_EQ(Session.windowsStreamed(), O.stat("governor.windows_flushed"));

  std::vector<std::string> Events = lines(Ndjson.str());
  ASSERT_FALSE(Events.empty());
  uint64_t Violations = 0, Windows = 0, Health = 0, Summaries = 0;
  for (const std::string &L : Events) {
    // Well-formed enough to be machine-tailed: one object per line, with
    // the event discriminator first.
    EXPECT_EQ(L.front(), '{');
    EXPECT_EQ(L.back(), '}');
    ASSERT_EQ(L.rfind("{\"event\":\"", 0), 0u) << L;
    Violations += L.rfind("{\"event\":\"violation\"", 0) == 0;
    Windows += L.rfind("{\"event\":\"window\"", 0) == 0;
    Health += L.rfind("{\"event\":\"health\"", 0) == 0;
    Summaries += L.rfind("{\"event\":\"summary\"", 0) == 0;
  }
  EXPECT_EQ(Violations, Session.violationsStreamed());
  EXPECT_EQ(Windows, Session.windowsStreamed());
  EXPECT_GT(Health, 0u) << "HealthEveryWindows defaults to every window";
  EXPECT_EQ(Summaries, 1u);
  // The summary is the last event and carries the final verdict.
  EXPECT_NE(Events.back().find("\"event\":\"summary\""), std::string::npos);
  EXPECT_NE(Events.back().find("\"exit_code\":1"), std::string::npos);
  EXPECT_NE(Events.back().find("deposit"), std::string::npos)
      << "blamed method names resolve through Options::MethodName";
  // Monotonic seq: the stream is totally ordered for downstream consumers.
  int64_t LastSeq = -1;
  for (const std::string &L : Events) {
    size_t At = L.find("\"seq\":");
    ASSERT_NE(At, std::string::npos) << L;
    int64_t Seq = std::strtoll(L.c_str() + At + 6, nullptr, 10);
    EXPECT_GT(Seq, LastSeq) << L;
    LastSeq = Seq;
  }
}

TEST(StreamingSessionTest, HealthEventsCarryLivenessCounters) {
  ir::Program P = testprogs::racyBank(2, 40);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  std::ostringstream Ndjson;
  rt::StreamingSession::Options SOpts;
  SOpts.Out = &Ndjson;
  rt::StreamingSession Session(std::move(SOpts));
  RunConfig Cfg = windowedCfg(Mode::SingleRun, 4);
  Cfg.Session = &Session;
  runChecker(P, Spec, Cfg);
  bool SawHealth = false;
  for (const std::string &L : lines(Ndjson.str())) {
    if (L.rfind("{\"event\":\"health\"", 0) != 0)
      continue;
    SawHealth = true;
    // The snapshot-consistent counters the soak and any dashboard key on.
    for (const char *Field :
         {"\"window\":", "\"finished_txs\":", "\"live_txs\":",
          "\"retired_txs\":", "\"pinned_txs\":", "\"stats_stable\":"})
      EXPECT_NE(L.find(Field), std::string::npos)
          << "health event missing " << Field << ": " << L;
  }
  EXPECT_TRUE(SawHealth);
}

TEST(StreamingFaults, WedgedWindowFlushDegradesStructurally) {
  // A window flush that cannot finish (injected stall held past the PCD
  // watchdog budget) must surface as the structured WindowFlushStall fault
  // with a diagnosis — and the run must still terminate with its verdict
  // intact, not abort. This is the service-mode liveness contract: a stuck
  // component inside one window becomes a fault event, never a hang.
  ir::Program P = testprogs::racyBank(2, 40);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  std::ostringstream Ndjson;
  rt::StreamingSession::Options SOpts;
  SOpts.Out = &Ndjson;
  rt::StreamingSession Session(std::move(SOpts));
  RunConfig Cfg = windowedCfg(Mode::SingleRun, 8);
  Cfg.Session = &Session;
  Cfg.Faults.WindowStallAt = 1;
  Cfg.PcdTimeoutMs = 100;
  RunOutcome O = runChecker(P, Spec, Cfg);
  EXPECT_FALSE(O.Result.Aborted)
      << "a wedged flush degrades; it must not abort the run";
  EXPECT_EQ(O.Result.Fault, rt::CheckerFault::WindowFlushStall);
  EXPECT_FALSE(O.Result.FaultDiagnosis.empty());
  EXPECT_GT(O.stat("governor.windows_flushed"), 1u)
      << "windows must keep flushing after the faulted one";
  // The fault was streamed live.
  bool SawFault = false;
  for (const std::string &L : lines(Ndjson.str()))
    SawFault |= L.rfind("{\"event\":\"fault\"", 0) == 0 &&
                L.find("window-flush-stall") != std::string::npos;
  EXPECT_TRUE(SawFault);
}

TEST(StreamingTrace, TimelineExportRecordsWindowInstants) {
  ir::Program P = testprogs::racyBank(2, 30);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  TraceRecorder Trace;
  RunConfig Cfg = windowedCfg(Mode::SingleRun, 4);
  Cfg.Trace = &Trace;
  RunOutcome O = runChecker(P, Spec, Cfg);
  ASSERT_FALSE(O.Result.Aborted);
  std::ostringstream Json;
  Trace.writeJson(Json);
  const std::string Out = Json.str();
  EXPECT_NE(Out.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(Out.find("window-flush"), std::string::npos)
      << "chrome://tracing export must carry the window-boundary instants";
}

} // namespace
