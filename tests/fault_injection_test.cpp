//===- tests/fault_injection_test.cpp - Degradation ladder under faults ---===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests for the overload/fault tolerance machinery (DESIGN.md
/// §10): deterministic FaultPlan injections must convert every modelled
/// failure — allocation failure, a stalled or dying PCD worker, a
/// saturated PCD queue, an oversized SCC, a breached resource budget —
/// into *sound degradation* (potential violations + structured
/// RunResult), never a hang, crash, or silently missed violation.
///
/// Soundness is checked against a fault-free baseline on the same
/// deterministic schedule: whatever the healthy run blames, the degraded
/// run must still report, precisely or as a potential violation.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/Checker.h"
#include "tests/TestPrograms.h"

using namespace dc;
using namespace dc::core;

namespace {

RunConfig detCfg(uint64_t Seed) {
  RunConfig Cfg;
  Cfg.M = Mode::SingleRun;
  Cfg.RunOpts.Deterministic = true;
  Cfg.RunOpts.ScheduleSeed = Seed;
  return Cfg;
}

/// Every method the healthy baseline blames must show up in the degraded
/// run's report — precisely or as a potential violation.
::testing::AssertionResult covers(const RunOutcome &Degraded,
                                  const RunOutcome &Baseline) {
  for (const std::string &M : Baseline.BlamedMethods)
    if (Degraded.BlamedMethods.count(M) == 0 &&
        Degraded.PotentialMethods.count(M) == 0)
      return ::testing::AssertionFailure()
             << "degraded run lost '" << M << "' (blamed fault-free)";
  return ::testing::AssertionSuccess();
}

bool hasAction(const std::vector<rt::DegradationEvent> &Events,
               rt::DegradationEvent::Action A) {
  for (const rt::DegradationEvent &E : Events)
    if (E.A == A)
      return true;
  return false;
}

/// The program every test degrades: racy deposits guarantee real cycles,
/// so the baseline blames `deposit` and the fault paths all have SCCs to
/// chew on.
ir::Program racy() { return testprogs::racyBank(2, 120, 2); }

TEST(FaultInjection, AllocFailShedsLoggingSoundly) {
  ir::Program P = racy();
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  RunOutcome Baseline = runChecker(P, Spec, detCfg(5));
  ASSERT_FALSE(Baseline.Result.Aborted);
  ASSERT_FALSE(Baseline.BlamedMethods.empty());

  RunConfig Cfg = detCfg(5);
  Cfg.Faults.AllocFailAt = 1; // Very first chunk refill fails.
  RunOutcome O = runChecker(P, Spec, Cfg);
  ASSERT_FALSE(O.Result.Aborted);
  EXPECT_EQ(O.Result.Fault, rt::CheckerFault::None);
  // The refused refill must surface as a structured shed event and a
  // counter, not as a crash or a silently truncated log.
  EXPECT_TRUE(hasAction(O.Result.Degradation,
                        rt::DegradationEvent::Action::ShedLogging));
  EXPECT_GE(O.stat("degradation.sheds"), 1u);
  EXPECT_GE(O.stat("logging.refills_refused"), 1u);
  EXPECT_TRUE(covers(O, Baseline));
}

TEST(FaultInjection, OversizedSccDegradesToPotential) {
  // Satellite regression: SCCs above MaxSccTxsForPcd used to be skipped
  // silently (an unsound hole). They must now surface as potential
  // violations. MaxSccTxs=1 degrades every multi-transaction SCC.
  ir::Program P = racy();
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  RunOutcome Baseline = runChecker(P, Spec, detCfg(7));
  ASSERT_FALSE(Baseline.BlamedMethods.empty());

  RunConfig Cfg = detCfg(7);
  Cfg.MaxSccTxs = 1;
  RunOutcome O = runChecker(P, Spec, Cfg);
  ASSERT_FALSE(O.Result.Aborted);
  EXPECT_EQ(O.Result.Fault, rt::CheckerFault::None);
  EXPECT_GE(O.stat("pcd.sccs_degraded"), 1u);
  EXPECT_TRUE(hasAction(O.Result.Degradation,
                        rt::DegradationEvent::Action::PotentialOnly));
  EXPECT_FALSE(O.PotentialMethods.empty());
  EXPECT_TRUE(covers(O, Baseline));
}

TEST(FaultInjection, WorkerStallConvertsToFaultWithinTimeout) {
  // Acceptance criterion: a permanently stalled PCD worker becomes a
  // structured CheckerFault within the configured timeout — the run
  // terminates, it does not hang or abort.
  ir::Program P = racy();
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  RunOutcome Baseline = runChecker(P, Spec, detCfg(3));
  ASSERT_FALSE(Baseline.BlamedMethods.empty());

  RunConfig Cfg = detCfg(3);
  Cfg.ParallelPcd = true;
  Cfg.Faults.WorkerStallAt = 1; // Whoever dequeues SCC #1 parks forever.
  Cfg.PcdTimeoutMs = 100;
  RunOutcome O = runChecker(P, Spec, Cfg);
  ASSERT_FALSE(O.Result.Aborted);
  EXPECT_EQ(O.Result.Fault, rt::CheckerFault::PcdWorkerStall)
      << "diagnosis: " << O.Result.FaultDiagnosis;
  EXPECT_FALSE(O.Result.FaultDiagnosis.empty());
  EXPECT_GE(O.stat("faults.detected"), 1u);
  // The stalled SCC was degraded before the park, so coverage holds.
  EXPECT_TRUE(covers(O, Baseline));
}

TEST(FaultInjection, WorkerDeathIsContainedAndSound) {
  ir::Program P = racy();
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  RunOutcome Baseline = runChecker(P, Spec, detCfg(9));
  ASSERT_FALSE(Baseline.BlamedMethods.empty());

  RunConfig Cfg = detCfg(9);
  Cfg.ParallelPcd = true;
  Cfg.Faults.WorkerDieAt = 1; // Whoever dequeues SCC #1 throws mid-replay.
  RunOutcome O = runChecker(P, Spec, Cfg);
  ASSERT_FALSE(O.Result.Aborted);
  EXPECT_EQ(O.Result.Fault, rt::CheckerFault::None);
  EXPECT_GE(O.stat("pcd.worker_exceptions"), 1u);
  // The poisoned SCC degrades; the worker survives and later SCCs still
  // replay precisely, so the blamed set is usually untouched — but the
  // guarantee we test is coverage.
  EXPECT_TRUE(covers(O, Baseline));
}

TEST(FaultInjection, DestructionUnderSaturatedQueueTerminates) {
  // Satellite: tearing down the PcdPool while its bounded queue is
  // saturated (workers held, queue depth 1) must terminate within the
  // stall timeout with every undelivered SCC degraded — run this under
  // TSan to check the join-or-detach teardown. The enqueue-side timeout
  // records PcdQueueStall.
  ir::Program P = testprogs::racyBank(2, 60, 2);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  RunOutcome Baseline = runChecker(P, Spec, detCfg(11));
  ASSERT_FALSE(Baseline.BlamedMethods.empty());

  RunConfig Cfg = detCfg(11);
  Cfg.ParallelPcd = true;
  Cfg.PcdQueueDepth = 1;
  // Generous enough that sanitizer slowdown cannot starve the gate slot
  // into a spurious GateStall, small enough to keep the test quick.
  Cfg.PcdTimeoutMs = 100;
  Cfg.Faults.QueueHoldUntil = ~0ull; // Workers never dequeue.
  RunOutcome O = runChecker(P, Spec, Cfg);
  ASSERT_FALSE(O.Result.Aborted);
  // At least one SCC beyond the first cannot be handed off, so the timed
  // enqueue path must have fired (and everything must still be reported).
  if (O.stat("pcd.sccs_queued") + O.stat("pcd.enqueue_timeouts") > 1) {
    EXPECT_GE(O.stat("pcd.enqueue_timeouts"), 1u);
    EXPECT_EQ(O.Result.Fault, rt::CheckerFault::PcdQueueStall);
  }
  EXPECT_TRUE(covers(O, Baseline));
}

TEST(FaultInjection, LiveTxBudgetForcesEagerCollectionWithoutChangingBlame) {
  // Governor path: a tiny live-transaction budget keeps the checker under
  // sustained pressure. Pressure forces eager collection, which must not
  // change what gets blamed (collection only sweeps transactions that can
  // no longer join a cycle).
  ir::Program P = racy();
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  RunOutcome Baseline = runChecker(P, Spec, detCfg(13));
  ASSERT_FALSE(Baseline.BlamedMethods.empty());

  RunConfig Cfg = detCfg(13);
  Cfg.MaxLiveTxs = 4;
  RunOutcome O = runChecker(P, Spec, Cfg);
  ASSERT_FALSE(O.Result.Aborted);
  EXPECT_EQ(O.Result.Fault, rt::CheckerFault::None);
  EXPECT_GE(O.stat("governor.live_txs_peak"), 4u);
  EXPECT_EQ(O.BlamedMethods, Baseline.BlamedMethods);
  EXPECT_TRUE(covers(O, Baseline));
}

TEST(FaultInjection, LiveTxBackpressureWaitsAreBoundedAndSound) {
  // Tx-boundary backpressure: under live-tx pressure with a slowed
  // collector, transaction begin lends the collector its cycles (a
  // bounded wait) instead of letting the live graph snowball. The wait
  // must show up in the stats, terminate (liveness must not depend on the
  // collector making progress), and leave blame untouched.
  ir::Program P = racy();
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  RunOutcome Baseline = runChecker(P, Spec, detCfg(13));
  ASSERT_FALSE(Baseline.BlamedMethods.empty());

  RunConfig Cfg = detCfg(13);
  Cfg.MaxLiveTxs = 4;
  Cfg.Faults.CollectorDelayMs = 5; // Far below the 10 s watchdog default.
  RunOutcome O = runChecker(P, Spec, Cfg);
  ASSERT_FALSE(O.Result.Aborted);
  EXPECT_EQ(O.Result.Fault, rt::CheckerFault::None);
  EXPECT_GE(O.stat("governor.tx_backpressure_waits"), 1u);
  EXPECT_EQ(O.BlamedMethods, Baseline.BlamedMethods);
  EXPECT_TRUE(covers(O, Baseline));
}

TEST(FaultInjection, CollectorDelayAboveTimeoutTripsWatchdog) {
  ir::Program P = racy();
  AtomicitySpec Spec = AtomicitySpec::initial(P);

  RunConfig Cfg = detCfg(17);
  Cfg.MaxLiveTxs = 4; // Keeps eager-collection requests flowing.
  // 200 ms of tolerated silence keeps a loaded CI host from reading its
  // own scheduling hiccups as a stalled gate; the injected delay stays
  // far above it, so the collector verdict is unchanged.
  Cfg.PcdTimeoutMs = 200;
  Cfg.Faults.CollectorDelayMs = 800;
  RunOutcome O = runChecker(P, Spec, Cfg);
  ASSERT_FALSE(O.Result.Aborted);
  EXPECT_EQ(O.Result.Fault, rt::CheckerFault::CollectorStall)
      << "diagnosis: " << O.Result.FaultDiagnosis;
  EXPECT_FALSE(O.Result.FaultDiagnosis.empty());
}

TEST(FaultInjection, DegradationReportIsDeterministic) {
  // Same program, same schedule seed, same FaultPlan → bit-identical
  // structured degradation report and violation sets. This is what lets
  // dcfuzz witnesses carry a '# fault-plan:' line that reproduces.
  ir::Program P = racy();
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  RunConfig Cfg = detCfg(21);
  Cfg.Faults.AllocFailAt = 2;
  Cfg.MaxSccTxs = 2;
  RunOutcome A = runChecker(P, Spec, Cfg);
  RunOutcome B = runChecker(P, Spec, Cfg);
  ASSERT_FALSE(A.Result.Aborted);
  ASSERT_FALSE(B.Result.Aborted);
  EXPECT_EQ(A.Result.Degradation, B.Result.Degradation);
  EXPECT_EQ(A.BlamedMethods, B.BlamedMethods);
  EXPECT_EQ(A.PotentialMethods, B.PotentialMethods);
}

} // namespace
