//===- tests/rt_test.cpp - dc_rt unit tests -------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>

#include "ir/Builder.h"
#include "rt/Runtime.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::rt;

namespace {

TEST(HeapTest, LayoutAndAddressing) {
  ProgramBuilder B("heap");
  PoolId PoolA = B.addPool("a", 2, 3); // Objects 0,1; fields+sync = 4 each.
  PoolId PoolB = B.addPool("b", 1, 1); // Object 2.
  MethodId Main = B.beginMethod("main", false).work(1).endMethod();
  B.addThread(Main);
  Program P = B.build();
  Heap H(P, /*NumThreads=*/2);

  EXPECT_EQ(H.objectOf(PoolA, 0), 0u);
  EXPECT_EQ(H.objectOf(PoolA, 1), 1u);
  EXPECT_EQ(H.objectOf(PoolA, 5), 1u) << "index reduces modulo pool size";
  EXPECT_EQ(H.objectOf(PoolB, 0), 2u);

  EXPECT_EQ(H.fieldAddr(0, 0), 0u);
  EXPECT_EQ(H.fieldAddr(0, 2), 2u);
  EXPECT_EQ(H.fieldAddr(0, 3), 0u) << "field reduces modulo field count";
  EXPECT_EQ(H.syncAddr(0), 3u);
  EXPECT_EQ(H.fieldAddr(1, 0), 4u);
  EXPECT_EQ(H.syncAddr(2), 9u);

  // Thread objects come last, one sync slot each.
  EXPECT_EQ(H.threadObject(0), 3u);
  EXPECT_EQ(H.threadObject(1), 4u);
  EXPECT_EQ(H.numFieldAddrs(), 12u);

  EXPECT_EQ(H.objectOfField(5), 1u);
  EXPECT_EQ(H.objectOfField(8), 2u);

  H.store(5, 42);
  EXPECT_EQ(H.load(5), 42);
}

/// Counts every hook invocation.
class CountingChecker : public CheckerRuntime {
public:
  std::atomic<uint64_t> Accesses{0}, Reads{0}, Writes{0}, Syncs{0},
      TxBegins{0}, TxEnds{0}, Started{0}, Exited{0}, SafePoints{0},
      Blocks{0}, Unblocks{0};

  void threadStarted(ThreadContext &TC) override { ++Started; }
  void threadExiting(ThreadContext &TC) override { ++Exited; }
  void txBegin(ThreadContext &TC, const ir::Method &M) override {
    ++TxBegins;
  }
  void txEnd(ThreadContext &TC, const ir::Method &M) override { ++TxEnds; }
  void instrumentedAccess(ThreadContext &TC, const AccessInfo &Info,
                          function_ref<void()> Access) override {
    ++Accesses;
    (Info.IsWrite ? Writes : Reads)++;
    Access();
  }
  void syncOp(ThreadContext &TC, const AccessInfo &Info,
              SyncKind Kind) override {
    ++Syncs;
  }
  void safePoint(ThreadContext &TC) override { ++SafePoints; }
  void aboutToBlock(ThreadContext &TC) override { ++Blocks; }
  void unblocked(ThreadContext &TC) override { ++Unblocks; }
};

Program forkJoinProgram(uint32_t Loops) {
  ProgramBuilder B("fj");
  PoolId Pool = B.addPool("data", 4, 2);
  MethodId Work = B.beginMethod("work", true)
                      .read(Pool, idxThread(1, 0, 4), 0u)
                      .write(Pool, idxThread(1, 0, 4), 0u)
                      .endMethod();
  MethodId Worker = B.beginMethod("worker", false)
                        .beginLoop(idxConst(Loops))
                        .call(Work)
                        .endLoop()
                        .endMethod();
  MethodId Main = B.beginMethod("main", false)
                      .forkThread(idxConst(1))
                      .forkThread(idxConst(2))
                      .joinThread(idxConst(1))
                      .joinThread(idxConst(2))
                      .endMethod();
  B.addThread(Main);
  B.addThread(Worker);
  B.addThread(Worker);
  // Mark accesses instrumented and the methods transactional so hooks fire.
  Program P = B.build();
  for (Method &M : P.Methods)
    if (M.Name == "work") {
      M.StartsTransaction = true;
      for (Instr &I : M.Body)
        I.Flags = IF_OctetBarrier;
    }
  return P;
}

TEST(RuntimeTest, HooksFireWithExpectedCounts) {
  Program P = forkJoinProgram(10);
  CountingChecker Checker;
  Runtime RT(P, &Checker);
  RunResult R = RT.run();
  EXPECT_FALSE(R.Aborted);
  EXPECT_EQ(Checker.Started.load(), 3u);
  EXPECT_EQ(Checker.Exited.load(), 3u);
  EXPECT_EQ(Checker.TxBegins.load(), 20u);
  EXPECT_EQ(Checker.TxEnds.load(), 20u);
  EXPECT_EQ(Checker.Accesses.load(), 40u);
  EXPECT_EQ(Checker.Reads.load(), 20u);
  EXPECT_EQ(Checker.Writes.load(), 20u);
  // Sync events: 3x thread begin/end + 2 forks + 2 joins = 10.
  EXPECT_EQ(Checker.Syncs.load(), 10u);
  EXPECT_EQ(Checker.Blocks.load(), Checker.Unblocks.load());
  EXPECT_GT(Checker.SafePoints.load(), 0u);
}

TEST(RuntimeTest, DeterministicModeSameSeedSameInterleaving) {
  // The observable heap state of a racy program depends on the
  // interleaving; identical seeds must produce identical results.
  ProgramBuilder B("det");
  PoolId Pool = B.addPool("shared", 1, 1);
  MethodId Worker = B.beginMethod("worker", false)
                        .beginLoop(idxConst(50))
                        .read(Pool, idxConst(0), 0u)
                        .write(Pool, idxConst(0), 0u)
                        .endLoop()
                        .endMethod();
  MethodId Main = B.beginMethod("main", false)
                      .forkThread(idxConst(1))
                      .forkThread(idxConst(2))
                      .joinThread(idxConst(1))
                      .joinThread(idxConst(2))
                      .read(Pool, idxConst(0), 0u)
                      .endMethod();
  B.addThread(Main);
  B.addThread(Worker);
  B.addThread(Worker);
  Program P = B.build();

  auto FinalValue = [&](uint64_t Seed) {
    RunOptions Opts;
    Opts.Deterministic = true;
    Opts.ScheduleSeed = Seed;
    Runtime RT(P, nullptr, Opts);
    RT.run();
    return RT.heap().load(0);
  };
  EXPECT_EQ(FinalValue(5), FinalValue(5));
  EXPECT_EQ(FinalValue(9), FinalValue(9));
}

TEST(RuntimeTest, ExplicitScheduleIsHonored) {
  // Threads 1 and 2 each write their tid-derived value once; with an
  // explicit schedule running thread 2 last, its value must win.
  ProgramBuilder B("sched");
  PoolId Pool = B.addPool("cell", 1, 1);
  PoolId Seeds = B.addPool("seeds", 3, 1);
  // Each writer loads a thread-distinct seed value into its accumulator
  // and stores it to the shared cell, so the final value reveals order.
  MethodId Writer = B.beginMethod("writer", false)
                        .read(Seeds, idxThread(), 0u)
                        .write(Pool, idxConst(0), 0u)
                        .endMethod();
  MethodId Main = B.beginMethod("main", false)
                      .write(Seeds, idxConst(1), 0u) // = 1
                      .read(Seeds, idxConst(1), 0u)  // acc = 1
                      .write(Seeds, idxConst(2), 0u) // = 2
                      .forkThread(idxConst(1))
                      .forkThread(idxConst(2))
                      .joinThread(idxConst(1))
                      .joinThread(idxConst(2))
                      .endMethod();
  B.addThread(Main);
  B.addThread(Writer);
  B.addThread(Writer);
  Program P = B.build();

  auto Run = [&](std::vector<uint32_t> Schedule) {
    RunOptions Opts;
    Opts.Deterministic = true;
    Opts.ExplicitSchedule = std::move(Schedule);
    Opts.ScheduleSeed = 0;
    Runtime RT(P, nullptr, Opts);
    RT.run();
    return RT.heap().load(0);
  };
  // Run main past the forks, then t1 fully, then t2 fully; and the mirror
  // image. The last writer's seed-derived value wins.
  int64_t V12 =
      Run({0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 0, 0, 0});
  int64_t V21 =
      Run({0, 0, 0, 0, 0, 0, 2, 2, 2, 2, 1, 1, 1, 1, 0, 0, 0});
  EXPECT_NE(V12, V21);
}

TEST(RuntimeTest, MonitorsAreReentrantAndExclusive) {
  ProgramBuilder B("mon");
  PoolId Lock = B.addPool("lock", 1, 1);
  PoolId Data = B.addPool("data", 1, 1);
  MethodId Worker = B.beginMethod("worker", false)
                        .beginLoop(idxConst(200))
                        .acquire(Lock, idxConst(0))
                        .acquire(Lock, idxConst(0)) // Reentrant.
                        .read(Data, idxConst(0), 0u)
                        .write(Data, idxConst(0), 0u)
                        .release(Lock, idxConst(0))
                        .release(Lock, idxConst(0))
                        .endLoop()
                        .endMethod();
  MethodId Main = B.beginMethod("main", false)
                      .forkThread(idxConst(1))
                      .forkThread(idxConst(2))
                      .joinThread(idxConst(1))
                      .joinThread(idxConst(2))
                      .endMethod();
  B.addThread(Main);
  B.addThread(Worker);
  B.addThread(Worker);
  Program P = B.build();
  Runtime RT(P, nullptr);
  RunResult R = RT.run();
  EXPECT_FALSE(R.Aborted);
}

TEST(RuntimeTest, WaitNotifyHandshake) {
  // Thread 1 waits; main notifies after forking. Must terminate.
  ProgramBuilder B("wn");
  PoolId Cond = B.addPool("cond", 1, 1);
  MethodId Waiter = B.beginMethod("waiter", false)
                        .acquire(Cond, idxConst(0))
                        .wait(Cond, idxConst(0))
                        .release(Cond, idxConst(0))
                        .endMethod();
  MethodId Main = B.beginMethod("main", false)
                      .forkThread(idxConst(1))
                      .work(2000) // Give the waiter time to park (free mode).
                      .acquire(Cond, idxConst(0))
                      .notifyAll(Cond, idxConst(0))
                      .release(Cond, idxConst(0))
                      .joinThread(idxConst(1))
                      .endMethod();
  B.addThread(Main);
  B.addThread(Waiter);
  Program P = B.build();

  {
    Runtime RT(P, nullptr);
    EXPECT_FALSE(RT.run().Aborted);
  }
  {
    RunOptions Opts;
    Opts.Deterministic = true;
    Opts.ScheduleSeed = 3;
    Runtime RT(P, nullptr, Opts);
    EXPECT_FALSE(RT.run().Aborted);
  }
}

TEST(RuntimeTest, DeadlockAbortsViaStepBudget) {
  // Classic lock-order deadlock; the step budget must fire (threads
  // busy-retry under the deterministic scheduler, consuming steps).
  ProgramBuilder B("dead");
  PoolId Locks = B.addPool("locks", 2, 1);
  MethodId W1 = B.beginMethod("w1", false)
                    .acquire(Locks, idxConst(0))
                    .work(50)
                    .acquire(Locks, idxConst(1))
                    .release(Locks, idxConst(1))
                    .release(Locks, idxConst(0))
                    .endMethod();
  MethodId W2 = B.beginMethod("w2", false)
                    .acquire(Locks, idxConst(1))
                    .work(50)
                    .acquire(Locks, idxConst(0))
                    .release(Locks, idxConst(0))
                    .release(Locks, idxConst(1))
                    .endMethod();
  MethodId Main = B.beginMethod("main", false)
                      .forkThread(idxConst(1))
                      .forkThread(idxConst(2))
                      .joinThread(idxConst(1))
                      .joinThread(idxConst(2))
                      .endMethod();
  B.addThread(Main);
  B.addThread(W1);
  B.addThread(W2);
  Program P = B.build();

  RunOptions Opts;
  Opts.Deterministic = true;
  // Schedule engineered to interleave the two acquires: each thread gets a
  // couple of steps, enough to take its first lock.
  Opts.ExplicitSchedule = {0, 0, 0, 1, 1, 2, 2};
  Opts.ScheduleSeed = 1;
  Opts.MaxSteps = 20000;
  Runtime RT(P, nullptr, Opts);
  RunResult R = RT.run();
  EXPECT_TRUE(R.Aborted) << "deadlock must trip the step budget";
}

TEST(RuntimeTest, StepsAreCounted) {
  Program P = forkJoinProgram(5);
  Runtime RT(P, nullptr);
  RunResult R = RT.run();
  EXPECT_GT(R.Steps, 30u);
  EXPECT_GT(R.WallSeconds, 0.0);
}

TEST(RuntimeTest, AccumulatorCarriesLoadedValues) {
  // main writes 123 to a cell... accumulator semantics: write stores
  // Accumulator+1; read XORs the loaded value in. Verify a write-then-read
  // round trip changes the accumulator-derived stored value.
  ProgramBuilder B("acc");
  PoolId Pool = B.addPool("p", 1, 2);
  MethodId Main = B.beginMethod("main", false)
                      .write(Pool, idxConst(0), 0u) // stores acc+1 = 1
                      .read(Pool, idxConst(0), 0u)  // acc ^= 1
                      .write(Pool, idxConst(0), 1u) // stores acc+1
                      .endMethod();
  B.addThread(Main);
  Program P = B.build();
  Runtime RT(P, nullptr);
  RT.run();
  EXPECT_EQ(RT.heap().load(0), 1);
  EXPECT_EQ(RT.heap().load(1), 2); // (0 ^ 1) + 1.
}

} // namespace
