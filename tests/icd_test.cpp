//===- tests/icd_test.cpp - Incremental cycle detection tests -------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the incremental online cycle detector (DESIGN.md §12), at
/// three levels:
///
///  1. *Unit*: hand-built transaction graphs driven straight through
///     IncrementalCycleDetector — fast-path edges, reorders, cycle merges,
///     nested enlargement, the last-member-retires claim discipline, the
///     region-cap soundness valve, and collector unlinking.
///  2. *Equivalence*: on identical deterministic schedules, the default
///     incremental mode and the batched Tarjan escape hatch must produce
///     identical blamed/potential method sets — on built-in workloads, on
///     random programs, and under a delayed collector racing live order
///     maintenance. Raw component *counts* may legitimately differ: a
///     batched pass that lands between an inner cycle completing and an
///     outer cycle enlarging it claims the inner SCC and later its
///     superset, where the incremental detector coalesces both into one
///     maximal claim (or vice versa, depending on pass timing). The
///     method sets are the paper's unit of report and must be bit-equal.
///  3. *Concurrency*: real threads hammering shared objects while a
///     reorder hook asserts the reordering thread only ever holds the
///     stripes its edge-writer path already took — never the full stripe
///     set (the whole point of retiring the stop-the-world pass); run
///     under TSan in CI.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "analysis/DoubleChecker.h"
#include "analysis/IncrementalCycles.h"
#include "core/Checker.h"
#include "ir/Builder.h"
#include "rt/Runtime.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::analysis;

namespace {

//===----------------------------------------------------------------------===//
// Unit tests: the detector alone, on hand-built graphs
//===----------------------------------------------------------------------===//

struct DetectorHarness {
  explicit DetectorHarness(uint32_t MaxRegion = 1u << 20) {
    IncrementalCycleDetector::Options O;
    O.MaxRegion = MaxRegion;
    D = std::make_unique<IncrementalCycleDetector>(O);
  }
  explicit DetectorHarness(const IncrementalCycleDetector::Options &O) {
    D = std::make_unique<IncrementalCycleDetector>(O);
  }

  Transaction *node(uint32_t Tid = 0) {
    auto Tx = std::make_unique<Transaction>(NextId, Tid, NextId, 0,
                                            /*Regular=*/true);
    ++NextId;
    D->addNode(Tx.get());
    Owned.push_back(std::move(Tx));
    return Owned.back().get();
  }

  IncrementalCycleDetector::ClaimList edge(Transaction *Src,
                                           Transaction *Dst) {
    IncrementalCycleDetector::ClaimList Claims;
    D->addEdge(Src, Dst, Claims);
    return Claims;
  }

  /// The lock-free program-order link (runtime hot path). \p Next must
  /// have been created after \p Prev so its key is larger.
  void chain(Transaction *Prev, Transaction *Next) {
    D->addChainEdge(Prev, Next);
  }

  IncrementalCycleDetector::ClaimList retire(Transaction *Tx) {
    IncrementalCycleDetector::ClaimList Claims;
    Tx->Finished.store(true, std::memory_order_release);
    D->retire(Tx, Claims);
    return Claims;
  }

  std::unique_ptr<IncrementalCycleDetector> D;
  std::vector<std::unique_ptr<Transaction>> Owned;
  uint64_t NextId = 1;
};

std::set<Transaction *>
members(const IncrementalCycleDetector::Claim &C) {
  return std::set<Transaction *>(C.Members.begin(), C.Members.end());
}

TEST(IcdDetectorTest, ForwardChainNeverClaims) {
  DetectorHarness H;
  Transaction *A = H.node(0), *B = H.node(1), *C = H.node(2);
  // Creation order == topological order: every edge is the O(1) fast path.
  EXPECT_TRUE(H.edge(A, B).empty());
  EXPECT_TRUE(H.edge(B, C).empty());
  EXPECT_TRUE(H.edge(A, C).empty());
  EXPECT_TRUE(H.retire(A).empty());
  EXPECT_TRUE(H.retire(B).empty());
  EXPECT_TRUE(H.retire(C).empty());
  IncrementalCycleDetector::ClaimList Leftover;
  H.D->finalize(Leftover);
  EXPECT_TRUE(Leftover.empty());
}

TEST(IcdDetectorTest, BackEdgeReordersWithoutClaiming) {
  DetectorHarness H;
  Transaction *A = H.node(0), *B = H.node(1);
  // ord(B) > ord(A), so B→A is inconsistent — but acyclic: the search
  // regions are disjoint and the keys just permute.
  EXPECT_TRUE(H.edge(B, A).empty());
  // The permuted order admits the same edge as a fast path now.
  EXPECT_TRUE(H.edge(B, A).empty());
  EXPECT_TRUE(H.retire(A).empty());
  EXPECT_TRUE(H.retire(B).empty());
  EXPECT_EQ(A->IcdG, nullptr);
  EXPECT_EQ(B->IcdG, nullptr);
}

TEST(IcdDetectorTest, TwoCycleClaimedByLastRetiringMember) {
  DetectorHarness H;
  Transaction *A = H.node(0), *B = H.node(1);
  EXPECT_TRUE(H.edge(A, B).empty());
  // Closing the cycle merges the condensation vertex but must not claim:
  // both members are still running.
  EXPECT_TRUE(H.edge(B, A).empty());
  ASSERT_NE(A->IcdG, nullptr);
  EXPECT_EQ(A->IcdG, B->IcdG);
  EXPECT_TRUE(H.retire(A).empty());
  IncrementalCycleDetector::ClaimList Claims = H.retire(B);
  ASSERT_EQ(Claims.size(), 1u);
  EXPECT_FALSE(Claims[0].Oversized);
  EXPECT_EQ(members(Claims[0]), (std::set<Transaction *>{A, B}));
  // The detector pinned the members exactly like the batched pass does.
  EXPECT_EQ(A->Pins.load(), 1u);
  EXPECT_EQ(B->Pins.load(), 1u);
  IncrementalCycleDetector::ClaimList Leftover;
  H.D->finalize(Leftover);
  EXPECT_TRUE(Leftover.empty());
}

TEST(IcdDetectorTest, NestedCycleEnlargesIntoOneComponent) {
  DetectorHarness H;
  Transaction *A = H.node(0), *B = H.node(1), *C = H.node(2);
  H.edge(A, B);
  H.edge(B, A); // {A,B} merged.
  ASSERT_EQ(A->IcdG, B->IcdG);
  H.edge(B, C);
  EXPECT_TRUE(H.edge(C, A).empty()); // Enlarges to {A,B,C}; all running.
  ASSERT_NE(C->IcdG, nullptr);
  EXPECT_EQ(C->IcdG, A->IcdG);
  EXPECT_TRUE(H.retire(B).empty());
  EXPECT_TRUE(H.retire(C).empty());
  IncrementalCycleDetector::ClaimList Claims = H.retire(A);
  ASSERT_EQ(Claims.size(), 1u);
  EXPECT_EQ(members(Claims[0]), (std::set<Transaction *>{A, B, C}));
}

TEST(IcdDetectorTest, RegionCapDegradesToOversizedClaims) {
  DetectorHarness H(/*MaxRegion=*/1);
  Transaction *A = H.node(0), *B = H.node(1), *C = H.node(2);
  H.edge(A, B);
  // Any would-be cycle has an affected region of ≥ 2 > 1: the valve fires
  // immediately, poisoning the region and claiming it as Oversized.
  IncrementalCycleDetector::ClaimList Claims = H.edge(B, A);
  ASSERT_EQ(Claims.size(), 1u);
  EXPECT_TRUE(Claims[0].Oversized);
  EXPECT_EQ(members(Claims[0]), (std::set<Transaction *>{A, B}));
  ASSERT_NE(A->IcdG.load(), nullptr);
  EXPECT_TRUE(A->IcdG.load()->Oversized);
  // Any edge touching the poisoned region absorbs the other endpoint (and
  // its undirected closure) — reported as a fresh Oversized claim.
  Claims = H.edge(C, A);
  ASSERT_EQ(Claims.size(), 1u);
  EXPECT_TRUE(Claims[0].Oversized);
  EXPECT_EQ(members(Claims[0]), (std::set<Transaction *>{C}));
  // Absorbed members never produce precise claims.
  EXPECT_TRUE(H.retire(A).empty());
  EXPECT_TRUE(H.retire(B).empty());
  EXPECT_TRUE(H.retire(C).empty());
}

TEST(IcdDetectorTest, CycleThroughProgramOrderChain) {
  DetectorHarness H;
  // Thread 0 runs A0 then A1 (lock-free chain link); thread 1 runs B.
  // Cross edges A1→B and B→A0 close a cycle whose middle hop is the
  // chain edge — searches must traverse the chain pointers.
  Transaction *A0 = H.node(0), *A1 = H.node(0), *B = H.node(1);
  H.chain(A0, A1);
  EXPECT_TRUE(H.edge(A1, B).empty());
  EXPECT_TRUE(H.edge(B, A0).empty()); // Inconsistent: merges {A0,A1,B}.
  ASSERT_NE(A0->IcdG, nullptr);
  EXPECT_EQ(A0->IcdG, A1->IcdG);
  EXPECT_EQ(A0->IcdG, B->IcdG);
  EXPECT_TRUE(H.retire(A0).empty());
  EXPECT_TRUE(H.retire(A1).empty());
  IncrementalCycleDetector::ClaimList Claims = H.retire(B);
  ASSERT_EQ(Claims.size(), 1u);
  EXPECT_EQ(members(Claims[0]), (std::set<Transaction *>{A0, A1, B}));
}

TEST(IcdDetectorTest, LazyPoisonRepairAbsorbsChainContact) {
  DetectorHarness H(/*MaxRegion=*/2);
  Transaction *Y = H.node(0);
  Transaction *X1 = H.node(1), *X2 = H.node(2), *X3 = H.node(3);
  H.edge(X1, X2);
  H.edge(X2, X3);
  // Closing the 3-cycle needs a region of 3 > 2: {X1,X2,X3} is poisoned.
  IncrementalCycleDetector::ClaimList Claims = H.edge(X3, X1);
  ASSERT_EQ(Claims.size(), 1u);
  EXPECT_TRUE(Claims[0].Oversized);
  EXPECT_EQ(members(Claims[0]), (std::set<Transaction *>{X1, X2, X3}));
  // A chain link onto the poisoned node is lock-free and checks nothing —
  // the contact is repaired by the first search that reaches the region.
  Transaction *C = H.node(1);
  H.chain(X3, C);
  EXPECT_EQ(C->IcdG, nullptr);
  // ord(C) > ord(Y): the back edge's search walks C's chain predecessor,
  // touches the poisoned group, and absorbs both endpoints instead of
  // reordering. The old members are not re-reported.
  Claims = H.edge(C, Y);
  ASSERT_EQ(Claims.size(), 1u);
  EXPECT_TRUE(Claims[0].Oversized);
  EXPECT_EQ(members(Claims[0]), (std::set<Transaction *>{C, Y}));
  EXPECT_EQ(C->IcdG, X1->IcdG);
  EXPECT_TRUE(H.retire(Y).empty());
  EXPECT_TRUE(H.retire(X1).empty());
  EXPECT_TRUE(H.retire(X2).empty());
  EXPECT_TRUE(H.retire(X3).empty());
  EXPECT_TRUE(H.retire(C).empty());
}

TEST(IcdDetectorTest, RemoveNodesUnlinksSweptTransactions) {
  DetectorHarness H;
  Transaction *A = H.node(0), *B = H.node(1), *C = H.node(2);
  H.edge(A, B);
  H.edge(B, C);
  H.retire(A);
  H.retire(B);
  // Sweep the middle of the chain (in the runtime only unreachable
  // finished transactions are doomed; the detector must not care which).
  H.D->removeNodes({B});
  EXPECT_EQ(A->IcdOutHead.load(), nullptr);
  EXPECT_EQ(C->IcdInHead.load(), nullptr);
  // The survivors keep working: a back edge among them still reorders.
  EXPECT_TRUE(H.edge(C, A).empty());
  EXPECT_TRUE(H.retire(C).empty());
}

//===----------------------------------------------------------------------===//
// The lock-free consistent-edge fast path (seqlock validation)
//===----------------------------------------------------------------------===//

TEST(IcdDetectorTest, ConsistentEdgesCompleteLockFree) {
  DetectorHarness H;
  Transaction *A = H.node(0), *B = H.node(1), *C = H.node(2);
  EXPECT_TRUE(H.edge(A, B).empty());
  EXPECT_TRUE(H.edge(B, C).empty());
  EXPECT_TRUE(H.edge(A, C).empty());
  // A consecutive duplicate also rides the fast path (the existing cell
  // already carries the edge; nothing new is published).
  EXPECT_TRUE(H.edge(A, C).empty());
  StatisticRegistry Stats;
  H.D->flushStats(Stats);
  EXPECT_EQ(Stats.value("icd.inc_edges"), 4u);
  EXPECT_EQ(Stats.value("icd.fastpath_lockfree"), 4u);
  EXPECT_EQ(Stats.value("icd.inc_fast_edges"), 4u);
  EXPECT_EQ(Stats.value("icd.seqlock_retries"), 0u);
  EXPECT_EQ(Stats.value("icd.lock_waits"), 0u);
}

TEST(IcdDetectorTest, LockedFastPathKeepsConsistentEdgesOnMu) {
  IncrementalCycleDetector::Options O;
  O.LockedFastPath = true;
  DetectorHarness H(O);
  Transaction *A = H.node(0), *B = H.node(1);
  EXPECT_TRUE(H.edge(A, B).empty());
  StatisticRegistry Stats;
  H.D->flushStats(Stats);
  // The differential partner never touches the seqlock machinery: the
  // edge is classified (and counted consistent) under Mu.
  EXPECT_EQ(Stats.value("icd.fastpath_lockfree"), 0u);
  EXPECT_EQ(Stats.value("icd.seqlock_retries"), 0u);
  EXPECT_EQ(Stats.value("icd.inc_edges"), 1u);
  EXPECT_EQ(Stats.value("icd.inc_fast_edges"), 1u);
}

TEST(IcdDetectorTest, RetryStormCountsRetriesThenCompletesLockFree) {
  IncrementalCycleDetector::Options O;
  O.RetryStorm = 3; // Below the retry cap: the attempt still succeeds.
  DetectorHarness H(O);
  Transaction *A = H.node(0), *B = H.node(1);
  EXPECT_TRUE(H.edge(A, B).empty());
  StatisticRegistry Stats;
  H.D->flushStats(Stats);
  EXPECT_EQ(Stats.value("icd.seqlock_retries"), 3u);
  EXPECT_EQ(Stats.value("icd.fastpath_lockfree"), 1u);
  EXPECT_EQ(Stats.value("icd.lock_waits"), 0u);
}

TEST(IcdDetectorTest, RetryStormPastCapFallsBackToSlowPath) {
  IncrementalCycleDetector::Options O;
  O.RetryStorm = 100; // Exhausts every fast-path attempt.
  DetectorHarness H(O);
  Transaction *A = H.node(0), *B = H.node(1);
  EXPECT_TRUE(H.edge(A, B).empty());
  StatisticRegistry Stats;
  H.D->flushStats(Stats);
  // Eight attempts (the liveness cap), then classification under Mu: the
  // edge is still recorded and still consistent, just not lock-free.
  EXPECT_EQ(Stats.value("icd.seqlock_retries"), 8u);
  EXPECT_EQ(Stats.value("icd.fastpath_lockfree"), 0u);
  EXPECT_EQ(Stats.value("icd.inc_edges"), 1u);
  EXPECT_EQ(Stats.value("icd.inc_fast_edges"), 1u);
}

/// Satellite fix: lock-wait accounting. A blocked lockMu() must charge the
/// wait only after the lock is held (ns before count; flush drains count
/// before ns), so a racing flush can never observe a torn pair. The hook
/// runs under Mu, so the main thread's retire() below provably blocks.
TEST(IcdDetectorTest, LockWaitAccountingChargesHeldWaits) {
  DetectorHarness H;
  Transaction *A = H.node(0), *B = H.node(1);
  std::atomic<bool> InHook{false};
  H.D->setReorderHook([&](size_t) {
    InHook.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  std::thread T([&] { H.edge(B, A); }); // Inconsistent: reorders under Mu.
  while (!InHook.load(std::memory_order_acquire))
    std::this_thread::yield();
  // Mu is held for the rest of the hook's sleep: this acquisition waits.
  H.retire(A);
  T.join();
  StatisticRegistry Stats;
  H.D->flushStats(Stats);
  EXPECT_GE(Stats.value("icd.lock_waits"), 1u);
  EXPECT_GT(Stats.value("icd.lock_wait_ns"), 0u);
  // The counters drain: a second flush starts from zero.
  StatisticRegistry Drained;
  H.D->flushStats(Drained);
  EXPECT_EQ(Drained.value("icd.lock_waits"), 0u);
  EXPECT_EQ(Drained.value("icd.lock_wait_ns"), 0u);
}

//===----------------------------------------------------------------------===//
// Equivalence: incremental vs. batched Tarjan on identical schedules
//===----------------------------------------------------------------------===//

core::RunOutcome runWorkload(const ir::Program &P, uint64_t Seed,
                             bool Batched,
                             core::RunConfig Cfg = core::RunConfig()) {
  Cfg.M = core::Mode::SingleRun;
  Cfg.RunOpts.Deterministic = true;
  Cfg.RunOpts.ScheduleSeed = Seed;
  Cfg.BatchedScc = Batched;
  return core::runChecker(P, core::AtomicitySpec::initial(P), Cfg);
}

/// Acceptance criterion: a cycle-free run in the default mode performs
/// *zero* SCC passes — cross edges ride the incremental order entirely.
TEST(IcdTest, CycleFreeRunNeedsNoSccPasses) {
  ir::Program P = workloads::build("sor", 0.4);
  core::RunOutcome O = runWorkload(P, 1, /*Batched=*/false);
  EXPECT_GT(O.stat("icd.idg_cross_edges"), 0u);
  EXPECT_GT(O.stat("icd.inc_edges"), 0u);
  EXPECT_EQ(O.stat("icd.scc_passes"), 0u);
  EXPECT_EQ(O.stat("icd.scc_visited"), 0u);
  EXPECT_EQ(O.stat("icd.sccs"), 0u);
  EXPECT_EQ(O.stat("icd.finalize_claims"), 0u);
  EXPECT_TRUE(O.BlamedMethods.empty());
  // This workload is consistent-only (zero reorders), so the lock-free
  // fast path must carry *every* cross edge and the detector lock must
  // never be contended — the structural form of the perf claim.
  EXPECT_EQ(O.stat("icd.reorders"), 0u);
  EXPECT_EQ(O.stat("icd.fastpath_lockfree"), O.stat("icd.idg_cross_edges"));
  EXPECT_EQ(O.stat("icd.lock_waits"), 0u);
}

TEST(IcdTest, IncrementalMatchesBatchedOnWorkloads) {
  struct Case {
    const char *Workload;
    double Scale;
    uint64_t Seed;
  };
  const Case Cases[] = {
      {"xalan6", 0.3, 1}, {"hsqldb6", 0.3, 7}, {"elevator", 0.5, 3}};
  for (const Case &C : Cases) {
    ir::Program P = workloads::build(C.Workload, C.Scale);
    core::RunOutcome Inc = runWorkload(P, C.Seed, false);
    core::RunOutcome Bat = runWorkload(P, C.Seed, true);
    EXPECT_EQ(Inc.BlamedMethods, Bat.BlamedMethods) << C.Workload;
    EXPECT_EQ(Inc.PotentialMethods, Bat.PotentialMethods) << C.Workload;
    // Raw component counts may differ either way (nested-SCC enlargement:
    // see the file header), but cycles exist in one mode iff they exist in
    // the other.
    EXPECT_EQ(Inc.stat("icd.sccs") == 0, Bat.stat("icd.sccs") == 0)
        << C.Workload;
    EXPECT_EQ(Inc.stat("icd.scc_passes"), 0u) << C.Workload;
    if (Bat.stat("icd.sccs") > 0) {
      EXPECT_GT(Inc.stat("icd.cycles_incremental"), 0u) << C.Workload;
      EXPECT_GT(Bat.stat("icd.scc_passes"), 0u) << C.Workload;
    }
    EXPECT_EQ(Bat.stat("icd.cycles_incremental"), 0u) << C.Workload;
    EXPECT_EQ(Inc.stat("icd.finalize_claims"), 0u) << C.Workload;
  }
}

/// Random mix of racy read-modify-writes, correctly locked updates, and
/// thread-local churn (the property_test generator, trimmed): enough to
/// produce both serializable and violating traces.
ir::Program randomProgram(uint64_t Seed) {
  SplitMix64 Rng(Seed * 2654435761u + 17);
  ir::ProgramBuilder B("icdprop" + std::to_string(Seed), Seed);
  const uint32_t Workers = 2 + Rng.nextBelow(2);
  ir::PoolId Shared = B.addPool("shared", 4, 2);
  ir::PoolId Lock = B.addPool("lock", 1, 1);
  ir::PoolId Local = B.addPool("local", Workers + 1, 4);

  std::vector<ir::MethodId> Methods;
  const uint32_t NumMethods = 3 + Rng.nextBelow(3);
  for (uint32_t M = 0; M < NumMethods; ++M) {
    std::string Name = "op" + std::to_string(M);
    switch (Rng.nextBelow(4)) {
    case 0: // Racy read-modify-write (potential violation).
      Methods.push_back(B.beginMethod(Name, true)
                            .read(Shared, ir::idxParam(1, 0, 4), 0u)
                            .work(2 + Rng.nextBelow(6))
                            .write(Shared, ir::idxParam(1, 0, 4), 0u)
                            .endMethod());
      break;
    case 1: // Two-phase locked update under the global lock.
      Methods.push_back(B.beginMethod(Name, true)
                            .acquire(Lock, ir::idxConst(0))
                            .read(Shared, ir::idxParam(1, 0, 4), 0u)
                            .write(Shared, ir::idxParam(1, 0, 4), 0u)
                            .release(Lock, ir::idxConst(0))
                            .endMethod());
      break;
    case 2: // Unlocked multi-read (racy against writers).
      Methods.push_back(B.beginMethod(Name, true)
                            .read(Shared, ir::idxParam(1, 0, 4), 0u)
                            .work(1 + Rng.nextBelow(4))
                            .read(Shared, ir::idxParam(1, 1, 4), 0u)
                            .endMethod());
      break;
    default: // Thread-local churn.
      Methods.push_back(B.beginMethod(Name, true)
                            .beginLoop(ir::idxConst(4 + Rng.nextBelow(8)))
                            .read(Local, ir::idxThread(), ir::idxRandom(4))
                            .write(Local, ir::idxThread(), ir::idxRandom(4))
                            .endLoop()
                            .endMethod());
      break;
    }
  }

  auto &Worker = B.beginMethod("worker", false)
                     .beginLoop(ir::idxConst(20 + Rng.nextBelow(20)));
  for (uint32_t C = 0; C < 3; ++C)
    Worker.call(Methods[Rng.nextBelow(Methods.size())], ir::idxRandom(4));
  Worker.endLoop();
  ir::MethodId WorkerId = Worker.endMethod();

  auto &Main = B.beginMethod("main", false);
  for (uint32_t W = 1; W <= Workers; ++W)
    Main.forkThread(ir::idxConst(W));
  for (uint32_t W = 1; W <= Workers; ++W)
    Main.joinThread(ir::idxConst(W));
  ir::MethodId MainId = Main.endMethod();
  B.addThread(MainId);
  for (uint32_t W = 0; W < Workers; ++W)
    B.addThread(WorkerId);
  return B.build();
}

class IcdEquivalenceProperty : public ::testing::TestWithParam<uint64_t> {};

/// Property (the tentpole's contract): on any program and any replayed
/// schedule, the incremental detector and the batched Tarjan pass blame
/// the same method sets — the bit-equal unit of report. Component counts
/// are deliberately *not* compared (nested-SCC enlargement, file header).
TEST_P(IcdEquivalenceProperty, IncrementalMatchesBatchedOnSameSchedule) {
  ir::Program P = randomProgram(GetParam());
  for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
    core::RunOutcome Inc = runWorkload(P, Seed, false);
    core::RunOutcome Bat = runWorkload(P, Seed, true);
    ASSERT_FALSE(Inc.Result.Aborted);
    ASSERT_FALSE(Bat.Result.Aborted);
    EXPECT_EQ(Inc.BlamedMethods, Bat.BlamedMethods)
        << "program " << GetParam() << " schedule " << Seed;
    EXPECT_EQ(Inc.PotentialMethods, Bat.PotentialMethods)
        << "program " << GetParam() << " schedule " << Seed;
    EXPECT_EQ(Inc.stat("icd.sccs") == 0, Bat.stat("icd.sccs") == 0)
        << "program " << GetParam() << " schedule " << Seed;
    EXPECT_EQ(Inc.stat("icd.scc_passes"), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, IcdEquivalenceProperty,
                         ::testing::Range<uint64_t>(1, 16));

/// Differential contract for the lock-free fast path: on any replayed
/// schedule, the default (lock-free), the `--icd-locked-fastpath` partner
/// (every cross edge under Mu), a forced retry storm (every fast-path
/// attempt re-validates), and the batched Tarjan escape hatch blame
/// identical method sets.
TEST(IcdTest, LockFreeFastPathMatchesLockedAndBatchedOnReplayedSchedules) {
  for (uint64_t Prog : {2u, 5u, 9u}) {
    ir::Program P = randomProgram(Prog);
    for (uint64_t Seed = 1; Seed <= 2; ++Seed) {
      core::RunOutcome Inc = runWorkload(P, Seed, false);
      core::RunConfig LockedCfg;
      LockedCfg.IcdLockedFastPath = true;
      core::RunOutcome Locked = runWorkload(P, Seed, false, LockedCfg);
      core::RunConfig StormCfg;
      StormCfg.IcdSeqRetryStorm = 3;
      core::RunOutcome Storm = runWorkload(P, Seed, false, StormCfg);
      core::RunOutcome Bat = runWorkload(P, Seed, true);
      const std::string Tag =
          "program " + std::to_string(Prog) + " schedule " +
          std::to_string(Seed);
      EXPECT_EQ(Inc.BlamedMethods, Locked.BlamedMethods) << Tag;
      EXPECT_EQ(Inc.PotentialMethods, Locked.PotentialMethods) << Tag;
      EXPECT_EQ(Inc.BlamedMethods, Storm.BlamedMethods) << Tag;
      EXPECT_EQ(Inc.PotentialMethods, Storm.PotentialMethods) << Tag;
      EXPECT_EQ(Inc.BlamedMethods, Bat.BlamedMethods) << Tag;
      EXPECT_EQ(Inc.PotentialMethods, Bat.PotentialMethods) << Tag;
      // The partner really stayed on Mu, and the storm really retried.
      EXPECT_EQ(Locked.stat("icd.fastpath_lockfree"), 0u) << Tag;
      EXPECT_EQ(Locked.stat("icd.seqlock_retries"), 0u) << Tag;
      if (Storm.stat("icd.fastpath_lockfree") > 0)
        EXPECT_GT(Storm.stat("icd.seqlock_retries"), 0u) << Tag;
    }
  }
}

/// Regression: a delayed collector (CollectorDelayMs fault) racing live
/// order maintenance under a tiny live-transaction budget — sweeps overlap
/// reorders, and removeNodes must keep the maintained order valid.
TEST(IcdTest, CollectorRacingOrderMaintenanceStaysEquivalent) {
  ir::Program P = workloads::build("xalan6", 0.3);
  core::RunConfig Cfg;
  Cfg.Faults.CollectorDelayMs = 5;
  Cfg.MaxLiveTxs = 64; // Force eager, frequent collections.
  core::RunOutcome Inc = runWorkload(P, 1, false, Cfg);
  core::RunOutcome Bat = runWorkload(P, 1, true, Cfg);
  ASSERT_FALSE(Inc.Result.Aborted);
  EXPECT_GT(Inc.stat("icd.collector_runs"), 0u);
  EXPECT_GT(Inc.stat("icd.txs_swept"), 0u);
  EXPECT_EQ(Inc.BlamedMethods, Bat.BlamedMethods);
  EXPECT_EQ(Inc.PotentialMethods, Bat.PotentialMethods);
  EXPECT_EQ(Inc.stat("icd.sccs") == 0, Bat.stat("icd.sccs") == 0);
}

/// The region-cap valve on a real workload: precision degrades (cycles
/// surface as Potential), soundness does not (everything the healthy run
/// blames is still reported somewhere).
TEST(IcdTest, RegionCapDegradesSoundly) {
  ir::Program P = workloads::build("xalan6", 0.3);
  core::RunOutcome Healthy = runWorkload(P, 1, false);
  core::RunConfig Cfg;
  Cfg.IcdMaxRegion = 1;
  core::RunOutcome Capped = runWorkload(P, 1, false, Cfg);
  ASSERT_FALSE(Capped.Result.Aborted);
  EXPECT_GT(Capped.stat("icd.region_cap_degrades"), 0u);
  std::set<std::string> Reported = Capped.BlamedMethods;
  Reported.insert(Capped.PotentialMethods.begin(),
                  Capped.PotentialMethods.end());
  for (const std::string &M : Healthy.BlamedMethods)
    EXPECT_TRUE(Reported.count(M)) << "lost " << M;
}

//===----------------------------------------------------------------------===//
// Concurrency: stripe locality of reorders (run under TSan in CI)
//===----------------------------------------------------------------------===//

ir::Program hammerProgram(uint32_t Threads, uint32_t Objects) {
  ir::ProgramBuilder B("icd_stress");
  B.addPool("objs", Objects, 2);
  B.beginMethod("m0", true).work(1).endMethod();
  B.beginMethod("m1", true).work(1).endMethod();
  ir::MethodId Main = B.beginMethod("main", false).work(1).endMethod();
  for (uint32_t T = 0; T < Threads; ++T)
    B.addThread(Main);
  return B.build();
}

/// Real concurrent threads, heavy shared traffic (lots of inconsistent
/// edges), background collection — and a reorder hook asserting the core
/// perf property the tentpole exists for: a reorder runs under only the
/// stripes its edge-writer path already holds (at most four: the RdSh
/// upgrade takes stripe 0 plus the three endpoint-thread stripes before
/// inserting its edges), never the stop-the-world full set.
TEST(IcdStressTest, ReorderNeverHoldsAllStripes) {
  constexpr uint32_t Threads = 6;
  constexpr uint32_t SharedObjects = 8;
  constexpr uint64_t OpsPerThread = 6000;

  ir::Program P = hammerProgram(Threads, SharedObjects + Threads);
  StatisticRegistry Stats;
  ViolationLog Violations;
  DoubleCheckerOptions Opts;
  Opts.CollectEveryTx = 64;      // Sweeps race the order maintenance.
  Opts.LogRemoteMissPenalty = 0; // Pure-concurrency stress.
  Opts.IdgRemoteMissPenalty = 0;
  auto DC =
      std::make_unique<DoubleCheckerRuntime>(P, Opts, Violations, Stats);
  rt::Runtime RT(P, DC.get());
  DC->beginRun(RT);

  ASSERT_NE(DC->icdDetector(), nullptr);
  const uint32_t NumStripes = DC->stripeCount();
  ASSERT_GT(NumStripes, 4u); // Threads+1 stripes; bound below is meaningful.
  std::atomic<uint64_t> Reorders{0};
  std::atomic<uint32_t> MaxStripesHeld{0};
  DC->icdDetector()->setReorderHook([&](size_t) {
    Reorders.fetch_add(1, std::memory_order_relaxed);
    uint32_t Held = DC->stripesHeldByCurrentThread();
    uint32_t Prev = MaxStripesHeld.load(std::memory_order_relaxed);
    while (Held > Prev &&
           !MaxStripesHeld.compare_exchange_weak(Prev, Held,
                                                 std::memory_order_relaxed))
      ;
  });

  const ir::Method &M0 = P.Methods[P.findMethod("m0")];
  const ir::Method &M1 = P.Methods[P.findMethod("m1")];

  std::atomic<uint32_t> Ready{0};
  std::vector<std::thread> Workers;
  for (uint32_t T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      rt::ThreadContext TC;
      TC.Tid = T;
      TC.RT = &RT;
      TC.Checker = DC.get();
      DC->threadStarted(TC);
      Ready.fetch_add(1);
      while (Ready.load() < Threads)
        std::this_thread::yield();
      SplitMix64 Rng(T * 7919 + 3);
      bool InTx = false;
      for (uint64_t Op = 0; Op < OpsPerThread; ++Op) {
        if (Op % 8 == 0) {
          if (InTx)
            DC->txEnd(TC, T % 2 ? M1 : M0);
          DC->txBegin(TC, T % 2 ? M1 : M0);
          InTx = true;
        }
        // 60% shared traffic: ping-pong conflicts between threads create
        // edges in both directions, i.e. plenty of inconsistent inserts.
        rt::ObjectId Obj =
            Rng.chancePercent(60)
                ? static_cast<rt::ObjectId>(Rng.nextBelow(SharedObjects))
                : static_cast<rt::ObjectId>(SharedObjects + T);
        rt::AccessInfo Info;
        Info.Obj = Obj;
        Info.Addr = RT.heap().fieldAddr(Obj, Rng.nextBelow(2));
        Info.IsWrite = Rng.chancePercent(50);
        Info.Flags = ir::IF_OctetBarrier | ir::IF_LogAccess;
        DC->instrumentedAccess(TC, Info, [] {});
        DC->safePoint(TC);
        if (Rng.chancePercent(1)) {
          DC->aboutToBlock(TC);
          std::this_thread::yield();
          DC->unblocked(TC);
        }
      }
      if (InTx)
        DC->txEnd(TC, T % 2 ? M1 : M0);
      DC->threadExiting(TC);
    });
  }
  for (std::thread &W : Workers)
    W.join();
  DC->endRun(RT);

  // The stress actually exercised the slow path…
  EXPECT_GT(Stats.value("icd.idg_cross_edges"), 0u);
  EXPECT_GT(Reorders.load(), 0u);
  EXPECT_GT(Stats.value("icd.reorders"), 0u);
  // …and no reorder ever froze the graph: only the stripes the edge
  // writer already held — conflict edges take two, the RdSh-upgrade path
  // takes up to four (stripe 0 + three endpoint threads) — never all.
  EXPECT_LE(MaxStripesHeld.load(), 4u);
  EXPECT_LT(MaxStripesHeld.load(), NumStripes);
  // The batched machinery stayed cold.
  EXPECT_EQ(Stats.value("icd.scc_passes"), 0u);
  EXPECT_EQ(Stats.value("icd.finalize_claims"), 0u);
}

/// The tentpole's race: concurrent lock-free consistent-edge publications
/// hammered against forced reorders (the hook widens every writer section
/// so fast-path snapshots observably fail validation and reconcile).
/// After quiescence the Pearce–Kelly invariant must hold for every
/// recorded edge — either internal to a merged component or pointing up
/// the maintained order. Run under TSan in CI.
TEST(IcdStressTest, LockFreeFastPathSurvivesForcedReorders) {
  constexpr uint32_t FastThreads = 4;
  constexpr uint32_t Universe = 192;
  constexpr uint64_t EdgesPerThread = 3000;

  DetectorHarness H;
  std::vector<Transaction *> Nodes;
  Nodes.reserve(Universe);
  for (uint32_t I = 0; I < Universe; ++I)
    Nodes.push_back(H.node(I % 8)); // Creation order == initial key order.

  std::atomic<uint64_t> Reorders{0};
  H.D->setReorderHook([&](size_t) {
    Reorders.fetch_add(1, std::memory_order_relaxed);
    // Stretch the seqlock writer section so concurrent fast paths land
    // inside it and take the retry/reconcile route.
    for (volatile int Spin = 0; Spin < 400; ++Spin) {
    }
  });

  std::atomic<bool> Stop{false};
  std::thread Chaos([&] {
    SplitMix64 Rng(97);
    while (!Stop.load(std::memory_order_relaxed)) {
      const uint32_t I = Rng.nextBelow(Universe - 1);
      const uint32_t J = I + 1 + Rng.nextBelow(Universe - I - 1);
      IncrementalCycleDetector::ClaimList Claims;
      // Against creation order: inconsistent unless a prior reorder or
      // merge already fixed it — a steady supply of writer sections.
      H.D->addEdge(Nodes[J], Nodes[I], Claims);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> Fast;
  for (uint32_t T = 0; T < FastThreads; ++T) {
    Fast.emplace_back([&, T] {
      SplitMix64 Rng(T * 7919 + 11);
      for (uint64_t E = 0; E < EdgesPerThread; ++E) {
        const uint32_t I = Rng.nextBelow(Universe - 1);
        const uint32_t J = I + 1 + Rng.nextBelow(Universe - I - 1);
        IncrementalCycleDetector::ClaimList Claims;
        // With creation order: consistent (the lock-free fast path)
        // unless a reorder has permuted the pair since.
        H.D->addEdge(Nodes[I], Nodes[J], Claims);
      }
    });
  }
  for (std::thread &W : Fast)
    W.join();
  Stop.store(true, std::memory_order_relaxed);
  Chaos.join();

  EXPECT_GT(Reorders.load(), 0u);
  // Post-quiescence order audit over the real published chains.
  const auto KeyOf = [](Transaction *Tx) {
    IcdGroup *G = Tx->IcdG.load();
    return G != nullptr ? G->Ord.load() : Tx->IcdOrd.load();
  };
  uint64_t Audited = 0;
  for (Transaction *Tx : Nodes) {
    IcdGroup *G = Tx->IcdG.load();
    for (IcdEdgeNode *C = Tx->IcdOutHead.load(); C != nullptr;
         C = C->Next) {
      Transaction *Peer = C->Peer;
      if (G != nullptr && G == Peer->IcdG.load())
        continue; // Internal to a merged component.
      EXPECT_LT(KeyOf(Tx), KeyOf(Peer))
          << "edge " << Tx->Id << "->" << Peer->Id
          << " violates the maintained order";
      ++Audited;
    }
  }
  EXPECT_GT(Audited, 0u);
  StatisticRegistry Stats;
  H.D->flushStats(Stats);
  EXPECT_GT(Stats.value("icd.fastpath_lockfree"), 0u);
  EXPECT_GT(Stats.value("icd.reorders"), 0u);
  EXPECT_EQ(Stats.value("icd.finalize_claims"), 0u);
}

} // namespace
