//===- tests/instr_test.cpp - Instrumentation pass tests ------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "instr/Instrument.h"
#include "ir/Builder.h"
#include "ir/Verifier.h"

using namespace dc;
using namespace dc::instr;
using namespace dc::ir;

namespace {

/// main -> helper (non-atomic) and main -> atomicOp (atomic) -> helper.
Program callGraphProgram() {
  ProgramBuilder B("cg");
  PoolId Pool = B.addPool("objs", 2, 2);
  PoolId Arr = B.addArrayPool("arr", 1, 8);
  MethodId Helper = B.beginMethod("helper", false)
                        .read(Pool, idxConst(0), 0u)
                        .readElem(Arr, idxConst(0), idxConst(1))
                        .endMethod();
  MethodId AtomicOp = B.beginMethod("atomicOp", true)
                          .write(Pool, idxConst(0), 0u)
                          .call(Helper)
                          .acquire(Pool, idxConst(1))
                          .release(Pool, idxConst(1))
                          .endMethod();
  MethodId Main = B.beginMethod("main", false)
                      .call(Helper)
                      .call(AtomicOp)
                      .endMethod();
  B.addThread(Main);
  return B.build();
}

InstrumentationOptions octetOpts() {
  InstrumentationOptions Opts;
  Opts.Checker = CheckerKind::Octet;
  Opts.LogAccesses = true;
  return Opts;
}

TEST(InstrumentTest, CompiledProgramVerifies) {
  Program P = callGraphProgram();
  Program C = compile(P, {"main"}, octetOpts());
  EXPECT_EQ(verify(C), "");
}

TEST(InstrumentTest, SourceIdsAreStableNonTransVariants) {
  Program P = callGraphProgram();
  Program C = compile(P, {"main"}, octetOpts());
  ASSERT_GE(C.Methods.size(), P.Methods.size());
  for (const Method &M : P.Methods) {
    EXPECT_EQ(C.Methods[M.Id].Name, M.Name);
    EXPECT_EQ(C.originalOf(M.Id), M.Id);
  }
}

TEST(InstrumentTest, AtomicMethodStartsTransaction) {
  Program P = callGraphProgram();
  Program C = compile(P, {"main"}, octetOpts());
  const Method &AtomicOp = C.Methods[C.findMethod("atomicOp")];
  EXPECT_TRUE(AtomicOp.StartsTransaction);
  EXPECT_TRUE(AtomicOp.TransactionalContext);
  const Method &Main = C.Methods[C.findMethod("main")];
  EXPECT_FALSE(Main.StartsTransaction);
}

TEST(InstrumentTest, DualContextCloneCreated) {
  Program P = callGraphProgram();
  Program C = compile(P, {"main"}, octetOpts());
  // helper is called from main (non-trans) and from atomicOp (trans):
  // a "$t" clone must exist, and atomicOp's call must target it.
  MethodId HelperT = C.findMethod("helper$t");
  ASSERT_NE(HelperT, InvalidMethodId);
  EXPECT_EQ(C.originalOf(HelperT), P.findMethod("helper"));
  EXPECT_TRUE(C.Methods[HelperT].TransactionalContext);
  EXPECT_FALSE(C.Methods[HelperT].StartsTransaction);

  const Method &AtomicOp = C.Methods[C.findMethod("atomicOp")];
  bool CallsClone = false;
  for (const Instr &I : AtomicOp.Body)
    if (I.Op == Opcode::Call && I.Callee == HelperT)
      CallsClone = true;
  EXPECT_TRUE(CallsClone);

  const Method &Main = C.Methods[C.findMethod("main")];
  EXPECT_EQ(Main.Body[0].Callee, C.findMethod("helper"))
      << "non-transactional call targets the original variant";
}

TEST(InstrumentTest, AccessFlagsPerChecker) {
  Program P = callGraphProgram();
  Program Octet = compile(P, {"main"}, octetOpts());
  const Instr &OA = Octet.Methods[Octet.findMethod("atomicOp")].Body[0];
  EXPECT_TRUE(OA.Flags & IF_OctetBarrier);
  EXPECT_TRUE(OA.Flags & IF_LogAccess);
  EXPECT_FALSE(OA.Flags & IF_VelodromeBarrier);

  InstrumentationOptions VOpts;
  VOpts.Checker = CheckerKind::Velodrome;
  VOpts.LogAccesses = false;
  Program Velo = compile(P, {"main"}, VOpts);
  const Instr &VA = Velo.Methods[Velo.findMethod("atomicOp")].Body[0];
  EXPECT_TRUE(VA.Flags & IF_VelodromeBarrier);
  EXPECT_FALSE(VA.Flags & IF_LogAccess);

  InstrumentationOptions NOpts;
  NOpts.Checker = CheckerKind::None;
  Program None = compile(P, {"main"}, NOpts);
  EXPECT_EQ(None.Methods[None.findMethod("atomicOp")].Body[0].Flags,
            IF_None);
}

TEST(InstrumentTest, FirstRunSkipsLogging) {
  InstrumentationOptions Opts = octetOpts();
  Opts.LogAccesses = false;
  Program C = compile(callGraphProgram(), {"main"}, Opts);
  const Instr &A = C.Methods[C.findMethod("atomicOp")].Body[0];
  EXPECT_TRUE(A.Flags & IF_OctetBarrier);
  EXPECT_FALSE(A.Flags & IF_LogAccess);
}

TEST(InstrumentTest, ArraysUninstrumentedByDefault) {
  Program C = compile(callGraphProgram(), {"main"}, octetOpts());
  const Method &HelperT = C.Methods[C.findMethod("helper$t")];
  EXPECT_NE(HelperT.Body[0].Flags, IF_None) << "field access instrumented";
  EXPECT_EQ(HelperT.Body[1].Flags, IF_None) << "array access skipped";

  InstrumentationOptions Opts = octetOpts();
  Opts.InstrumentArrays = true;
  Program CA = compile(callGraphProgram(), {"main"}, Opts);
  EXPECT_NE(CA.Methods[CA.findMethod("helper$t")].Body[1].Flags, IF_None);
}

TEST(InstrumentTest, SyncOpsCarryFlags) {
  Program C = compile(callGraphProgram(), {"main"}, octetOpts());
  const Method &AtomicOp = C.Methods[C.findMethod("atomicOp")];
  for (const Instr &I : AtomicOp.Body) {
    if (I.Op == Opcode::Acquire || I.Op == Opcode::Release) {
      EXPECT_TRUE(I.Flags & IF_OctetBarrier);
    }
  }
  EXPECT_NE(C.ThreadSyncFlags, IF_None);
}

TEST(InstrumentTest, ExcludedMethodDoesNotStartTransaction) {
  Program C = compile(callGraphProgram(), {"main", "atomicOp"},
                      octetOpts());
  EXPECT_FALSE(C.Methods[C.findMethod("atomicOp")].StartsTransaction);
  // Its accesses become non-transactional but stay instrumented (unary).
  EXPECT_NE(C.Methods[C.findMethod("atomicOp")].Body[0].Flags, IF_None);
}

TEST(InstrumentTest, SelectiveInstrumentationLimitsTransactions) {
  Program P = callGraphProgram();
  analysis::StaticTransactionInfo Info; // Empty: nothing implicated.
  InstrumentationOptions Opts = octetOpts();
  Opts.Selective = &Info;
  Program C = compile(P, {"main"}, Opts);
  EXPECT_FALSE(C.Methods[C.findMethod("atomicOp")].StartsTransaction);
  // No unary transactions in cycles either: nothing instrumented at all.
  EXPECT_EQ(C.Methods[C.findMethod("atomicOp")].Body[0].Flags, IF_None);
  EXPECT_EQ(C.Methods[C.findMethod("helper")].Body[0].Flags, IF_None);
  EXPECT_EQ(C.ThreadSyncFlags, IF_None);
}

TEST(InstrumentTest, SelectiveInstrumentationKeepsNamedMethods) {
  Program P = callGraphProgram();
  analysis::StaticTransactionInfo Info;
  Info.MethodNames.insert("atomicOp");
  InstrumentationOptions Opts = octetOpts();
  Opts.Selective = &Info;
  Program C = compile(P, {"main"}, Opts);
  EXPECT_TRUE(C.Methods[C.findMethod("atomicOp")].StartsTransaction);
  EXPECT_NE(C.Methods[C.findMethod("atomicOp")].Body[0].Flags, IF_None);
  // Unary accesses (helper from main) stay uninstrumented: AnyUnary=false.
  EXPECT_EQ(C.Methods[C.findMethod("helper")].Body[0].Flags, IF_None);
}

TEST(InstrumentTest, SelectiveUnaryBooleanInstruments) {
  Program P = callGraphProgram();
  analysis::StaticTransactionInfo Info;
  Info.AnyUnary = true;
  InstrumentationOptions Opts = octetOpts();
  Opts.Selective = &Info;
  Program C = compile(P, {"main"}, Opts);
  EXPECT_NE(C.Methods[C.findMethod("helper")].Body[0].Flags, IF_None);
  EXPECT_NE(C.ThreadSyncFlags, IF_None);
}

TEST(InstrumentTest, ForceInstrumentUnaryOverridesBoolean) {
  Program P = callGraphProgram();
  analysis::StaticTransactionInfo Info; // AnyUnary = false.
  InstrumentationOptions Opts = octetOpts();
  Opts.Selective = &Info;
  Opts.ForceInstrumentUnary = true;
  Program C = compile(P, {"main"}, Opts);
  EXPECT_NE(C.Methods[C.findMethod("helper")].Body[0].Flags, IF_None);
}

TEST(InstrumentTest, LoopBodiesCompiledRecursively) {
  ProgramBuilder B("loopy");
  PoolId Pool = B.addPool("p", 1, 1);
  MethodId M = B.beginMethod("m", true)
                   .beginLoop(idxConst(4))
                   .read(Pool, idxConst(0), 0u)
                   .endLoop()
                   .endMethod();
  MethodId Main = B.beginMethod("main", false).call(M).endMethod();
  B.addThread(Main);
  Program C = compile(B.build(), {"main"}, octetOpts());
  const Instr &Loop = C.Methods[C.findMethod("m")].Body[0];
  ASSERT_EQ(Loop.Op, Opcode::Loop);
  EXPECT_TRUE(Loop.Body[0].Flags & IF_OctetBarrier);
}

} // namespace
