//===- tests/smoke_test.cpp - End-to-end sanity of the whole stack -------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/Checker.h"
#include "core/Refinement.h"
#include "tests/TestPrograms.h"

using namespace dc;
using namespace dc::core;

namespace {

RunConfig freeRun(Mode M, uint64_t Seed = 1) {
  RunConfig Cfg;
  Cfg.M = M;
  Cfg.RunOpts.Deterministic = false;
  Cfg.RunOpts.ScheduleSeed = Seed;
  return Cfg;
}

/// Deterministic scheduling: on a one-core host, free-running threads tend
/// to serialize (each worker finishes within an OS timeslice), so
/// violation-detection tests drive explicit interleavings instead.
RunConfig detRun(Mode M, uint64_t Seed = 1) {
  RunConfig Cfg;
  Cfg.M = M;
  Cfg.RunOpts.Deterministic = true;
  Cfg.RunOpts.ScheduleSeed = Seed;
  return Cfg;
}

TEST(Smoke, UnmodifiedRunsToCompletion) {
  ir::Program P = testprogs::racyBank();
  RunOutcome O = runChecker(P, AtomicitySpec::initial(P),
                            freeRun(Mode::Unmodified));
  EXPECT_FALSE(O.Result.Aborted);
  EXPECT_GT(O.Result.Steps, 0u);
}

TEST(Smoke, SingleRunFindsRacyBankViolation) {
  ir::Program P = testprogs::racyBank(/*Workers=*/3,
                                      /*DepositsPerWorker=*/500,
                                      /*Accounts=*/2);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  bool Found = false;
  for (uint64_t Seed = 0; Seed < 10 && !Found; ++Seed) {
    RunOutcome O = runChecker(P, Spec, detRun(Mode::SingleRun, Seed));
    ASSERT_FALSE(O.Result.Aborted);
    Found = O.BlamedMethods.count("deposit") != 0;
  }
  EXPECT_TRUE(Found) << "single-run mode should blame deposit";
}

TEST(Smoke, VelodromeFindsRacyBankViolation) {
  ir::Program P = testprogs::racyBank(3, 500, 2);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  bool Found = false;
  for (uint64_t Seed = 0; Seed < 10 && !Found; ++Seed) {
    RunOutcome O = runChecker(P, Spec, detRun(Mode::Velodrome, Seed));
    ASSERT_FALSE(O.Result.Aborted);
    Found = O.BlamedMethods.count("deposit") != 0;
  }
  EXPECT_TRUE(Found) << "Velodrome should blame deposit";
}

TEST(Smoke, NoFalsePositivesOnDisjointBank) {
  ir::Program P = testprogs::disjointBank(3, 300);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  for (uint64_t Seed = 0; Seed < 5; ++Seed) {
    RunOutcome DC = runChecker(P, Spec, detRun(Mode::SingleRun, Seed));
    EXPECT_TRUE(DC.Violations.empty()) << "DoubleChecker false positive";
    RunOutcome V = runChecker(P, Spec, detRun(Mode::Velodrome, Seed));
    EXPECT_TRUE(V.Violations.empty()) << "Velodrome false positive";
  }
}

TEST(Smoke, NoFalsePositivesOnLockedBank) {
  ir::Program P = testprogs::lockedBank(3, 200, 4);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  for (uint64_t Seed = 0; Seed < 5; ++Seed) {
    RunOutcome DC = runChecker(P, Spec, detRun(Mode::SingleRun, Seed));
    EXPECT_TRUE(DC.Violations.empty()) << "DoubleChecker false positive";
  }
}

TEST(Smoke, MultiRunTrialFindsViolation) {
  ir::Program P = testprogs::racyBank(3, 500, 2);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  bool Found = false;
  for (uint64_t Seed = 0; Seed < 5 && !Found; ++Seed) {
    RunOutcome O = runMultiRunTrial(P, Spec, /*FirstRuns=*/3, Seed,
                                    /*Deterministic=*/true);
    Found = O.BlamedMethods.count("deposit") != 0;
  }
  EXPECT_TRUE(Found) << "multi-run mode should blame deposit";
}

TEST(Smoke, IterativeRefinementConverges) {
  ir::Program P = testprogs::racyBank(2, 300, 2);
  RefinementOptions Opts;
  Opts.Checker = RefinementChecker::SingleRun;
  Opts.QuietTrials = 2;
  Opts.Deterministic = true;
  RefinementResult R = iterativeRefinement(P, Opts);
  EXPECT_TRUE(R.AllBlamed.count("deposit"));
  EXPECT_FALSE(R.FinalSpec.isAtomic("deposit"));
}

} // namespace
