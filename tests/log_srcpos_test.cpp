//===- tests/log_srcpos_test.cpp - LogLen publication contract ------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lock-free SrcPos sampling contract (Transaction.h): Transaction::
/// LogLen is published with release order once per record, so a concurrent
/// sample is always ≤ the owner's published length and always lands on a
/// record boundary — even while the owner's appends cross chunk boundaries
/// and split 2-slot EdgeIn records across chunks. The first test samples
/// concurrently with a real second thread (this file runs under
/// -DDC_SANITIZE=thread in CI, where any non-atomic sharing would trip);
/// the rest drive whole checker runs on real threads and assert the
/// replay built from sampled positions is a valid linearization (every
/// replay terminates: pcd.replay_stuck == 0).
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "analysis/Transaction.h"
#include "core/Checker.h"
#include "tests/TestPrograms.h"

using namespace dc;
using namespace dc::analysis;

namespace {

TEST(SrcPosSamplingTest, SamplesAreBoundedMonotonicRecordBoundaries) {
  // ~4.5 chunks of slots with a 2-slot EdgeIn every 7th record, so records
  // straddle several chunk boundaries while the sampler runs.
  constexpr uint32_t NumRecords = 1024;
  constexpr uint32_t EdgeInPeriod = 7;

  // Record boundaries are deterministic: precompute the set of positions
  // appendLog ever publishes.
  std::vector<uint32_t> Boundaries;
  uint32_t Slots = 0;
  for (uint32_t I = 0; I < NumRecords; ++I) {
    Slots += (I % EdgeInPeriod == EdgeInPeriod - 1) ? 2 : 1;
    Boundaries.push_back(Slots);
  }
  const uint32_t FinalLen = Slots;
  std::vector<uint8_t> IsBoundary(FinalLen + 1, 0);
  IsBoundary[0] = 1; // The initial length is also observable.
  for (uint32_t B : Boundaries)
    IsBoundary[B] = 1;

  Transaction Tx(1, 0, 0, ir::MethodId(0), true);
  std::atomic<bool> Start{false};

  std::thread Sampler([&] {
    while (!Start.load(std::memory_order_acquire)) {
    }
    uint32_t Prev = 0;
    uint64_t Samples = 0;
    bool BadBoundary = false, NonMonotonic = false, OverPublished = false;
    for (;;) {
      const uint32_t Len = Tx.LogLen.load(std::memory_order_acquire);
      ++Samples;
      OverPublished |= Len > FinalLen;
      NonMonotonic |= Len < Prev;
      BadBoundary |= Len <= FinalLen && !IsBoundary[Len];
      Prev = Len;
      if (Len == FinalLen)
        break;
    }
    EXPECT_FALSE(OverPublished) << "sample exceeded the published length";
    EXPECT_FALSE(NonMonotonic) << "published lengths went backwards";
    EXPECT_FALSE(BadBoundary)
        << "a sample split a record (mid-EdgeIn position published)";
    EXPECT_GT(Samples, 0u);
  });

  LogChunkCache Cache; // No pool: plain allocation, single owner thread.
  Start.store(true, std::memory_order_release);
  for (uint32_t I = 0; I < NumRecords; ++I) {
    LogEntry E;
    if (I % EdgeInPeriod == EdgeInPeriod - 1) {
      E.K = LogEntry::Kind::EdgeIn;
      E.Obj = 1;
      E.Addr = I;
      E.SrcSeq = I;
      E.Time = I + 1;
    } else {
      E.K = I % 2 == 0 ? LogEntry::Kind::Read : LogEntry::Kind::Write;
      E.Obj = I;
      E.Addr = I * 3 + 1;
    }
    Tx.appendLog(E, &Cache);
  }
  Sampler.join();

  // The cursor's record boundaries must be exactly the published ones, and
  // the log decodes back to what was appended.
  uint32_t I = 0;
  for (LogCursor C(Tx); !C.atEnd(); C.advance(), ++I) {
    ASSERT_LT(I, NumRecords);
    EXPECT_EQ(C.pos(), I == 0 ? 0 : Boundaries[I - 1]);
    const LogEntry E = C.current();
    if (I % EdgeInPeriod == EdgeInPeriod - 1) {
      EXPECT_EQ(E.K, LogEntry::Kind::EdgeIn);
      EXPECT_EQ(E.SrcSeq, I);
      EXPECT_EQ(E.Time, I + 1);
    } else {
      EXPECT_EQ(E.K,
                I % 2 == 0 ? LogEntry::Kind::Read : LogEntry::Kind::Write);
      EXPECT_EQ(E.Addr, I * 3 + 1);
    }
  }
  EXPECT_EQ(I, NumRecords);
}

TEST(SrcPosSamplingTest, ConcurrentRunsReplaySampledPositionsToCompletion) {
  // Whole-checker runs on real interpreter threads: cross edges sample
  // LogLen lock-free while owners append, and PCD replays the sampled
  // SrcPos constraints. A stuck replay (unsatisfiable constraints) would
  // mean a sampled position was not a valid linearization point.
  ir::Program P = testprogs::racyBank(3, 300, 2);
  core::AtomicitySpec Spec = core::AtomicitySpec::initial(P);
  for (uint64_t Seed = 0; Seed < 3; ++Seed) {
    core::RunConfig Cfg;
    Cfg.M = core::Mode::SingleRun;
    Cfg.RunOpts.Deterministic = false; // Real threads, real racing appends.
    Cfg.RunOpts.ScheduleSeed = Seed;
    core::RunOutcome O = core::runChecker(P, Spec, Cfg);
    EXPECT_FALSE(O.Result.Aborted);
    EXPECT_EQ(O.stat("pcd.replay_stuck"), 0u) << "seed " << Seed;
  }
}

TEST(SrcPosSamplingTest, LegacyPathHonorsTheSameContract) {
  ir::Program P = testprogs::racyBank(3, 300, 2);
  core::AtomicitySpec Spec = core::AtomicitySpec::initial(P);
  core::RunConfig Cfg;
  Cfg.M = core::Mode::SingleRun;
  Cfg.RunOpts.Deterministic = false;
  Cfg.LegacyLog = true;
  core::RunOutcome O = core::runChecker(P, Spec, Cfg);
  EXPECT_FALSE(O.Result.Aborted);
  EXPECT_EQ(O.stat("pcd.replay_stuck"), 0u);
}

} // namespace
