//===- tests/octet_test.cpp - Octet state machine tests (Table 1) ---------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises every row of the paper's Table 1 plus the coordination
/// protocol and the listener callbacks. Tests drive barriers for several
/// *program* threads from one OS thread: a thread that has not called
/// threadStarted() is in the blocked state, so requesters use the implicit
/// protocol and every transition completes synchronously — the multi-thread
/// explicit path is covered separately with real threads.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <thread>

#include "ir/Builder.h"
#include "octet/OctetManager.h"
#include "rt/Runtime.h"

using namespace dc;
using namespace dc::octet;

namespace {

ir::Program tinyProgram(uint32_t Threads) {
  ir::ProgramBuilder B("octet");
  B.addPool("objs", 8, 2);
  ir::MethodId Main = B.beginMethod("main", false).work(1).endMethod();
  for (uint32_t T = 0; T < Threads; ++T)
    B.addThread(Main);
  return B.build();
}

/// Records every listener callback.
class RecordingListener : public OctetListener {
public:
  struct ConflictEvent {
    uint32_t Resp;
    Transition T;
  };
  std::vector<ConflictEvent> Conflicts;
  std::vector<uint32_t> BecameRdEx;
  std::vector<std::tuple<uint32_t, uint32_t, uint64_t>> Upgrades;
  std::vector<uint32_t> Fences;
  SpinLock Lock;

  void onConflictingEdge(uint32_t RespTid, const Transition &T) override {
    SpinLockGuard G(Lock);
    Conflicts.push_back({RespTid, T});
  }
  void onBecameRdEx(uint32_t Tid) override {
    SpinLockGuard G(Lock);
    BecameRdEx.push_back(Tid);
  }
  void onUpgradeToRdSh(uint32_t Tid, uint32_t OldOwner,
                       uint64_t Counter) override {
    SpinLockGuard G(Lock);
    Upgrades.emplace_back(Tid, OldOwner, Counter);
  }
  void onFence(uint32_t Tid) override {
    SpinLockGuard G(Lock);
    Fences.push_back(Tid);
  }
};

/// Test fixture: heap for 4 program threads, a recording listener, and
/// thread contexts driven from the test's own OS thread.
class OctetTest : public ::testing::Test {
protected:
  OctetTest()
      : P(tinyProgram(4)), RT(P, nullptr),
        Manager(RT.heap(), 4, &Listener, Stats) {
    for (uint32_t T = 0; T < 4; ++T) {
      Tc[T].Tid = T;
      Tc[T].RT = &RT;
    }
  }

  OctetState state(rt::ObjectId Obj) { return Manager.stateOf(Obj); }

  ir::Program P;
  rt::Runtime RT;
  StatisticRegistry Stats;
  RecordingListener Listener;
  OctetManager Manager;
  rt::ThreadContext Tc[4];
};

TEST_F(OctetTest, InitialStateIsUntouched) {
  EXPECT_EQ(state(0).Kind, StateKind::Untouched);
}

TEST_F(OctetTest, FirstWriteClaimsWrEx) {
  Manager.writeBarrier(Tc[0], 0);
  EXPECT_EQ(state(0), (OctetState{StateKind::WrEx, 0, 0}));
  EXPECT_TRUE(Listener.Conflicts.empty()) << "claims imply no dependence";
}

TEST_F(OctetTest, FirstReadClaimsRdExAndUpdatesLastRdEx) {
  Manager.readBarrier(Tc[1], 0);
  EXPECT_EQ(state(0), (OctetState{StateKind::RdEx, 1, 0}));
  ASSERT_EQ(Listener.BecameRdEx.size(), 1u);
  EXPECT_EQ(Listener.BecameRdEx[0], 1u);
}

// --- Table 1 "Same state" rows: no transition, no callbacks -------------

TEST_F(OctetTest, SameStateWrExReadAndWriteByOwner) {
  Manager.writeBarrier(Tc[0], 0);
  Manager.readBarrier(Tc[0], 0);
  Manager.writeBarrier(Tc[0], 0);
  EXPECT_EQ(state(0), (OctetState{StateKind::WrEx, 0, 0}));
  EXPECT_TRUE(Listener.Conflicts.empty());
  EXPECT_TRUE(Listener.Upgrades.empty());
}

TEST_F(OctetTest, SameStateRdExReadByOwner) {
  Manager.readBarrier(Tc[0], 0);
  Listener.BecameRdEx.clear();
  Manager.readBarrier(Tc[0], 0);
  EXPECT_EQ(state(0), (OctetState{StateKind::RdEx, 0, 0}));
  EXPECT_TRUE(Listener.BecameRdEx.empty());
}

// --- Table 1 "Upgrading" rows --------------------------------------------

TEST_F(OctetTest, UpgradeRdExToWrExByOwnerNoCallback) {
  Manager.readBarrier(Tc[0], 0);
  Listener.BecameRdEx.clear();
  Manager.writeBarrier(Tc[0], 0);
  EXPECT_EQ(state(0), (OctetState{StateKind::WrEx, 0, 0}));
  // ICD safely ignores RdEx->WrEx upgrades: no callback of any kind.
  EXPECT_TRUE(Listener.Conflicts.empty());
  EXPECT_TRUE(Listener.Upgrades.empty());
  EXPECT_TRUE(Listener.BecameRdEx.empty());
}

TEST_F(OctetTest, UpgradeRdExToRdShByOtherReader) {
  Manager.readBarrier(Tc[0], 0); // RdEx_0.
  Manager.readBarrier(Tc[1], 0); // Upgrade to RdSh_c.
  OctetState S = state(0);
  EXPECT_EQ(S.Kind, StateKind::RdSh);
  EXPECT_GE(S.Counter, 1u);
  ASSERT_EQ(Listener.Upgrades.size(), 1u);
  EXPECT_EQ(std::get<0>(Listener.Upgrades[0]), 1u); // Reader.
  EXPECT_EQ(std::get<1>(Listener.Upgrades[0]), 0u); // Old owner.
  EXPECT_EQ(std::get<2>(Listener.Upgrades[0]), S.Counter);
  EXPECT_TRUE(Listener.Conflicts.empty()) << "upgrades do not coordinate";
}

TEST_F(OctetTest, RdShCounterIncreasesPerUpgrade) {
  Manager.readBarrier(Tc[0], 0);
  Manager.readBarrier(Tc[1], 0); // RdSh_c1.
  Manager.readBarrier(Tc[0], 1);
  Manager.readBarrier(Tc[1], 1); // RdSh_c2.
  EXPECT_GT(state(1).Counter, state(0).Counter);
  EXPECT_GE(Manager.globalRdShCounter(), 2u);
}

// --- Table 1 "Fence" row ---------------------------------------------------

TEST_F(OctetTest, FenceTriggersOnlyWhenCounterStale) {
  Manager.readBarrier(Tc[0], 0);
  Manager.readBarrier(Tc[1], 0); // RdSh_c; t1 is up to date, t0 is not.
  EXPECT_TRUE(Listener.Fences.empty());

  Manager.readBarrier(Tc[2], 0); // t2 stale -> fence.
  ASSERT_EQ(Listener.Fences.size(), 1u);
  EXPECT_EQ(Listener.Fences[0], 2u);

  Manager.readBarrier(Tc[2], 0); // Up to date now: fast path.
  EXPECT_EQ(Listener.Fences.size(), 1u);

  Manager.readBarrier(Tc[1], 0); // The upgrader is already up to date.
  EXPECT_EQ(Listener.Fences.size(), 1u);
}

TEST_F(OctetTest, NewerRdShCounterCoversOlderObjects) {
  // Paper Fig. 2/3: a thread whose rdShCnt is ahead of an object's RdSh
  // stamp reads it without a fence.
  Manager.readBarrier(Tc[0], 0);
  Manager.readBarrier(Tc[1], 0); // o: RdSh_c.
  Manager.readBarrier(Tc[0], 1);
  Manager.readBarrier(Tc[1], 1); // p: RdSh_{c+1}; t1 current to c+1.
  Listener.Fences.clear();
  Manager.readBarrier(Tc[1], 0); // Older stamp: no fence.
  EXPECT_TRUE(Listener.Fences.empty());
  // t3 reads p (newest counter): one fence; then o: covered, no fence.
  Manager.readBarrier(Tc[3], 1);
  ASSERT_EQ(Listener.Fences.size(), 1u);
  Manager.readBarrier(Tc[3], 0);
  EXPECT_EQ(Listener.Fences.size(), 1u);
}

// --- Table 1 "Conflicting" rows -------------------------------------------

TEST_F(OctetTest, ConflictWrExToWrEx) {
  Manager.writeBarrier(Tc[0], 0);
  Manager.writeBarrier(Tc[1], 0);
  EXPECT_EQ(state(0), (OctetState{StateKind::WrEx, 1, 0}));
  ASSERT_EQ(Listener.Conflicts.size(), 1u);
  EXPECT_EQ(Listener.Conflicts[0].Resp, 0u);
  EXPECT_EQ(Listener.Conflicts[0].T.Requester, 1u);
  EXPECT_EQ(Listener.Conflicts[0].T.Old.Kind, StateKind::WrEx);
  EXPECT_EQ(Listener.Conflicts[0].T.New.Kind, StateKind::WrEx);
}

TEST_F(OctetTest, ConflictWrExToRdEx) {
  Manager.writeBarrier(Tc[0], 0);
  Manager.readBarrier(Tc[1], 0);
  EXPECT_EQ(state(0), (OctetState{StateKind::RdEx, 1, 0}));
  ASSERT_EQ(Listener.Conflicts.size(), 1u);
  EXPECT_EQ(Listener.Conflicts[0].Resp, 0u);
  // The requester became the RdEx owner: lastRdEx callback fired.
  ASSERT_EQ(Listener.BecameRdEx.size(), 1u);
  EXPECT_EQ(Listener.BecameRdEx[0], 1u);
}

TEST_F(OctetTest, ConflictRdExToWrEx) {
  Manager.readBarrier(Tc[0], 0);
  Manager.writeBarrier(Tc[1], 0);
  EXPECT_EQ(state(0), (OctetState{StateKind::WrEx, 1, 0}));
  ASSERT_EQ(Listener.Conflicts.size(), 1u);
  EXPECT_EQ(Listener.Conflicts[0].Resp, 0u);
}

TEST_F(OctetTest, ConflictRdShToWrExCoordinatesWithAllThreads) {
  Manager.readBarrier(Tc[0], 0);
  Manager.readBarrier(Tc[1], 0); // RdSh.
  Listener.Conflicts.clear();
  Manager.writeBarrier(Tc[2], 0);
  EXPECT_EQ(state(0), (OctetState{StateKind::WrEx, 2, 0}));
  // One roundtrip per other thread (paper: "adds edges from all threads").
  ASSERT_EQ(Listener.Conflicts.size(), 3u);
  std::set<uint32_t> Responders;
  for (const auto &C : Listener.Conflicts) {
    EXPECT_EQ(C.T.Requester, 2u);
    Responders.insert(C.Resp);
  }
  EXPECT_EQ(Responders, (std::set<uint32_t>{0, 1, 3}));
}

TEST_F(OctetTest, StatisticsFlushCountsTransitions) {
  Manager.writeBarrier(Tc[0], 0); // claim
  Manager.writeBarrier(Tc[0], 0); // fast
  Manager.readBarrier(Tc[0], 0);  // fast (WrEx owner read)
  Manager.writeBarrier(Tc[1], 0); // conflict
  Manager.readBarrier(Tc[2], 0);  // conflict (WrEx->RdEx)
  Manager.readBarrier(Tc[3], 0);  // upgrade to RdSh
  Manager.readBarrier(Tc[0], 0);  // fence
  Manager.flushStatistics();
  EXPECT_EQ(Stats.value("octet.claims"), 1u);
  EXPECT_EQ(Stats.value("octet.fast_write"), 1u);
  EXPECT_EQ(Stats.value("octet.fast_read"), 1u);
  EXPECT_EQ(Stats.value("octet.conflicting"), 2u);
  EXPECT_EQ(Stats.value("octet.upgrade_rdsh"), 1u);
  EXPECT_EQ(Stats.value("octet.fence"), 1u);
  EXPECT_EQ(Stats.value("octet.implicit_roundtrips"), 2u)
      << "unstarted responders are blocked: implicit protocol";
}

TEST_F(OctetTest, ExplicitProtocolWithRunningResponder) {
  // A real responder thread runs and polls safe points; the requester must
  // complete an explicit roundtrip.
  Manager.threadStarted(0);
  std::atomic<bool> Stop{false};
  std::thread Responder([&] {
    while (!Stop.load(std::memory_order_relaxed))
      Manager.pollSafePoint(0);
  });
  Manager.writeBarrier(Tc[0], 0); // Claim for thread 0... runs on this
  // OS thread but with Tc[0]; then thread 1 conflicts:
  Manager.threadStarted(1);
  Manager.writeBarrier(Tc[1], 0);
  Stop.store(true);
  Responder.join();
  EXPECT_EQ(state(0), (OctetState{StateKind::WrEx, 1, 0}));
  Manager.flushStatistics();
  EXPECT_EQ(Stats.value("octet.explicit_roundtrips"), 1u);
  Manager.threadExited(0);
  Manager.threadExited(1);
}

TEST_F(OctetTest, BlockedResponderViaImplicitProtocol) {
  Manager.threadStarted(0);
  Manager.writeBarrier(Tc[0], 0);
  Manager.aboutToBlock(0); // e.g. the thread parks on a monitor.
  Manager.threadStarted(1);
  Manager.writeBarrier(Tc[1], 0); // Implicit roundtrip, no waiting.
  EXPECT_EQ(state(0), (OctetState{StateKind::WrEx, 1, 0}));
  Manager.unblocked(0);
  Manager.flushStatistics();
  EXPECT_EQ(Stats.value("octet.implicit_roundtrips"), 1u);
}

} // namespace
