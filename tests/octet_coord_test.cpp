//===- tests/octet_coord_test.cpp - Pipelined coordination tests ----------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Coverage for the pipelined fan-out coordination protocol (DESIGN.md
/// §11): overlapping RdSh->WrEx and WrEx->WrEx coordinations against mixed
/// responder sets (executing, blocked, exited) with exactly-once listener
/// accounting, bit-equal listener edges serial vs. pipelined on a fixed
/// schedule, the spin-then-park path, and the abort-mid-coordination
/// regression (the seed returned from its roundtrip while a stack-allocated
/// request was still linked in the responder's mailbox; a late drain then
/// wrote into a dead frame — run this under ASan/TSan).
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

#include "core/Checker.h"
#include "ir/Builder.h"
#include "octet/OctetManager.h"
#include "rt/Runtime.h"
#include "support/Rng.h"

using namespace dc;
using namespace dc::octet;

namespace {

struct Edge {
  uint32_t Resp = 0;
  uint32_t Requester = 0;
  rt::ObjectId Obj = 0;
  OctetState Old;
  OctetState New;

  bool operator==(const Edge &O) const {
    return Resp == O.Resp && Requester == O.Requester && Obj == O.Obj &&
           Old == O.Old && New == O.New;
  }
};

class RecordingListener : public OctetListener {
public:
  void onConflictingEdge(uint32_t RespTid, const Transition &T) override {
    std::lock_guard<std::mutex> G(M);
    Edges.push_back({RespTid, T.Requester, T.Obj, T.Old, T.New});
  }

  std::vector<Edge> edges() {
    std::lock_guard<std::mutex> G(M);
    return Edges;
  }

private:
  std::mutex M;
  std::vector<Edge> Edges;
};

ir::Program heapProgram(uint32_t Objects, uint32_t Threads) {
  ir::ProgramBuilder B("coord");
  B.addPool("objs", Objects, 1);
  ir::MethodId Main = B.beginMethod("main", false).work(1).endMethod();
  for (uint32_t T = 0; T < Threads; ++T)
    B.addThread(Main);
  return B.build();
}

rt::ThreadContext makeTC(rt::Runtime &RT, uint32_t Tid) {
  rt::ThreadContext TC;
  TC.Tid = Tid;
  TC.RT = &RT;
  return TC;
}

// Multiple requesters running RdSh->WrEx and WrEx->WrEx fan-outs at once
// against overlapping responder sets: two executing pollers, one blocked
// thread, one exited thread, and each other. Checks termination (the test
// completes), exactly-once callbacks, and counter consistency.
TEST(OctetCoordTest, ConcurrentFanOutsAgainstMixedResponders) {
  constexpr uint32_t NumThreads = 6;
  constexpr uint32_t Objects = 6;
  constexpr uint64_t OpsPerRequester = 4000;

  ir::Program P = heapProgram(Objects, NumThreads);
  rt::Runtime RT(P, nullptr);
  StatisticRegistry Stats;
  RecordingListener Listener;
  OctetManager Manager(RT.heap(), NumThreads, &Listener, Stats);

  // Tid 4: starts, takes ownership of object 4, then blocks for the whole
  // run — requesters coordinate with it implicitly.
  {
    rt::ThreadContext TC = makeTC(RT, 4);
    Manager.threadStarted(4);
    Manager.writeBarrier(TC, 4);
    Manager.aboutToBlock(4);
  }
  // Tid 5: starts, takes ownership of object 5, and exits — requesters
  // coordinate with a permanently-blocked responder.
  {
    rt::ThreadContext TC = makeTC(RT, 5);
    Manager.threadStarted(5);
    Manager.writeBarrier(TC, 5);
    Manager.threadExited(5);
  }

  std::atomic<bool> Stop{false};
  std::vector<std::thread> Workers;
  // Tids 2 and 3: executing responders. They answer requests at their safe
  // points and read the shared objects so RdSh states include them.
  for (uint32_t T = 2; T <= 3; ++T) {
    Workers.emplace_back([&, T] {
      rt::ThreadContext TC = makeTC(RT, T);
      Manager.threadStarted(T);
      SplitMix64 Rng(T * 31 + 7);
      while (!Stop.load(std::memory_order_acquire)) {
        Manager.pollSafePoint(T);
        if (Rng.chancePercent(25))
          Manager.readBarrier(
              TC, static_cast<rt::ObjectId>(Rng.nextBelow(Objects)));
        if (Rng.chancePercent(1)) {
          Manager.aboutToBlock(T);
          std::this_thread::yield();
          Manager.unblocked(T);
        }
      }
      Manager.threadExited(T);
    });
  }
  // Tids 0 and 1: requesters. Reads drive objects into RdSh (with the
  // pollers and each other), writes then trigger RdSh->WrEx fan-outs to
  // all five other threads; alternating writes ping WrEx->WrEx.
  for (uint32_t T = 0; T <= 1; ++T) {
    Workers.emplace_back([&, T] {
      rt::ThreadContext TC = makeTC(RT, T);
      Manager.threadStarted(T);
      SplitMix64 Rng(T * 7919 + 13);
      for (uint64_t Op = 0; Op < OpsPerRequester; ++Op) {
        rt::ObjectId Obj = static_cast<rt::ObjectId>(Rng.nextBelow(Objects));
        if (Rng.chancePercent(40))
          Manager.writeBarrier(TC, Obj);
        else
          Manager.readBarrier(TC, Obj);
        Manager.pollSafePoint(T);
      }
      Manager.threadExited(T);
    });
  }
  for (size_t I = 2; I < Workers.size(); ++I)
    Workers[I].join(); // Requesters finish first...
  Stop.store(true, std::memory_order_release);
  Workers[0].join(); // ...then release the pollers.
  Workers[1].join();

  Manager.flushStatistics();
  const std::vector<Edge> Edges = Listener.edges();

  // Every callback names a real conflict: never self, and single-responder
  // transitions must notify exactly the old owner.
  for (const Edge &E : Edges) {
    EXPECT_NE(E.Resp, E.Requester);
    if (E.Old.Kind == StateKind::WrEx || E.Old.Kind == StateKind::RdEx) {
      EXPECT_EQ(E.Resp, E.Old.Owner)
          << "single-responder transition notified a bystander";
    }
  }

  // Exactly-once per (responder, transition): each RdSh->WrEx coordination
  // is uniquely keyed by the RdSh counter it retires (the global counter
  // is never reused), and must have produced one callback per other
  // thread — no responder missed, none notified twice.
  std::map<uint64_t, std::pair<uint32_t, std::vector<uint32_t>>> FanOuts;
  for (const Edge &E : Edges)
    if (E.Old.Kind == StateKind::RdSh) {
      auto &F = FanOuts[E.Old.Counter];
      F.first = E.Requester;
      F.second.push_back(E.Resp);
    }
  for (auto &[Counter, F] : FanOuts) {
    std::vector<uint32_t> Expect;
    for (uint32_t T = 0; T < NumThreads; ++T)
      if (T != F.first)
        Expect.push_back(T);
    std::sort(F.second.begin(), F.second.end());
    EXPECT_EQ(F.second, Expect)
        << "RdSh(" << Counter << ") fan-out by requester " << F.first
        << " did not reach every other thread exactly once";
  }
  EXPECT_FALSE(FanOuts.empty()) << "workload produced no RdSh->WrEx fan-outs";

  // Counter consistency: one roundtrip per callback, and the fan-out
  // batches accounted for every responder they visited.
  const uint64_t Roundtrips = Stats.value("octet.explicit_roundtrips") +
                              Stats.value("octet.implicit_roundtrips");
  EXPECT_EQ(Edges.size(), Roundtrips);
  EXPECT_EQ(Stats.value("octet.fanout_responders"), Roundtrips);
  EXPECT_EQ(Stats.value("octet.conflicting"),
            Stats.value("octet.fanout_batches"));
  EXPECT_EQ(Stats.value("octet.cancelled_requests"), 0u);
}

// On a fixed schedule the pipelined fan-out and the seed's serial protocol
// must produce bit-identical listener edges — same responders, same
// transitions, same order. Drives four logical threads deterministically
// from one OS thread (all stay formally blocked, so every coordination is
// synchronous), replaying one pseudo-random op tape against both modes.
TEST(OctetCoordTest, FanOutMatchesSerialOnFixedSchedule) {
  constexpr uint32_t NumThreads = 4;
  constexpr uint32_t Objects = 6;
  constexpr int Ops = 5000;

  auto record = [&](bool Serial) {
    ir::Program P = heapProgram(Objects, NumThreads);
    rt::Runtime RT(P, nullptr);
    StatisticRegistry Stats;
    RecordingListener Listener;
    OctetManager Manager(RT.heap(), NumThreads, &Listener, Stats, nullptr,
                         Serial);
    SplitMix64 Rng(42);
    for (int Op = 0; Op < Ops; ++Op) {
      uint32_t Tid = static_cast<uint32_t>(Rng.nextBelow(NumThreads));
      rt::ThreadContext TC = makeTC(RT, Tid);
      rt::ObjectId Obj = static_cast<rt::ObjectId>(Rng.nextBelow(Objects));
      if (Rng.chancePercent(35))
        Manager.writeBarrier(TC, Obj);
      else
        Manager.readBarrier(TC, Obj);
    }
    return Listener.edges();
  };

  const std::vector<Edge> Fanout = record(/*Serial=*/false);
  const std::vector<Edge> Serial = record(/*Serial=*/true);
  ASSERT_FALSE(Fanout.empty());
  ASSERT_EQ(Fanout.size(), Serial.size());
  for (size_t I = 0; I < Fanout.size(); ++I)
    EXPECT_TRUE(Fanout[I] == Serial[I]) << "edge " << I << " differs";
}

// Checker-level version of the same property: on one deterministic gate
// schedule, SerialRoundtrips must blame exactly the same methods as the
// pipelined default (the IDG the listener builds is the same).
TEST(OctetCoordTest, SerialRoundtripsBlamesIdentically) {
  using namespace dc::ir;
  ProgramBuilder B("coordprog", 9);
  PoolId Shared = B.addPool("shared", 2, 1);
  MethodId Inc = B.beginMethod("inc", true)
                     .read(Shared, idxParam(1, 0, 2), 0u)
                     .work(3)
                     .write(Shared, idxParam(1, 0, 2), 0u)
                     .endMethod();
  auto &Worker = B.beginMethod("worker", false).beginLoop(idxConst(15));
  Worker.call(Inc, idxRandom(2));
  Worker.endLoop();
  MethodId WorkerId = Worker.endMethod();
  auto &Main = B.beginMethod("main", false);
  for (uint32_t W = 1; W <= 2; ++W)
    Main.forkThread(idxConst(W));
  for (uint32_t W = 1; W <= 2; ++W)
    Main.joinThread(idxConst(W));
  MethodId MainId = Main.endMethod();
  B.addThread(MainId);
  B.addThread(WorkerId);
  B.addThread(WorkerId);
  Program P = B.build();
  core::AtomicitySpec Spec = core::AtomicitySpec::initial(P);

  for (uint64_t Seed = 0; Seed < 3; ++Seed) {
    auto cfg = [&](bool Serial) {
      core::RunConfig Cfg;
      Cfg.M = core::Mode::SingleRun;
      Cfg.RunOpts.Deterministic = true;
      Cfg.RunOpts.ScheduleSeed = Seed;
      Cfg.SerialRoundtrips = Serial;
      return Cfg;
    };
    core::RunOutcome Fanout = core::runChecker(P, Spec, cfg(false));
    core::RunOutcome Serial = core::runChecker(P, Spec, cfg(true));
    ASSERT_FALSE(Fanout.Result.Aborted);
    ASSERT_FALSE(Serial.Result.Aborted);
    EXPECT_EQ(Fanout.BlamedMethods, Serial.BlamedMethods)
        << "schedule seed " << Seed;
    EXPECT_EQ(Fanout.Violations.empty(), Serial.Violations.empty());
  }
}

// A responder that stays away from safe points longer than the spin bound
// forces the requester through the park path; the wake on Done must bring
// it back and complete the coordination.
TEST(OctetCoordTest, RequesterParksWhenResponderIsSlow) {
  ir::Program P = heapProgram(2, 2);
  rt::Runtime RT(P, nullptr);
  StatisticRegistry Stats;
  RecordingListener Listener;
  OctetManager Manager(RT.heap(), 2, &Listener, Stats);

  std::atomic<bool> Owned{false};
  std::atomic<bool> Stop{false};
  std::thread Responder([&] {
    rt::ThreadContext TC = makeTC(RT, 1);
    Manager.threadStarted(1);
    Manager.writeBarrier(TC, 0); // Claim: object 0 becomes WrEx(1).
    Owned.store(true, std::memory_order_release);
    // Stay executing but away from safe points until the requester has
    // really exhausted its spin budget and parked (a fixed sleep flakes
    // under load: a preempted requester can find the response mid-spin).
    while (!Manager.isParkedForTest(0))
      std::this_thread::yield();
    while (!Stop.load(std::memory_order_acquire)) {
      Manager.pollSafePoint(1);
      std::this_thread::yield();
    }
    Manager.threadExited(1);
  });

  rt::ThreadContext TC = makeTC(RT, 0);
  Manager.threadStarted(0);
  while (!Owned.load(std::memory_order_acquire))
    std::this_thread::yield();
  Manager.writeBarrier(TC, 0); // WrEx(1) -> WrEx(0): explicit roundtrip.
  Stop.store(true, std::memory_order_release);
  Manager.threadExited(0);
  Responder.join();

  EXPECT_EQ(Manager.stateOf(0).Kind, StateKind::WrEx);
  EXPECT_EQ(Manager.stateOf(0).Owner, 0u);
  Manager.flushStatistics();
  EXPECT_EQ(Stats.value("octet.explicit_roundtrips"), 1u);
  EXPECT_GE(Stats.value("octet.parks"), 1u)
      << "requester should have parked while the responder slept";
  const std::vector<Edge> Edges = Listener.edges();
  ASSERT_EQ(Edges.size(), 1u);
  EXPECT_EQ(Edges[0].Resp, 1u);
  EXPECT_EQ(Edges[0].Requester, 0u);
}

// Abort-mid-coordination regression (ISSUE 5 satellite): the requester
// posts to an executing responder that never reaches a safe point, the
// run aborts, and the requester must retire the posted request before
// returning — the responder's eventual drain may only skip it. The seed
// left the stack-allocated request linked in the mailbox; under ASan the
// late drain then wrote Done into a dead frame.
class OctetCoordAbortTest : public ::testing::TestWithParam<bool> {};

TEST_P(OctetCoordAbortTest, AbortMidCoordinationRetiresRequest) {
  const bool Serial = GetParam();
  ir::Program P = heapProgram(2, 2);
  rt::Runtime RT(P, nullptr);
  StatisticRegistry Stats;
  RecordingListener Listener;
  std::atomic<bool> Abort{false};
  OctetManager Manager(RT.heap(), 2, &Listener, Stats, &Abort, Serial);

  std::atomic<bool> Owned{false};
  std::atomic<bool> Release{false};
  std::thread Responder([&] {
    rt::ThreadContext TC = makeTC(RT, 1);
    Manager.threadStarted(1);
    Manager.writeBarrier(TC, 0);
    Owned.store(true, std::memory_order_release);
    // Hold the request hostage: no safe point until released.
    while (!Release.load(std::memory_order_acquire))
      std::this_thread::yield();
    // The late drain: must skip the cancelled request, not complete it.
    Manager.pollSafePoint(1);
    Manager.threadExited(1);
  });

  std::thread Requester([&] {
    rt::ThreadContext TC = makeTC(RT, 0);
    Manager.threadStarted(0);
    while (!Owned.load(std::memory_order_acquire))
      std::this_thread::yield();
    // Conflicting WrEx(1) -> WrEx(0); the responder never answers, so this
    // returns only via the abort path.
    Manager.writeBarrier(TC, 0);
  });

  // Wait until the coordination is in flight (object parked intermediate),
  // give the post time to land, then abort the run.
  while (Manager.stateOf(0).Kind != StateKind::IntWrEx)
    std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Abort.store(true, std::memory_order_release);
  Requester.join(); // Must terminate: the request is cancelled, not leaked.
  Release.store(true, std::memory_order_release);
  Responder.join();

  Manager.flushStatistics();
  EXPECT_EQ(Stats.value("octet.cancelled_requests"), 1u);
  EXPECT_EQ(Stats.value("octet.explicit_roundtrips"), 0u);
  // The cancelled roundtrip must not have produced a callback.
  EXPECT_TRUE(Listener.edges().empty());
}

INSTANTIATE_TEST_SUITE_P(BothProtocols, OctetCoordAbortTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &I) {
                           return I.param ? "Serial" : "Fanout";
                         });

} // namespace
