//===- tests/octet_stress_test.cpp - Concurrent Octet stress --------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hammers the Octet state machine with real concurrent threads mixing
/// reads, writes, and blocking episodes. Checks liveness (no hangs), final
/// state validity (never left in an intermediate state), and accounting
/// (every access hit exactly one of the fast/claim/conflict/upgrade/fence
/// buckets).
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <thread>

#include "ir/Builder.h"
#include "octet/OctetManager.h"
#include "rt/Runtime.h"
#include "support/Rng.h"

using namespace dc;
using namespace dc::octet;

namespace {

ir::Program stressProgram(uint32_t Objects) {
  ir::ProgramBuilder B("stress");
  B.addPool("objs", Objects, 1);
  ir::MethodId Main = B.beginMethod("main", false).work(1).endMethod();
  for (int T = 0; T < 4; ++T)
    B.addThread(Main);
  return B.build();
}

TEST(OctetStressTest, ConcurrentBarriersStayConsistent) {
  constexpr uint32_t Threads = 4;
  constexpr uint32_t Objects = 16;
  constexpr uint64_t OpsPerThread = 40000;

  ir::Program P = stressProgram(Objects);
  rt::Runtime RT(P, nullptr);
  StatisticRegistry Stats;
  OctetManager Manager(RT.heap(), Threads, nullptr, Stats);

  std::vector<std::thread> Workers;
  for (uint32_t T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      rt::ThreadContext TC;
      TC.Tid = T;
      TC.RT = &RT;
      Manager.threadStarted(T);
      SplitMix64 Rng(T * 7919 + 13);
      for (uint64_t Op = 0; Op < OpsPerThread; ++Op) {
        rt::ObjectId Obj = static_cast<rt::ObjectId>(Rng.nextBelow(Objects));
        if (Rng.chancePercent(30))
          Manager.writeBarrier(TC, Obj);
        else
          Manager.readBarrier(TC, Obj);
        Manager.pollSafePoint(T);
        if (Rng.chancePercent(2)) {
          // A short blocking episode exercises the implicit protocol.
          Manager.aboutToBlock(T);
          std::this_thread::yield();
          Manager.unblocked(T);
        }
      }
      Manager.threadExited(T);
    });
  }
  for (std::thread &W : Workers)
    W.join();

  // Every object must have settled in a non-intermediate state.
  for (rt::ObjectId Obj = 0; Obj < Objects; ++Obj) {
    OctetState S = Manager.stateOf(Obj);
    EXPECT_TRUE(S.Kind == StateKind::WrEx || S.Kind == StateKind::RdEx ||
                S.Kind == StateKind::RdSh)
        << "object " << Obj << " left in " << toString(S);
  }

  // Accounting: every access landed in exactly one bucket.
  Manager.flushStatistics();
  uint64_t Total = Stats.value("octet.fast_read") +
                   Stats.value("octet.fast_write") +
                   Stats.value("octet.claims") +
                   Stats.value("octet.conflicting") +
                   Stats.value("octet.upgrade_wrex") +
                   Stats.value("octet.upgrade_rdsh") +
                   Stats.value("octet.fence");
  // Slow-path retries may re-run the loop, but each *completed* access
  // increments exactly one bucket, and slow reads that find the state
  // already readable return without counting — so Total can slightly
  // exceed or meet the op count, never fall far below.
  EXPECT_GE(Total + OpsPerThread / 10, Threads * OpsPerThread);
  EXPECT_GT(Stats.value("octet.conflicting"), 0u);
  EXPECT_GT(Stats.value("octet.upgrade_rdsh"), 0u);
}

TEST(OctetStressTest, CountersMonotoneUnderContention) {
  constexpr uint32_t Threads = 3;
  ir::Program P = stressProgram(4);
  rt::Runtime RT(P, nullptr);
  StatisticRegistry Stats;
  OctetManager Manager(RT.heap(), Threads, nullptr, Stats);

  std::vector<std::thread> Workers;
  for (uint32_t T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      rt::ThreadContext TC;
      TC.Tid = T;
      TC.RT = &RT;
      Manager.threadStarted(T);
      for (int Op = 0; Op < 20000; ++Op) {
        Manager.readBarrier(TC, static_cast<rt::ObjectId>(Op % 4));
        Manager.pollSafePoint(T);
      }
      Manager.threadExited(T);
    });
  }
  for (std::thread &W : Workers)
    W.join();
  // All-reader traffic drives every object into RdSh eventually.
  EXPECT_GE(Manager.globalRdShCounter(), 4u);
  for (rt::ObjectId Obj = 0; Obj < 4; ++Obj)
    EXPECT_EQ(Manager.stateOf(Obj).Kind, StateKind::RdSh);
}

} // namespace
