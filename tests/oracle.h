//===- tests/oracle.h - Shim over support/Oracle.h --------------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
// The oracle used to live here as a header + include-twice .inc pair; it is
// now the dc_oracle library (src/support/Oracle.{h,cpp}) shared by dcfuzz,
// the property tests, and the engine-agreement tests. This shim keeps the
// historical include path working.
//
//===----------------------------------------------------------------------===//

#ifndef DC_TESTS_ORACLE_H
#define DC_TESTS_ORACLE_H

#include "support/Oracle.h"

#endif // DC_TESTS_ORACLE_H
