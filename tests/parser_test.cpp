//===- tests/parser_test.cpp - IR text-format parser tests ----------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/Checker.h"
#include "instr/Instrument.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "tests/TestPrograms.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;

namespace {

/// print -> parse -> print must be a fixed point.
void expectRoundTrip(const Program &P) {
  std::string Text = toString(P);
  ParseResult R = parseProgram(Text);
  ASSERT_TRUE(R.Ok) << R.Error << " at line " << R.ErrorLine << "\n" << Text;
  EXPECT_EQ(toString(R.P), Text);
}

class WorkloadRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadRoundTrip, PrintParsePrintIsStable) {
  expectRoundTrip(workloads::build(GetParam(), 0.02));
}

std::vector<std::string> workloadNames() {
  std::vector<std::string> Names;
  for (const workloads::WorkloadInfo &W : workloads::all())
    Names.push_back(W.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadRoundTrip,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &Info) { return Info.param; });

TEST(ParserTest, RoundTripsInstrumentedPrograms) {
  // Compiled programs carry flags, clones, and syncflags.
  Program P = testprogs::racyBank(2, 10, 2);
  instr::InstrumentationOptions Opts;
  Opts.Checker = instr::CheckerKind::Octet;
  Opts.LogAccesses = true;
  Program C =
      instr::compile(P, core::AtomicitySpec::initial(P).excluded(), Opts);
  std::string Text = toString(C);
  ParseResult R = parseProgram(Text);
  ASSERT_TRUE(R.Ok) << R.Error << " at line " << R.ErrorLine;
  EXPECT_EQ(toString(R.P), Text);
  // Transaction demarcation survives the round trip.
  MethodId Deposit = R.P.findMethod("deposit");
  ASSERT_NE(Deposit, InvalidMethodId);
  EXPECT_TRUE(R.P.Methods[Deposit].StartsTransaction);
  EXPECT_NE(R.P.ThreadSyncFlags, IF_None);
}

TEST(ParserTest, ParsedProgramIsRunnable) {
  Program P = testprogs::racyBank(2, 50, 2);
  ParseResult R = parseProgram(toString(P));
  ASSERT_TRUE(R.Ok);
  core::RunConfig Cfg;
  Cfg.M = core::Mode::SingleRun;
  Cfg.RunOpts.Deterministic = true;
  core::RunOutcome O =
      core::runChecker(R.P, core::AtomicitySpec::initial(R.P), Cfg);
  EXPECT_FALSE(O.Result.Aborted);
  EXPECT_GT(O.Result.Steps, 0u);
}

TEST(ParserTest, ExpressionForms) {
  ParseResult R = parseProgram(
      "program exprs (seed 7)\n"
      "  pool p x4 fields=8\n"
      "  thread 0 -> @main\n"
      "method @main\n"
      "  read p[3] .2\n"
      "  read p[tid] .rnd % 8\n"
      "  read p[2*param+1 % 4] .0\n"
      "  loop 3\n"
      "    read p[loop0] .-1 % 8\n"
      "    loop tid+1\n"
      "      write p[3*loop1-2 % 4] .loop0\n"
      "  work 5 % 3\n");
  ASSERT_TRUE(R.Ok) << R.Error << " at line " << R.ErrorLine;
  const Method &M = R.P.Methods[0];
  ASSERT_EQ(M.Body.size(), 5u);
  EXPECT_EQ(M.Body[1].A.K, IndexExpr::Kind::Random);
  EXPECT_EQ(M.Body[1].A.Mod, 8u);
  EXPECT_EQ(M.Body[2].Obj.Index.Scale, 2);
  EXPECT_EQ(M.Body[2].Obj.Index.Offset, 1);
  EXPECT_EQ(M.Body[2].Obj.Index.Mod, 4u);
  const Instr &Outer = M.Body[3];
  ASSERT_EQ(Outer.Op, Opcode::Loop);
  EXPECT_EQ(Outer.Body[0].A.Offset, -1);
  const Instr &Inner = Outer.Body[1];
  ASSERT_EQ(Inner.Op, Opcode::Loop);
  EXPECT_EQ(Inner.A.K, IndexExpr::Kind::ThreadId);
  EXPECT_EQ(Inner.Body[0].Obj.Index.Scale, 3);
  EXPECT_EQ(Inner.Body[0].Obj.Index.LoopDepth, 1);
}

TEST(ParserTest, SkipsCommentLines) {
  // dcfuzz witness files prepend a '#' header (divergence description +
  // schedule) to the textual IR; the parser must ignore such lines
  // wherever they appear.
  ParseResult R = parseProgram("# dcfuzz witness v1\n"
                               "# schedule: 0 1 0 1\n"
                               "program x (seed 1)\n"
                               "  pool p x1 fields=1\n"
                               "# comment between declarations\n"
                               "  thread 0 -> @main\n"
                               "method @main\n"
                               "   # indented comment\n"
                               "  read p[0] .0\n");
  ASSERT_TRUE(R.Ok) << R.Error << " at line " << R.ErrorLine;
  ASSERT_EQ(R.P.Methods.size(), 1u);
  EXPECT_EQ(R.P.Methods[0].Body.size(), 1u);
}

TEST(ParserTest, ReportsUnknownPool) {
  ParseResult R = parseProgram("program x (seed 1)\n"
                               "  pool p x1 fields=1\n"
                               "  thread 0 -> @main\n"
                               "method @main\n"
                               "  read q[0] .0\n");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unknown pool"), std::string::npos);
  EXPECT_EQ(R.ErrorLine, 5u);
}

TEST(ParserTest, ReportsUnknownMethod) {
  ParseResult R = parseProgram("program x (seed 1)\n"
                               "  thread 0 -> @main\n"
                               "method @main\n"
                               "  call @nope(0)\n");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unknown method"), std::string::npos);
}

TEST(ParserTest, ReportsBadIndentation) {
  ParseResult R = parseProgram("program x (seed 1)\n"
                               "  thread 0 -> @main\n"
                               "method @main\n"
                               "   work 1\n"); // 3 spaces.
  EXPECT_FALSE(R.Ok);
}

TEST(ParserTest, ReportsMissingProgramHeader) {
  ParseResult R = parseProgram("pool p x1 fields=1\n");
  EXPECT_FALSE(R.Ok);
}

TEST(ParserTest, RunsVerifierOnResult) {
  // Structurally parseable but semantically invalid (recursion).
  ParseResult R = parseProgram("program x (seed 1)\n"
                               "  thread 0 -> @main\n"
                               "method @main\n"
                               "  call @main(0)\n");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("verifier"), std::string::npos);
}

TEST(ParserTest, ForwardCallsResolve) {
  ParseResult R = parseProgram("program x (seed 1)\n"
                               "  thread 0 -> @main\n"
                               "method @main\n"
                               "  call @later(2)\n"
                               "method @later atomic\n"
                               "  work 1\n");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.P.Methods[0].Body[0].Callee, R.P.findMethod("later"));
  EXPECT_TRUE(R.P.Methods[R.P.findMethod("later")].Atomic);
}

} // namespace
