//===- tests/pcd_test.cpp - PCD replay unit tests -------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests PCD on hand-built SCCs: Figure 5's dependence rules, cycle
/// reporting, blame assignment, and the replay-ordering constraints —
/// including the regression where an edge whose source transaction lies
/// outside the SCC (or whose sampled position is 0) must still order the
/// sink after the source thread's earlier transactions.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <memory>

#include "analysis/OnlinePcd.h"
#include "analysis/Pcd.h"

using namespace dc;
using namespace dc::analysis;

namespace {

/// Builder for synthetic SCC inputs.
class SccBuilder {
public:
  Transaction *tx(uint32_t Tid, uint64_t Seq, bool Regular = true,
                  ir::MethodId Site = 0) {
    Owned.push_back(std::make_unique<Transaction>(
        ++NextId, Tid, Seq, Regular ? Site : ir::InvalidMethodId, Regular));
    Transaction *T = Owned.back().get();
    T->Finished.store(true);
    return T;
  }

  static void read(Transaction *T, rt::FieldAddr Addr) {
    LogEntry E;
    E.K = LogEntry::Kind::Read;
    E.Addr = Addr;
    T->appendLog(E);
  }
  static void write(Transaction *T, rt::FieldAddr Addr) {
    LogEntry E;
    E.K = LogEntry::Kind::Write;
    E.Addr = Addr;
    T->appendLog(E);
  }
  /// Adds a cross-thread IDG edge Src@SrcPos -> Dst (EdgeIn marker at the
  /// sink's current position).
  void edge(Transaction *Src, uint32_t SrcPos, Transaction *Dst) {
    OutEdge E;
    E.Dst = Dst;
    E.Id = ++NextEdge;
    E.SrcPos = SrcPos;
    Src->Out.push_back(E);
    LogEntry Marker;
    Marker.K = LogEntry::Kind::EdgeIn;
    Marker.Obj = Src->Tid;
    Marker.Addr = SrcPos;
    Marker.SrcSeq = Src->SeqInThread;
    Dst->appendLog(Marker);
  }

  std::vector<Transaction *> members(std::initializer_list<Transaction *> L) {
    return std::vector<Transaction *>(L);
  }

private:
  std::vector<std::unique_ptr<Transaction>> Owned;
  uint64_t NextId = 0;
  uint64_t NextEdge = 0;
};

struct PcdHarness {
  StatisticRegistry Stats;
  ViolationLog Sink;
  PreciseCycleDetector Pcd{Sink, Stats};
};

TEST(PcdTest, WriteReadWriteCycleDetected) {
  // tx1 (t0): wr f, rd f later; tx2 (t1): wr f between them.
  SccBuilder B;
  Transaction *T1 = B.tx(0, 0, true, /*Site=*/1);
  Transaction *T2 = B.tx(1, 0, true, /*Site=*/2);
  SccBuilder::write(T1, 10);      // W(f) = T1.
  B.edge(T1, 1, T2);              // T2 starts after T1's write.
  SccBuilder::write(T2, 10);      // W-W: edge T1 -> T2.
  B.edge(T2, 2, T1);              // T1 continues after T2's write.
  SccBuilder::read(T1, 10);       // W-R: edge T2 -> T1 => cycle.

  PcdHarness H;
  H.Pcd.processScc({T1, T2});
  EXPECT_GE(H.Sink.count(), 1u);
  EXPECT_EQ(H.Stats.value("pcd.cycles"), 1u);
}

TEST(PcdTest, ReadWriteReadIsNotACycle) {
  // One-directional dependences only: no violation.
  SccBuilder B;
  Transaction *T1 = B.tx(0, 0);
  Transaction *T2 = B.tx(1, 0);
  SccBuilder::write(T1, 10);
  B.edge(T1, 1, T2);
  SccBuilder::read(T2, 10); // Only T1 -> T2.
  PcdHarness H;
  H.Pcd.processScc({T1, T2});
  EXPECT_EQ(H.Sink.count(), 0u);
}

TEST(PcdTest, DifferentFieldsNoDependence) {
  // ICD's object granularity can put these in one SCC; PCD (field
  // granularity) must stay silent.
  SccBuilder B;
  Transaction *T1 = B.tx(0, 0);
  Transaction *T2 = B.tx(1, 0);
  SccBuilder::write(T1, 10);
  SccBuilder::write(T2, 11);
  B.edge(T1, 1, T2);
  B.edge(T2, 1, T1);
  SccBuilder::read(T1, 11); // hmm — appended after the edge markers.
  PcdHarness H;
  H.Pcd.processScc({T1, T2});
  // T2 wr 11 -> T1 rd 11 is one direction; field 10 has a single writer.
  EXPECT_EQ(H.Sink.count(), 0u);
}

TEST(PcdTest, ReadWriteDependenceClearsReaders) {
  // Figure 5's WRITE rule: a write clears last-readers, so a second write
  // by the same thread adds no duplicate edges.
  SccBuilder B;
  Transaction *T1 = B.tx(0, 0);
  Transaction *T2 = B.tx(1, 0);
  SccBuilder::read(T1, 10);
  B.edge(T1, 1, T2);
  SccBuilder::write(T2, 10); // R-W edge T1 -> T2; readers cleared.
  SccBuilder::write(T2, 10); // No further cross edges.
  PcdHarness H;
  H.Pcd.processScc({T1, T2});
  EXPECT_EQ(H.Sink.count(), 0u);
  EXPECT_EQ(H.Stats.value("pcd.pdg_edges"), 1u);
}

TEST(PcdTest, BlameFallsOnEnclosingTransaction) {
  // Classic enclosure: T1 reads f, T2 does a full RMW between T1's read
  // and write. The transaction whose outgoing edge precedes its incoming
  // one is T1 (its read happened first) — the enclosing region is blamed.
  SccBuilder B;
  Transaction *T1 = B.tx(0, 0, true, /*Site=*/7);
  Transaction *T2 = B.tx(1, 0, true, /*Site=*/8);
  SccBuilder::read(T1, 10);
  B.edge(T1, 1, T2);
  SccBuilder::write(T2, 10); // T1 -> T2 (rd-wr).
  B.edge(T2, 2, T1);
  SccBuilder::write(T1, 10); // T2 -> T1 (wr-wr): cycle closes at T1.
  PcdHarness H;
  H.Pcd.processScc({T1, T2});
  ASSERT_EQ(H.Sink.count(), 1u);
  EXPECT_EQ(H.Sink.records()[0].Blamed, 7);
}

TEST(PcdTest, UnaryOnlyCycleBlamesNothing) {
  SccBuilder B;
  Transaction *T1 = B.tx(0, 0, /*Regular=*/false);
  Transaction *T2 = B.tx(1, 0, /*Regular=*/false);
  SccBuilder::write(T1, 10);
  B.edge(T1, 1, T2);
  SccBuilder::write(T2, 10);
  B.edge(T2, 2, T1);
  SccBuilder::read(T1, 10);
  PcdHarness H;
  H.Pcd.processScc({T1, T2});
  ASSERT_GE(H.Sink.count(), 1u);
  EXPECT_EQ(H.Sink.records()[0].Blamed, ir::InvalidMethodId);
  EXPECT_TRUE(H.Sink.blamedMethods().empty());
}

// Regression (found via the philo workload): an EdgeIn whose source is a
// *later, empty* transaction of the other thread (sampled position 0) must
// still force the sink to wait for the source thread's earlier SCC members
// — otherwise replay can interleave two strictly-ordered critical sections
// and fabricate a cycle.
TEST(PcdTest, EdgeFromLaterEmptyTransactionOrdersWholePredecessor) {
  SccBuilder B;
  // t0: E1 = {rd s, wr s} (a lock section), then U1 = empty unary.
  Transaction *E1 = B.tx(0, 0, true, 1);
  Transaction *U1 = B.tx(0, 1, false);
  // t1: E2 = {rd s, wr s}, strictly after E1 in reality.
  Transaction *E2 = B.tx(1, 0, true, 2);
  SccBuilder::read(E1, 50);
  SccBuilder::write(E1, 50);
  // The conflicting transition fired when t0's current tx was already U1:
  // edge U1@0 -> E2 (this is all ICD knows).
  B.edge(U1, 0, E2);
  SccBuilder::read(E2, 50);
  SccBuilder::write(E2, 50);
  // Intra-thread edge E1 -> U1 exists in the real graph.
  OutEdge Intra;
  Intra.Dst = U1;
  Intra.Id = 999;
  Intra.Intra = true;
  E1->Out.push_back(Intra);

  PcdHarness H;
  H.Pcd.processScc({E1, U1, E2});
  EXPECT_EQ(H.Sink.count(), 0u)
      << "lock-ordered sections must not appear cyclic";
}

// The same situation with the source entirely outside the SCC.
TEST(PcdTest, EdgeFromNonMemberSourceStillConstrains) {
  SccBuilder B;
  Transaction *E1 = B.tx(0, 0, true, 1);
  Transaction *U1 = B.tx(0, 1, false); // NOT passed to processScc.
  Transaction *E2 = B.tx(1, 0, true, 2);
  SccBuilder::read(E1, 50);
  SccBuilder::write(E1, 50);
  B.edge(U1, 0, E2);
  SccBuilder::read(E2, 50);
  SccBuilder::write(E2, 50);

  PcdHarness H;
  H.Pcd.processScc({E1, E2});
  EXPECT_EQ(H.Sink.count(), 0u);
}

TEST(PcdTest, InSccSourcePositionConstraintRespected) {
  // Sink entries after the marker must wait for the source to pass SrcPos;
  // with the constraint honored the replay order is T1's write before
  // T2's read, yielding exactly one W-R edge and no cycle.
  SccBuilder B;
  Transaction *T1 = B.tx(0, 0);
  Transaction *T2 = B.tx(1, 0);
  SccBuilder::write(T1, 10); // pos 0.
  SccBuilder::write(T1, 11); // pos 1.
  B.edge(T1, 2, T2);         // T2 resumes after both writes.
  SccBuilder::read(T2, 10);
  SccBuilder::read(T2, 11);
  PcdHarness H;
  H.Pcd.processScc({T1, T2});
  EXPECT_EQ(H.Sink.count(), 0u);
  EXPECT_EQ(H.Stats.value("pcd.pdg_edges"), 1u)
      << "both reads see the same last writer (deduped edge)";
}

TEST(PcdTest, SameThreadMembersReplayInSequenceOrder) {
  // Two transactions of one thread plus a cyclic partner; the intra-thread
  // order must hold even without explicit intra markers.
  SccBuilder B;
  Transaction *A1 = B.tx(0, 0, true, 1);
  Transaction *A2 = B.tx(0, 1, true, 2);
  Transaction *C = B.tx(1, 0, true, 3);
  SccBuilder::write(A1, 10);
  B.edge(A1, 1, C);
  SccBuilder::write(C, 10);
  B.edge(C, 1, A2);
  SccBuilder::read(A2, 10);
  PcdHarness H;
  H.Pcd.processScc({A1, A2, C});
  // Chain A1 -> C -> A2 with intra A1 -> A2: still acyclic.
  EXPECT_EQ(H.Sink.count(), 0u);
}

TEST(PcdTest, OversizedSccDegradesToPotential) {
  // Regression: an SCC above MaxSccTxs must not vanish silently — its
  // members' static sites surface as a Potential violation record (sound
  // multi-run run-1 semantics), while the replay itself is skipped.
  SccBuilder B;
  std::vector<Transaction *> Members;
  for (int I = 0; I < 10; ++I)
    Members.push_back(B.tx(I % 2, I / 2, /*Regular=*/true, /*Site=*/7));
  StatisticRegistry Stats;
  ViolationLog Sink;
  PreciseCycleDetector::Options Opts;
  Opts.MaxSccTxs = 4;
  PreciseCycleDetector Pcd(Sink, Stats, Opts);
  Pcd.processScc(Members);
  EXPECT_EQ(Stats.value("pcd.sccs_skipped"), 1u);
  EXPECT_EQ(Stats.value("pcd.sccs_degraded"), 1u);
  EXPECT_EQ(Stats.value("pcd.txs_replayed"), 0u);
  ASSERT_EQ(Sink.count(), 1u);
  const std::vector<ViolationRecord> Records = Sink.records();
  const ViolationRecord &R = Records.front();
  EXPECT_EQ(R.K, ViolationRecord::Kind::Potential);
  EXPECT_EQ(R.Cycle.size(), Members.size());
  EXPECT_TRUE(Sink.blamedMethods().empty())
      << "potential records must not pollute precise blame";
  EXPECT_EQ(Sink.potentialMethods(), std::set<ir::MethodId>{7u});
}

TEST(OnlinePcdTest, DetectsCycleAcrossTransactions) {
  SccBuilder B;
  Transaction *T1 = B.tx(0, 0, true, 5);
  Transaction *T2 = B.tx(1, 0, true, 6);
  // T1: rd f ... wr f with T2's full RMW in between (logs replayed at end
  // in finish order; OnlinePcd processes whole transactions).
  SccBuilder::read(T1, 10);
  SccBuilder::write(T2, 10);
  SccBuilder::write(T1, 10);
  StatisticRegistry Stats;
  ViolationLog Sink;
  OnlinePcd Online(Sink, Stats);
  Online.processTransaction(T2); // T2 finished first.
  Online.processTransaction(T1);
  // T1's read precedes T2's write only in the true order; OnlinePcd's
  // whole-transaction processing is the straw man's approximation — here
  // T2 (processed first) writes, then T1 reads+writes: one direction, no
  // cycle. Process a second round to create the cycle:
  Transaction *T3 = B.tx(1, 1, true, 6);
  SccBuilder::read(T3, 10);
  Online.processTransaction(T3); // T1 -> T3 (wr-rd).
  Transaction *T4 = B.tx(0, 1, true, 5);
  SccBuilder::write(T4, 10);
  Online.processTransaction(T4); // T3 -> T4 (rd-wr) + intra T1 -> T4.
  Transaction *T5 = B.tx(1, 2, true, 6);
  SccBuilder::write(T5, 10);
  Online.processTransaction(T5); // T4 -> T5 + intra T3 -> T5: no cycle yet.
  EXPECT_EQ(Stats.value("pcdonly.txs_processed"), 5u);
}

} // namespace
