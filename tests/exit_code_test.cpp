//===- tests/exit_code_test.cpp - dcheck exit-code contract ---------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the dcheck exit-code contract (README "Exit codes"): supervisors
/// and CI scripts key on these values, so they are part of the tool's
/// public interface:
///
///   0   clean — run completed, no violations
///   1   violations — at least one precisely blamed atomicity violation
///   2   checker fault — a structured fault was recorded (or the run
///       aborted, or only degraded Potential reports exist, which cannot
///       be distinguished from overload-induced imprecision)
///   64  usage error
///
/// Each test shells out to the real binary (path injected via
/// DC_DCHECK_BIN) exactly like a caller would.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

namespace {

int runDcheck(const std::string &Args) {
  std::string Cmd = std::string(DC_DCHECK_BIN) + " " + Args +
                    " >/dev/null 2>&1";
  int Rc = std::system(Cmd.c_str());
  return WIFEXITED(Rc) ? WEXITSTATUS(Rc) : -1;
}

TEST(DcheckExitCodes, CleanRunExitsZero) {
  EXPECT_EQ(runDcheck("--workload philo --scale 0.05 --mode single-run "
                      "--det --seed 3"),
            0);
}

TEST(DcheckExitCodes, ViolationsExitOne) {
  EXPECT_EQ(runDcheck("--workload xalan6 --scale 0.2 --mode single-run "
                      "--det --seed 1"),
            1);
}

TEST(DcheckExitCodes, CheckerFaultExitsTwo) {
  // A wedged window flush is a structured checker fault: the verdict may
  // be incomplete, so the exit reports the fault even though violations
  // were also found (fault trumps blame — a supervisor must not treat a
  // faulted run as a trustworthy "1").
  EXPECT_EQ(runDcheck("--workload xalan6 --scale 0.2 --mode single-run "
                      "--det --seed 1 --window-txs 16 "
                      "--fault-plan window-stall@1 --pcd-timeout-ms 100"),
            2);
}

TEST(DcheckExitCodes, UsageErrorExitsSixtyFour) {
  EXPECT_EQ(runDcheck("--workload philo --bogus-flag"), 64);
  EXPECT_EQ(runDcheck("--workload no-such-workload"), 64);
}

TEST(DcheckExitCodes, ServeModePreservesTheContract) {
  // Service mode changes the output channel, not the verdict contract.
  EXPECT_EQ(runDcheck("--serve --window-txs 64 --workload philo "
                      "--scale 0.05 --mode single-run --det --seed 3"),
            0);
  EXPECT_EQ(runDcheck("--serve --window-txs 64 --workload xalan6 "
                      "--scale 0.2 --mode single-run --det --seed 1"),
            1);
}

TEST(DcheckExitCodes, SummaryEventMatchesExitCode) {
  const std::string Ndjson = ::testing::TempDir() + "/exit_code_serve.ndjson";
  int Exit = runDcheck("--serve --window-txs 64 --ndjson " + Ndjson +
                       " --workload xalan6 --scale 0.2 --mode single-run "
                       "--det --seed 1");
  ASSERT_EQ(Exit, 1);
  std::ifstream In(Ndjson);
  ASSERT_TRUE(In.is_open());
  std::string Line, Last;
  bool SawViolation = false;
  while (std::getline(In, Line)) {
    if (!Line.empty())
      Last = Line;
    SawViolation |= Line.rfind("{\"event\":\"violation\"", 0) == 0;
  }
  EXPECT_TRUE(SawViolation);
  EXPECT_NE(Last.find("\"event\":\"summary\""), std::string::npos);
  EXPECT_NE(Last.find("\"exit_code\":1"), std::string::npos)
      << "the streamed summary must agree with the process exit code";
}

} // namespace
