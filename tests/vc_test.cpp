//===- tests/vc_test.cpp - Vector-clock engine unit tests -----------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the vector-clock atomicity engine (DESIGN.md §14): the
/// clock representation's epoch/spill fast paths, transaction-boundary
/// sequence advance, the push-based propagation that keeps late-arriving
/// edges exact, the collector's root discipline, and a free-running
/// OS-thread stress that gives TSan real concurrency to bite on.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "ir/Builder.h"
#include "rt/Runtime.h"
#include "vc/VectorClock.h"
#include "vc/VectorClockChecker.h"

using namespace dc;
using namespace dc::vc;

namespace {

//===----------------------------------------------------------------------===//
// VectorClock representation
//===----------------------------------------------------------------------===//

TEST(VcClock, SetAndGetRoundTrip) {
  VectorClock C(4);
  EXPECT_EQ(C.width(), 4u);
  for (uint32_t T = 0; T < 4; ++T)
    EXPECT_EQ(C.get(T), 0u);
  C.set(2, 7);
  EXPECT_EQ(C.get(2), 7u);
  EXPECT_TRUE(C.isEpoch()) << "one nonzero entry is an epoch";
  C.set(0, 3);
  EXPECT_EQ(C.get(0), 3u);
  EXPECT_FALSE(C.isEpoch()) << "two nonzero entries cannot be an epoch";
}

TEST(VcClock, EpochJoinFastPathGrowsOneSlot) {
  VectorClock Src(4), Dst(4);
  Src.set(1, 5); // Epoch 5@1.
  ASSERT_TRUE(Src.isEpoch());
  EXPECT_TRUE(Dst.joinFrom(Src));
  EXPECT_EQ(Dst.get(1), 5u);
  // Same join again: nothing grows.
  EXPECT_FALSE(Dst.joinFrom(Src));
  // A stale epoch (lower sequence) never shrinks the target.
  VectorClock Old(4);
  Old.set(1, 2);
  EXPECT_FALSE(Dst.joinFrom(Old));
  EXPECT_EQ(Dst.get(1), 5u);
}

TEST(VcClock, WideJoinIsSlotwiseMax) {
  VectorClock A(4), B(4);
  A.set(0, 4);
  A.set(1, 1);
  B.set(1, 6);
  B.set(2, 2);
  EXPECT_TRUE(A.joinFrom(B));
  EXPECT_EQ(A.get(0), 4u);
  EXPECT_EQ(A.get(1), 6u);
  EXPECT_EQ(A.get(2), 2u);
  EXPECT_EQ(A.get(3), 0u);
  // B already dominated by A on every slot it holds: no growth.
  EXPECT_FALSE(A.joinFrom(B));
}

TEST(VcClock, JoinFromEmptyIsNoop) {
  VectorClock A(4), Empty(4);
  A.set(3, 9);
  EXPECT_FALSE(A.joinFrom(Empty));
  EXPECT_EQ(A.get(3), 9u);
}

TEST(VcClock, SpillBeyondInlineSlots) {
  const uint32_t Wide = VectorClock::InlineSlots * 4; // Forces heap spill.
  VectorClock A(Wide), B(Wide);
  A.set(0, 1);
  A.set(Wide - 1, 11);
  B.set(VectorClock::InlineSlots + 1, 5);
  ASSERT_TRUE(B.isEpoch());
  EXPECT_TRUE(A.joinFrom(B)) << "epoch fast path must work on spilled clocks";
  EXPECT_EQ(A.get(VectorClock::InlineSlots + 1), 5u);
  EXPECT_EQ(A.get(Wide - 1), 11u);
  VectorClock C(Wide);
  EXPECT_TRUE(C.joinFrom(A));
  EXPECT_TRUE(C == A);
}

TEST(VcClock, EqualityComparesAllSlots) {
  VectorClock A(3), B(3);
  EXPECT_TRUE(A == B);
  A.set(1, 2);
  EXPECT_FALSE(A == B);
  B.set(1, 2);
  EXPECT_TRUE(A == B);
}

//===----------------------------------------------------------------------===//
// Engine scenarios (direct hook driving, same harness shape as
// velodrome_test.cpp — the two engines must behave alike on these)
//===----------------------------------------------------------------------===//

ir::Program scenarioProgram(uint32_t Threads = 2) {
  ir::ProgramBuilder B("vc");
  B.addPool("objs", 8, 2);
  ir::MethodId M1 = B.beginMethod("m1", true).work(1).endMethod();
  ir::MethodId M2 = B.beginMethod("m2", true).work(1).endMethod();
  ir::MethodId M3 = B.beginMethod("m3", true).work(1).endMethod();
  (void)M1;
  (void)M2;
  (void)M3;
  ir::MethodId Main = B.beginMethod("main", false).work(1).endMethod();
  for (uint32_t T = 0; T < Threads; ++T)
    B.addThread(Main);
  return B.build();
}

class VcScenario : public ::testing::Test {
protected:
  VcScenario() : P(scenarioProgram(3)) {}

  void start(VectorClockOptions Opts = VectorClockOptions()) {
    Opts.RemoteMissPenalty = 0; // Not under test here.
    VC = std::make_unique<VectorClockRuntime>(P, Opts, Violations, Stats);
    RT = std::make_unique<rt::Runtime>(P, VC.get());
    VC->beginRun(*RT);
    for (uint32_t T = 0; T < 3; ++T) {
      Tc[T].Tid = T;
      Tc[T].RT = RT.get();
      Tc[T].Checker = VC.get();
      VC->threadStarted(Tc[T]);
    }
  }

  void finish() {
    for (uint32_t T = 0; T < 3; ++T)
      VC->threadExiting(Tc[T]);
    VC->endRun(*RT);
  }

  void access(uint32_t Tid, rt::ObjectId Obj, uint32_t Field, bool IsWrite) {
    rt::AccessInfo Info;
    Info.Obj = Obj;
    Info.Addr = RT->heap().fieldAddr(Obj, Field);
    Info.IsWrite = IsWrite;
    Info.Flags = ir::IF_VelodromeBarrier;
    VC->instrumentedAccess(Tc[Tid], Info, [] {});
  }

  void begin(uint32_t Tid, const char *M) {
    VC->txBegin(Tc[Tid], P.Methods[P.findMethod(M)]);
  }
  void end(uint32_t Tid, const char *M) {
    VC->txEnd(Tc[Tid], P.Methods[P.findMethod(M)]);
  }

  ir::Program P;
  StatisticRegistry Stats;
  analysis::ViolationLog Violations;
  std::unique_ptr<VectorClockRuntime> VC;
  std::unique_ptr<rt::Runtime> RT;
  rt::ThreadContext Tc[3];
};

TEST_F(VcScenario, DetectsInterleavedRmwCycle) {
  start();
  begin(0, "m1");
  begin(1, "m2");
  access(0, 0, 0, false); // T0 rd f.
  access(1, 0, 0, false); // T1 rd f.
  access(1, 0, 0, true);  // T1 wr f: edge m1 -> m2 (rd-wr).
  access(0, 0, 0, true);  // T0 wr f: edge m2 -> m1 => cycle.
  end(1, "m2");
  end(0, "m1");
  finish();
  EXPECT_GE(Violations.count(), 1u);
  EXPECT_GE(Stats.value("vc.violations"), 1u);
}

TEST_F(VcScenario, OneDirectionalDependenceIsClean) {
  start();
  begin(0, "m1");
  access(0, 0, 0, true);
  end(0, "m1");
  begin(1, "m2");
  access(1, 0, 0, false);
  end(1, "m2");
  finish();
  EXPECT_EQ(Violations.count(), 0u);
  EXPECT_GE(Stats.value("vc.cross_edges"), 1u);
}

TEST_F(VcScenario, BlameFallsOnClosingEdge) {
  start();
  begin(0, "m1");
  begin(1, "m2");
  access(0, 0, 0, false);
  access(1, 0, 0, true); // m1 -> m2.
  access(0, 0, 0, true); // m2 -> m1 closes the cycle inside m1's access.
  end(1, "m2");
  end(0, "m1");
  finish();
  ASSERT_GE(Violations.count(), 1u);
  auto Blamed = Violations.blamedMethods();
  // The closing edge targets m1 (the accessing transaction) — both
  // endpoints sit on the cycle, so either way blame stays inside it.
  EXPECT_TRUE(Blamed.count(P.findMethod("m1")) ||
              Blamed.count(P.findMethod("m2")));
}

TEST_F(VcScenario, TransactionBoundaryAdvancesSequence) {
  start();
  const uint64_t N = 5;
  for (uint64_t I = 0; I < N; ++I) {
    begin(0, "m1");
    access(0, 1, 0, true);
    end(0, "m1");
  }
  finish();
  // Exact accounting: one unary transaction per threadStarted (3), then a
  // regular + a unary per begin/end pair. Nothing is double-counted and no
  // boundary is merged away — each boundary advances the thread sequence.
  EXPECT_EQ(Stats.value("vc.txs"), 3u + 2 * N);
  EXPECT_EQ(Stats.value("vc.accesses"), N);
  EXPECT_EQ(Violations.count(), 0u);
}

TEST_F(VcScenario, ReentrantTxBeginStartsFreshTransaction) {
  // The runtime flattens reentrant atomic calls: an inner txBegin retires
  // the outer transaction (same demarcation the graph engines use). The
  // engine must neither crash nor leak a violation out of the harmless
  // sequence below.
  start();
  begin(0, "m1");
  access(0, 0, 0, true);
  begin(0, "m2"); // Reentrant begin without an end(m1).
  access(0, 0, 0, true);
  end(0, "m2");
  end(0, "m1"); // Unbalanced end degrades to a unary boundary.
  finish();
  EXPECT_EQ(Violations.count(), 0u);
  // threadStarted x3 + m1 + m2 + two unary spans from the two ends.
  EXPECT_EQ(Stats.value("vc.txs"), 3u + 4u);
}

TEST_F(VcScenario, RepeatedAccessSkipsMetadataUpdate) {
  start();
  begin(0, "m1");
  access(0, 0, 0, true);
  for (int I = 0; I < 10; ++I)
    access(0, 0, 0, true); // Already last writer: no metadata change.
  end(0, "m1");
  finish();
  EXPECT_EQ(Stats.value("vc.accesses"), 11u);
  EXPECT_EQ(Stats.value("vc.cross_edges"), 0u);
}

TEST_F(VcScenario, LateEdgeCycleNeedsPropagation) {
  // The schedule that separates push-based propagation from naive eager
  // joins: the edge C->A arrives after A->B already exists, so B only
  // learns of C through A pushing its grown clock to subscribers. The
  // closing edge B->C then must see C in B's clock.
  start();
  begin(0, "m1"); // A
  begin(1, "m2"); // B
  begin(2, "m3"); // C
  access(0, 0, 0, true);  // A wr f0.
  access(1, 0, 0, false); // B rd f0: edge A->B.
  access(2, 1, 0, true);  // C wr f1.
  access(0, 1, 0, false); // A rd f1: edge C->A (late in-edge; propagates
                          // C's knowledge through A to B).
  access(1, 2, 0, true);  // B wr f2.
  access(2, 2, 0, false); // C rd f2: edge B->C closes C->A->B->C.
  end(0, "m1");
  end(1, "m2");
  end(2, "m3");
  finish();
  EXPECT_GE(Violations.count(), 1u)
      << "cycle only detectable through clock propagation";
  EXPECT_GE(Stats.value("vc.propagations"), 1u);
}

TEST_F(VcScenario, PredecessorWalkReconstructsCycleChain) {
  // Same three-transaction cycle as LateEdgeCycleNeedsPropagation
  // (C->A->B->C, closed by edge B->C), but checking the *report*: the
  // predecessor walk must name the intermediate transaction A, not just
  // the closing edge's endpoints. B learned C's clock entry through A's
  // push, so Pred chains B -> A -> C and the reported cycle lists all
  // three sites — each of which the oracle-subset property (checked by
  // the fuzzer and property_test) bounds to real cycle members.
  start();
  begin(0, "m1"); // A
  begin(1, "m2"); // B
  begin(2, "m3"); // C
  access(0, 0, 0, true);
  access(1, 0, 0, false); // A->B.
  access(2, 1, 0, true);
  access(0, 1, 0, false); // C->A.
  access(1, 2, 0, true);
  access(2, 2, 0, false); // B->C closes the cycle.
  end(0, "m1");
  end(1, "m2");
  end(2, "m3");
  finish();
  ASSERT_GE(Violations.count(), 1u);
  const std::vector<analysis::ViolationRecord> Records = Violations.records();
  const analysis::ViolationRecord &R = Records.front();
  ASSERT_GE(R.Cycle.size(), 3u)
      << "walk reported only the closing edge's endpoints";
  std::set<ir::MethodId> Sites;
  for (const analysis::CycleMember &M : R.Cycle)
    Sites.insert(M.Site);
  EXPECT_TRUE(Sites.count(P.findMethod("m1"))) << "intermediate A missing";
  EXPECT_TRUE(Sites.count(P.findMethod("m2")));
  EXPECT_TRUE(Sites.count(P.findMethod("m3")));
}

TEST_F(VcScenario, CollectorReclaimsOldTransactions) {
  VectorClockOptions Opts;
  Opts.CollectEveryTx = 4;
  start(Opts);
  for (int I = 0; I < 40; ++I) {
    begin(0, "m1");
    access(0, 1, 0, true);
    end(0, "m1");
  }
  finish();
  EXPECT_GT(Stats.value("vc.collector_runs"), 0u);
  EXPECT_GT(Stats.value("vc.txs_swept"), 10u);
}

TEST_F(VcScenario, MetadataRootsSurviveCollection) {
  // The last writer must never be swept while field metadata can still
  // source an edge from it: write once, churn transactions through many
  // collections, then read from another thread — the edge must appear.
  VectorClockOptions Opts;
  Opts.CollectEveryTx = 2;
  start(Opts);
  begin(0, "m1");
  access(0, 0, 0, true);
  end(0, "m1");
  for (int I = 0; I < 20; ++I) {
    begin(0, "m2");
    end(0, "m2"); // Churn to force collections.
  }
  begin(1, "m2");
  access(1, 0, 0, false); // Must find the (uncollected) last writer.
  end(1, "m2");
  finish();
  EXPECT_GE(Stats.value("vc.cross_edges"), 1u);
}

TEST_F(VcScenario, SyncOpsTrackedAsAccesses) {
  start();
  begin(0, "m1");
  rt::AccessInfo Info;
  Info.Obj = 0;
  Info.Addr = RT->heap().syncAddr(0);
  Info.IsWrite = true; // Release-like.
  Info.IsSync = true;
  Info.Flags = ir::IF_VelodromeBarrier;
  VC->syncOp(Tc[0], Info, rt::SyncKind::MonitorExit);
  end(0, "m1");
  begin(1, "m2");
  Info.IsWrite = false; // Acquire-like.
  VC->syncOp(Tc[1], Info, rt::SyncKind::MonitorEnter);
  end(1, "m2");
  finish();
  EXPECT_GE(Stats.value("vc.cross_edges"), 1u)
      << "release-acquire must create a dependence edge";
}

TEST_F(VcScenario, DetectCyclesOffStillTracksClocks) {
  VectorClockOptions Opts;
  Opts.DetectCycles = false;
  start(Opts);
  begin(0, "m1");
  begin(1, "m2");
  access(0, 0, 0, false);
  access(1, 0, 0, true);
  access(0, 0, 0, true); // Would close a cycle with detection on.
  end(1, "m2");
  end(0, "m1");
  finish();
  EXPECT_EQ(Violations.count(), 0u);
  EXPECT_GE(Stats.value("vc.cross_edges"), 2u)
      << "edge tracking continues with the check disabled";
}

//===----------------------------------------------------------------------===//
// Free-running stress (the TSan target: real threads, real interleavings)
//===----------------------------------------------------------------------===//

TEST(VcStress, ConcurrentHookDrivingIsRaceFree) {
  const uint32_t NumThreads = 4;
  const int TxPerThread = 400;
  ir::Program P = scenarioProgram(NumThreads);
  StatisticRegistry Stats;
  analysis::ViolationLog Violations;
  VectorClockOptions Opts;
  Opts.RemoteMissPenalty = 0;
  Opts.CollectEveryTx = 64; // Collect often: sweeps race against accesses.
  auto VC =
      std::make_unique<VectorClockRuntime>(P, Opts, Violations, Stats);
  rt::Runtime RT(P, VC.get());
  VC->beginRun(RT);

  std::vector<rt::ThreadContext> Tc(NumThreads);
  std::vector<std::thread> Workers;
  const ir::Method &M1 = P.Methods[P.findMethod("m1")];
  for (uint32_t T = 0; T < NumThreads; ++T) {
    Tc[T].Tid = T;
    Tc[T].RT = &RT;
    Tc[T].Checker = VC.get();
    Workers.emplace_back([&, T] {
      VC->threadStarted(Tc[T]);
      uint64_t State = T * 7919 + 13;
      for (int I = 0; I < TxPerThread; ++I) {
        VC->txBegin(Tc[T], M1);
        for (int A = 0; A < 3; ++A) {
          State = State * 6364136223846793005ULL + 1442695040888963407ULL;
          rt::AccessInfo Info;
          // Mostly thread-private with a shared object mixed in, so the
          // stress exercises conflict edges, propagation, and collection
          // concurrently.
          Info.Obj = (State >> 33) % 4 == 0
                         ? static_cast<rt::ObjectId>((State >> 17) % 2)
                         : static_cast<rt::ObjectId>(4 + T);
          Info.Addr = RT.heap().fieldAddr(Info.Obj, (State >> 9) % 2);
          Info.IsWrite = (State >> 5) % 2 == 0;
          Info.Flags = ir::IF_VelodromeBarrier;
          VC->instrumentedAccess(Tc[T], Info, [] {});
        }
        VC->txEnd(Tc[T], M1);
      }
      VC->threadExiting(Tc[T]);
    });
  }
  for (std::thread &W : Workers)
    W.join();
  VC->endRun(RT);

  EXPECT_EQ(Stats.value("vc.accesses"),
            static_cast<uint64_t>(NumThreads) * TxPerThread * 3);
  EXPECT_GT(Stats.value("vc.collector_runs"), 0u);
}

} // namespace
