//===- tests/analysis_test.cpp - ICD / logs / collector tests -------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives DoubleCheckerRuntime's hooks directly from one OS thread. Program
/// threads are parked in the Octet blocked state right after starting, so
/// every coordination uses the implicit protocol and runs synchronously —
/// which makes the paper's interleaving examples (notably the §3.2.3
/// two-transaction example) exactly reproducible.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "analysis/DoubleChecker.h"
#include "ir/Builder.h"
#include "rt/Runtime.h"

using namespace dc;
using namespace dc::analysis;

namespace {

/// Two regular methods and a heap with two 2-field objects.
ir::Program scenarioProgram() {
  ir::ProgramBuilder B("icd");
  B.addPool("objs", 4, 2);
  ir::MethodId M1 = B.beginMethod("m1", true).work(1).endMethod();
  ir::MethodId M2 = B.beginMethod("m2", true).work(1).endMethod();
  (void)M1;
  (void)M2;
  ir::MethodId Main = B.beginMethod("main", false).work(1).endMethod();
  B.addThread(Main);
  B.addThread(Main);
  B.addThread(Main);
  return B.build();
}

class IcdScenario : public ::testing::Test {
protected:
  IcdScenario() : P(scenarioProgram()) {}

  void start(DoubleCheckerOptions Opts = DoubleCheckerOptions()) {
    DC = std::make_unique<DoubleCheckerRuntime>(P, Opts, Violations, Stats);
    RT = std::make_unique<rt::Runtime>(P, DC.get());
    DC->beginRun(*RT);
    for (uint32_t T = 0; T < 3; ++T) {
      Tc[T].Tid = T;
      Tc[T].RT = RT.get();
      Tc[T].Checker = DC.get();
      DC->threadStarted(Tc[T]);
      DC->aboutToBlock(Tc[T]); // Implicit protocol for everything.
    }
  }

  void finish() {
    for (uint32_t T = 0; T < 3; ++T) {
      DC->unblocked(Tc[T]);
      DC->threadExiting(Tc[T]);
    }
    DC->endRun(*RT);
  }

  void access(uint32_t Tid, rt::ObjectId Obj, uint32_t Field, bool IsWrite) {
    rt::AccessInfo Info;
    Info.Obj = Obj;
    Info.Addr = RT->heap().fieldAddr(Obj, Field);
    Info.IsWrite = IsWrite;
    Info.Flags = ir::IF_OctetBarrier | ir::IF_LogAccess;
    DC->instrumentedAccess(Tc[Tid], Info, [] {});
  }

  void begin(uint32_t Tid, const char *Method) {
    DC->txBegin(Tc[Tid], P.Methods[P.findMethod(Method)]);
  }
  void end(uint32_t Tid, const char *Method) {
    DC->txEnd(Tc[Tid], P.Methods[P.findMethod(Method)]);
  }

  ir::Program P;
  StatisticRegistry Stats;
  ViolationLog Violations;
  std::unique_ptr<DoubleCheckerRuntime> DC;
  std::unique_ptr<rt::Runtime> RT;
  rt::ThreadContext Tc[3];
};

// The paper's §3.2.3 example: T1 {wr o.f; rd p.q}, T2 {wr p.q; rd o.g}.
// ICD sees an object-granularity cycle; PCD must filter it (the precise
// dependences are o: none across the used fields, p: tx2 -> tx1 only).
TEST_F(IcdScenario, ImpreciseCycleFilteredByPcd) {
  start();
  begin(0, "m1");
  begin(1, "m2");
  access(0, /*o=*/0, /*f=*/0, /*wr=*/true);
  access(1, /*p=*/1, /*q=*/1, /*wr=*/true);
  access(0, /*p=*/1, /*q=*/1, /*wr=*/false); // Conflict: edge tx2 -> tx1.
  access(1, /*o=*/0, /*g=*/1, /*wr=*/false); // Conflict: edge tx1 -> tx2.
  end(1, "m2");
  end(0, "m1"); // Both finished: SCC containing tx1 detected here.
  finish();

  EXPECT_GE(Stats.value("icd.sccs"), 1u) << "ICD must report the cycle";
  EXPECT_GE(Stats.value("pcd.sccs_processed"), 1u);
  EXPECT_EQ(Violations.count(), 0u)
      << "no precise cycle exists (different fields of o)";
}

// Same interleaving plus T2's rd o.f: now a precise cycle exists
// (o.f: tx1 -> tx2; p.q: tx2 -> tx1) and must be reported.
TEST_F(IcdScenario, PreciseCycleReported) {
  start();
  begin(0, "m1");
  begin(1, "m2");
  access(0, 0, 0, true);
  access(1, 1, 1, true);
  access(0, 1, 1, false);
  access(1, 0, 1, false);
  access(1, 0, 0, false); // rd o.f: completes the precise cycle.
  end(1, "m2");
  end(0, "m1");
  finish();

  ASSERT_GE(Violations.count(), 1u);
  auto Blamed = Violations.blamedMethods();
  EXPECT_TRUE(Blamed.count(P.findMethod("m1")) ||
              Blamed.count(P.findMethod("m2")));
}

TEST_F(IcdScenario, NoCycleNoScc) {
  start();
  begin(0, "m1");
  access(0, 0, 0, true);
  end(0, "m1");
  begin(1, "m2");
  access(1, 0, 0, false); // One-directional dependence only.
  end(1, "m2");
  finish();
  EXPECT_EQ(Stats.value("icd.sccs"), 0u);
  EXPECT_EQ(Violations.count(), 0u);
}

TEST_F(IcdScenario, RegularTransactionCountsTracked) {
  start();
  begin(0, "m1");
  access(0, 0, 0, true);
  end(0, "m1");
  begin(0, "m2");
  end(0, "m2");
  finish();
  EXPECT_EQ(Stats.value("icd.regular_transactions"), 2u);
  EXPECT_EQ(Stats.value("icd.instrumented_accesses_regular"), 1u);
}

TEST_F(IcdScenario, UnaryAccessesCountedSeparately) {
  start();
  access(0, 0, 0, true); // Outside any regular transaction.
  access(0, 0, 0, false);
  begin(0, "m1");
  access(0, 0, 1, true);
  end(0, "m1");
  finish();
  EXPECT_EQ(Stats.value("icd.instrumented_accesses_unary"), 2u);
  EXPECT_EQ(Stats.value("icd.instrumented_accesses_regular"), 1u);
}

TEST_F(IcdScenario, LogElisionDropsDuplicates) {
  start();
  begin(0, "m1");
  access(0, 0, 0, true);
  for (int I = 0; I < 5; ++I)
    access(0, 0, 0, false); // Reads after a write, no edges: all elided.
  access(0, 0, 0, true);    // Write after write: elided too.
  end(0, "m1");
  finish();
  EXPECT_EQ(Stats.value("icd.log_entries"), 1u);
  EXPECT_EQ(Stats.value("icd.log_entries_elided"), 6u);
}

TEST_F(IcdScenario, ElisionWindowEndsAtTransactionBoundary) {
  start();
  begin(0, "m1");
  access(0, 0, 0, true);
  end(0, "m1");
  begin(0, "m2");
  access(0, 0, 0, true); // New transaction: must be logged again.
  end(0, "m2");
  finish();
  EXPECT_EQ(Stats.value("icd.log_entries"), 2u);
}

TEST_F(IcdScenario, ReadThenWriteNotElided) {
  start();
  begin(0, "m1");
  access(0, 0, 0, false);
  access(0, 0, 0, true); // A write upgrades the information: logged.
  end(0, "m1");
  finish();
  EXPECT_EQ(Stats.value("icd.log_entries"), 2u);
}

TEST_F(IcdScenario, UnaryTransactionsMergeUntilInterrupted) {
  start();
  // Thread 0 performs several unary accesses: they merge into one unary
  // transaction...
  access(0, 2, 0, true);
  access(0, 2, 1, true);
  // ...until a cross-thread edge interrupts it (thread 1 conflicts).
  access(1, 2, 0, true);
  // The next access starts a fresh unary transaction.
  access(0, 3, 0, true);
  finish();
  // threadStarted creates 1 unary tx per thread (3 threads); thread 0 gets
  // one more after the interruption, thread 1's and 0's originals merged
  // everything else; plus each threadExit leaves the then-current txs.
  EXPECT_GE(Stats.value("icd.unary_transactions"), 4u);
  EXPECT_GE(Stats.value("icd.idg_cross_edges"), 1u);
}

TEST_F(IcdScenario, CollectorSweepsUnreachableTransactions) {
  DoubleCheckerOptions Opts;
  Opts.CollectEveryTx = 4; // Collect aggressively.
  start(Opts);
  for (int I = 0; I < 40; ++I) {
    begin(0, "m1");
    access(0, 0, 0, true);
    end(0, "m1");
  }
  finish();
  EXPECT_GT(Stats.value("icd.collector_runs"), 0u);
  EXPECT_GT(Stats.value("icd.txs_swept"), 20u)
      << "edge-free finished transactions must be reclaimed";
}

TEST_F(IcdScenario, StaticInfoRecordsSccSites) {
  start();
  begin(0, "m1");
  begin(1, "m2");
  access(0, 0, 0, true);
  access(1, 1, 1, true);
  access(0, 1, 1, false);
  access(1, 0, 1, false);
  end(1, "m2");
  end(0, "m1");
  StaticTransactionInfo Info = DC->staticInfo();
  finish();
  EXPECT_TRUE(Info.MethodNames.count("m1"));
  EXPECT_TRUE(Info.MethodNames.count("m2"));
  EXPECT_FALSE(Info.AnyUnary);
}

TEST_F(IcdScenario, StaticInfoFlagsUnaryInvolvement) {
  start();
  begin(0, "m1");
  access(0, 0, 0, true);
  access(1, 0, 0, true); // Unary write conflicting with the transaction.
  access(0, 0, 0, false);
  access(1, 0, 0, true); // And back: unary <-> regular cycle.
  end(0, "m1");
  // End thread 1's unary transaction so the SCC becomes detectable.
  DC->unblocked(Tc[1]);
  DC->threadExiting(Tc[1]);
  DC->unblocked(Tc[0]);
  DC->threadExiting(Tc[0]);
  DC->unblocked(Tc[2]);
  DC->threadExiting(Tc[2]);
  StaticTransactionInfo Info = DC->staticInfo();
  DC->endRun(*RT);
  EXPECT_TRUE(Info.AnyUnary);
  EXPECT_TRUE(Info.MethodNames.count("m1"));
}

// Figure 3 mechanism: a write observed through the RdSh chain. Thread 0
// writes o; thread 1's read takes o to RdEx; thread 2's read upgrades it to
// RdSh (edges from t1's lastRdEx and from gLastRdSh); thread 2 then writes
// o back inside the same transaction while thread 0's transaction is still
// open and reads o again — a genuine cycle detectable only because the
// upgrade edges exist.
TEST_F(IcdScenario, RdShUpgradeEdgesCarryDependences) {
  start();
  begin(0, "m1");
  begin(2, "m2");
  access(0, 0, 0, true);  // t0: wr o.f (WrEx_0), inside m1.
  access(1, 0, 0, false); // t1: rd o.f -> RdEx_1 + conflict edge m1 -> u1.
  access(2, 0, 0, false); // t2: rd o.f -> RdSh + upgrade edges.
  access(2, 0, 0, true);  // t2: wr o.f -> conflict with all -> WrEx_2.
  access(0, 0, 0, false); // t0: rd o.f after t2's write: cycle m1 <-> m2.
  end(2, "m2");
  end(0, "m1");
  finish();
  EXPECT_GT(Stats.value("octet.upgrade_rdsh"), 0u);
  ASSERT_GE(Violations.count(), 1u) << "the RdSh-path cycle must be found";
}

// The gLastRdSh chain (Fig. 3): a fence transition's edge only references
// the *latest* transition to RdSh, and dependences on earlier RdSh objects
// are covered transitively by the edges between RdSh transitions.
TEST_F(IcdScenario, FenceTransitionAddsEdge) {
  start();
  access(0, 0, 0, false); // o: RdEx_0.
  access(1, 0, 0, false); // o: RdSh (upgrade by t1: edge from t0's lastRdEx).
  access(2, 0, 0, false); // t2 stale -> fence -> edge from gLastRdSh.
  finish();
  EXPECT_GT(Stats.value("octet.fence"), 0u);
  // Upgrade edge (lastRdEx -> t1) + fence edge (gLastRdSh -> t2).
  EXPECT_GE(Stats.value("icd.idg_cross_edges"), 2u);
}

// Regression: a conflicting transition whose responder thread has already
// exited must still produce an IDG edge — from the thread's *final*
// transaction. Dropping it is unsound (missed cycles) and breaks PCD's
// replay ordering (false cycles through lost lock hand-offs).
TEST_F(IcdScenario, EdgesFromExitedThreadsAreKept) {
  start();
  begin(1, "m1");
  access(1, 0, 0, true); // Thread 1 owns object 0 (WrEx).
  end(1, "m1");
  DC->unblocked(Tc[1]);
  DC->threadExiting(Tc[1]); // Thread 1 exits; object 0 stays WrEx_1.

  uint64_t Before = 0;
  {
    // Thread 0 now conflicts with the exited thread.
    begin(0, "m2");
    access(0, 0, 0, true);
    end(0, "m2");
  }
  // Finish the remaining threads and flush stats.
  DC->unblocked(Tc[0]);
  DC->threadExiting(Tc[0]);
  DC->unblocked(Tc[2]);
  DC->threadExiting(Tc[2]);
  DC->endRun(*RT);
  (void)Before;
  EXPECT_GE(Stats.value("icd.idg_cross_edges"), 1u)
      << "the conflicting transition with the exited thread must produce "
         "an edge from its final transaction";
}

TEST(StaticInfoTest, SerializeParseRoundTrip) {
  StaticTransactionInfo Info;
  Info.AnyUnary = true;
  Info.MethodNames = {"alpha", "beta"};
  StaticTransactionInfo Back =
      StaticTransactionInfo::parse(Info.serialize());
  EXPECT_EQ(Back.AnyUnary, true);
  EXPECT_EQ(Back.MethodNames, Info.MethodNames);
}

TEST(StaticInfoTest, MergeUnions) {
  StaticTransactionInfo A, B;
  A.MethodNames = {"x"};
  B.MethodNames = {"y"};
  B.AnyUnary = true;
  A.merge(B);
  EXPECT_EQ(A.MethodNames.size(), 2u);
  EXPECT_TRUE(A.AnyUnary);
}

TEST(ViolationLogTest, DedupesBlamedMethods) {
  ViolationLog Log;
  ViolationRecord R1;
  R1.Blamed = 3;
  Log.report(R1);
  Log.report(R1);
  ViolationRecord R2;
  R2.Blamed = ir::InvalidMethodId;
  Log.report(R2);
  EXPECT_EQ(Log.count(), 3u);
  EXPECT_EQ(Log.blamedMethods().size(), 1u)
      << "unblamed records do not contribute static violations";
}

TEST(TransactionTest, AppendLogPublishesLength) {
  Transaction Tx(1, 0, 0, ir::InvalidMethodId, false);
  EXPECT_EQ(Tx.LogLen.load(), 0u);
  LogEntry E;
  Tx.appendLog(E);
  Tx.appendLog(E);
  EXPECT_EQ(Tx.LogLen.load(), 2u);
  EXPECT_EQ(Tx.Log.size(), 2u);
}

} // namespace
