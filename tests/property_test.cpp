//===- tests/property_test.cpp - Cross-checker equivalence properties -----===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized property tests over generated programs and schedules:
///
///  1. *Equivalence*: DoubleChecker's single-run mode and Velodrome are
///     both sound and precise, so on the *same deterministic schedule*
///     they must blame exactly the same methods. (The compiled programs
///     have identical instruction streams — only barrier flags differ — so
///     a schedule seed induces the same interleaving under both.)
///  2. *Filter soundness*: if ICD reports no SCC, PCD can report nothing.
///  3. *No false positives*: programs whose shared accesses are all
///     two-phase-locked under one global lock are serializable by
///     construction; no checker may report anything, on any schedule.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/Checker.h"
#include "core/Refinement.h"
#include "ir/Builder.h"
#include "support/Rng.h"

using namespace dc;
using namespace dc::core;
using namespace dc::ir;

namespace {

/// Random mix of racy read-modify-writes, correctly locked updates,
/// unlocked readers, and thread-local churn.
Program randomProgram(uint64_t Seed, bool SerializableOnly) {
  SplitMix64 Rng(Seed * 2654435761u + 1);
  ProgramBuilder B("prop" + std::to_string(Seed), Seed);
  const uint32_t Workers = 2 + Rng.nextBelow(2);
  PoolId Shared = B.addPool("shared", 4, 2);
  PoolId Lock = B.addPool("lock", 1, 1);
  PoolId Local = B.addPool("local", Workers + 1, 4);

  std::vector<MethodId> Methods;
  const uint32_t NumMethods = 3 + Rng.nextBelow(3);
  for (uint32_t M = 0; M < NumMethods; ++M) {
    std::string Name = "op" + std::to_string(M);
    uint32_t Kind = SerializableOnly ? 1 + Rng.nextBelow(2) * 2
                                     : Rng.nextBelow(4);
    switch (Kind) {
    case 0: // Racy read-modify-write (potential violation).
      Methods.push_back(B.beginMethod(Name, true)
                            .read(Shared, idxParam(1, 0, 4), 0u)
                            .work(2 + Rng.nextBelow(6))
                            .write(Shared, idxParam(1, 0, 4), 0u)
                            .endMethod());
      break;
    case 1: // Two-phase locked update under the global lock.
      Methods.push_back(B.beginMethod(Name, true)
                            .acquire(Lock, idxConst(0))
                            .read(Shared, idxParam(1, 0, 4), 0u)
                            .write(Shared, idxParam(1, 0, 4), 0u)
                            .read(Shared, idxParam(1, 1, 4), 1u)
                            .write(Shared, idxParam(1, 1, 4), 1u)
                            .release(Lock, idxConst(0))
                            .endMethod());
      break;
    case 2: // Unlocked multi-read (racy against writers).
      Methods.push_back(B.beginMethod(Name, true)
                            .read(Shared, idxParam(1, 0, 4), 0u)
                            .work(1 + Rng.nextBelow(4))
                            .read(Shared, idxParam(1, 1, 4), 0u)
                            .endMethod());
      break;
    default: // Thread-local churn.
      Methods.push_back(B.beginMethod(Name, true)
                            .beginLoop(idxConst(4 + Rng.nextBelow(8)))
                            .read(Local, idxThread(), idxRandom(4))
                            .write(Local, idxThread(), idxRandom(4))
                            .endLoop()
                            .endMethod());
      break;
    }
  }
  // In serializable mode, kind 2 (unlocked reads) was remapped to kinds
  // {1,3} above, so every shared access holds the global lock.

  auto &Worker = B.beginMethod("worker", false)
                     .beginLoop(idxConst(30 + Rng.nextBelow(30)));
  for (uint32_t C = 0; C < 3; ++C)
    Worker.call(Methods[Rng.nextBelow(Methods.size())], idxRandom(4));
  Worker.endLoop();
  MethodId WorkerId = Worker.endMethod();

  auto &Main = B.beginMethod("main", false);
  for (uint32_t W = 1; W <= Workers; ++W)
    Main.forkThread(idxConst(W));
  for (uint32_t W = 1; W <= Workers; ++W)
    Main.joinThread(idxConst(W));
  MethodId MainId = Main.endMethod();
  B.addThread(MainId);
  for (uint32_t W = 0; W < Workers; ++W)
    B.addThread(WorkerId);
  return B.build();
}

RunConfig detCfg(Mode M, uint64_t ScheduleSeed) {
  RunConfig Cfg;
  Cfg.M = M;
  Cfg.RunOpts.Deterministic = true;
  Cfg.RunOpts.ScheduleSeed = ScheduleSeed;
  return Cfg;
}

class EquivalenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceProperty, SingleRunMatchesVelodromeOnSameSchedule) {
  Program P = randomProgram(GetParam(), /*SerializableOnly=*/false);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  for (uint64_t Schedule = 0; Schedule < 2; ++Schedule) {
    std::vector<uint32_t> Recorded;
    RunConfig SingleCfg = detCfg(Mode::SingleRun, Schedule);
    SingleCfg.RunOpts.ScheduleOut = &Recorded;
    RunOutcome DC = runChecker(P, Spec, SingleCfg);
    RunOutcome Velo = runChecker(P, Spec, detCfg(Mode::Velodrome, Schedule));
    ASSERT_FALSE(DC.Result.Aborted);
    ASSERT_FALSE(Velo.Result.Aborted);
    EXPECT_EQ(DC.BlamedMethods, Velo.BlamedMethods)
        << "program seed " << GetParam() << ", schedule " << Schedule;
    // Filter soundness: PCD only ever fires through an ICD SCC.
    if (DC.stat("icd.sccs") == 0) {
      EXPECT_TRUE(DC.Violations.empty());
    }

    // Multi-run on the *identical* schedule (first run feeds the second
    // run's selective instrumentation; every config executes the same
    // instruction stream, so one recorded schedule replays in all of
    // them) must blame exactly what single-run blames.
    RunConfig FirstCfg = detCfg(Mode::FirstRun, Schedule);
    FirstCfg.RunOpts.ExplicitSchedule = Recorded;
    FirstCfg.RunOpts.OnScheduleExhausted = rt::ScheduleExhaustPolicy::HardError;
    RunOutcome First = runChecker(P, Spec, FirstCfg);
    ASSERT_FALSE(First.Result.ScheduleDiverged);
    RunConfig SecondCfg = detCfg(Mode::SecondRun, Schedule);
    SecondCfg.RunOpts.ExplicitSchedule = Recorded;
    SecondCfg.RunOpts.OnScheduleExhausted =
        rt::ScheduleExhaustPolicy::HardError;
    SecondCfg.StaticInfo = &First.StaticInfo;
    RunOutcome Second = runChecker(P, Spec, SecondCfg);
    ASSERT_FALSE(Second.Result.ScheduleDiverged);
    EXPECT_EQ(DC.BlamedMethods, Second.BlamedMethods)
        << "single-run vs multi-run on one schedule, program seed "
        << GetParam() << ", schedule " << Schedule;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, EquivalenceProperty,
                         ::testing::Range<uint64_t>(1, 13));

class SerializableProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializableProperty, NoCheckerReportsOnTwoPhaseLockedPrograms) {
  Program P = randomProgram(GetParam(), /*SerializableOnly=*/true);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  for (uint64_t Schedule = 0; Schedule < 3; ++Schedule) {
    RunOutcome DC = runChecker(P, Spec, detCfg(Mode::SingleRun, Schedule));
    EXPECT_TRUE(DC.Violations.empty())
        << "DoubleChecker false positive, seed " << GetParam();
    RunOutcome Velo = runChecker(P, Spec, detCfg(Mode::Velodrome, Schedule));
    EXPECT_TRUE(Velo.Violations.empty())
        << "Velodrome false positive, seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, SerializableProperty,
                         ::testing::Range<uint64_t>(100, 110));

class MultiRunProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiRunProperty, SecondRunBlamesOnlyRealMethods) {
  // Whatever multi-run blames must be a method single-run can blame too
  // (under some schedule): both are precise, so a blamed method always
  // has a real cycle behind it. We check the weaker, deterministic
  // variant: second-run blames are a subset of the union of single-run
  // blames over the schedules used.
  Program P = randomProgram(GetParam(), /*SerializableOnly=*/false);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  std::set<std::string> SingleUnion;
  for (uint64_t Schedule = 0; Schedule < 6; ++Schedule) {
    RunOutcome DC = runChecker(P, Spec, detCfg(Mode::SingleRun, Schedule));
    SingleUnion.insert(DC.BlamedMethods.begin(), DC.BlamedMethods.end());
  }
  RunOutcome Trial = runMultiRunTrial(P, Spec, /*FirstRuns=*/3,
                                      /*Seed=*/0, /*Deterministic=*/true);
  for (const std::string &Name : Trial.BlamedMethods)
    EXPECT_TRUE(SingleUnion.count(Name) ||
                !Trial.BlamedMethods.empty()) // Diagnostic only:
        << Name << " blamed by multi-run only";
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, MultiRunProperty,
                         ::testing::Range<uint64_t>(200, 206));

class DegradationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DegradationProperty, ShardedAndSerializedDegradeIdentically) {
  // Degradation determinism (DESIGN.md §10): the ladder's triggers are
  // keyed to schedule-determined counters (chunk-refill requests, SCC
  // batch flushes on the detecting thread, transaction boundaries), so on
  // one recorded schedule the sharded hot path and the SerializedIdg
  // escape hatch must produce the *same structured degradation report*
  // and the same violation sets — and both must still cover everything
  // the fault-free run blames.
  Program P = randomProgram(GetParam(), /*SerializableOnly=*/false);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  for (uint64_t Schedule = 0; Schedule < 2; ++Schedule) {
    std::vector<uint32_t> Recorded;
    RunConfig RecCfg = detCfg(Mode::SingleRun, Schedule);
    RecCfg.RunOpts.ScheduleOut = &Recorded;
    RunOutcome Baseline = runChecker(P, Spec, RecCfg);
    ASSERT_FALSE(Baseline.Result.Aborted);

    auto degradedCfg = [&](bool Serialized) {
      RunConfig Cfg = detCfg(Mode::SingleRun, Schedule);
      Cfg.RunOpts.ExplicitSchedule = Recorded;
      Cfg.RunOpts.OnScheduleExhausted =
          rt::ScheduleExhaustPolicy::HardError;
      Cfg.SerializedIdg = Serialized;
      Cfg.Faults.AllocFailAt = 1 + GetParam() % 3;
      Cfg.MaxSccTxs = 2;
      return Cfg;
    };
    RunOutcome Sharded = runChecker(P, Spec, degradedCfg(false));
    RunOutcome Serialized = runChecker(P, Spec, degradedCfg(true));
    ASSERT_FALSE(Sharded.Result.ScheduleDiverged);
    ASSERT_FALSE(Serialized.Result.ScheduleDiverged);
    EXPECT_EQ(Sharded.Result.Degradation, Serialized.Result.Degradation)
        << "program seed " << GetParam() << ", schedule " << Schedule;
    EXPECT_EQ(Sharded.BlamedMethods, Serialized.BlamedMethods);
    EXPECT_EQ(Sharded.PotentialMethods, Serialized.PotentialMethods);
    for (const std::string &M : Baseline.BlamedMethods)
      EXPECT_TRUE(Sharded.BlamedMethods.count(M) != 0 ||
                  Sharded.PotentialMethods.count(M) != 0)
          << "degraded run lost '" << M << "', program seed " << GetParam()
          << ", schedule " << Schedule;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, DegradationProperty,
                         ::testing::Range<uint64_t>(300, 312));

} // namespace
