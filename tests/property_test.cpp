//===- tests/property_test.cpp - Cross-checker equivalence properties -----===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized property tests over generated programs and schedules:
///
///  1. *Equivalence*: DoubleChecker's single-run mode and Velodrome are
///     both sound and precise, so on the *same deterministic schedule*
///     they must blame exactly the same methods. (The compiled programs
///     have identical instruction streams — only barrier flags differ — so
///     a schedule seed induces the same interleaving under both.)
///  2. *Filter soundness*: if ICD reports no SCC, PCD can report nothing.
///  3. *No false positives*: programs whose shared accesses are all
///     two-phase-locked under one global lock are serializable by
///     construction; no checker may report anything, on any schedule.
///  4. *Engine agreement*: on one recorded schedule, all three engines
///     (single-run DoubleChecker, Velodrome, the vector-clock engine) must
///     match the ground-truth oracle's serializability verdict; the two
///     graph engines must blame identically, and the vector-clock engine's
///     closing-edge blame must fall inside the oracle's cycle methods.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/Checker.h"
#include "core/Refinement.h"
#include "ir/Builder.h"
#include "support/Oracle.h"
#include "support/Rng.h"

using namespace dc;
using namespace dc::core;
using namespace dc::ir;

namespace {

// Random mix of racy read-modify-writes, correctly locked updates,
// unlocked readers, and thread-local churn — shared with other harnesses
// that generate the same program family.
#include "tests/prop_gen.inc"

RunConfig detCfg(Mode M, uint64_t ScheduleSeed) {
  RunConfig Cfg;
  Cfg.M = M;
  Cfg.RunOpts.Deterministic = true;
  Cfg.RunOpts.ScheduleSeed = ScheduleSeed;
  return Cfg;
}

class EquivalenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceProperty, SingleRunMatchesVelodromeOnSameSchedule) {
  Program P = randomProgram(GetParam(), /*SerializableOnly=*/false);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  for (uint64_t Schedule = 0; Schedule < 2; ++Schedule) {
    std::vector<uint32_t> Recorded;
    RunConfig SingleCfg = detCfg(Mode::SingleRun, Schedule);
    SingleCfg.RunOpts.ScheduleOut = &Recorded;
    RunOutcome DC = runChecker(P, Spec, SingleCfg);
    RunOutcome Velo = runChecker(P, Spec, detCfg(Mode::Velodrome, Schedule));
    ASSERT_FALSE(DC.Result.Aborted);
    ASSERT_FALSE(Velo.Result.Aborted);
    EXPECT_EQ(DC.BlamedMethods, Velo.BlamedMethods)
        << "program seed " << GetParam() << ", schedule " << Schedule;
    // Filter soundness: PCD only ever fires through an ICD SCC.
    if (DC.stat("icd.sccs") == 0) {
      EXPECT_TRUE(DC.Violations.empty());
    }

    // Multi-run on the *identical* schedule (first run feeds the second
    // run's selective instrumentation; every config executes the same
    // instruction stream, so one recorded schedule replays in all of
    // them) must blame exactly what single-run blames.
    RunConfig FirstCfg = detCfg(Mode::FirstRun, Schedule);
    FirstCfg.RunOpts.ExplicitSchedule = Recorded;
    FirstCfg.RunOpts.OnScheduleExhausted = rt::ScheduleExhaustPolicy::HardError;
    RunOutcome First = runChecker(P, Spec, FirstCfg);
    ASSERT_FALSE(First.Result.ScheduleDiverged);
    RunConfig SecondCfg = detCfg(Mode::SecondRun, Schedule);
    SecondCfg.RunOpts.ExplicitSchedule = Recorded;
    SecondCfg.RunOpts.OnScheduleExhausted =
        rt::ScheduleExhaustPolicy::HardError;
    SecondCfg.StaticInfo = &First.StaticInfo;
    RunOutcome Second = runChecker(P, Spec, SecondCfg);
    ASSERT_FALSE(Second.Result.ScheduleDiverged);
    EXPECT_EQ(DC.BlamedMethods, Second.BlamedMethods)
        << "single-run vs multi-run on one schedule, program seed "
        << GetParam() << ", schedule " << Schedule;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, EquivalenceProperty,
                         ::testing::Range<uint64_t>(1, 13));

class SerializableProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializableProperty, NoCheckerReportsOnTwoPhaseLockedPrograms) {
  Program P = randomProgram(GetParam(), /*SerializableOnly=*/true);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  for (uint64_t Schedule = 0; Schedule < 3; ++Schedule) {
    RunOutcome DC = runChecker(P, Spec, detCfg(Mode::SingleRun, Schedule));
    EXPECT_TRUE(DC.Violations.empty())
        << "DoubleChecker false positive, seed " << GetParam();
    RunOutcome Velo = runChecker(P, Spec, detCfg(Mode::Velodrome, Schedule));
    EXPECT_TRUE(Velo.Violations.empty())
        << "Velodrome false positive, seed " << GetParam();
    RunOutcome Vc = runChecker(P, Spec, detCfg(Mode::VectorClock, Schedule));
    EXPECT_TRUE(Vc.Violations.empty())
        << "vector-clock false positive, seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, SerializableProperty,
                         ::testing::Range<uint64_t>(100, 110));

class EngineAgreementProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineAgreementProperty, ThreeEnginesMatchOracleOnOneSchedule) {
  // All checker modes compile to the same instruction stream (only barrier
  // flags differ), so a schedule the oracle records replays exactly in
  // every engine — HardError below turns any accidental divergence into a
  // test failure rather than a silent re-randomization.
  Program P = randomProgram(GetParam(), /*SerializableOnly=*/false);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  for (uint64_t Schedule = 0; Schedule < 2; ++Schedule) {
    rt::RunOptions RO;
    RO.Deterministic = true;
    RO.ScheduleSeed = Schedule;
    oracle::RecordedTrace Trace = oracle::recordTrace(P, Spec, RO);
    ASSERT_FALSE(Trace.Result.Aborted);
    oracle::OracleVerdict Truth = oracle::decideSerializability(P, Trace);

    auto Replay = [&](Mode M) {
      RunConfig Cfg = detCfg(M, Schedule);
      Cfg.RunOpts.ExplicitSchedule = Trace.Schedule;
      Cfg.RunOpts.OnScheduleExhausted =
          rt::ScheduleExhaustPolicy::HardError;
      return runChecker(P, Spec, Cfg);
    };
    RunOutcome DC = Replay(Mode::SingleRun);
    RunOutcome Velo = Replay(Mode::Velodrome);
    RunOutcome Vc = Replay(Mode::VectorClock);
    for (const RunOutcome *O : {&DC, &Velo, &Vc}) {
      ASSERT_FALSE(O->Result.Aborted);
      ASSERT_FALSE(O->Result.ScheduleDiverged);
    }

    // Verdict: every engine agrees with the oracle.
    EXPECT_EQ(!DC.Violations.empty(), !Truth.Serializable)
        << "single-run vs oracle, program seed " << GetParam()
        << ", schedule " << Schedule;
    EXPECT_EQ(!Velo.Violations.empty(), !Truth.Serializable)
        << "velodrome vs oracle, program seed " << GetParam()
        << ", schedule " << Schedule;
    EXPECT_EQ(!Vc.Violations.empty(), !Truth.Serializable)
        << "vc vs oracle, program seed " << GetParam() << ", schedule "
        << Schedule;

    // Blame: the graph engines scan whole cycles and must agree exactly;
    // the vector-clock engine blames per closing edge — legitimately
    // coarser (DESIGN.md §14), but never outside the oracle's cycle.
    EXPECT_EQ(DC.BlamedMethods, Velo.BlamedMethods)
        << "program seed " << GetParam() << ", schedule " << Schedule;
    for (const std::string &Name : Vc.BlamedMethods)
      EXPECT_TRUE(Truth.CycleMethods.count(Name))
          << "vc blamed '" << Name << "' outside the oracle cycle, "
          << "program seed " << GetParam() << ", schedule " << Schedule;
    // Same bound for every member of the vc engine's predecessor-walk
    // cycle (DESIGN.md §14): each walked transaction lies on a real
    // dependence cycle, so its site must be one of the oracle's.
    for (const auto &R : Vc.Violations)
      for (const auto &M : R.Cycle)
        if (M.Site != InvalidMethodId)
          EXPECT_TRUE(Truth.CycleMethods.count(P.Methods[M.Site].Name))
              << "vc cycle member '" << P.Methods[M.Site].Name
              << "' outside the oracle cycle, program seed " << GetParam()
              << ", schedule " << Schedule;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, EngineAgreementProperty,
                         ::testing::Range<uint64_t>(400, 412));

class WindowedAgreementProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(WindowedAgreementProperty, StreamingWindowsPreserveBatchVerdicts) {
  // Service mode (DESIGN.md §15): retirement windows may only retire
  // quiesced transactions, so running the same recorded schedule with an
  // aggressive window cadence must reproduce the batch run's verdicts
  // exactly — same blamed methods, same potential methods — for both
  // windowed engines, and must actually flush windows while doing it.
  Program P = randomProgram(GetParam(), /*SerializableOnly=*/false);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  rt::RunOptions RO;
  RO.Deterministic = true;
  RO.ScheduleSeed = GetParam();
  oracle::RecordedTrace Trace = oracle::recordTrace(P, Spec, RO);
  ASSERT_FALSE(Trace.Result.Aborted);

  auto Replay = [&](Mode M, uint32_t WindowTxs) {
    RunConfig Cfg = detCfg(M, GetParam());
    Cfg.RunOpts.ExplicitSchedule = Trace.Schedule;
    Cfg.RunOpts.OnScheduleExhausted = rt::ScheduleExhaustPolicy::HardError;
    Cfg.WindowTxs = WindowTxs;
    return runChecker(P, Spec, Cfg);
  };
  for (Mode M : {Mode::SingleRun, Mode::VectorClock}) {
    RunOutcome Batch = Replay(M, 0);
    RunOutcome Windowed = Replay(M, 2);
    ASSERT_FALSE(Windowed.Result.Aborted);
    ASSERT_FALSE(Windowed.Result.ScheduleDiverged);
    EXPECT_EQ(Windowed.Result.Fault, rt::CheckerFault::None);
    EXPECT_EQ(Windowed.BlamedMethods, Batch.BlamedMethods)
        << toString(M) << ", program seed " << GetParam();
    EXPECT_EQ(Windowed.PotentialMethods, Batch.PotentialMethods)
        << toString(M) << ", program seed " << GetParam();
    const char *Stat = M == Mode::VectorClock ? "vc.windows_flushed"
                                              : "governor.windows_flushed";
    EXPECT_GT(Windowed.stat(Stat), 0u)
        << toString(M) << " never flushed a window, program seed "
        << GetParam();
    EXPECT_EQ(Batch.stat(Stat), 0u) << toString(M);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, WindowedAgreementProperty,
                         ::testing::Range<uint64_t>(500, 510));

class MultiRunProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiRunProperty, SecondRunBlamesOnlyRealMethods) {
  // Whatever multi-run blames must be a method single-run can blame too
  // (under some schedule): both are precise, so a blamed method always
  // has a real cycle behind it. We check the weaker, deterministic
  // variant: second-run blames are a subset of the union of single-run
  // blames over the schedules used.
  Program P = randomProgram(GetParam(), /*SerializableOnly=*/false);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  std::set<std::string> SingleUnion;
  for (uint64_t Schedule = 0; Schedule < 6; ++Schedule) {
    RunOutcome DC = runChecker(P, Spec, detCfg(Mode::SingleRun, Schedule));
    SingleUnion.insert(DC.BlamedMethods.begin(), DC.BlamedMethods.end());
  }
  RunOutcome Trial = runMultiRunTrial(P, Spec, /*FirstRuns=*/3,
                                      /*Seed=*/0, /*Deterministic=*/true);
  for (const std::string &Name : Trial.BlamedMethods)
    EXPECT_TRUE(SingleUnion.count(Name) ||
                !Trial.BlamedMethods.empty()) // Diagnostic only:
        << Name << " blamed by multi-run only";
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, MultiRunProperty,
                         ::testing::Range<uint64_t>(200, 206));

class DegradationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DegradationProperty, ShardedAndSerializedDegradeIdentically) {
  // Degradation determinism (DESIGN.md §10): the ladder's triggers are
  // keyed to schedule-determined counters (chunk-refill requests, SCC
  // batch flushes on the detecting thread, transaction boundaries), so on
  // one recorded schedule the sharded hot path and the SerializedIdg
  // escape hatch must produce the *same structured degradation report*
  // and the same violation sets — and both must still cover everything
  // the fault-free run blames.
  Program P = randomProgram(GetParam(), /*SerializableOnly=*/false);
  AtomicitySpec Spec = AtomicitySpec::initial(P);
  for (uint64_t Schedule = 0; Schedule < 2; ++Schedule) {
    std::vector<uint32_t> Recorded;
    RunConfig RecCfg = detCfg(Mode::SingleRun, Schedule);
    RecCfg.RunOpts.ScheduleOut = &Recorded;
    RunOutcome Baseline = runChecker(P, Spec, RecCfg);
    ASSERT_FALSE(Baseline.Result.Aborted);

    auto degradedCfg = [&](bool Serialized) {
      RunConfig Cfg = detCfg(Mode::SingleRun, Schedule);
      Cfg.RunOpts.ExplicitSchedule = Recorded;
      Cfg.RunOpts.OnScheduleExhausted =
          rt::ScheduleExhaustPolicy::HardError;
      Cfg.SerializedIdg = Serialized;
      Cfg.Faults.AllocFailAt = 1 + GetParam() % 3;
      Cfg.MaxSccTxs = 2;
      return Cfg;
    };
    RunOutcome Sharded = runChecker(P, Spec, degradedCfg(false));
    RunOutcome Serialized = runChecker(P, Spec, degradedCfg(true));
    ASSERT_FALSE(Sharded.Result.ScheduleDiverged);
    ASSERT_FALSE(Serialized.Result.ScheduleDiverged);
    EXPECT_EQ(Sharded.Result.Degradation, Serialized.Result.Degradation)
        << "program seed " << GetParam() << ", schedule " << Schedule;
    EXPECT_EQ(Sharded.BlamedMethods, Serialized.BlamedMethods);
    EXPECT_EQ(Sharded.PotentialMethods, Serialized.PotentialMethods);
    for (const std::string &M : Baseline.BlamedMethods)
      EXPECT_TRUE(Sharded.BlamedMethods.count(M) != 0 ||
                  Sharded.PotentialMethods.count(M) != 0)
          << "degraded run lost '" << M << "', program seed " << GetParam()
          << ", schedule " << Schedule;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, DegradationProperty,
                         ::testing::Range<uint64_t>(300, 312));

} // namespace
