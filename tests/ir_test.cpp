//===- tests/ir_test.cpp - dc_ir unit tests -------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

using namespace dc;
using namespace dc::ir;

namespace {

Program minimalProgram() {
  ProgramBuilder B("mini");
  PoolId Pool = B.addPool("objs", 4, 2);
  MethodId Main = B.beginMethod("main", false)
                      .read(Pool, idxConst(0), 0u)
                      .endMethod();
  B.addThread(Main);
  return B.build();
}

TEST(IrBuilderTest, BuildsMinimalProgram) {
  Program P = minimalProgram();
  EXPECT_EQ(P.Name, "mini");
  ASSERT_EQ(P.Pools.size(), 1u);
  EXPECT_EQ(P.Pools[0].Count, 4u);
  EXPECT_EQ(P.Pools[0].NumFields, 2u);
  ASSERT_EQ(P.Methods.size(), 1u);
  ASSERT_EQ(P.ThreadEntries.size(), 1u);
  EXPECT_EQ(verify(P), "");
}

TEST(IrBuilderTest, FindMethodByName) {
  Program P = minimalProgram();
  EXPECT_EQ(P.findMethod("main"), 0u);
  EXPECT_EQ(P.findMethod("nope"), InvalidMethodId);
}

TEST(IrBuilderTest, NestedLoopsBuildCorrectTree) {
  ProgramBuilder B("loops");
  PoolId Pool = B.addPool("p", 1, 1);
  MethodId M = B.beginMethod("m", false)
                   .beginLoop(idxConst(3))
                   .beginLoop(idxConst(2))
                   .read(Pool, idxConst(0), idxLoop(0))
                   .write(Pool, idxConst(0), idxLoop(1))
                   .endLoop()
                   .work(1)
                   .endLoop()
                   .endMethod();
  B.addThread(M);
  Program P = B.build();
  const Method &Method = P.method(M);
  ASSERT_EQ(Method.Body.size(), 1u);
  EXPECT_EQ(Method.Body[0].Op, Opcode::Loop);
  ASSERT_EQ(Method.Body[0].Body.size(), 2u);
  EXPECT_EQ(Method.Body[0].Body[0].Op, Opcode::Loop);
  EXPECT_EQ(Method.Body[0].Body[0].Body.size(), 2u);
}

TEST(IrBuilderTest, DeclaredMethodAllowsForwardCalls) {
  ProgramBuilder B("fwd");
  MethodId Callee = B.declareMethod("callee", true);
  MethodId Main =
      B.beginMethod("main", false).call(Callee, idxConst(1)).endMethod();
  B.beginDeclaredMethod(Callee).work(1).endMethod();
  B.addThread(Main);
  Program P = B.build();
  EXPECT_EQ(verify(P), "");
  EXPECT_EQ(P.method(Main).Body[0].Callee, Callee);
}

TEST(IrBuilderTest, OriginalOfDefaultsToSelf) {
  Program P = minimalProgram();
  EXPECT_EQ(P.originalOf(0), 0u);
}

TEST(IndexExprTest, Constructors) {
  IndexExpr C = idxConst(7);
  EXPECT_EQ(C.K, IndexExpr::Kind::Const);
  EXPECT_EQ(C.Offset, 7);

  IndexExpr L = idxLoop(1, 2, 3, 10);
  EXPECT_EQ(L.K, IndexExpr::Kind::LoopVar);
  EXPECT_EQ(L.LoopDepth, 1);
  EXPECT_EQ(L.Scale, 2);
  EXPECT_EQ(L.Offset, 3);
  EXPECT_EQ(L.Mod, 10u);

  IndexExpr T = idxThread(4);
  EXPECT_EQ(T.K, IndexExpr::Kind::ThreadId);
  EXPECT_EQ(T.Scale, 4);

  IndexExpr R = idxRandom(32, 1);
  EXPECT_EQ(R.K, IndexExpr::Kind::Random);
  EXPECT_EQ(R.Mod, 32u);
}

TEST(IrVerifierTest, RejectsMissingThreads) {
  Program P;
  P.Name = "none";
  EXPECT_NE(verify(P), "");
}

TEST(IrVerifierTest, RejectsUnknownPool) {
  Program P = minimalProgram();
  P.Methods[0].Body[0].Obj.Pool = 9;
  EXPECT_NE(verify(P), "");
}

TEST(IrVerifierTest, RejectsUnknownCallee) {
  Program P = minimalProgram();
  Instr Call;
  Call.Op = Opcode::Call;
  Call.Callee = 42;
  P.Methods[0].Body.push_back(Call);
  EXPECT_NE(verify(P), "");
}

TEST(IrVerifierTest, RejectsLoopVarOutsideLoop) {
  ProgramBuilder B("badloop");
  PoolId Pool = B.addPool("p", 1, 1);
  MethodId M = B.beginMethod("m", false)
                   .read(Pool, idxConst(0), 0u)
                   .endMethod();
  B.addThread(M);
  Program P = B.build();
  P.Methods[0].Body[0].A = idxLoop(0); // No enclosing loop.
  EXPECT_NE(verify(P), "");
}

TEST(IrVerifierTest, RejectsTooDeepLoopVar) {
  ProgramBuilder B("deep");
  PoolId Pool = B.addPool("p", 1, 1);
  MethodId M = B.beginMethod("m", false)
                   .beginLoop(idxConst(2))
                   .read(Pool, idxConst(0), idxLoop(0))
                   .endLoop()
                   .endMethod();
  B.addThread(M);
  Program P = B.build();
  P.Methods[0].Body[0].Body[0].A = idxLoop(1); // Depth 1 of 1 loop.
  EXPECT_NE(verify(P), "");
}

TEST(IrVerifierTest, RejectsElementAccessOnFieldPool) {
  Program P = minimalProgram();
  P.Methods[0].Body[0].Op = Opcode::ReadElem;
  EXPECT_NE(verify(P), "");
}

TEST(IrVerifierTest, RejectsFieldAccessOnArrayPool) {
  ProgramBuilder B("arr");
  PoolId Arr = B.addArrayPool("a", 1, 8);
  MethodId M = B.beginMethod("m", false)
                   .readElem(Arr, idxConst(0), idxConst(0))
                   .endMethod();
  B.addThread(M);
  Program P = B.build();
  P.Methods[0].Body[0].Op = Opcode::Read;
  EXPECT_NE(verify(P), "");
}

TEST(IrVerifierTest, RejectsRecursion) {
  // Hand-build a self-recursive method (the builder permits it; the
  // verifier must reject).
  Program P = minimalProgram();
  Instr Call;
  Call.Op = Opcode::Call;
  Call.Callee = 0;
  P.Methods[0].Body.push_back(Call);
  std::string Err = verify(P);
  EXPECT_NE(Err.find("recursive"), std::string::npos) << Err;
}

TEST(IrVerifierTest, RejectsMutualRecursion) {
  ProgramBuilder B("mutual");
  MethodId A = B.declareMethod("a", false);
  MethodId C = B.declareMethod("b", false);
  B.beginDeclaredMethod(A).work(1).endMethod();
  B.beginDeclaredMethod(C).call(A).endMethod();
  MethodId Main = B.beginMethod("main", false).call(C).endMethod();
  B.addThread(Main);
  Program P = B.build();
  Instr Call;
  Call.Op = Opcode::Call;
  Call.Callee = C;
  P.Methods[A].Body.push_back(Call); // a -> b -> a.
  EXPECT_NE(verify(P), "");
}

TEST(IrPrinterTest, RendersExpressions) {
  EXPECT_EQ(toString(idxConst(5)), "5");
  EXPECT_EQ(toString(idxThread()), "tid");
  EXPECT_EQ(toString(idxParam(1, 2)), "param+2");
  EXPECT_EQ(toString(idxLoop(0, 3)), "3*loop0");
  EXPECT_EQ(toString(idxRandom(16)), "rnd % 16");
}

TEST(IrPrinterTest, RendersProgramWithFlags) {
  Program P = minimalProgram();
  P.Methods[0].Body[0].Flags = IF_OctetBarrier | IF_LogAccess;
  std::string Out = toString(P);
  EXPECT_NE(Out.find("program mini"), std::string::npos);
  EXPECT_NE(Out.find("[octet,log]"), std::string::npos);
  EXPECT_NE(Out.find("read objs[0] .0"), std::string::npos);
}

TEST(IrPrinterTest, RendersAllOpcodes) {
  ProgramBuilder B("ops");
  PoolId Pool = B.addPool("p", 2, 1);
  PoolId Arr = B.addArrayPool("a", 1, 4);
  MethodId Callee = B.beginMethod("callee", true).work(1).endMethod();
  MethodId Main = B.beginMethod("main", false)
                      .read(Pool, idxConst(0), 0u)
                      .write(Pool, idxConst(0), 0u)
                      .readElem(Arr, idxConst(0), idxConst(1))
                      .writeElem(Arr, idxConst(0), idxConst(1))
                      .acquire(Pool, idxConst(1))
                      .notifyAll(Pool, idxConst(1))
                      .release(Pool, idxConst(1))
                      .call(Callee, idxConst(3))
                      .forkThread(idxConst(1))
                      .joinThread(idxConst(1))
                      .work(9)
                      .endMethod();
  B.addThread(Main);
  B.addThread(Callee);
  std::string Out = toString(B.build());
  for (const char *Fragment :
       {"readelem", "writeelem", "acquire", "notifyall", "release",
        "call @callee(3)", "fork thread 1", "join thread 1", "work 9"})
    EXPECT_NE(Out.find(Fragment), std::string::npos) << Fragment;
}

} // namespace
