//===- tests/velodrome_test.cpp - Velodrome baseline unit tests -----------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "rt/Runtime.h"
#include "velodrome/Velodrome.h"

using namespace dc;
using namespace dc::velodrome;

namespace {

ir::Program scenarioProgram() {
  ir::ProgramBuilder B("velo");
  B.addPool("objs", 4, 2);
  ir::MethodId M1 = B.beginMethod("m1", true).work(1).endMethod();
  ir::MethodId M2 = B.beginMethod("m2", true).work(1).endMethod();
  (void)M1;
  (void)M2;
  ir::MethodId Main = B.beginMethod("main", false).work(1).endMethod();
  B.addThread(Main);
  B.addThread(Main);
  return B.build();
}

class VelodromeScenario : public ::testing::Test {
protected:
  VelodromeScenario() : P(scenarioProgram()) {}

  void start(VelodromeOptions Opts = VelodromeOptions()) {
    Opts.RemoteMissPenalty = 0; // Not under test here.
    Velo = std::make_unique<VelodromeRuntime>(P, Opts, Violations, Stats);
    RT = std::make_unique<rt::Runtime>(P, Velo.get());
    Velo->beginRun(*RT);
    for (uint32_t T = 0; T < 2; ++T) {
      Tc[T].Tid = T;
      Tc[T].RT = RT.get();
      Tc[T].Checker = Velo.get();
      Velo->threadStarted(Tc[T]);
    }
  }

  void finish() {
    for (uint32_t T = 0; T < 2; ++T)
      Velo->threadExiting(Tc[T]);
    Velo->endRun(*RT);
  }

  void access(uint32_t Tid, rt::ObjectId Obj, uint32_t Field, bool IsWrite) {
    rt::AccessInfo Info;
    Info.Obj = Obj;
    Info.Addr = RT->heap().fieldAddr(Obj, Field);
    Info.IsWrite = IsWrite;
    Info.Flags = ir::IF_VelodromeBarrier;
    Velo->instrumentedAccess(Tc[Tid], Info, [] {});
  }

  void begin(uint32_t Tid, const char *M) {
    Velo->txBegin(Tc[Tid], P.Methods[P.findMethod(M)]);
  }
  void end(uint32_t Tid, const char *M) {
    Velo->txEnd(Tc[Tid], P.Methods[P.findMethod(M)]);
  }

  ir::Program P;
  StatisticRegistry Stats;
  analysis::ViolationLog Violations;
  std::unique_ptr<VelodromeRuntime> Velo;
  std::unique_ptr<rt::Runtime> RT;
  rt::ThreadContext Tc[2];
};

TEST_F(VelodromeScenario, DetectsInterleavedRmwCycle) {
  start();
  begin(0, "m1");
  begin(1, "m2");
  access(0, 0, 0, false); // T1 rd f.
  access(1, 0, 0, false); // T2 rd f.
  access(1, 0, 0, true);  // T2 wr f: edge m1 -> m2 (rd-wr).
  access(0, 0, 0, true);  // T1 wr f: edge m2 -> m1 => cycle.
  end(1, "m2");
  end(0, "m1");
  finish();
  EXPECT_GE(Violations.count(), 1u);
  EXPECT_GE(Stats.value("velodrome.cycles"), 1u);
}

TEST_F(VelodromeScenario, OneDirectionalDependenceIsClean) {
  start();
  begin(0, "m1");
  access(0, 0, 0, true);
  end(0, "m1");
  begin(1, "m2");
  access(1, 0, 0, false);
  end(1, "m2");
  finish();
  EXPECT_EQ(Violations.count(), 0u);
  EXPECT_GE(Stats.value("velodrome.cross_edges"), 1u);
}

TEST_F(VelodromeScenario, DifferentFieldsStayIndependent) {
  start();
  begin(0, "m1");
  begin(1, "m2");
  access(0, 0, 0, true);
  access(1, 0, 1, true); // Field granularity: no interaction.
  access(0, 0, 0, false);
  access(1, 0, 1, false);
  end(1, "m2");
  end(0, "m1");
  finish();
  EXPECT_EQ(Violations.count(), 0u);
  EXPECT_EQ(Stats.value("velodrome.cross_edges"), 0u);
}

TEST_F(VelodromeScenario, BlameIdentifiesEnclosingMethod) {
  start();
  begin(0, "m1");
  begin(1, "m2");
  access(0, 0, 0, false); // m1 reads first...
  access(1, 0, 0, true);  // m2's write lands inside m1.
  access(0, 0, 0, true);  // ...m1 writes: cycle completed by m1.
  end(1, "m2");
  end(0, "m1");
  finish();
  ASSERT_GE(Violations.count(), 1u);
  auto Blamed = Violations.blamedMethods();
  EXPECT_TRUE(Blamed.count(P.findMethod("m1")))
      << "the enclosing transaction (out-edge before in-edge) is blamed";
}

TEST_F(VelodromeScenario, RepeatedAccessSkipsMetadataUpdate) {
  start();
  begin(0, "m1");
  access(0, 0, 0, true);
  for (int I = 0; I < 10; ++I)
    access(0, 0, 0, true); // Already last writer: no metadata change.
  end(0, "m1");
  finish();
  EXPECT_EQ(Stats.value("velodrome.accesses"), 11u);
  EXPECT_EQ(Stats.value("velodrome.cross_edges"), 0u);
}

TEST_F(VelodromeScenario, UnsoundVariantCountsSkips) {
  VelodromeOptions Opts;
  Opts.UnsoundMetadataFastPath = true;
  start(Opts);
  begin(0, "m1");
  access(0, 0, 0, true);
  for (int I = 0; I < 5; ++I)
    access(0, 0, 0, true); // Racy pre-check passes: lock skipped.
  end(0, "m1");
  finish();
  EXPECT_GE(Stats.value("velodrome.unsound_fast_skips"), 5u);
}

TEST_F(VelodromeScenario, CollectorReclaimsOldTransactions) {
  VelodromeOptions Opts;
  Opts.CollectEveryTx = 4;
  start(Opts);
  for (int I = 0; I < 40; ++I) {
    begin(0, "m1");
    access(0, 1, 0, true);
    end(0, "m1");
  }
  finish();
  EXPECT_GT(Stats.value("velodrome.collector_runs"), 0u);
  EXPECT_GT(Stats.value("velodrome.txs_swept"), 10u);
}

TEST_F(VelodromeScenario, MetadataRootsSurviveCollection) {
  // The last writer of a field must never be swept while its metadata
  // reference can still source an edge: write once, churn transactions,
  // then read from the other thread — the edge must still appear.
  VelodromeOptions Opts;
  Opts.CollectEveryTx = 2;
  start(Opts);
  begin(0, "m1");
  access(0, 0, 0, true);
  end(0, "m1");
  for (int I = 0; I < 20; ++I) {
    begin(0, "m2");
    end(0, "m2"); // Churn to force collections.
  }
  begin(1, "m2");
  access(1, 0, 0, false); // Must find the (uncollected) last writer.
  end(1, "m2");
  finish();
  EXPECT_GE(Stats.value("velodrome.cross_edges"), 1u);
}

TEST_F(VelodromeScenario, SyncOpsTrackedAsAccesses) {
  start();
  begin(0, "m1");
  rt::AccessInfo Info;
  Info.Obj = 0;
  Info.Addr = RT->heap().syncAddr(0);
  Info.IsWrite = true; // Release-like.
  Info.IsSync = true;
  Info.Flags = ir::IF_VelodromeBarrier;
  Velo->syncOp(Tc[0], Info, rt::SyncKind::MonitorExit);
  end(0, "m1");
  begin(1, "m2");
  Info.IsWrite = false; // Acquire-like.
  Velo->syncOp(Tc[1], Info, rt::SyncKind::MonitorEnter);
  end(1, "m2");
  finish();
  EXPECT_GE(Stats.value("velodrome.cross_edges"), 1u)
      << "release-acquire must create a dependence edge";
}

} // namespace
