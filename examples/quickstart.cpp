//===- examples/quickstart.cpp - Five-minute tour of the API --------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Build a small multithreaded program with the IR builder, check it with
/// DoubleChecker's single-run mode, and print what it found.
///
///   $ ./quickstart
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "core/Checker.h"
#include "ir/Builder.h"

using namespace dc;
using namespace dc::ir;

int main() {
  // --- 1. Describe the program. -------------------------------------------
  // Two workers repeatedly run `increment` on a shared counter. The method
  // is *supposed* to be atomic (it is in the specification), but its
  // read-modify-write is unsynchronized.
  ProgramBuilder B("quickstart");
  PoolId Counter = B.addPool("counter", 1, 1);

  MethodId Increment = B.beginMethod("increment", /*Atomic=*/true)
                           .read(Counter, idxConst(0), 0u)
                           .work(10) // compute between read and write
                           .write(Counter, idxConst(0), 0u)
                           .endMethod();

  MethodId Worker = B.beginMethod("worker", /*Atomic=*/false)
                        .beginLoop(idxConst(2000))
                        .call(Increment)
                        .endLoop()
                        .endMethod();

  MethodId Main = B.beginMethod("main", /*Atomic=*/false)
                      .forkThread(idxConst(1))
                      .forkThread(idxConst(2))
                      .joinThread(idxConst(1))
                      .joinThread(idxConst(2))
                      .endMethod();
  B.addThread(Main);
  B.addThread(Worker);
  B.addThread(Worker);
  Program P = B.build();

  // --- 2. Derive the specification and run the checker. -------------------
  // The initial specification assumes every method is atomic except
  // top-level ones (main) — exactly the paper's starting point.
  core::AtomicitySpec Spec = core::AtomicitySpec::initial(P);

  core::RunConfig Cfg;
  Cfg.M = core::Mode::SingleRun; // ICD + PCD: fully sound and precise.
  // The deterministic scheduler interleaves threads at instruction
  // granularity; on a big machine you could use free-running threads.
  Cfg.RunOpts.Deterministic = true;
  Cfg.RunOpts.ScheduleSeed = 42;

  core::RunOutcome Outcome = core::runChecker(P, Spec, Cfg);

  // --- 3. Report. ----------------------------------------------------------
  std::printf("executed %llu instructions, found %zu violation(s)\n",
              (unsigned long long)Outcome.Result.Steps,
              Outcome.Violations.size());
  for (const std::string &Name : Outcome.BlamedMethods)
    std::printf("atomicity violation blamed on method '%s'\n", Name.c_str());
  std::printf("ICD cross-thread edges: %llu, SCCs: %llu, PCD cycles: %llu\n",
              (unsigned long long)Outcome.stat("icd.idg_cross_edges"),
              (unsigned long long)Outcome.stat("icd.sccs"),
              (unsigned long long)Outcome.stat("pcd.cycles"));
  return Outcome.BlamedMethods.count("increment") ? 0 : 1;
}
