//===- examples/iterative_refinement.cpp - Deriving a specification -------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Figure 6 methodology on one workload: start from
/// the everything-is-atomic specification, run the checker, remove blamed
/// methods, and repeat until quiet. The final specification is what the
/// performance experiments use; the set of all blamed methods is what
/// Table 2 counts.
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "core/Refinement.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::core;

int main() {
  ir::Program P = workloads::build("eclipse6", /*Scale=*/0.05);

  RefinementOptions Opts;
  Opts.Checker = RefinementChecker::SingleRun;
  Opts.QuietTrials = 3;
  Opts.Deterministic = true;
  Opts.Seed = 2024;

  std::printf("refining the atomicity specification of '%s'...\n",
              P.Name.c_str());
  RefinementResult R = iterativeRefinement(P, Opts);

  std::printf("converged after %u trials\n", R.Trials);
  std::printf("methods blamed (in discovery order):\n");
  for (const std::string &Name : R.BlameOrder)
    std::printf("  %s\n", Name.c_str());

  std::printf("final specification excludes %zu methods:\n",
              R.FinalSpec.excluded().size());
  for (const std::string &Name : R.FinalSpec.excluded())
    std::printf("  non-atomic: %s\n", Name.c_str());

  std::printf("methods still considered atomic:\n");
  for (const std::string &Name : R.FinalSpec.atomicMethods(P))
    std::printf("  atomic: %s\n", Name.c_str());

  // Sanity: the refined specification should now be quiet.
  RunConfig Cfg;
  Cfg.M = Mode::SingleRun;
  Cfg.RunOpts.Deterministic = true;
  Cfg.RunOpts.ScheduleSeed = 777;
  RunOutcome O = runChecker(P, R.FinalSpec, Cfg);
  std::printf("check against refined spec: %zu violations\n",
              O.Violations.size());
  return 0;
}
