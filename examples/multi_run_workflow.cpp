//===- examples/multi_run_workflow.cpp - Multi-run mode end to end --------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates multi-run mode the way a testing pipeline would use it:
/// several cheap first runs (ICD only, no logging) gather *static
/// transaction information*; the information is serialized (as it would be
/// between process invocations), merged, and fed to a second run that
/// instruments only the implicated methods. The example prints how much of
/// the program the second run still instruments — the Table 3 story.
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "analysis/StaticInfo.h"
#include "core/Checker.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::core;

int main() {
  ir::Program P = workloads::build("lusearch9", /*Scale=*/0.05);
  AtomicitySpec Spec = AtomicitySpec::initial(P);

  // --- First runs: ICD without logging (cheap, 1.9x in the paper). --------
  analysis::StaticTransactionInfo Union;
  for (uint64_t Trial = 0; Trial < 3; ++Trial) {
    RunConfig First;
    First.M = Mode::FirstRun;
    First.RunOpts.Deterministic = true;
    First.RunOpts.ScheduleSeed = 100 + Trial;
    RunOutcome O = runChecker(P, Spec, First);
    std::printf("first run %llu: %llu IDG edges, %llu imprecise SCCs, "
                "methods implicated: %zu\n",
                (unsigned long long)Trial,
                (unsigned long long)O.stat("icd.idg_cross_edges"),
                (unsigned long long)O.stat("icd.sccs"),
                O.StaticInfo.MethodNames.size());
    // Serialize/parse round trip, as a pipeline writing a file would do.
    Union.merge(analysis::StaticTransactionInfo::parse(
        O.StaticInfo.serialize()));
  }

  std::printf("\nunion of first runs:\n%s", Union.serialize().c_str());

  // --- Second run: ICD + PCD on the implicated subset. ---------------------
  RunConfig Second;
  Second.M = Mode::SecondRun;
  Second.RunOpts.Deterministic = true;
  Second.RunOpts.ScheduleSeed = 999;
  Second.StaticInfo = &Union;
  RunOutcome O2 = runChecker(P, Spec, Second);

  std::printf("\nsecond run: %llu regular transactions, "
              "%llu + %llu instrumented accesses (regular + unary)\n",
              (unsigned long long)O2.stat("icd.regular_transactions"),
              (unsigned long long)
                  O2.stat("icd.instrumented_accesses_regular"),
              (unsigned long long)O2.stat("icd.instrumented_accesses_unary"));
  for (const std::string &Name : O2.BlamedMethods)
    std::printf("second run blamed '%s'\n", Name.c_str());

  // --- Compare with what single-run mode instruments. ----------------------
  RunConfig Single;
  Single.M = Mode::SingleRun;
  Single.RunOpts.Deterministic = true;
  Single.RunOpts.ScheduleSeed = 999;
  RunOutcome O1 = runChecker(P, Spec, Single);
  std::printf("\nsingle-run mode for comparison: %llu + %llu instrumented "
              "accesses\n",
              (unsigned long long)
                  O1.stat("icd.instrumented_accesses_regular"),
              (unsigned long long)O1.stat("icd.instrumented_accesses_unary"));
  return 0;
}
