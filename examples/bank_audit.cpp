//===- examples/bank_audit.cpp - Classic transfer/audit violation ---------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The textbook atomicity bug: `transfer` locks each account individually
/// while moving money, and `audit` sums all accounts under no lock at all.
/// Every individual access is data-race-free on its lock discipline's
/// terms, yet `audit` can observe money in flight — a conflict-
/// serializability violation that lockset-style race detectors miss but
/// DoubleChecker and Velodrome both catch. The example runs both checkers
/// and shows they agree.
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "core/Checker.h"
#include "ir/Builder.h"

using namespace dc;
using namespace dc::ir;

static Program buildBank() {
  ProgramBuilder B("bank-audit");
  const uint32_t Accounts = 4;
  PoolId Acct = B.addPool("accounts", Accounts, 1);

  // transfer(i): withdraw from account i, deposit to account i+1 — each
  // leg under that account's own lock (fine-grained, but not atomic as a
  // whole: the "in flight" window is observable).
  MethodId Transfer = B.beginMethod("transfer", /*Atomic=*/true)
                          .acquire(Acct, idxParam(1, 0, Accounts))
                          .read(Acct, idxParam(1, 0, Accounts), 0u)
                          .write(Acct, idxParam(1, 0, Accounts), 0u)
                          .release(Acct, idxParam(1, 0, Accounts))
                          .work(15) // money is in flight here
                          .acquire(Acct, idxParam(1, 1, Accounts))
                          .read(Acct, idxParam(1, 1, Accounts), 0u)
                          .write(Acct, idxParam(1, 1, Accounts), 0u)
                          .release(Acct, idxParam(1, 1, Accounts))
                          .endMethod();

  // audit(): read every balance with no locks.
  auto &Audit = B.beginMethod("audit", /*Atomic=*/true);
  Audit.beginLoop(idxConst(Accounts))
      .read(Acct, idxLoop(), 0u)
      .endLoop()
      .work(10);
  MethodId AuditId = Audit.endMethod();

  MethodId Teller = B.beginMethod("teller", /*Atomic=*/false)
                        .beginLoop(idxConst(1500))
                        .call(Transfer, idxRandom(4))
                        .endLoop()
                        .endMethod();

  MethodId Auditor = B.beginMethod("auditor", /*Atomic=*/false)
                         .beginLoop(idxConst(1500))
                         .call(AuditId)
                         .endLoop()
                         .endMethod();

  MethodId Main = B.beginMethod("main", /*Atomic=*/false)
                      .forkThread(idxConst(1))
                      .forkThread(idxConst(2))
                      .joinThread(idxConst(1))
                      .joinThread(idxConst(2))
                      .endMethod();
  B.addThread(Main);
  B.addThread(Teller);
  B.addThread(Auditor);
  return B.build();
}

int main() {
  Program P = buildBank();
  core::AtomicitySpec Spec = core::AtomicitySpec::initial(P);

  auto Run = [&](core::Mode M, uint64_t Seed) {
    core::RunConfig Cfg;
    Cfg.M = M;
    Cfg.RunOpts.Deterministic = true;
    Cfg.RunOpts.ScheduleSeed = Seed;
    return core::runChecker(P, Spec, Cfg);
  };

  bool DcFound = false, VeloFound = false;
  for (uint64_t Seed = 0; Seed < 6 && !(DcFound && VeloFound); ++Seed) {
    core::RunOutcome DC = Run(core::Mode::SingleRun, Seed);
    core::RunOutcome Velo = Run(core::Mode::Velodrome, Seed);
    DcFound = DcFound || !DC.BlamedMethods.empty();
    VeloFound = VeloFound || !Velo.BlamedMethods.empty();
    std::printf("seed %llu: DoubleChecker blamed %zu method(s), "
                "Velodrome blamed %zu\n",
                (unsigned long long)Seed, DC.BlamedMethods.size(),
                Velo.BlamedMethods.size());
    for (const auto &V : DC.Violations) {
      std::printf("  cycle:");
      for (const auto &M : V.Cycle)
        std::printf(" (thread %u, %s)", M.Tid,
                    M.Site == ir::InvalidMethodId
                        ? "non-atomic code"
                        : P.Methods[M.Site].Name.c_str());
      std::printf("\n");
      break; // One sample cycle per seed is enough output.
    }
  }
  std::printf("%s\n", DcFound && VeloFound
                          ? "both checkers caught the transfer/audit bug"
                          : "bug not observed under these schedules");
  return DcFound && VeloFound ? 0 : 1;
}
