//===- velodrome/Velodrome.cpp --------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "velodrome/Velodrome.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <unordered_map>

using namespace dc;
using namespace dc::velodrome;
using analysis::CycleMember;
using analysis::Transaction;
using analysis::ViolationRecord;

VelodromeRuntime::VelodromeRuntime(const ir::Program &P,
                                   VelodromeOptions Opts,
                                   analysis::ViolationLog &Violations,
                                   StatisticRegistry &Stats)
    : P(P), Opts(Opts), Violations(Violations), Stats(Stats) {}

VelodromeRuntime::~VelodromeRuntime() {
  for (uint32_t T = 0; T < NumThreads; ++T)
    for (Transaction *Tx : Threads[T].Owned)
      delete Tx;
}

void VelodromeRuntime::beginRun(rt::Runtime &RT) {
  NumThreads = RT.numThreads();
  Threads = std::make_unique<PerThread[]>(NumThreads);
  FieldLocks = std::vector<SpinLock>(RT.heap().numFieldAddrs());
  Fields = std::vector<FieldMeta>(RT.heap().numFieldAddrs());
}

void VelodromeRuntime::endRun(rt::Runtime &RT) {
  uint64_t Acc = 0, Fast = 0;
  for (uint32_t T = 0; T < NumThreads; ++T) {
    Acc += Threads[T].Accesses;
    Fast += Threads[T].FastSkips;
  }
  Stats.get("velodrome.accesses").add(Acc);
  Stats.get("velodrome.unsound_fast_skips").add(Fast);
  SpinLockGuard Guard(GraphLock);
  Stats.get("velodrome.cross_edges").add(CrossEdges);
  Stats.get("velodrome.cycle_checks").add(CycleChecks);
  Stats.get("velodrome.cycles").add(Cycles);
  Stats.get("velodrome.collector_runs").add(CollectorRuns);
  Stats.get("velodrome.collector_ns").add(CollectorNs);
  Stats.get("velodrome.txs_swept").add(TxsSwept);
}

void VelodromeRuntime::threadStarted(rt::ThreadContext &TC) {
  SpinLockGuard Guard(GraphLock);
  newTransactionLocked(TC.Tid, ir::InvalidMethodId, /*Regular=*/false);
}

void VelodromeRuntime::threadExiting(rt::ThreadContext &TC) {
  SpinLockGuard Guard(GraphLock);
  endCurrentTxLocked(TC.Tid);
  Threads[TC.Tid].CurrTx.store(nullptr, std::memory_order_release);
}

void VelodromeRuntime::txBegin(rt::ThreadContext &TC, const ir::Method &M) {
  SpinLockGuard Guard(GraphLock);
  endCurrentTxLocked(TC.Tid);
  newTransactionLocked(TC.Tid, P.originalOf(M.Id), /*Regular=*/true);
}

void VelodromeRuntime::txEnd(rt::ThreadContext &TC, const ir::Method &M) {
  SpinLockGuard Guard(GraphLock);
  endCurrentTxLocked(TC.Tid);
  newTransactionLocked(TC.Tid, ir::InvalidMethodId, /*Regular=*/false);
}

Transaction *VelodromeRuntime::currentForAccess(rt::ThreadContext &TC) {
  PerThread &PT = Threads[TC.Tid];
  Transaction *Cur = PT.CurrTx.load(std::memory_order_relaxed);
  assert(Cur && "access outside any transaction context");
  if (Cur->Regular || !Cur->Interrupted.load(std::memory_order_relaxed))
    return Cur;
  SpinLockGuard Guard(GraphLock);
  endCurrentTxLocked(TC.Tid);
  return newTransactionLocked(TC.Tid, ir::InvalidMethodId,
                              /*Regular=*/false);
}

void VelodromeRuntime::instrumentedAccess(rt::ThreadContext &TC,
                                          const rt::AccessInfo &Info,
                                          function_ref<void()> Access) {
  if (!(Info.Flags & ir::IF_VelodromeBarrier)) {
    Access();
    return;
  }
  PerThread &PT = Threads[TC.Tid];
  ++PT.Accesses;
  Transaction *Cur = currentForAccess(TC);
  FieldMeta &Meta = Fields[Info.Addr];

  if (Opts.UnsoundMetadataFastPath) {
    // Racy pre-check: skip the critical section when the metadata appears
    // not to need changing. Can miss dependences under races (§5.3).
    if (!Info.IsWrite) {
      Transaction *W = Meta.LastWrite.load(std::memory_order_relaxed);
      bool AlreadyReader = false;
      for (const auto &R : Meta.Readers) {
        if (R.first == TC.Tid) {
          AlreadyReader = R.second == Cur;
          break;
        }
      }
      if (AlreadyReader && (W == nullptr || W->Tid == TC.Tid)) {
        ++PT.FastSkips;
        Access();
        return;
      }
    } else if (Meta.LastWrite.load(std::memory_order_relaxed) == Cur &&
               Meta.Readers.empty()) {
      ++PT.FastSkips;
      Access();
      return;
    }
  }

  // Lock order: field lock, then GraphLock. Metadata is *mutated* only
  // while both are held, so the collector (which holds GraphLock) can scan
  // field metadata as roots without racing vector mutations.
  SpinLockGuard FieldGuard(FieldLocks[Info.Addr]);
  if (Opts.RemoteMissPenalty != 0) {
    // Coherence-miss simulation: once a field's metadata has been touched
    // by more than one thread, concurrent cores would ping-pong its cache
    // line on every locked update — even when all program accesses are
    // reads (see VelodromeOptions::RemoteMissPenalty).
    if (Meta.LastToucher != TC.Tid) {
      if (Meta.LastToucher != ~0u)
        Meta.Contended = true;
      Meta.LastToucher = TC.Tid;
    }
    if (Meta.Contended) {
      uint64_t Acc = Info.Addr;
      for (uint32_t I = 0; I < Opts.RemoteMissPenalty; ++I)
        Acc = Acc * 6364136223846793005ULL + 1442695040888963407ULL;
      PenaltySink.fetch_add(Acc, std::memory_order_relaxed);
    }
  }
  Transaction *W = Meta.LastWrite.load(std::memory_order_relaxed);
  if (!Info.IsWrite) {
    // READ rule (Fig. 5): write-read edge, then record the reader.
    Transaction **Slot = nullptr;
    for (auto &R : Meta.Readers)
      if (R.first == TC.Tid)
        Slot = &R.second;
    bool AlreadyRecorded = Slot != nullptr && *Slot == Cur;
    if (!AlreadyRecorded) {
      SpinLockGuard GraphGuard(GraphLock);
      if (W != nullptr && W->Tid != TC.Tid)
        addEdgeLocked(W, Cur);
      if (Slot != nullptr)
        *Slot = Cur;
      else
        Meta.Readers.emplace_back(TC.Tid, Cur);
    }
  } else {
    // WRITE rule (Fig. 5): write-write and read-write edges, then update.
    bool NeedsChange = W != Cur || !Meta.Readers.empty();
    if (NeedsChange) {
      SpinLockGuard GraphGuard(GraphLock);
      if (W != nullptr && W->Tid != TC.Tid)
        addEdgeLocked(W, Cur);
      for (const auto &R : Meta.Readers)
        if (R.first != TC.Tid)
          addEdgeLocked(R.second, Cur);
      Meta.LastWrite.store(Cur, std::memory_order_relaxed);
      Meta.Readers.clear();
    }
  }
  Access();
}

void VelodromeRuntime::syncOp(rt::ThreadContext &TC,
                              const rt::AccessInfo &Info, rt::SyncKind Kind) {
  if (Info.Flags == ir::IF_None)
    return;
  // Release-acquire dependences: the sync slot behaves as the "extra header
  // word" tracking the last transaction to release the object's lock (§4).
  instrumentedAccess(TC, Info, [] {});
}

Transaction *VelodromeRuntime::newTransactionLocked(uint32_t Tid,
                                                    ir::MethodId Site,
                                                    bool Regular) {
  PerThread &PT = Threads[Tid];
  auto *Tx = new Transaction(++NextTxId, Tid, PT.NextSeq++, Site, Regular);
  {
    SpinLockGuard Guard(PT.OwnedLock);
    PT.Owned.push_back(Tx);
  }
  Transaction *Prev = PT.CurrTx.load(std::memory_order_relaxed);
  if (Prev != nullptr) {
    analysis::OutEdge E;
    E.Dst = Tx;
    E.Id = ++NextEdgeId;
    E.Intra = true;
    Prev->Out.push_back(E);
  }
  PT.CurrTx.store(Tx, std::memory_order_release);
  return Tx;
}

void VelodromeRuntime::endCurrentTxLocked(uint32_t Tid) {
  PerThread &PT = Threads[Tid];
  Transaction *Cur = PT.CurrTx.load(std::memory_order_relaxed);
  if (Cur == nullptr)
    return;
  Cur->Finished.store(true, std::memory_order_release);
  if (++FinishedTxs % Opts.CollectEveryTx == 0)
    collectLocked();
}

void VelodromeRuntime::addEdgeLocked(Transaction *Src, Transaction *Dst) {
  if (Src == nullptr || Src == Dst)
    return;
  // Cheap dedupe of the common consecutive-duplicate case.
  if (!Src->Out.empty() && Src->Out.back().Dst == Dst)
    return;
  analysis::OutEdge E;
  E.Dst = Dst;
  E.Id = ++NextEdgeId;
  E.Intra = false;
  Src->Out.push_back(E);
  // Edges interrupt unary-transaction merging (same demarcation as ICD).
  if (!Src->Regular)
    Src->Interrupted.store(true, std::memory_order_relaxed);
  if (!Dst->Regular)
    Dst->Interrupted.store(true, std::memory_order_relaxed);
  ++CrossEdges;
  if (Opts.DetectCycles)
    checkCycleLocked(Src, Dst);
}

void VelodromeRuntime::checkCycleLocked(Transaction *Src, Transaction *Dst) {
  ++CycleChecks;
  // The new edge Src->Dst closes a cycle iff Dst already reaches Src.
  const uint64_t Epoch = ++DfsEpoch;
  std::unordered_map<Transaction *, Transaction *> Parent;
  std::vector<Transaction *> Stack{Dst};
  Dst->SccEpoch = Epoch;
  bool Found = false;
  while (!Stack.empty() && !Found) {
    Transaction *Cur = Stack.back();
    Stack.pop_back();
    for (const analysis::OutEdge &E : Cur->Out) {
      if (E.Dst->SccEpoch == Epoch)
        continue;
      E.Dst->SccEpoch = Epoch;
      Parent[E.Dst] = Cur;
      if (E.Dst == Src) {
        Found = true;
        break;
      }
      Stack.push_back(E.Dst);
    }
  }
  if (!Found)
    return;
  ++Cycles;

  // Reconstruct the cycle Dst -> ... -> Src (-> Dst via the new edge).
  std::vector<Transaction *> Cycle;
  for (Transaction *Cur = Src;; Cur = Parent[Cur]) {
    Cycle.push_back(Cur);
    if (Cur == Dst)
      break;
  }
  std::reverse(Cycle.begin(), Cycle.end());

  // Blame: the transaction whose outgoing cycle edge was created earlier
  // than its incoming one (it completed the cycle). Edge ids are creation-
  // ordered. Prefer regular transactions.
  auto EdgeIdOf = [](Transaction *From, Transaction *To) {
    uint64_t Best = ~0ULL;
    for (const analysis::OutEdge &E : From->Out)
      if (E.Dst == To && E.Id < Best)
        Best = E.Id;
    return Best;
  };
  const size_t N = Cycle.size();
  ir::MethodId Blamed = ir::InvalidMethodId;
  for (size_t I = 0; I < N && Blamed == ir::InvalidMethodId; ++I) {
    Transaction *Prev = Cycle[(I + N - 1) % N];
    Transaction *Cur = Cycle[I];
    Transaction *Next = Cycle[(I + 1) % N];
    if (Cur->Regular && EdgeIdOf(Cur, Next) < EdgeIdOf(Prev, Cur))
      Blamed = Cur->Site;
  }
  if (Blamed == ir::InvalidMethodId) {
    for (Transaction *Tx : Cycle)
      if (Tx->Regular) {
        Blamed = Tx->Site;
        break;
      }
  }

  ViolationRecord R;
  R.Blamed = Blamed;
  for (Transaction *Tx : Cycle)
    R.Cycle.push_back(CycleMember{Tx->Tid, Tx->Site, Tx->Id});
  Violations.report(std::move(R));
}

void VelodromeRuntime::collectLocked() {
  auto StartTime = std::chrono::steady_clock::now();
  const uint64_t Epoch = ++MarkEpoch;
  std::vector<Transaction *> Work;
  auto AddRoot = [&](Transaction *Tx) {
    if (Tx != nullptr && Tx->MarkEpoch != Epoch) {
      Tx->MarkEpoch = Epoch;
      Work.push_back(Tx);
    }
  };
  for (uint32_t T = 0; T < NumThreads; ++T)
    AddRoot(Threads[T].CurrTx.load(std::memory_order_relaxed));
  // Field metadata references are roots: a last-writer/reader can still
  // source a future edge. (Bounded by the number of fields; see header.)
  for (FieldMeta &Meta : Fields) {
    AddRoot(Meta.LastWrite.load(std::memory_order_relaxed));
    for (const auto &R : Meta.Readers)
      AddRoot(R.second);
  }
  while (!Work.empty()) {
    Transaction *Tx = Work.back();
    Work.pop_back();
    for (const analysis::OutEdge &E : Tx->Out)
      AddRoot(E.Dst);
  }
  for (uint32_t T = 0; T < NumThreads; ++T) {
    PerThread &PT = Threads[T];
    SpinLockGuard Guard(PT.OwnedLock);
    size_t Kept = 0;
    for (Transaction *Tx : PT.Owned) {
      if (Tx->MarkEpoch == Epoch)
        PT.Owned[Kept++] = Tx;
      else {
        delete Tx;
        ++TxsSwept;
      }
    }
    PT.Owned.resize(Kept);
  }
  ++CollectorRuns;
  CollectorNs += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - StartTime)
          .count());
}
