//===- velodrome/Velodrome.h - Velodrome baseline checker -------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Our implementation of Velodrome (Flanagan, Freund, Yi, PLDI 2008), the
/// sound-and-precise baseline the paper compares against. At every
/// instrumented access it maintains, per field: the last transaction to
/// write and the last transaction per thread to read since that write. The
/// analysis and the program access execute together inside a small critical
/// section that locks the field's metadata (analysis-access atomicity, §2) —
/// this per-access synchronization is the dominant cost the paper measures.
/// Cross-thread dependence edges go into a transaction graph; a cycle check
/// runs after every cross-thread edge; each cycle is a violation with blame
/// assignment.
///
/// The *unsound* variant (§5.3) checks "does the metadata even need to
/// change?" before acquiring the field lock and skips the critical section
/// when it appears not to — racy reads that can miss dependences under
/// concurrent accesses.
///
/// Transactions are reclaimed by a mark-sweep collector; field metadata
/// references are treated as roots (a bounded-by-#fields strengthening of
/// the paper's weak references — see DESIGN.md §2).
///
//===----------------------------------------------------------------------===//

#ifndef DC_VELODROME_VELODROME_H
#define DC_VELODROME_VELODROME_H

#include <memory>
#include <vector>

#include "analysis/Transaction.h"
#include "analysis/Violation.h"
#include "rt/CheckerRuntime.h"
#include "rt/Runtime.h"
#include "support/SpinLock.h"
#include "support/Statistic.h"

namespace dc {
namespace velodrome {

struct VelodromeOptions {
  /// Unsound variant: skip the metadata lock when a racy pre-check says the
  /// metadata would not change.
  bool UnsoundMetadataFastPath = false;
  /// Remote-cache-miss simulation (see DESIGN.md §2): this host has one
  /// core, so the atomic metadata updates that dominate Velodrome's cost on
  /// real multicores ("82% of this overhead comes from synchronization ...
  /// atomic operations can lead to remote cache misses on otherwise
  /// mostly-read-shared accesses", §5.3) would otherwise be nearly free.
  /// When an access finds its field metadata last touched by a *different*
  /// thread, the checker spins this many ALU iterations, modelling the
  /// coherence-miss latency of pulling the metadata line from the other
  /// core. Thread-local fields stay cheap, read-shared hot fields
  /// ping-pong — exactly the asymmetry Octet's write-free fast path avoids.
  /// 0 disables the simulation.
  uint32_t RemoteMissPenalty = 300;
  /// Disable cycle detection (used by the array-instrumentation ablation,
  /// where conflated array metadata would make reports meaningless).
  bool DetectCycles = true;
  /// Collector trigger, in finished transactions.
  uint32_t CollectEveryTx = 8192;
};

/// Velodrome attached to one execution.
class VelodromeRuntime final : public rt::CheckerRuntime {
public:
  VelodromeRuntime(const ir::Program &P, VelodromeOptions Opts,
                   analysis::ViolationLog &Violations,
                   StatisticRegistry &Stats);
  ~VelodromeRuntime() override;

  void beginRun(rt::Runtime &RT) override;
  void endRun(rt::Runtime &RT) override;
  void threadStarted(rt::ThreadContext &TC) override;
  void threadExiting(rt::ThreadContext &TC) override;
  void txBegin(rt::ThreadContext &TC, const ir::Method &M) override;
  void txEnd(rt::ThreadContext &TC, const ir::Method &M) override;
  void instrumentedAccess(rt::ThreadContext &TC, const rt::AccessInfo &Info,
                          function_ref<void()> Access) override;
  void syncOp(rt::ThreadContext &TC, const rt::AccessInfo &Info,
              rt::SyncKind Kind) override;

private:
  using Transaction = analysis::Transaction;

  struct alignas(64) PerThread {
    std::atomic<Transaction *> CurrTx{nullptr};
    uint64_t NextSeq = 0;
    uint64_t Accesses = 0;
    uint64_t FastSkips = 0;
    std::vector<Transaction *> Owned;
    SpinLock OwnedLock;
  };

  /// Per-field metadata ("two words per field", §4 of the paper).
  struct FieldMeta {
    std::atomic<Transaction *> LastWrite{nullptr};
    /// Last reader per thread since the last write. Guarded by the field
    /// lock; searched linearly (reader sets are small).
    std::vector<std::pair<uint32_t, Transaction *>> Readers;
    /// Thread that last ran the metadata critical section, and whether the
    /// field has ever been touched by two different threads (remote-miss
    /// simulation; guarded by the field lock).
    uint32_t LastToucher = ~0u;
    bool Contended = false;
  };

  Transaction *newTransactionLocked(uint32_t Tid, ir::MethodId Site,
                                    bool Regular);
  void endCurrentTxLocked(uint32_t Tid);
  Transaction *currentForAccess(rt::ThreadContext &TC);
  /// Adds edge Src->Dst (if distinct threads' transactions) and checks for
  /// a cycle. Caller holds GraphLock.
  void addEdgeLocked(Transaction *Src, Transaction *Dst);
  void checkCycleLocked(Transaction *Src, Transaction *Dst);
  void collectLocked();

  const ir::Program &P;
  VelodromeOptions Opts;
  analysis::ViolationLog &Violations;
  StatisticRegistry &Stats;

  std::unique_ptr<PerThread[]> Threads;
  uint32_t NumThreads = 0;

  std::vector<SpinLock> FieldLocks;
  std::vector<FieldMeta> Fields;
  /// Keeps the penalty spin from being optimized away.
  std::atomic<uint64_t> PenaltySink{0};

  /// Guards the transaction graph, lifecycle, cycle checks, collection.
  /// Lock order: field lock, then GraphLock.
  SpinLock GraphLock;
  uint64_t NextTxId = 0;
  uint64_t NextEdgeId = 0;
  uint64_t CrossEdges = 0;
  uint64_t CycleChecks = 0;
  uint64_t Cycles = 0;
  uint64_t FinishedTxs = 0;
  uint64_t DfsEpoch = 0;
  uint64_t MarkEpoch = 0;
  uint64_t CollectorRuns = 0;
  uint64_t CollectorNs = 0;
  uint64_t TxsSwept = 0;
};

} // namespace velodrome
} // namespace dc

#endif // DC_VELODROME_VELODROME_H
