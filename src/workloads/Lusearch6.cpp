//===- workloads/Lusearch6.cpp - Text-search analog (2006) ----------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of DaCapo lusearch6: workers scan disjoint index segments
/// (thread-local in the Octet sense — segments stay RdEx/WrEx for their
/// owner, so barriers take the fast path), with a single shared hit
/// counter updated racily but *rarely*: Table 2 reports exactly one
/// violation and Table 3 only 17 IDG edges and zero SCCs.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildLusearch6(double Scale) {
  ProgramBuilder B("lusearch6", /*Seed=*/0x15e6);
  const uint32_t Workers = 3;
  PoolId Index = B.addPool("index", Workers + 1, 64);
  PoolId Hits = B.addPool("hits", 1, 1);

  // Thread-local scan of this worker's own segment (object = thread id):
  // the segment stays RdEx/WrEx for its owner, so barriers stay on the
  // fast path.
  MethodId SearchSegment = B.beginMethod("searchSegment", /*Atomic=*/true)
                               .beginLoop(idxConst(32))
                               .read(Index, idxThread(), idxRandom(64))
                               .read(Index, idxThread(), idxRandom(64))
                               .write(Index, idxThread(), idxRandom(64))
                               .endLoop()
                               .endMethod();

  // The one seeded bug: unsynchronized read-modify-write of the global
  // hit counter, called once per outer iteration (rare relative to scans).
  MethodId UpdateHits = B.beginMethod("updateHits", /*Atomic=*/true)
                            .read(Hits, idxConst(0), 0u)
                            .work(4)
                            .write(Hits, idxConst(0), 0u)
                            .endMethod();

  MethodId Worker = B.beginMethod("searchWorker", /*Atomic=*/false)
                        .beginLoop(idxConst(scaled(Scale, 300)))
                        .beginLoop(idxConst(16))
                        .call(SearchSegment)
                        .work(6)
                        .endLoop()
                        .call(UpdateHits)
                        .endLoop()
                        .endMethod();

  addDriver(B, std::vector<MethodId>(Workers, Worker));
  return B.build();
}
