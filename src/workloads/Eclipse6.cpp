//===- workloads/Eclipse6.cpp - IDE-jobs analog ---------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of DaCapo eclipse6, the workload with the most distinct
/// violations in Table 2: concurrent IDE jobs over a plugin registry and a
/// shared workspace. `resolvePlugin` locks correctly; `updateMarker` and
/// `logEvent` are racy read-modify-writes (seeded violations); and
/// `scanWorkspace` reads marker state racily against `updateMarker`'s
/// writes, giving cycles that involve three different methods. `indexLocal`
/// is a non-atomic helper contributing unary accesses.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildEclipse6(double Scale) {
  ProgramBuilder B("eclipse6", /*Seed=*/0xec1);
  const uint32_t Workers = 3;
  PoolId Registry = B.addPool("registry", 32, 4);
  PoolId Workspace = B.addPool("workspace", 64, 2);
  PoolId Log = B.addPool("log", 4, 1);
  PoolId Local = B.addPool("local", Workers + 1, 8);

  MethodId ResolvePlugin = B.beginMethod("resolvePlugin", /*Atomic=*/true)
                               .acquire(Registry, idxParam(1, 0, 32))
                               .read(Registry, idxParam(1, 0, 32), 0u)
                               .read(Registry, idxParam(1, 0, 32), 1u)
                               .release(Registry, idxParam(1, 0, 32))
                               .beginLoop(idxConst(24))
                               .read(Local, idxThread(), idxRandom(8))
                               .write(Local, idxThread(), idxRandom(8))
                               .endLoop()
                               .endMethod();

  // Racy read-modify-write of a marker (field 0) plus a racy dirty flag
  // (field 1) that scanWorkspace reads.
  MethodId UpdateMarker = B.beginMethod("updateMarker", /*Atomic=*/true)
                              .read(Workspace, idxParam(1, 0, 64), 0u)
                              .work(6)
                              .write(Workspace, idxParam(1, 0, 64), 0u)
                              .write(Workspace, idxParam(1, 0, 64), 1u)
                              .endMethod();

  MethodId ScanWorkspace = B.beginMethod("scanWorkspace", /*Atomic=*/true)
                               .beginLoop(idxConst(6))
                               .read(Workspace, idxParam(1, 0, 64), idxLoop())
                               .endLoop()
                               .read(Workspace, idxParam(1, 0, 64), 1u)
                               .work(4)
                               .read(Workspace, idxParam(1, 0, 64), 1u)
                               .endMethod();

  MethodId LogEvent = B.beginMethod("logEvent", /*Atomic=*/true)
                          .read(Log, idxParam(1, 0, 4), 0u)
                          .work(3)
                          .write(Log, idxParam(1, 0, 4), 0u)
                          .endMethod();

  // Non-atomic helper: thread-local buffer churn (unary accesses).
  MethodId IndexLocal = B.beginMethod("indexLocal", /*Atomic=*/false)
                            .beginLoop(idxConst(16))
                            .read(Local, idxThread(), idxLoop(0, 1, 0, 8))
                            .write(Local, idxThread(), idxLoop(0, 1, 0, 8))
                            .endLoop()
                            .endMethod();

  // The racy methods run once per ~16 resolve/index pairs, so violations
  // manifest occasionally rather than on every interleaving.
  MethodId Worker = B.beginMethod("jobWorker", /*Atomic=*/false)
                        .beginLoop(idxConst(scaled(Scale, 600)))
                        .beginLoop(idxConst(16))
                        .call(ResolvePlugin, idxRandom(32))
                        .call(IndexLocal)
                        .work(12)
                        .endLoop()
                        .call(UpdateMarker, idxRandom(64))
                        .call(ScanWorkspace, idxRandom(64))
                        .call(LogEvent, idxRandom(4))
                        .endLoop()
                        .endMethod();

  addDriver(B, std::vector<MethodId>(Workers, Worker));
  return B.build();
}
