//===- workloads/Hedc.cpp - Metadata-crawler analog -----------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of the hedc microbenchmark (a web metadata crawler): worker
/// tasks fetch into a shared result table. The table slot claim is racy
/// (check-then-write without holding the slot), and the progress counter
/// is a racy read-modify-write — the small number of violations Table 2
/// reports. Tiny and I/O-ish; excluded from Fig. 7.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildHedc(double Scale) {
  ProgramBuilder B("hedc", /*Seed=*/0x4edc);
  PoolId Results = B.addPool("results", 16, 2);
  PoolId Progress = B.addPool("progress", 1, 1);

  MethodId StoreResult = B.beginMethod("storeResult", /*Atomic=*/true)
                             .read(Results, idxParam(1, 0, 16), 0u)
                             .work(6)
                             .write(Results, idxParam(1, 0, 16), 0u)
                             .write(Results, idxParam(1, 0, 16), 1u)
                             .endMethod();

  MethodId BumpProgress = B.beginMethod("bumpProgress", /*Atomic=*/true)
                              .read(Progress, idxConst(0), 0u)
                              .work(3)
                              .write(Progress, idxConst(0), 0u)
                              .endMethod();

  MethodId FetchTask = B.beginMethod("fetchTask", /*Atomic=*/false)
                           .work(60) // "network" latency stand-in
                           .endMethod();

  MethodId Worker = B.beginMethod("crawlerWorker", /*Atomic=*/false)
                        .beginLoop(idxConst(scaled(Scale, 150)))
                        .beginLoop(idxConst(8))
                        .call(FetchTask)
                        .endLoop()
                        .call(StoreResult, idxRandom(16))
                        .call(BumpProgress)
                        .endLoop()
                        .endMethod();

  addDriver(B, {Worker, Worker, Worker});
  return B.build();
}
