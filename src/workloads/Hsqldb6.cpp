//===- workloads/Hsqldb6.cpp - Embedded-database analog -------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of DaCapo hsqldb6: writers update table rows under the database
/// lock and append to a journal they notify a logger thread about;
/// `readRow` reads rows *without* the lock (a classic inconsistent-locking
/// atomicity bug — a reader can observe half of an insert, forming a
/// read-write / write-read cycle with `insertRow`). The logger exercises
/// wait/notify dependence edges.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildHsqldb6(double Scale) {
  ProgramBuilder B("hsqldb6", /*Seed=*/0xdb6);
  PoolId Table = B.addPool("table", 8, 2);
  PoolId DbLock = B.addPool("dblock", 1, 1);
  PoolId Journal = B.addPool("journal", 1, 2);
  PoolId Session = B.addPool("session", 8, 8);

  MethodId InsertRow = B.beginMethod("insertRow", /*Atomic=*/true)
                           .acquire(DbLock, idxConst(0))
                           .write(Table, idxParam(1, 0, 8), 0u)
                           .work(4)
                           .write(Table, idxParam(1, 0, 8), 1u)
                           .release(DbLock, idxConst(0))
                           .acquire(Journal, idxConst(0))
                           .write(Journal, idxConst(0), 0u)
                           .notifyAll(Journal, idxConst(0))
                           .release(Journal, idxConst(0))
                           .endMethod();

  // Reads the row without the database lock: can observe a half-applied
  // insert (seeded violation).
  MethodId ReadRow = B.beginMethod("readRow", /*Atomic=*/true)
                         .read(Table, idxParam(1, 0, 8), 0u)
                         .work(30)
                         .read(Table, idxParam(1, 0, 8), 1u)
                         .endMethod();

  // Session-local query evaluation between database operations.
  MethodId EvalQuery = B.beginMethod("evalQuery", /*Atomic=*/true)
                           .beginLoop(idxConst(24))
                           .read(Session, idxThread(), idxRandom(8))
                           .write(Session, idxThread(), idxRandom(8))
                           .work(2)
                           .endLoop()
                           .endMethod();

  MethodId Checkpoint = B.beginMethod("checkpoint", /*Atomic=*/true)
                            .acquire(DbLock, idxConst(0))
                            .beginLoop(idxConst(8))
                            .read(Table, idxLoop(0, 1, 0, 8), 0u)
                            .endLoop()
                            .release(DbLock, idxConst(0))
                            .endMethod();

  // Logger: waits once for journal activity, then drains it under its
  // monitor. Contains wait, so the initial specification excludes it.
  MethodId FlushJournal = B.beginMethod("flushJournal", /*Atomic=*/false)
                              .acquire(Journal, idxConst(0))
                              .wait(Journal, idxConst(0))
                              .release(Journal, idxConst(0))
                              .beginLoop(idxConst(scaled(Scale, 400)))
                              .acquire(Journal, idxConst(0))
                              .read(Journal, idxConst(0), 0u)
                              .write(Journal, idxConst(0), 1u)
                              .release(Journal, idxConst(0))
                              .work(16)
                              .endLoop()
                              .endMethod();

  MethodId Writer = B.beginMethod("writerSession", /*Atomic=*/false)
                        .beginLoop(idxConst(scaled(Scale, 350)))
                        .beginLoop(idxConst(16))
                        .call(EvalQuery)
                        .work(10)
                        .endLoop()
                        .call(InsertRow, idxRandom(8))
                        .call(ReadRow, idxRandom(8))
                        .endLoop()
                        .call(Checkpoint)
                        .endMethod();

  // Custom driver: after the writers finish, wake the logger once more so
  // it cannot be left waiting if every notify preceded its wait.
  MethodId MainId = B.beginMethod("main", /*Atomic=*/false)
                        .forkThread(idxConst(1))
                        .forkThread(idxConst(2))
                        .forkThread(idxConst(3))
                        .joinThread(idxConst(1))
                        .joinThread(idxConst(2))
                        .acquire(Journal, idxConst(0))
                        .notifyAll(Journal, idxConst(0))
                        .release(Journal, idxConst(0))
                        .joinThread(idxConst(3))
                        .endMethod();
  B.addThread(MainId);
  B.addThread(Writer);
  B.addThread(Writer);
  B.addThread(FlushJournal);
  return B.build();
}
