//===- workloads/Montecarlo.cpp - Monte-Carlo-pricing analog --------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of Java Grande montecarlo: every worker prices tasks against a
/// read-shared rate table — heavy RdSh traffic exercising Octet's upgrade
/// and fence transitions and the gLastRdSh edge chain — and folds results
/// into a racy global accumulator (the seeded violations; Table 2 reports
/// 2). The RdSh edges plus accumulator conflicts give montecarlo its
/// comparatively high SCC count (Table 3: 2,860).
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildMontecarlo(double Scale) {
  ProgramBuilder B("montecarlo", /*Seed=*/0x3047e);
  const uint32_t Workers = 3;
  PoolId Rates = B.addPool("rates", 24, 4);
  PoolId Accum = B.addPool("accumulator", 1, 2);
  PoolId Scratch = B.addPool("scratch", Workers + 1, 8);

  MethodId PriceTask = B.beginMethod("priceTask", /*Atomic=*/true)
                           .beginLoop(idxConst(12))
                           .read(Rates, idxRandom(24), idxRandom(4))
                           .read(Scratch, idxThread(), idxRandom(8))
                           .write(Scratch, idxThread(), idxRandom(8))
                           .work(2)
                           .endLoop()
                           .endMethod();

  // Racy global accumulation (seeded violation).
  MethodId Accumulate = B.beginMethod("accumulate", /*Atomic=*/true)
                            .read(Accum, idxConst(0), 0u)
                            .work(3)
                            .write(Accum, idxConst(0), 0u)
                            .write(Accum, idxConst(0), 1u)
                            .endMethod();

  MethodId Worker = B.beginMethod("pricingWorker", /*Atomic=*/false)
                        .beginLoop(idxConst(scaled(Scale, 500)))
                        .beginLoop(idxConst(12))
                        .call(PriceTask)
                        .work(4)
                        .endLoop()
                        .call(Accumulate)
                        .endLoop()
                        .endMethod();

  // Main initializes the rate table; workers then only read it, so it
  // upgrades through RdEx into RdSh and stays there.
  MethodId MainId = B.beginMethod("main", /*Atomic=*/false)
                        .beginLoop(idxConst(24))
                        .write(Rates, idxLoop(), idxConst(0))
                        .write(Rates, idxLoop(), idxConst(1))
                        .endLoop()
                        .forkThread(idxConst(1))
                        .forkThread(idxConst(2))
                        .forkThread(idxConst(3))
                        .joinThread(idxConst(1))
                        .joinThread(idxConst(2))
                        .joinThread(idxConst(3))
                        .endMethod();
  B.addThread(MainId);
  for (uint32_t W = 0; W < Workers; ++W)
    B.addThread(Worker);
  return B.build();
}
