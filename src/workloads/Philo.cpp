//===- workloads/Philo.cpp - Dining-philosophers analog -------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of the philo microbenchmark: dining philosophers with correctly
/// ordered fork acquisition (lower index first, so no deadlock) and state
/// updates only while both forks are held — a fully serializable program
/// with lots of lock traffic. Table 2 reports zero violations; any report
/// here is a checker false positive. Excluded from Fig. 7 (not compute
/// bound).
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildPhilo(double Scale) {
  ProgramBuilder B("philo", /*Seed=*/0x9410);
  const uint32_t Philosophers = 3;
  // Fork i sits between philosopher i-1 and i; philosopher tid (1-based)
  // uses forks (tid-1) and (tid % Philosophers). With 3 philosophers and
  // lower-first ordering this is deadlock free only if every philosopher
  // picks min/max consistently — we give each a fixed pair computed from
  // its thread id with the dedicated eat method per ordering.
  PoolId Forks = B.addPool("forks", Philosophers, 1);
  PoolId Plates = B.addPool("plates", Philosophers + 1, 1);

  // eat(param = lower fork): philosophers pass (lowFork, highFork) via two
  // nested atomic helpers, always acquiring the lower index first.
  MethodId EatInner = B.beginMethod("eatHolding", /*Atomic=*/true)
                          .beginLoop(idxConst(12))
                          .read(Plates, idxThread(), 0u)
                          .work(8)
                          .write(Plates, idxThread(), 0u)
                          .endLoop()
                          .endMethod();

  // eatWithForks(p): acquire fork p, then fork p+1. The last philosopher
  // instead uses eatReversed, breaking the circular-wait deadlock.
  MethodId EatLow = B.declareMethod("eatWithForks", /*Atomic=*/true);
  B.beginDeclaredMethod(EatLow)
      .acquire(Forks, idxParam(1, 0, Philosophers))
      .acquire(Forks, idxParam(1, 1, Philosophers))
      .call(EatInner)
      .release(Forks, idxParam(1, 1, Philosophers))
      .release(Forks, idxParam(1, 0, Philosophers))
      .endMethod();

  MethodId EatReversed = B.beginMethod("eatReversed", /*Atomic=*/true)
                             .acquire(Forks, idxParam(1, 1, Philosophers))
                             .acquire(Forks, idxParam(1, 0, Philosophers))
                             .call(EatInner)
                             .release(Forks, idxParam(1, 0, Philosophers))
                             .release(Forks, idxParam(1, 1, Philosophers))
                             .endMethod();

  MethodId Think = B.beginMethod("think", /*Atomic=*/false)
                       .beginLoop(idxConst(10))
                       .work(20)
                       .read(Plates, idxThread(), 0u)
                       .endLoop()
                       .endMethod();

  MethodId Worker = B.beginMethod("philosopher", /*Atomic=*/false)
                        .beginLoop(idxConst(scaled(Scale, 600)))
                        .call(Think)
                        .call(EatLow, idxThread(1, -1, Philosophers))
                        .endLoop()
                        .endMethod();

  MethodId LastWorker = B.beginMethod("lastPhilosopher", /*Atomic=*/false)
                            .beginLoop(idxConst(scaled(Scale, 600)))
                            .call(Think)
                            .call(EatReversed,
                                  idxThread(1, -1, Philosophers))
                            .endLoop()
                            .endMethod();

  addDriver(B, {Worker, Worker, LastWorker});
  return B.build();
}
