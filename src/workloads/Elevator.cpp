//===- workloads/Elevator.cpp - Discrete-event elevator analog ------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of the elevator microbenchmark (von Praun & Gross): lift threads
/// service a shared floor-request board. Requests are posted under the
/// board's monitor, but lifts update the racy door/position state without
/// it — the two seeded violations of Table 2. Not compute bound; excluded
/// from Fig. 7 like in the paper.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildElevator(double Scale) {
  ProgramBuilder B("elevator", /*Seed=*/0xe1e);
  PoolId Floors = B.addPool("floors", 8, 2);
  PoolId Lift = B.addPool("liftState", 2, 2);

  MethodId PostRequest = B.beginMethod("postRequest", /*Atomic=*/true)
                             .acquire(Floors, idxParam(1, 0, 8))
                             .write(Floors, idxParam(1, 0, 8), 0u)
                             .release(Floors, idxParam(1, 0, 8))
                             .endMethod();

  MethodId TakeRequest = B.beginMethod("takeRequest", /*Atomic=*/true)
                             .acquire(Floors, idxParam(1, 0, 8))
                             .read(Floors, idxParam(1, 0, 8), 0u)
                             .write(Floors, idxParam(1, 0, 8), 1u)
                             .release(Floors, idxParam(1, 0, 8))
                             .endMethod();

  // Racy read-modify-write of the lift's door state (seeded violation).
  MethodId MoveLift = B.beginMethod("moveLift", /*Atomic=*/true)
                          .read(Lift, idxParam(1, 0, 2), 0u)
                          .work(4)
                          .write(Lift, idxParam(1, 0, 2), 0u)
                          .endMethod();

  // Racy door toggle racing moveLift on the same state (second violation).
  MethodId ToggleDoors = B.beginMethod("toggleDoors", /*Atomic=*/true)
                             .read(Lift, idxParam(1, 0, 2), 1u)
                             .read(Lift, idxParam(1, 0, 2), 0u)
                             .work(3)
                             .write(Lift, idxParam(1, 0, 2), 1u)
                             .endMethod();

  MethodId LiftWorker = B.beginMethod("liftWorker", /*Atomic=*/false)
                            .beginLoop(idxConst(scaled(Scale, 200)))
                            .beginLoop(idxConst(8))
                            .call(TakeRequest, idxRandom(8))
                            .work(30)
                            .endLoop()
                            .call(MoveLift, idxRandom(2))
                            .call(ToggleDoors, idxRandom(2))
                            .endLoop()
                            .endMethod();

  MethodId PersonWorker = B.beginMethod("personWorker", /*Atomic=*/false)
                              .beginLoop(idxConst(scaled(Scale, 1500)))
                              .call(PostRequest, idxRandom(8))
                              .work(40)
                              .endLoop()
                              .endMethod();

  addDriver(B, {LiftWorker, LiftWorker, PersonWorker});
  return B.build();
}
