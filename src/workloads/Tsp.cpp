//===- workloads/Tsp.cpp - Branch-and-bound TSP analog --------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of the tsp microbenchmark: branch-and-bound search whose inner
/// loop reads the shared best-tour bound on every step *outside* any
/// atomic region — Table 3's 694M non-transactional accesses dwarfing its
/// 12k transactions. The bound object settles into RdSh so the unary reads
/// stay on Octet's fast path; racy best-tour updates (`updateBest`,
/// `recordTour`) provide the violations.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildTsp(double Scale) {
  ProgramBuilder B("tsp", /*Seed=*/0x7259);
  const uint32_t Workers = 3;
  PoolId Distances = B.addArrayPool("distances", 1, 256);
  PoolId Best = B.addPool("best", 1, 2);
  PoolId Tours = B.addPool("tours", Workers + 1, 16);

  // Racy best-bound update: read-check-write without synchronization.
  MethodId UpdateBest = B.beginMethod("updateBest", /*Atomic=*/true)
                            .read(Best, idxConst(0), 0u)
                            .work(4)
                            .write(Best, idxConst(0), 0u)
                            .endMethod();

  // Racy tour recording racing updateBest via the second field.
  MethodId RecordTour = B.beginMethod("recordTour", /*Atomic=*/true)
                            .read(Best, idxConst(0), 1u)
                            .read(Best, idxConst(0), 0u)
                            .work(3)
                            .write(Best, idxConst(0), 1u)
                            .endMethod();

  // The dominant cost: the non-transactional search loop, polling the
  // bound (unary field read) while walking the distance matrix (array
  // reads, uninstrumented by default) and private tour state.
  MethodId SearchSubtree =
      B.beginMethod("searchSubtree", /*Atomic=*/false)
          .beginLoop(idxConst(200))
          .readElem(Distances, idxConst(0), idxRandom(256))
          .read(Best, idxConst(0), 0u)
          .read(Tours, idxThread(), idxRandom(16))
          .write(Tours, idxThread(), idxRandom(16))
          .work(2)
          .endLoop()
          .endMethod();

  // Bound improvements are rare relative to search (roughly one best-tour
  // update per 8 subtree expansions).
  MethodId Worker = B.beginMethod("searchWorker", /*Atomic=*/false)
                        .beginLoop(idxConst(scaled(Scale, 70)))
                        .beginLoop(idxConst(8))
                        .call(SearchSubtree)
                        .endLoop()
                        .call(UpdateBest)
                        .call(RecordTour)
                        .endLoop()
                        .endMethod();

  addDriver(B, std::vector<MethodId>(Workers, Worker));
  return B.build();
}
