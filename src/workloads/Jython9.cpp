//===- workloads/Jython9.cpp - Interpreter analog (no sharing) ------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of DaCapo jython9: effectively single-threaded — Table 3 shows
/// just 8 regular transactions holding 53M instrumented accesses, no IDG
/// edges and no SCCs. One worker interprets a script in a handful of huge
/// atomic regions over thread-local frames; checkers see pure fast-path
/// barrier traffic, making this a barrier-overhead microcosm in Fig. 7.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildJython9(double Scale) {
  ProgramBuilder B("jython9", /*Seed=*/0x97409);
  PoolId Frames = B.addPool("frames", 8, 32);

  MethodId Interpret = B.beginMethod("interpret", /*Atomic=*/true)
                           .beginLoop(idxConst(scaled(Scale, 120000)))
                           .read(Frames, idxRandom(8), idxRandom(32))
                           .write(Frames, idxRandom(8), idxRandom(32))
                           .work(2)
                           .endLoop()
                           .endMethod();

  MethodId Worker = B.beginMethod("scriptWorker", /*Atomic=*/false)
                        .beginLoop(idxConst(4))
                        .call(Interpret)
                        .endLoop()
                        .endMethod();

  addDriver(B, {Worker});
  return B.build();
}
