//===- workloads/Xalan6.cpp - XSLT analog (pathological SCCs) -------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of DaCapo xalan6, the adversarial case for DoubleChecker (§5.3):
/// all workers hammer a tiny shared DTM cache, so Octet conflicting
/// transitions fire constantly and ICD's object-granular edges weave the
/// short transactions into many (mostly imprecise) SCCs — Table 3 reports
/// 15,500 SCCs, and PCD's serial processing dominates, the one workload
/// where Velodrome beats single-run mode. `transformA`/`transformB` touch
/// *different fields* of the same objects, so most ICD cycles carry no
/// precise dependence; the same-field races inside each method provide the
/// real violations.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildXalan6(double Scale) {
  ProgramBuilder B("xalan6", /*Seed=*/0xa16);
  const uint32_t Workers = 3;
  PoolId Cache = B.addPool("dtmCache", 2, 2);
  PoolId Doc = B.addPool("doc", Workers + 1, 8);

  // Each transform does a little private parsing, then hits the tiny
  // shared cache — every ownership migration produces IDG edges, and the
  // two methods touching different fields of the same objects make most of
  // the resulting SCCs precise-cycle-free (pure ICD imprecision).
  MethodId TransformA = B.beginMethod("transformA", /*Atomic=*/true)
                            .beginLoop(idxConst(6))
                            .read(Doc, idxThread(), idxRandom(8))
                            .write(Doc, idxThread(), idxRandom(8))
                            .endLoop()
                            .read(Cache, idxParam(1, 0, 2), 0u)
                            .work(2)
                            .write(Cache, idxParam(1, 0, 2), 0u)
                            .endMethod();

  MethodId TransformB = B.beginMethod("transformB", /*Atomic=*/true)
                            .beginLoop(idxConst(6))
                            .read(Doc, idxThread(), idxRandom(8))
                            .write(Doc, idxThread(), idxRandom(8))
                            .endLoop()
                            .read(Cache, idxParam(1, 0, 2), 1u)
                            .work(2)
                            .write(Cache, idxParam(1, 0, 2), 1u)
                            .endMethod();

  // Purely session-local parsing between cache touches; spacing the cache
  // hits keeps the chained SCC "mega-component" (which still forms — see
  // the file comment) within the memory the paper's 32-bit PCD could not
  // afford.
  MethodId ParseLocal = B.beginMethod("parseLocal", /*Atomic=*/true)
                            .beginLoop(idxConst(10))
                            .read(Doc, idxThread(), idxRandom(8))
                            .write(Doc, idxThread(), idxRandom(8))
                            .work(2)
                            .endLoop()
                            .endMethod();

  MethodId Worker = B.beginMethod("transformWorker", /*Atomic=*/false)
                        .beginLoop(idxConst(scaled(Scale, 1200)))
                        .call(ParseLocal)
                        .call(TransformA, idxRandom(2))
                        .call(ParseLocal)
                        .call(TransformB, idxRandom(2))
                        .work(3)
                        .endLoop()
                        .endMethod();

  addDriver(B, std::vector<MethodId>(Workers, Worker));
  return B.build();
}
