//===- workloads/Pmd9.cpp - Source-analyzer analog ------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of DaCapo pmd9: workers analyze disjoint files with no shared
/// mutation at all (Table 2: 0 violations; Table 3: 7 transactions, no
/// edges). The shared rule table is initialized by main before the workers
/// fork, so every worker read is ordered by the fork edge and Octet sees
/// only upgrade-to-RdSh transitions, never conflicts.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildPmd9(double Scale) {
  ProgramBuilder B("pmd9", /*Seed=*/0x3bd9);
  const uint32_t Workers = 3;
  PoolId Rules = B.addPool("rules", 16, 4);
  PoolId Files = B.addPool("files", Workers + 1, 32);

  MethodId AnalyzeFile = B.beginMethod("analyzeFile", /*Atomic=*/true)
                             .beginLoop(idxConst(20))
                             .read(Rules, idxRandom(16), idxRandom(4))
                             .read(Files, idxThread(), idxRandom(32))
                             .write(Files, idxThread(), idxRandom(32))
                             .work(3)
                             .endLoop()
                             .endMethod();

  MethodId Worker = B.beginMethod("analysisWorker", /*Atomic=*/false)
                        .beginLoop(idxConst(scaled(Scale, 4000)))
                        .call(AnalyzeFile)
                        .work(10)
                        .endLoop()
                        .endMethod();

  // Main populates the rule table before forking, so workers only read it.
  MethodId MainId = B.beginMethod("main", /*Atomic=*/false)
                        .beginLoop(idxConst(16))
                        .write(Rules, idxLoop(), idxConst(0))
                        .write(Rules, idxLoop(), idxConst(1))
                        .endLoop()
                        .forkThread(idxConst(1))
                        .forkThread(idxConst(2))
                        .forkThread(idxConst(3))
                        .joinThread(idxConst(1))
                        .joinThread(idxConst(2))
                        .joinThread(idxConst(3))
                        .endMethod();
  B.addThread(MainId);
  for (uint32_t W = 0; W < Workers; ++W)
    B.addThread(Worker);
  return B.build();
}
