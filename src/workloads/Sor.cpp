//===- workloads/Sor.cpp - Successive over-relaxation analog --------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of the sor microbenchmark: a phase-barriered red/black stencil.
/// Each phase runs on fresh worker threads whose fork/join edges provide
/// the barrier happens-before (the paper's version uses a barrier; our
/// runtime's threads run once, so phases fork new workers — the same
/// ordering structure). Neighbour-row reads therefore cross phases without
/// ever forming cycles: Table 2 reports zero violations and Table 3 zero
/// SCCs, with almost all work in non-transactional array accesses (which
/// the default configuration leaves uninstrumented, keeping sor's
/// overheads small).
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildSor(double Scale) {
  ProgramBuilder B("sor", /*Seed=*/0x504);
  const uint32_t WorkersPerPhase = 3;
  const uint32_t Phases = 3;
  PoolId Matrix = B.addArrayPool("matrix", 12, 64);
  PoolId RowHeaders = B.addPool("rowHeaders", 12, 1);
  PoolId Residual = B.addPool("residual", 16, 1);

  // One relaxation sweep over "this worker's" rows (selected by thread id
  // modulo the row count) reading neighbour rows.
  MethodId RelaxRows =
      B.beginMethod("relaxRows", /*Atomic=*/false)
          .beginLoop(idxConst(scaled(Scale, 300)))
          .readElem(Matrix, idxThread(1, 0, 12), idxLoop(0, 1, 0, 64))
          .readElem(Matrix, idxThread(1, 1, 12), idxLoop(0, 1, 0, 64))
          .readElem(Matrix, idxThread(1, 11, 12), idxLoop(0, 1, 0, 64))
          .work(2)
          .writeElem(Matrix, idxThread(1, 0, 12), idxLoop(0, 1, 0, 64))
          .read(RowHeaders, idxThread(1, 0, 12), 0u)
          .write(RowHeaders, idxThread(1, 0, 12), 0u)
          .endLoop()
          .endMethod();

  // The workload's only transactions: one residual update per worker into
  // its own slot (cross-phase reuse of a slot is ordered by fork/join).
  MethodId RecordResidual = B.beginMethod("recordResidual", /*Atomic=*/true)
                                .read(Residual, idxThread(), 0u)
                                .write(Residual, idxThread(), 0u)
                                .endMethod();

  MethodId Worker = B.beginMethod("sweepWorker", /*Atomic=*/false)
                        .call(RelaxRows)
                        .call(RecordResidual)
                        .endMethod();

  // Driver: phases of fresh workers; join provides the barrier.
  auto &Main = B.beginMethod("main", /*Atomic=*/false);
  for (uint32_t Phase = 0; Phase < Phases; ++Phase) {
    for (uint32_t W = 0; W < WorkersPerPhase; ++W)
      Main.forkThread(idxConst(1 + Phase * WorkersPerPhase + W));
    for (uint32_t W = 0; W < WorkersPerPhase; ++W)
      Main.joinThread(idxConst(1 + Phase * WorkersPerPhase + W));
  }
  MethodId MainId = Main.endMethod();
  B.addThread(MainId);
  for (uint32_t T = 0; T < Phases * WorkersPerPhase; ++T)
    B.addThread(Worker);
  return B.build();
}
