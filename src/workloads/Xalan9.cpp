//===- workloads/Xalan9.cpp - XSLT analog (9.12) --------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of DaCapo xalan9: the 9.12 transformer shares more state than
/// lusearch-style workloads but far less pathologically than xalan6 — a
/// larger cache pool dilutes conflicts, so Table 3 reports 444 SCCs
/// (vs. 15,500 for xalan6) and DoubleChecker wins again in Fig. 7.
/// Violations come from racy cache refreshes plus an unlocked reader of
/// the locked output buffer.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildXalan9(double Scale) {
  ProgramBuilder B("xalan9", /*Seed=*/0xa19);
  const uint32_t Workers = 3;
  PoolId Cache = B.addPool("dtmCache", 16, 2);
  PoolId Output = B.addPool("output", 4, 2);
  PoolId Local = B.addPool("sessionLocal", Workers + 1, 8);

  MethodId RefreshCache = B.beginMethod("refreshCache", /*Atomic=*/true)
                              .read(Cache, idxParam(1, 0, 16), 0u)
                              .work(3)
                              .write(Cache, idxParam(1, 0, 16), 0u)
                              .endMethod();

  MethodId LookupCache = B.beginMethod("lookupCache", /*Atomic=*/true)
                             .read(Cache, idxParam(1, 0, 16), 0u)
                             .read(Cache, idxParam(1, 0, 16), 1u)
                             .endMethod();

  MethodId EmitOutput = B.beginMethod("emitOutput", /*Atomic=*/true)
                            .acquire(Output, idxParam(1, 0, 4))
                            .write(Output, idxParam(1, 0, 4), 0u)
                            .write(Output, idxParam(1, 0, 4), 1u)
                            .release(Output, idxParam(1, 0, 4))
                            .endMethod();

  // Reads the output buffer without its lock (seeded violation).
  MethodId PeekOutput = B.beginMethod("peekOutput", /*Atomic=*/true)
                            .read(Output, idxParam(1, 0, 4), 0u)
                            .work(4)
                            .read(Output, idxParam(1, 0, 4), 1u)
                            .endMethod();

  // Session-local transformation between shared-state touches.
  MethodId TransformLocal = B.beginMethod("transformLocal", /*Atomic=*/true)
                                .beginLoop(idxConst(20))
                                .read(Local, idxThread(), idxRandom(8))
                                .write(Local, idxThread(), idxRandom(8))
                                .work(2)
                                .endLoop()
                                .endMethod();

  MethodId Worker = B.beginMethod("transformWorker", /*Atomic=*/false)
                        .beginLoop(idxConst(scaled(Scale, 400)))
                        .beginLoop(idxConst(8))
                        .call(TransformLocal)
                        .call(LookupCache, idxRandom(16))
                        .work(8)
                        .endLoop()
                        .call(RefreshCache, idxRandom(16))
                        .call(EmitOutput, idxRandom(4))
                        .call(PeekOutput, idxRandom(4))
                        .endLoop()
                        .endMethod();

  addDriver(B, std::vector<MethodId>(Workers, Worker));
  return B.build();
}
