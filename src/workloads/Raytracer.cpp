//===- workloads/Raytracer.cpp - Ray-tracer analog ------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of Java Grande raytracer: the biggest access count in Table 3
/// (890M), almost all of it reads of the read-shared scene inside per-row
/// render transactions, with a checksum folded in under a lock —
/// correctly, so Table 2 reports zero violations. (The paper had to shrink
/// raytracer's input and exclude one long-running transaction to keep
/// single-run mode within 32-bit memory; our rows are short instead.)
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildRaytracer(double Scale) {
  ProgramBuilder B("raytracer", /*Seed=*/0x4a7);
  const uint32_t Workers = 3;
  PoolId Scene = B.addPool("scene", 64, 8);
  PoolId Rows = B.addPool("rows", Workers + 1, 32);
  PoolId Checksum = B.addPool("checksum", 1, 1);

  MethodId RenderRow = B.beginMethod("renderRow", /*Atomic=*/true)
                           .beginLoop(idxConst(20))
                           .read(Scene, idxRandom(64), idxRandom(8))
                           .read(Scene, idxRandom(64), idxRandom(8))
                           .work(3)
                           .write(Rows, idxThread(), idxRandom(32))
                           .endLoop()
                           .endMethod();

  // Correctly locked checksum fold: no violation.
  MethodId AddChecksum = B.beginMethod("addChecksum", /*Atomic=*/true)
                             .acquire(Checksum, idxConst(0))
                             .read(Checksum, idxConst(0), 0u)
                             .write(Checksum, idxConst(0), 0u)
                             .release(Checksum, idxConst(0))
                             .endMethod();

  MethodId Worker = B.beginMethod("renderWorker", /*Atomic=*/false)
                        .beginLoop(idxConst(scaled(Scale, 250)))
                        .beginLoop(idxConst(14))
                        .call(RenderRow)
                        .endLoop()
                        .call(AddChecksum)
                        .endLoop()
                        .endMethod();

  // Main builds the scene before forking.
  MethodId MainId = B.beginMethod("main", /*Atomic=*/false)
                        .beginLoop(idxConst(64))
                        .write(Scene, idxLoop(), idxConst(0))
                        .endLoop()
                        .forkThread(idxConst(1))
                        .forkThread(idxConst(2))
                        .forkThread(idxConst(3))
                        .joinThread(idxConst(1))
                        .joinThread(idxConst(2))
                        .joinThread(idxConst(3))
                        .endMethod();
  B.addThread(MainId);
  for (uint32_t W = 0; W < Workers; ++W)
    B.addThread(Worker);
  return B.build();
}
