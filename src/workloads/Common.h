//===- workloads/Common.h - Shared workload-building helpers ---*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the synthetic workloads. Every workload follows the
/// DaCapo shape the paper assumes: a driver thread (main) forks worker
/// threads, waits for them, and is excluded from the atomicity
/// specification (it executes fork/join, which AtomicitySpec::initial
/// excludes).
///
//===----------------------------------------------------------------------===//

#ifndef DC_WORKLOADS_COMMON_H
#define DC_WORKLOADS_COMMON_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ir/Builder.h"

namespace dc {
namespace workloads {

/// Scales an iteration count, keeping it at least 1.
inline int64_t scaled(double Scale, uint64_t Base) {
  int64_t V = static_cast<int64_t>(Base * Scale);
  return std::max<int64_t>(V, 1);
}

/// Builds the driver: thread 0 runs "main", which forks each entry in
/// \p WorkerEntries as program threads 1..N and joins them in order.
/// Must be called after all worker methods exist; call B.build() after.
inline ir::MethodId addDriver(ir::ProgramBuilder &B,
                              const std::vector<ir::MethodId> &WorkerEntries) {
  using namespace ir;
  auto &Main = B.beginMethod("main", /*Atomic=*/false);
  for (size_t W = 0; W < WorkerEntries.size(); ++W)
    Main.forkThread(idxConst(static_cast<int64_t>(W + 1)));
  for (size_t W = 0; W < WorkerEntries.size(); ++W)
    Main.joinThread(idxConst(static_cast<int64_t>(W + 1)));
  MethodId MainId = Main.endMethod();
  B.addThread(MainId);
  for (MethodId Worker : WorkerEntries)
    B.addThread(Worker);
  return MainId;
}

} // namespace workloads
} // namespace dc

#endif // DC_WORKLOADS_COMMON_H
