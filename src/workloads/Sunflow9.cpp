//===- workloads/Sunflow9.cpp - Renderer analog ---------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of DaCapo sunflow9: a read-shared scene consulted by every
/// worker (RdSh-state traffic on the Octet fast path), per-tile rendering
/// into private framebuffers, and a racy global statistics object whose
/// read-modify-write is the seeded violation (Table 2: 13). The paper had
/// to exclude two long-running atomic methods from sunflow9's spec to keep
/// PCD within memory; our tiles are short so no adjustment is needed.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildSunflow9(double Scale) {
  ProgramBuilder B("sunflow9", /*Seed=*/0x50f9);
  const uint32_t Workers = 3;
  PoolId Scene = B.addPool("scene", 32, 8);
  PoolId Framebuffer = B.addPool("framebuffer", Workers + 1, 64);
  PoolId RenderStats = B.addPool("renderStats", 1, 2);

  MethodId RenderTile = B.beginMethod("renderTile", /*Atomic=*/true)
                            .beginLoop(idxConst(16))
                            .read(Scene, idxRandom(32), idxRandom(8))
                            .read(Scene, idxRandom(32), idxRandom(8))
                            .work(4)
                            .write(Framebuffer, idxThread(), idxRandom(64))
                            .endLoop()
                            .endMethod();

  MethodId UpdateStats = B.beginMethod("updateStats", /*Atomic=*/true)
                             .read(RenderStats, idxConst(0), 0u)
                             .work(3)
                             .write(RenderStats, idxConst(0), 0u)
                             .write(RenderStats, idxConst(0), 1u)
                             .endMethod();

  MethodId Worker = B.beginMethod("renderWorker", /*Atomic=*/false)
                        .beginLoop(idxConst(scaled(Scale, 2500)))
                        .beginLoop(idxConst(8))
                        .call(RenderTile)
                        .endLoop()
                        .call(UpdateStats)
                        .endLoop()
                        .endMethod();

  // Main builds the scene before forking (workers then share it read-only).
  MethodId MainId = B.beginMethod("main", /*Atomic=*/false)
                        .beginLoop(idxConst(32))
                        .write(Scene, idxLoop(), idxConst(0))
                        .endLoop()
                        .forkThread(idxConst(1))
                        .forkThread(idxConst(2))
                        .forkThread(idxConst(3))
                        .joinThread(idxConst(1))
                        .joinThread(idxConst(2))
                        .joinThread(idxConst(3))
                        .endMethod();
  B.addThread(MainId);
  for (uint32_t W = 0; W < Workers; ++W)
    B.addThread(Worker);
  return B.build();
}
