//===- workloads/Avrora9.cpp - AVR-simulator analog -----------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of DaCapo avrora9: per-node microcontroller simulation whose
/// stepping loop runs *outside* any atomic region, so non-transactional
/// (unary) accesses dominate by more than 1:1 over transactional ones
/// (Table 3: 362M unary vs 264M regular accesses). Nodes occasionally post
/// events to each other's racy mailboxes inside atomic methods — the
/// seeded violations — so the first run's unary boolean is set and the
/// second run must keep instrumenting non-transactional accesses (little
/// benefit from multi-run's selective instrumentation, as the paper
/// observes for avrora9).
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildAvrora9(double Scale) {
  ProgramBuilder B("avrora9", /*Seed=*/0xa40a);
  const uint32_t Workers = 3;
  PoolId Nodes = B.addPool("nodes", Workers + 1, 16);
  PoolId Mailbox = B.addPool("mailbox", Workers + 1, 2);

  // Racy cross-node event post (seeded violation): read-modify-write of
  // another node's mailbox head.
  MethodId PostEvent = B.beginMethod("postEvent", /*Atomic=*/true)
                           .read(Mailbox, idxParam(1, 0, Workers + 1), 0u)
                           .work(3)
                           .write(Mailbox, idxParam(1, 0, Workers + 1), 0u)
                           .endMethod();

  MethodId DrainMailbox = B.beginMethod("drainMailbox", /*Atomic=*/true)
                              .read(Mailbox, idxThread(), 0u)
                              .write(Mailbox, idxThread(), 1u)
                              .endMethod();

  // The dominant cost: non-transactional device stepping over the node's
  // own registers (unary accesses on the Octet fast path).
  MethodId Step = B.beginMethod("stepDevice", /*Atomic=*/false)
                      .beginLoop(idxConst(24))
                      .read(Nodes, idxThread(), idxLoop(0, 1, 0, 16))
                      .write(Nodes, idxThread(), idxLoop(0, 1, 1, 16))
                      .endLoop()
                      .endMethod();

  MethodId Worker = B.beginMethod("nodeWorker", /*Atomic=*/false)
                        .beginLoop(idxConst(scaled(Scale, 700)))
                        .beginLoop(idxConst(12))
                        .call(Step)
                        .work(4)
                        .endLoop()
                        .call(DrainMailbox)
                        .call(PostEvent, idxRandom(Workers, 1))
                        .endLoop()
                        .endMethod();

  addDriver(B, std::vector<MethodId>(Workers, Worker));
  return B.build();
}
