//===- workloads/Workloads.h - Synthetic benchmark registry ----*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 19 synthetic workloads standing in for the paper's benchmarks
/// (DaCapo 2006/9.12, the microbenchmarks, and Java Grande). Each
/// reproduces the *sharing pattern* that made the original interesting for
/// atomicity checking — transactional vs. unary access mix, read-shared
/// vs. conflicting objects, SCC density, seeded atomicity bugs — rather
/// than the original computation. See each builder's file comment and
/// DESIGN.md §2 for the substitution rationale.
///
/// `Scale` multiplies iteration counts: 1.0 is the size used by the
/// benchmark harnesses (the paper's "small" configurations, scaled to this
/// substrate); tests use much smaller values.
///
//===----------------------------------------------------------------------===//

#ifndef DC_WORKLOADS_WORKLOADS_H
#define DC_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

#include "ir/Ir.h"

namespace dc {
namespace workloads {

struct WorkloadInfo {
  std::string Name;
  /// Included in the Figure 7 performance experiment (the paper excludes
  /// elevator, hedc, and philo as not compute bound).
  bool ComputeBound = true;
  /// One-line description of the sharing pattern it models.
  std::string Description;
  ir::Program (*Build)(double Scale) = nullptr;
};

/// All workloads, in the paper's Table 2/3 order.
const std::vector<WorkloadInfo> &all();

/// Finds a workload by name; returns nullptr if absent.
const WorkloadInfo *find(const std::string &Name);

/// Convenience: builds \p Name at \p Scale; asserts the name exists.
ir::Program build(const std::string &Name, double Scale);

// Individual builders (one translation unit each).
ir::Program buildEclipse6(double Scale);
ir::Program buildHsqldb6(double Scale);
ir::Program buildLusearch6(double Scale);
ir::Program buildXalan6(double Scale);
ir::Program buildAvrora9(double Scale);
ir::Program buildJython9(double Scale);
ir::Program buildLuindex9(double Scale);
ir::Program buildLusearch9(double Scale);
ir::Program buildPmd9(double Scale);
ir::Program buildSunflow9(double Scale);
ir::Program buildXalan9(double Scale);
ir::Program buildElevator(double Scale);
ir::Program buildHedc(double Scale);
ir::Program buildPhilo(double Scale);
ir::Program buildSor(double Scale);
ir::Program buildTsp(double Scale);
ir::Program buildMoldyn(double Scale);
ir::Program buildMontecarlo(double Scale);
ir::Program buildRaytracer(double Scale);

} // namespace workloads
} // namespace dc

#endif // DC_WORKLOADS_WORKLOADS_H
