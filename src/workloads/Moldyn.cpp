//===- workloads/Moldyn.cpp - Molecular-dynamics analog -------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of Java Grande moldyn: force computation over a particle system.
/// Workers update disjoint particle partitions inside many short atomic
/// methods (Table 3: 573k transactions, essentially no edges) while
/// reading a shared parameter block that settles into RdSh. Serializable
/// by construction — Table 2 reports zero violations.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildMoldyn(double Scale) {
  ProgramBuilder B("moldyn", /*Seed=*/0x301d);
  const uint32_t Workers = 3;
  PoolId Particles = B.addPool("particles", Workers + 1, 24);
  PoolId Params = B.addPool("params", 4, 4);

  MethodId UpdateParticle = B.beginMethod("updateParticle", /*Atomic=*/true)
                                .beginLoop(idxConst(12))
                                .read(Params, idxRandom(4), idxRandom(4))
                                .read(Particles, idxThread(),
                                      idxLoop(0, 2, 0, 24))
                                .work(3)
                                .write(Particles, idxThread(),
                                       idxLoop(0, 2, 1, 24))
                                .endLoop()
                                .endMethod();

  MethodId ComputeForces = B.beginMethod("computeForces", /*Atomic=*/false)
                               .beginLoop(idxConst(2))
                               .call(UpdateParticle, idxLoop())
                               .endLoop()
                               .endMethod();

  MethodId Worker = B.beginMethod("mdWorker", /*Atomic=*/false)
                        .beginLoop(idxConst(scaled(Scale, 2500)))
                        .call(ComputeForces)
                        .work(8)
                        .endLoop()
                        .endMethod();

  addDriver(B, std::vector<MethodId>(Workers, Worker));
  return B.build();
}
