//===- workloads/Lusearch9.cpp - Text-search analog (9.12) ----------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of DaCapo lusearch9: like lusearch6 but with a shared query
/// cache touched racily by two different methods, producing a handful of
/// distinct blamed methods (Table 2 reports ~40 violations) while the bulk
/// of the execution stays thread-local. Table 3 shows the second run of
/// multi-run mode instrumenting no non-transactional accesses for this
/// program — our worker keeps all shared accesses inside atomic methods to
/// reproduce that.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildLusearch9(double Scale) {
  ProgramBuilder B("lusearch9", /*Seed=*/0x15e9);
  const uint32_t Workers = 3;
  PoolId Index = B.addPool("index", Workers + 1, 64);
  PoolId QueryCache = B.addPool("queryCache", 8, 2);

  MethodId SearchSegment = B.beginMethod("searchSegment", /*Atomic=*/true)
                               .beginLoop(idxConst(24))
                               .read(Index, idxThread(), idxRandom(64))
                               .read(Index, idxThread(), idxRandom(64))
                               .write(Index, idxThread(), idxRandom(64))
                               .endLoop()
                               .endMethod();

  // Two racy cache methods: lookup reads both fields unsynchronized while
  // store updates them, so both get blamed across runs.
  MethodId CacheLookup = B.beginMethod("cacheLookup", /*Atomic=*/true)
                             .read(QueryCache, idxParam(1, 0, 8), 0u)
                             .work(4)
                             .read(QueryCache, idxParam(1, 0, 8), 1u)
                             .endMethod();

  MethodId CacheStore = B.beginMethod("cacheStore", /*Atomic=*/true)
                            .write(QueryCache, idxParam(1, 0, 8), 0u)
                            .work(4)
                            .write(QueryCache, idxParam(1, 0, 8), 1u)
                            .endMethod();

  MethodId Worker = B.beginMethod("searchWorker", /*Atomic=*/false)
                        .beginLoop(idxConst(scaled(Scale, 300)))
                        .beginLoop(idxConst(16))
                        .call(SearchSegment)
                        .work(5)
                        .endLoop()
                        .call(CacheLookup, idxRandom(8))
                        .call(CacheStore, idxRandom(8))
                        .endLoop()
                        .endMethod();

  addDriver(B, std::vector<MethodId>(Workers, Worker));
  return B.build();
}
