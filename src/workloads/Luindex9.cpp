//===- workloads/Luindex9.cpp - Index-builder analog ----------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analog of DaCapo luindex9: a single indexing worker filling thread-local
/// buffers inside a few transactions. Like jython9 it reports nothing
/// (Table 2: 0 violations; Table 3: no edges, no SCCs) and measures pure
/// single-threaded barrier overhead, at a smaller scale.
///
//===----------------------------------------------------------------------===//

#include "workloads/Common.h"
#include "workloads/Workloads.h"

using namespace dc;
using namespace dc::ir;
using namespace dc::workloads;

ir::Program workloads::buildLuindex9(double Scale) {
  ProgramBuilder B("luindex9", /*Seed=*/0x10109);
  PoolId Buffers = B.addPool("buffers", 16, 16);
  PoolId Docs = B.addArrayPool("docs", 4, 256);

  MethodId IndexDoc = B.beginMethod("indexDoc", /*Atomic=*/true)
                          .beginLoop(idxConst(32))
                          .readElem(Docs, idxParam(1, 0, 4), idxRandom(256))
                          .read(Buffers, idxRandom(16), idxRandom(16))
                          .write(Buffers, idxRandom(16), idxRandom(16))
                          .endLoop()
                          .endMethod();

  MethodId Worker = B.beginMethod("indexWorker", /*Atomic=*/false)
                        .beginLoop(idxConst(scaled(Scale, 6000)))
                        .call(IndexDoc, idxRandom(4))
                        .work(8)
                        .endLoop()
                        .endMethod();

  addDriver(B, {Worker});
  return B.build();
}
