//===- workloads/Workloads.cpp - Registry -------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <cassert>

using namespace dc;
using namespace dc::workloads;

const std::vector<WorkloadInfo> &workloads::all() {
  static const std::vector<WorkloadInfo> Table = {
      {"eclipse6", true,
       "IDE jobs: plugin registry, racy marker/log updates (many distinct "
       "violations)",
       &buildEclipse6},
      {"hsqldb6", true,
       "embedded database: locked row updates vs. racy readers, log flush "
       "via wait/notify",
       &buildHsqldb6},
      {"lusearch6", true,
       "text search: thread-local scans, one rarely-racy shared hit "
       "counter",
       &buildLusearch6},
      {"xalan6", true,
       "XSLT: tiny hot shared cache, constant conflicting transitions "
       "(pathologically many imprecise SCCs)",
       &buildXalan6},
      {"avrora9", true,
       "AVR simulator: huge non-transactional stepping loop, occasional "
       "racy event posts",
       &buildAvrora9},
      {"jython9", true,
       "Python interpreter: effectively single-threaded, a handful of huge "
       "transactions, no sharing",
       &buildJython9},
      {"luindex9", true,
       "index builder: single worker, few transactions, thread-local "
       "buffers",
       &buildLuindex9},
      {"lusearch9", true,
       "text search: thread-local scans plus a racy shared cache touched "
       "by two methods",
       &buildLusearch9},
      {"pmd9", true,
       "source analyzer: per-file thread-local analysis, no shared "
       "mutation",
       &buildPmd9},
      {"sunflow9", true,
       "renderer: read-shared scene, safe tiles, racy global statistics",
       &buildSunflow9},
      {"xalan9", true,
       "XSLT (9.12): larger cache, moderate conflict rate and SCC count",
       &buildXalan9},
      {"elevator", false,
       "discrete-event elevators: wait/notify controller, racy door state",
       &buildElevator},
      {"hedc", false,
       "metadata crawler: tiny task pool, racy result table",
       &buildHedc},
      {"philo", false,
       "dining philosophers: correctly locked forks, wait/notify, no "
       "violations",
       &buildPhilo},
      {"sor", true,
       "successive over-relaxation: phase-barriered stencil over shared "
       "arrays, no violations",
       &buildSor},
      {"tsp", true,
       "branch-and-bound TSP: enormous unary search loop, racy best-bound "
       "updates",
       &buildTsp},
      {"moldyn", true,
       "molecular dynamics: partitioned particle updates inside "
       "transactions, no violations",
       &buildMoldyn},
      {"montecarlo", true,
       "Monte Carlo pricing: read-shared rate tables (RdSh-heavy), racy "
       "accumulator",
       &buildMontecarlo},
      {"raytracer", true,
       "ray tracer: read-shared scene, massive access count, clean "
       "checksum discipline",
       &buildRaytracer},
  };
  return Table;
}

const WorkloadInfo *workloads::find(const std::string &Name) {
  for (const WorkloadInfo &W : all())
    if (W.Name == Name)
      return &W;
  return nullptr;
}

ir::Program workloads::build(const std::string &Name, double Scale) {
  const WorkloadInfo *W = find(Name);
  assert(W != nullptr && "unknown workload");
  return W->Build(Scale);
}
