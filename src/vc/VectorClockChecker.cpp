//===- vc/VectorClockChecker.cpp ------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vc/VectorClockChecker.h"

#include <cassert>
#include <chrono>
#include <thread>

using namespace dc;
using namespace dc::vc;
using analysis::CycleMember;
using analysis::ViolationRecord;

VectorClockRuntime::VectorClockRuntime(const ir::Program &P,
                                       VectorClockOptions Opts,
                                       analysis::ViolationLog &Violations,
                                       StatisticRegistry &Stats)
    : P(P), Opts(Opts), Violations(Violations), Stats(Stats) {}

VectorClockRuntime::~VectorClockRuntime() {
  for (uint32_t T = 0; T < NumThreads; ++T)
    for (VcTxn *Tx : Threads[T].Owned)
      delete Tx;
}

void VectorClockRuntime::beginRun(rt::Runtime &RT) {
  NumThreads = RT.numThreads();
  Threads = std::make_unique<PerThread[]>(NumThreads);
  FieldLocks = std::vector<SpinLock>(RT.heap().numFieldAddrs());
  Fields = std::vector<FieldMeta>(RT.heap().numFieldAddrs());
}

void VectorClockRuntime::endRun(rt::Runtime &RT) {
  uint64_t Acc = 0;
  for (uint32_t T = 0; T < NumThreads; ++T)
    Acc += Threads[T].Accesses;
  Stats.get("vc.accesses").add(Acc);
  SpinLockGuard Guard(EngineLock);
  Stats.get("vc.txs").add(NextTxId);
  Stats.get("vc.cross_edges").add(CrossEdges);
  Stats.get("vc.joins").add(Joins);
  Stats.get("vc.epoch_joins").add(EpochJoins);
  Stats.get("vc.propagations").add(Propagations);
  Stats.get("vc.violations").add(ViolationCount);
  Stats.get("vc.collector_runs").add(CollectorRuns);
  Stats.get("vc.collector_ns").add(CollectorNs);
  Stats.get("vc.txs_swept").add(TxsSwept);
  if (WindowsFlushed != 0)
    Stats.get("vc.windows_flushed").add(WindowsFlushed);
}

void VectorClockRuntime::threadStarted(rt::ThreadContext &TC) {
  SpinLockGuard Guard(EngineLock);
  newTransactionLocked(TC.Tid, ir::InvalidMethodId, /*Regular=*/false);
}

void VectorClockRuntime::threadExiting(rt::ThreadContext &TC) {
  SpinLockGuard Guard(EngineLock);
  endCurrentTxLocked(TC.Tid);
  Threads[TC.Tid].CurrTx.store(nullptr, std::memory_order_release);
}

void VectorClockRuntime::txBegin(rt::ThreadContext &TC, const ir::Method &M) {
  SpinLockGuard Guard(EngineLock);
  endCurrentTxLocked(TC.Tid);
  newTransactionLocked(TC.Tid, P.originalOf(M.Id), /*Regular=*/true);
}

void VectorClockRuntime::txEnd(rt::ThreadContext &TC, const ir::Method &M) {
  SpinLockGuard Guard(EngineLock);
  endCurrentTxLocked(TC.Tid);
  newTransactionLocked(TC.Tid, ir::InvalidMethodId, /*Regular=*/false);
}

VectorClockRuntime::VcTxn *
VectorClockRuntime::currentForAccess(rt::ThreadContext &TC) {
  PerThread &PT = Threads[TC.Tid];
  VcTxn *Cur = PT.CurrTx.load(std::memory_order_relaxed);
  assert(Cur && "access outside any transaction context");
  if (Cur->Regular || !Cur->Interrupted.load(std::memory_order_relaxed))
    return Cur;
  SpinLockGuard Guard(EngineLock);
  endCurrentTxLocked(TC.Tid);
  return newTransactionLocked(TC.Tid, ir::InvalidMethodId,
                              /*Regular=*/false);
}

void VectorClockRuntime::instrumentedAccess(rt::ThreadContext &TC,
                                            const rt::AccessInfo &Info,
                                            function_ref<void()> Access) {
  if (!(Info.Flags & ir::IF_VelodromeBarrier)) {
    Access();
    return;
  }
  PerThread &PT = Threads[TC.Tid];
  ++PT.Accesses;
  VcTxn *Cur = currentForAccess(TC);
  FieldMeta &Meta = Fields[Info.Addr];

  // Lock order: field lock, then EngineLock. Metadata is mutated only while
  // both are held, so the collector (under EngineLock) can scan field
  // metadata as roots without racing vector mutations.
  SpinLockGuard FieldGuard(FieldLocks[Info.Addr]);
  if (Opts.RemoteMissPenalty != 0) {
    // Same coherence-miss simulation as Velodrome: this engine also updates
    // per-field metadata inside the access's critical section, so contended
    // fields would ping-pong the metadata cache line on a real multicore.
    if (Meta.LastToucher != TC.Tid) {
      if (Meta.LastToucher != ~0u)
        Meta.Contended = true;
      Meta.LastToucher = TC.Tid;
    }
    if (Meta.Contended) {
      uint64_t Acc = Info.Addr;
      for (uint32_t I = 0; I < Opts.RemoteMissPenalty; ++I)
        Acc = Acc * 6364136223846793005ULL + 1442695040888963407ULL;
      PenaltySink.fetch_add(Acc, std::memory_order_relaxed);
    }
  }
  VcTxn *W = Meta.LastWrite.load(std::memory_order_relaxed);
  if (!Info.IsWrite) {
    // READ rule (Velodrome Fig. 5): write-read edge, then record the reader.
    VcTxn **Slot = nullptr;
    for (auto &R : Meta.Readers)
      if (R.first == TC.Tid)
        Slot = &R.second;
    bool AlreadyRecorded = Slot != nullptr && *Slot == Cur;
    if (!AlreadyRecorded) {
      SpinLockGuard EngineGuard(EngineLock);
      if (W != nullptr && W->Tid != TC.Tid)
        addEdgeLocked(W, Cur);
      if (Slot != nullptr)
        *Slot = Cur;
      else
        Meta.Readers.emplace_back(TC.Tid, Cur);
    }
  } else {
    // WRITE rule: write-write and read-write edges, then update.
    bool NeedsChange = W != Cur || !Meta.Readers.empty();
    if (NeedsChange) {
      SpinLockGuard EngineGuard(EngineLock);
      if (W != nullptr && W->Tid != TC.Tid)
        addEdgeLocked(W, Cur);
      for (const auto &R : Meta.Readers)
        if (R.first != TC.Tid)
          addEdgeLocked(R.second, Cur);
      Meta.LastWrite.store(Cur, std::memory_order_relaxed);
      Meta.Readers.clear();
    }
  }
  Access();
}

void VectorClockRuntime::syncOp(rt::ThreadContext &TC,
                                const rt::AccessInfo &Info,
                                rt::SyncKind Kind) {
  if (Info.Flags == ir::IF_None)
    return;
  // Release-acquire dependences modelled as accesses of the sync slot,
  // exactly like the graph engines.
  instrumentedAccess(TC, Info, [] {});
}

VectorClockRuntime::VcTxn *
VectorClockRuntime::newTransactionLocked(uint32_t Tid, ir::MethodId Site,
                                         bool Regular) {
  PerThread &PT = Threads[Tid];
  auto *Tx = new VcTxn(++NextTxId, Tid, PT.NextSeq++, Site, Regular,
                       NumThreads);
  {
    SpinLockGuard Guard(PT.OwnedLock);
    PT.Owned.push_back(Tx);
  }
  VcTxn *Prev = PT.CurrTx.load(std::memory_order_relaxed);
  if (Prev != nullptr) {
    // Program-order edge Prev->Tx: join and subscribe, like any edge. The
    // subscription is what keeps each thread's clock component downward-
    // closed even when Prev learns of predecessors after Tx started — the
    // exactness of the single reachability comparison depends on it.
    ++Joins;
    if (Prev->Known.isEpoch())
      ++EpochJoins;
    Tx->Known.joinFrom(Prev->Known, [&](uint32_t T) { Tx->Pred[T] = Prev; });
    Prev->Subs.push_back(Tx);
  }
  PT.CurrTx.store(Tx, std::memory_order_release);
  return Tx;
}

void VectorClockRuntime::endCurrentTxLocked(uint32_t Tid) {
  PerThread &PT = Threads[Tid];
  if (PT.CurrTx.load(std::memory_order_relaxed) == nullptr)
    return;
  ++FinishedTxs;
  if (Opts.WindowTxs != 0 && FinishedTxs % Opts.WindowTxs == 0)
    windowFlushLocked();
  else if (FinishedTxs % Opts.CollectEveryTx == 0)
    collectLocked();
}

void VectorClockRuntime::addEdgeLocked(VcTxn *Src, VcTxn *Dst) {
  if (Src == nullptr || Src == Dst)
    return;
  // Cheap dedupe of the common consecutive-duplicate case (safe: the first
  // instance already ran the reachability check, and a duplicate edge can
  // never close a cycle the original did not).
  if (!Src->Subs.empty() && Src->Subs.back() == Dst)
    return;
  // Edges interrupt unary-transaction merging (same demarcation as the
  // graph engines).
  if (!Src->Regular)
    Src->Interrupted.store(true, std::memory_order_relaxed);
  if (!Dst->Regular)
    Dst->Interrupted.store(true, std::memory_order_relaxed);
  ++CrossEdges;
  // The new edge Src->Dst closes a cycle iff Dst already reaches Src, i.e.
  // Src's clock has caught up to Dst's own sequence number. Checked before
  // the join (which only grows Dst's clock, not Src's).
  if (Opts.DetectCycles && Src->Known.get(Dst->Tid) >= Dst->Seq)
    reportViolationLocked(Src, Dst);
  ++Joins;
  if (Src->Known.isEpoch())
    ++EpochJoins;
  bool Grew =
      Dst->Known.joinFrom(Src->Known, [&](uint32_t T) { Dst->Pred[T] = Src; });
  Src->Subs.push_back(Dst);
  if (Grew)
    propagateLocked(Dst);
}

void VectorClockRuntime::propagateLocked(VcTxn *From) {
  // Monotone worklist: push grown clocks to subscribers until fixpoint.
  // Terminates because clocks only grow and are bounded by the per-thread
  // sequence counters.
  assert(Worklist.empty());
  Worklist.push_back(From);
  while (!Worklist.empty()) {
    VcTxn *N = Worklist.back();
    Worklist.pop_back();
    for (VcTxn *S : N->Subs) {
      if (S->Known.joinFrom(N->Known, [&](uint32_t T) { S->Pred[T] = N; })) {
        ++Propagations;
        Worklist.push_back(S);
      }
    }
  }
}

void VectorClockRuntime::reportViolationLocked(VcTxn *Src, VcTxn *Dst) {
  // One report per completing target, matching the graph engines' one
  // report per detected cycle.
  if (Dst->Reported)
    return;
  Dst->Reported = true;
  ++ViolationCount;
  // Blame the closing edge's endpoints first, then sharpen by walking the
  // per-slot provenance chain (VcTxn::Pred) backward from Src on Dst's
  // thread slot. Every chain member X satisfies X.Known[Dst.Tid] >= Dst.Seq
  // (the trigger condition, monotone through providers), so Dst reaches X
  // via Dst's thread's program order, X reaches Src via the join edges
  // walked, and the closing edge Src->Dst puts X on a dependence cycle —
  // every emitted member and blame site is therefore in the oracle's cycle
  // method set, just like graph blame. The walk is bounded and stops at
  // null (collection truncated the chain), Dst, or a repeat; a record with
  // Invalid blame still counts as a detection.
  ViolationRecord R;
  if (Dst->Regular)
    R.Blamed = Dst->Site;
  else if (Src->Regular)
    R.Blamed = Src->Site;
  R.Cycle.push_back(CycleMember{Dst->Tid, Dst->Site, Dst->Id});
  constexpr size_t MaxWalk = 16;
  std::vector<VcTxn *> Chain;
  for (VcTxn *Cur = Src->Pred[Dst->Tid];
       Cur != nullptr && Cur != Dst && Cur != Src && Chain.size() < MaxWalk;
       Cur = Cur->Pred[Dst->Tid]) {
    bool Seen = false;
    for (VcTxn *C : Chain)
      Seen |= C == Cur;
    if (Seen)
      break;
    Chain.push_back(Cur);
  }
  // Pred points backward (provider <- consumer); emit in cycle order
  // Dst -> ... -> Src.
  for (auto It = Chain.rbegin(); It != Chain.rend(); ++It)
    R.Cycle.push_back(CycleMember{(*It)->Tid, (*It)->Site, (*It)->Id});
  R.Cycle.push_back(CycleMember{Src->Tid, Src->Site, Src->Id});
  if (R.Blamed == ir::InvalidMethodId)
    for (VcTxn *C : Chain)
      if (C->Regular) {
        R.Blamed = C->Site;
        break;
      }
  Violations.report(std::move(R));
}

void VectorClockRuntime::collectLocked() {
  auto StartTime = std::chrono::steady_clock::now();
  if (Opts.Faults.CollectorDelayMs != 0)
    std::this_thread::sleep_for(
        std::chrono::milliseconds(Opts.Faults.CollectorDelayMs));
  const uint64_t Epoch = ++MarkEpoch;
  std::vector<VcTxn *> Work;
  auto AddRoot = [&](VcTxn *Tx) {
    if (Tx != nullptr && Tx->MarkEpoch != Epoch) {
      Tx->MarkEpoch = Epoch;
      Work.push_back(Tx);
    }
  };
  for (uint32_t T = 0; T < NumThreads; ++T)
    AddRoot(Threads[T].CurrTx.load(std::memory_order_relaxed));
  // Field metadata references are roots: a last-writer/reader can still
  // source a future edge, which reads its clock and appends to its Subs.
  for (FieldMeta &Meta : Fields) {
    AddRoot(Meta.LastWrite.load(std::memory_order_relaxed));
    for (const auto &R : Meta.Readers)
      AddRoot(R.second);
  }
  // Traverse subscriptions: anything a live transaction can push to must
  // survive (so no dangling pointers can be reached by propagateLocked).
  while (!Work.empty()) {
    VcTxn *Tx = Work.back();
    Work.pop_back();
    for (VcTxn *S : Tx->Subs)
      AddRoot(S);
  }
  // Marking follows Subs (forward), so a survivor's Pred entries can point
  // at transactions about to be swept. Null them before deleting anything:
  // the blame walk then stops at the truncation instead of chasing freed
  // memory (it only ever shortens the reported cycle, never a verdict).
  for (uint32_t T = 0; T < NumThreads; ++T) {
    PerThread &PT = Threads[T];
    SpinLockGuard Guard(PT.OwnedLock);
    for (VcTxn *Tx : PT.Owned)
      if (Tx->MarkEpoch == Epoch)
        for (VcTxn *&Pred : Tx->Pred)
          if (Pred != nullptr && Pred->MarkEpoch != Epoch)
            Pred = nullptr;
  }
  for (uint32_t T = 0; T < NumThreads; ++T) {
    PerThread &PT = Threads[T];
    SpinLockGuard Guard(PT.OwnedLock);
    size_t Kept = 0;
    for (VcTxn *Tx : PT.Owned) {
      if (Tx->MarkEpoch == Epoch)
        PT.Owned[Kept++] = Tx;
      else {
        delete Tx;
        ++TxsSwept;
      }
    }
    PT.Owned.resize(Kept);
  }
  ++CollectorRuns;
  CollectorNs += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - StartTime)
          .count());
}

void VectorClockRuntime::windowFlushLocked() {
  collectLocked();
  ++WindowsFlushed;
  uint64_t Live = 0;
  for (uint32_t T = 0; T < NumThreads; ++T) {
    SpinLockGuard Guard(Threads[T].OwnedLock);
    Live += Threads[T].Owned.size();
  }
  WindowPinnedLast = Live;
  if (Opts.WindowHook) {
    rt::HealthSnapshot H;
    fillHealthLocked(H);
    Opts.WindowHook(H);
  }
}

void VectorClockRuntime::fillHealthLocked(rt::HealthSnapshot &H) {
  H.WindowIndex = WindowsFlushed;
  H.FinishedTxs = FinishedTxs;
  uint64_t Live = 0;
  for (uint32_t T = 0; T < NumThreads; ++T) {
    SpinLockGuard Guard(Threads[T].OwnedLock);
    Live += Threads[T].Owned.size();
  }
  H.LiveTxs = Live;
  H.RetiredTxs = TxsSwept;
  H.PinnedTxs = WindowPinnedLast;
  H.CrossEdges = CrossEdges;
  H.Violations = ViolationCount;
  // No degradation ladder and no async components here: the engine's
  // verdicts are per-edge and synchronous, so Degradations/Fault stay zero.
  StatisticRegistry::Snapshot Snap = Stats.snapshot();
  H.StatsStable = Snap.Stable;
  H.Stats = std::move(Snap.Values);
}

void VectorClockRuntime::healthSnapshot(rt::HealthSnapshot &H) {
  if (NumThreads == 0)
    return; // beginRun has not happened yet.
  SpinLockGuard Guard(EngineLock);
  fillHealthLocked(H);
}

bool VectorClockRuntime::windowFlush() {
  if (NumThreads == 0)
    return true;
  SpinLockGuard Guard(EngineLock);
  windowFlushLocked();
  return true; // Nothing here can wedge or degrade: always clean.
}
