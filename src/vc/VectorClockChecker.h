//===- vc/VectorClockChecker.h - Vector-clock atomicity engine --*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third atomicity backend: conflict-serializability checking with
/// per-transaction vector clocks instead of an explicit dependence graph —
/// no SCC pass, no cross-run replay. Inspired by Mathur & Viswanathan's
/// AeroDrome ("Atomicity Checking in Linear Time using Vector Clocks",
/// ASPLOS 2020); see DESIGN.md §14 for the exact algorithm used here and
/// its equivalence argument against the graph engines.
///
/// Per transaction T the engine keeps a clock `T.Known` with
/// `Known[t] = s` meaning thread t's transaction with sequence number ≤ s
/// is known to reach T (including T itself: `Known[T.Tid] = T.Seq`).
/// Velodrome's per-field metadata (last writer + readers-since) produces
/// exactly the same conflict edges as the graph engines; instead of
/// inserting an edge S→C into a graph, the engine
///
///   1. checks `S.Known[C.Tid] >= C.Seq` — true iff C already reaches S,
///      i.e. the new edge closes a cycle: report a violation, and
///   2. joins S.Known into C.Known and *subscribes* C to S, so that if S
///      later learns about more predecessors (its clock grows), that
///      knowledge is pushed to C transitively (a monotone worklist).
///
/// The push-based propagation is what makes the clock representation exact
/// rather than a lossy snapshot: edges can arrive at a transaction after
/// its successors were linked (a still-running transaction keeps receiving
/// in-edges), and per-thread program order keeps each thread's component of
/// every clock downward-closed, so the single comparison in step 1 decides
/// reachability exactly. Blame is per closing edge (the accessing
/// transaction's site when regular) — coarser than the graph engines'
/// whole-cycle scan, but always a subset of the oracle's cycle methods.
///
//===----------------------------------------------------------------------===//

#ifndef DC_VC_VECTORCLOCKCHECKER_H
#define DC_VC_VECTORCLOCKCHECKER_H

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "analysis/Violation.h"
#include "rt/CheckerRuntime.h"
#include "rt/Runtime.h"
#include "support/FaultPlan.h"
#include "support/SpinLock.h"
#include "support/Statistic.h"
#include "vc/VectorClock.h"

namespace dc {
namespace vc {

struct VectorClockOptions {
  /// Remote-cache-miss simulation, identical to Velodrome's (DESIGN.md §2):
  /// the engine updates per-field metadata inside a per-access critical
  /// section, so on a real multicore contended fields would ping-pong their
  /// metadata line exactly like Velodrome's. Keeping the same default keeps
  /// the fig7 comparison between the two metadata-in-line engines fair; the
  /// VC engine's structural win is the absent graph/SCC/replay machinery.
  uint32_t RemoteMissPenalty = 300;
  /// Disable the cycle (reachability) check while still tracking clocks.
  bool DetectCycles = true;
  /// Collector trigger, in finished transactions.
  uint32_t CollectEveryTx = 8192;
  /// Deterministic fault injection (only CollectorDelayMs applies here: the
  /// engine has no workers, queues, or allocation-gated paths).
  FaultPlan Faults;
  /// Streaming service mode: run one window flush (a forced collection plus
  /// a WindowHook callback) every this many finished transactions. The
  /// engine's verdicts are per-edge and never deferred, so windowing cannot
  /// change them — flushes only bound memory and pace the event stream.
  uint32_t WindowTxs = 0;
  /// Called after each window flush with a post-flush health snapshot.
  std::function<void(const rt::HealthSnapshot &)> WindowHook;
};

/// The vector-clock engine attached to one execution.
class VectorClockRuntime final : public rt::CheckerRuntime {
public:
  VectorClockRuntime(const ir::Program &P, VectorClockOptions Opts,
                     analysis::ViolationLog &Violations,
                     StatisticRegistry &Stats);
  ~VectorClockRuntime() override;

  void beginRun(rt::Runtime &RT) override;
  void endRun(rt::Runtime &RT) override;
  void threadStarted(rt::ThreadContext &TC) override;
  void threadExiting(rt::ThreadContext &TC) override;
  void txBegin(rt::ThreadContext &TC, const ir::Method &M) override;
  void txEnd(rt::ThreadContext &TC, const ir::Method &M) override;
  void instrumentedAccess(rt::ThreadContext &TC, const rt::AccessInfo &Info,
                          function_ref<void()> Access) override;
  void syncOp(rt::ThreadContext &TC, const rt::AccessInfo &Info,
              rt::SyncKind Kind) override;
  void healthSnapshot(rt::HealthSnapshot &H) override;
  bool windowFlush() override;

private:
  /// One transaction's clock state. Unlike analysis::Transaction there is
  /// no out-edge list — only the clock and the subscriber list that keeps
  /// it exact under late-arriving predecessors.
  struct VcTxn {
    VcTxn(uint64_t Id, uint32_t Tid, uint64_t Seq, ir::MethodId Site,
          bool Regular, uint32_t NumThreads)
        : Id(Id), Tid(Tid), Seq(Seq), Site(Site), Regular(Regular),
          Known(NumThreads), Pred(NumThreads, nullptr) {
      Known.set(Tid, Seq);
    }
    uint64_t Id;
    uint32_t Tid;
    uint64_t Seq;
    ir::MethodId Site;
    bool Regular;
    /// A cross edge touched this unary transaction; the next access on its
    /// thread must start a fresh unary span (same demarcation as the graph
    /// engines). Atomic: read outside EngineLock on the access fast path.
    std::atomic<bool> Interrupted{false};
    /// A violation with this transaction as closing-edge target was already
    /// reported (one report per cycle, matching the graph engines).
    bool Reported = false;
    uint64_t MarkEpoch = 0;
    /// Transactions known to reach this one, as highest-sequence-per-thread.
    VectorClock Known;
    /// Per-slot provenance: Pred[t] is the join partner whose clock
    /// supplied Known.get(t)'s *current* value (an immediate graph
    /// predecessor of this transaction — every join mirrors a real PO,
    /// conflict, or propagation edge). The report-time blame walk follows
    /// Pred[Dst->Tid] backward from a closing edge's source: each visited
    /// transaction X has Known[Dst->Tid] >= Dst->Seq (Dst reaches X via
    /// program order through Dst's thread) and reaches the source via the
    /// join edges walked, so with the closing edge Src->Dst every member of
    /// the walk provably lies on a dependence cycle. Maintained under
    /// EngineLock. Liveness marking follows Subs (forward), not Pred, so a
    /// sweep can free a provider that live consumers still point at —
    /// collectLocked nulls every Pred entry whose target is unmarked before
    /// deleting anything. A nulled entry just truncates the walk (fewer
    /// cycle members reported), never changes a verdict.
    std::vector<VcTxn *> Pred;
    /// Successors to push clock growth to (both conflict and program-order
    /// edges subscribe). Consecutive duplicates are skipped at insert.
    std::vector<VcTxn *> Subs;
  };

  struct alignas(64) PerThread {
    std::atomic<VcTxn *> CurrTx{nullptr};
    /// Per-thread transaction sequence numbers start at 1 so clock slot 0
    /// means "no transaction of that thread known".
    uint64_t NextSeq = 1;
    uint64_t Accesses = 0;
    std::vector<VcTxn *> Owned;
    SpinLock OwnedLock;
  };

  /// Per-field metadata, same shape (and same remote-miss accounting) as
  /// Velodrome's: last writer plus last reader per thread since that write.
  struct FieldMeta {
    std::atomic<VcTxn *> LastWrite{nullptr};
    std::vector<std::pair<uint32_t, VcTxn *>> Readers;
    uint32_t LastToucher = ~0u;
    bool Contended = false;
  };

  VcTxn *newTransactionLocked(uint32_t Tid, ir::MethodId Site, bool Regular);
  void endCurrentTxLocked(uint32_t Tid);
  VcTxn *currentForAccess(rt::ThreadContext &TC);
  /// Conflict edge Src->Dst: cycle check, join, subscribe, propagate.
  /// Caller holds EngineLock.
  void addEdgeLocked(VcTxn *Src, VcTxn *Dst);
  /// Pushes \p From's clock to its subscribers until no clock grows.
  void propagateLocked(VcTxn *From);
  void reportViolationLocked(VcTxn *Src, VcTxn *Dst);
  void collectLocked();
  /// One retirement-window boundary: forced collection + WindowHook. The
  /// engine's verdicts are per-edge and never deferred, so a flush cannot
  /// change them — it only bounds memory and paces the event stream, hence
  /// always "clean" (no degradation ladder here).
  void windowFlushLocked();
  void fillHealthLocked(rt::HealthSnapshot &H);

  const ir::Program &P;
  VectorClockOptions Opts;
  analysis::ViolationLog &Violations;
  StatisticRegistry &Stats;

  std::unique_ptr<PerThread[]> Threads;
  uint32_t NumThreads = 0;

  std::vector<SpinLock> FieldLocks;
  std::vector<FieldMeta> Fields;
  std::atomic<uint64_t> PenaltySink{0};

  /// Guards transaction lifecycle, clocks, subscriptions, collection.
  /// Lock order: field lock, then EngineLock (same as Velodrome).
  SpinLock EngineLock;
  uint64_t NextTxId = 0;
  uint64_t CrossEdges = 0;
  uint64_t Joins = 0;
  uint64_t EpochJoins = 0;
  uint64_t Propagations = 0;
  uint64_t ViolationCount = 0;
  uint64_t FinishedTxs = 0;
  uint64_t MarkEpoch = 0;
  uint64_t CollectorRuns = 0;
  uint64_t CollectorNs = 0;
  uint64_t TxsSwept = 0;
  uint64_t WindowsFlushed = 0;
  /// Live txs surviving the latest window flush (HealthSnapshot::PinnedTxs).
  uint64_t WindowPinnedLast = 0;
  /// Reused propagation worklist (avoids per-edge allocation).
  std::vector<VcTxn *> Worklist;
};

} // namespace vc
} // namespace dc

#endif // DC_VC_VECTORCLOCKCHECKER_H
