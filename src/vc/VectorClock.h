//===- vc/VectorClock.h - Epoch-optimized vector clocks ---------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The clock representation behind the vector-clock atomicity engine
/// (vc/VectorClockChecker.h). One clock holds, per program thread, the
/// highest transaction sequence number of that thread known to
/// happen-before the clock's owner. Two representation tricks keep the
/// common joins cheap, following the epoch/VC split popularized by FastTrack
/// and reused by Mathur & Viswanathan's AeroDrome:
///
///  * small-buffer storage — clocks for runs of up to `InlineSlots` threads
///    live entirely inside the object (no heap allocation, no pointer
///    chase); wider runs spill to a heap vector transparently,
///  * an epoch fast path — most clocks in mostly-thread-local workloads
///    carry exactly one nonzero entry (the owner's own sequence number,
///    i.e. an epoch `seq@tid`). A join from such a clock compares and
///    updates a single slot instead of walking the width. The cached
///    single-entry index is conservative: it may decay to "wide" without
///    breaking correctness, only the fast path is skipped.
///
/// Joins are slot-wise max and return whether anything grew — the engine
/// uses that bit to decide whether knowledge must be propagated further.
///
//===----------------------------------------------------------------------===//

#ifndef DC_VC_VECTORCLOCK_H
#define DC_VC_VECTORCLOCK_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace dc {
namespace vc {

class VectorClock {
public:
  /// Widths up to this stay inline (no heap allocation per clock).
  static constexpr uint32_t InlineSlots = 8;

  VectorClock() = default;
  explicit VectorClock(uint32_t NumThreads) { resize(NumThreads); }

  void resize(uint32_t NumThreads) {
    Width = NumThreads;
    Single = kEmpty;
    if (Width <= InlineSlots)
      std::fill(Inline, Inline + InlineSlots, 0);
    else
      Spill.assign(Width, 0);
  }

  uint32_t width() const { return Width; }

  uint64_t get(uint32_t Tid) const { return slots()[Tid]; }

  /// Sets one entry (sequence numbers are nonzero; 0 means "unknown").
  void set(uint32_t Tid, uint64_t Seq) {
    uint64_t *S = slots();
    const bool WasZero = S[Tid] == 0;
    S[Tid] = Seq;
    if (WasZero) {
      if (Single == kEmpty)
        Single = static_cast<int32_t>(Tid);
      else if (Single != static_cast<int32_t>(Tid))
        Single = kWide;
    }
  }

  /// True iff the cached representation is a single-entry epoch (at most
  /// one nonzero slot). May conservatively report false on such clocks
  /// after joins, never true on multi-entry ones.
  bool isEpoch() const { return Single >= 0 || Single == kEmpty; }

  /// Slot-wise max of \p Other into this, reporting every grown slot:
  /// \p OnGrow(t) runs once per thread slot whose entry increased. The
  /// engine uses this to maintain per-slot provenance (which join partner
  /// supplied each entry's current value), which is what the report-time
  /// blame walk follows. Returns true iff any slot grew.
  template <typename F> bool joinFrom(const VectorClock &Other, F &&OnGrow) {
    if (Other.Single == kEmpty)
      return false;
    uint64_t *S = slots();
    if (Other.Single >= 0) {
      // Epoch fast path: the source has one nonzero entry.
      const uint32_t T = static_cast<uint32_t>(Other.Single);
      const uint64_t Seq = Other.slots()[T];
      if (S[T] >= Seq)
        return false;
      set(T, Seq);
      OnGrow(T);
      return true;
    }
    const uint64_t *O = Other.slots();
    bool Grew = false;
    for (uint32_t T = 0; T < Width; ++T) {
      if (O[T] > S[T]) {
        S[T] = O[T];
        OnGrow(T);
        Grew = true;
      }
    }
    if (Grew)
      Single = kWide; // Conservative: recomputing exactly is not worth it.
    return Grew;
  }

  /// Slot-wise max of \p Other into this. Returns true iff any slot grew.
  bool joinFrom(const VectorClock &Other) {
    return joinFrom(Other, [](uint32_t) {});
  }

  bool operator==(const VectorClock &Other) const {
    if (Width != Other.Width)
      return false;
    const uint64_t *A = slots(), *B = Other.slots();
    return std::equal(A, A + Width, B);
  }

private:
  static constexpr int32_t kEmpty = -2;
  static constexpr int32_t kWide = -1;

  uint64_t *slots() {
    return Width <= InlineSlots ? Inline : Spill.data();
  }
  const uint64_t *slots() const {
    return Width <= InlineSlots ? Inline : Spill.data();
  }

  uint32_t Width = 0;
  /// Epoch cache: slot index of the single nonzero entry, kEmpty when all
  /// zero, kWide when (possibly) more than one entry is set.
  int32_t Single = kEmpty;
  uint64_t Inline[InlineSlots] = {};
  std::vector<uint64_t> Spill;
};

} // namespace vc
} // namespace dc

#endif // DC_VC_VECTORCLOCK_H
