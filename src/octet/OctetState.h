//===- octet/OctetState.h - Octet per-object locality states ----*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Octet (Bond et al., OOPSLA 2013) tracks a locality state per object:
/// WrEx_T (write-exclusive for thread T), RdEx_T (read-exclusive), and
/// RdSh_c (read-shared, stamped with a global counter value c). We add two
/// bookkeeping states: Untouched (freshly allocated, no accessor yet — the
/// first access takes ownership without coordination, like allocation does
/// in the paper) and the intermediate states the coordination protocol
/// parks an object in while a conflicting transition is in flight.
///
/// The state packs into the one atomic metadata word each HeapObject
/// carries: low 3 bits = kind, upper bits = owner tid or RdSh counter.
///
//===----------------------------------------------------------------------===//

#ifndef DC_OCTET_OCTETSTATE_H
#define DC_OCTET_OCTETSTATE_H

#include <cstdint>
#include <string>

namespace dc {
namespace octet {

enum class StateKind : uint8_t {
  Untouched = 0,
  WrEx = 1,
  RdEx = 2,
  RdSh = 3,
  IntWrEx = 4, ///< Transitioning to WrEx(requester); payload = requester.
  IntRdEx = 5, ///< Transitioning to RdEx(requester); payload = requester.
};

/// Decoded form of the per-object metadata word.
struct OctetState {
  StateKind Kind = StateKind::Untouched;
  uint32_t Owner = 0;   ///< WrEx/RdEx owner, or intermediate requester.
  uint64_t Counter = 0; ///< RdSh only.

  bool operator==(const OctetState &O) const {
    return Kind == O.Kind && Owner == O.Owner && Counter == O.Counter;
  }
};

inline uint64_t encodeState(StateKind Kind, uint64_t Payload) {
  return (Payload << 3) | static_cast<uint64_t>(Kind);
}

inline uint64_t encodeOwned(StateKind Kind, uint32_t Owner) {
  return encodeState(Kind, Owner);
}

inline uint64_t encodeRdSh(uint64_t Counter) {
  return encodeState(StateKind::RdSh, Counter);
}

inline StateKind kindOf(uint64_t Word) {
  return static_cast<StateKind>(Word & 7);
}

inline uint64_t payloadOf(uint64_t Word) { return Word >> 3; }

inline OctetState decodeState(uint64_t Word) {
  OctetState S;
  S.Kind = kindOf(Word);
  if (S.Kind == StateKind::RdSh)
    S.Counter = payloadOf(Word);
  else if (S.Kind != StateKind::Untouched)
    S.Owner = static_cast<uint32_t>(payloadOf(Word));
  return S;
}

/// Renders a state for diagnostics, e.g. "WrEx(2)" or "RdSh(17)".
std::string toString(const OctetState &S);

} // namespace octet
} // namespace dc

#endif // DC_OCTET_OCTETSTATE_H
