//===- octet/OctetManager.cpp ---------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "octet/OctetManager.h"

#include <cassert>

#include "support/SpinLock.h"

using namespace dc;
using namespace dc::octet;

namespace {
constexpr uint64_t StatusExecuting = 0;
constexpr uint64_t StatusBlockedBit = 1;
constexpr uint64_t HoldInc = 2;

bool isBlocked(uint64_t Status) { return (Status & StatusBlockedBit) != 0; }
uint64_t holdCount(uint64_t Status) { return Status >> 1; }
} // namespace

std::string octet::toString(const OctetState &S) {
  switch (S.Kind) {
  case StateKind::Untouched:
    return "Untouched";
  case StateKind::WrEx:
    return "WrEx(" + std::to_string(S.Owner) + ")";
  case StateKind::RdEx:
    return "RdEx(" + std::to_string(S.Owner) + ")";
  case StateKind::RdSh:
    return "RdSh(" + std::to_string(S.Counter) + ")";
  case StateKind::IntWrEx:
    return "IntWrEx(" + std::to_string(S.Owner) + ")";
  case StateKind::IntRdEx:
    return "IntRdEx(" + std::to_string(S.Owner) + ")";
  }
  return "?";
}

OctetListener::~OctetListener() = default;

/// An explicit-protocol request, stack-allocated by the requester, which
/// does not return until the request reaches Done — so responder-side
/// pointers never dangle.
struct OctetManager::Request {
  enum class State : uint8_t { Pending, Taken, Done };
  std::atomic<State> St{State::Pending};
  std::atomic<Request *> Next{nullptr};
  Transition T;
};

OctetManager::OctetManager(rt::Heap &Heap, uint32_t NumThreads,
                           OctetListener *Listener, StatisticRegistry &Stats,
                           const std::atomic<bool> *Abort)
    : Heap(Heap), NumThreads(NumThreads), Listener(Listener), Stats(Stats),
      Abort(Abort), Threads(NumThreads) {}

OctetManager::~OctetManager() = default;

void OctetManager::threadStarted(uint32_t Tid) {
  // Threads begin "blocked"; starting is an unblock (there may already be
  // holds from requesters that coordinated with the not-yet-started thread).
  unblocked(Tid);
}

void OctetManager::threadExited(uint32_t Tid) {
  // Exited threads stay blocked forever; requesters use the implicit
  // protocol against them.
  aboutToBlock(Tid);
}

void OctetManager::aboutToBlock(uint32_t Tid) {
  // A blocking point is a safe point: answer outstanding requests first so
  // none are stranded, then advertise the blocked state.
  drainMailbox(Tid);
  PerThread &T = Threads[Tid];
  assert(!isBlocked(T.Status.load(std::memory_order_relaxed)) &&
         "aboutToBlock on an already-blocked thread");
  T.Status.store(StatusBlockedBit, std::memory_order_release);
}

void OctetManager::unblocked(uint32_t Tid) {
  PerThread &T = Threads[Tid];
  YieldBackoff BO;
  for (;;) {
    uint64_t St = T.Status.load(std::memory_order_acquire);
    assert(isBlocked(St) && "unblocked() on an executing thread");
    if (holdCount(St) == 0 &&
        T.Status.compare_exchange_weak(St, StatusExecuting,
                                       std::memory_order_acq_rel))
      return;
    if (aborted()) {
      T.Status.store(StatusExecuting, std::memory_order_release);
      return;
    }
    BO.pause();
  }
}

void OctetManager::slowRead(rt::ThreadContext &TC, rt::ObjectId Obj) {
  std::atomic<uint64_t> &Word = Heap.object(Obj).MetaWord;
  YieldBackoff BO;
  for (;;) {
    if (aborted())
      return;
    uint64_t W = Word.load(std::memory_order_acquire);
    StateKind K = kindOf(W);
    uint64_t Pay = payloadOf(W);
    switch (K) {
    case StateKind::Untouched:
      // First accessor claims the object; no dependence possible.
      if (Word.compare_exchange_weak(W, encodeOwned(StateKind::RdEx, TC.Tid),
                                     std::memory_order_acq_rel)) {
        ++counters(TC.Tid).Claims;
        if (Listener)
          Listener->onBecameRdEx(TC.Tid);
        return;
      }
      break;
    case StateKind::WrEx:
      if (Pay == TC.Tid)
        return;
      // Conflicting transition WrEx_T1 -> RdEx_T2.
      if (Word.compare_exchange_weak(W, encodeOwned(StateKind::IntRdEx,
                                                    TC.Tid),
                                     std::memory_order_acq_rel)) {
        coordinate(TC, Obj, W, encodeOwned(StateKind::RdEx, TC.Tid));
        return;
      }
      break;
    case StateKind::RdEx: {
      if (Pay == TC.Tid)
        return;
      // Upgrading transition RdEx_T1 -> RdSh_c: a CAS stamping a fresh
      // global counter value; no coordination (T1 may keep reading).
      uint64_t C = GRdShCnt.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (Word.compare_exchange_weak(W, encodeRdSh(C),
                                     std::memory_order_acq_rel)) {
        rdShCnt(TC.Tid) = C;
        ++counters(TC.Tid).UpgradeRdSh;
        if (Listener)
          Listener->onUpgradeToRdSh(TC.Tid, static_cast<uint32_t>(Pay), C);
        return;
      }
      break; // Lost the race; the burned counter value is harmless.
    }
    case StateKind::RdSh:
      if (rdShCnt(TC.Tid) < Pay) {
        // Fence transition: catch this thread up to the RdSh counter,
        // establishing happens-before from the transition to RdSh.
        std::atomic_thread_fence(std::memory_order_acquire);
        rdShCnt(TC.Tid) = Pay;
        ++counters(TC.Tid).Fence;
        if (Listener)
          Listener->onFence(TC.Tid);
      }
      return;
    case StateKind::IntWrEx:
    case StateKind::IntRdEx:
      // Another thread's coordination is in flight. Spinning here is a
      // safe point — keep answering requests so two coordinating threads
      // cannot deadlock on each other.
      pollSafePoint(TC.Tid);
      BO.pause();
      break;
    }
  }
}

void OctetManager::slowWrite(rt::ThreadContext &TC, rt::ObjectId Obj) {
  std::atomic<uint64_t> &Word = Heap.object(Obj).MetaWord;
  YieldBackoff BO;
  for (;;) {
    if (aborted())
      return;
    uint64_t W = Word.load(std::memory_order_acquire);
    StateKind K = kindOf(W);
    uint64_t Pay = payloadOf(W);
    switch (K) {
    case StateKind::Untouched:
      if (Word.compare_exchange_weak(W, encodeOwned(StateKind::WrEx, TC.Tid),
                                     std::memory_order_acq_rel)) {
        ++counters(TC.Tid).Claims;
        return;
      }
      break;
    case StateKind::WrEx:
      if (Pay == TC.Tid)
        return;
      if (Word.compare_exchange_weak(W, encodeOwned(StateKind::IntWrEx,
                                                    TC.Tid),
                                     std::memory_order_acq_rel)) {
        coordinate(TC, Obj, W, encodeOwned(StateKind::WrEx, TC.Tid));
        return;
      }
      break;
    case StateKind::RdEx:
      if (Pay == TC.Tid) {
        // Upgrading transition RdEx_T -> WrEx_T; ICD safely ignores it
        // (any new dependence is already implied transitively).
        if (Word.compare_exchange_weak(W, encodeOwned(StateKind::WrEx,
                                                      TC.Tid),
                                       std::memory_order_acq_rel)) {
          ++counters(TC.Tid).UpgradeWrEx;
          return;
        }
        break;
      }
      if (Word.compare_exchange_weak(W, encodeOwned(StateKind::IntWrEx,
                                                    TC.Tid),
                                     std::memory_order_acq_rel)) {
        coordinate(TC, Obj, W, encodeOwned(StateKind::WrEx, TC.Tid));
        return;
      }
      break;
    case StateKind::RdSh:
      // Conflicting transition RdSh -> WrEx_T: coordinate with all other
      // threads (any of them may have been reading).
      if (Word.compare_exchange_weak(W, encodeOwned(StateKind::IntWrEx,
                                                    TC.Tid),
                                     std::memory_order_acq_rel)) {
        coordinate(TC, Obj, W, encodeOwned(StateKind::WrEx, TC.Tid));
        return;
      }
      break;
    case StateKind::IntWrEx:
    case StateKind::IntRdEx:
      pollSafePoint(TC.Tid);
      BO.pause();
      break;
    }
  }
}

void OctetManager::coordinate(rt::ThreadContext &TC, rt::ObjectId Obj,
                              uint64_t OldWord, uint64_t NewWord) {
  Transition T;
  T.Requester = TC.Tid;
  T.Obj = Obj;
  T.Old = decodeState(OldWord);
  T.New = decodeState(NewWord);
  ++counters(TC.Tid).Conflicting;

  if (T.Old.Kind == StateKind::RdSh) {
    for (uint32_t Resp = 0; Resp < NumThreads; ++Resp)
      if (Resp != TC.Tid)
        roundtrip(TC, Resp, T);
  } else {
    assert(T.Old.Owner != TC.Tid && "conflict with self");
    roundtrip(TC, T.Old.Owner, T);
  }

  Heap.object(Obj).MetaWord.store(NewWord, std::memory_order_release);
  if (T.New.Kind == StateKind::RdEx && Listener)
    Listener->onBecameRdEx(TC.Tid);
}

void OctetManager::roundtrip(rt::ThreadContext &TC, uint32_t RespTid,
                             const Transition &T) {
  PerThread &Resp = Threads[RespTid];
  Request Req;
  Req.T = T;
  bool Pushed = false;
  YieldBackoff BO;
  for (;;) {
    if (aborted())
      return;
    uint64_t St = Resp.Status.load(std::memory_order_acquire);
    if (isBlocked(St)) {
      if (!Resp.Status.compare_exchange_weak(St, St + HoldInc,
                                             std::memory_order_acq_rel))
        continue;
      // Implicit protocol: the responder is blocked and held; act on its
      // behalf. Draining its mailbox also answers requests from other
      // requesters (and our own, if we already posted it).
      drainMailbox(RespTid);
      if (!Pushed) {
        notifyConflicting(RespTid, T);
      } else {
        // Our posted request was either drained above or is being handled
        // by a concurrent holder; wait for it to reach Done.
        while (Req.St.load(std::memory_order_acquire) !=
                   Request::State::Done &&
               !aborted())
          BO.pause();
      }
      Resp.Status.fetch_sub(HoldInc, std::memory_order_acq_rel);
      ++counters(TC.Tid).ImplicitRoundtrips;
      return;
    }
    // Responder is executing: explicit protocol. Post a request and wait
    // for the responder's next safe point.
    if (!Pushed) {
      Request *Head = Resp.MailboxHead.load(std::memory_order_relaxed);
      do {
        Req.Next.store(Head, std::memory_order_relaxed);
      } while (!Resp.MailboxHead.compare_exchange_weak(
          Head, &Req, std::memory_order_release,
          std::memory_order_relaxed));
      Pushed = true;
    }
    if (Req.St.load(std::memory_order_acquire) == Request::State::Done) {
      ++counters(TC.Tid).ExplicitRoundtrips;
      return;
    }
    // While waiting we are at a safe point ourselves; answer requests so
    // two simultaneous coordinations cannot deadlock.
    pollSafePoint(TC.Tid);
    BO.pause();
  }
}

void OctetManager::drainMailbox(uint32_t Tid) {
  Request *Head = mailboxHead(Tid).exchange(nullptr,
                                            std::memory_order_acq_rel);
  while (Head != nullptr) {
    // Read Next before publishing Done: once Done, the requester may
    // deallocate the request.
    Request *Next = Head->Next.load(std::memory_order_relaxed);
    Request::State Expected = Request::State::Pending;
    if (Head->St.compare_exchange_strong(Expected, Request::State::Taken,
                                         std::memory_order_acq_rel)) {
      notifyConflicting(Tid, Head->T);
      Head->St.store(Request::State::Done, std::memory_order_release);
    }
    Head = Next;
  }
}

void OctetManager::notifyConflicting(uint32_t RespTid, const Transition &T) {
  // Reached from exactly two places, which is what backs the listener's
  // quiescence contract: drainMailbox (the executing thread is RespTid at
  // its own safe point, or a requester draining on behalf of a blocked,
  // held RespTid) and roundtrip's implicit path (RespTid blocked and
  // held). In every case RespTid cannot concurrently begin or end a
  // transaction, and the requester named in T is the executing thread or
  // is spinning in roundtrip().
  if (Listener)
    Listener->onConflictingEdge(RespTid, T);
}

void OctetManager::flushStatistics() {
  Counters Sum;
  for (uint32_t T = 0; T < NumThreads; ++T) {
    const Counters &C = Threads[T].C;
    Sum.FastRead += C.FastRead;
    Sum.FastWrite += C.FastWrite;
    Sum.Claims += C.Claims;
    Sum.Conflicting += C.Conflicting;
    Sum.UpgradeWrEx += C.UpgradeWrEx;
    Sum.UpgradeRdSh += C.UpgradeRdSh;
    Sum.Fence += C.Fence;
    Sum.ExplicitRoundtrips += C.ExplicitRoundtrips;
    Sum.ImplicitRoundtrips += C.ImplicitRoundtrips;
  }
  Stats.get("octet.fast_read").add(Sum.FastRead);
  Stats.get("octet.fast_write").add(Sum.FastWrite);
  Stats.get("octet.claims").add(Sum.Claims);
  Stats.get("octet.conflicting").add(Sum.Conflicting);
  Stats.get("octet.upgrade_wrex").add(Sum.UpgradeWrEx);
  Stats.get("octet.upgrade_rdsh").add(Sum.UpgradeRdSh);
  Stats.get("octet.fence").add(Sum.Fence);
  Stats.get("octet.explicit_roundtrips").add(Sum.ExplicitRoundtrips);
  Stats.get("octet.implicit_roundtrips").add(Sum.ImplicitRoundtrips);
}
