//===- octet/OctetManager.cpp ---------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "octet/OctetManager.h"

#include <cassert>
#include <chrono>
#include <thread>

#include "support/SpinLock.h"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#include <ctime>
#endif

using namespace dc;
using namespace dc::octet;

namespace {
constexpr uint64_t StatusExecuting = 0;
constexpr uint64_t StatusBlockedBit = 1;
constexpr uint64_t HoldInc = 2;

bool isBlocked(uint64_t Status) { return (Status & StatusBlockedBit) != 0; }
uint64_t holdCount(uint64_t Status) { return Status >> 1; }

/// Spin iterations (each a YieldBackoff::pause, so mostly sched_yield once
/// warm) a coordination wait performs before parking on the futex word.
constexpr unsigned SpinsBeforePark = 64;

/// Parked threads must stay abort-responsive even if their waker dies (the
/// watchdog aborts runs whose workers are wedged), so every park is timed:
/// C++20 std::atomic::wait has no timeout, hence a raw futex with a 1 ms
/// slice on Linux and a bounded sleep elsewhere. The slice also bounds the
/// cost of any wakeup race the Dekker pairing does not cover to one
/// millisecond instead of a hang.
constexpr long ParkSliceNs = 1000000;

static_assert(std::atomic<uint32_t>::is_always_lock_free,
              "futex parking requires a lock-free 32-bit atomic");

void parkWait(std::atomic<uint32_t> &Word, uint32_t Expected) {
#if defined(__linux__)
  timespec Ts = {0, ParkSliceNs};
  syscall(SYS_futex, reinterpret_cast<uint32_t *>(&Word), FUTEX_WAIT_PRIVATE,
          Expected, &Ts, nullptr, 0);
#else
  if (Word.load(std::memory_order_acquire) == Expected)
    std::this_thread::sleep_for(std::chrono::nanoseconds(ParkSliceNs));
#endif
}

void parkWake(std::atomic<uint32_t> &Word) {
#if defined(__linux__)
  syscall(SYS_futex, reinterpret_cast<uint32_t *>(&Word), FUTEX_WAKE_PRIVATE,
          1, nullptr, nullptr, 0);
#else
  (void)Word; // parkWait's bounded sleep substitutes for the wake.
#endif
}

/// Index into the per-kind roundtrip counters. The four conflicting
/// transitions of Table 1: RdSh->WrEx fans out to all threads; the other
/// three have a single responder.
unsigned kindIndex(const Transition &T) {
  if (T.Old.Kind == StateKind::RdSh)
    return 0; // rdsh_wrex
  if (T.Old.Kind == StateKind::WrEx)
    return T.New.Kind == StateKind::WrEx ? 1  // wrex_wrex
                                         : 2; // wrex_rdex
  return 3;                                   // rdex_wrex
}

const char *const KindNames[] = {"rdsh_wrex", "wrex_wrex", "wrex_rdex",
                                 "rdex_wrex"};
} // namespace

std::string octet::toString(const OctetState &S) {
  switch (S.Kind) {
  case StateKind::Untouched:
    return "Untouched";
  case StateKind::WrEx:
    return "WrEx(" + std::to_string(S.Owner) + ")";
  case StateKind::RdEx:
    return "RdEx(" + std::to_string(S.Owner) + ")";
  case StateKind::RdSh:
    return "RdSh(" + std::to_string(S.Counter) + ")";
  case StateKind::IntWrEx:
    return "IntWrEx(" + std::to_string(S.Owner) + ")";
  case StateKind::IntRdEx:
    return "IntRdEx(" + std::to_string(S.Owner) + ")";
  }
  return "?";
}

OctetListener::~OctetListener() = default;

/// An explicit-protocol request. Requests live in a per-requester pool with
/// one slot per responder tid (PerThread::Requests), so a responder-side
/// pointer can never dangle: the pool outlives every mailbox it is linked
/// into. (The seed stack-allocated requests in the roundtrip frame, and its
/// abort path could return while the request was still linked — a later
/// drain then wrote Done into a dead frame.)
///
/// A slot is at rest in Done. Posting arms it to Pending; a drainer claims
/// the exactly-once callback via CAS Pending->Taken and publishes Done; the
/// abort path retires a posted slot via CAS Pending->Cancelled — a drainer
/// that still holds it in a detached list skips non-Pending slots — and
/// waits out a slot already Taken.
struct OctetManager::Request {
  enum class State : uint8_t { Pending, Taken, Done, Cancelled };
  std::atomic<State> St{State::Done};
  std::atomic<Request *> Next{nullptr};
  Transition T;
};

OctetManager::OctetManager(rt::Heap &Heap, uint32_t NumThreads,
                           OctetListener *Listener, StatisticRegistry &Stats,
                           const std::atomic<bool> *Abort,
                           bool SerialRoundtrips)
    : Heap(Heap), NumThreads(NumThreads), Listener(Listener), Stats(Stats),
      Abort(Abort), SerialRoundtrips(SerialRoundtrips), Threads(NumThreads) {
  for (uint32_t T = 0; T < NumThreads; ++T) {
    Threads[T].Requests = std::make_unique<Request[]>(NumThreads);
    Threads[T].PostedScratch.reserve(NumThreads);
  }
}

OctetManager::~OctetManager() = default;

void OctetManager::threadStarted(uint32_t Tid) {
  // Threads begin "blocked"; starting is an unblock (there may already be
  // holds from requesters that coordinated with the not-yet-started thread).
  unblocked(Tid);
}

void OctetManager::threadExited(uint32_t Tid) {
  // Exited threads stay blocked forever; requesters use the implicit
  // protocol against them.
  aboutToBlock(Tid);
}

void OctetManager::aboutToBlock(uint32_t Tid) {
  // A blocking point is a safe point: answer outstanding requests first so
  // none are stranded, then advertise the blocked state.
  drainMailbox(Tid);
  PerThread &T = Threads[Tid];
  assert(!isBlocked(T.Status.load(std::memory_order_relaxed)) &&
         "aboutToBlock on an already-blocked thread");
  T.Status.store(StatusBlockedBit, std::memory_order_seq_cst);
  // A requester may have loaded our Executing status and pushed between the
  // drain above and the store. Both sides of that race are seq_cst: the
  // pusher re-loads our Status after its push and rescues (hold + drain) if
  // it sees the blocked bit, and this second drain catches any push the
  // total order places before the store — so one of the two always answers
  // the request and a parked requester cannot be stranded (DESIGN.md §11).
  // The mailbox is almost always empty here and the re-drain is one load.
  drainMailbox(Tid);
}

void OctetManager::unblocked(uint32_t Tid) {
  PerThread &T = Threads[Tid];
  YieldBackoff BO;
  unsigned Spins = 0;
  for (;;) {
    uint64_t St = T.Status.load(std::memory_order_acquire);
    assert(isBlocked(St) && "unblocked() on an executing thread");
    while (holdCount(St) == 0) {
      if (T.Status.compare_exchange_weak(St, StatusExecuting,
                                         std::memory_order_acq_rel))
        return;
      // compare_exchange_weak reloaded St: retry immediately while the
      // hold count is still zero (spurious failure), fall through to the
      // backoff below once a requester has placed a new hold.
    }
    if (aborted()) {
      T.Status.store(StatusExecuting, std::memory_order_release);
      return;
    }
    if (SerialRoundtrips || Spins < SpinsBeforePark) {
      ++Spins;
      ++counters(Tid).WaitSpins;
      BO.pause();
      continue;
    }
    // Holds are released with seq_cst and releaseHold() wakes us; no
    // mailbox check — while we are blocked, whoever posted is responsible
    // for draining (rescue or hold), not us.
    parkSelf(Tid, /*CheckMailbox=*/false, [&T] {
      return holdCount(T.Status.load(std::memory_order_seq_cst)) == 0;
    });
  }
}

void OctetManager::slowRead(rt::ThreadContext &TC, rt::ObjectId Obj) {
  std::atomic<uint64_t> &Word = Heap.object(Obj).MetaWord;
  YieldBackoff BO;
  unsigned IntSpins = 0;
  for (;;) {
    if (aborted())
      return;
    uint64_t W = Word.load(std::memory_order_acquire);
    StateKind K = kindOf(W);
    uint64_t Pay = payloadOf(W);
    switch (K) {
    case StateKind::Untouched:
      // First accessor claims the object; no dependence possible.
      if (Word.compare_exchange_weak(W, encodeOwned(StateKind::RdEx, TC.Tid),
                                     std::memory_order_acq_rel)) {
        ++counters(TC.Tid).Claims;
        if (Listener)
          Listener->onBecameRdEx(TC.Tid);
        return;
      }
      break;
    case StateKind::WrEx:
      if (Pay == TC.Tid)
        return;
      // Conflicting transition WrEx_T1 -> RdEx_T2.
      if (Word.compare_exchange_weak(W, encodeOwned(StateKind::IntRdEx,
                                                    TC.Tid),
                                     std::memory_order_acq_rel)) {
        coordinate(TC, Obj, W, encodeOwned(StateKind::RdEx, TC.Tid));
        return;
      }
      break;
    case StateKind::RdEx: {
      if (Pay == TC.Tid)
        return;
      // Upgrading transition RdEx_T1 -> RdSh_c: a CAS stamping a fresh
      // global counter value; no coordination (T1 may keep reading).
      uint64_t C = GRdShCnt.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (Word.compare_exchange_weak(W, encodeRdSh(C),
                                     std::memory_order_acq_rel)) {
        rdShCnt(TC.Tid) = C;
        ++counters(TC.Tid).UpgradeRdSh;
        if (Listener)
          Listener->onUpgradeToRdSh(TC.Tid, static_cast<uint32_t>(Pay), C);
        return;
      }
      break; // Lost the race; the burned counter value is harmless.
    }
    case StateKind::RdSh:
      if (rdShCnt(TC.Tid) < Pay) {
        // Fence transition: catch this thread up to the RdSh counter,
        // establishing happens-before from the transition to RdSh.
        std::atomic_thread_fence(std::memory_order_acquire);
        rdShCnt(TC.Tid) = Pay;
        ++counters(TC.Tid).Fence;
        if (Listener)
          Listener->onFence(TC.Tid);
      }
      return;
    case StateKind::IntWrEx:
    case StateKind::IntRdEx:
      // Another thread's coordination is in flight. Waiting here is a safe
      // point — keep answering requests so two coordinating threads cannot
      // deadlock on each other. After the spin bound, park until the
      // coordinator's final store (which wakes intermediate waiters).
      pollSafePoint(TC.Tid);
      if (SerialRoundtrips || IntSpins < SpinsBeforePark) {
        ++IntSpins;
        ++counters(TC.Tid).WaitSpins;
        BO.pause();
      } else {
        parkSelf(TC.Tid, /*CheckMailbox=*/true, [&Word, W] {
          return Word.load(std::memory_order_seq_cst) != W;
        });
      }
      break;
    }
  }
}

void OctetManager::slowWrite(rt::ThreadContext &TC, rt::ObjectId Obj) {
  std::atomic<uint64_t> &Word = Heap.object(Obj).MetaWord;
  YieldBackoff BO;
  unsigned IntSpins = 0;
  for (;;) {
    if (aborted())
      return;
    uint64_t W = Word.load(std::memory_order_acquire);
    StateKind K = kindOf(W);
    uint64_t Pay = payloadOf(W);
    switch (K) {
    case StateKind::Untouched:
      if (Word.compare_exchange_weak(W, encodeOwned(StateKind::WrEx, TC.Tid),
                                     std::memory_order_acq_rel)) {
        ++counters(TC.Tid).Claims;
        return;
      }
      break;
    case StateKind::WrEx:
      if (Pay == TC.Tid)
        return;
      if (Word.compare_exchange_weak(W, encodeOwned(StateKind::IntWrEx,
                                                    TC.Tid),
                                     std::memory_order_acq_rel)) {
        coordinate(TC, Obj, W, encodeOwned(StateKind::WrEx, TC.Tid));
        return;
      }
      break;
    case StateKind::RdEx:
      if (Pay == TC.Tid) {
        // Upgrading transition RdEx_T -> WrEx_T; ICD safely ignores it
        // (any new dependence is already implied transitively).
        if (Word.compare_exchange_weak(W, encodeOwned(StateKind::WrEx,
                                                      TC.Tid),
                                       std::memory_order_acq_rel)) {
          ++counters(TC.Tid).UpgradeWrEx;
          return;
        }
        break;
      }
      if (Word.compare_exchange_weak(W, encodeOwned(StateKind::IntWrEx,
                                                    TC.Tid),
                                     std::memory_order_acq_rel)) {
        coordinate(TC, Obj, W, encodeOwned(StateKind::WrEx, TC.Tid));
        return;
      }
      break;
    case StateKind::RdSh:
      // Conflicting transition RdSh -> WrEx_T: coordinate with all other
      // threads (any of them may have been reading).
      if (Word.compare_exchange_weak(W, encodeOwned(StateKind::IntWrEx,
                                                    TC.Tid),
                                     std::memory_order_acq_rel)) {
        coordinate(TC, Obj, W, encodeOwned(StateKind::WrEx, TC.Tid));
        return;
      }
      break;
    case StateKind::IntWrEx:
    case StateKind::IntRdEx:
      pollSafePoint(TC.Tid);
      if (SerialRoundtrips || IntSpins < SpinsBeforePark) {
        ++IntSpins;
        ++counters(TC.Tid).WaitSpins;
        BO.pause();
      } else {
        parkSelf(TC.Tid, /*CheckMailbox=*/true, [&Word, W] {
          return Word.load(std::memory_order_seq_cst) != W;
        });
      }
      break;
    }
  }
}

void OctetManager::coordinate(rt::ThreadContext &TC, rt::ObjectId Obj,
                              uint64_t OldWord, uint64_t NewWord) {
  Transition T;
  T.Requester = TC.Tid;
  T.Obj = Obj;
  T.Old = decodeState(OldWord);
  T.New = decodeState(NewWord);
  ++counters(TC.Tid).Conflicting;
  const unsigned Kind = kindIndex(T);

  if (SerialRoundtrips) {
    // The seed protocol: complete each roundtrip before starting the next.
    if (T.Old.Kind == StateKind::RdSh) {
      for (uint32_t Resp = 0; Resp < NumThreads; ++Resp)
        if (Resp != TC.Tid)
          serialRoundtrip(TC, Resp, T, Kind);
    } else {
      assert(T.Old.Owner != TC.Tid && "conflict with self");
      serialRoundtrip(TC, T.Old.Owner, T, Kind);
    }
  } else {
    fanOut(TC, T, Kind);
  }

  // The final store ends the intermediate state; seq_cst pairs with the
  // Parked flag of threads spinning-then-parking on this word in
  // slowRead/slowWrite.
  Heap.object(Obj).MetaWord.store(NewWord, std::memory_order_seq_cst);
  if (!SerialRoundtrips)
    for (uint32_t W = 0; W < NumThreads; ++W)
      if (W != TC.Tid)
        maybeWake(W);
  if (T.New.Kind == StateKind::RdEx && Listener)
    Listener->onBecameRdEx(TC.Tid);
}

void OctetManager::fanOut(rt::ThreadContext &TC, const Transition &T,
                          unsigned Kind) {
  // Phase 1: one walk over the responders. Blocked responders are held and
  // handled implicitly on the spot; executing responders get a request
  // posted from this thread's pooled per-responder block, without waiting
  // for the previous responder's answer.
  std::vector<uint32_t> &Posted = Threads[TC.Tid].PostedScratch;
  Posted.clear();
  Counters &C = counters(TC.Tid);
  uint32_t Responders = 0;
  if (T.Old.Kind == StateKind::RdSh) {
    for (uint32_t Resp = 0; Resp < NumThreads; ++Resp)
      if (Resp != TC.Tid) {
        ++Responders;
        visitResponder(TC, Resp, T, Kind, Posted);
      }
  } else {
    assert(T.Old.Owner != TC.Tid && "conflict with self");
    Responders = 1;
    visitResponder(TC, T.Old.Owner, T, Kind, Posted);
  }
  ++C.FanoutBatches;
  C.FanoutResponders += Responders;
  // Phase 2: wait for every outstanding request together.
  if (!Posted.empty())
    waitForRequests(TC, Kind, Posted);
}

void OctetManager::visitResponder(rt::ThreadContext &TC, uint32_t RespTid,
                                  const Transition &T, unsigned Kind,
                                  std::vector<uint32_t> &Posted) {
  PerThread &Resp = Threads[RespTid];
  Counters &C = counters(TC.Tid);
  for (;;) {
    if (aborted())
      return; // Requests already posted are cancelled by waitForRequests.
    uint64_t St = Resp.Status.load(std::memory_order_acquire);
    if (isBlocked(St)) {
      if (!Resp.Status.compare_exchange_weak(St, St + HoldInc,
                                             std::memory_order_acq_rel))
        continue;
      // Implicit protocol: the responder is blocked and held; act on its
      // behalf. Draining its mailbox also answers requests from other
      // requesters stranded by the block.
      drainMailbox(RespTid);
      notifyConflicting(RespTid, T);
      releaseHold(RespTid);
      ++C.ImplicitRoundtrips;
      ++C.ImplicitByKind[Kind];
      return;
    }
    // Responder is executing: explicit protocol. Arm this thread's slot for
    // RespTid and push it; the answer is collected in phase 2.
    Request &Req = Threads[TC.Tid].Requests[RespTid];
    assert(Req.St.load(std::memory_order_relaxed) == Request::State::Done &&
           "request slot reused while still in flight");
    Req.T = T;
    Req.St.store(Request::State::Pending, std::memory_order_relaxed);
    Request *Head = Resp.MailboxHead.load(std::memory_order_relaxed);
    do {
      Req.Next.store(Head, std::memory_order_relaxed);
    } while (!Resp.MailboxHead.compare_exchange_weak(
        Head, &Req, std::memory_order_seq_cst, std::memory_order_relaxed));
    maybeWake(RespTid);
    // The responder may have blocked between the status load above and the
    // push, with its pre-block drain missing the request. The push and this
    // re-load are seq_cst, pairing with aboutToBlock's store + re-drain: if
    // its second drain did not catch the request, we must see the blocked
    // bit here — rescue by draining on its behalf.
    if (isBlocked(Resp.Status.load(std::memory_order_seq_cst)))
      rescueBlocked(TC, RespTid);
    Posted.push_back(RespTid);
    return;
  }
}

void OctetManager::waitForRequests(rt::ThreadContext &TC, unsigned Kind,
                                   const std::vector<uint32_t> &Posted) {
  Counters &C = counters(TC.Tid);
  Request *Slots = Threads[TC.Tid].Requests.get();
  YieldBackoff BO;
  unsigned Spins = 0;
  for (;;) {
    bool AllDone = true;
    for (uint32_t Resp : Posted)
      if (Slots[Resp].St.load(std::memory_order_acquire) !=
          Request::State::Done) {
        AllDone = false;
        break;
      }
    if (AllDone)
      break;
    if (aborted()) {
      cancelOutstanding(TC, Posted);
      return;
    }
    // Waiting is a safe point ourselves: keep answering requests so
    // simultaneous coordinations cannot deadlock on each other.
    pollSafePoint(TC.Tid);
    if (Spins < SpinsBeforePark) {
      ++Spins;
      ++C.WaitSpins;
      BO.pause();
      continue;
    }
    // Before parking, sweep for responders that blocked with our request
    // still Pending. The post-time rescue already covers the race; this
    // cheap re-check (it runs at most once per park slice) keeps phase 2
    // live even across a missed edge, e.g. after a spurious timeout wake.
    for (uint32_t Resp : Posted)
      if (Slots[Resp].St.load(std::memory_order_acquire) ==
              Request::State::Pending &&
          isBlocked(Threads[Resp].Status.load(std::memory_order_acquire)))
        rescueBlocked(TC, Resp);
    // Each responder's Done store is seq_cst and wakes us via maybeWake;
    // the mailbox check keeps us responsive to requests posted while we
    // wait (no lost wakeup: the pusher's seq_cst push pairs with our
    // seq_cst Parked store).
    parkSelf(TC.Tid, /*CheckMailbox=*/true, [&] {
      for (uint32_t Resp : Posted)
        if (Slots[Resp].St.load(std::memory_order_seq_cst) !=
            Request::State::Done)
          return false;
      return true;
    });
  }
  C.ExplicitRoundtrips += Posted.size();
  C.ExplicitByKind[Kind] += Posted.size();
}

void OctetManager::serialRoundtrip(rt::ThreadContext &TC, uint32_t RespTid,
                                   const Transition &T, unsigned Kind) {
  PerThread &Resp = Threads[RespTid];
  Request &Req = Threads[TC.Tid].Requests[RespTid];
  bool Pushed = false;
  YieldBackoff BO;
  Counters &C = counters(TC.Tid);
  for (;;) {
    if (aborted()) {
      // The request may still be linked in the responder's mailbox; retire
      // it before the frame goes away (the slot itself is pooled, so even
      // a late drain could not corrupt the stack, but leaving it armed
      // would poison the next coordination's reuse).
      if (Pushed)
        cancelRequest(TC, RespTid);
      return;
    }
    uint64_t St = Resp.Status.load(std::memory_order_acquire);
    if (isBlocked(St)) {
      if (!Resp.Status.compare_exchange_weak(St, St + HoldInc,
                                             std::memory_order_acq_rel))
        continue;
      // Implicit protocol: the responder is blocked and held; act on its
      // behalf. Draining its mailbox also answers requests from other
      // requesters (and our own, if we already posted it).
      drainMailbox(RespTid);
      if (!Pushed) {
        notifyConflicting(RespTid, T);
      } else {
        // Our posted request was either drained above or is being handled
        // by a concurrent holder; wait for it to reach Done. On abort it
        // may still be in that holder's detached list — cancelRequest
        // retires it or waits out a Taken slot.
        while (Req.St.load(std::memory_order_acquire) !=
                   Request::State::Done &&
               !aborted()) {
          ++C.WaitSpins;
          BO.pause();
        }
        if (Req.St.load(std::memory_order_acquire) != Request::State::Done)
          cancelRequest(TC, RespTid);
      }
      releaseHold(RespTid);
      ++C.ImplicitRoundtrips;
      ++C.ImplicitByKind[Kind];
      return;
    }
    // Responder is executing: explicit protocol. Post a request and wait
    // for the responder's next safe point.
    if (!Pushed) {
      assert(Req.St.load(std::memory_order_relaxed) ==
                 Request::State::Done &&
             "request slot reused while still in flight");
      Req.T = T;
      Req.St.store(Request::State::Pending, std::memory_order_relaxed);
      Request *Head = Resp.MailboxHead.load(std::memory_order_relaxed);
      do {
        Req.Next.store(Head, std::memory_order_relaxed);
      } while (!Resp.MailboxHead.compare_exchange_weak(
          Head, &Req, std::memory_order_seq_cst,
          std::memory_order_relaxed));
      maybeWake(RespTid);
      Pushed = true;
    }
    if (Req.St.load(std::memory_order_acquire) == Request::State::Done) {
      ++C.ExplicitRoundtrips;
      ++C.ExplicitByKind[Kind];
      return;
    }
    // While waiting we are at a safe point ourselves; answer requests so
    // two simultaneous coordinations cannot deadlock.
    pollSafePoint(TC.Tid);
    ++C.WaitSpins;
    BO.pause();
  }
}

void OctetManager::rescueBlocked(rt::ThreadContext &TC, uint32_t RespTid) {
  PerThread &Resp = Threads[RespTid];
  for (;;) {
    uint64_t St = Resp.Status.load(std::memory_order_acquire);
    if (!isBlocked(St))
      return; // Running again: it drains at its next safe point or block.
    if (Resp.Status.compare_exchange_weak(St, St + HoldInc,
                                          std::memory_order_acq_rel)) {
      drainMailbox(RespTid);
      releaseHold(RespTid);
      return;
    }
  }
}

void OctetManager::cancelRequest(rt::ThreadContext &TC, uint32_t RespTid) {
  Request &Req = Threads[TC.Tid].Requests[RespTid];
  Request::State Expected = Request::State::Pending;
  if (Req.St.compare_exchange_strong(Expected, Request::State::Cancelled,
                                     std::memory_order_acq_rel)) {
    ++counters(TC.Tid).CancelledRequests;
    return;
  }
  // Already Done, or Taken by a drainer mid-callback: the drainer never
  // blocks between Taken and Done, so this wait is bounded.
  YieldBackoff BO;
  while (Req.St.load(std::memory_order_acquire) != Request::State::Done)
    BO.pause();
}

void OctetManager::cancelOutstanding(rt::ThreadContext &TC,
                                     const std::vector<uint32_t> &Posted) {
  for (uint32_t Resp : Posted)
    cancelRequest(TC, Resp);
}

void OctetManager::releaseHold(uint32_t RespTid) {
  Threads[RespTid].Status.fetch_sub(HoldInc, std::memory_order_seq_cst);
  // The responder may be parked in unblocked() waiting for zero holds.
  maybeWake(RespTid);
}

void OctetManager::maybeWake(uint32_t Tid) {
  PerThread &T = Threads[Tid];
  // Dekker pairing: the caller already mutated the wait condition with
  // seq_cst ordering; the parking side stores Parked (seq_cst) before
  // re-checking the condition. Whichever runs second in the total order
  // observes the other, so either we see Parked here or the parker sees
  // the new condition value and does not sleep.
  if (T.Parked.load(std::memory_order_seq_cst) != 0) {
    T.WakeSeq.fetch_add(1, std::memory_order_seq_cst);
    parkWake(T.WakeSeq);
  }
}

template <typename ReadyFn>
void OctetManager::parkSelf(uint32_t Tid, bool CheckMailbox, ReadyFn Ready) {
  PerThread &Self = Threads[Tid];
  Self.Parked.store(1, std::memory_order_seq_cst);
  uint32_t Seq = Self.WakeSeq.load(std::memory_order_seq_cst);
  if (!Ready() &&
      !(CheckMailbox &&
        Self.MailboxHead.load(std::memory_order_seq_cst) != nullptr) &&
      !aborted()) {
    ++counters(Tid).Parks;
    parkWait(Self.WakeSeq, Seq);
  }
  Self.Parked.store(0, std::memory_order_seq_cst);
}

void OctetManager::drainMailbox(uint32_t Tid) {
  std::atomic<Request *> &Head = mailboxHead(Tid);
  // The hot implicit path drains an empty mailbox; skip the RMW then. The
  // load is seq_cst so aboutToBlock's post-store re-drain participates in
  // the total order with the pusher's seq_cst push (see aboutToBlock) —
  // on x86 this is still an ordinary load.
  if (Head.load(std::memory_order_seq_cst) == nullptr)
    return;
  Request *H = Head.exchange(nullptr, std::memory_order_acq_rel);
  while (H != nullptr) {
    // Read Next before publishing Done: once Done, the requester may
    // rearm and repost the slot. (Cancelled slots are simply unlinked —
    // the pool outlives the mailbox, so reading Next stays safe.)
    Request *Next = H->Next.load(std::memory_order_relaxed);
    Request::State Expected = Request::State::Pending;
    if (H->St.compare_exchange_strong(Expected, Request::State::Taken,
                                      std::memory_order_acq_rel)) {
      const uint32_t Requester = H->T.Requester;
      notifyConflicting(Tid, H->T);
      H->St.store(Request::State::Done, std::memory_order_seq_cst);
      // The requester may be parked in phase 2 on this answer.
      maybeWake(Requester);
    }
    H = Next;
  }
}

void OctetManager::notifyConflicting(uint32_t RespTid, const Transition &T) {
  // Reached from drainMailbox (the executing thread RespTid at its own safe
  // point or blocking point, or a requester draining on behalf of a
  // blocked, held RespTid) and from the implicit paths of visitResponder/
  // serialRoundtrip (RespTid blocked and held). In every case RespTid
  // cannot concurrently begin or end a transaction, and the requester named
  // in T is the executing thread or is waiting in its coordination. Several
  // such callbacks may run concurrently for one responder — see the
  // OctetListener contract in the header.
  if (Listener)
    Listener->onConflictingEdge(RespTid, T);
}

void OctetManager::flushStatistics() {
  Counters Sum;
  for (uint32_t T = 0; T < NumThreads; ++T) {
    const Counters &C = Threads[T].C;
    Sum.FastRead += C.FastRead;
    Sum.FastWrite += C.FastWrite;
    Sum.Claims += C.Claims;
    Sum.Conflicting += C.Conflicting;
    Sum.UpgradeWrEx += C.UpgradeWrEx;
    Sum.UpgradeRdSh += C.UpgradeRdSh;
    Sum.Fence += C.Fence;
    Sum.ExplicitRoundtrips += C.ExplicitRoundtrips;
    Sum.ImplicitRoundtrips += C.ImplicitRoundtrips;
    Sum.WaitSpins += C.WaitSpins;
    Sum.Parks += C.Parks;
    Sum.FanoutBatches += C.FanoutBatches;
    Sum.FanoutResponders += C.FanoutResponders;
    Sum.CancelledRequests += C.CancelledRequests;
    for (unsigned K = 0; K < NumKinds; ++K) {
      Sum.ExplicitByKind[K] += C.ExplicitByKind[K];
      Sum.ImplicitByKind[K] += C.ImplicitByKind[K];
    }
  }
  Stats.get("octet.fast_read").add(Sum.FastRead);
  Stats.get("octet.fast_write").add(Sum.FastWrite);
  Stats.get("octet.claims").add(Sum.Claims);
  Stats.get("octet.conflicting").add(Sum.Conflicting);
  Stats.get("octet.upgrade_wrex").add(Sum.UpgradeWrEx);
  Stats.get("octet.upgrade_rdsh").add(Sum.UpgradeRdSh);
  Stats.get("octet.fence").add(Sum.Fence);
  Stats.get("octet.explicit_roundtrips").add(Sum.ExplicitRoundtrips);
  Stats.get("octet.implicit_roundtrips").add(Sum.ImplicitRoundtrips);
  Stats.get("octet.wait_spins").add(Sum.WaitSpins);
  Stats.get("octet.parks").add(Sum.Parks);
  Stats.get("octet.fanout_batches").add(Sum.FanoutBatches);
  Stats.get("octet.fanout_responders").add(Sum.FanoutResponders);
  Stats.get("octet.cancelled_requests").add(Sum.CancelledRequests);
  for (unsigned K = 0; K < NumKinds; ++K) {
    Stats.get(std::string("octet.explicit_") + KindNames[K])
        .add(Sum.ExplicitByKind[K]);
    Stats.get(std::string("octet.implicit_") + KindNames[K])
        .add(Sum.ImplicitByKind[K]);
  }
}
