//===- octet/OctetManager.h - Octet barriers and coordination ---*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements Octet's read/write barriers and the coordination protocol for
/// conflicting transitions (Table 1 of the paper):
///
///  * Fast paths are synchronization-free checks of the object's state word.
///  * Upgrading transitions (RdEx_T -> WrEx_T by T, RdEx_T1 -> RdSh by T2)
///    are single CAS operations; RdSh upgrades stamp a fresh value of the
///    global gRdShCnt counter, globally ordering all transitions to RdSh.
///  * Fence transitions update the reader's per-thread rdShCnt and issue an
///    acquire fence, establishing happens-before from the RdSh transition.
///  * Conflicting transitions park the object in an intermediate state and
///    perform a roundtrip with each responding thread: the *explicit*
///    protocol posts a request the responder answers at its next safe
///    point; the *implicit* protocol places a hold on a blocked responder
///    and handles the transition on its behalf.
///
/// Coordination is *pipelined* (DESIGN.md §11): phase 1 walks all
/// responders once — blocked responders are handled implicitly on the spot,
/// executing responders get a request posted from the requester's pooled
/// per-responder request block — and phase 2 waits for every outstanding
/// request together. All coordination waits (outstanding requests, the
/// IntWrEx/IntRdEx loops, hold release) spin a bounded number of times and
/// then park on a per-thread futex word; wakers check a Dekker-paired
/// Parked flag so the common uncontended case costs one load. The seed's
/// serial one-roundtrip-at-a-time protocol remains available behind the
/// SerialRoundtrips constructor flag so the fuzzer can differentially test
/// the two on one schedule.
///
/// An OctetListener observes the transitions; ICD implements it to build
/// the imprecise dependence graph (Figure 4 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef DC_OCTET_OCTETMANAGER_H
#define DC_OCTET_OCTETMANAGER_H

#include <atomic>
#include <memory>
#include <vector>

#include "octet/OctetState.h"
#include "rt/Heap.h"
#include "rt/ThreadContext.h"
#include "support/Statistic.h"

namespace dc {
namespace octet {

/// Describes one conflicting transition for listener callbacks.
struct Transition {
  uint32_t Requester = 0;
  rt::ObjectId Obj = 0;
  OctetState Old;
  OctetState New;
};

/// Observer of Octet state transitions. Callbacks may run on the requester
/// *or* the responder thread (implicit vs. explicit protocol), exactly as in
/// the paper; implementations must synchronize their own state.
///
/// Call contract the sharded IDG relies on (DESIGN.md §7 and §11):
///  * Every callback runs on the OS thread currently executing some checker
///    hook (a barrier, pollSafePoint, aboutToBlock/unblocked), never on a
///    manager-internal thread.
///  * During onConflictingEdge, *both* endpoint threads are quiescent with
///    respect to their current transactions: the requester named in T is
///    the caller or is waiting in phase 2 of its coordination (it polls
///    safe points and may park, but cannot begin or end a transaction), and
///    the responder is at its own safe point (explicit protocol), at its
///    blocking point or blocked-and-held (implicit protocol), or exited.
///    Neither endpoint can swap its current transaction out from under the
///    listener.
///  * Quiescence is NOT mutual exclusion: callbacks naming the same
///    responder may run concurrently on different OS threads. That was
///    already true of the seed protocol (any number of requesters may hold
///    one blocked responder simultaneously); the pipelined fan-out adds the
///    overlap of one requester's explicit drain with another's implicit
///    roundtrip and with the responder's own post-block sweep. What the
///    contract guarantees is only that the *endpoints' transactions* are
///    frozen for the duration of every such callback. Implementations must
///    serialize their own per-responder state; the sharded IDG does so by
///    taking the responder's stripe lock inside every edge insertion, which
///    DESIGN.md §11 re-derives as sufficient.
///  * onBecameRdEx(Tid) always runs on thread Tid itself.
///  * onUpgradeToRdSh / onFence run on the reading thread \p Tid. The old
///    owner is *not* quiesced for these — it may be logging concurrently —
///    but any entries it races into its current transaction are reads of
///    the upgraded object, which commute with the sink's accesses (see
///    Transaction.h on conservative SrcPos sampling).
class OctetListener {
public:
  virtual ~OctetListener();

  /// A conflicting transition's roundtrip with responder \p RespTid
  /// completed; called once per responder (RdSh -> WrEx coordinates with
  /// every other thread). Runs in the responder's context: on the responder
  /// at its safe point (explicit) or on the requester holding the blocked
  /// responder (implicit).
  virtual void onConflictingEdge(uint32_t RespTid, const Transition &T) {}

  /// The object entered RdEx owned by \p Tid (conflicting transition to
  /// RdEx, or first read of an untouched object). ICD updates T.lastRdEx.
  /// Always called on thread \p Tid.
  virtual void onBecameRdEx(uint32_t Tid) {}

  /// Upgrading transition RdEx_{OldOwner} -> RdSh_{Counter} performed by
  /// reader \p Tid (and called on it).
  virtual void onUpgradeToRdSh(uint32_t Tid, uint32_t OldOwner,
                               uint64_t Counter) {}

  /// Fence transition: \p Tid read an RdSh object with a newer counter than
  /// its thread-local rdShCnt. Called on thread \p Tid.
  virtual void onFence(uint32_t Tid) {}
};

/// Per-object state machine plus per-thread coordination state for one run.
class OctetManager {
public:
  /// \p Listener may be null (barrier-cost experiments). \p Abort, when
  /// non-null, makes coordination waits bail out (posted requests are
  /// cancelled, never abandoned). \p SerialRoundtrips selects the seed's
  /// serial spin-only protocol instead of the pipelined fan-out.
  OctetManager(rt::Heap &Heap, uint32_t NumThreads, OctetListener *Listener,
               StatisticRegistry &Stats,
               const std::atomic<bool> *Abort = nullptr,
               bool SerialRoundtrips = false);
  ~OctetManager();

  OctetManager(const OctetManager &) = delete;
  OctetManager &operator=(const OctetManager &) = delete;

  void threadStarted(uint32_t Tid);
  void threadExited(uint32_t Tid);

  /// The write barrier: ensures Obj is WrEx_{TC.Tid} (Table 1).
  void writeBarrier(rt::ThreadContext &TC, rt::ObjectId Obj) {
    uint64_t Word =
        Heap.object(Obj).MetaWord.load(std::memory_order_acquire);
    if (Word == encodeOwned(StateKind::WrEx, TC.Tid)) {
      ++counters(TC.Tid).FastWrite;
      return;
    }
    slowWrite(TC, Obj);
  }

  /// The read barrier: ensures Obj is readable by TC.Tid (Table 1).
  void readBarrier(rt::ThreadContext &TC, rt::ObjectId Obj) {
    uint64_t Word =
        Heap.object(Obj).MetaWord.load(std::memory_order_acquire);
    StateKind Kind = kindOf(Word);
    uint64_t Payload = payloadOf(Word);
    if (((Kind == StateKind::WrEx || Kind == StateKind::RdEx) &&
         Payload == TC.Tid) ||
        (Kind == StateKind::RdSh && rdShCnt(TC.Tid) >= Payload)) {
      ++counters(TC.Tid).FastRead;
      return;
    }
    slowRead(TC, Obj);
  }

  /// Responds to pending explicit-protocol requests. Must be called only at
  /// safe points (between an access and its barrier is *not* safe). The
  /// empty-mailbox check is seq_cst so it pairs with the seq_cst mailbox
  /// push: a requester that parks after posting cannot have its request
  /// overlooked by every subsequent poll (on x86 a seq_cst load is an
  /// ordinary load, so the fast path is unchanged).
  void pollSafePoint(uint32_t Tid) {
    if (mailboxHead(Tid).load(std::memory_order_seq_cst) != nullptr)
      drainMailbox(Tid);
  }

  /// Blocked-state bookkeeping for the implicit protocol.
  void aboutToBlock(uint32_t Tid);
  void unblocked(uint32_t Tid);

  /// Decodes the current state of \p Obj (tests and diagnostics).
  OctetState stateOf(rt::ObjectId Obj) const {
    return decodeState(Heap.object(Obj).MetaWord.load(
        std::memory_order_acquire));
  }

  /// Current value of the global RdSh counter.
  uint64_t globalRdShCounter() const {
    return GRdShCnt.load(std::memory_order_relaxed);
  }

  /// Whether \p Tid is currently parked on its wait word (tests only —
  /// lets a slow-responder test hold back until the requester has really
  /// exhausted its spin budget, instead of sleeping and hoping).
  bool isParkedForTest(uint32_t Tid) const {
    return Threads[Tid].Parked.load(std::memory_order_seq_cst) != 0;
  }

  /// Flushes per-thread counters into the statistics registry
  /// ("octet.*" counters). Call after the run.
  void flushStatistics();

private:
  struct Request;

  /// Number of conflicting-transition kinds tracked by the per-kind
  /// roundtrip counters: RdSh->WrEx, WrEx->WrEx, WrEx->RdEx, RdEx->WrEx.
  static constexpr unsigned NumKinds = 4;

  /// Per-thread slice of the barrier counters (flushed at the end of the
  /// run so the hot path never touches shared counters).
  struct Counters {
    uint64_t FastRead = 0;
    uint64_t FastWrite = 0;
    uint64_t Claims = 0; ///< First accesses of untouched objects.
    uint64_t Conflicting = 0;
    uint64_t UpgradeWrEx = 0;
    uint64_t UpgradeRdSh = 0;
    uint64_t Fence = 0;
    uint64_t ExplicitRoundtrips = 0;
    uint64_t ImplicitRoundtrips = 0;
    uint64_t WaitSpins = 0; ///< Spin iterations across all protocol waits.
    uint64_t Parks = 0;     ///< Futex parks after the spin bound.
    uint64_t FanoutBatches = 0;    ///< Pipelined coordinations performed.
    uint64_t FanoutResponders = 0; ///< Responders across those batches.
    uint64_t CancelledRequests = 0; ///< Requests retired by the abort path.
    uint64_t ExplicitByKind[NumKinds] = {0, 0, 0, 0};
    uint64_t ImplicitByKind[NumKinds] = {0, 0, 0, 0};
  };

  /// Per-thread coordination state. Status bit 0 = blocked; the upper bits
  /// count holds placed by requesters running the implicit protocol.
  /// Threads begin blocked (a not-yet-started thread cannot respond).
  ///
  /// WakeSeq/Parked implement spin-then-park: a thread parks only on its
  /// *own* WakeSeq (one futex word per thread, regardless of what it waits
  /// for), after publishing Parked with seq_cst and re-checking its wait
  /// condition. Wakers mutate the condition (seq_cst), then bump WakeSeq
  /// and futex-wake only if they observe Parked — the Dekker pairing that
  /// makes a lost wakeup impossible and the no-waiter case a single load.
  ///
  /// Requests lives here too: one slot per responder tid, owned by this
  /// thread as *requester*. Slots outlive every mailbox they are linked
  /// into, which is what makes the abort path sound (see Request).
  struct alignas(64) PerThread {
    std::atomic<uint64_t> Status{1};
    std::atomic<Request *> MailboxHead{nullptr};
    uint64_t RdShCnt = 0;
    std::atomic<uint32_t> WakeSeq{0};
    std::atomic<uint32_t> Parked{0};
    std::unique_ptr<Request[]> Requests;
    std::vector<uint32_t> PostedScratch; ///< Phase-1 posted-responder list.
    Counters C;
  };

  void slowRead(rt::ThreadContext &TC, rt::ObjectId Obj);
  void slowWrite(rt::ThreadContext &TC, rt::ObjectId Obj);

  /// Runs the coordination protocol taking Obj from \p OldWord (already
  /// replaced by the matching intermediate state) to \p NewWord. Returns
  /// after all responder roundtrips complete and the final state is
  /// installed.
  void coordinate(rt::ThreadContext &TC, rt::ObjectId Obj, uint64_t OldWord,
                  uint64_t NewWord);

  /// Pipelined coordination: phase 1 visits every responder once, phase 2
  /// waits for all posted requests together.
  void fanOut(rt::ThreadContext &TC, const Transition &T, unsigned Kind);
  void visitResponder(rt::ThreadContext &TC, uint32_t RespTid,
                      const Transition &T, unsigned Kind,
                      std::vector<uint32_t> &Posted);
  void waitForRequests(rt::ThreadContext &TC, unsigned Kind,
                       const std::vector<uint32_t> &Posted);

  /// The seed's serial protocol: one roundtrip with \p RespTid, spin-only.
  void serialRoundtrip(rt::ThreadContext &TC, uint32_t RespTid,
                       const Transition &T, unsigned Kind);

  /// A responder observed blocked after our request was pushed: hold it and
  /// drain on its behalf so the request is not stranded while it sleeps.
  void rescueBlocked(rt::ThreadContext &TC, uint32_t RespTid);

  /// Abort-path retirement of this requester's slot for \p RespTid; returns
  /// once no drainer can touch the slot again (Cancelled, or waited-out
  /// Done).
  void cancelRequest(rt::ThreadContext &TC, uint32_t RespTid);
  void cancelOutstanding(rt::ThreadContext &TC,
                         const std::vector<uint32_t> &Posted);

  /// Drops one implicit-protocol hold and wakes the responder if it is
  /// parked in unblocked() waiting for the hold count to reach zero.
  void releaseHold(uint32_t RespTid);

  /// Bumps \p Tid's WakeSeq and futex-wakes it — but only if its Parked
  /// flag is set (the waker must have already mutated the wait condition
  /// with seq_cst ordering; see PerThread).
  void maybeWake(uint32_t Tid);

  /// Parks the calling thread \p Tid on its own WakeSeq unless \p Ready()
  /// holds, the abort flag is set, or (\p CheckMailbox) a request is
  /// pending in its mailbox. Returns after one bounded sleep or wake;
  /// callers loop around their full recheck.
  template <typename ReadyFn>
  void parkSelf(uint32_t Tid, bool CheckMailbox, ReadyFn Ready);

  void drainMailbox(uint32_t Tid);
  void notifyConflicting(uint32_t RespTid, const Transition &T);

  std::atomic<Request *> &mailboxHead(uint32_t Tid) {
    return Threads[Tid].MailboxHead;
  }
  uint64_t &rdShCnt(uint32_t Tid) { return Threads[Tid].RdShCnt; }
  Counters &counters(uint32_t Tid) { return Threads[Tid].C; }

  bool aborted() const {
    return Abort != nullptr && Abort->load(std::memory_order_relaxed);
  }

  rt::Heap &Heap;
  uint32_t NumThreads;
  OctetListener *Listener;
  StatisticRegistry &Stats;
  const std::atomic<bool> *Abort;
  const bool SerialRoundtrips;
  std::atomic<uint64_t> GRdShCnt{0};
  std::vector<PerThread> Threads;
};

} // namespace octet
} // namespace dc

#endif // DC_OCTET_OCTETMANAGER_H
