//===- octet/OctetManager.h - Octet barriers and coordination ---*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements Octet's read/write barriers and the coordination protocol for
/// conflicting transitions (Table 1 of the paper):
///
///  * Fast paths are synchronization-free checks of the object's state word.
///  * Upgrading transitions (RdEx_T -> WrEx_T by T, RdEx_T1 -> RdSh by T2)
///    are single CAS operations; RdSh upgrades stamp a fresh value of the
///    global gRdShCnt counter, globally ordering all transitions to RdSh.
///  * Fence transitions update the reader's per-thread rdShCnt and issue an
///    acquire fence, establishing happens-before from the RdSh transition.
///  * Conflicting transitions park the object in an intermediate state and
///    perform a roundtrip with each responding thread: the *explicit*
///    protocol posts a request the responder answers at its next safe
///    point; the *implicit* protocol places a hold on a blocked responder
///    and handles the transition on its behalf.
///
/// An OctetListener observes the transitions; ICD implements it to build
/// the imprecise dependence graph (Figure 4 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef DC_OCTET_OCTETMANAGER_H
#define DC_OCTET_OCTETMANAGER_H

#include <atomic>
#include <memory>
#include <vector>

#include "octet/OctetState.h"
#include "rt/Heap.h"
#include "rt/ThreadContext.h"
#include "support/Statistic.h"

namespace dc {
namespace octet {

/// Describes one conflicting transition for listener callbacks.
struct Transition {
  uint32_t Requester = 0;
  rt::ObjectId Obj = 0;
  OctetState Old;
  OctetState New;
};

/// Observer of Octet state transitions. Callbacks may run on the requester
/// *or* the responder thread (implicit vs. explicit protocol), exactly as in
/// the paper; implementations must synchronize their own state.
///
/// Call contract the sharded IDG relies on (DESIGN.md §7):
///  * Every callback runs on the OS thread currently executing some checker
///    hook (a barrier, pollSafePoint, aboutToBlock/unblocked), never on a
///    manager-internal thread.
///  * During onConflictingEdge, *both* endpoint threads are quiescent with
///    respect to their current transactions: the requester is the caller or
///    is spinning in its roundtrip (it polls safe points but cannot begin or
///    end a transaction), and the responder is at its own safe point
///    (explicit), blocked and held (implicit), or exited. Neither can swap
///    its current transaction out from under the listener.
///  * onBecameRdEx(Tid) always runs on thread Tid itself.
///  * onUpgradeToRdSh / onFence run on the reading thread \p Tid. The old
///    owner is *not* quiesced for these — it may be logging concurrently —
///    but any entries it races into its current transaction are reads of
///    the upgraded object, which commute with the sink's accesses (see
///    Transaction.h on conservative SrcPos sampling).
class OctetListener {
public:
  virtual ~OctetListener();

  /// A conflicting transition's roundtrip with responder \p RespTid
  /// completed; called once per responder (RdSh -> WrEx coordinates with
  /// every other thread). Runs in the responder's context: on the responder
  /// at its safe point (explicit) or on the requester holding the blocked
  /// responder (implicit).
  virtual void onConflictingEdge(uint32_t RespTid, const Transition &T) {}

  /// The object entered RdEx owned by \p Tid (conflicting transition to
  /// RdEx, or first read of an untouched object). ICD updates T.lastRdEx.
  /// Always called on thread \p Tid.
  virtual void onBecameRdEx(uint32_t Tid) {}

  /// Upgrading transition RdEx_{OldOwner} -> RdSh_{Counter} performed by
  /// reader \p Tid (and called on it).
  virtual void onUpgradeToRdSh(uint32_t Tid, uint32_t OldOwner,
                               uint64_t Counter) {}

  /// Fence transition: \p Tid read an RdSh object with a newer counter than
  /// its thread-local rdShCnt. Called on thread \p Tid.
  virtual void onFence(uint32_t Tid) {}
};

/// Per-object state machine plus per-thread coordination state for one run.
class OctetManager {
public:
  /// \p Listener may be null (barrier-cost experiments). \p Abort, when
  /// non-null, makes coordination spin loops bail out.
  OctetManager(rt::Heap &Heap, uint32_t NumThreads, OctetListener *Listener,
               StatisticRegistry &Stats,
               const std::atomic<bool> *Abort = nullptr);
  ~OctetManager();

  OctetManager(const OctetManager &) = delete;
  OctetManager &operator=(const OctetManager &) = delete;

  void threadStarted(uint32_t Tid);
  void threadExited(uint32_t Tid);

  /// The write barrier: ensures Obj is WrEx_{TC.Tid} (Table 1).
  void writeBarrier(rt::ThreadContext &TC, rt::ObjectId Obj) {
    uint64_t Word =
        Heap.object(Obj).MetaWord.load(std::memory_order_acquire);
    if (Word == encodeOwned(StateKind::WrEx, TC.Tid)) {
      ++counters(TC.Tid).FastWrite;
      return;
    }
    slowWrite(TC, Obj);
  }

  /// The read barrier: ensures Obj is readable by TC.Tid (Table 1).
  void readBarrier(rt::ThreadContext &TC, rt::ObjectId Obj) {
    uint64_t Word =
        Heap.object(Obj).MetaWord.load(std::memory_order_acquire);
    StateKind Kind = kindOf(Word);
    uint64_t Payload = payloadOf(Word);
    if (((Kind == StateKind::WrEx || Kind == StateKind::RdEx) &&
         Payload == TC.Tid) ||
        (Kind == StateKind::RdSh && rdShCnt(TC.Tid) >= Payload)) {
      ++counters(TC.Tid).FastRead;
      return;
    }
    slowRead(TC, Obj);
  }

  /// Responds to pending explicit-protocol requests. Must be called only at
  /// safe points (between an access and its barrier is *not* safe).
  void pollSafePoint(uint32_t Tid) {
    if (mailboxHead(Tid).load(std::memory_order_relaxed) != nullptr)
      drainMailbox(Tid);
  }

  /// Blocked-state bookkeeping for the implicit protocol.
  void aboutToBlock(uint32_t Tid);
  void unblocked(uint32_t Tid);

  /// Decodes the current state of \p Obj (tests and diagnostics).
  OctetState stateOf(rt::ObjectId Obj) const {
    return decodeState(Heap.object(Obj).MetaWord.load(
        std::memory_order_acquire));
  }

  /// Current value of the global RdSh counter.
  uint64_t globalRdShCounter() const {
    return GRdShCnt.load(std::memory_order_relaxed);
  }

  /// Flushes per-thread counters into the statistics registry
  /// ("octet.*" counters). Call after the run.
  void flushStatistics();

private:
  struct Request;

  /// Per-thread slice of the barrier counters (flushed at the end of the
  /// run so the hot path never touches shared counters).
  struct Counters {
    uint64_t FastRead = 0;
    uint64_t FastWrite = 0;
    uint64_t Claims = 0; ///< First accesses of untouched objects.
    uint64_t Conflicting = 0;
    uint64_t UpgradeWrEx = 0;
    uint64_t UpgradeRdSh = 0;
    uint64_t Fence = 0;
    uint64_t ExplicitRoundtrips = 0;
    uint64_t ImplicitRoundtrips = 0;
  };

  /// Per-thread coordination state. Status bit 0 = blocked; the upper bits
  /// count holds placed by requesters running the implicit protocol.
  /// Threads begin blocked (a not-yet-started thread cannot respond).
  struct alignas(64) PerThread {
    std::atomic<uint64_t> Status{1};
    std::atomic<Request *> MailboxHead{nullptr};
    uint64_t RdShCnt = 0;
    Counters C;
  };

  void slowRead(rt::ThreadContext &TC, rt::ObjectId Obj);
  void slowWrite(rt::ThreadContext &TC, rt::ObjectId Obj);

  /// Runs the coordination protocol taking Obj from \p OldWord (already
  /// replaced by the matching intermediate state) to \p NewWord. Returns
  /// after all responder roundtrips complete and the final state is
  /// installed.
  void coordinate(rt::ThreadContext &TC, rt::ObjectId Obj, uint64_t OldWord,
                  uint64_t NewWord);

  /// One roundtrip with \p RespTid for transition \p T.
  void roundtrip(rt::ThreadContext &TC, uint32_t RespTid,
                 const Transition &T);

  void drainMailbox(uint32_t Tid);
  void notifyConflicting(uint32_t RespTid, const Transition &T);

  std::atomic<Request *> &mailboxHead(uint32_t Tid) {
    return Threads[Tid].MailboxHead;
  }
  uint64_t &rdShCnt(uint32_t Tid) { return Threads[Tid].RdShCnt; }
  Counters &counters(uint32_t Tid) { return Threads[Tid].C; }

  bool aborted() const {
    return Abort != nullptr && Abort->load(std::memory_order_relaxed);
  }

  rt::Heap &Heap;
  uint32_t NumThreads;
  OctetListener *Listener;
  StatisticRegistry &Stats;
  const std::atomic<bool> *Abort;
  std::atomic<uint64_t> GRdShCnt{0};
  std::vector<PerThread> Threads;
};

} // namespace octet
} // namespace dc

#endif // DC_OCTET_OCTETMANAGER_H
