//===- support/ChromeTrace.cpp --------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ChromeTrace.h"

#include <cstdio>
#include <fstream>

using namespace dc;

void TraceRecorder::push(Event E) {
  SpinLockGuard Guard(Lock);
  if (Events.size() >= Opts.MaxEvents) {
    Dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Events.push_back(std::move(E));
}

void TraceRecorder::instant(const char *Cat, std::string Name, uint32_t Tid,
                            Args A) {
  push({'i', Cat, std::move(Name), Tid, nowUs(), 0, std::move(A)});
}

void TraceRecorder::complete(const char *Cat, std::string Name, uint32_t Tid,
                             uint64_t TsUs, uint64_t DurUs, Args A) {
  push({'X', Cat, std::move(Name), Tid, TsUs, DurUs, std::move(A)});
}

void TraceRecorder::counter(const char *Cat, std::string Name, Args A) {
  push({'C', Cat, std::move(Name), 0, nowUs(), 0, std::move(A)});
}

size_t TraceRecorder::size() const {
  SpinLockGuard Guard(Lock);
  return Events.size();
}

namespace {

void writeEscaped(std::ostream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

} // namespace

void TraceRecorder::writeJson(std::ostream &OS) const {
  // Copy under the lock, render outside it: rendering does stream I/O and
  // must not hold up live engine threads still appending.
  std::vector<Event> Copy;
  {
    SpinLockGuard Guard(Lock);
    Copy = Events;
  }
  OS << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  auto Emit = [&](const Event &E) {
    if (!First)
      OS << ",";
    First = false;
    OS << "\n{\"name\":";
    writeEscaped(OS, E.Name);
    OS << ",\"cat\":\"" << E.Cat << "\",\"ph\":\"" << E.Ph
       << "\",\"pid\":1,\"tid\":" << E.Tid << ",\"ts\":" << E.Ts;
    if (E.Ph == 'X')
      OS << ",\"dur\":" << E.Dur;
    if (E.Ph == 'i')
      OS << ",\"s\":\"t\"";
    if (!E.A.Num.empty() || !E.A.Str.empty()) {
      OS << ",\"args\":{";
      bool FirstArg = true;
      for (const auto &KV : E.A.Num) {
        if (!FirstArg)
          OS << ",";
        FirstArg = false;
        writeEscaped(OS, KV.first);
        OS << ":" << KV.second;
      }
      for (const auto &KV : E.A.Str) {
        if (!FirstArg)
          OS << ",";
        FirstArg = false;
        writeEscaped(OS, KV.first);
        OS << ":";
        writeEscaped(OS, KV.second);
      }
      OS << "}";
    }
    OS << "}";
  };
  for (const Event &E : Copy)
    Emit(E);
  // Trailing metadata: how much (if anything) the bounded buffer dropped.
  Event Meta{'i', "meta", "trace-buffer", 0, nowUs(), 0, Args()};
  Meta.A.num("events", Copy.size()).num("dropped", droppedEvents());
  Emit(Meta);
  OS << "\n]}\n";
}

bool TraceRecorder::writeJson(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  writeJson(Out);
  return static_cast<bool>(Out);
}
