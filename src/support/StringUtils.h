//===- support/StringUtils.h - Text helpers for reports ---------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small formatting helpers used by the IR printer, the violation reports,
/// and the benchmark harnesses that print paper-style tables.
///
//===----------------------------------------------------------------------===//

#ifndef DC_SUPPORT_STRINGUTILS_H
#define DC_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <vector>

namespace dc {

/// Left- or right-pads \p S with spaces to \p Width columns.
std::string padLeft(const std::string &S, size_t Width);
std::string padRight(const std::string &S, size_t Width);

/// Formats \p V with a fixed number of decimal places (e.g. "3.61").
std::string formatDouble(double V, unsigned Decimals = 2);

/// Formats a count with thousands separators ("1,140,000").
std::string formatWithCommas(uint64_t V);

/// Joins \p Parts with \p Sep between elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// A simple fixed-column text table builder for the bench harnesses.
/// Rows are added as string cells; render() aligns every column.
class TextTable {
public:
  /// Sets the header row. Column count is fixed by this call.
  void setHeader(std::vector<std::string> Cells);
  /// Appends a data row; must match the header's column count.
  void addRow(std::vector<std::string> Cells);
  /// Renders the table with a separator line under the header.
  std::string render() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace dc

#endif // DC_SUPPORT_STRINGUTILS_H
