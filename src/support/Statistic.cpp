//===- support/Statistic.cpp ----------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"

#include <sstream>

using namespace dc;

StatisticRegistry::~StatisticRegistry() {
  for (auto &Entry : Counters)
    delete Entry.second;
}

Statistic &StatisticRegistry::get(const std::string &Name) {
  SpinLockGuard Guard(Lock);
  auto It = Counters.find(Name);
  if (It != Counters.end())
    return *It->second;
  auto *S = new Statistic(Name);
  Counters.emplace(Name, S);
  return *S;
}

uint64_t StatisticRegistry::value(const std::string &Name) const {
  SpinLockGuard Guard(Lock);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second->get();
}

std::vector<const Statistic *> StatisticRegistry::all() const {
  SpinLockGuard Guard(Lock);
  std::vector<const Statistic *> Result;
  Result.reserve(Counters.size());
  for (const auto &Entry : Counters)
    Result.push_back(Entry.second);
  return Result;
}

StatisticRegistry::Snapshot
StatisticRegistry::snapshot(uint32_t MaxAttempts) const {
  Snapshot S;
  auto ReadAll = [&](std::map<std::string, uint64_t> &Out) {
    Out.clear();
    SpinLockGuard Guard(Lock);
    for (const auto &Entry : Counters)
      Out.emplace(Entry.first, Entry.second->get());
  };
  std::map<std::string, uint64_t> Second;
  if (MaxAttempts == 0)
    MaxAttempts = 1;
  for (uint32_t A = 0; A < MaxAttempts; ++A) {
    ReadAll(S.Values);
    ReadAll(Second);
    ++S.Attempts;
    if (S.Values == Second) {
      S.Stable = true;
      return S;
    }
  }
  // Still churning: publish the later read, flagged as torn.
  S.Values = std::move(Second);
  return S;
}

std::string StatisticRegistry::toString() const {
  std::ostringstream OS;
  for (const Statistic *S : all())
    OS << S->name() << " = " << S->get() << "\n";
  return OS.str();
}
