//===- support/Rng.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64: a tiny, fast, seedable generator. All nondeterminism in the
/// reproduction (workload shapes, schedules, property tests) flows through
/// explicit seeds so experiments are replayable.
///
//===----------------------------------------------------------------------===//

#ifndef DC_SUPPORT_RNG_H
#define DC_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace dc {

/// SplitMix64 pseudo-random generator (public domain algorithm by
/// Sebastiano Vigna). Deterministic for a given seed.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniform in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow requires a nonzero bound");
    // Multiply-shift reduction; bias is negligible for our bounds.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Returns a value uniform in [Lo, Hi] inclusive. Requires Lo <= Hi.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Returns true with probability \p Percent / 100.
  bool chancePercent(unsigned Percent) { return nextBelow(100) < Percent; }

  /// Derives an independent generator for a sub-component.
  SplitMix64 fork() { return SplitMix64(next() ^ 0xd1b54a32d192ed03ULL); }

private:
  uint64_t State;
};

} // namespace dc

#endif // DC_SUPPORT_RNG_H
