//===- support/FaultPlan.cpp ----------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultPlan.h"

#include <cstdlib>

using namespace dc;

std::string FaultPlan::spec() const {
  std::string Out;
  auto Add = [&](const char *Key, uint64_t V) {
    if (V == 0)
      return;
    if (!Out.empty())
      Out += ',';
    Out += Key;
    Out += '@';
    Out += std::to_string(V);
  };
  Add("alloc-fail", AllocFailAt);
  Add("worker-stall", WorkerStallAt);
  Add("worker-die", WorkerDieAt);
  Add("queue-hold", QueueHoldUntil);
  Add("collect-delay-ms", CollectorDelayMs);
  Add("window-stall", WindowStallAt);
  return Out.empty() ? "none" : Out;
}

bool FaultPlan::parse(const std::string &Spec, FaultPlan &Out,
                      std::string &Error) {
  Out = FaultPlan();
  // Strip surrounding whitespace; "none" and the empty string are the
  // canonical empty plans.
  size_t B = Spec.find_first_not_of(" \t");
  size_t E = Spec.find_last_not_of(" \t");
  std::string S = B == std::string::npos ? "" : Spec.substr(B, E - B + 1);
  if (S.empty() || S == "none")
    return true;

  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t Comma = S.find(',', Pos);
    std::string Tok =
        S.substr(Pos, Comma == std::string::npos ? std::string::npos
                                                 : Comma - Pos);
    Pos = Comma == std::string::npos ? S.size() : Comma + 1;
    size_t At = Tok.find('@');
    if (At == std::string::npos) {
      Error = "fault token '" + Tok + "' is missing '@count'";
      return false;
    }
    std::string Key = Tok.substr(0, At);
    const std::string Num = Tok.substr(At + 1);
    char *End = nullptr;
    unsigned long long V = std::strtoull(Num.c_str(), &End, 10);
    if (Num.empty() || End == Num.c_str() || *End != '\0' || V == 0) {
      Error = "fault count '" + Num + "' for '" + Key +
              "' must be a positive integer";
      return false;
    }
    if (Key == "alloc-fail")
      Out.AllocFailAt = V;
    else if (Key == "worker-stall")
      Out.WorkerStallAt = V;
    else if (Key == "worker-die")
      Out.WorkerDieAt = V;
    else if (Key == "queue-hold")
      Out.QueueHoldUntil = V;
    else if (Key == "collect-delay-ms")
      Out.CollectorDelayMs = static_cast<uint32_t>(V);
    else if (Key == "window-stall")
      Out.WindowStallAt = V;
    else {
      Error = "unknown fault key '" + Key +
              "' (expected alloc-fail, worker-stall, worker-die, "
              "queue-hold, collect-delay-ms, or window-stall)";
      return false;
    }
  }
  return true;
}
