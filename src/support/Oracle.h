//===- support/Oracle.h - Ground-truth serializability oracle ---*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A brute-force ground-truth oracle shared by the schedule fuzzer, the
/// property tests, and the engine-agreement tests: record the exact
/// sequence of transaction-demarcation and shared-access events one
/// deterministic execution performs, then decide conflict-serializability
/// of that trace *offline* — build the full precise dependence graph
/// (Velodrome Fig. 5 rules: write→read, write→write, read→write conflict
/// edges across threads, program-order edges within a thread, unary spans
/// between regular transactions that split at incoming/outgoing cross
/// edges) and cycle-check it with one final SCC pass. The decision shares
/// no code with ICD, PCD, the online Velodrome baseline, or the
/// vector-clock engine: no Octet states, no SCC filtering, no log replay,
/// no clocks, no garbage collection — every node and edge is kept, so the
/// verdict is exact for any trace small enough to hold in memory (the
/// fuzzer stays ≤ ~40 shared accesses).
///
/// "Conflict-serializability" here is at the same abstraction level the
/// checkers use: synchronization operations count as reads (acquire-like)
/// and writes (release-like) of the object's sync slot, per the paper §4.
///
/// Built as the `dc_oracle` library. It layers *above* dc_core (it compiles
/// programs through instr and runs them), which is why it is a separate
/// target rather than part of dc_support proper.
///
//===----------------------------------------------------------------------===//

#ifndef DC_SUPPORT_ORACLE_H
#define DC_SUPPORT_ORACLE_H

#include <set>
#include <string>
#include <vector>

#include "core/AtomicitySpec.h"
#include "ir/Ir.h"
#include "rt/Runtime.h"

namespace dc {
namespace oracle {

/// One recorded event, in global gate order.
struct TraceEvent {
  enum class Kind : uint8_t {
    ThreadStart,
    ThreadEnd,
    TxBegin,
    TxEnd,
    Access,
  };
  Kind K = Kind::Access;
  uint32_t Tid = 0;
  ir::MethodId Site = ir::InvalidMethodId; ///< TxBegin: source method id.
  rt::FieldAddr Addr = 0;                  ///< Access: field or sync slot.
  bool IsWrite = false;
  bool IsSync = false;
};

/// One recorded deterministic execution.
struct RecordedTrace {
  std::vector<TraceEvent> Events;
  /// Thread id admitted at each gate decision — replayable through
  /// RunOptions::ExplicitSchedule.
  std::vector<uint32_t> Schedule;
  rt::RunResult Result;
  /// Shared *data* accesses recorded (excludes sync-slot events) — the
  /// witness-size metric.
  uint64_t dataAccesses() const;
};

/// Executes \p Source (compiled with transaction demarcation and Velodrome
/// barrier flags, but no checker analysis) under \p RO and records the
/// event trace plus the schedule actually taken. \p RO must request
/// deterministic mode; ScheduleOut is managed internally.
RecordedTrace recordTrace(const ir::Program &Source,
                          const core::AtomicitySpec &Spec, rt::RunOptions RO);

/// The oracle's answer.
struct OracleVerdict {
  bool Serializable = true;
  /// Source method names of regular transactions on dependence cycles —
  /// the superset any precise checker's blame must come from.
  std::set<std::string> CycleMethods;
  uint64_t Nodes = 0;
  uint64_t ConflictEdges = 0;
};

/// Decides conflict-serializability of \p Trace exactly (see file comment).
OracleVerdict decideSerializability(const ir::Program &Source,
                                    const RecordedTrace &Trace);

} // namespace oracle
} // namespace dc

#endif // DC_SUPPORT_ORACLE_H
