//===- support/StringUtils.cpp --------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cassert>
#include <cstdio>

using namespace dc;

std::string dc::padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string dc::padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}

std::string dc::formatDouble(double V, unsigned Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, V);
  return Buf;
}

std::string dc::formatWithCommas(uint64_t V) {
  std::string Digits = std::to_string(V);
  std::string Result;
  Result.reserve(Digits.size() + Digits.size() / 3);
  for (size_t I = 0; I < Digits.size(); ++I) {
    size_t Remaining = Digits.size() - I;
    if (I != 0 && Remaining % 3 == 0)
      Result += ',';
    Result += Digits[I];
  }
  return Result;
}

std::string dc::join(const std::vector<std::string> &Parts,
                     const std::string &Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

void TextTable::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Header.size() && "row/header column mismatch");
  Rows.push_back(std::move(Cells));
}

std::string TextTable::render() const {
  std::vector<size_t> Widths(Header.size(), 0);
  auto Grow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();
  };
  Grow(Header);
  for (const auto &Row : Rows)
    Grow(Row);

  std::string Out;
  auto Emit = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I != 0)
        Out += "  ";
      // First column left-aligned (names), the rest right-aligned (numbers).
      Out += I == 0 ? padRight(Row[I], Widths[I]) : padLeft(Row[I], Widths[I]);
    }
    Out += '\n';
  };
  Emit(Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W;
  Out += std::string(Total + 2 * (Widths.empty() ? 0 : Widths.size() - 1),
                     '-');
  Out += '\n';
  for (const auto &Row : Rows)
    Emit(Row);
  return Out;
}
