//===- support/InlineVec.h - Small-buffer vector ----------------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal small-buffer vector for trivially-copyable element types: the
/// first N elements live inline in the object, so containers that usually
/// stay tiny (a transaction's detector adjacency averages a couple of
/// entries) never touch the allocator on the hot path. Deliberately much
/// smaller than std::vector's interface — push, iterate, clear, and
/// erase-by-value are all the incremental cycle detector needs.
///
//===----------------------------------------------------------------------===//

#ifndef DC_SUPPORT_INLINEVEC_H
#define DC_SUPPORT_INLINEVEC_H

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <type_traits>

namespace dc {

template <typename T, unsigned N> class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec memcpy-moves its elements");

public:
  InlineVec() = default;
  ~InlineVec() {
    if (Data != Inline)
      std::free(Data);
  }
  InlineVec(const InlineVec &) = delete;
  InlineVec &operator=(const InlineVec &) = delete;

  T *begin() { return Data; }
  T *end() { return Data + Sz; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Sz; }
  uint32_t size() const { return Sz; }
  bool empty() const { return Sz == 0; }
  T &back() { return Data[Sz - 1]; }
  const T &back() const { return Data[Sz - 1]; }
  T &operator[](uint32_t I) { return Data[I]; }
  const T &operator[](uint32_t I) const { return Data[I]; }

  void push_back(const T &V) {
    if (Sz == Cap)
      grow();
    Data[Sz++] = V;
  }

  /// Removes every element equal to \p V, preserving the others' order.
  void eraseValue(const T &V) {
    uint32_t Out = 0;
    for (uint32_t I = 0; I < Sz; ++I)
      if (!(Data[I] == V))
        Data[Out++] = Data[I];
    Sz = Out;
  }

  /// Drops the elements and returns any heap block to the allocator.
  void clear() {
    if (Data != Inline) {
      std::free(Data);
      Data = Inline;
      Cap = N;
    }
    Sz = 0;
  }

private:
  void grow() {
    const uint32_t NewCap = Cap * 2;
    T *Heap = static_cast<T *>(std::malloc(sizeof(T) * NewCap));
    std::memcpy(Heap, Data, sizeof(T) * Sz);
    if (Data != Inline)
      std::free(Data);
    Data = Heap;
    Cap = NewCap;
  }

  T Inline[N];
  T *Data = Inline;
  uint32_t Sz = 0;
  uint32_t Cap = N;
};

} // namespace dc

#endif // DC_SUPPORT_INLINEVEC_H
