//===- support/PerCpuRings.h - Bounded per-CPU MPMC ring array --*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed array of bounded, cache-line-aligned ring queues sized O(cores),
/// indexed by a CPU hint. Producers commit records with a wait-free-bounded
/// reserve-then-publish protocol (Vyukov-style per-cell sequence numbers):
/// a producer never spins unboundedly — every attempt either publishes,
/// reports the ring Full (consumer behind), or reports Contended after a
/// bounded number of CAS losses so the caller can hop to a neighbour ring.
/// That last case is what makes the array migration-safe: a thread whose
/// sched_getcpu() hint went stale after a migration may race producers that
/// are actually on that CPU, but it can never block them or be blocked.
///
/// Consumption is explicitly single-consumer-at-a-time: drain() and peek()
/// must be called under one external lock (the owner decides which — the
/// checker uses a dedicated DrainMu). Keeping Head plain (not atomic)
/// under that contract keeps the consumer loop branch-cheap.
///
/// A claimed-but-unpublished cell (producer between its Tail CAS and its
/// sequence store) is a *gap*: it stalls drain() at that position but never
/// stalls producers, which keep claiming later cells. peek() skips gaps so
/// the collector can still observe every published record.
///
//===----------------------------------------------------------------------===//

#ifndef DC_SUPPORT_PERCPURINGS_H
#define DC_SUPPORT_PERCPURINGS_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <utility>

#if defined(__linux__)
#include <sched.h>
#endif

namespace dc {

/// Outcome of one bounded commit attempt.
enum class RingCommit : uint8_t {
  Ok,        ///< Record claimed, filled, and published.
  Full,      ///< No free cell: the consumer is a full lap behind.
  Contended, ///< Lost the claim CAS a bounded number of times.
};

/// Fixed array of bounded MPMC rings over payload type \p T.
///
/// Both the ring count and per-ring capacity are rounded up to powers of
/// two at construction. Cells are cache-line aligned so concurrent
/// producers on adjacent cells never false-share.
template <typename T> class PerCpuRings {
  struct alignas(64) Cell {
    /// Vyukov sequence: == pos, free for the producer claiming turn pos;
    /// == pos + 1, published and waiting for the consumer;
    /// == pos + Capacity, consumed (free for the next lap's producer).
    std::atomic<uint64_t> Seq;
    T Payload;
  };

  struct alignas(64) Ring {
    /// Next position producers claim (shared, CAS-advanced).
    std::atomic<uint64_t> Tail{0};
    /// Next position the consumer pops. Plain on purpose: guarded by the
    /// caller's external drain lock, never touched by producers.
    alignas(64) uint64_t Head = 0;
  };

public:
  /// Bounded CAS losses before tryCommit gives up with Contended. Losing
  /// this many times in a row means the ring is genuinely hot, and the
  /// caller's hop-to-neighbour policy spreads the load better than
  /// spinning would.
  static constexpr uint32_t ClaimAttempts = 8;

  PerCpuRings(uint32_t NumRings, uint32_t CellsPerRing)
      : NRings(roundPow2(NumRings ? NumRings : 1)),
        Capacity(roundPow2(CellsPerRing < 2 ? 2 : CellsPerRing)),
        RingMask(NRings - 1), PosMask(Capacity - 1),
        Rings(new Ring[NRings]), Cells(new Cell[uint64_t(NRings) * Capacity]) {
    for (uint64_t I = 0; I < uint64_t(NRings) * Capacity; ++I)
      Cells[I].Seq.store(I & PosMask, std::memory_order_relaxed);
  }

  PerCpuRings(const PerCpuRings &) = delete;
  PerCpuRings &operator=(const PerCpuRings &) = delete;

  uint32_t numRings() const { return NRings; }
  uint32_t capacity() const { return Capacity; }
  uint64_t footprintBytes() const {
    return uint64_t(NRings) * Capacity * sizeof(Cell) +
           uint64_t(NRings) * sizeof(Ring);
  }

  /// Maps an arbitrary CPU hint (sched_getcpu, tid hash, ...) to a ring.
  uint32_t ringFor(uint32_t CpuHint) const { return CpuHint & RingMask; }

  /// Best-effort current-CPU hint. Linux: sched_getcpu (cheap vDSO call);
  /// elsewhere a thread-id hash, which still spreads producers and is
  /// stable within a thread.
  static uint32_t currentCpu() {
#if defined(__linux__)
    int Cpu = sched_getcpu();
    if (Cpu >= 0)
      return static_cast<uint32_t>(Cpu);
#endif
    return static_cast<uint32_t>(
        std::hash<std::thread::id>()(std::this_thread::get_id()));
  }

  /// Bounded reserve-then-publish. \p Fill is invoked with a T& to
  /// populate exactly when a cell was claimed; the record becomes visible
  /// to the consumer only at the release-store that follows it.
  template <typename FillFn> RingCommit tryCommit(uint32_t RingIdx, FillFn &&Fill) {
    Ring &R = Rings[RingIdx];
    Cell *Base = &Cells[uint64_t(RingIdx) * Capacity];
    uint64_t Pos = R.Tail.load(std::memory_order_relaxed);
    for (uint32_t Attempt = 0; Attempt < ClaimAttempts; ++Attempt) {
      Cell &C = Base[Pos & PosMask];
      uint64_t Seq = C.Seq.load(std::memory_order_acquire);
      int64_t Diff = int64_t(Seq) - int64_t(expectedSeq(Pos));
      if (Diff == 0) {
        if (R.Tail.compare_exchange_weak(Pos, Pos + 1,
                                         std::memory_order_relaxed)) {
          Fill(C.Payload);
          C.Seq.store(expectedSeq(Pos) + 1, std::memory_order_release);
          return RingCommit::Ok;
        }
        // CAS lost: Pos was reloaded by compare_exchange_weak; retry.
      } else if (Diff < 0) {
        return RingCommit::Full;
      } else {
        // A later lap already claimed this turn; catch up.
        Pos = R.Tail.load(std::memory_order_relaxed);
      }
    }
    return RingCommit::Contended;
  }

  /// Pops published records in order until the first gap or empty cell.
  /// \p Consume receives each payload by reference before its cell is
  /// released to producers. Returns the number consumed. Caller must hold
  /// the external drain lock.
  template <typename ConsumeFn>
  uint32_t drain(uint32_t RingIdx, ConsumeFn &&Consume) {
    Ring &R = Rings[RingIdx];
    Cell *Base = &Cells[uint64_t(RingIdx) * Capacity];
    uint32_t N = 0;
    for (;;) {
      Cell &C = Base[R.Head & PosMask];
      uint64_t Seq = C.Seq.load(std::memory_order_acquire);
      if (int64_t(Seq) - int64_t(expectedSeq(R.Head) + 1) != 0)
        break; // Empty, or a claimed-but-unpublished gap.
      Consume(C.Payload);
      C.Seq.store(expectedSeq(R.Head) + Capacity, std::memory_order_release);
      ++R.Head;
      ++N;
    }
    return N;
  }

  /// Visits every *published, unconsumed* record — including those past a
  /// gap that drain() cannot reach yet — without consuming anything.
  /// Caller must hold the external drain lock; producers may still be
  /// appending, so records published after the Tail snapshot are missed
  /// (callers serialize against producers by other means when they need a
  /// complete view).
  template <typename VisitFn> void peek(uint32_t RingIdx, VisitFn &&Visit) {
    Ring &R = Rings[RingIdx];
    Cell *Base = &Cells[uint64_t(RingIdx) * Capacity];
    uint64_t Tail = R.Tail.load(std::memory_order_acquire);
    for (uint64_t Pos = R.Head; Pos != Tail; ++Pos) {
      Cell &C = Base[Pos & PosMask];
      if (C.Seq.load(std::memory_order_acquire) == expectedSeq(Pos) + 1)
        Visit(C.Payload);
    }
  }

  /// Approximate: true when the consumer has caught up with the producers
  /// of ring \p RingIdx. Caller must hold the external drain lock.
  bool empty(uint32_t RingIdx) const {
    const Ring &R = Rings[RingIdx];
    return R.Head == R.Tail.load(std::memory_order_acquire);
  }

private:
  static uint32_t roundPow2(uint32_t V) {
    uint32_t P = 1;
    while (P < V)
      P <<= 1;
    return P;
  }
  /// The sequence value a free cell holds when it is producer-claimable at
  /// position \p Pos: cells start at their index and advance by Capacity
  /// per lap, so claimable == Pos exactly (index + laps * Capacity).
  uint64_t expectedSeq(uint64_t Pos) const { return Pos; }

  const uint32_t NRings;
  const uint32_t Capacity;
  const uint32_t RingMask;
  const uint32_t PosMask;
  std::unique_ptr<Ring[]> Rings;
  std::unique_ptr<Cell[]> Cells;
};

} // namespace dc

#endif // DC_SUPPORT_PERCPURINGS_H
