//===- support/Statistic.h - Named run-time counters ------------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named atomic counters, in the spirit of LLVM's Statistic.
/// Table 3 of the paper ("run-time characteristics") and several ablations
/// are produced by reading these counters after a run. Counters live in a
/// StatisticRegistry owned by each run so concurrent runs do not interfere.
///
//===----------------------------------------------------------------------===//

#ifndef DC_SUPPORT_STATISTIC_H
#define DC_SUPPORT_STATISTIC_H

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/SpinLock.h"

namespace dc {

/// One named, thread-safe counter. Obtained from a StatisticRegistry;
/// never constructed directly by clients.
class Statistic {
public:
  explicit Statistic(std::string Name) : Name(std::move(Name)) {}

  void add(uint64_t Delta = 1) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  /// Sets the counter to \p V if V is larger (for high-water marks).
  void updateMax(uint64_t V) {
    uint64_t Cur = Value.load(std::memory_order_relaxed);
    while (Cur < V &&
           !Value.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
    }
  }
  uint64_t get() const { return Value.load(std::memory_order_relaxed); }
  const std::string &name() const { return Name; }

private:
  std::string Name;
  std::atomic<uint64_t> Value{0};
};

/// Owns a set of named counters. Lookup creates on demand; pointers remain
/// stable for the registry's lifetime.
class StatisticRegistry {
public:
  StatisticRegistry() = default;
  StatisticRegistry(const StatisticRegistry &) = delete;
  StatisticRegistry &operator=(const StatisticRegistry &) = delete;
  ~StatisticRegistry();

  /// Returns the counter named \p Name, creating it if needed.
  Statistic &get(const std::string &Name);

  /// Returns the value of \p Name, or 0 if it was never touched.
  uint64_t value(const std::string &Name) const;

  /// Returns all counters sorted by name (for reports).
  std::vector<const Statistic *> all() const;

  /// A point-in-time view of every counter. End-of-run reports read each
  /// counter once after all writers stopped, which is trivially consistent;
  /// a *mid-run* health endpoint reading counters one by one races live
  /// writers and can pair a post-increment value of one counter with the
  /// pre-increment value of a related one (e.g. collector runs without the
  /// transactions the same pass swept). snapshot() detects that tearing.
  struct Snapshot {
    std::map<std::string, uint64_t> Values;
    /// True when two back-to-back reads of the whole table agreed — the
    /// values form one consistent cut. False after MaxAttempts of live
    /// churn; Values then holds the last (best-effort) read.
    bool Stable = false;
    /// Read passes it took to converge (diagnostic).
    uint32_t Attempts = 0;
  };

  /// Returns a snapshot that is consistent whenever the counters quiesce
  /// for one double-read, retrying up to \p MaxAttempts times otherwise.
  /// Safe to call from any thread at any point of a run.
  Snapshot snapshot(uint32_t MaxAttempts = 4) const;

  /// Renders "name = value" lines sorted by name.
  std::string toString() const;

private:
  mutable SpinLock Lock;
  std::map<std::string, Statistic *> Counters;
};

} // namespace dc

#endif // DC_SUPPORT_STATISTIC_H
