//===- support/Oracle.cpp - Ground-truth oracle implementation ------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Oracle.h"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <unordered_map>

#include "instr/Instrument.h"
#include "rt/CheckerRuntime.h"
#include "rt/ThreadContext.h"

namespace dc {
namespace oracle {

uint64_t RecordedTrace::dataAccesses() const {
  uint64_t N = 0;
  for (const TraceEvent &E : Events)
    N += E.K == TraceEvent::Kind::Access && !E.IsSync;
  return N;
}

namespace {

/// A CheckerRuntime that performs no analysis — it only records, in gate
/// order, the events a real checker would see. The same filter Velodrome
/// applies (IF_VelodromeBarrier) selects which accesses count, so the
/// oracle judges exactly the instrumented footprint.
class TraceRecorder final : public rt::CheckerRuntime {
public:
  explicit TraceRecorder(const ir::Program &Compiled) : Compiled(Compiled) {}

  void threadStarted(rt::ThreadContext &TC) override {
    push({TraceEvent::Kind::ThreadStart, TC.Tid, ir::InvalidMethodId, 0,
          false, false});
  }
  void threadExiting(rt::ThreadContext &TC) override {
    push({TraceEvent::Kind::ThreadEnd, TC.Tid, ir::InvalidMethodId, 0, false,
          false});
  }
  void txBegin(rt::ThreadContext &TC, const ir::Method &M) override {
    push({TraceEvent::Kind::TxBegin, TC.Tid, Compiled.originalOf(M.Id), 0,
          false, false});
  }
  void txEnd(rt::ThreadContext &TC, const ir::Method &M) override {
    push({TraceEvent::Kind::TxEnd, TC.Tid, ir::InvalidMethodId, 0, false,
          false});
  }
  void instrumentedAccess(rt::ThreadContext &TC, const rt::AccessInfo &Info,
                          function_ref<void()> Access) override {
    if (Info.Flags & ir::IF_VelodromeBarrier)
      push({TraceEvent::Kind::Access, TC.Tid, ir::InvalidMethodId, Info.Addr,
            Info.IsWrite, false});
    Access();
  }
  void syncOp(rt::ThreadContext &TC, const rt::AccessInfo &Info,
              rt::SyncKind Kind) override {
    if (Info.Flags & ir::IF_VelodromeBarrier)
      push({TraceEvent::Kind::Access, TC.Tid, ir::InvalidMethodId, Info.Addr,
            Info.IsWrite, true});
  }

  std::vector<TraceEvent> take() { return std::move(Events); }

private:
  void push(TraceEvent E) {
    // The deterministic gate serializes hook calls; the lock is belt and
    // braces for any free-running use.
    std::lock_guard<std::mutex> L(M);
    Events.push_back(E);
  }

  const ir::Program &Compiled;
  std::mutex M;
  std::vector<TraceEvent> Events;
};

} // namespace

RecordedTrace recordTrace(const ir::Program &Source,
                          const core::AtomicitySpec &Spec,
                          rt::RunOptions RO) {
  assert(RO.Deterministic && "the oracle only replays deterministic runs");
  instr::InstrumentationOptions IOpts;
  IOpts.Checker = instr::CheckerKind::Velodrome;
  IOpts.LogAccesses = false;
  ir::Program Compiled = instr::compile(Source, Spec.excluded(), IOpts);

  RecordedTrace T;
  RO.ScheduleOut = &T.Schedule;
  TraceRecorder Rec(Compiled);
  rt::Runtime RT(Compiled, &Rec, RO);
  T.Result = RT.run();
  T.Events = Rec.take();
  return T;
}

OracleVerdict decideSerializability(const ir::Program &Source,
                                    const RecordedTrace &Trace) {
  // Node soup: regular transactions plus unary spans. A unary span is
  // lazily split when it already carries a cross edge and its thread
  // performs another access — the same interrupt-on-edge demarcation the
  // online checkers use, replicated offline.
  struct Node {
    uint32_t Tid;
    ir::MethodId Site;
    bool Regular;
    bool Interrupted = false;
    std::vector<int> Out;
  };
  std::vector<Node> Nodes;
  std::unordered_map<uint32_t, int> Cur; // tid -> current node, -1 = none.

  auto NewNode = [&](uint32_t Tid, ir::MethodId Site, bool Regular) {
    int Idx = static_cast<int>(Nodes.size());
    Nodes.push_back({Tid, Site, Regular, false, {}});
    auto It = Cur.find(Tid);
    if (It != Cur.end() && It->second >= 0)
      Nodes[It->second].Out.push_back(Idx); // Program-order edge.
    Cur[Tid] = Idx;
    return Idx;
  };

  uint64_t ConflictEdges = 0;
  auto AddConflict = [&](int Src, int Dst) {
    if (Src < 0 || Src == Dst)
      return;
    Nodes[Src].Out.push_back(Dst);
    ++ConflictEdges;
    if (!Nodes[Src].Regular)
      Nodes[Src].Interrupted = true;
    if (!Nodes[Dst].Regular)
      Nodes[Dst].Interrupted = true;
  };

  // Last-access metadata per address (field or sync slot), never collected.
  struct FieldState {
    int LastWrite = -1;
    std::vector<std::pair<uint32_t, int>> Readers;
  };
  std::unordered_map<uint32_t, FieldState> Fields;

  for (const TraceEvent &E : Trace.Events) {
    switch (E.K) {
    case TraceEvent::Kind::ThreadStart:
      NewNode(E.Tid, ir::InvalidMethodId, /*Regular=*/false);
      break;
    case TraceEvent::Kind::ThreadEnd:
      Cur[E.Tid] = -1;
      break;
    case TraceEvent::Kind::TxBegin:
      NewNode(E.Tid, E.Site, /*Regular=*/true);
      break;
    case TraceEvent::Kind::TxEnd:
      NewNode(E.Tid, ir::InvalidMethodId, /*Regular=*/false);
      break;
    case TraceEvent::Kind::Access: {
      auto It = Cur.find(E.Tid);
      if (It == Cur.end() || It->second < 0)
        break; // Access outside any span: aborted-run debris; ignore.
      int C = It->second;
      if (!Nodes[C].Regular && Nodes[C].Interrupted)
        C = NewNode(E.Tid, ir::InvalidMethodId, /*Regular=*/false);
      FieldState &F = Fields[E.Addr];
      if (!E.IsWrite) {
        // READ rule (Fig. 5): write→read edge, then record the reader.
        int *Slot = nullptr;
        for (auto &R : F.Readers)
          if (R.first == E.Tid)
            Slot = &R.second;
        bool AlreadyRecorded = Slot != nullptr && *Slot == C;
        if (!AlreadyRecorded) {
          if (F.LastWrite >= 0 && Nodes[F.LastWrite].Tid != E.Tid)
            AddConflict(F.LastWrite, C);
          if (Slot != nullptr)
            *Slot = C;
          else
            F.Readers.emplace_back(E.Tid, C);
        }
      } else {
        // WRITE rule (Fig. 5): write→write and read→write edges, then
        // take over last-writer and clear readers.
        bool NeedsChange = F.LastWrite != C || !F.Readers.empty();
        if (NeedsChange) {
          if (F.LastWrite >= 0 && Nodes[F.LastWrite].Tid != E.Tid)
            AddConflict(F.LastWrite, C);
          for (const auto &R : F.Readers)
            if (R.first != E.Tid)
              AddConflict(R.second, C);
          F.LastWrite = C;
          F.Readers.clear();
        }
      }
      break;
    }
    }
  }

  // One iterative Tarjan pass over the final graph: a nontrivial SCC is a
  // dependence cycle, i.e. the trace is not conflict-serializable.
  const int N = static_cast<int>(Nodes.size());
  std::vector<int> Index(N, -1), Low(N, 0), SccOf(N, -1);
  std::vector<bool> OnStack(N, false);
  std::vector<int> Stack;
  std::vector<uint64_t> SccSize;
  int NextIndex = 0;

  struct DfsFrame {
    int Node;
    size_t EdgeIdx;
  };
  std::vector<DfsFrame> Dfs;
  for (int Root = 0; Root < N; ++Root) {
    if (Index[Root] != -1)
      continue;
    Dfs.push_back({Root, 0});
    while (!Dfs.empty()) {
      DfsFrame &F = Dfs.back();
      int V = F.Node;
      if (F.EdgeIdx == 0) {
        Index[V] = Low[V] = NextIndex++;
        Stack.push_back(V);
        OnStack[V] = true;
      }
      if (F.EdgeIdx < Nodes[V].Out.size()) {
        int W = Nodes[V].Out[F.EdgeIdx++];
        if (Index[W] == -1)
          Dfs.push_back({W, 0});
        else if (OnStack[W])
          Low[V] = std::min(Low[V], Index[W]);
        continue;
      }
      if (Low[V] == Index[V]) {
        int SccId = static_cast<int>(SccSize.size());
        uint64_t Size = 0;
        for (;;) {
          int W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          SccOf[W] = SccId;
          ++Size;
          if (W == V)
            break;
        }
        SccSize.push_back(Size);
      }
      Dfs.pop_back();
      if (!Dfs.empty())
        Low[Dfs.back().Node] = std::min(Low[Dfs.back().Node], Low[V]);
    }
  }

  OracleVerdict Verdict;
  Verdict.Nodes = static_cast<uint64_t>(N);
  Verdict.ConflictEdges = ConflictEdges;
  for (int V = 0; V < N; ++V) {
    if (SccSize[SccOf[V]] < 2)
      continue;
    Verdict.Serializable = false;
    if (Nodes[V].Regular && Nodes[V].Site != ir::InvalidMethodId)
      Verdict.CycleMethods.insert(Source.Methods[Nodes[V].Site].Name);
  }
  return Verdict;
}

} // namespace oracle
} // namespace dc
