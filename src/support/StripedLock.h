//===- support/StripedLock.h - Cache-padded lock stripes --------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size set of cache-line-padded spin locks for sharding a data
/// structure by owner (the IDG shards by thread). Stripes form a total
/// order by index: acquiring stripes in ascending index order — and never
/// acquiring a lower index while holding a higher one — is deadlock-free.
///
/// Each stripe remembers the last holder that acquired it, so callers can
/// detect a cross-holder handoff. On a real multicore a lock handoff is at
/// least one coherence miss (the lock word plus the protected lines migrate
/// between caches); the analysis uses this signal to charge its calibrated
/// remote-miss penalty (see DESIGN.md §2) on the single-core host.
///
//===----------------------------------------------------------------------===//

#ifndef DC_SUPPORT_STRIPEDLOCK_H
#define DC_SUPPORT_STRIPEDLOCK_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

#include "support/SpinLock.h"

namespace dc {

/// A set of spin-lock stripes with last-holder tracking.
class StripedLockSet {
public:
  /// Holder id meaning "never locked".
  static constexpr uint32_t NoHolder = ~0u;

  explicit StripedLockSet(uint32_t Count)
      : Stripes(new Stripe[Count]), N(Count) {
    assert(Count > 0 && "need at least one stripe");
  }

  uint32_t count() const { return N; }

  /// Acquires stripe \p I on behalf of \p Holder. Returns true when the
  /// stripe was last held by a *different* holder (a handoff): on real
  /// hardware the stripe's lines would miss in \p Holder's cache.
  bool lock(uint32_t I, uint32_t Holder) {
    assert(I < N && "stripe index out of range");
    Stripe &S = Stripes[I];
    S.L.lock();
    bool Handoff = S.LastHolder != Holder && S.LastHolder != NoHolder;
    if (Handoff)
      ++S.Handoffs;
    S.LastHolder = Holder;
    S.CurHolder.store(Holder, std::memory_order_relaxed);
    return Handoff;
  }

  void unlock(uint32_t I) {
    assert(I < N && "stripe index out of range");
    Stripes[I].CurHolder.store(NoHolder, std::memory_order_relaxed);
    Stripes[I].L.unlock();
  }

  /// True when \p Holder currently holds stripe \p I. Only exact for the
  /// *calling* holder asking about itself (another holder's acquisition or
  /// release races with the read); that is the one query the tests need —
  /// "which stripes do I hold right now?".
  bool heldBy(uint32_t I, uint32_t Holder) const {
    assert(I < N && "stripe index out of range");
    return Stripes[I].CurHolder.load(std::memory_order_relaxed) == Holder;
  }

  /// Number of stripes currently held by \p Holder (see heldBy).
  uint32_t heldCount(uint32_t Holder) const {
    uint32_t Count = 0;
    for (uint32_t I = 0; I < N; ++I)
      Count += heldBy(I, Holder) ? 1 : 0;
    return Count;
  }

  /// Total cross-holder handoffs across all stripes. Racy if called while
  /// stripes are contended; the analysis only reads it after the run.
  uint64_t totalHandoffs() const {
    uint64_t Sum = 0;
    for (uint32_t I = 0; I < N; ++I)
      Sum += Stripes[I].Handoffs;
    return Sum;
  }

private:
  struct alignas(64) Stripe {
    SpinLock L;
    uint32_t LastHolder = NoHolder; ///< Guarded by L.
    uint64_t Handoffs = 0;          ///< Guarded by L.
    /// Current holder (NoHolder when free). Written while holding L;
    /// atomic so a holder can ask "do I hold this?" without taking locks.
    std::atomic<uint32_t> CurHolder{NoHolder};
  };

  std::unique_ptr<Stripe[]> Stripes;
  uint32_t N;
};

} // namespace dc

#endif // DC_SUPPORT_STRIPEDLOCK_H
