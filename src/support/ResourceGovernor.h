//===- support/ResourceGovernor.h - Unified resource accounting -*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One accounting point for the three resources the checker can exhaust
/// under load: live (uncollected) transactions, bytes held by the log-chunk
/// arena, and the PCD queue depth. Producers update gauges with relaxed
/// atomics; the degradation ladder (DESIGN.md §10) polls overBudget() at
/// coarse points — chunk refills and transaction boundaries, never the
/// per-access hot path — and sheds work soundly when a budget is breached.
///
/// Budgets of 0 mean unlimited (the default): a run with no budgets pays
/// only the gauge updates, which happen at most once per transaction, per
/// 8-chunk refill batch, and per PCD enqueue/dequeue.
///
/// Hysteresis: pressure "subsides" only once every breached gauge is back
/// under half its budget (underLowWater), so the ladder does not flap
/// between shedding and re-arming at the budget boundary.
///
//===----------------------------------------------------------------------===//

#ifndef DC_SUPPORT_RESOURCEGOVERNOR_H
#define DC_SUPPORT_RESOURCEGOVERNOR_H

#include <atomic>
#include <cstdint>

#include "support/Statistic.h"

namespace dc {

/// Configurable ceilings; 0 = unlimited.
struct ResourceBudgets {
  uint64_t MaxLiveTxs = 0;  ///< Live (allocated, uncollected) transactions.
  uint64_t MaxLogBytes = 0; ///< Bytes of log chunks out of the pool.
  uint64_t MaxQueueDepth = 0; ///< PCD queue entries (informational; the
                              ///< pool's own bound provides backpressure).

  bool any() const {
    return MaxLiveTxs != 0 || MaxLogBytes != 0 || MaxQueueDepth != 0;
  }
};

/// Pressure sources, as a bitmask (pressure() return value).
enum : uint8_t {
  PressureLiveTxs = 1,
  PressureLogBytes = 2,
  PressureQueueDepth = 4,
};

/// Thread-safe gauge set with budgets and high-water marks.
class ResourceGovernor {
public:
  void configure(const ResourceBudgets &Budgets) { B = Budgets; }
  const ResourceBudgets &budgets() const { return B; }

  void txCreated() {
    bumpMax(LiveTxsMax, LiveTxs.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  void txsFreed(uint64_t N) {
    LiveTxs.fetch_sub(static_cast<int64_t>(N), std::memory_order_relaxed);
  }

  /// \p Delta in bytes; positive when chunks leave the pool's free list,
  /// negative when the collector splices them back.
  void logBytes(int64_t Delta) {
    int64_t Now = LogBytesHeld.fetch_add(Delta, std::memory_order_relaxed) +
                  Delta;
    if (Delta > 0)
      bumpMax(LogBytesMax, static_cast<uint64_t>(Now < 0 ? 0 : Now));
  }

  void queueDepth(int64_t Delta) {
    int64_t Now = Queue.fetch_add(Delta, std::memory_order_relaxed) + Delta;
    if (Delta > 0)
      bumpMax(QueueMax, static_cast<uint64_t>(Now < 0 ? 0 : Now));
  }

  uint64_t liveTxs() const {
    int64_t V = LiveTxs.load(std::memory_order_relaxed);
    return V < 0 ? 0 : static_cast<uint64_t>(V);
  }
  uint64_t logBytesHeld() const {
    int64_t V = LogBytesHeld.load(std::memory_order_relaxed);
    return V < 0 ? 0 : static_cast<uint64_t>(V);
  }
  uint64_t queueDepthNow() const {
    int64_t V = Queue.load(std::memory_order_relaxed);
    return V < 0 ? 0 : static_cast<uint64_t>(V);
  }

  /// Bitmask of breached budgets (0 = within budget).
  uint8_t pressure() const {
    uint8_t P = 0;
    if (B.MaxLiveTxs != 0 && liveTxs() > B.MaxLiveTxs)
      P |= PressureLiveTxs;
    if (B.MaxLogBytes != 0 && logBytesHeld() > B.MaxLogBytes)
      P |= PressureLogBytes;
    if (B.MaxQueueDepth != 0 && queueDepthNow() > B.MaxQueueDepth)
      P |= PressureQueueDepth;
    return P;
  }
  bool overBudget() const { return pressure() != 0; }

  /// True once every budgeted gauge is under half its budget — the
  /// hysteresis condition for re-arming shed logging.
  bool underLowWater() const {
    if (B.MaxLiveTxs != 0 && liveTxs() > B.MaxLiveTxs / 2)
      return false;
    if (B.MaxLogBytes != 0 && logBytesHeld() > B.MaxLogBytes / 2)
      return false;
    if (B.MaxQueueDepth != 0 && queueDepthNow() > B.MaxQueueDepth / 2)
      return false;
    return true;
  }

  void countBreach() { Breaches.fetch_add(1, std::memory_order_relaxed); }

  /// Streaming service mode: records one retirement-window flush and how
  /// many live transactions survived it (cross-window state the collector
  /// had to pin into the next window rather than retire). The pinned peak
  /// is the number bounded-memory soaks watch: if it grows monotonically,
  /// retirement is not keeping up with admission.
  void windowFlushed(uint64_t PinnedLiveTxs) {
    WindowsFlushed.fetch_add(1, std::memory_order_relaxed);
    WindowPinnedLast.store(PinnedLiveTxs, std::memory_order_relaxed);
    bumpMax(WindowPinnedMax, PinnedLiveTxs);
  }
  uint64_t windowsFlushed() const {
    return WindowsFlushed.load(std::memory_order_relaxed);
  }
  uint64_t windowPinnedLast() const {
    return WindowPinnedLast.load(std::memory_order_relaxed);
  }

  /// Exports the gauges/high-water marks as governor.* statistics.
  void flush(StatisticRegistry &Stats) const {
    Stats.get("governor.live_txs_peak")
        .updateMax(LiveTxsMax.load(std::memory_order_relaxed));
    Stats.get("governor.log_bytes_peak")
        .updateMax(LogBytesMax.load(std::memory_order_relaxed));
    Stats.get("governor.queue_depth_peak")
        .updateMax(QueueMax.load(std::memory_order_relaxed));
    Stats.get("governor.budget_breaches")
        .add(Breaches.load(std::memory_order_relaxed));
    if (WindowsFlushed.load(std::memory_order_relaxed) != 0) {
      Stats.get("governor.windows_flushed")
          .add(WindowsFlushed.load(std::memory_order_relaxed));
      Stats.get("governor.window_pinned_peak")
          .updateMax(WindowPinnedMax.load(std::memory_order_relaxed));
    }
  }

private:
  static void bumpMax(std::atomic<uint64_t> &Max, uint64_t V) {
    uint64_t Prev = Max.load(std::memory_order_relaxed);
    while (V > Prev &&
           !Max.compare_exchange_weak(Prev, V, std::memory_order_relaxed))
      ;
  }

  ResourceBudgets B;
  std::atomic<int64_t> LiveTxs{0};
  std::atomic<int64_t> LogBytesHeld{0};
  std::atomic<int64_t> Queue{0};
  std::atomic<uint64_t> LiveTxsMax{0};
  std::atomic<uint64_t> LogBytesMax{0};
  std::atomic<uint64_t> QueueMax{0};
  std::atomic<uint64_t> Breaches{0};
  std::atomic<uint64_t> WindowsFlushed{0};
  std::atomic<uint64_t> WindowPinnedLast{0};
  std::atomic<uint64_t> WindowPinnedMax{0};
};

} // namespace dc

#endif // DC_SUPPORT_RESOURCEGOVERNOR_H
