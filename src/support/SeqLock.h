//===- support/SeqLock.h - Sequence lock for optimistic readers -*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sequence lock: a single epoch word that is even while the protected
/// state is stable and odd while a writer is mutating it. Readers snapshot
/// the epoch, read the state optimistically, and retry if the epoch moved or
/// was odd. Writers flip the epoch odd, mutate, and flip it back even;
/// mutual exclusion between writers is the caller's job (the incremental
/// cycle detector enters writer mode only while holding its `Mu`).
///
/// The reader-side validation uses a seq_cst fence before the re-read. A
/// reader that (a) publishes data with a release/seq_cst operation, then
/// (b) fences, then (c) observes the pre-write epoch, is ordered before the
/// writer's post-`writeBegin` fence in the single total order of seq_cst
/// operations ([atomics.fences]) — so the writer's critical section is
/// guaranteed to observe the reader's publication. DESIGN.md §12 spells out
/// how the cycle detector leans on this for its lock-free consistent-edge
/// fast path.
///
//===----------------------------------------------------------------------===//

#ifndef DC_SUPPORT_SEQLOCK_H
#define DC_SUPPORT_SEQLOCK_H

#include <atomic>
#include <cstdint>

#include "support/SpinLock.h"

namespace dc {

/// A one-word sequence lock. Writer mutual exclusion is external.
class SeqLock {
public:
  /// Begin an optimistic read section: returns an even epoch to validate
  /// against. Spins (with yielding backoff) while a writer is in progress.
  uint64_t readBegin() const {
    YieldBackoff Backoff;
    for (;;) {
      uint64_t E = Epoch.load(std::memory_order_acquire);
      if ((E & 1) == 0)
        return E;
      Backoff.pause();
    }
  }

  /// Validate an optimistic read section begun at epoch \p E. Returns true
  /// if the section raced with a writer and must be retried. The seq_cst
  /// fence also orders any store the reader made before this call ahead of
  /// a writer whose writeBegin() this load does not observe.
  bool readRetry(uint64_t E) const {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    return Epoch.load(std::memory_order_relaxed) != E;
  }

  /// Enter writer mode: epoch becomes odd. Caller must hold the external
  /// writer mutex. The fence pairs with readRetry's fence (see \file docs).
  void writeBegin() {
    Epoch.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  /// Leave writer mode: epoch becomes even again, releasing the mutations
  /// to subsequent readBegin() acquires.
  void writeEnd() { Epoch.fetch_add(1, std::memory_order_release); }

  /// True while a writer section is open (diagnostics only).
  bool writeActive() const {
    return (Epoch.load(std::memory_order_relaxed) & 1) != 0;
  }

private:
  std::atomic<uint64_t> Epoch{0};
};

/// RAII writer section. The caller must already hold the external mutex
/// that serializes writers.
class SeqWriteGuard {
public:
  explicit SeqWriteGuard(SeqLock &L) : Lock(L) { Lock.writeBegin(); }
  ~SeqWriteGuard() { Lock.writeEnd(); }
  SeqWriteGuard(const SeqWriteGuard &) = delete;
  SeqWriteGuard &operator=(const SeqWriteGuard &) = delete;

private:
  SeqLock &Lock;
};

} // namespace dc

#endif // DC_SUPPORT_SEQLOCK_H
