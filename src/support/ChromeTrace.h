//===- support/ChromeTrace.h - chrome://tracing timeline export -*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe recorder for the Chrome trace-event JSON format
/// (chrome://tracing, Perfetto's legacy importer). Streaming service mode
/// (DESIGN.md §15) uses it to export a postmortem timeline of transactions,
/// cross-thread edges, SCC merges, window flushes, degradation events, and
/// checker faults.
///
/// The recorder is deliberately dumb: engines append pre-classified events
/// (instant or complete) with numeric/string args; writeJson renders the
/// single {"traceEvents": [...]} document. Timestamps are microseconds on
/// the recorder's own steady clock (nowUs), so events from every component
/// of one run share a timebase. A bounded buffer keeps an hours-long soak
/// from accumulating unbounded trace memory: past MaxEvents the recorder
/// drops new events and counts them (droppedEvents), which the final
/// metadata event reports.
///
//===----------------------------------------------------------------------===//

#ifndef DC_SUPPORT_CHROMETRACE_H
#define DC_SUPPORT_CHROMETRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "support/SpinLock.h"

namespace dc {

class TraceRecorder {
public:
  struct Options {
    /// Hard cap on buffered events; exceeding it drops (and counts).
    size_t MaxEvents = 1u << 20;
  };

  TraceRecorder() : TraceRecorder(Options()) {}
  explicit TraceRecorder(Options O)
      : Opts(O), Epoch(std::chrono::steady_clock::now()) {}

  TraceRecorder(const TraceRecorder &) = delete;
  TraceRecorder &operator=(const TraceRecorder &) = delete;

  /// Microseconds since the recorder was created (the trace timebase).
  uint64_t nowUs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Epoch)
            .count());
  }

  /// One event's args: numeric and string key/value pairs.
  struct Args {
    std::vector<std::pair<std::string, uint64_t>> Num;
    std::vector<std::pair<std::string, std::string>> Str;
    Args &num(std::string K, uint64_t V) {
      Num.emplace_back(std::move(K), V);
      return *this;
    }
    Args &str(std::string K, std::string V) {
      Str.emplace_back(std::move(K), std::move(V));
      return *this;
    }
  };

  /// An instant event ("ph":"i") at nowUs() on track \p Tid.
  void instant(const char *Cat, std::string Name, uint32_t Tid,
               Args A = Args());

  /// A complete event ("ph":"X") spanning [TsUs, TsUs+DurUs) on \p Tid.
  void complete(const char *Cat, std::string Name, uint32_t Tid, uint64_t TsUs,
                uint64_t DurUs, Args A = Args());

  /// A counter event ("ph":"C"): one sample of named series at nowUs().
  void counter(const char *Cat, std::string Name, Args A);

  size_t size() const;
  uint64_t droppedEvents() const {
    return Dropped.load(std::memory_order_relaxed);
  }

  /// Renders the whole buffer as a {"traceEvents": [...]} document.
  void writeJson(std::ostream &OS) const;
  /// Convenience wrapper; returns false if the file cannot be written.
  bool writeJson(const std::string &Path) const;

private:
  struct Event {
    char Ph;
    const char *Cat;
    std::string Name;
    uint32_t Tid;
    uint64_t Ts;
    uint64_t Dur;
    Args A;
  };

  void push(Event E);

  Options Opts;
  std::chrono::steady_clock::time_point Epoch;
  mutable SpinLock Lock;
  std::vector<Event> Events;
  std::atomic<uint64_t> Dropped{0};
};

} // namespace dc

#endif // DC_SUPPORT_CHROMETRACE_H
