//===- support/SpinLock.h - Lightweight spin locks --------------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small test-and-test-and-set spin locks with yielding backoff. The host
/// may be heavily oversubscribed (more program threads than cores), so every
/// spin loop must eventually yield to the scheduler instead of burning the
/// timeslice of the thread it is waiting on.
///
//===----------------------------------------------------------------------===//

#ifndef DC_SUPPORT_SPINLOCK_H
#define DC_SUPPORT_SPINLOCK_H

#include <atomic>
#include <cstdint>
#include <thread>

namespace dc {

/// Exponential-ish backoff helper for spin loops: a few pause iterations,
/// then yield to the OS scheduler. Keeps single-core runs live.
class YieldBackoff {
public:
  void pause() {
    if (Spins < SpinLimit) {
      ++Spins;
      for (unsigned I = 0; I < Spins * 4; ++I)
        std::atomic_signal_fence(std::memory_order_seq_cst);
      return;
    }
    std::this_thread::yield();
  }

  void reset() { Spins = 0; }

private:
  static constexpr unsigned SpinLimit = 8;
  unsigned Spins = 0;
};

/// A one-word test-and-test-and-set lock. Not reentrant.
class SpinLock {
public:
  void lock() {
    YieldBackoff Backoff;
    for (;;) {
      if (!Flag.load(std::memory_order_relaxed) &&
          !Flag.exchange(true, std::memory_order_acquire))
        return;
      Backoff.pause();
    }
  }

  bool tryLock() {
    return !Flag.load(std::memory_order_relaxed) &&
           !Flag.exchange(true, std::memory_order_acquire);
  }

  void unlock() { Flag.store(false, std::memory_order_release); }

private:
  std::atomic<bool> Flag{false};
};

/// RAII guard for SpinLock.
class SpinLockGuard {
public:
  explicit SpinLockGuard(SpinLock &L) : Lock(L) { Lock.lock(); }
  ~SpinLockGuard() { Lock.unlock(); }
  SpinLockGuard(const SpinLockGuard &) = delete;
  SpinLockGuard &operator=(const SpinLockGuard &) = delete;

private:
  SpinLock &Lock;
};

} // namespace dc

#endif // DC_SUPPORT_SPINLOCK_H
