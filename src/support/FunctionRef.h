//===- support/FunctionRef.h - Non-owning callable reference ----*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal llvm::function_ref equivalent: a cheap, non-owning reference to
/// a callable. Used for the access-wrapping hook so checkers can run the
/// program's heap access inside their critical section without a std::function
/// allocation on the hot path.
///
//===----------------------------------------------------------------------===//

#ifndef DC_SUPPORT_FUNCTIONREF_H
#define DC_SUPPORT_FUNCTIONREF_H

#include <type_traits>
#include <utility>

namespace dc {

template <typename Fn> class function_ref;

/// Non-owning reference to a callable with signature Ret(Params...).
/// The referenced callable must outlive the function_ref.
template <typename Ret, typename... Params>
class function_ref<Ret(Params...)> {
public:
  function_ref() = default;

  template <typename Callable,
            typename = std::enable_if_t<!std::is_same_v<
                std::remove_cvref_t<Callable>, function_ref>>>
  function_ref(Callable &&C)
      : Callback(&callImpl<std::remove_reference_t<Callable>>),
        Callee(const_cast<void *>(
            static_cast<const void *>(std::addressof(C)))) {}

  Ret operator()(Params... Args) const {
    return Callback(Callee, std::forward<Params>(Args)...);
  }

  explicit operator bool() const { return Callback != nullptr; }

private:
  template <typename Callable>
  static Ret callImpl(void *Callee, Params... Args) {
    return (*reinterpret_cast<Callable *>(Callee))(
        std::forward<Params>(Args)...);
  }

  Ret (*Callback)(void *, Params...) = nullptr;
  void *Callee = nullptr;
};

} // namespace dc

#endif // DC_SUPPORT_FUNCTIONREF_H
