//===- support/FaultPlan.h - Deterministic fault injection ------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A counter-keyed plan of checker-internal faults to inject during one run.
/// Every trigger is keyed to a deterministic event counter — "the Nth chunk
/// refill request", "the Nth SCC enqueued to the PCD pool" — rather than to
/// wall-clock time, so the same (program, schedule, plan) triple injects the
/// same faults at the same points on every replay. That bit-exactness is
/// what lets the schedule fuzzer sweep fault plans as one more config axis
/// (tools/FuzzLib) and lets dcfuzz witnesses carry a '# fault-plan:' line
/// that reproduces the degraded run.
///
/// The injected faults mirror the overload failure modes DESIGN.md §10
/// catalogues: allocation failure in the log-chunk arena, a PCD worker that
/// stalls or dies mid-replay, PCD queue saturation, and a delayed
/// collector. The checker must degrade *soundly* under every one of them:
/// the reported violation set (precise + potential) stays a superset of the
/// true violations, and the run terminates with a structured RunResult.
///
//===----------------------------------------------------------------------===//

#ifndef DC_SUPPORT_FAULTPLAN_H
#define DC_SUPPORT_FAULTPLAN_H

#include <cstdint>
#include <string>

namespace dc {

/// A deterministic, counter-keyed fault-injection plan. All fields are
/// 1-based trigger counts; 0 disables the fault. Default-constructed plans
/// inject nothing (the production configuration).
struct FaultPlan {
  /// The Nth chunk refill request against the LogChunkPool fails as if
  /// allocation returned null. The requesting thread sheds logging (sound
  /// ICD-only degradation) instead of crashing or silently dropping the
  /// entry.
  uint64_t AllocFailAt = 0;
  /// The worker that dequeues the Nth SCC *enqueued* to the PCD pool
  /// degrades it to potential violations and then stalls permanently
  /// (heartbeats stop; the watchdog converts this into
  /// CheckerFault::PcdWorkerStall). Keying on the enqueue counter keeps
  /// the trigger deterministic even though dequeue order is racy.
  uint64_t WorkerStallAt = 0;
  /// The worker that dequeues the Nth enqueued SCC throws mid-replay. The
  /// pool catches, degrades the SCC to potential violations, and keeps the
  /// worker alive (counted in pcd.worker_exceptions).
  uint64_t WorkerDieAt = 0;
  /// PCD workers refuse to dequeue until the Nth SCC has been enqueued,
  /// saturating the bounded queue so the timed-enqueue/backoff/degrade
  /// path is exercised.
  uint64_t QueueHoldUntil = 0;
  /// Every collector pass sleeps this long (without heartbeating) before
  /// collecting; above the watchdog timeout this trips
  /// CheckerFault::CollectorStall.
  uint32_t CollectorDelayMs = 0;
  /// The Nth retirement-window flush (streaming service mode) wedges: the
  /// flushing thread sleeps past the stall timeout without heartbeating its
  /// window slot, so the watchdog converts the stuck boundary into
  /// CheckerFault::WindowFlushStall instead of the server hanging silently.
  uint64_t WindowStallAt = 0;

  /// True iff any fault is armed.
  bool any() const {
    return AllocFailAt != 0 || WorkerStallAt != 0 || WorkerDieAt != 0 ||
           QueueHoldUntil != 0 || CollectorDelayMs != 0 || WindowStallAt != 0;
  }

  bool operator==(const FaultPlan &O) const {
    return AllocFailAt == O.AllocFailAt && WorkerStallAt == O.WorkerStallAt &&
           WorkerDieAt == O.WorkerDieAt && QueueHoldUntil == O.QueueHoldUntil &&
           CollectorDelayMs == O.CollectorDelayMs &&
           WindowStallAt == O.WindowStallAt;
  }

  /// Canonical spec string: comma-separated `key@count` tokens in a fixed
  /// order, or "none" for the empty plan. Round-trips through parse().
  std::string spec() const;

  /// Parses a spec string: "none" / "" → empty plan; otherwise tokens
  ///   alloc-fail@N, worker-stall@N, worker-die@N, queue-hold@N,
  ///   collect-delay-ms@N, window-stall@N
  /// separated by commas. Returns false with \p Error set on bad input.
  static bool parse(const std::string &Spec, FaultPlan &Out,
                    std::string &Error);
};

} // namespace dc

#endif // DC_SUPPORT_FAULTPLAN_H
