//===- rt/Scheduler.h - Pluggable deterministic scheduling ------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scheduling strategies for the deterministic gate in rt::Runtime. The gate
/// serializes execution to one runnable thread per instruction boundary and
/// asks a Scheduler which thread to admit next. Three strategies ship:
///
///  * RandomScheduler — the historical uniform-random walk (bit-exact with
///    the pre-Scheduler gate, so every recorded schedule seed still replays).
///  * PctScheduler — probabilistic concurrency testing: random distinct
///    thread priorities plus k priority *change points* at random admission
///    indices. Finds depth-(k+1) ordering bugs with probability ≥ 1/(n·L^k),
///    far better than a uniform walk for small k.
///  * ExhaustiveExplorer — bounded-exhaustive DFS over gate decisions across
///    *many* runs: re-executes the program repeatedly, forcing a recorded
///    prefix and then a deterministic default policy, and backtracks over
///    untried candidates subject to a preemption bound and state-hash
///    pruning. For tiny programs this enumerates every schedule with ≤ B
///    preemptions.
///
/// The gate reports, per candidate, whether the thread is *spinning*: its
/// last admission was a blocked retry (monitor enter, wait, join) and no
/// other thread has executed a real instruction since. Re-admitting a
/// spinning thread cannot change program state, so PCT and the explorer
/// deprioritize/skip such candidates — this is what makes "keep running the
/// same thread" policies livelock-free. RandomScheduler ignores the flag to
/// preserve historical schedules.
///
//===----------------------------------------------------------------------===//

#ifndef DC_RT_SCHEDULER_H
#define DC_RT_SCHEDULER_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "support/Rng.h"

namespace dc {
namespace rt {

/// Which strategy the gate uses once the explicit schedule is exhausted.
enum class ScheduleStrategy : uint8_t {
  Random, ///< Uniform random over runnable threads (seed-stable baseline).
  Pct,    ///< Priority scheduling with random change points.
};

/// What the gate does when RunOptions::ExplicitSchedule runs out (or an
/// entry names a thread that is not runnable) while threads are still live.
enum class ScheduleExhaustPolicy : uint8_t {
  /// Documented legacy behaviour: skip unusable entries; once the list is
  /// exhausted the seeded strategy takes over. Right for interactive use
  /// ("steer the first N decisions, then explore").
  Fallback,
  /// Abort the run and set RunResult::ScheduleDiverged. Right for replays:
  /// a recorded schedule that no longer covers the execution, or whose
  /// entries stop matching runnable threads, means the replay has diverged
  /// from the recorded run and any result would describe some *other*
  /// interleaving.
  HardError,
};

/// The gate's view of one scheduling decision.
struct SchedulerView {
  /// Candidates[t] — thread t is runnable (live, not finished).
  const std::vector<bool> &Candidates;
  /// Spinning[t] — t's last admission was a blocked retry and nothing has
  /// changed since; re-admitting it cannot make progress.
  const std::vector<bool> &Spinning;
  /// Progress[t] — admissions of t that executed a real instruction (i.e.
  /// were not blocked retries). For this IR, whose control flow never
  /// branches on shared data, the progress vector pins down each thread's
  /// executed instruction prefix exactly.
  const std::vector<uint64_t> &Progress;
  /// Index of this decision (total admissions so far, including explicit
  /// schedule entries).
  uint64_t Step;
};

/// Strategy interface. pick() is called with at least one candidate set and
/// must return a t with Candidates[t] true. Implementations are not
/// thread-safe; the gate serializes calls.
class Scheduler {
public:
  virtual ~Scheduler();
  virtual uint32_t pick(const SchedulerView &View) = 0;
};

/// The historical uniform-random walk. Must stay bit-exact with the old
/// in-gate logic (Rng.nextBelow(live), then the nth candidate in ascending
/// thread id order): recorded seeds in tests and benchmarks depend on it.
class RandomScheduler final : public Scheduler {
public:
  explicit RandomScheduler(uint64_t Seed) : Rng(Seed) {}
  uint32_t pick(const SchedulerView &View) override;

private:
  SplitMix64 Rng;
};

/// PCT (Burckhardt et al., "A Randomized Scheduler with Probabilistic
/// Guarantees of Finding Bugs"): each thread gets a distinct random
/// priority; at k random admission indices the currently running thread's
/// priority drops below everyone else's; the gate always admits the
/// highest-priority runnable (non-spinning, see file comment) thread.
class PctScheduler final : public Scheduler {
public:
  /// \p ChangePoints is PCT's k (bug depth d = k+1). \p ExpectedSteps is
  /// the admission-count horizon change points are sampled over; 0 picks a
  /// default suited to the tiny programs the fuzzer generates.
  PctScheduler(uint64_t Seed, uint32_t NumThreads, uint32_t ChangePoints,
               uint64_t ExpectedSteps);
  uint32_t pick(const SchedulerView &View) override;

private:
  SplitMix64 Rng;
  std::vector<uint64_t> Priority;    ///< Higher runs first.
  std::vector<uint64_t> ChangeSteps; ///< Sorted admission indices.
  size_t NextChange = 0;
  uint64_t LowBand;            ///< Next demotion priority (counts down to 1).
  uint32_t Last = UINT32_MAX;  ///< Thread admitted by the previous pick.
};

/// Bounded-exhaustive DFS over schedules, across repeated runs:
///
///   ExhaustiveExplorer Ex(Opts);
///   while (Ex.beginRun()) {
///     // execute a fresh Runtime with RunOptions::CustomScheduler = &Ex
///     Ex.endRun();
///     // Ex.lastSchedule() is the schedule the run just took
///   }
///
/// Each run replays the forced prefix for the current DFS path, then follows
/// a deterministic default ("stay on the previous thread if runnable and not
/// spinning, else lowest non-spinning id"), recording every decision point
/// and its candidate set. endRun() backtracks: the deepest decision with an
/// untried alternative that (a) keeps the cumulative preemption count within
/// PreemptionBound and (b) leads to a (state, remaining budget, action)
/// triple not seen before becomes the new forced path. Preemptions are
/// counted only when the previously running thread was still runnable and
/// not spinning — forced switches at blocking points are free, matching the
/// usual CHESS-style bound.
///
/// State hashing keys on the per-thread progress counts plus the runnable
/// and spinning sets. For programs without wait/notify (everything the
/// fuzzer generates) that is sound: blocked monitor/join retries do not
/// mutate shared state, so the progress vector determines the global state
/// regardless of which interleaving reached it.
class ExhaustiveExplorer final : public Scheduler {
public:
  struct Options {
    uint32_t PreemptionBound = 2;
    /// Safety valve on total runs; the explorer also stops when the DFS
    /// frontier is exhausted.
    uint64_t MaxRuns = 1ull << 20;
    bool StateHashPruning = true;
  };

  ExhaustiveExplorer() = default;
  explicit ExhaustiveExplorer(Options O) : Opts(O) {}

  /// Prepares the next run. Returns false when the search space (or the run
  /// budget) is exhausted.
  bool beginRun();
  /// Commits the run just executed and computes the next DFS path.
  void endRun();

  uint32_t pick(const SchedulerView &View) override;

  /// The schedule of the most recently completed run.
  const std::vector<uint32_t> &lastSchedule() const { return LastSchedule; }
  uint64_t runsCompleted() const { return Runs; }
  /// True when the DFS frontier is empty (every within-bound, non-pruned
  /// schedule has been executed).
  bool exhausted() const { return Exhausted; }
  /// True if a forced prefix entry was not a candidate when replayed (the
  /// program is not behaving deterministically under the gate).
  bool diverged() const { return Diverged; }

private:
  struct Frame {
    std::vector<uint32_t> Cands; ///< Preferred candidate list at this point.
    uint32_t Chosen = 0;
    uint32_t Prev = UINT32_MAX;  ///< Thread admitted before this decision.
    bool PrevPreferred = false;  ///< Prev was runnable and not spinning.
    uint64_t StateHash = 0;
    uint32_t PreemptsBefore = 0; ///< Cumulative preemptions before this pick.
    std::vector<uint32_t> Tried; ///< Alternatives already explored (or cut).
  };

  static bool contains(const std::vector<uint32_t> &V, uint32_t X);
  static uint64_t stateHash(const SchedulerView &View);
  static uint64_t transitionKey(uint64_t State, uint32_t BudgetLeft,
                                uint32_t Action);

  Options Opts;
  std::vector<Frame> Frames; ///< Forced prefix + frames this run appended.
  size_t Cursor = 0;         ///< Next decision index within the run.
  std::vector<uint32_t> CurSchedule;
  std::vector<uint32_t> LastSchedule;
  std::unordered_set<uint64_t> Visited;
  uint32_t PrevChosen = UINT32_MAX;
  uint32_t CumPreempts = 0;
  uint64_t Runs = 0;
  bool Exhausted = false;
  bool Diverged = false;
  bool InRun = false;
};

/// Builds the scheduler RunOptions selects (Random or Pct); the explorer is
/// driven externally via RunOptions::CustomScheduler.
std::unique_ptr<Scheduler> makeScheduler(ScheduleStrategy Strategy,
                                         uint64_t Seed, uint32_t NumThreads,
                                         uint32_t PctChangePoints,
                                         uint64_t PctExpectedSteps);

/// Writes a schedule as whitespace-separated thread ids (with a small
/// comment header); readScheduleFile() accepts that format, ignoring
/// '#'-comment lines. Returns false on I/O failure.
bool writeScheduleFile(const std::string &Path,
                       const std::vector<uint32_t> &Schedule);
bool readScheduleFile(const std::string &Path,
                      std::vector<uint32_t> &Schedule);

} // namespace rt
} // namespace dc

#endif // DC_RT_SCHEDULER_H
