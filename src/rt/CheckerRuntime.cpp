//===- rt/CheckerRuntime.cpp ----------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/CheckerRuntime.h"

using namespace dc;
using namespace dc::rt;

// Out-of-line vtable anchor.
CheckerRuntime::~CheckerRuntime() = default;

const char *dc::rt::toString(CheckerFault F) {
  switch (F) {
  case CheckerFault::None:
    return "none";
  case CheckerFault::PcdWorkerStall:
    return "pcd-worker-stall";
  case CheckerFault::PcdQueueStall:
    return "pcd-queue-stall";
  case CheckerFault::CollectorStall:
    return "collector-stall";
  case CheckerFault::GateStall:
    return "gate-stall";
  case CheckerFault::RingDrainStall:
    return "ring-drain-stall";
  case CheckerFault::WindowFlushStall:
    return "window-flush-stall";
  }
  return "unknown";
}

const char *dc::rt::toString(DegradationEvent::Action A) {
  switch (A) {
  case DegradationEvent::Action::PotentialOnly:
    return "potential-only";
  case DegradationEvent::Action::ShedLogging:
    return "shed-logging";
  case DegradationEvent::Action::Rearm:
    return "rearm";
  }
  return "unknown";
}
