//===- rt/CheckerRuntime.cpp ----------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/CheckerRuntime.h"

using namespace dc;
using namespace dc::rt;

// Out-of-line vtable anchor.
CheckerRuntime::~CheckerRuntime() = default;
