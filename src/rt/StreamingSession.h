//===- rt/StreamingSession.h - Live service-mode event stream ---*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming service mode's observer (DESIGN.md §15). A StreamingSession
/// turns a run's internal events into an NDJSON feed a supervisor can tail:
///
///   {"event":"violation", ...}   as each record is confirmed (ViolationLog
///                                sink — all three engines route through it)
///   {"event":"window", ...}      at every epoch boundary the windowed
///                                engines flush (retired/pinned counts)
///   {"event":"health", ...}      a periodic point-in-time HealthSnapshot
///                                (every HealthEveryWindows boundaries)
///   {"event":"fault", ...}       the first structured CheckerFault
///   {"event":"summary", ...}     once, from finish(): final verdict counts
///                                plus the dcheck exit-code the run maps to
///
/// The session is engine-agnostic: it never touches checker internals, only
/// the records/snapshots handed to it, with sites resolved to method names
/// through a caller-supplied resolver (so this file stays free of any
/// compiled-program dependency). All entry points are thread-safe; one
/// internal lock serializes lines, so the stream is valid NDJSON even with
/// engine threads reporting concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef DC_RT_STREAMINGSESSION_H
#define DC_RT_STREAMINGSESSION_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <ostream>
#include <set>
#include <string>

// Header-only report types; keeps dc_rt link-independent of dc_analysis.
#include "analysis/Violation.h"
#include "rt/CheckerRuntime.h"
#include "support/SpinLock.h"

namespace dc {
namespace rt {

class StreamingSession {
public:
  struct Options {
    /// NDJSON sink; null streams nothing (counters still accumulate).
    std::ostream *Out = nullptr;
    /// Emit a full health event every N window boundaries (0 = never;
    /// window events themselves are always emitted).
    uint32_t HealthEveryWindows = 1;
    /// Resolves an ir::MethodId to its source name; required for readable
    /// blame. Unset renders sites as "m<id>" / unary as "-".
    std::function<std::string(ir::MethodId)> MethodName;
  };

  explicit StreamingSession(Options O) : Opts(std::move(O)) {}

  StreamingSession(const StreamingSession &) = delete;
  StreamingSession &operator=(const StreamingSession &) = delete;

  /// ViolationLog-sink entry point (called under the log's lock, so stream
  /// order is record order).
  void onViolation(const analysis::ViolationRecord &R);

  /// One retirement-window boundary flushed; \p H is the engine's snapshot
  /// taken right after the flush.
  void onWindow(const HealthSnapshot &H);

  /// First structured checker fault of the run.
  void onFault(CheckerFault F, const std::string &Diagnosis);

  /// Emits a health event now (on-demand probe, same shape as periodic).
  void emitHealth(const HealthSnapshot &H);

  /// Final summary line. \p ExitCode is the dcheck contract code the run
  /// maps to (0 clean / 1 violations / 2 fault-or-potential-only).
  void finish(const std::set<std::string> &Blamed,
              const std::set<std::string> &Potential, uint64_t Records,
              CheckerFault Fault, int ExitCode);

  uint64_t violationsStreamed() const {
    return Violations.load(std::memory_order_relaxed);
  }
  uint64_t windowsStreamed() const {
    return Windows.load(std::memory_order_relaxed);
  }

private:
  void writeLine(const std::string &Line);
  std::string siteName(ir::MethodId M) const;
  void healthJson(std::string &S, const HealthSnapshot &H) const;

  Options Opts;
  mutable SpinLock Lock; ///< Serializes stream writes.
  std::atomic<uint64_t> Violations{0};
  std::atomic<uint64_t> Windows{0};
  std::atomic<uint64_t> Seq{0}; ///< Monotonic id across all event lines.
};

} // namespace rt
} // namespace dc

#endif // DC_RT_STREAMINGSESSION_H
