//===- rt/Runtime.h - Threaded interpreter for IR programs ------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a (possibly instrumented) ir::Program: one OS thread per program
/// thread, a shared Heap, reentrant per-object monitors with wait/notify,
/// and fork/join. Safe points sit at instruction boundaries; instrumented
/// accesses run barrier+access fused (see rt/CheckerRuntime.h).
///
/// Two scheduling modes:
///  * free-running — threads race naturally; used for performance runs,
///  * deterministic — a gate admits one runnable thread per instruction,
///    following an explicit schedule and/or a seeded RNG; threads waiting
///    at the gate count as blocked for the checker (Octet then uses its
///    implicit coordination protocol), so tests replay exact interleavings.
///
//===----------------------------------------------------------------------===//

#ifndef DC_RT_RUNTIME_H
#define DC_RT_RUNTIME_H

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "ir/Ir.h"
#include "rt/CheckerRuntime.h"
#include "rt/Heap.h"
#include "rt/Scheduler.h"
#include "rt/ThreadContext.h"

namespace dc {
namespace rt {

/// Execution-mode knobs for one run.
struct RunOptions {
  /// Serialize execution to one thread per instruction boundary.
  bool Deterministic = false;
  /// Seeds the deterministic scheduler's choices (after ExplicitSchedule).
  uint64_t ScheduleSeed = 0;
  /// Deterministic mode: thread ids to run, consumed one per instruction.
  /// What happens when an entry is unusable or the list runs short is
  /// governed by OnScheduleExhausted.
  std::vector<uint32_t> ExplicitSchedule;
  /// Deterministic mode: behaviour when ExplicitSchedule does not cover the
  /// execution. Fallback (default) skips entries naming non-runnable
  /// threads and hands over to the seeded strategy once the list is
  /// exhausted; HardError aborts the run and sets
  /// RunResult::ScheduleDiverged (what replay-based tooling wants).
  ScheduleExhaustPolicy OnScheduleExhausted = ScheduleExhaustPolicy::Fallback;
  /// Deterministic mode: strategy used after ExplicitSchedule (ignored when
  /// CustomScheduler is set).
  ScheduleStrategy Strategy = ScheduleStrategy::Random;
  /// PCT only: number of priority change points (bug depth - 1).
  uint32_t PctChangePoints = 3;
  /// PCT only: admission-count horizon change points are sampled over
  /// (0 = implementation default).
  uint64_t PctExpectedSteps = 0;
  /// Deterministic mode: non-owning scheduler override (the exhaustive
  /// explorer plugs in here). Must outlive the run; takes precedence over
  /// Strategy/ScheduleSeed.
  Scheduler *CustomScheduler = nullptr;
  /// Deterministic mode: when set, every admitted thread id is appended —
  /// the executed schedule, replayable via ExplicitSchedule. Non-owning.
  std::vector<uint32_t> *ScheduleOut = nullptr;
  /// Abort guard: total instructions (including blocked retries) across all
  /// threads before the run is forcibly aborted.
  uint64_t MaxSteps = 1ull << 33;
  /// Free-running mode: yield the OS timeslice every N instructions
  /// (0 = never). Coarsens to real preemption on few-core hosts so
  /// interleavings actually occur; deterministic mode ignores it.
  uint64_t PreemptEveryN = 0;
};

/// Outcome of one run.
struct RunResult {
  double WallSeconds = 0;
  uint64_t Steps = 0;
  bool Aborted = false;
  /// ExplicitSchedule failed to cover the execution under
  /// ScheduleExhaustPolicy::HardError (implies Aborted).
  bool ScheduleDiverged = false;
  /// First checker-internal fault (watchdog diagnosis); None on a healthy
  /// run. Filled by CheckerRuntime::reportHealth.
  CheckerFault Fault = CheckerFault::None;
  /// Human-readable component/phase diagnosis for Fault.
  std::string FaultDiagnosis;
  /// The degradation ladder's structured transition report, in
  /// deterministic-stamp order (see DegradationEvent).
  std::vector<DegradationEvent> Degradation;
};

/// Owns the heap, program threads, and synchronization for one execution.
class Runtime {
public:
  /// \p Checker may be null (uninstrumented baseline run). \p P must
  /// outlive the Runtime.
  Runtime(const ir::Program &P, CheckerRuntime *Checker,
          RunOptions Opts = RunOptions());
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  /// Executes the program to completion (or abort). Runs the program's
  /// main thread on the calling thread. May be called once.
  RunResult run();

  Heap &heap() { return TheHeap; }
  const ir::Program &program() const { return P; }
  uint32_t numThreads() const {
    return static_cast<uint32_t>(P.ThreadEntries.size());
  }

  /// Cooperative abort: blocking loops poll this. Checkers' spin loops
  /// should poll it too.
  const std::atomic<bool> &abortFlag() const { return Aborted; }
  void requestAbort() { Aborted.store(true, std::memory_order_relaxed); }

private:
  class Gate;
  struct Monitor;
  class SyncLayer;

  void threadMain(uint32_t Tid);
  void interpretMethod(ThreadContext &TC, const ir::Method &M, int64_t Param);
  void execBlock(ThreadContext &TC, const std::vector<ir::Instr> &Block);
  void execInstr(ThreadContext &TC, const ir::Instr &I);
  uint64_t evalExpr(ThreadContext &TC, const ir::IndexExpr &E);
  void preStep(ThreadContext &TC);
  /// Counts one step toward the abort budget; used by blocked-retry loops.
  void countStep(ThreadContext &TC);
  void syncEvent(ThreadContext &TC, ObjectId Obj, SyncKind Kind,
                 uint8_t Flags);
  void forkThread(ThreadContext &TC, uint32_t Child);
  void joinThread(ThreadContext &TC, uint32_t Child);

  const ir::Program &P;
  CheckerRuntime *Checker;
  RunOptions Opts;
  Heap TheHeap;
  std::vector<ThreadContext> Contexts;
  std::vector<std::thread> Threads;
  std::unique_ptr<SyncLayer> Sync;
  std::unique_ptr<Gate> TheGate; ///< Non-null in deterministic mode.
  std::atomic<uint64_t> GlobalSteps{0};
  std::atomic<bool> Aborted{false};
  bool HasRun = false;
};

} // namespace rt
} // namespace dc

#endif // DC_RT_RUNTIME_H
