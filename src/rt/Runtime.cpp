//===- rt/Runtime.cpp -----------------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/Runtime.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <unordered_map>

using namespace dc;
using namespace dc::rt;

namespace {
constexpr uint32_t NoOwner = ~0u;
constexpr auto WaitSlice = std::chrono::milliseconds(10);
/// wait() gives up (a legal spurious wakeup) after this long, so a lost
/// notify cannot hang a run: ~5 s in free-running mode, or this many
/// scheduler turns in deterministic mode.
constexpr unsigned SpuriousWakeupSlices = 500;
constexpr unsigned SpuriousWakeupRetries = 100000;
} // namespace

//===----------------------------------------------------------------------===//
// Deterministic gate
//===----------------------------------------------------------------------===//

/// Admits one runnable thread at a time. A thread "holds the turn" while it
/// executes; yieldTurn() hands the turn to the next scheduled candidate and
/// blocks until the turn comes back. Threads blocked here are at safe points
/// and are marked blocked for the checker, so Octet's implicit coordination
/// protocol applies to them.
///
/// Decisions go: explicit schedule entries first, then the Scheduler
/// strategy (RunOptions::CustomScheduler if set, else one built from
/// Strategy/ScheduleSeed). The gate tracks which candidates are *spinning* —
/// their last admission was a blocked retry and no other thread has executed
/// a real instruction since — and hands that plus per-thread progress counts
/// to the strategy (see rt/Scheduler.h).
class Runtime::Gate {
public:
  Gate(Runtime &RT, uint32_t NumThreads, const RunOptions &Opts)
      : RT(RT), Candidate(NumThreads, false), Spinning(NumThreads, false),
        Progress(NumThreads, 0), Explicit(Opts.ExplicitSchedule),
        Exhaust(Opts.OnScheduleExhausted), Record(Opts.ScheduleOut) {
    Candidate[0] = true; // Main thread starts holding the turn.
    if (Opts.CustomScheduler) {
      Sched = Opts.CustomScheduler;
    } else {
      Owned = makeScheduler(Opts.Strategy, Opts.ScheduleSeed, NumThreads,
                            Opts.PctChangePoints, Opts.PctExpectedSteps);
      Sched = Owned.get();
    }
    if (Record)
      Record->clear();
  }

  /// Marks \p Tid schedulable (called by the forking thread, which holds
  /// the turn, before the OS thread launches).
  void addCandidate(uint32_t Tid) {
    std::lock_guard<std::mutex> L(M);
    Candidate[Tid] = true;
  }

  /// Blocks until \p TC holds the turn (first action of a new thread).
  void waitTurn(ThreadContext &TC) {
    std::unique_lock<std::mutex> L(M);
    if (Turn == TC.Tid)
      return;
    blockUntilTurn(TC, L);
  }

  /// Ends this thread's turn and blocks until its next one. \p Blocked
  /// marks the admission just ending as a blocked retry (monitor enter,
  /// wait, join) that made no progress.
  void yieldTurn(ThreadContext &TC, bool Blocked = false) {
    std::unique_lock<std::mutex> L(M);
    assert(Turn == TC.Tid && "yielding a turn the thread does not hold");
    noteOutcome(TC.Tid, Blocked);
    pickNext();
    if (Turn == TC.Tid)
      return;
    CV.notify_all();
    blockUntilTurn(TC, L);
  }

  /// Removes a finishing thread and passes the turn on.
  void finishThread(ThreadContext &TC) {
    std::lock_guard<std::mutex> L(M);
    Candidate[TC.Tid] = false;
    noteOutcome(TC.Tid, /*Blocked=*/false);
    if (Turn == TC.Tid) {
      pickNext();
      CV.notify_all();
    }
  }

  bool scheduleDiverged() const {
    return Diverged.load(std::memory_order_relaxed);
  }

private:
  void blockUntilTurn(ThreadContext &TC, std::unique_lock<std::mutex> &L) {
    if (TC.Checker)
      TC.Checker->aboutToBlock(TC);
    while (Turn != TC.Tid && !RT.abortFlag().load(std::memory_order_relaxed))
      CV.wait_for(L, WaitSlice);
    L.unlock();
    if (TC.Checker)
      TC.Checker->unblocked(TC);
  }

  /// Updates spinning flags when \p Tid ends an admission. A real
  /// instruction may have changed what other blocked threads are waiting
  /// on, so it clears every flag; a blocked retry changes nothing except
  /// marking the retrier itself.
  void noteOutcome(uint32_t Tid, bool Blocked) {
    if (Blocked) {
      Spinning[Tid] = true;
      return;
    }
    std::fill(Spinning.begin(), Spinning.end(), false);
    ++Progress[Tid];
  }

  /// Flags the explicit schedule as failing to describe this execution and
  /// aborts the run (HardError policy only). Caller holds M.
  void divergeSchedule() {
    Diverged.store(true, std::memory_order_relaxed);
    RT.requestAbort();
    CV.notify_all();
  }

  /// Chooses the next candidate: explicit schedule entries first, then the
  /// strategy. Caller holds M.
  void pickNext() {
    while (Pos < Explicit.size()) {
      uint32_t T = Explicit[Pos++];
      if (T < Candidate.size() && Candidate[T]) {
        admit(T);
        return;
      }
      if (Exhaust == ScheduleExhaustPolicy::HardError) {
        divergeSchedule();
        return;
      }
      // Fallback: skip entries naming non-runnable threads.
    }
    uint32_t Live = 0;
    for (bool C : Candidate)
      Live += C;
    if (Live == 0)
      return; // Last thread finishing; nobody to hand to.
    if (!Explicit.empty() && Exhaust == ScheduleExhaustPolicy::HardError) {
      // The schedule ran out while threads are still live: the replayed
      // execution is longer than the recorded one.
      divergeSchedule();
      return;
    }
    SchedulerView View{Candidate, Spinning, Progress, Picks};
    uint32_t T = Sched->pick(View);
    if (T >= Candidate.size() || !Candidate[T]) {
      // Defensive: a buggy strategy must not wedge the gate.
      for (T = 0; T < Candidate.size() && !Candidate[T]; ++T)
        ;
    }
    admit(T);
  }

  void admit(uint32_t T) {
    Turn = T;
    ++Picks;
    if (Record)
      Record->push_back(T);
  }

  Runtime &RT;
  std::mutex M;
  std::condition_variable CV;
  uint32_t Turn = 0;
  std::vector<bool> Candidate;
  std::vector<bool> Spinning;
  std::vector<uint64_t> Progress;
  std::vector<uint32_t> Explicit;
  size_t Pos = 0;
  uint64_t Picks = 0;
  ScheduleExhaustPolicy Exhaust;
  std::vector<uint32_t> *Record;
  std::unique_ptr<Scheduler> Owned;
  Scheduler *Sched = nullptr;
  std::atomic<bool> Diverged{false};
};

//===----------------------------------------------------------------------===//
// Monitors, wait/notify, thread completion
//===----------------------------------------------------------------------===//

/// Java-style reentrant monitor. All fields guarded by SyncLayer::Mutex.
struct Runtime::Monitor {
  uint32_t Owner = NoOwner;
  uint32_t Depth = 0;
  uint32_t Waiters = 0; ///< Threads inside wait().
  uint32_t Woken = 0;   ///< Pending notify() quota.
  std::condition_variable EnterCV;
  std::condition_variable WaitCV;
};

/// One global mutex guards all monitor and thread-completion state; each
/// monitor has its own condition variables. Blocking paths integrate with
/// the deterministic gate (busy retry) and the checker's blocked status.
class Runtime::SyncLayer {
public:
  explicit SyncLayer(Runtime &RT) : RT(RT), Finished(RT.numThreads()) {
    for (auto &F : Finished)
      F.store(false, std::memory_order_relaxed);
  }

  void enter(ThreadContext &TC, ObjectId Obj) {
    for (;;) {
      {
        std::unique_lock<std::mutex> L(Mutex);
        Monitor &Mon = monitor(Obj);
        if (Mon.Owner == TC.Tid) {
          ++Mon.Depth;
          return;
        }
        if (Mon.Owner == NoOwner) {
          Mon.Owner = TC.Tid;
          Mon.Depth = 1;
          return;
        }
        if (!RT.TheGate) {
          if (TC.Checker)
            TC.Checker->aboutToBlock(TC);
          while (Mon.Owner != NoOwner && !aborted())
            Mon.EnterCV.wait_for(L, WaitSlice);
          if (!aborted()) {
            Mon.Owner = TC.Tid;
            Mon.Depth = 1;
          }
          L.unlock();
          if (TC.Checker)
            TC.Checker->unblocked(TC);
          return;
        }
      }
      // Deterministic mode: retry on our next turn.
      if (aborted())
        return;
      RT.countStep(TC);
      RT.TheGate->yieldTurn(TC, /*Blocked=*/true);
    }
  }

  void exit(ThreadContext &TC, ObjectId Obj) {
    std::lock_guard<std::mutex> L(Mutex);
    Monitor &Mon = monitor(Obj);
    assert(Mon.Owner == TC.Tid && "releasing a monitor the thread holds not");
    if (--Mon.Depth == 0) {
      Mon.Owner = NoOwner;
      Mon.EnterCV.notify_one();
    }
  }

  /// Full wait(): caller holds the monitor; releases it, sleeps until
  /// notified (or abort), reacquires at the saved depth.
  void wait(ThreadContext &TC, ObjectId Obj) {
    uint32_t SavedDepth;
    {
      std::unique_lock<std::mutex> L(Mutex);
      Monitor &Mon = monitor(Obj);
      assert(Mon.Owner == TC.Tid && "wait() without holding the monitor");
      SavedDepth = Mon.Depth;
      Mon.Owner = NoOwner;
      Mon.Depth = 0;
      Mon.EnterCV.notify_one();
      ++Mon.Waiters;
      if (!RT.TheGate) {
        // One blocked episode spans both the notification wait and the
        // reacquisition wait. Like Java's wait(), we permit spurious
        // wakeups: a bounded wait keeps lost-notify races from hanging
        // the runtime forever.
        if (TC.Checker)
          TC.Checker->aboutToBlock(TC);
        unsigned Slices = 0;
        while (Mon.Woken == 0 && !aborted() && Slices++ < SpuriousWakeupSlices)
          Mon.WaitCV.wait_for(L, WaitSlice);
        if (Mon.Woken > 0)
          --Mon.Woken;
        --Mon.Waiters;
        while (Mon.Owner != NoOwner && !aborted())
          Mon.EnterCV.wait_for(L, WaitSlice);
        if (!aborted()) {
          Mon.Owner = TC.Tid;
          Mon.Depth = SavedDepth;
        }
        L.unlock();
        if (TC.Checker)
          TC.Checker->unblocked(TC);
        return;
      }
    }
    // Deterministic mode: poll for a notification, then reacquire. The
    // retry bound gives Java-style spurious wakeups instead of hangs.
    for (unsigned Retries = 0;; ++Retries) {
      if (aborted())
        return;
      RT.countStep(TC);
      RT.TheGate->yieldTurn(TC, /*Blocked=*/true);
      std::lock_guard<std::mutex> L(Mutex);
      Monitor &Mon = monitor(Obj);
      if (Mon.Woken > 0 || Retries >= SpuriousWakeupRetries) {
        if (Mon.Woken > 0)
          --Mon.Woken;
        --Mon.Waiters;
        break;
      }
    }
    for (;;) {
      if (aborted())
        return;
      {
        std::lock_guard<std::mutex> L(Mutex);
        Monitor &Mon = monitor(Obj);
        if (Mon.Owner == NoOwner) {
          Mon.Owner = TC.Tid;
          Mon.Depth = SavedDepth;
          return;
        }
      }
      RT.countStep(TC);
      RT.TheGate->yieldTurn(TC, /*Blocked=*/true);
    }
  }

  void notify(ThreadContext &TC, ObjectId Obj, bool All) {
    std::lock_guard<std::mutex> L(Mutex);
    Monitor &Mon = monitor(Obj);
    assert(Mon.Owner == TC.Tid && "notify() without holding the monitor");
    if (All)
      Mon.Woken = Mon.Waiters;
    else if (Mon.Woken < Mon.Waiters)
      ++Mon.Woken;
    Mon.WaitCV.notify_all();
  }

  void markFinished(uint32_t Tid) {
    std::lock_guard<std::mutex> L(Mutex);
    Finished[Tid].store(true, std::memory_order_release);
    JoinCV.notify_all();
  }

  bool isFinished(uint32_t Tid) const {
    return Finished[Tid].load(std::memory_order_acquire);
  }

  void awaitFinished(ThreadContext &TC, uint32_t Tid) {
    if (!RT.TheGate) {
      if (isFinished(Tid))
        return;
      std::unique_lock<std::mutex> L(Mutex);
      if (TC.Checker)
        TC.Checker->aboutToBlock(TC);
      while (!Finished[Tid].load(std::memory_order_acquire) && !aborted())
        JoinCV.wait_for(L, WaitSlice);
      L.unlock();
      if (TC.Checker)
        TC.Checker->unblocked(TC);
      return;
    }
    while (!isFinished(Tid) && !aborted()) {
      RT.countStep(TC);
      RT.TheGate->yieldTurn(TC, /*Blocked=*/true);
    }
  }

private:
  bool aborted() const {
    return RT.abortFlag().load(std::memory_order_relaxed);
  }

  Monitor &monitor(ObjectId Obj) {
    auto It = Monitors.find(Obj);
    if (It != Monitors.end())
      return *It->second;
    auto *Mon = new Monitor();
    Monitors.emplace(Obj, std::unique_ptr<Monitor>(Mon));
    return *Mon;
  }

  Runtime &RT;
  std::mutex Mutex;
  std::condition_variable JoinCV;
  std::unordered_map<ObjectId, std::unique_ptr<Monitor>> Monitors;
  std::vector<std::atomic<bool>> Finished;
};

//===----------------------------------------------------------------------===//
// Runtime
//===----------------------------------------------------------------------===//

Runtime::Runtime(const ir::Program &P, CheckerRuntime *Checker,
                 RunOptions Opts)
    : P(P), Checker(Checker), Opts(Opts),
      TheHeap(P, static_cast<uint32_t>(P.ThreadEntries.size())),
      Contexts(P.ThreadEntries.size()), Threads(P.ThreadEntries.size()) {
  for (uint32_t T = 0; T < numThreads(); ++T) {
    ThreadContext &TC = Contexts[T];
    TC.Tid = T;
    TC.RT = this;
    TC.Checker = Checker;
    TC.Rng = SplitMix64(P.Seed ^ (0x100000001b3ULL * (T + 1)));
  }
  Sync = std::make_unique<SyncLayer>(*this);
  if (Opts.Deterministic)
    TheGate = std::make_unique<Gate>(*this, numThreads(), Opts);
}

Runtime::~Runtime() {
  requestAbort();
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
}

RunResult Runtime::run() {
  assert(!HasRun && "Runtime::run() may only be called once");
  HasRun = true;
  auto Start = std::chrono::steady_clock::now();
  if (Checker)
    Checker->beginRun(*this);

  threadMain(0);

  // The program should join its workers; tolerate ones it did not.
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();

  if (Checker)
    Checker->endRun(*this);
  auto End = std::chrono::steady_clock::now();

  RunResult R;
  R.WallSeconds = std::chrono::duration<double>(End - Start).count();
  for (const ThreadContext &TC : Contexts)
    R.Steps += TC.LocalSteps;
  R.Aborted = Aborted.load(std::memory_order_relaxed);
  if (TheGate)
    R.ScheduleDiverged = TheGate->scheduleDiverged();
  if (Checker)
    Checker->reportHealth(R);
  return R;
}

void Runtime::threadMain(uint32_t Tid) {
  ThreadContext &TC = Contexts[Tid];
  if (TheGate)
    TheGate->waitTurn(TC);
  if (Checker) {
    Checker->threadStarted(TC);
    syncEvent(TC, TheHeap.threadObject(Tid), SyncKind::ThreadBegin,
              P.ThreadSyncFlags);
  }

  interpretMethod(TC, P.Methods[P.ThreadEntries[Tid]], /*Param=*/0);

  if (Checker) {
    syncEvent(TC, TheHeap.threadObject(Tid), SyncKind::ThreadEnd,
              P.ThreadSyncFlags);
    Checker->threadExiting(TC);
  }
  Sync->markFinished(Tid);
  if (TheGate)
    TheGate->finishThread(TC);
}

void Runtime::interpretMethod(ThreadContext &TC, const ir::Method &M,
                              int64_t Param) {
  int64_t SavedParam = TC.Param;
  TC.Param = Param;
  bool StartsTx = M.StartsTransaction && Checker != nullptr;
  if (StartsTx)
    Checker->txBegin(TC, M);
  execBlock(TC, M.Body);
  if (StartsTx)
    Checker->txEnd(TC, M);
  TC.Param = SavedParam;
}

void Runtime::execBlock(ThreadContext &TC,
                        const std::vector<ir::Instr> &Block) {
  for (const ir::Instr &I : Block) {
    if (Aborted.load(std::memory_order_relaxed))
      return;
    preStep(TC);
    execInstr(TC, I);
  }
}

void Runtime::preStep(ThreadContext &TC) {
  countStep(TC);
  if (TheGate)
    TheGate->yieldTurn(TC);
  else if (Opts.PreemptEveryN != 0 &&
           TC.LocalSteps % Opts.PreemptEveryN == 0)
    std::this_thread::yield();
  if (Checker)
    Checker->safePoint(TC);
}

void Runtime::countStep(ThreadContext &TC) {
  if ((++TC.LocalSteps & 1023) != 0)
    return;
  uint64_t Total = GlobalSteps.fetch_add(1024, std::memory_order_relaxed);
  if (Total >= Opts.MaxSteps)
    requestAbort();
}

uint64_t Runtime::evalExpr(ThreadContext &TC, const ir::IndexExpr &E) {
  int64_t Base = 0;
  switch (E.K) {
  case ir::IndexExpr::Kind::Const:
    break;
  case ir::IndexExpr::Kind::LoopVar:
    assert(E.LoopDepth < TC.LoopVars.size() && "loop variable out of scope");
    Base = static_cast<int64_t>(
        TC.LoopVars[TC.LoopVars.size() - 1 - E.LoopDepth]);
    break;
  case ir::IndexExpr::Kind::ThreadId:
    Base = TC.Tid;
    break;
  case ir::IndexExpr::Kind::Param:
    Base = TC.Param;
    break;
  case ir::IndexExpr::Kind::Random:
    Base = static_cast<int64_t>(TC.Rng.next() >> 1);
    break;
  }
  int64_t V = E.Scale * Base + E.Offset;
  if (E.Mod != 0) {
    int64_t Mod = static_cast<int64_t>(E.Mod);
    V %= Mod;
    if (V < 0)
      V += Mod;
  }
  assert(V >= 0 && "index expressions must evaluate non-negative");
  return static_cast<uint64_t>(V);
}

void Runtime::syncEvent(ThreadContext &TC, ObjectId Obj, SyncKind Kind,
                        uint8_t Flags) {
  if (!Checker)
    return;
  AccessInfo Info;
  Info.Obj = Obj;
  Info.Addr = TheHeap.syncAddr(Obj);
  Info.IsWrite = isReleaseLike(Kind);
  Info.IsSync = true;
  Info.Flags = Flags;
  Checker->syncOp(TC, Info, Kind);
}

void Runtime::forkThread(ThreadContext &TC, uint32_t Child) {
  assert(Child < numThreads() && "fork of unknown thread");
  assert(Child != TC.Tid && "thread cannot fork itself");
  assert(!Threads[Child].joinable() && "thread forked twice");
  // Release-like write on the child's thread object happens-before the
  // child's first action.
  syncEvent(TC, TheHeap.threadObject(Child), SyncKind::Fork,
            P.ThreadSyncFlags);
  if (TheGate)
    TheGate->addCandidate(Child);
  Threads[Child] = std::thread([this, Child] { threadMain(Child); });
}

void Runtime::joinThread(ThreadContext &TC, uint32_t Child) {
  assert(Child < numThreads() && "join of unknown thread");
  Sync->awaitFinished(TC, Child);
  // Acquire-like read after the child's release-like ThreadEnd write.
  syncEvent(TC, TheHeap.threadObject(Child), SyncKind::Join,
            P.ThreadSyncFlags);
}

void Runtime::execInstr(ThreadContext &TC, const ir::Instr &I) {
  switch (I.Op) {
  case ir::Opcode::Read:
  case ir::Opcode::ReadElem: {
    ObjectId Obj = TheHeap.objectOf(I.Obj.Pool, evalExpr(TC, I.Obj.Index));
    FieldAddr Addr = TheHeap.fieldAddr(Obj, evalExpr(TC, I.A));
    auto DoRead = [&] { TC.Accumulator ^= TheHeap.load(Addr); };
    if ((I.Flags & ir::IF_Hooked) && Checker) {
      AccessInfo Info{Obj, Addr, /*IsWrite=*/false, /*IsSync=*/false,
                      I.Flags};
      Checker->instrumentedAccess(TC, Info, DoRead);
    } else {
      DoRead();
    }
    break;
  }
  case ir::Opcode::Write:
  case ir::Opcode::WriteElem: {
    ObjectId Obj = TheHeap.objectOf(I.Obj.Pool, evalExpr(TC, I.Obj.Index));
    FieldAddr Addr = TheHeap.fieldAddr(Obj, evalExpr(TC, I.A));
    auto DoWrite = [&] { TheHeap.store(Addr, TC.Accumulator + 1); };
    if ((I.Flags & ir::IF_Hooked) && Checker) {
      AccessInfo Info{Obj, Addr, /*IsWrite=*/true, /*IsSync=*/false, I.Flags};
      Checker->instrumentedAccess(TC, Info, DoWrite);
    } else {
      DoWrite();
    }
    break;
  }
  case ir::Opcode::Acquire: {
    ObjectId Obj = TheHeap.objectOf(I.Obj.Pool, evalExpr(TC, I.Obj.Index));
    Sync->enter(TC, Obj);
    syncEvent(TC, Obj, SyncKind::MonitorEnter, I.Flags);
    break;
  }
  case ir::Opcode::Release: {
    ObjectId Obj = TheHeap.objectOf(I.Obj.Pool, evalExpr(TC, I.Obj.Index));
    syncEvent(TC, Obj, SyncKind::MonitorExit, I.Flags);
    Sync->exit(TC, Obj);
    break;
  }
  case ir::Opcode::Wait: {
    ObjectId Obj = TheHeap.objectOf(I.Obj.Pool, evalExpr(TC, I.Obj.Index));
    syncEvent(TC, Obj, SyncKind::WaitRelease, I.Flags);
    Sync->wait(TC, Obj);
    if (!Aborted.load(std::memory_order_relaxed))
      syncEvent(TC, Obj, SyncKind::WaitAcquire, I.Flags);
    break;
  }
  case ir::Opcode::Notify:
  case ir::Opcode::NotifyAll: {
    ObjectId Obj = TheHeap.objectOf(I.Obj.Pool, evalExpr(TC, I.Obj.Index));
    syncEvent(TC, Obj, SyncKind::Notify, I.Flags);
    Sync->notify(TC, Obj, I.Op == ir::Opcode::NotifyAll);
    break;
  }
  case ir::Opcode::Call:
    interpretMethod(TC, P.Methods[I.Callee],
                    static_cast<int64_t>(evalExpr(TC, I.A)));
    break;
  case ir::Opcode::Fork:
    forkThread(TC, static_cast<uint32_t>(evalExpr(TC, I.A)));
    break;
  case ir::Opcode::Join:
    joinThread(TC, static_cast<uint32_t>(evalExpr(TC, I.A)));
    break;
  case ir::Opcode::Loop: {
    uint64_t Trips = evalExpr(TC, I.A);
    TC.LoopVars.push_back(0);
    for (uint64_t T = 0; T < Trips; ++T) {
      if (Aborted.load(std::memory_order_relaxed))
        break;
      TC.LoopVars.back() = T;
      execBlock(TC, I.Body);
    }
    TC.LoopVars.pop_back();
    break;
  }
  case ir::Opcode::Work: {
    uint64_t Units = evalExpr(TC, I.A);
    uint64_t Acc = static_cast<uint64_t>(TC.Accumulator);
    for (uint64_t U = 0; U < Units; ++U)
      Acc = Acc * 6364136223846793005ULL + 1442695040888963407ULL;
    TC.Accumulator = static_cast<int64_t>(Acc);
    break;
  }
  }
}
