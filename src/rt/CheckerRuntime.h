//===- rt/CheckerRuntime.h - Hook interface for dynamic analyses -*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter drives a CheckerRuntime through these hooks. The paper's
/// analyses plug in here:
///   * DoubleChecker (ICD [+PCD]) implements instrumentedAccess by running
///     the Octet barrier, optionally appending to the read/write log, and
///     then performing the wrapped heap access;
///   * Velodrome implements it by locking the field's metadata word,
///     updating last-accesses / the transaction graph, performing the heap
///     access inside the critical section (analysis-access atomicity), and
///     unlocking.
/// safePoint() is polled between instructions — never between a barrier and
/// its access, which execute fused inside instrumentedAccess — and is where
/// Octet's explicit coordination protocol responds to requests.
///
//===----------------------------------------------------------------------===//

#ifndef DC_RT_CHECKERRUNTIME_H
#define DC_RT_CHECKERRUNTIME_H

#include <cstdint>
#include <map>
#include <string>

#include "ir/Ir.h"
#include "rt/Heap.h"
#include "support/FunctionRef.h"

namespace dc {
namespace rt {

class Runtime;
struct ThreadContext;
struct RunResult;

/// Structured checker-internal failure classification. A stalled or dead
/// component never hangs the run or calls abort(): the watchdog diagnoses
/// which component went silent and the run terminates with this code in
/// RunResult::Fault plus a human-readable diagnosis string.
enum class CheckerFault : uint8_t {
  None = 0,
  PcdWorkerStall,  ///< A PCD worker stopped heartbeating mid-replay.
  PcdQueueStall,   ///< enqueue() could not hand off an SCC within the
                   ///< timeout (queue saturated and no worker progress).
  CollectorStall,  ///< The transaction collector stopped heartbeating.
  GateStall,       ///< The scheduler gate made no progress (wedged run).
  RingDrainStall,  ///< The ring-log drainer stopped heartbeating.
  WindowFlushStall, ///< A streaming window flush could not quiesce within
                    ///< its bounded waits (wedged drain inside a window).
};

const char *toString(CheckerFault F);

/// One step of the sound degradation ladder (DESIGN.md §10), recorded in
/// RunResult::Degradation. Stamps are deterministic logical times (the
/// checker's order clock or an SCC's max member end time), never
/// wall-clock, so the same schedule + FaultPlan yields the same report.
struct DegradationEvent {
  enum class Action : uint8_t {
    PotentialOnly, ///< An SCC was reported as potential violations instead
                   ///< of being precisely replayed (oversized, shed member,
                   ///< queue timeout, or worker fault).
    ShedLogging,   ///< A thread dropped from single-run to ICD-only.
    Rearm,         ///< The thread resumed full logging.
  };
  Action A = Action::PotentialOnly;
  uint32_t Tid = 0;    ///< Logical thread (ShedLogging/Rearm) or 0.
  uint64_t Stamp = 0;  ///< Deterministic logical time of the transition.

  bool operator==(const DegradationEvent &O) const {
    return A == O.A && Tid == O.Tid && Stamp == O.Stamp;
  }
};

const char *toString(DegradationEvent::Action A);

/// A point-in-time view of a *running* checker, for streaming service mode
/// (DESIGN.md §15). Unlike reportHealth — which runs once after endRun on
/// quiesced state — healthSnapshot() is callable from any thread mid-run,
/// so everything here is assembled from atomics plus the registry's
/// consistent-cut snapshot; per-thread unsynchronized counters (flushed
/// only at endRun) are deliberately absent.
struct HealthSnapshot {
  uint64_t WindowIndex = 0;  ///< Retirement windows flushed so far.
  uint64_t FinishedTxs = 0;  ///< Transactions ended so far.
  uint64_t LiveTxs = 0;      ///< Allocated, not-yet-retired transactions.
  uint64_t RetiredTxs = 0;   ///< Cumulative transactions swept.
  uint64_t PinnedTxs = 0;    ///< Live txs surviving the latest window flush
                             ///< (cross-window state carried forward).
  uint64_t CrossEdges = 0;   ///< Cross-thread dependence edges so far.
  uint64_t Violations = 0;   ///< Violation records so far.
  uint64_t Degradations = 0; ///< Degradation-ladder events so far.
  CheckerFault Fault = CheckerFault::None;
  std::string FaultDiagnosis;
  bool StatsStable = true; ///< Stats below form one consistent cut.
  std::map<std::string, uint64_t> Stats;
};

/// Kinds of synchronization events routed through syncOp().
enum class SyncKind : uint8_t {
  MonitorEnter, ///< Acquire-like: treated as a read of the sync slot.
  MonitorExit,  ///< Release-like: treated as a write of the sync slot.
  WaitRelease,  ///< wait() releasing the monitor (write).
  WaitAcquire,  ///< wait() reacquiring after wakeup (read).
  Notify,       ///< notify()/notifyAll() (write).
  Fork,         ///< Parent forking a thread (write of its thread object).
  ThreadBegin,  ///< First action of a started thread (read).
  ThreadEnd,    ///< Last action of a finishing thread (write).
  Join,         ///< Parent observing a joined thread (read).
};

/// Returns true if \p K is release-like, i.e. modelled as a write.
inline bool isReleaseLike(SyncKind K) {
  return K == SyncKind::MonitorExit || K == SyncKind::WaitRelease ||
         K == SyncKind::Notify || K == SyncKind::Fork ||
         K == SyncKind::ThreadEnd;
}

/// Describes one (possibly instrumented) shared-memory access.
struct AccessInfo {
  ObjectId Obj = 0;
  FieldAddr Addr = 0;
  bool IsWrite = false;
  bool IsSync = false;
  uint8_t Flags = ir::IF_None; ///< ir::InstrFlags of the access site.
};

/// Interface the interpreter calls into. The default implementation is a
/// no-op checker (useful as a base and for overhead experiments).
class CheckerRuntime {
public:
  virtual ~CheckerRuntime();

  /// Called once before any program thread runs / after all have finished.
  virtual void beginRun(Runtime &RT) {}
  virtual void endRun(Runtime &RT) {}

  /// Per-thread lifecycle. threadStarted runs on the new thread before its
  /// first instruction; threadExiting runs after its last.
  virtual void threadStarted(ThreadContext &TC) {}
  virtual void threadExiting(ThreadContext &TC) {}

  /// A regular transaction begins/ends (compiled method with
  /// StartsTransaction, called from a non-transactional context).
  virtual void txBegin(ThreadContext &TC, const ir::Method &M) {}
  virtual void txEnd(ThreadContext &TC, const ir::Method &M) {}

  /// An access whose instruction carries instrumentation flags. \p Access
  /// performs the underlying heap operation; implementations decide where
  /// it runs relative to their analysis.
  virtual void instrumentedAccess(ThreadContext &TC, const AccessInfo &Info,
                                  function_ref<void()> Access) {
    Access();
  }

  /// A synchronization event, already modelled as a read or write of the
  /// object's sync slot in \p Info (Info.IsSync is true).
  virtual void syncOp(ThreadContext &TC, const AccessInfo &Info,
                      SyncKind Kind) {}

  /// Polled between instructions; a safe point in Octet's sense.
  virtual void safePoint(ThreadContext &TC) {}

  /// The thread is about to block (monitor, wait, join, scheduler gate) /
  /// has resumed. Octet flips its per-thread status here so requesters can
  /// use the implicit coordination protocol on blocked threads.
  virtual void aboutToBlock(ThreadContext &TC) {}
  virtual void unblocked(ThreadContext &TC) {}

  /// Called once after endRun(), with the assembled RunResult: checkers
  /// fill in Fault / FaultDiagnosis / Degradation (rt/Runtime.h).
  virtual void reportHealth(RunResult &R) {}

  /// Streaming service mode: fills \p H with a point-in-time health view.
  /// Callable from any thread at any moment of a run (unlike reportHealth,
  /// which requires quiesced end-of-run state). The default leaves the
  /// zero-initialized snapshot, meaning "this checker has no mid-run
  /// health".
  virtual void healthSnapshot(HealthSnapshot &H) {}

  /// Streaming service mode: forces a window boundary *now* — flush
  /// pending cycle-detection work, complete in-flight precise replays, and
  /// retire every quiescent transaction (windowed engines override this;
  /// the scheduled every-N-transactions boundary calls the same path).
  /// Returns false if the flush could not fully quiesce and degraded
  /// instead (a structured fault/Potential report, never a silent drop).
  virtual bool windowFlush() { return true; }
};

} // namespace rt
} // namespace dc

#endif // DC_RT_CHECKERRUNTIME_H
