//===- rt/Heap.cpp --------------------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/Heap.h"

#include <algorithm>

using namespace dc;
using namespace dc::rt;

Heap::Heap(const ir::Program &P, uint32_t NumThreads)
    : NumThreads(NumThreads) {
  uint64_t TotalObjects = NumThreads;
  for (const ir::ObjectPool &Pool : P.Pools)
    TotalObjects += Pool.Count;
  Objects = std::vector<HeapObject>(TotalObjects);

  FieldAddr NextField = 0;
  ObjectId NextObject = 0;
  PoolBases.reserve(P.Pools.size());
  PoolCounts.reserve(P.Pools.size());
  for (size_t PoolIdx = 0; PoolIdx < P.Pools.size(); ++PoolIdx) {
    const ir::ObjectPool &Pool = P.Pools[PoolIdx];
    PoolBases.push_back(NextObject);
    PoolCounts.push_back(Pool.Count);
    for (uint32_t I = 0; I < Pool.Count; ++I) {
      HeapObject &O = Objects[NextObject];
      O.FieldBase = NextField;
      O.NumFields = Pool.NumFields;
      O.Pool = static_cast<ir::PoolId>(PoolIdx);
      NextField += Pool.NumFields + 1; // +1 for the sync slot.
      ++NextObject;
    }
  }

  ThreadObjectBase = NextObject;
  for (uint32_t T = 0; T < NumThreads; ++T) {
    HeapObject &O = Objects[NextObject];
    O.FieldBase = NextField;
    O.NumFields = 0;
    O.Pool = static_cast<ir::PoolId>(P.Pools.size());
    NextField += 1; // Sync slot only.
    ++NextObject;
  }

  Values = std::vector<std::atomic<int64_t>>(NextField);
}

ObjectId Heap::objectOfField(FieldAddr Addr) const {
  assert(Addr < Values.size() && "bad field address");
  // Objects are laid out with increasing FieldBase; binary-search the last
  // object whose FieldBase <= Addr.
  auto It = std::upper_bound(
      Objects.begin(), Objects.end(), Addr,
      [](FieldAddr A, const HeapObject &O) { return A < O.FieldBase; });
  assert(It != Objects.begin() && "address below first object");
  return static_cast<ObjectId>(std::distance(Objects.begin(), It) - 1);
}
