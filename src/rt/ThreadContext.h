//===- rt/ThreadContext.h - Per-thread interpreter state --------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef DC_RT_THREADCONTEXT_H
#define DC_RT_THREADCONTEXT_H

#include <cstdint>
#include <vector>

#include "support/Rng.h"

namespace dc {
namespace rt {

class Runtime;
class CheckerRuntime;

/// Mutable state of one interpreted program thread. Owned by the Runtime;
/// only the thread itself mutates it (checkers attach their own per-thread
/// state in arrays indexed by Tid).
struct ThreadContext {
  uint32_t Tid = 0;
  Runtime *RT = nullptr;
  CheckerRuntime *Checker = nullptr; ///< Null for uninstrumented runs.

  /// Data sink/source for Read/Write instructions: reads fold the loaded
  /// value in, writes store a value derived from it. Keeps program memory
  /// traffic live without modelling full dataflow.
  int64_t Accumulator = 0;

  /// Current frame's call parameter (saved/restored across Call).
  int64_t Param = 0;

  /// Induction variables of the enclosing loops, innermost last.
  std::vector<uint64_t> LoopVars;

  /// Per-thread deterministic RNG for Random index operands; seeded from
  /// the program seed and Tid, so the per-thread access sequence does not
  /// depend on the interleaving.
  SplitMix64 Rng{1};

  /// Instructions retired by this thread (flushed to the Runtime's global
  /// budget periodically).
  uint64_t LocalSteps = 0;
};

} // namespace rt
} // namespace dc

#endif // DC_RT_THREADCONTEXT_H
