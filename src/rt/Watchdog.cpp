//===- rt/Watchdog.cpp ----------------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/Watchdog.h"

#include <chrono>

using namespace dc;
using namespace dc::rt;

uint64_t Watchdog::nowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Watchdog::Watchdog(Options Opts, Handler OnStall)
    : Opts(Opts), OnStall(std::move(OnStall)) {}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> L(StopLock);
    StopRequested = true;
  }
  StopCv.notify_all();
  if (Monitor.joinable())
    Monitor.join();
}

uint32_t Watchdog::addComponent(std::string Name) {
  Slots.emplace_back();
  Slots.back().Name = std::move(Name);
  Slots.back().LastBeatMs.store(nowMs(), std::memory_order_relaxed);
  return static_cast<uint32_t>(Slots.size() - 1);
}

void Watchdog::start() {
  if (Slots.empty() || Monitor.joinable())
    return;
  Monitor = std::thread([this] { monitorLoop(); });
}

void Watchdog::beginWork(uint32_t Id) {
  Slot &S = Slots[Id];
  S.LastBeatMs.store(nowMs(), std::memory_order_relaxed);
  S.Busy.store(true, std::memory_order_release);
}

void Watchdog::heartbeat(uint32_t Id) {
  Slots[Id].LastBeatMs.store(nowMs(), std::memory_order_relaxed);
}

void Watchdog::endWork(uint32_t Id) {
  Slots[Id].Busy.store(false, std::memory_order_release);
}

void Watchdog::disarm() { Armed.store(false, std::memory_order_release); }

void Watchdog::monitorLoop() {
  std::unique_lock<std::mutex> L(StopLock);
  while (!StopRequested) {
    StopCv.wait_for(L, std::chrono::milliseconds(Opts.PollMs),
                    [this] { return StopRequested; });
    if (StopRequested || !Armed.load(std::memory_order_acquire))
      continue;
    uint64_t Now = nowMs();
    for (Slot &S : Slots) {
      if (!S.Busy.load(std::memory_order_acquire))
        continue;
      if (S.Fired.load(std::memory_order_relaxed))
        continue;
      uint64_t Last = S.LastBeatMs.load(std::memory_order_relaxed);
      if (Now >= Last && Now - Last > Opts.TimeoutMs) {
        S.Fired.store(true, std::memory_order_relaxed);
        // Run the handler outside the stop lock: it may take checker locks
        // and must never be able to deadlock against the destructor.
        L.unlock();
        OnStall(S.Name, Now - Last);
        L.lock();
      }
    }
  }
}
