//===- rt/Scheduler.cpp ---------------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/Scheduler.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <sstream>

using namespace dc;
using namespace dc::rt;

Scheduler::~Scheduler() = default;

//===----------------------------------------------------------------------===//
// RandomScheduler
//===----------------------------------------------------------------------===//

uint32_t RandomScheduler::pick(const SchedulerView &View) {
  // Bit-exact with the historical in-gate logic: draw below the live count,
  // take the nth candidate in ascending thread-id order. Spinning flags are
  // deliberately ignored so old schedule seeds replay unchanged.
  uint32_t Live = 0;
  for (bool C : View.Candidates)
    Live += C;
  assert(Live > 0 && "pick() with no candidates");
  uint64_t Pick = Rng.nextBelow(Live);
  for (uint32_t T = 0; T < View.Candidates.size(); ++T) {
    if (!View.Candidates[T])
      continue;
    if (Pick-- == 0)
      return T;
  }
  return 0; // Unreachable.
}

//===----------------------------------------------------------------------===//
// PctScheduler
//===----------------------------------------------------------------------===//

PctScheduler::PctScheduler(uint64_t Seed, uint32_t NumThreads,
                           uint32_t ChangePoints, uint64_t ExpectedSteps)
    : Rng(Seed), Priority(NumThreads), LowBand(ChangePoints) {
  if (ExpectedSteps == 0)
    ExpectedSteps = 2048;
  // Distinct initial priorities in (ChangePoints, ChangePoints + N]: a
  // random permutation via Fisher-Yates. Demotions at change points hand
  // out ChangePoints, ChangePoints-1, ..., 1 — always below every initial
  // priority and below earlier demotions, per the PCT paper.
  std::vector<uint64_t> Perm(NumThreads);
  for (uint32_t T = 0; T < NumThreads; ++T)
    Perm[T] = ChangePoints + 1 + T;
  for (uint32_t T = NumThreads; T > 1; --T)
    std::swap(Perm[T - 1], Perm[Rng.nextBelow(T)]);
  Priority = Perm;
  ChangeSteps.reserve(ChangePoints);
  for (uint32_t K = 0; K < ChangePoints; ++K)
    ChangeSteps.push_back(1 + Rng.nextBelow(ExpectedSteps));
  std::sort(ChangeSteps.begin(), ChangeSteps.end());
}

uint32_t PctScheduler::pick(const SchedulerView &View) {
  while (NextChange < ChangeSteps.size() &&
         View.Step >= ChangeSteps[NextChange]) {
    if (Last != UINT32_MAX)
      Priority[Last] = LowBand--;
    ++NextChange;
  }
  // Highest-priority candidate, preferring threads that can make progress.
  auto Best = [&](bool SkipSpinning) -> uint32_t {
    uint32_t BestT = UINT32_MAX;
    for (uint32_t T = 0; T < View.Candidates.size(); ++T) {
      if (!View.Candidates[T])
        continue;
      if (SkipSpinning && View.Spinning[T])
        continue;
      if (BestT == UINT32_MAX || Priority[T] > Priority[BestT])
        BestT = T;
    }
    return BestT;
  };
  uint32_t T = Best(/*SkipSpinning=*/true);
  if (T == UINT32_MAX)
    T = Best(/*SkipSpinning=*/false);
  assert(T != UINT32_MAX && "pick() with no candidates");
  Last = T;
  return T;
}

//===----------------------------------------------------------------------===//
// ExhaustiveExplorer
//===----------------------------------------------------------------------===//

bool ExhaustiveExplorer::contains(const std::vector<uint32_t> &V, uint32_t X) {
  return std::find(V.begin(), V.end(), X) != V.end();
}

uint64_t ExhaustiveExplorer::stateHash(const SchedulerView &View) {
  uint64_t H = 1469598103934665603ull; // FNV-1a offset basis.
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
  };
  for (uint32_t T = 0; T < View.Candidates.size(); ++T) {
    Mix(View.Progress[T]);
    Mix((View.Candidates[T] ? 2u : 0u) | (View.Spinning[T] ? 1u : 0u));
  }
  return H;
}

uint64_t ExhaustiveExplorer::transitionKey(uint64_t State, uint32_t BudgetLeft,
                                           uint32_t Action) {
  uint64_t Z = State + 0x9e3779b97f4a7c15ull * (BudgetLeft * 131u + Action + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

bool ExhaustiveExplorer::beginRun() {
  assert(!InRun && "beginRun() without matching endRun()");
  if (Exhausted || Runs >= Opts.MaxRuns)
    return false;
  Cursor = 0;
  CumPreempts = 0;
  PrevChosen = UINT32_MAX;
  CurSchedule.clear();
  InRun = true;
  return true;
}

uint32_t ExhaustiveExplorer::pick(const SchedulerView &View) {
  assert(InRun && "pick() outside beginRun()/endRun()");
  // Preferred candidates: those that can make progress; fall back to the
  // full candidate set if every runnable thread is spinning (which can only
  // resolve via abort — the run is effectively deadlocked).
  std::vector<uint32_t> Cands;
  for (uint32_t T = 0; T < View.Candidates.size(); ++T)
    if (View.Candidates[T] && !View.Spinning[T])
      Cands.push_back(T);
  if (Cands.empty())
    for (uint32_t T = 0; T < View.Candidates.size(); ++T)
      if (View.Candidates[T])
        Cands.push_back(T);
  assert(!Cands.empty() && "pick() with no candidates");

  bool PrevPref = PrevChosen != UINT32_MAX &&
                  PrevChosen < View.Candidates.size() &&
                  View.Candidates[PrevChosen] && !View.Spinning[PrevChosen];
  uint64_t State = stateHash(View);

  uint32_t Chosen;
  if (Cursor < Frames.size()) {
    // Forced prefix: replay the DFS path's decision. Refresh the recorded
    // context — the replay is deterministic, so it should be identical, but
    // the re-observed values are authoritative for backtracking.
    Frame &F = Frames[Cursor];
    Chosen = F.Chosen;
    if (Chosen >= View.Candidates.size() || !View.Candidates[Chosen]) {
      Diverged = true;
      Chosen = Cands.front();
      F.Chosen = Chosen;
    }
    F.Cands = std::move(Cands);
    F.Prev = PrevChosen;
    F.PrevPreferred = PrevPref;
    F.StateHash = State;
    F.PreemptsBefore = CumPreempts;
  } else {
    // Default policy: stay on the previous thread when it can progress,
    // else the lowest-id thread that can. Costs zero preemptions, so the
    // suffix after any forced prefix never busts the bound.
    Chosen = PrevPref && contains(Cands, PrevChosen) ? PrevChosen
                                                     : Cands.front();
    Frame F;
    F.Cands = std::move(Cands);
    F.Chosen = Chosen;
    F.Prev = PrevChosen;
    F.PrevPreferred = PrevPref;
    F.StateHash = State;
    F.PreemptsBefore = CumPreempts;
    F.Tried.push_back(Chosen);
    Frames.push_back(std::move(F));
  }

  if (PrevPref && Chosen != PrevChosen)
    ++CumPreempts;
  CurSchedule.push_back(Chosen);
  PrevChosen = Chosen;
  ++Cursor;
  return Chosen;
}

void ExhaustiveExplorer::endRun() {
  assert(InRun && "endRun() without beginRun()");
  InRun = false;
  ++Runs;
  LastSchedule = CurSchedule;
  // If the run ended before consuming the whole forced prefix (abort), the
  // tail frames describe decisions that never happened; drop them.
  Frames.resize(Cursor);

  if (Opts.StateHashPruning) {
    for (const Frame &F : Frames) {
      uint32_t Cost = F.PrevPreferred && F.Chosen != F.Prev ? 1 : 0;
      if (F.PreemptsBefore + Cost > Opts.PreemptionBound)
        continue; // Divergence fallback can overshoot; don't poison the set.
      Visited.insert(transitionKey(
          F.StateHash, Opts.PreemptionBound - F.PreemptsBefore - Cost,
          F.Chosen));
    }
  }

  // Backtrack: deepest frame with a viable untried alternative becomes the
  // new forced path. Over-budget and already-visited alternatives are
  // marked tried so they are never reconsidered at this frame.
  while (!Frames.empty()) {
    Frame &F = Frames.back();
    for (uint32_t A : F.Cands) {
      if (contains(F.Tried, A))
        continue;
      F.Tried.push_back(A);
      uint32_t Cost = F.PrevPreferred && A != F.Prev ? 1 : 0;
      if (F.PreemptsBefore + Cost > Opts.PreemptionBound)
        continue;
      uint64_t Key = transitionKey(
          F.StateHash, Opts.PreemptionBound - F.PreemptsBefore - Cost, A);
      if (Opts.StateHashPruning && !Visited.insert(Key).second)
        continue;
      F.Chosen = A;
      return;
    }
    Frames.pop_back();
  }
  Exhausted = true;
}

//===----------------------------------------------------------------------===//
// Factory + schedule file I/O
//===----------------------------------------------------------------------===//

std::unique_ptr<Scheduler> rt::makeScheduler(ScheduleStrategy Strategy,
                                             uint64_t Seed,
                                             uint32_t NumThreads,
                                             uint32_t PctChangePoints,
                                             uint64_t PctExpectedSteps) {
  switch (Strategy) {
  case ScheduleStrategy::Random:
    return std::make_unique<RandomScheduler>(Seed);
  case ScheduleStrategy::Pct:
    return std::make_unique<PctScheduler>(Seed, NumThreads, PctChangePoints,
                                          PctExpectedSteps);
  }
  return std::make_unique<RandomScheduler>(Seed);
}

bool rt::writeScheduleFile(const std::string &Path,
                           const std::vector<uint32_t> &Schedule) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << "# dcheck schedule v1: one thread id per gate admission\n";
  Out << "# length: " << Schedule.size() << "\n";
  size_t Col = 0;
  for (uint32_t T : Schedule) {
    Out << T;
    if (++Col % 32 == 0)
      Out << '\n';
    else
      Out << ' ';
  }
  if (Col % 32 != 0)
    Out << '\n';
  return static_cast<bool>(Out);
}

bool rt::readScheduleFile(const std::string &Path,
                          std::vector<uint32_t> &Schedule) {
  std::ifstream In(Path);
  if (!In)
    return false;
  Schedule.clear();
  std::string Line;
  while (std::getline(In, Line)) {
    size_t First = Line.find_first_not_of(" \t\r");
    if (First == std::string::npos || Line[First] == '#')
      continue;
    std::istringstream LS(Line);
    uint64_t T;
    while (LS >> T)
      Schedule.push_back(static_cast<uint32_t>(T));
  }
  return true;
}
