//===- rt/StreamingSession.cpp --------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/StreamingSession.h"

#include <cstdio>

using namespace dc;
using namespace dc::rt;

namespace {

void appendEscaped(std::string &S, const std::string &V) {
  S += '"';
  for (char C : V) {
    switch (C) {
    case '"':
      S += "\\\"";
      break;
    case '\\':
      S += "\\\\";
      break;
    case '\n':
      S += "\\n";
      break;
    case '\t':
      S += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        S += Buf;
      } else {
        S += C;
      }
    }
  }
  S += '"';
}

void appendKV(std::string &S, const char *K, uint64_t V) {
  S += '"';
  S += K;
  S += "\":";
  S += std::to_string(V);
}

void appendKV(std::string &S, const char *K, const std::string &V) {
  S += '"';
  S += K;
  S += "\":";
  appendEscaped(S, V);
}

} // namespace

std::string StreamingSession::siteName(ir::MethodId M) const {
  if (M == ir::InvalidMethodId)
    return "-";
  if (Opts.MethodName)
    return Opts.MethodName(M);
  return "m" + std::to_string(M);
}

void StreamingSession::writeLine(const std::string &Line) {
  if (Opts.Out == nullptr)
    return;
  SpinLockGuard Guard(Lock);
  *Opts.Out << Line << "\n";
  Opts.Out->flush(); // A supervisor tails the stream live; buffer nothing.
}

void StreamingSession::onViolation(const analysis::ViolationRecord &R) {
  uint64_t N = Violations.fetch_add(1, std::memory_order_relaxed) + 1;
  std::string S = "{";
  appendKV(S, "event", std::string("violation"));
  S += ',';
  appendKV(S, "seq", Seq.fetch_add(1, std::memory_order_relaxed));
  S += ',';
  appendKV(S, "n", N);
  S += ',';
  appendKV(S, "kind",
           std::string(R.K == analysis::ViolationRecord::Kind::Precise
                           ? "precise"
                           : "potential"));
  S += ',';
  appendKV(S, "blamed", siteName(R.Blamed));
  S += ",\"cycle\":[";
  bool First = true;
  for (const analysis::CycleMember &M : R.Cycle) {
    if (!First)
      S += ',';
    First = false;
    S += "{";
    appendKV(S, "tid", static_cast<uint64_t>(M.Tid));
    S += ',';
    appendKV(S, "site", siteName(M.Site));
    S += ',';
    appendKV(S, "tx", M.TxId);
    S += "}";
  }
  S += "]}";
  writeLine(S);
}

void StreamingSession::healthJson(std::string &S,
                                  const HealthSnapshot &H) const {
  appendKV(S, "window", H.WindowIndex);
  S += ',';
  appendKV(S, "finished_txs", H.FinishedTxs);
  S += ',';
  appendKV(S, "live_txs", H.LiveTxs);
  S += ',';
  appendKV(S, "retired_txs", H.RetiredTxs);
  S += ',';
  appendKV(S, "pinned_txs", H.PinnedTxs);
  S += ',';
  appendKV(S, "cross_edges", H.CrossEdges);
  S += ',';
  appendKV(S, "violations", H.Violations);
  S += ',';
  appendKV(S, "degradations", H.Degradations);
  S += ',';
  appendKV(S, "fault", std::string(toString(H.Fault)));
}

void StreamingSession::onWindow(const HealthSnapshot &H) {
  uint64_t N = Windows.fetch_add(1, std::memory_order_relaxed) + 1;
  std::string S = "{";
  appendKV(S, "event", std::string("window"));
  S += ',';
  appendKV(S, "seq", Seq.fetch_add(1, std::memory_order_relaxed));
  S += ',';
  healthJson(S, H);
  S += "}";
  writeLine(S);
  if (Opts.HealthEveryWindows != 0 && N % Opts.HealthEveryWindows == 0)
    emitHealth(H);
}

void StreamingSession::emitHealth(const HealthSnapshot &H) {
  std::string S = "{";
  appendKV(S, "event", std::string("health"));
  S += ',';
  appendKV(S, "seq", Seq.fetch_add(1, std::memory_order_relaxed));
  S += ',';
  healthJson(S, H);
  S += ',';
  appendKV(S, "stats_stable", static_cast<uint64_t>(H.StatsStable ? 1 : 0));
  S += ",\"stats\":{";
  bool First = true;
  for (const auto &KV : H.Stats) {
    if (!First)
      S += ',';
    First = false;
    appendEscaped(S, KV.first);
    S += ':';
    S += std::to_string(KV.second);
  }
  S += "}}";
  writeLine(S);
}

void StreamingSession::onFault(CheckerFault F, const std::string &Diagnosis) {
  std::string S = "{";
  appendKV(S, "event", std::string("fault"));
  S += ',';
  appendKV(S, "seq", Seq.fetch_add(1, std::memory_order_relaxed));
  S += ',';
  appendKV(S, "fault", std::string(toString(F)));
  S += ',';
  appendKV(S, "diagnosis", Diagnosis);
  S += "}";
  writeLine(S);
}

void StreamingSession::finish(const std::set<std::string> &Blamed,
                              const std::set<std::string> &Potential,
                              uint64_t Records, CheckerFault Fault,
                              int ExitCode) {
  std::string S = "{";
  appendKV(S, "event", std::string("summary"));
  S += ',';
  appendKV(S, "seq", Seq.fetch_add(1, std::memory_order_relaxed));
  S += ',';
  appendKV(S, "violations", Records);
  S += ',';
  appendKV(S, "windows", windowsStreamed());
  S += ',';
  appendKV(S, "fault", std::string(toString(Fault)));
  S += ',';
  appendKV(S, "exit_code", static_cast<uint64_t>(ExitCode));
  auto AppendSet = [&](const char *K, const std::set<std::string> &Set) {
    S += ",\"";
    S += K;
    S += "\":[";
    bool First = true;
    for (const std::string &M : Set) {
      if (!First)
        S += ',';
      First = false;
      appendEscaped(S, M);
    }
    S += "]";
  };
  AppendSet("blamed", Blamed);
  AppendSet("potential", Potential);
  S += "}";
  writeLine(S);
}
