//===- rt/Heap.h - Shared heap for interpreted programs ---------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heap materializes a program's object pools. Every object gets:
///   * a dense ObjectId,
///   * a contiguous range of global *field addresses* (FieldBase .. FieldBase
///     + NumFields), where the extra slot past the declared fields is the
///     "sync slot" used to model monitor/fork/join dependences as reads and
///     writes (the paper treats acquire-like ops as reads and release-like
///     ops as writes on the synchronized object),
///   * one atomic metadata word reserved for the active checker (Octet packs
///     its locality state here, exactly like the paper's per-object state).
///
/// Field values are relaxed atomics: racy programs are the subject under
/// test, and relaxed accesses keep the data race well-defined in C++ while
/// costing the same as plain loads/stores.
///
//===----------------------------------------------------------------------===//

#ifndef DC_RT_HEAP_H
#define DC_RT_HEAP_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "ir/Ir.h"

namespace dc {
namespace rt {

using ObjectId = uint32_t;
using FieldAddr = uint32_t;

/// Per-object header. MetaWord is owned by whichever checker is active
/// (Octet state for DoubleChecker; unused by Velodrome, whose metadata is
/// per-field).
struct HeapObject {
  FieldAddr FieldBase = 0;
  uint32_t NumFields = 0; ///< Declared fields; sync slot is index NumFields.
  ir::PoolId Pool = 0;
  std::atomic<uint64_t> MetaWord{0};
};

/// The shared heap: object headers plus a flat field-value array.
class Heap {
public:
  /// Builds the heap for \p P with \p NumThreads implicit per-thread
  /// "thread objects" (zero declared fields, one sync slot) appended after
  /// the pool objects.
  Heap(const ir::Program &P, uint32_t NumThreads);

  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  /// Maps (pool, index-within-pool) to an object id. Index is reduced
  /// modulo the pool size, so workload expressions never go out of range.
  ObjectId objectOf(ir::PoolId Pool, uint64_t Index) const {
    assert(Pool < PoolBases.size() && "unknown pool");
    return PoolBases[Pool] + static_cast<ObjectId>(Index % PoolCounts[Pool]);
  }

  /// The implicit object representing program thread \p Tid.
  ObjectId threadObject(uint32_t Tid) const {
    assert(Tid < NumThreads && "bad thread id");
    return ThreadObjectBase + Tid;
  }

  HeapObject &object(ObjectId Id) {
    assert(Id < Objects.size() && "bad object id");
    return Objects[Id];
  }
  const HeapObject &object(ObjectId Id) const {
    assert(Id < Objects.size() && "bad object id");
    return Objects[Id];
  }

  /// Global field address of field/element \p Field of \p Id (reduced
  /// modulo the object's field count).
  FieldAddr fieldAddr(ObjectId Id, uint64_t Field) const {
    const HeapObject &O = object(Id);
    uint32_t N = O.NumFields == 0 ? 1 : O.NumFields;
    return O.FieldBase + static_cast<FieldAddr>(Field % N);
  }

  /// Address of the sync pseudo-field of \p Id.
  FieldAddr syncAddr(ObjectId Id) const {
    const HeapObject &O = object(Id);
    return O.FieldBase + O.NumFields;
  }

  /// Maps a field address back to its owning object (for diagnostics and
  /// for object-granularity analyses). O(log #objects).
  ObjectId objectOfField(FieldAddr Addr) const;

  int64_t load(FieldAddr Addr) const {
    return Values[Addr].load(std::memory_order_relaxed);
  }
  void store(FieldAddr Addr, int64_t V) {
    Values[Addr].store(V, std::memory_order_relaxed);
  }

  uint32_t numObjects() const { return static_cast<uint32_t>(Objects.size()); }
  uint32_t numFieldAddrs() const {
    return static_cast<uint32_t>(Values.size());
  }
  uint32_t numThreads() const { return NumThreads; }

private:
  std::vector<HeapObject> Objects;
  std::vector<std::atomic<int64_t>> Values;
  std::vector<ObjectId> PoolBases;
  std::vector<uint32_t> PoolCounts;
  ObjectId ThreadObjectBase = 0;
  uint32_t NumThreads = 0;
};

} // namespace rt
} // namespace dc

#endif // DC_RT_HEAP_H
