//===- rt/Watchdog.h - Heartbeat monitor for checker components -*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small heartbeat monitor that converts "component silently wedged" into
/// a structured CheckerFault (DESIGN.md §10). Components — PCD workers, the
/// transaction collector, the scheduler gate — register a named slot, mark
/// themselves busy while holding work, and beat their slot as they make
/// progress. The monitor thread polls; a slot that is busy and has not
/// beaten for longer than the timeout fires the handler exactly once (first
/// fault wins at the handler's discretion). Idle slots never fire, so a
/// quiescent run costs one mostly-sleeping thread and nothing else.
///
/// The handler runs on the monitor thread and must not block on the stalled
/// component; recording a fault and requesting a cooperative abort are the
/// intended actions.
///
//===----------------------------------------------------------------------===//

#ifndef DC_RT_WATCHDOG_H
#define DC_RT_WATCHDOG_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace dc {
namespace rt {

class Watchdog {
public:
  struct Options {
    uint32_t TimeoutMs = 10000; ///< Busy silence that counts as a stall.
    uint32_t PollMs = 10;       ///< Monitor poll interval.
  };

  /// Called (on the monitor thread) when \p Component has been busy and
  /// silent for \p SilentMs milliseconds.
  using Handler = std::function<void(const std::string &Component,
                                     uint64_t SilentMs)>;

  Watchdog(Options Opts, Handler OnStall);
  ~Watchdog();

  Watchdog(const Watchdog &) = delete;
  Watchdog &operator=(const Watchdog &) = delete;

  /// Registers a monitored component; the returned id is stable for the
  /// watchdog's lifetime. Must be called before start().
  uint32_t addComponent(std::string Name);

  /// Starts the monitor thread. No-op if there are no components.
  void start();

  /// Component API: mark busy (holding work), beat (progress), mark idle.
  /// beginWork also counts as a beat.
  void beginWork(uint32_t Id);
  void heartbeat(uint32_t Id);
  void endWork(uint32_t Id);

  /// Stops monitoring without stopping the thread (used on the clean
  /// shutdown path before components wind down out of order).
  void disarm();

private:
  struct Slot {
    std::string Name;
    std::atomic<uint64_t> LastBeatMs{0};
    std::atomic<bool> Busy{false};
    std::atomic<bool> Fired{false};
  };

  static uint64_t nowMs();
  void monitorLoop();

  Options Opts;
  Handler OnStall;
  std::deque<Slot> Slots; // deque: stable addresses as slots are added.
  std::atomic<bool> Armed{true};
  bool StopRequested = false;
  std::mutex StopLock;
  std::condition_variable StopCv;
  std::thread Monitor;
};

} // namespace rt
} // namespace dc

#endif // DC_RT_WATCHDOG_H
