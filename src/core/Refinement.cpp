//===- core/Refinement.cpp ------------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Refinement.h"

using namespace dc;
using namespace dc::core;

static rt::RunOptions runOptionsFor(uint64_t Seed, bool Deterministic) {
  rt::RunOptions Opts;
  Opts.Deterministic = Deterministic;
  Opts.ScheduleSeed = Seed;
  return Opts;
}

RunOutcome core::runMultiRunTrial(const ir::Program &P,
                                  const AtomicitySpec &Spec,
                                  uint32_t FirstRuns, uint64_t Seed,
                                  bool Deterministic) {
  analysis::StaticTransactionInfo Union;
  for (uint32_t R = 0; R < FirstRuns; ++R) {
    RunConfig First;
    First.M = Mode::FirstRun;
    First.RunOpts = runOptionsFor(Seed * 1000003 + R, Deterministic);
    Union.merge(runChecker(P, Spec, First).StaticInfo);
  }
  RunConfig Second;
  Second.M = Mode::SecondRun;
  Second.RunOpts = runOptionsFor(Seed * 1000003 + FirstRuns, Deterministic);
  Second.StaticInfo = &Union;
  RunOutcome Outcome = runChecker(P, Spec, Second);
  Outcome.StaticInfo = Union; // Surface the input union to callers.
  return Outcome;
}

RefinementResult core::iterativeRefinement(const ir::Program &P,
                                           const RefinementOptions &Opts) {
  RefinementResult Result;
  Result.FinalSpec = AtomicitySpec::initial(P);

  uint32_t Quiet = 0;
  while (Quiet < Opts.QuietTrials && Result.Trials < Opts.MaxTrials) {
    uint64_t TrialSeed = Opts.Seed + 7919 * Result.Trials;
    ++Result.Trials;

    RunOutcome Outcome;
    switch (Opts.Checker) {
    case RefinementChecker::Velodrome: {
      RunConfig Cfg;
      Cfg.M = Mode::Velodrome;
      Cfg.RunOpts = runOptionsFor(TrialSeed, Opts.Deterministic);
      Outcome = runChecker(P, Result.FinalSpec, Cfg);
      break;
    }
    case RefinementChecker::SingleRun: {
      RunConfig Cfg;
      Cfg.M = Mode::SingleRun;
      Cfg.RunOpts = runOptionsFor(TrialSeed, Opts.Deterministic);
      Outcome = runChecker(P, Result.FinalSpec, Cfg);
      break;
    }
    case RefinementChecker::MultiRun:
      Outcome = runMultiRunTrial(P, Result.FinalSpec, Opts.FirstRunsPerTrial,
                                 TrialSeed, Opts.Deterministic);
      break;
    }

    bool AnyNew = false;
    for (const std::string &Name : Outcome.BlamedMethods) {
      if (Result.AllBlamed.insert(Name).second) {
        Result.BlameOrder.push_back(Name);
        Result.FinalSpec.exclude(Name);
        AnyNew = true;
      }
    }
    Quiet = AnyNew ? 0 : Quiet + 1;
  }
  return Result;
}
