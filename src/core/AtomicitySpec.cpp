//===- core/AtomicitySpec.cpp ---------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/AtomicitySpec.h"

using namespace dc;
using namespace dc::core;

static bool containsInterruptingCall(const std::vector<ir::Instr> &Block) {
  for (const ir::Instr &I : Block) {
    if (I.Op == ir::Opcode::Wait || I.Op == ir::Opcode::Notify ||
        I.Op == ir::Opcode::NotifyAll)
      return true;
    if (I.Op == ir::Opcode::Loop && containsInterruptingCall(I.Body))
      return true;
  }
  return false;
}

AtomicitySpec AtomicitySpec::initial(const ir::Program &P) {
  std::set<std::string> Excluded;
  for (ir::MethodId Entry : P.ThreadEntries)
    Excluded.insert(P.Methods[Entry].Name);
  for (const ir::Method &M : P.Methods) {
    if (containsInterruptingCall(M.Body))
      Excluded.insert(M.Name);
    // Fork/join only appear in driver methods, which never execute
    // atomically (the DaCapo driver-thread exclusion of §5.1).
    for (const ir::Instr &I : M.Body)
      if (I.Op == ir::Opcode::Fork || I.Op == ir::Opcode::Join)
        Excluded.insert(M.Name);
  }
  return AtomicitySpec(std::move(Excluded));
}

std::set<std::string> AtomicitySpec::atomicMethods(const ir::Program &P)
    const {
  std::set<std::string> Result;
  for (const ir::Method &M : P.Methods)
    if (isAtomic(M.Name))
      Result.insert(M.Name);
  return Result;
}
