//===- core/Checker.cpp ---------------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"

#include <cassert>
#include <memory>

#include "analysis/DoubleChecker.h"
#include "instr/Instrument.h"
#include "rt/StreamingSession.h"
#include "support/ChromeTrace.h"
#include "support/Statistic.h"
#include "vc/VectorClockChecker.h"
#include "velodrome/Velodrome.h"

using namespace dc;
using namespace dc::core;

std::string core::toString(Mode M) {
  switch (M) {
  case Mode::Unmodified:
    return "unmodified";
  case Mode::Velodrome:
    return "velodrome";
  case Mode::VelodromeUnsound:
    return "velodrome-unsound";
  case Mode::SingleRun:
    return "single-run";
  case Mode::FirstRun:
    return "first-run";
  case Mode::SecondRun:
    return "second-run";
  case Mode::SecondRunVelodrome:
    return "second-run-velodrome";
  case Mode::PcdOnly:
    return "pcd-only";
  case Mode::VectorClock:
    return "vc";
  }
  return "?";
}

const std::vector<Mode> &core::allModes() {
  static const std::vector<Mode> Modes = {
      Mode::Unmodified, Mode::Velodrome,          Mode::VelodromeUnsound,
      Mode::SingleRun,  Mode::FirstRun,           Mode::SecondRun,
      Mode::SecondRunVelodrome, Mode::PcdOnly,    Mode::VectorClock,
  };
  return Modes;
}

static instr::InstrumentationOptions
instrOptionsFor(const RunConfig &Cfg) {
  instr::InstrumentationOptions Opts;
  Opts.InstrumentArrays = Cfg.InstrumentArrays;
  Opts.ForceInstrumentUnary = Cfg.ForceInstrumentUnary;
  switch (Cfg.M) {
  case Mode::Unmodified:
    Opts.Checker = instr::CheckerKind::None;
    Opts.LogAccesses = false;
    break;
  case Mode::Velodrome:
  case Mode::VelodromeUnsound:
  case Mode::VectorClock:
    // The VC engine consumes the exact same barrier placement as Velodrome
    // (per-field metadata, no access log), so their compiled programs — and
    // therefore recorded schedules — are interchangeable.
    Opts.Checker = instr::CheckerKind::Velodrome;
    Opts.LogAccesses = false;
    break;
  case Mode::SingleRun:
  case Mode::PcdOnly:
    Opts.Checker = instr::CheckerKind::Octet;
    Opts.LogAccesses = true;
    break;
  case Mode::FirstRun:
    Opts.Checker = instr::CheckerKind::Octet;
    Opts.LogAccesses = false;
    break;
  case Mode::SecondRun:
    Opts.Checker = instr::CheckerKind::Octet;
    Opts.LogAccesses = true;
    Opts.Selective = Cfg.StaticInfo;
    break;
  case Mode::SecondRunVelodrome:
    Opts.Checker = instr::CheckerKind::Velodrome;
    Opts.LogAccesses = false;
    Opts.Selective = Cfg.StaticInfo;
    break;
  }
  return Opts;
}

RunOutcome core::runChecker(const ir::Program &Source,
                            const AtomicitySpec &Spec, const RunConfig &Cfg) {
  assert((Cfg.M != Mode::SecondRun && Cfg.M != Mode::SecondRunVelodrome) ||
         Cfg.StaticInfo != nullptr &&
             "second-run modes need first-run static info");

  RunOutcome Outcome;
  if (Cfg.M == Mode::Unmodified) {
    rt::Runtime RT(Source, nullptr, Cfg.RunOpts);
    Outcome.Result = RT.run();
    return Outcome;
  }

  ir::Program Compiled =
      instr::compile(Source, Spec.excluded(), instrOptionsFor(Cfg));

  StatisticRegistry Stats;
  analysis::ViolationLog Violations;
  // Stream verdicts live: the sink runs under the log's lock as each record
  // is confirmed, so the NDJSON feed's order is the report order.
  if (Cfg.Session != nullptr)
    Violations.setSink([S = Cfg.Session](const analysis::ViolationRecord &R) {
      S->onViolation(R);
    });
  std::unique_ptr<rt::CheckerRuntime> Checker;
  analysis::DoubleCheckerRuntime *DC = nullptr;

  switch (Cfg.M) {
  case Mode::Velodrome:
  case Mode::VelodromeUnsound:
  case Mode::SecondRunVelodrome: {
    velodrome::VelodromeOptions VOpts;
    VOpts.UnsoundMetadataFastPath = Cfg.M == Mode::VelodromeUnsound;
    VOpts.DetectCycles = Cfg.DetectCycles;
    Checker = std::make_unique<velodrome::VelodromeRuntime>(
        Compiled, VOpts, Violations, Stats);
    break;
  }
  case Mode::SingleRun:
  case Mode::FirstRun:
  case Mode::SecondRun:
  case Mode::PcdOnly: {
    analysis::DoubleCheckerOptions DOpts;
    DOpts.LogAccesses = Cfg.M != Mode::FirstRun;
    DOpts.RunPcd =
        (Cfg.M == Mode::SingleRun || Cfg.M == Mode::SecondRun) &&
        Cfg.DetectCycles;
    DOpts.DetectIcdCycles = Cfg.DetectCycles;
    DOpts.ParallelPcd = Cfg.ParallelPcd;
    DOpts.PcdWorkers = Cfg.PcdWorkers;
    if (Cfg.PcdQueueDepth != 0)
      DOpts.PcdQueueDepth = Cfg.PcdQueueDepth;
    DOpts.SerializedIdg = Cfg.SerializedIdg;
    DOpts.LegacyLog = Cfg.LegacyLog;
    DOpts.ThreadArenaLog = Cfg.ThreadArenaLog;
    DOpts.RingCount = Cfg.RingCount;
    DOpts.RingBytes = Cfg.RingBytes;
    DOpts.SerialRoundtrips = Cfg.SerialRoundtrips;
    DOpts.BatchedScc = Cfg.BatchedScc;
    if (Cfg.IcdMaxRegion != 0)
      DOpts.IcdMaxRegion = Cfg.IcdMaxRegion;
    DOpts.IcdLockedFastPath = Cfg.IcdLockedFastPath;
    DOpts.IcdSeqRetryStorm = Cfg.IcdSeqRetryStorm;
    DOpts.EagerSccRoots = Cfg.EagerSccRoots;
    DOpts.ElideDuplicates = Cfg.ElideDuplicates;
    DOpts.TestOnlyUnsoundFilter = Cfg.TestOnlyUnsoundIcdFilter;
    DOpts.PcdOnly = Cfg.M == Mode::PcdOnly;
    DOpts.Faults = Cfg.Faults;
    DOpts.MaxLogBytes = Cfg.MemBudgetMB << 20;
    DOpts.MaxLiveTxs = Cfg.MaxLiveTxs;
    if (Cfg.PcdTimeoutMs != 0)
      DOpts.PcdStallTimeoutMs = Cfg.PcdTimeoutMs;
    if (Cfg.MaxSccTxs != 0)
      DOpts.MaxSccTxsForPcd = Cfg.MaxSccTxs;
    DOpts.WindowTxs = Cfg.WindowTxs;
    DOpts.Trace = Cfg.Trace;
    if (Cfg.Session != nullptr) {
      DOpts.WindowHook = [S = Cfg.Session](const rt::HealthSnapshot &H) {
        S->onWindow(H);
      };
      DOpts.FaultHook = [S = Cfg.Session](rt::CheckerFault F,
                                          const std::string &Diagnosis) {
        S->onFault(F, Diagnosis);
      };
    }
    auto Owned = std::make_unique<analysis::DoubleCheckerRuntime>(
        Compiled, DOpts, Violations, Stats);
    DC = Owned.get();
    Checker = std::move(Owned);
    break;
  }
  case Mode::VectorClock: {
    vc::VectorClockOptions VcOpts;
    VcOpts.DetectCycles = Cfg.DetectCycles;
    if (Cfg.VcCollectEveryTx != 0)
      VcOpts.CollectEveryTx = Cfg.VcCollectEveryTx;
    VcOpts.Faults = Cfg.Faults;
    VcOpts.WindowTxs = Cfg.WindowTxs;
    if (Cfg.Session != nullptr)
      VcOpts.WindowHook = [S = Cfg.Session](const rt::HealthSnapshot &H) {
        S->onWindow(H);
      };
    Checker = std::make_unique<vc::VectorClockRuntime>(Compiled, VcOpts,
                                                       Violations, Stats);
    break;
  }
  case Mode::Unmodified:
    break; // Handled above.
  }

  rt::Runtime RT(Compiled, Checker.get(), Cfg.RunOpts);
  Outcome.Result = RT.run();

  Outcome.Violations = Violations.records();
  for (ir::MethodId Site : Violations.blamedMethods())
    Outcome.BlamedMethods.insert(Source.Methods[Site].Name);
  for (ir::MethodId Site : Violations.potentialMethods())
    Outcome.PotentialMethods.insert(Source.Methods[Site].Name);
  if (DC != nullptr)
    Outcome.StaticInfo = DC->staticInfo();
  for (const Statistic *S : Stats.all())
    Outcome.Stats[S->name()] = S->get();
  return Outcome;
}
