//===- core/Checker.h - One-call façade over all configurations -*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Public entry point: compile a program against an atomicity specification
/// for a chosen checker configuration, execute it, and collect violations,
/// static transaction information, and statistics. Every configuration in
/// the paper's evaluation maps to one Mode here.
///
//===----------------------------------------------------------------------===//

#ifndef DC_CORE_CHECKER_H
#define DC_CORE_CHECKER_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/StaticInfo.h"
#include "analysis/Violation.h"
#include "core/AtomicitySpec.h"
#include "ir/Ir.h"
#include "rt/Runtime.h"
#include "support/FaultPlan.h"

namespace dc {

class TraceRecorder;

namespace rt {
class StreamingSession;
} // namespace rt

namespace core {

/// Checker configurations evaluated in the paper (§5).
enum class Mode {
  Unmodified,         ///< Baseline: no instrumentation at all.
  Velodrome,          ///< Sound+precise Velodrome baseline.
  VelodromeUnsound,   ///< §5.3: skip sync when metadata appears unchanged.
  SingleRun,          ///< DoubleChecker single-run mode (ICD + PCD).
  FirstRun,           ///< Multi-run first run (ICD w/o logging).
  SecondRun,          ///< Multi-run second run (ICD + PCD, selective).
  SecondRunVelodrome, ///< §5.3: Velodrome as the second run.
  PcdOnly,            ///< §5.4 straw man: PCD on every transaction.
  VectorClock,        ///< Vector-clock engine (no graph/SCC/replay) —
                      ///< DESIGN.md §14.
};

std::string toString(Mode M);

/// All Mode values, in declaration order. The single source of truth for
/// tools enumerating modes (dcheck --list-modes) — a new enumerator added
/// here shows up everywhere without hand-maintained tables.
const std::vector<Mode> &allModes();

/// Everything configurable about one run.
struct RunConfig {
  Mode M = Mode::SingleRun;
  rt::RunOptions RunOpts;
  /// §5.4: instrument array element accesses (conflated, array-granular
  /// metadata — pair with DetectCycles=false as the paper does).
  bool InstrumentArrays = false;
  bool DetectCycles = true;
  /// §5.3 ablation: second run instruments non-transactional accesses
  /// regardless of the first run's unary boolean.
  bool ForceInstrumentUnary = false;
  /// Extension (§5.3 future work): run PCD on a pool of background worker
  /// threads instead of inline on the detecting thread.
  bool ParallelPcd = false;
  /// Workers in the parallel-PCD pool (ParallelPcd only).
  uint32_t PcdWorkers = 2;
  /// Bound on the parallel-PCD queue (0 = keep the DoubleCheckerOptions
  /// default). Tiny values exercise the timed-backpressure path.
  uint32_t PcdQueueDepth = 0;
  /// Escape hatch: run the IDG behind one global lock with inline
  /// collection (the pre-sharding behaviour) instead of the sharded hot
  /// path. For old-vs-new comparisons; violations must be identical.
  bool SerializedIdg = false;
  /// Escape hatch: use the pre-arena logging path (shared elision cells,
  /// reallocating vector logs). For old-vs-new comparisons; violations
  /// must be identical.
  bool LegacyLog = false;
  /// Escape hatch: publish log records into per-thread chunk arenas
  /// directly instead of the default per-CPU ring transport (DESIGN.md
  /// §13). For ring-vs-arena comparisons; violations must be identical.
  bool ThreadArenaLog = false;
  /// Ring transport sizing overrides (0 = hardware concurrency rings of
  /// 64 KiB). Tiny values force the full-ring backpressure path.
  uint32_t RingCount = 0;
  uint32_t RingBytes = 0;
  /// Escape hatch: run Octet coordination with the seed's serial spin-only
  /// protocol instead of the pipelined fan-out (DESIGN.md §11). For
  /// old-vs-new comparisons; violations must be identical.
  bool SerialRoundtrips = false;
  /// Escape hatch: answer cycle queries with the batched stop-the-world
  /// Tarjan passes instead of the default incremental order-maintenance
  /// detector (DESIGN.md §12). Same claimed components at the same claim
  /// points; violations must be identical.
  bool BatchedScc = false;
  /// Incremental detector's affected-region cap (0 = keep the
  /// DoubleCheckerOptions default). Tiny values force the sound
  /// degradation valve: oversized regions report Potential instead of
  /// reordering.
  uint32_t IcdMaxRegion = 0;
  /// Escape hatch: force every ICD cross edge through the detector's lock
  /// instead of the default lock-free consistent-edge fast path. For
  /// lockfree-vs-locked comparisons; violations must be identical.
  bool IcdLockedFastPath = false;
  /// Force each ICD fast-path attempt to fail seqlock validation this many
  /// times (0 = off); exercises retry counting and the cap fallback.
  uint32_t IcdSeqRetryStorm = 0;
  /// Escape hatch (BatchedScc only): pend every cross-touched transaction
  /// as a Tarjan root and walk every chain node, instead of the out-cross
  /// root filter with chain compression. Same detected components either
  /// way; violations must be identical.
  bool EagerSccRoots = false;
  /// Log duplicate elision (paper §4); off logs every access — a
  /// differential-testing mode that must not change violations.
  bool ElideDuplicates = true;
  /// Test-only fault injection: forwarded to
  /// DoubleCheckerOptions::TestOnlyUnsoundFilter so the schedule fuzzer can
  /// prove it catches a deliberately unsound ICD filter.
  bool TestOnlyUnsoundIcdFilter = false;
  /// Deterministic fault plan (DESIGN.md §10): counter-keyed injections
  /// the fuzzer sweeps to prove degradation stays sound.
  FaultPlan Faults;
  /// Log-arena budget in MiB (0 = unlimited). Breaching it starts the
  /// degradation ladder: shed logging, degrade affected SCCs to potential
  /// violations.
  uint64_t MemBudgetMB = 0;
  /// Live-transaction budget (0 = unlimited). Breaching it forces eager
  /// collection.
  uint64_t MaxLiveTxs = 0;
  /// Watchdog/stall timeout in ms (0 = keep the DoubleCheckerOptions
  /// default).
  uint32_t PcdTimeoutMs = 0;
  /// Cap on SCC size handed to PCD (0 = keep the DoubleCheckerOptions
  /// default). Oversized SCCs degrade to potential violations.
  uint32_t MaxSccTxs = 0;
  /// VectorClock mode: collector trigger in finished transactions (0 =
  /// keep the VectorClockOptions default). Tiny values stress mark-sweep
  /// over live subscription lists.
  uint32_t VcCollectEveryTx = 0;
  /// Streaming service mode (DESIGN.md §15): run a retirement-window flush
  /// every N finished transactions (0 = batch mode, no windows). Honoured
  /// by the DoubleChecker and VectorClock engines; Velodrome keeps its
  /// whole-run graph and ignores it.
  uint32_t WindowTxs = 0;
  /// Live event stream: wired as the ViolationLog sink plus the engines'
  /// window/fault hooks, so a supervisor sees verdicts as they are
  /// confirmed instead of at end of run. Borrowed; may be null.
  rt::StreamingSession *Session = nullptr;
  /// Chrome-trace timeline recorder (chrome://tracing). Borrowed; null
  /// disables trace capture.
  TraceRecorder *Trace = nullptr;
  /// Required for SecondRun / SecondRunVelodrome.
  const analysis::StaticTransactionInfo *StaticInfo = nullptr;
};

/// What one run produced.
struct RunOutcome {
  rt::RunResult Result;
  std::vector<analysis::ViolationRecord> Violations;
  /// Names of blamed (original) methods — the unit Table 2 counts.
  std::set<std::string> BlamedMethods;
  /// Names of methods reported only as *potential* violations (degraded
  /// SCCs: oversized, shed logs, or PCD faults — DESIGN.md §10). A sound
  /// run's BlamedMethods ∪ PotentialMethods covers every true violation.
  std::set<std::string> PotentialMethods;
  /// ICD SCC static sites (multi-run first-run output; filled for every
  /// DoubleChecker mode).
  analysis::StaticTransactionInfo StaticInfo;
  /// Snapshot of all statistics counters ("icd.*", "octet.*", "pcd.*",
  /// "velodrome.*").
  std::map<std::string, uint64_t> Stats;

  uint64_t stat(const std::string &Name) const {
    auto It = Stats.find(Name);
    return It == Stats.end() ? 0 : It->second;
  }
};

/// Compiles \p Source against \p Spec per \p Cfg, runs it, and returns the
/// outcome. Each call is an independent execution.
RunOutcome runChecker(const ir::Program &Source, const AtomicitySpec &Spec,
                      const RunConfig &Cfg);

} // namespace core
} // namespace dc

#endif // DC_CORE_CHECKER_H
