//===- core/AtomicitySpec.h - Atomicity specifications ----------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An atomicity specification is "a list of methods to be excluded from the
/// specification; all other methods are part of the specification, i.e.,
/// they are expected to execute atomically" (§4). The initial specification
/// excludes top-level methods (thread entries) and methods containing
/// interrupting calls (wait/notify), per §5.1; iterative refinement then
/// removes blamed methods.
///
//===----------------------------------------------------------------------===//

#ifndef DC_CORE_ATOMICITYSPEC_H
#define DC_CORE_ATOMICITYSPEC_H

#include <set>
#include <string>

#include "ir/Ir.h"

namespace dc {
namespace core {

/// A specification over method names: atomic unless excluded.
class AtomicitySpec {
public:
  AtomicitySpec() = default;
  explicit AtomicitySpec(std::set<std::string> Excluded)
      : Excluded(std::move(Excluded)) {}

  /// The paper's starting point (§5.1): all methods atomic except thread
  /// entry methods and methods containing wait/notify.
  static AtomicitySpec initial(const ir::Program &P);

  bool isAtomic(const std::string &MethodName) const {
    return Excluded.find(MethodName) == Excluded.end();
  }

  /// Removes \p MethodName from the specification (marks it non-atomic).
  /// Returns false if it was already excluded.
  bool exclude(const std::string &MethodName) {
    return Excluded.insert(MethodName).second;
  }

  const std::set<std::string> &excluded() const { return Excluded; }

  /// Methods of \p P currently in the specification.
  std::set<std::string> atomicMethods(const ir::Program &P) const;

private:
  std::set<std::string> Excluded;
};

} // namespace core
} // namespace dc

#endif // DC_CORE_ATOMICITYSPEC_H
