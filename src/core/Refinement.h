//===- core/Refinement.h - Iterative specification refinement --*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper derives atomicity specifications by iterative refinement
/// (Figure 6): start from the initial specification, run the checker,
/// remove every blamed method from the specification, and repeat until no
/// new violations are reported for a number of consecutive trials. The
/// total set of blamed methods is what Table 2 counts as "static atomicity
/// violations"; the final specification is what the performance experiments
/// use.
///
/// For multi-run mode, one "trial" is FirstRunsPerTrial first runs (whose
/// static transaction information is unioned, per §5.1's methodology)
/// followed by one second run that reports violations.
///
//===----------------------------------------------------------------------===//

#ifndef DC_CORE_REFINEMENT_H
#define DC_CORE_REFINEMENT_H

#include <vector>

#include "core/Checker.h"

namespace dc {
namespace core {

/// Which checker drives refinement.
enum class RefinementChecker {
  Velodrome,
  SingleRun,
  MultiRun, ///< First run(s) + second run per trial.
};

struct RefinementOptions {
  RefinementChecker Checker = RefinementChecker::SingleRun;
  /// Consecutive no-new-violation trials before declaring convergence
  /// (the paper used 10).
  uint32_t QuietTrials = 3;
  /// Hard cap on total trials (safety).
  uint32_t MaxTrials = 200;
  /// Base for per-trial schedule seeds.
  uint64_t Seed = 0x5eed;
  /// Use the deterministic scheduler (tests); performance-style refinement
  /// uses free-running threads like the paper.
  bool Deterministic = false;
  /// Multi-run only: first runs whose static info is unioned per trial.
  uint32_t FirstRunsPerTrial = 3;
};

struct RefinementResult {
  AtomicitySpec FinalSpec;
  /// Every method blamed at least once across all trials (Table 2's
  /// per-checker count is this set's size).
  std::set<std::string> AllBlamed;
  /// Methods in the order they were first blamed.
  std::vector<std::string> BlameOrder;
  uint32_t Trials = 0;
};

/// Runs iterative refinement of \p P's specification to convergence.
RefinementResult iterativeRefinement(const ir::Program &P,
                                     const RefinementOptions &Opts);

/// Runs one multi-run trial against \p Spec: \p FirstRuns first runs with
/// distinct seeds, unioned into StaticTransactionInfo, then one second run.
/// Returns the second run's outcome (whose StaticInfo field holds the
/// *union* used as its input).
RunOutcome runMultiRunTrial(const ir::Program &P, const AtomicitySpec &Spec,
                            uint32_t FirstRuns, uint64_t Seed,
                            bool Deterministic);

} // namespace core
} // namespace dc

#endif // DC_CORE_REFINEMENT_H
