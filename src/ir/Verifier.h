//===- ir/Verifier.h - Structural checks for IR programs --------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef DC_IR_VERIFIER_H
#define DC_IR_VERIFIER_H

#include <string>

#include "ir/Ir.h"

namespace dc {
namespace ir {

/// Verifies structural well-formedness of \p P: pool/method/thread indices
/// in range, element ops only on array pools, loop-variable depths bounded
/// by nesting, no recursive calls (the interpreter's call stack is bounded),
/// and thread 0 present.
///
/// \returns an empty string on success, otherwise the first error found.
std::string verify(const Program &P);

} // namespace ir
} // namespace dc

#endif // DC_IR_VERIFIER_H
