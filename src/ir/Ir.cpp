//===- ir/Ir.cpp ----------------------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Ir.h"

using namespace dc;
using namespace dc::ir;

IndexExpr ir::idxConst(int64_t V) {
  IndexExpr E;
  E.K = IndexExpr::Kind::Const;
  E.Offset = V;
  return E;
}

IndexExpr ir::idxLoop(uint8_t Depth, int64_t Scale, int64_t Offset,
                      uint64_t Mod) {
  IndexExpr E;
  E.K = IndexExpr::Kind::LoopVar;
  E.LoopDepth = Depth;
  E.Scale = Scale;
  E.Offset = Offset;
  E.Mod = Mod;
  return E;
}

IndexExpr ir::idxThread(int64_t Scale, int64_t Offset, uint64_t Mod) {
  IndexExpr E;
  E.K = IndexExpr::Kind::ThreadId;
  E.Scale = Scale;
  E.Offset = Offset;
  E.Mod = Mod;
  return E;
}

IndexExpr ir::idxParam(int64_t Scale, int64_t Offset, uint64_t Mod) {
  IndexExpr E;
  E.K = IndexExpr::Kind::Param;
  E.Scale = Scale;
  E.Offset = Offset;
  E.Mod = Mod;
  return E;
}

IndexExpr ir::idxRandom(uint64_t Mod, int64_t Offset) {
  IndexExpr E;
  E.K = IndexExpr::Kind::Random;
  E.Mod = Mod;
  E.Offset = Offset;
  return E;
}

MethodId Program::findMethod(const std::string &Name) const {
  for (const Method &M : Methods)
    if (M.Name == Name)
      return M.Id;
  return InvalidMethodId;
}

MethodId Program::originalOf(MethodId Id) const {
  const Method &M = Methods[Id];
  return M.OriginalId == InvalidMethodId ? Id : M.OriginalId;
}
