//===- ir/Builder.h - Fluent construction of IR programs --------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ProgramBuilder / BlockBuilder give workloads and tests a compact way to
/// assemble programs:
///
/// \code
///   ProgramBuilder B("bank");
///   PoolId Accounts = B.addPool("accounts", 64, 2);
///   MethodId Deposit = B.beginMethod("deposit", /*Atomic=*/true)
///       .read(Accounts, idxParam(), 0)
///       .work(5)
///       .write(Accounts, idxParam(), 0)
///       .endMethod();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef DC_IR_BUILDER_H
#define DC_IR_BUILDER_H

#include <cassert>

#include "ir/Ir.h"

namespace dc {
namespace ir {

class ProgramBuilder;

/// Builds a straight-line block of instructions; loops open nested blocks.
class BlockBuilder {
public:
  BlockBuilder &read(PoolId Pool, IndexExpr Obj, IndexExpr Field);
  BlockBuilder &write(PoolId Pool, IndexExpr Obj, IndexExpr Field);
  BlockBuilder &readElem(PoolId Pool, IndexExpr Obj, IndexExpr Elem);
  BlockBuilder &writeElem(PoolId Pool, IndexExpr Obj, IndexExpr Elem);
  BlockBuilder &acquire(PoolId Pool, IndexExpr Obj);
  BlockBuilder &release(PoolId Pool, IndexExpr Obj);
  BlockBuilder &wait(PoolId Pool, IndexExpr Obj);
  BlockBuilder &notifyOne(PoolId Pool, IndexExpr Obj);
  BlockBuilder &notifyAll(PoolId Pool, IndexExpr Obj);
  BlockBuilder &call(MethodId Callee, IndexExpr Arg = idxConst(0));
  BlockBuilder &forkThread(IndexExpr Thread);
  BlockBuilder &joinThread(IndexExpr Thread);
  BlockBuilder &work(uint64_t Units);

  /// Opens a loop with \p Trips iterations; returns the body's builder.
  /// Call endLoop() on the returned builder to close it.
  BlockBuilder &beginLoop(IndexExpr Trips);
  /// Closes the innermost open loop; returns the parent block's builder.
  BlockBuilder &endLoop();

  /// Convenience for field read/write on a field selected by expression.
  BlockBuilder &read(PoolId Pool, IndexExpr Obj, uint32_t Field) {
    return read(Pool, Obj, idxConst(Field));
  }
  BlockBuilder &write(PoolId Pool, IndexExpr Obj, uint32_t Field) {
    return write(Pool, Obj, idxConst(Field));
  }

  /// Closes the method under construction and returns its id.
  MethodId endMethod();

private:
  friend class ProgramBuilder;
  BlockBuilder(ProgramBuilder &PB) : PB(PB) {}

  std::vector<Instr> &block();
  BlockBuilder &append(Instr I);

  ProgramBuilder &PB;
};

/// Top-level program construction.
class ProgramBuilder {
public:
  explicit ProgramBuilder(std::string Name, uint64_t Seed = 1);

  /// Declares a pool of \p Count objects with \p NumFields fields each.
  PoolId addPool(const std::string &Name, uint32_t Count, uint32_t NumFields);
  /// Declares a pool of \p Count arrays with \p NumElems elements each.
  PoolId addArrayPool(const std::string &Name, uint32_t Count,
                      uint32_t NumElems);

  /// Starts a method; instructions are appended via the returned builder.
  /// Only one method may be open at a time.
  BlockBuilder &beginMethod(const std::string &Name, bool Atomic);

  /// Reserves a method id before its body exists, enabling forward calls.
  MethodId declareMethod(const std::string &Name, bool Atomic);
  /// Starts the body of a previously declared method.
  BlockBuilder &beginDeclaredMethod(MethodId Id);

  /// Registers \p Entry as the entry method of the next program thread;
  /// returns that thread's index. Thread 0 must be added first (main).
  uint32_t addThread(MethodId Entry);

  /// Finishes construction; asserts the program verifies.
  Program build();

private:
  friend class BlockBuilder;

  Program P;
  BlockBuilder Block{*this};
  MethodId OpenMethod = InvalidMethodId;
  /// Stack of pointers into nested loop bodies of the open method.
  std::vector<std::vector<Instr> *> BlockStack;
};

} // namespace ir
} // namespace dc

#endif // DC_IR_BUILDER_H
