//===- ir/Parser.h - Text-format parser for IR programs ---------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual program format emitted by ir::toString(Program), so
/// programs can be stored in files, inspected, edited, and fed back to the
/// checker (see tools/dcheck --file). Round trip:
///
///   parse(toString(P)) == P   (up to compiled-clone OriginalId mapping,
///                              which the text format does not carry)
///
//===----------------------------------------------------------------------===//

#ifndef DC_IR_PARSER_H
#define DC_IR_PARSER_H

#include <string>

#include "ir/Ir.h"

namespace dc {
namespace ir {

/// Result of a parse: either a program or the first error with its line.
struct ParseResult {
  Program P;
  bool Ok = false;
  std::string Error;
  unsigned ErrorLine = 0;
};

/// Parses the printer's textual format. On success the program has been
/// verified (ir::verify).
ParseResult parseProgram(const std::string &Text);

} // namespace ir
} // namespace dc

#endif // DC_IR_PARSER_H
