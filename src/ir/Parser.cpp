//===- ir/Parser.cpp ------------------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "ir/Verifier.h"

using namespace dc;
using namespace dc::ir;

namespace {

/// Cursor over one line's characters.
class LineCursor {
public:
  explicit LineCursor(const std::string &Line) : Line(Line) {}

  void skipSpaces() {
    while (Pos < Line.size() && Line[Pos] == ' ')
      ++Pos;
  }

  bool atEnd() {
    skipSpaces();
    return Pos >= Line.size();
  }

  bool consume(const std::string &Token) {
    skipSpaces();
    if (Line.compare(Pos, Token.size(), Token) != 0)
      return false;
    Pos += Token.size();
    return true;
  }

  /// Reads an identifier (letters, digits, '_', '$', '-').
  std::string ident() {
    skipSpaces();
    size_t Start = Pos;
    while (Pos < Line.size() &&
           (std::isalnum(static_cast<unsigned char>(Line[Pos])) ||
            Line[Pos] == '_' || Line[Pos] == '$' || Line[Pos] == '-'))
      ++Pos;
    return Line.substr(Start, Pos - Start);
  }

  bool number(int64_t &Out) {
    skipSpaces();
    size_t Start = Pos;
    if (Pos < Line.size() && (Line[Pos] == '-' || Line[Pos] == '+'))
      ++Pos;
    size_t Digits = Pos;
    while (Pos < Line.size() &&
           std::isdigit(static_cast<unsigned char>(Line[Pos])))
      ++Pos;
    if (Pos == Digits) {
      Pos = Start;
      return false;
    }
    Out = std::stoll(Line.substr(Start, Pos - Start));
    return true;
  }

  char peek() {
    skipSpaces();
    return Pos < Line.size() ? Line[Pos] : '\0';
  }

private:
  const std::string &Line;
  size_t Pos = 0;
};

class ParserImpl {
public:
  explicit ParserImpl(const std::string &Text) : Text(Text) {}

  ParseResult run() {
    ParseResult R;
    splitLines();
    if (!parseHeader(R) || !collectMethodNames(R) || !parseBodies(R) ||
        !resolveThreads(R))
      return R;
    if (std::string Err = verify(Out); !Err.empty()) {
      R.Error = "verifier: " + Err;
      return R;
    }
    R.P = std::move(Out);
    R.Ok = true;
    return R;
  }

private:
  struct RawLine {
    unsigned Number = 0;
    unsigned Indent = 0;
    std::string Body;
  };

  void splitLines() {
    std::istringstream IS(Text);
    std::string Line;
    unsigned Number = 0;
    while (std::getline(IS, Line)) {
      ++Number;
      // Strip trailing whitespace/CR.
      while (!Line.empty() &&
             (Line.back() == ' ' || Line.back() == '\r' ||
              Line.back() == '\t'))
        Line.pop_back();
      if (Line.empty())
        continue;
      unsigned Indent = 0;
      while (Indent < Line.size() && Line[Indent] == ' ')
        ++Indent;
      // '#'-comment lines are skipped wholesale, so annotated programs —
      // e.g. dcfuzz witness files, whose header records the seed and
      // schedule as comments — parse directly.
      if (Indent < Line.size() && Line[Indent] == '#')
        continue;
      Lines.push_back(RawLine{Number, Indent, Line.substr(Indent)});
    }
  }

  bool fail(ParseResult &R, unsigned LineNo, const std::string &Msg) {
    R.Error = Msg;
    R.ErrorLine = LineNo;
    return false;
  }

  /// "program NAME (seed N)", pools, threads, syncflags.
  bool parseHeader(ParseResult &R) {
    if (Lines.empty() || Lines[0].Body.rfind("program ", 0) != 0)
      return fail(R, Lines.empty() ? 0 : Lines[0].Number,
                  "expected 'program <name> (seed <n>)'");
    {
      LineCursor C(Lines[0].Body);
      C.consume("program");
      Out.Name = C.ident();
      int64_t Seed = 1;
      if (C.consume("(seed"))
        C.number(Seed);
      Out.Seed = static_cast<uint64_t>(Seed);
    }
    Next = 1;
    while (Next < Lines.size()) {
      LineCursor C(Lines[Next].Body);
      if (C.consume("pool")) {
        ObjectPool Pool;
        Pool.Name = C.ident();
        int64_t Count = 0, Fields = 0;
        if (!C.consume("x") || !C.number(Count))
          return fail(R, Lines[Next].Number, "expected 'x<count>'");
        if (C.consume("fields=")) {
          Pool.IsArray = false;
        } else if (C.consume("elems=")) {
          Pool.IsArray = true;
        } else {
          return fail(R, Lines[Next].Number,
                      "expected 'fields=' or 'elems='");
        }
        if (!C.number(Fields))
          return fail(R, Lines[Next].Number, "expected field count");
        Pool.Count = static_cast<uint32_t>(Count);
        Pool.NumFields = static_cast<uint32_t>(Fields);
        Out.Pools.push_back(Pool);
        PoolIds[Pool.Name] = static_cast<PoolId>(Out.Pools.size() - 1);
        ++Next;
      } else if (C.consume("thread")) {
        int64_t Tid = 0;
        C.number(Tid);
        if (!C.consume("->") || !C.consume("@"))
          return fail(R, Lines[Next].Number, "expected '-> @<method>'");
        ThreadEntryNames.push_back(C.ident());
        ++Next;
      } else if (C.consume("syncflags")) {
        uint8_t Flags = IF_None;
        if (!parseFlags(C, Flags))
          return fail(R, Lines[Next].Number, "bad syncflags");
        Out.ThreadSyncFlags = Flags;
        ++Next;
      } else {
        break; // Methods begin.
      }
    }
    return true;
  }

  /// First pass over method headers so forward calls resolve.
  bool collectMethodNames(ParseResult &R) {
    for (size_t I = Next; I < Lines.size(); ++I) {
      if (Lines[I].Indent != 0)
        continue;
      LineCursor C(Lines[I].Body);
      if (!C.consume("method") || !C.consume("@"))
        return fail(R, Lines[I].Number, "expected 'method @<name>'");
      Method M;
      M.Name = C.ident();
      if (M.Name.empty())
        return fail(R, Lines[I].Number, "empty method name");
      M.Id = static_cast<MethodId>(Out.Methods.size());
      M.Atomic = C.consume("atomic");
      M.StartsTransaction = C.consume("starts-tx");
      M.TransactionalContext = C.consume("tx-ctx");
      if (MethodIds.count(M.Name))
        return fail(R, Lines[I].Number, "duplicate method " + M.Name);
      MethodIds[M.Name] = M.Id;
      Out.Methods.push_back(std::move(M));
    }
    return true;
  }

  bool parseBodies(ParseResult &R) {
    size_t MethodIdx = 0;
    size_t I = Next;
    while (I < Lines.size()) {
      if (Lines[I].Indent != 0)
        return fail(R, Lines[I].Number, "instruction outside a method");
      Method &M = Out.Methods[MethodIdx++];
      ++I;
      // Block stack: (indent, block). Method body starts at indent 2.
      std::vector<std::pair<unsigned, std::vector<Instr> *>> Stack;
      Stack.emplace_back(2, &M.Body);
      while (I < Lines.size() && Lines[I].Indent > 0) {
        unsigned Indent = Lines[I].Indent;
        while (Stack.size() > 1 && Indent < Stack.back().first)
          Stack.pop_back();
        if (Indent != Stack.back().first)
          return fail(R, Lines[I].Number, "bad indentation");
        Instr Ins;
        if (!parseInstr(R, Lines[I], Ins))
          return false;
        Stack.back().second->push_back(std::move(Ins));
        if (Stack.back().second->back().Op == Opcode::Loop)
          Stack.emplace_back(Indent + 2, &Stack.back().second->back().Body);
        ++I;
      }
    }
    return true;
  }

  bool parseFlags(LineCursor &C, uint8_t &Flags) {
    if (!C.consume("["))
      return false;
    for (;;) {
      if (C.consume("octet"))
        Flags |= IF_OctetBarrier;
      else if (C.consume("velo"))
        Flags |= IF_VelodromeBarrier;
      else if (C.consume("log"))
        Flags |= IF_LogAccess;
      else
        return false;
      if (C.consume("]"))
        return true;
      if (!C.consume(","))
        return false;
    }
  }

  bool parseExpr(LineCursor &C, IndexExpr &E) {
    E = IndexExpr();
    int64_t First = 0;
    bool HaveNumber = C.number(First);
    if (HaveNumber && C.consume("*")) {
      E.Scale = First;
      HaveNumber = false;
      First = 0;
    } else if (HaveNumber) {
      // Pure constant (possibly with a modulus below).
      E.K = IndexExpr::Kind::Const;
      E.Offset = First;
      if (C.consume("%")) {
        int64_t Mod = 0;
        if (!C.number(Mod))
          return false;
        E.Mod = static_cast<uint64_t>(Mod);
      }
      return true;
    }
    // Base token.
    if (C.consume("tid")) {
      E.K = IndexExpr::Kind::ThreadId;
    } else if (C.consume("param")) {
      E.K = IndexExpr::Kind::Param;
    } else if (C.consume("rnd")) {
      E.K = IndexExpr::Kind::Random;
    } else if (C.consume("loop")) {
      E.K = IndexExpr::Kind::LoopVar;
      int64_t Depth = 0;
      if (!C.number(Depth))
        return false;
      E.LoopDepth = static_cast<uint8_t>(Depth);
    } else {
      return false;
    }
    int64_t Offset = 0;
    if (C.peek() == '+' || C.peek() == '-')
      if (C.number(Offset))
        E.Offset = Offset;
    if (C.consume("%")) {
      int64_t Mod = 0;
      if (!C.number(Mod))
        return false;
      E.Mod = static_cast<uint64_t>(Mod);
    }
    return true;
  }

  bool parseObjRef(LineCursor &C, ObjRef &Ref, ParseResult &R,
                   unsigned LineNo) {
    std::string Pool = C.ident();
    auto It = PoolIds.find(Pool);
    if (It == PoolIds.end())
      return fail(R, LineNo, "unknown pool '" + Pool + "'");
    Ref.Pool = It->second;
    if (!C.consume("[") || !parseExpr(C, Ref.Index) || !C.consume("]"))
      return fail(R, LineNo, "bad object index expression");
    return true;
  }

  bool parseInstr(ParseResult &R, const RawLine &L, Instr &Ins) {
    LineCursor C(L.Body);
    uint8_t Flags = IF_None;
    if (C.peek() == '[' && !parseFlags(C, Flags))
      return fail(R, L.Number, "bad instrumentation flags");
    Ins.Flags = Flags;

    auto Access = [&](Opcode Op, bool Elem) {
      Ins.Op = Op;
      if (!parseObjRef(C, Ins.Obj, R, L.Number))
        return false;
      if (Elem) {
        if (!C.consume("[") || !parseExpr(C, Ins.A) || !C.consume("]"))
          return fail(R, L.Number, "bad element expression");
      } else {
        if (!C.consume(".") || !parseExpr(C, Ins.A))
          return fail(R, L.Number, "bad field expression");
      }
      return true;
    };
    auto SyncOp = [&](Opcode Op) {
      Ins.Op = Op;
      return parseObjRef(C, Ins.Obj, R, L.Number);
    };

    if (C.consume("readelem"))
      return Access(Opcode::ReadElem, true);
    if (C.consume("writeelem"))
      return Access(Opcode::WriteElem, true);
    if (C.consume("read"))
      return Access(Opcode::Read, false);
    if (C.consume("write"))
      return Access(Opcode::Write, false);
    if (C.consume("acquire"))
      return SyncOp(Opcode::Acquire);
    if (C.consume("release"))
      return SyncOp(Opcode::Release);
    if (C.consume("wait"))
      return SyncOp(Opcode::Wait);
    if (C.consume("notifyall"))
      return SyncOp(Opcode::NotifyAll);
    if (C.consume("notify"))
      return SyncOp(Opcode::Notify);
    if (C.consume("call")) {
      Ins.Op = Opcode::Call;
      if (!C.consume("@"))
        return fail(R, L.Number, "expected '@<method>'");
      std::string Callee = C.ident();
      auto It = MethodIds.find(Callee);
      if (It == MethodIds.end())
        return fail(R, L.Number, "unknown method '" + Callee + "'");
      Ins.Callee = It->second;
      if (!C.consume("(") || !parseExpr(C, Ins.A) || !C.consume(")"))
        return fail(R, L.Number, "bad call argument");
      return true;
    }
    if (C.consume("fork")) {
      Ins.Op = Opcode::Fork;
      return C.consume("thread") && parseExpr(C, Ins.A)
                 ? true
                 : fail(R, L.Number, "bad fork");
    }
    if (C.consume("join")) {
      Ins.Op = Opcode::Join;
      return C.consume("thread") && parseExpr(C, Ins.A)
                 ? true
                 : fail(R, L.Number, "bad join");
    }
    if (C.consume("loop")) {
      Ins.Op = Opcode::Loop;
      return parseExpr(C, Ins.A) ? true : fail(R, L.Number, "bad loop");
    }
    if (C.consume("work")) {
      Ins.Op = Opcode::Work;
      return parseExpr(C, Ins.A) ? true : fail(R, L.Number, "bad work");
    }
    return fail(R, L.Number, "unknown instruction '" + L.Body + "'");
  }

  bool resolveThreads(ParseResult &R) {
    for (const std::string &Name : ThreadEntryNames) {
      auto It = MethodIds.find(Name);
      if (It == MethodIds.end())
        return fail(R, 0, "thread entry '" + Name + "' not defined");
      Out.ThreadEntries.push_back(It->second);
    }
    return true;
  }

  const std::string &Text;
  std::vector<RawLine> Lines;
  size_t Next = 0;
  Program Out;
  std::map<std::string, PoolId> PoolIds;
  std::map<std::string, MethodId> MethodIds;
  std::vector<std::string> ThreadEntryNames;
};

} // namespace

ParseResult ir::parseProgram(const std::string &Text) {
  return ParserImpl(Text).run();
}
