//===- ir/Verifier.cpp ----------------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

using namespace dc;
using namespace dc::ir;

namespace {

/// Walks a program accumulating the first error.
class VerifierImpl {
public:
  explicit VerifierImpl(const Program &P) : P(P) {}

  std::string run() {
    if (P.ThreadEntries.empty())
      return "program has no threads";
    for (size_t T = 0; T < P.ThreadEntries.size(); ++T)
      if (P.ThreadEntries[T] >= P.Methods.size())
        return "thread " + std::to_string(T) + " has an invalid entry method";
    for (const Method &M : P.Methods) {
      if (M.Id >= P.Methods.size() || &P.Methods[M.Id] != &M)
        return "method '" + M.Name + "' has an inconsistent id";
      if (std::string Err = checkBlock(M.Body, /*LoopDepth=*/0); !Err.empty())
        return "in method '" + M.Name + "': " + Err;
    }
    return checkNoRecursion();
  }

private:
  enum class Mark : uint8_t { White, Grey, Black };

  std::string checkExpr(const IndexExpr &E, unsigned LoopDepth) {
    if (E.K == IndexExpr::Kind::LoopVar && E.LoopDepth >= LoopDepth)
      return "loop-variable operand deeper than loop nesting";
    return "";
  }

  std::string checkObjRef(const ObjRef &R, unsigned LoopDepth) {
    if (R.Pool >= P.Pools.size())
      return "reference to unknown pool " + std::to_string(R.Pool);
    return checkExpr(R.Index, LoopDepth);
  }

  std::string checkBlock(const std::vector<Instr> &Block, unsigned LoopDepth) {
    for (const Instr &I : Block)
      if (std::string Err = checkInstr(I, LoopDepth); !Err.empty())
        return Err;
    return "";
  }

  std::string checkInstr(const Instr &I, unsigned LoopDepth) {
    switch (I.Op) {
    case Opcode::Read:
    case Opcode::Write:
    case Opcode::ReadElem:
    case Opcode::WriteElem: {
      if (std::string Err = checkObjRef(I.Obj, LoopDepth); !Err.empty())
        return Err;
      bool IsElem = I.Op == Opcode::ReadElem || I.Op == Opcode::WriteElem;
      if (IsElem != P.Pools[I.Obj.Pool].IsArray)
        return IsElem ? "element access on a non-array pool"
                      : "field access on an array pool";
      return checkExpr(I.A, LoopDepth);
    }
    case Opcode::Acquire:
    case Opcode::Release:
    case Opcode::Wait:
    case Opcode::Notify:
    case Opcode::NotifyAll:
      return checkObjRef(I.Obj, LoopDepth);
    case Opcode::Call:
      if (I.Callee >= P.Methods.size())
        return "call to unknown method";
      return checkExpr(I.A, LoopDepth);
    case Opcode::Fork:
    case Opcode::Join:
      return checkExpr(I.A, LoopDepth);
    case Opcode::Loop:
      if (std::string Err = checkExpr(I.A, LoopDepth); !Err.empty())
        return Err;
      return checkBlock(I.Body, LoopDepth + 1);
    case Opcode::Work:
      return checkExpr(I.A, LoopDepth);
    }
    return "unknown opcode";
  }

  void collectCallees(const std::vector<Instr> &Block,
                      std::vector<MethodId> &Out) {
    for (const Instr &I : Block) {
      if (I.Op == Opcode::Call)
        Out.push_back(I.Callee);
      if (I.Op == Opcode::Loop)
        collectCallees(I.Body, Out);
    }
  }

  /// DFS over the static call graph; rejects cycles so the interpreter's
  /// call stack is statically bounded.
  std::string checkNoRecursion() {
    std::vector<Mark> Marks(P.Methods.size(), Mark::White);
    for (const Method &M : P.Methods)
      if (Marks[M.Id] == Mark::White)
        if (std::string Err = dfs(M.Id, Marks); !Err.empty())
          return Err;
    return "";
  }

  std::string dfs(MethodId Id, std::vector<Mark> &Marks) {
    Marks[Id] = Mark::Grey;
    std::vector<MethodId> Callees;
    collectCallees(P.Methods[Id].Body, Callees);
    for (MethodId Callee : Callees) {
      if (Marks[Callee] == Mark::Grey)
        return "recursive call involving method '" + P.Methods[Id].Name + "'";
      if (Marks[Callee] == Mark::White)
        if (std::string Err = dfs(Callee, Marks); !Err.empty())
          return Err;
    }
    Marks[Id] = Mark::Black;
    return "";
  }

  const Program &P;
};

} // namespace

std::string ir::verify(const Program &P) { return VerifierImpl(P).run(); }
