//===- ir/Ir.h - Mini program IR for synthetic workloads --------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper instruments Java bytecode inside a JVM's dynamic compilers. Our
/// substrate replaces that with a small structured bytecode: programs declare
/// object pools and methods; threads interpret method bodies over a shared
/// heap. The instrumentation passes in dc::instr rewrite this IR (cloning
/// methods per calling context, setting barrier/log flags on accesses) before
/// the runtime executes it, mirroring the compile-time barrier insertion the
/// paper performs at JIT time.
///
//===----------------------------------------------------------------------===//

#ifndef DC_IR_IR_H
#define DC_IR_IR_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dc {
namespace ir {

using MethodId = uint32_t;
using PoolId = uint16_t;
constexpr MethodId InvalidMethodId = std::numeric_limits<MethodId>::max();

/// A pool of identically-shaped heap objects. Workloads index into pools
/// with IndexExpr operands. IsArray distinguishes element accesses (which
/// the default configuration leaves uninstrumented, like the paper) from
/// field accesses.
struct ObjectPool {
  std::string Name;
  uint32_t Count = 1;     ///< Number of objects in the pool.
  uint32_t NumFields = 1; ///< Fields per object (or elements if IsArray).
  bool IsArray = false;
};

/// A tiny run-time-evaluated expression producing an unsigned index:
///   value = (Scale * base(Kind) + Offset) mod Mod    (Mod == 0 => no mod)
/// Base values come from the executing thread's context.
struct IndexExpr {
  enum class Kind : uint8_t {
    Const,   ///< base = 0 (result is Offset mod Mod).
    LoopVar, ///< base = induction variable of the LoopDepth-innermost loop.
    ThreadId,///< base = the executing thread's index.
    Param,   ///< base = the current frame's parameter value.
    Random,  ///< base = next value of the thread's deterministic RNG.
  };

  Kind K = Kind::Const;
  int64_t Scale = 1;
  int64_t Offset = 0;
  uint64_t Mod = 0;
  uint8_t LoopDepth = 0; ///< 0 = innermost enclosing loop (LoopVar only).
};

/// Convenience constructors for IndexExpr.
IndexExpr idxConst(int64_t V);
IndexExpr idxLoop(uint8_t Depth = 0, int64_t Scale = 1, int64_t Offset = 0,
                  uint64_t Mod = 0);
IndexExpr idxThread(int64_t Scale = 1, int64_t Offset = 0, uint64_t Mod = 0);
IndexExpr idxParam(int64_t Scale = 1, int64_t Offset = 0, uint64_t Mod = 0);
IndexExpr idxRandom(uint64_t Mod, int64_t Offset = 0);

/// Reference to one object of a pool, selected at run time.
struct ObjRef {
  PoolId Pool = 0;
  IndexExpr Index;
};

/// Instruction opcodes. Access and sync opcodes may carry instrumentation
/// flags after the dc::instr passes run.
enum class Opcode : uint8_t {
  Read,      ///< Load Obj.field[A]; value folded into the thread accumulator.
  Write,     ///< Store accumulator-derived value to Obj.field[A].
  ReadElem,  ///< Array element load (Obj must name an array pool).
  WriteElem, ///< Array element store.
  Acquire,   ///< Monitor-enter Obj (reentrant).
  Release,   ///< Monitor-exit Obj.
  Wait,      ///< Java-style wait on Obj (must hold its monitor).
  Notify,    ///< Wake one waiter of Obj (must hold its monitor).
  NotifyAll, ///< Wake all waiters of Obj.
  Call,      ///< Invoke Callee, passing A as the parameter.
  Fork,      ///< Start program thread number A (evaluated).
  Join,      ///< Wait for program thread number A to finish.
  Loop,      ///< Execute Body A times with an induction variable.
  Work,      ///< Spin A units of thread-local ALU work (no shared memory).
};

/// Instrumentation flags set by the dc::instr passes. The uninstrumented
/// program has all flags clear; the interpreter's hot path checks one byte.
enum InstrFlags : uint8_t {
  IF_None = 0,
  IF_OctetBarrier = 1 << 0,   ///< Run the Octet read/write barrier.
  IF_VelodromeBarrier = 1 << 1, ///< Run the Velodrome metadata update.
  IF_LogAccess = 1 << 2,      ///< Append to the ICD read/write log.
  IF_Hooked = IF_OctetBarrier | IF_VelodromeBarrier | IF_LogAccess,
};

/// One structured instruction. Loop bodies nest.
struct Instr {
  Opcode Op = Opcode::Work;
  uint8_t Flags = IF_None;
  ObjRef Obj;                     ///< Accesses and sync ops.
  IndexExpr A;                    ///< Field/elem index, trip count, work
                                  ///< units, call argument, thread number.
  MethodId Callee = InvalidMethodId; ///< Call only.
  std::vector<Instr> Body;        ///< Loop only.
};

/// A named method. `Atomic` records the *default* atomicity intent used by
/// workload authors; the effective specification is an input to the
/// instrumentation passes (dc::core::AtomicitySpec) and may differ (e.g.
/// after iterative refinement removes a method).
struct Method {
  std::string Name;
  MethodId Id = InvalidMethodId;
  bool Atomic = false;
  std::vector<Instr> Body;

  // --- Fields below are produced by the instrumentation passes. ---

  /// True if entering this compiled method begins a regular transaction.
  bool StartsTransaction = false;
  /// True if this compiled method's body executes in transactional context.
  bool TransactionalContext = false;
  /// For compiled clones: the original (pre-compilation) method id, used to
  /// report violations against source methods. InvalidMethodId when the
  /// method is itself an original.
  MethodId OriginalId = InvalidMethodId;
};

/// A whole program: pools, methods, and one entry method per thread.
/// Thread 0 is the main thread and starts automatically; other threads
/// start when a Fork instruction names them.
struct Program {
  std::string Name;
  std::vector<ObjectPool> Pools;
  std::vector<Method> Methods;
  std::vector<MethodId> ThreadEntries;
  uint64_t Seed = 1; ///< Seeds per-thread RNGs for Random index operands.

  /// Instrumentation flags applied to implicit thread-lifecycle sync events
  /// (fork, join, thread begin/end). Set by the instrumentation passes.
  uint8_t ThreadSyncFlags = IF_None;

  const Method &method(MethodId Id) const { return Methods[Id]; }
  Method &method(MethodId Id) { return Methods[Id]; }

  /// Finds a method by name; returns InvalidMethodId if absent.
  MethodId findMethod(const std::string &Name) const;

  /// Maps a compiled method id back to its original method id.
  MethodId originalOf(MethodId Id) const;
};

} // namespace ir
} // namespace dc

#endif // DC_IR_IR_H
