//===- ir/Printer.cpp -----------------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include <sstream>

using namespace dc;
using namespace dc::ir;

std::string ir::toString(const IndexExpr &E) {
  std::ostringstream OS;
  auto Base = [&]() -> std::string {
    switch (E.K) {
    case IndexExpr::Kind::Const:
      return "";
    case IndexExpr::Kind::LoopVar:
      return "loop" + std::to_string(E.LoopDepth);
    case IndexExpr::Kind::ThreadId:
      return "tid";
    case IndexExpr::Kind::Param:
      return "param";
    case IndexExpr::Kind::Random:
      return "rnd";
    }
    return "?";
  }();
  if (Base.empty()) {
    OS << E.Offset;
  } else {
    if (E.Scale != 1)
      OS << E.Scale << "*";
    OS << Base;
    if (E.Offset != 0)
      OS << (E.Offset > 0 ? "+" : "") << E.Offset;
  }
  if (E.Mod != 0)
    OS << " % " << E.Mod;
  return OS.str();
}

static std::string flagString(uint8_t Flags) {
  if (Flags == IF_None)
    return "";
  std::string S = "[";
  bool First = true;
  auto Add = [&](const char *Name) {
    if (!First)
      S += ",";
    S += Name;
    First = false;
  };
  if (Flags & IF_OctetBarrier)
    Add("octet");
  if (Flags & IF_VelodromeBarrier)
    Add("velo");
  if (Flags & IF_LogAccess)
    Add("log");
  S += "] ";
  return S;
}

std::string ir::toString(const Program &P, const Instr &I) {
  std::ostringstream OS;
  OS << flagString(I.Flags);
  auto Obj = [&] {
    return P.Pools[I.Obj.Pool].Name + "[" + toString(I.Obj.Index) + "]";
  };
  switch (I.Op) {
  case Opcode::Read:
    OS << "read " << Obj() << " ." << toString(I.A);
    break;
  case Opcode::Write:
    OS << "write " << Obj() << " ." << toString(I.A);
    break;
  case Opcode::ReadElem:
    OS << "readelem " << Obj() << " [" << toString(I.A) << "]";
    break;
  case Opcode::WriteElem:
    OS << "writeelem " << Obj() << " [" << toString(I.A) << "]";
    break;
  case Opcode::Acquire:
    OS << "acquire " << Obj();
    break;
  case Opcode::Release:
    OS << "release " << Obj();
    break;
  case Opcode::Wait:
    OS << "wait " << Obj();
    break;
  case Opcode::Notify:
    OS << "notify " << Obj();
    break;
  case Opcode::NotifyAll:
    OS << "notifyall " << Obj();
    break;
  case Opcode::Call:
    OS << "call @" << P.Methods[I.Callee].Name << "(" << toString(I.A) << ")";
    break;
  case Opcode::Fork:
    OS << "fork thread " << toString(I.A);
    break;
  case Opcode::Join:
    OS << "join thread " << toString(I.A);
    break;
  case Opcode::Loop:
    OS << "loop " << toString(I.A);
    break;
  case Opcode::Work:
    OS << "work " << toString(I.A);
    break;
  }
  return OS.str();
}

static void printBlock(std::ostringstream &OS, const Program &P,
                       const std::vector<Instr> &Block, unsigned Indent) {
  std::string Pad(Indent, ' ');
  for (const Instr &I : Block) {
    OS << Pad << toString(P, I) << "\n";
    if (I.Op == Opcode::Loop)
      printBlock(OS, P, I.Body, Indent + 2);
  }
}

std::string ir::toString(const Program &P) {
  std::ostringstream OS;
  OS << "program " << P.Name << " (seed " << P.Seed << ")\n";
  for (const ObjectPool &Pool : P.Pools)
    OS << "  pool " << Pool.Name << " x" << Pool.Count << " "
       << (Pool.IsArray ? "elems=" : "fields=") << Pool.NumFields << "\n";
  for (size_t T = 0; T < P.ThreadEntries.size(); ++T)
    OS << "  thread " << T << " -> @" << P.Methods[P.ThreadEntries[T]].Name
       << "\n";
  if (P.ThreadSyncFlags != IF_None)
    OS << "  syncflags " << flagString(P.ThreadSyncFlags) << "\n";
  for (const Method &M : P.Methods) {
    OS << "method @" << M.Name << (M.Atomic ? " atomic" : "")
       << (M.StartsTransaction ? " starts-tx" : "")
       << (M.TransactionalContext ? " tx-ctx" : "") << "\n";
    printBlock(OS, P, M.Body, 2);
  }
  return OS.str();
}
