//===- ir/Builder.cpp -----------------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

#include "ir/Verifier.h"

using namespace dc;
using namespace dc::ir;

ProgramBuilder::ProgramBuilder(std::string Name, uint64_t Seed) {
  P.Name = std::move(Name);
  P.Seed = Seed;
}

PoolId ProgramBuilder::addPool(const std::string &Name, uint32_t Count,
                               uint32_t NumFields) {
  assert(Count > 0 && "pool must contain at least one object");
  ObjectPool Pool;
  Pool.Name = Name;
  Pool.Count = Count;
  Pool.NumFields = NumFields;
  P.Pools.push_back(Pool);
  return static_cast<PoolId>(P.Pools.size() - 1);
}

PoolId ProgramBuilder::addArrayPool(const std::string &Name, uint32_t Count,
                                    uint32_t NumElems) {
  PoolId Id = addPool(Name, Count, NumElems);
  P.Pools[Id].IsArray = true;
  return Id;
}

MethodId ProgramBuilder::declareMethod(const std::string &Name, bool Atomic) {
  assert(P.findMethod(Name) == InvalidMethodId && "duplicate method name");
  Method M;
  M.Name = Name;
  M.Id = static_cast<MethodId>(P.Methods.size());
  M.Atomic = Atomic;
  P.Methods.push_back(std::move(M));
  return P.Methods.back().Id;
}

BlockBuilder &ProgramBuilder::beginDeclaredMethod(MethodId Id) {
  assert(OpenMethod == InvalidMethodId && "a method is already open");
  assert(Id < P.Methods.size() && "unknown method id");
  OpenMethod = Id;
  BlockStack.clear();
  BlockStack.push_back(&P.Methods[Id].Body);
  return Block;
}

BlockBuilder &ProgramBuilder::beginMethod(const std::string &Name,
                                          bool Atomic) {
  return beginDeclaredMethod(declareMethod(Name, Atomic));
}

uint32_t ProgramBuilder::addThread(MethodId Entry) {
  assert(Entry < P.Methods.size() && "unknown entry method");
  P.ThreadEntries.push_back(Entry);
  return static_cast<uint32_t>(P.ThreadEntries.size() - 1);
}

Program ProgramBuilder::build() {
  assert(OpenMethod == InvalidMethodId && "a method is still open");
  assert(!P.ThreadEntries.empty() && "program needs at least a main thread");
  std::string Err = verify(P);
  assert(Err.empty() && "program failed verification");
  (void)Err;
  return std::move(P);
}

std::vector<Instr> &BlockBuilder::block() {
  assert(!PB.BlockStack.empty() && "no open method");
  return *PB.BlockStack.back();
}

BlockBuilder &BlockBuilder::append(Instr I) {
  block().push_back(std::move(I));
  return *this;
}

static Instr makeAccess(Opcode Op, PoolId Pool, IndexExpr Obj,
                        IndexExpr Field) {
  Instr I;
  I.Op = Op;
  I.Obj.Pool = Pool;
  I.Obj.Index = Obj;
  I.A = Field;
  return I;
}

BlockBuilder &BlockBuilder::read(PoolId Pool, IndexExpr Obj, IndexExpr Field) {
  return append(makeAccess(Opcode::Read, Pool, Obj, Field));
}

BlockBuilder &BlockBuilder::write(PoolId Pool, IndexExpr Obj,
                                  IndexExpr Field) {
  return append(makeAccess(Opcode::Write, Pool, Obj, Field));
}

BlockBuilder &BlockBuilder::readElem(PoolId Pool, IndexExpr Obj,
                                     IndexExpr Elem) {
  return append(makeAccess(Opcode::ReadElem, Pool, Obj, Elem));
}

BlockBuilder &BlockBuilder::writeElem(PoolId Pool, IndexExpr Obj,
                                      IndexExpr Elem) {
  return append(makeAccess(Opcode::WriteElem, Pool, Obj, Elem));
}

BlockBuilder &BlockBuilder::acquire(PoolId Pool, IndexExpr Obj) {
  return append(makeAccess(Opcode::Acquire, Pool, Obj, idxConst(0)));
}

BlockBuilder &BlockBuilder::release(PoolId Pool, IndexExpr Obj) {
  return append(makeAccess(Opcode::Release, Pool, Obj, idxConst(0)));
}

BlockBuilder &BlockBuilder::wait(PoolId Pool, IndexExpr Obj) {
  return append(makeAccess(Opcode::Wait, Pool, Obj, idxConst(0)));
}

BlockBuilder &BlockBuilder::notifyOne(PoolId Pool, IndexExpr Obj) {
  return append(makeAccess(Opcode::Notify, Pool, Obj, idxConst(0)));
}

BlockBuilder &BlockBuilder::notifyAll(PoolId Pool, IndexExpr Obj) {
  return append(makeAccess(Opcode::NotifyAll, Pool, Obj, idxConst(0)));
}

BlockBuilder &BlockBuilder::call(MethodId Callee, IndexExpr Arg) {
  Instr I;
  I.Op = Opcode::Call;
  I.Callee = Callee;
  I.A = Arg;
  return append(std::move(I));
}

BlockBuilder &BlockBuilder::forkThread(IndexExpr Thread) {
  Instr I;
  I.Op = Opcode::Fork;
  I.A = Thread;
  return append(std::move(I));
}

BlockBuilder &BlockBuilder::joinThread(IndexExpr Thread) {
  Instr I;
  I.Op = Opcode::Join;
  I.A = Thread;
  return append(std::move(I));
}

BlockBuilder &BlockBuilder::work(uint64_t Units) {
  Instr I;
  I.Op = Opcode::Work;
  I.A = idxConst(static_cast<int64_t>(Units));
  return append(std::move(I));
}

BlockBuilder &BlockBuilder::beginLoop(IndexExpr Trips) {
  Instr I;
  I.Op = Opcode::Loop;
  I.A = Trips;
  block().push_back(std::move(I));
  PB.BlockStack.push_back(&block().back().Body);
  return *this;
}

BlockBuilder &BlockBuilder::endLoop() {
  assert(PB.BlockStack.size() > 1 && "no open loop");
  PB.BlockStack.pop_back();
  return *this;
}

MethodId BlockBuilder::endMethod() {
  assert(PB.OpenMethod != InvalidMethodId && "no open method");
  assert(PB.BlockStack.size() == 1 && "unclosed loop at endMethod");
  MethodId Id = PB.OpenMethod;
  PB.OpenMethod = InvalidMethodId;
  PB.BlockStack.clear();
  return Id;
}
