//===- ir/Printer.h - Textual dump of IR programs ---------------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef DC_IR_PRINTER_H
#define DC_IR_PRINTER_H

#include <string>

#include "ir/Ir.h"

namespace dc {
namespace ir {

/// Renders \p E as e.g. "3*loop0+1 % 64" or "7".
std::string toString(const IndexExpr &E);

/// Renders one instruction (without its nested body).
std::string toString(const Program &P, const Instr &I);

/// Renders a whole program, including instrumentation flags on compiled
/// programs, e.g. "[octet,log] write accounts[param] .0".
std::string toString(const Program &P);

} // namespace ir
} // namespace dc

#endif // DC_IR_PRINTER_H
