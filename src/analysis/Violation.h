//===- analysis/Violation.h - Atomicity-violation reports -------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A precise PDG cycle is an atomicity violation. Reports carry the whole
/// cycle (thread + static site of each member) plus blame assignment: the
/// transaction whose outgoing cycle edge was created before its incoming
/// one completed the cycle and is blamed (§3.3), which iterative refinement
/// uses to remove methods from the specification.
///
//===----------------------------------------------------------------------===//

#ifndef DC_ANALYSIS_VIOLATION_H
#define DC_ANALYSIS_VIOLATION_H

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "ir/Ir.h"
#include "support/SpinLock.h"

namespace dc {
namespace analysis {

/// One member of a reported cycle.
struct CycleMember {
  uint32_t Tid = 0;
  ir::MethodId Site = ir::InvalidMethodId; ///< Original method; Invalid=unary.
  uint64_t TxId = 0;
};

/// One detected atomicity violation. Precise records are PDG cycles proven
/// by log replay; Potential records are sound over-approximations — the
/// static sites of an ICD SCC the checker degraded instead of replaying
/// (oversized SCC, shed logging, or an injected/real PCD fault). Potential
/// semantics match multi-run mode's run 1: every true violation in the SCC
/// is covered by its members' sites, so degrading never under-reports.
struct ViolationRecord {
  enum class Kind : uint8_t { Precise, Potential };
  Kind K = Kind::Precise;
  /// Original method blamed for completing the cycle; InvalidMethodId when
  /// the cycle contained no regular transaction (degenerate) or for
  /// Potential records (no replay, so no blame assignment).
  ir::MethodId Blamed = ir::InvalidMethodId;
  std::vector<CycleMember> Cycle;
};

/// Thread-safe sink for violations. Distinct blamed methods form the
/// "static violations" the paper counts in Table 2; potential methods are
/// the degraded over-approximation (what a later precise run would check).
class ViolationLog {
public:
  /// Streaming observer, invoked for every record as it is confirmed
  /// (streaming service mode's live violation feed). Called *under* the
  /// log's lock so stream order equals record order; the sink must be
  /// cheap-ish and must never call back into this ViolationLog.
  using Sink = std::function<void(const ViolationRecord &)>;

  void setSink(Sink S) {
    SpinLockGuard Guard(Lock);
    TheSink = std::move(S);
  }

  void report(ViolationRecord R) {
    SpinLockGuard Guard(Lock);
    if (R.K == ViolationRecord::Kind::Potential) {
      for (const CycleMember &M : R.Cycle)
        if (M.Site != ir::InvalidMethodId)
          Potential.insert(M.Site);
    } else if (R.Blamed != ir::InvalidMethodId) {
      Blamed.insert(R.Blamed);
    }
    if (TheSink)
      TheSink(R);
    Records.push_back(std::move(R));
  }

  std::vector<ViolationRecord> records() const {
    SpinLockGuard Guard(Lock);
    return Records;
  }

  std::set<ir::MethodId> blamedMethods() const {
    SpinLockGuard Guard(Lock);
    return Blamed;
  }

  /// Static sites of degraded SCC members (sound over-approximation).
  std::set<ir::MethodId> potentialMethods() const {
    SpinLockGuard Guard(Lock);
    return Potential;
  }

  size_t count() const {
    SpinLockGuard Guard(Lock);
    return Records.size();
  }

private:
  mutable SpinLock Lock;
  Sink TheSink;
  std::vector<ViolationRecord> Records;
  std::set<ir::MethodId> Blamed;
  std::set<ir::MethodId> Potential;
};

} // namespace analysis
} // namespace dc

#endif // DC_ANALYSIS_VIOLATION_H
