//===- analysis/Violation.h - Atomicity-violation reports -------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A precise PDG cycle is an atomicity violation. Reports carry the whole
/// cycle (thread + static site of each member) plus blame assignment: the
/// transaction whose outgoing cycle edge was created before its incoming
/// one completed the cycle and is blamed (§3.3), which iterative refinement
/// uses to remove methods from the specification.
///
//===----------------------------------------------------------------------===//

#ifndef DC_ANALYSIS_VIOLATION_H
#define DC_ANALYSIS_VIOLATION_H

#include <set>
#include <string>
#include <vector>

#include "ir/Ir.h"
#include "support/SpinLock.h"

namespace dc {
namespace analysis {

/// One member of a reported cycle.
struct CycleMember {
  uint32_t Tid = 0;
  ir::MethodId Site = ir::InvalidMethodId; ///< Original method; Invalid=unary.
  uint64_t TxId = 0;
};

/// One detected atomicity violation (a precise PDG cycle).
struct ViolationRecord {
  /// Original method blamed for completing the cycle; InvalidMethodId when
  /// the cycle contained no regular transaction (degenerate).
  ir::MethodId Blamed = ir::InvalidMethodId;
  std::vector<CycleMember> Cycle;
};

/// Thread-safe sink for violations. Distinct blamed methods form the
/// "static violations" the paper counts in Table 2.
class ViolationLog {
public:
  void report(ViolationRecord R) {
    SpinLockGuard Guard(Lock);
    if (R.Blamed != ir::InvalidMethodId)
      Blamed.insert(R.Blamed);
    Records.push_back(std::move(R));
  }

  std::vector<ViolationRecord> records() const {
    SpinLockGuard Guard(Lock);
    return Records;
  }

  std::set<ir::MethodId> blamedMethods() const {
    SpinLockGuard Guard(Lock);
    return Blamed;
  }

  size_t count() const {
    SpinLockGuard Guard(Lock);
    return Records.size();
  }

private:
  mutable SpinLock Lock;
  std::vector<ViolationRecord> Records;
  std::set<ir::MethodId> Blamed;
};

} // namespace analysis
} // namespace dc

#endif // DC_ANALYSIS_VIOLATION_H
