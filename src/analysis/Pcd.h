//===- analysis/Pcd.h - Precise cycle detection (replay) --------*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PCD consumes one ICD SCC at a time: the member transactions, their
/// read/write logs, and the cross-thread edges (with log positions). It
/// replays the logs in an order consistent with the actual execution —
/// same-thread members in sequence order; a member's EdgeIn marker is
/// passable once the edge's source cursor passed the sampled source
/// position — while maintaining Velodrome-style last-writer / per-thread
/// last-reader maps per *field* (Figure 5). Every resulting cross-thread
/// dependence becomes a precise dependence graph (PDG) edge; each PDG cycle
/// is an atomicity violation, reported with blame assignment.
///
/// Replay is sufficient for precision because any pair of conflicting
/// accesses from different threads is separated by at least one Octet state
/// transition, and every transition produced an IDG edge ordering the two
/// log positions (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef DC_ANALYSIS_PCD_H
#define DC_ANALYSIS_PCD_H

#include <cstdint>
#include <vector>

#include "analysis/Transaction.h"
#include "analysis/Violation.h"
#include "support/Statistic.h"

namespace dc {
namespace analysis {

/// Replays ICD SCCs and reports precise atomicity violations.
class PreciseCycleDetector {
public:
  struct Options {
    /// SCCs larger than this are not replayed (the paper's PCD ran out of
    /// memory on such transactions). They are *degraded*, not dropped:
    /// counted in pcd.sccs_skipped and reported as potential violations
    /// via reportPotential, so soundness survives the cap.
    uint32_t MaxSccTxs = 1u << 20;
  };

  PreciseCycleDetector(ViolationLog &Sink, StatisticRegistry &Stats)
      : Sink(Sink), Stats(Stats) {}
  PreciseCycleDetector(ViolationLog &Sink, StatisticRegistry &Stats,
                       Options Opts)
      : Sink(Sink), Stats(Stats), Opts(Opts) {}

  /// Processes one SCC. \p Members must all be finished; their logs must
  /// be stable for the duration of the call (guaranteed once Finished is
  /// set — finished logs are immutable — plus a pin against collection).
  ///
  /// Thread-safe for concurrent calls on distinct SCCs: the detector keeps
  /// no state across calls, the replay only reads members' immutable
  /// state, and both sinks (ViolationLog, StatisticRegistry counters) are
  /// internally synchronized. The parallel-PCD pool relies on this; SCCs
  /// from overlapping detections may even share members, which is still
  /// safe because the replay never writes to a Transaction.
  void processScc(const std::vector<Transaction *> &Members);

  /// Reports \p Members' static sites as one Potential ViolationRecord
  /// (multi-run run 1 semantics) — the sound fallback when an SCC cannot
  /// be replayed precisely: oversized, incomplete logs after shedding, or
  /// a PCD-side fault. Thread-safe like processScc.
  void reportPotential(const std::vector<Transaction *> &Members);

private:
  ViolationLog &Sink;
  StatisticRegistry &Stats;
  Options Opts;
};

} // namespace analysis
} // namespace dc

#endif // DC_ANALYSIS_PCD_H
