//===- analysis/StaticInfo.h - Multi-run static transaction info -*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first run of multi-run mode identifies regular transactions involved
/// in imprecise cycles *statically* — by method signature — plus a single
/// boolean saying whether any unary transaction appeared in a cycle (§3.1).
/// The second run instruments only those methods, and instruments
/// non-transactional accesses iff the boolean is set. Results from several
/// first runs are merged by union, matching the paper's methodology.
///
//===----------------------------------------------------------------------===//

#ifndef DC_ANALYSIS_STATICINFO_H
#define DC_ANALYSIS_STATICINFO_H

#include <set>
#include <string>

namespace dc {
namespace analysis {

/// Static transaction information passed from the first run to the second.
struct StaticTransactionInfo {
  /// Names of (original) methods whose regular transactions appeared in an
  /// ICD SCC.
  std::set<std::string> MethodNames;
  /// True if any unary transaction appeared in any ICD SCC.
  bool AnyUnary = false;

  /// Union with \p O (combining multiple first runs).
  void merge(const StaticTransactionInfo &O) {
    MethodNames.insert(O.MethodNames.begin(), O.MethodNames.end());
    AnyUnary = AnyUnary || O.AnyUnary;
  }

  bool empty() const { return MethodNames.empty() && !AnyUnary; }

  /// Line-oriented serialization (one method per line, "unary" sentinel).
  std::string serialize() const;
  static StaticTransactionInfo parse(const std::string &Text);
};

} // namespace analysis
} // namespace dc

#endif // DC_ANALYSIS_STATICINFO_H
