//===- analysis/OnlinePcd.cpp ---------------------------------------------===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/OnlinePcd.h"

#include <algorithm>

using namespace dc;
using namespace dc::analysis;

void OnlinePcd::processTransaction(Transaction *Tx) {
  Stats.get("pcdonly.txs_processed").add(1);
  // Intra-thread PDG edge from the thread's previously processed
  // transaction.
  auto It = LastOfThread.find(Tx->Tid);
  if (It != LastOfThread.end())
    addEdge(It->second, Tx);
  LastOfThread[Tx->Tid] = Tx;

  for (LogCursor C(*Tx); !C.atEnd(); C.advance()) {
    const LogEntry E = C.current();
    switch (E.K) {
    case LogEntry::Kind::Read: {
      auto WIt = LastWrite.find(E.Addr);
      if (WIt != LastWrite.end() && WIt->second->Tid != Tx->Tid)
        addEdge(WIt->second, Tx);
      LastReads[E.Addr][Tx->Tid] = Tx;
      break;
    }
    case LogEntry::Kind::Write: {
      auto WIt = LastWrite.find(E.Addr);
      if (WIt != LastWrite.end() && WIt->second->Tid != Tx->Tid)
        addEdge(WIt->second, Tx);
      auto RIt = LastReads.find(E.Addr);
      if (RIt != LastReads.end()) {
        for (const auto &Reader : RIt->second)
          if (Reader.first != Tx->Tid)
            addEdge(Reader.second, Tx);
        RIt->second.clear();
      }
      LastWrite[E.Addr] = Tx;
      break;
    }
    case LogEntry::Kind::EdgeIn:
      break;
    }
    Stats.get("pcdonly.entries_replayed").add(1);
  }
}

void OnlinePcd::addEdge(Transaction *From, Transaction *To) {
  if (From == To)
    return;
  auto &FromEdges = EdgeCreation[From];
  if (FromEdges.count(To))
    return;
  FromEdges.emplace(To, NextCreation);
  Pdg[From].emplace_back(To, NextCreation);
  ++NextCreation;
  if (From->Tid != To->Tid)
    checkCycle(From, To);
}

void OnlinePcd::checkCycle(Transaction *From, Transaction *To) {
  const uint64_t Epoch = ++DfsEpoch;
  std::unordered_map<Transaction *, Transaction *> Parent;
  std::vector<Transaction *> Stack{To};
  To->SccEpoch = Epoch; // SccEpoch reused as DFS mark; SCC is off here.
  bool Found = false;
  while (!Stack.empty() && !Found) {
    Transaction *Cur = Stack.back();
    Stack.pop_back();
    auto It = Pdg.find(Cur);
    if (It == Pdg.end())
      continue;
    for (const auto &E : It->second) {
      if (E.first->SccEpoch == Epoch)
        continue;
      E.first->SccEpoch = Epoch;
      Parent[E.first] = Cur;
      if (E.first == From) {
        Found = true;
        break;
      }
      Stack.push_back(E.first);
    }
  }
  if (!Found)
    return;
  Stats.get("pcdonly.cycles").add(1);

  std::vector<Transaction *> Cycle;
  for (Transaction *Cur = From;; Cur = Parent[Cur]) {
    Cycle.push_back(Cur);
    if (Cur == To)
      break;
  }
  std::reverse(Cycle.begin(), Cycle.end());

  auto CreationOf = [&](const Transaction *A, const Transaction *B) {
    return EdgeCreation[A][B];
  };
  const size_t N = Cycle.size();
  ir::MethodId Blamed = ir::InvalidMethodId;
  for (size_t I = 0; I < N && Blamed == ir::InvalidMethodId; ++I) {
    Transaction *Prev = Cycle[(I + N - 1) % N];
    Transaction *Cur = Cycle[I];
    Transaction *Next = Cycle[(I + 1) % N];
    if (Cur->Regular && CreationOf(Cur, Next) < CreationOf(Prev, Cur))
      Blamed = Cur->Site;
  }
  if (Blamed == ir::InvalidMethodId) {
    for (Transaction *Tx : Cycle)
      if (Tx->Regular) {
        Blamed = Tx->Site;
        break;
      }
  }

  ViolationRecord R;
  R.Blamed = Blamed;
  for (Transaction *Tx : Cycle)
    R.Cycle.push_back(CycleMember{Tx->Tid, Tx->Site, Tx->Id});
  Sink.report(std::move(R));
}
