//===- analysis/IncrementalCycles.h - Online IDG cycle detection -*- C++ -*-===//
//
// Part of the DoubleChecker reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental online cycle detection over the IDG (DESIGN.md §12). Instead
/// of batching Tarjan passes that freeze every IDG stripe, the detector
/// maintains a topological order of the condensation of the live+finished
/// transaction graph under edge insertion, Pearce–Kelly style:
///
///  * every transaction gets a monotonically increasing order key at
///    creation (new nodes are maximal, so the intra-thread chain is free);
///  * a cross edge u→v with ord(u) < ord(v) is consistent — O(1), no
///    traversal, no stripe beyond the two the edge writer already holds,
///    and since this PR no detector lock either: the keys are read under
///    the reorder seqlock and the adjacency node publishes with a lock-free
///    push (see "Locking" below);
///  * an inconsistent edge triggers a bounded two-way search of the
///    affected region (forward from v over keys ≤ ord(u), backward from u
///    over keys ≥ ord(v)). If the searches meet, the edge closed a cycle:
///    the meeting vertices are exactly the new SCC, which is merged into
///    one condensation vertex (IcdGroup) so later searches cross it in one
///    step. Either way the region's keys are permuted — backward frontier
///    below, merged component in the middle, forward frontier on top — to
///    restore order consistency.
///
/// Claiming mirrors the batched pass's exactly-once discipline: a confirmed
/// component is handed to PCD by the *last member to finish* (retire()),
/// which is the same instant a batched pass could first have claimed it, so
/// the two modes blame identical method sets on identical schedules. The
/// caller executes claims (pinning, degradation checks, PCD hand-off)
/// outside the detector lock.
///
/// Soundness valve (the Bender-style dense-end bound): when an affected
/// region exceeds Options::MaxRegion, the detector stops reordering that
/// neighbourhood. The region collapses into one poisoned "oversized" group
/// that absorbs — via undirected closure — everything an edge ever connects
/// to it, and every absorbed transaction is reported as a Potential
/// violation (Pcd::reportPotential path). Order consistency among
/// non-absorbed vertices is preserved (deleting vertices from a DAG cannot
/// invalidate a topological order), and any future cycle that touches the
/// poisoned region has all its members absorbed and reported, so no
/// violation is lost — precision degrades, soundness does not.
///
/// Locking: one internal spin lock Mu, strictly *after* IDG stripes in the
/// acquisition order (edge writers hold ≤ 2 stripes, the collector holds
/// all of them; the detector never takes a stripe), plus a reorder seqlock
/// whose writer mode is entered only under Mu and only around sections that
/// permute order keys or group membership. The per-transaction hot path
/// never touches either: key assignment (addNode) is a relaxed fetch-add,
/// and the program-order edge (addChainEdge) is two atomic pointer stores —
/// consistent by construction because the new vertex's key is maximal.
/// Consistent *cross* edges are also lock-free: addEdge snapshots both
/// endpoints' keys/groups, validates the snapshot against the seqlock,
/// publishes two adjacency nodes with release CASes, and re-validates; only
/// a fast path that raced a concurrent reorder falls back to Mu to
/// reconcile (DESIGN.md §12 gives the linearization argument). Inconsistent
/// edges, retirement, collection, and finalize take Mu; reorders and merges
/// additionally run in seqlock writer mode. The collector unlinks doomed
/// nodes (removeNodes) while it still holds every stripe — which excludes
/// every fast path, since edge writers hold endpoint stripes — and before
/// it frees anything, so the detector never sees a dangling node: a swept
/// transaction is unreachable and finished, hence can never appear on a
/// future cycle, and dropping it cannot invalidate the remaining order.
///
//===----------------------------------------------------------------------===//

#ifndef DC_ANALYSIS_INCREMENTALCYCLES_H
#define DC_ANALYSIS_INCREMENTALCYCLES_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/Transaction.h"
#include "support/SeqLock.h"
#include "support/SpinLock.h"
#include "support/Statistic.h"

namespace dc {
namespace analysis {

/// One cell of a transaction's detector-private adjacency chain. Owned by
/// the detector (recycled through a free list; every cell ever allocated is
/// additionally threaded on an all-nodes chain the destructor sweeps).
/// Peer/Next are written before the cell is published with a release CAS on
/// the chain head and never change afterwards until the cell is unlinked
/// under Mu + all stripes (removeNodes) — so chain walks under Mu need no
/// per-cell synchronization beyond the acquire head load.
struct IcdEdgeNode {
  Transaction *Peer = nullptr;
  IcdEdgeNode *Next = nullptr;
  /// All-nodes ownership chain (push-once, walked only by the destructor)
  /// and, while the cell sits on the free list, the free-list link.
  IcdEdgeNode *NextAll = nullptr;
  IcdEdgeNode *NextFree = nullptr;
};

/// A condensation vertex: the members of one confirmed (or poisoned) SCC,
/// sharing a single order key and visit stamp. Mutated only under the
/// detector's internal lock (in seqlock writer mode when the order key
/// moves); Ord is atomic because the lock-free fast path reads it through
/// a seqlock-validated snapshot.
struct IcdGroup {
  std::vector<Transaction *> Members;
  std::atomic<uint64_t> Ord{0};
  uint64_t Epoch = 0;   ///< Visit stamp shared by all members.
  uint32_t Unretired = 0;
  size_t RegIdx = 0;    ///< Position in the detector's registry.
  bool Claimed = false; ///< Handed to the PCD path (or poisoned).
  /// Immutable after the group is published through a member's IcdG release
  /// store, so fast-path readers may read it plain after an acquire load.
  bool Oversized = false;
};

class IncrementalCycleDetector {
public:
  struct Options {
    /// Affected-region cap: searches visiting more vertices than this stop
    /// reordering and degrade the region to Potential reports. The default
    /// is far beyond any region a bounded live graph can produce; tests
    /// shrink it to force the valve.
    uint32_t MaxRegion = 1u << 20;
    /// Differential partner knob: force every cross edge through the Mu
    /// slow path (the pre-seqlock behaviour). The dcfuzz matrix replays
    /// schedules against this to pin method-set bit-equality.
    bool LockedFastPath = false;
    /// Test/fault knob: make each fast-path attempt fail seqlock
    /// validation this many times before proceeding, deterministically
    /// exercising the retry counter and the retry-cap fallback even under
    /// serialized scheduling. 0 = off.
    uint32_t RetryStorm = 0;
  };

  /// One component the caller must hand to the PCD/refinement path. The
  /// detector has already pinned every member (Transaction::Pins), exactly
  /// like the batched pass pins before releasing the stripes; the caller
  /// unpins with release order when it is done with the members' logs.
  struct Claim {
    std::vector<Transaction *> Members;
    /// Poisoned-region absorption (only the newly absorbed transactions):
    /// report Potential, never replay.
    bool Oversized = false;
  };
  using ClaimList = std::vector<Claim>;

  explicit IncrementalCycleDetector(const Options &O) : Opts(O) {}
  ~IncrementalCycleDetector();

  IncrementalCycleDetector(const IncrementalCycleDetector &) = delete;
  IncrementalCycleDetector &
  operator=(const IncrementalCycleDetector &) = delete;

  /// Registers a new transaction as a maximal vertex. Called at
  /// transaction creation (the caller holds the owner's stripe; any stripe
  /// set composes with the internal lock).
  void addNode(Transaction *Tx);

  /// Observes an IDG edge (intra or cross). The caller holds the stripes
  /// it already holds for the IDG append — the detector takes none. A
  /// consistent edge (the common case) completes lock-free; only
  /// inconsistent or racing edges take the internal lock. Only Oversized
  /// claims can be produced here (a cycle's precise claim always waits for
  /// retire(), because an edge's target is unfinished).
  void addEdge(Transaction *Src, Transaction *Dst, ClaimList &Out);

  /// Observes the program-order edge \p Prev → \p Tx at \p Tx's creation —
  /// the per-transaction hot path, and entirely lock-free: \p Tx just
  /// received a maximal order key (addNode), so the edge is consistent by
  /// construction, and the chain pointer publishes with release order
  /// under the owner's stripe. If \p Prev's region is poisoned the
  /// contact is repaired lazily — the first search that reaches the
  /// poisoned group through the chain absorbs the toucher (soundness is
  /// preserved because pruning at a poisoned group now implies
  /// absorption, never a silently missed path).
  void addChainEdge(Transaction *Prev, Transaction *Tx);

  /// Observes a transaction's end. Must be called with *no* stripes held:
  /// a produced precise Claim is executed by the caller right after, and
  /// that execution may block (PCD queue backpressure).
  void retire(Transaction *Tx, ClaimList &Out);

  /// Unlinks doomed transactions before the collector frees them. Must be
  /// called under all stripes (collectNow), before any free. An unclaimed
  /// component can never be doomed — some member is unretired, hence still
  /// a thread's CurrTx (a strong root), and the members are mutually
  /// reachable through Out edges the mark phase follows. Holding all
  /// stripes excludes every lock-free fast path (edge writers hold their
  /// endpoint stripes), so this is also where deferred group reclamation
  /// and edge-cell recycling drain safely.
  void removeNodes(const std::vector<Transaction *> &Doomed);

  /// End-of-run sweep: claims any complete-but-unclaimed components. With
  /// every transaction retired through the normal path this finds nothing;
  /// it exists so shutdown is sound even if a future caller forgets a
  /// retire. Counted in icd.finalize_claims (expected 0).
  void finalize(ClaimList &Out);

  /// Adds the detector's counters to the run's registry (endRun).
  void flushStats(StatisticRegistry &Stats);

  /// Test hook: invoked (under the detector lock) on every reorder with
  /// the affected-region vertex count. The stripe-locality test asserts
  /// from inside the hook that the reordering thread holds at most the two
  /// stripes of the edge it is inserting.
  void setReorderHook(std::function<void(size_t)> Hook) {
    ReorderHook = std::move(Hook);
  }

private:
  // Mu-side helpers. The Icd* atomics they touch are only *written* under
  // Mu (order keys and group pointers additionally only in seqlock writer
  // mode), so relaxed accesses suffice here; the lock-free fast path has
  // its own acquire-snapshot-and-validate reads in addEdge.
  IcdGroup *groupOf(const Transaction *Tx) const {
    return Tx->IcdG.load(std::memory_order_relaxed);
  }
  Transaction *repOf(Transaction *Tx) const {
    IcdGroup *G = groupOf(Tx);
    return G && !G->Members.empty() ? G->Members.front() : Tx;
  }
  bool sameVertex(const Transaction *A, const Transaction *B) const {
    if (A == B)
      return true;
    IcdGroup *GA = groupOf(A);
    return GA != nullptr && GA == groupOf(B);
  }
  uint64_t ordOf(const Transaction *Tx) const {
    IcdGroup *G = groupOf(Tx);
    return G ? G->Ord.load(std::memory_order_relaxed)
             : Tx->IcdOrd.load(std::memory_order_relaxed);
  }
  uint64_t &stampOf(Transaction *Tx) {
    IcdGroup *G = groupOf(Tx);
    return G ? G->Epoch : Tx->IcdEpoch;
  }
  void setOrd(Transaction *Tx, uint64_t Ord) {
    if (IcdGroup *G = groupOf(Tx))
      G->Ord.store(Ord, std::memory_order_relaxed);
    else
      Tx->IcdOrd.store(Ord, std::memory_order_relaxed);
  }

  void claimGroup(IcdGroup *G, ClaimList &Out);
  void registerGroup(IcdGroup *G);
  void unregisterGroup(IcdGroup *G);
  /// Moves a dead group to the graveyard instead of deleting it inline: a
  /// fast-path reader may still hold the pointer from a snapshot that is
  /// about to fail validation. Drained in removeNodes (all stripes held ⇒
  /// no thread is inside a fast path) and in the destructor.
  void buryGroup(IcdGroup *G);
  /// Slow path for an inconsistent edge: two-way search, reorder, merge.
  /// Runs in seqlock writer mode (under Mu).
  void insertInconsistent(Transaction *Src, Transaction *Dst, ClaimList &Out);
  /// Absorbs the undirected closure of \p Seeds into oversized group \p G,
  /// reporting the newly absorbed transactions as one Oversized claim.
  /// Caller must be in seqlock writer mode.
  void absorbInto(IcdGroup *G, const std::vector<Transaction *> &Seeds,
                  ClaimList &Out);
  /// Mu slow path shared by fast-path fallback and LockedFastPath mode.
  /// \p Publish: the adjacency nodes are not in the chains yet and must be
  /// appended here (false when the fast path already published them and
  /// only the classification raced).
  void addEdgeSlow(Transaction *Src, Transaction *Dst, ClaimList &Out,
                   bool Publish);

  /// Pops a recycled adjacency cell or allocates one (threading it on the
  /// all-nodes ownership chain). Lock-free callers pop via tryLock only —
  /// a contended free list just allocates — so there is no concurrent-pop
  /// ABA window.
  IcdEdgeNode *allocNode();
  /// Publishes edge Src→Dst: one cell on Src's out-chain, one on Dst's
  /// in-chain, each with a release CAS. Safe without Mu.
  void publishEdge(Transaction *Src, Transaction *Dst);
  /// True if Src's out-chain head already records Src→Dst (the IDG append
  /// path emits consecutive duplicates when one transaction pair conflicts
  /// on several variables; collapsing them keeps chains short).
  static bool headIsDuplicate(Transaction *Src, Transaction *Dst) {
    IcdEdgeNode *H = Src->IcdOutHead.load(std::memory_order_acquire);
    return H != nullptr && H->Peer == Dst;
  }

  /// Takes Mu, charging any contention to the lock-wait counters: a failed
  /// tryLock means some other edge writer / the retire path holds the
  /// detector, and the blocked interval is exactly the serialization the
  /// scaling bench wants to see. Uncontended acquisitions stay one CAS.
  class TimedGuard {
  public:
    explicit TimedGuard(IncrementalCycleDetector &D) : D(D) { D.lockMu(); }
    ~TimedGuard() { D.Mu.unlock(); }
    TimedGuard(const TimedGuard &) = delete;
    TimedGuard &operator=(const TimedGuard &) = delete;

  private:
    IncrementalCycleDetector &D;
  };
  void lockMu();

  Options Opts;
  SpinLock Mu;
  /// Reorder seqlock: writer mode (under Mu) brackets every section that
  /// permutes order keys or group membership; addEdge's lock-free fast
  /// path validates its key/group snapshot and its publication against it.
  SeqLock Seq;
  /// Outside Mu: key assignment is a relaxed fetch-add so transaction
  /// creation (addNode) never touches the detector lock. Monotonicity is
  /// all addNode needs — a new node is maximal under any interleaving,
  /// because every existing key was drawn earlier and reorders only
  /// permute keys already drawn (all below any fresh one).
  std::atomic<uint64_t> NextOrd{1};
  uint64_t VisitClock = 0;
  std::vector<IcdGroup *> Groups;
  /// Groups unlinked by a merge/absorb but possibly still referenced by an
  /// in-flight fast-path snapshot; deleted in removeNodes / destructor.
  std::vector<IcdGroup *> Graveyard;
  /// Recycled adjacency cells. Fast paths pop via tryLock (fall back to
  /// new); removeNodes pushes under Mu.
  SpinLock FreeMu;
  IcdEdgeNode *FreeList = nullptr;
  /// Every cell ever allocated, for destructor reclamation (lock-free
  /// push-once via NextAll).
  std::atomic<IcdEdgeNode *> AllNodes{nullptr};
  std::function<void(size_t)> ReorderHook;

  // Counters (under Mu except the atomics), flushed at endRun.
  std::atomic<uint64_t> ChainEdges{0}; ///< Lock-free program-order links.
  std::atomic<uint64_t> LfFast{0};     ///< Cross edges completed lock-free.
  std::atomic<uint64_t> SeqRetries{0}; ///< Fast-path seqlock validation
                                       ///< failures (forced retries incl.).
  std::atomic<uint64_t> EdgesObserved{0}; ///< addEdge calls (either path).
  /// Contended acquisitions of Mu and the nanoseconds spent blocked in
  /// them. Charged *after* the lock is held, ns before count, and drained
  /// count-then-ns, so a racing flush can never see waits whose
  /// nanoseconds have not landed yet (the pair may be momentarily over- on
  /// ns, never under-). With the consistent fast path lock-free these are
  /// reorder-only: on a cycle-free workload they stay 0.
  std::atomic<uint64_t> LockWaits{0};
  std::atomic<uint64_t> LockWaitNs{0};
  uint64_t NumFastEdges = 0;   ///< Consistent edges resolved under Mu
                               ///< (slow-path fallback / LockedFastPath).
  uint64_t NumReorders = 0;    ///< Inconsistent edges that ran the search.
  uint64_t ReorderVisited = 0; ///< Total affected-region vertices.
  uint64_t RegionMax = 0;      ///< Largest single affected region.
  uint64_t NumCycles = 0;      ///< Components confirmed incrementally.
  uint64_t CapDegrades = 0;    ///< Oversized absorption batches.
  uint64_t FinalizeClaims = 0; ///< Leftovers claimed at finalize (want 0).
};

} // namespace analysis
} // namespace dc

#endif // DC_ANALYSIS_INCREMENTALCYCLES_H
